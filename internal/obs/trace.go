package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Span is one stage of a request's journey through the stack, split into
// the time the work sat queued (waiting for a NIC slot, a token, a device
// channel) and the time it was actually being serviced. This is the same
// decomposition LEED's evaluation uses to explain where each request's
// microseconds go.
type Span struct {
	Stage   string `json:"stage"`
	Queue   Time   `json:"queue"`
	Service Time   `json:"service"`
	// Hop is the chain position the span was recorded on for traces that
	// cross process boundaries: 0 = the issuing client, 1 = the head node,
	// rising along the chain. Single-process spans leave it 0, and the JSON
	// form omits it, so pre-cluster traces are unchanged.
	Hop int `json:"hop,omitempty"`
}

// Trace is the ordered list of spans one request accumulated. Traces are
// created by Tracer.Begin on the issuing task and handed from layer to
// layer; each layer appends its span with Trace.Span. Methods are nil-safe
// so un-traced paths (nil tracer, or a non-sampled request) cost one nil
// check per layer.
type Trace struct {
	Op    string `json:"op"`
	Start Time   `json:"start"`
	Spans []Span `json:"spans"`
}

// Span appends one stage record.
func (tr *Trace) Span(stage string, queue, service Time) {
	if tr == nil {
		return
	}
	if queue < 0 {
		queue = 0
	}
	if service < 0 {
		service = 0
	}
	tr.Spans = append(tr.Spans, Span{Stage: stage, Queue: queue, Service: service})
}

// SpanHop appends one stage record tagged with its chain hop — the form
// cross-process trace reassembly uses when replaying piggybacked remote
// spans into the issuer's trace.
func (tr *Trace) SpanHop(stage string, hop int, queue, service Time) {
	if tr == nil {
		return
	}
	if queue < 0 {
		queue = 0
	}
	if service < 0 {
		service = 0
	}
	tr.Spans = append(tr.Spans, Span{Stage: stage, Queue: queue, Service: service, Hop: hop})
}

// stageOrder fixes the pipeline order stages appear in attribution tables:
// the request path from the paper's Figure — client admission, network,
// node RPC handling, engine admission, store CPU, store SSD wait, device.
// Unknown stages sort alphabetically after the known ones.
var stageOrder = map[string]int{
	"client": 0,
	"net":    1,
	"node":   2,
	"engine": 3,
	"cpu":    4,
	"ssd":    5,
	"device": 6,
	"fwd":    7,
}

type stageHists struct {
	queue   *Hist
	service *Hist
}

// Tracer aggregates spans per stage (into registry histograms named
// leed_stage_queue_ns{stage=...} / leed_stage_service_ns{stage=...}) and
// keeps a bounded ring of sampled full traces for the /traces endpoint.
// Every finished span is aggregated; only every sampleEvery-th trace is
// retained whole. All methods are safe on a nil receiver.
type Tracer struct {
	reg *Registry

	mu      sync.Mutex
	stages  map[string]stageHists
	n       int64
	every   int64
	ring    []Trace
	ringCap int
}

// NewTracer returns a tracer aggregating into reg (which may be nil: the
// tracer still aggregates, just into unregistered histograms). Every
// sampleEvery-th trace is kept whole, up to ringCap retained traces
// (oldest evicted first). sampleEvery <= 0 disables whole-trace sampling.
func NewTracer(reg *Registry, sampleEvery, ringCap int) *Tracer {
	if ringCap <= 0 {
		ringCap = 64
	}
	return &Tracer{
		reg:     reg,
		stages:  make(map[string]stageHists),
		every:   int64(sampleEvery),
		ringCap: ringCap,
	}
}

// tracePool recycles Trace objects between Begin and End. Abandoned traces
// (an attempt that timed out and was never finished) simply fall to the GC;
// the pool is best-effort.
var tracePool = sync.Pool{New: func() any { return new(Trace) }}

// Begin starts a trace for one request. Returns nil on a nil tracer. The
// trace comes from a pool; hand it to End exactly once (or drop it), and
// never touch it after End.
func (t *Tracer) Begin(op string, now Time) *Trace {
	if t == nil {
		return nil
	}
	tr := tracePool.Get().(*Trace)
	tr.Op = op
	tr.Start = now
	tr.Spans = tr.Spans[:0]
	return tr
}

func (t *Tracer) stage(name string) stageHists {
	if sh, ok := t.stages[name]; ok {
		return sh
	}
	// A nil registry hands back working unregistered hists; the map pins
	// them so repeat observations accumulate either way.
	sh := stageHists{
		queue:   t.reg.Hist("leed_stage_queue_ns", "stage", name),
		service: t.reg.Hist("leed_stage_service_ns", "stage", name),
	}
	t.stages[name] = sh
	return sh
}

// Observe aggregates one stage observation directly, without a full trace.
// Device-level code uses this: every completed op contributes its queue
// wait and service time even when the op wasn't part of a traced request.
func (t *Tracer) Observe(stage string, queue, service Time) {
	if t == nil {
		return
	}
	if queue < 0 {
		queue = 0
	}
	if service < 0 {
		service = 0
	}
	t.mu.Lock()
	sh := t.stage(stage)
	t.mu.Unlock()
	sh.queue.Record(queue)
	sh.service.Record(service)
}

// StageBind is a pre-bound handle on one stage's aggregation histograms.
// Tracer.Observe pays a mutex and a map lookup per call; a hot path binds
// its stage once at setup and records through the handle for the cost of
// two histogram records. Nil-safe, like every other instrument.
type StageBind struct {
	queue, service *Hist
}

// Bind resolves (and pins) the stage's histograms. Returns nil on a nil
// tracer, which Observe tolerates.
func (t *Tracer) Bind(stage string) *StageBind {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	sh := t.stage(stage)
	t.mu.Unlock()
	return &StageBind{queue: sh.queue, service: sh.service}
}

// Observe records one observation pair on the bound stage.
func (b *StageBind) Observe(queue, service Time) {
	if b == nil {
		return
	}
	if queue < 0 {
		queue = 0
	}
	if service < 0 {
		service = 0
	}
	b.queue.Record(queue)
	b.service.Record(service)
}

// End finishes a trace: every span is aggregated into the per-stage
// histograms, and the whole trace is retained if it falls on the sampling
// cadence. End recycles tr — the caller must not touch it afterwards. A
// sampled trace's spans are deep-copied into the ring before the recycle.
func (t *Tracer) End(tr *Trace) {
	if t == nil || tr == nil {
		return
	}
	t.mu.Lock()
	for _, sp := range tr.Spans {
		sh := t.stage(sp.Stage)
		sh.queue.Record(sp.Queue)
		sh.service.Record(sp.Service)
	}
	t.n++
	if t.every > 0 && t.n%t.every == 0 {
		if len(t.ring) >= t.ringCap {
			t.ring = t.ring[1:]
		}
		kept := *tr
		kept.Spans = append([]Span(nil), tr.Spans...)
		t.ring = append(t.ring, kept)
	}
	t.mu.Unlock()
	tr.Spans = tr.Spans[:0]
	tracePool.Put(tr)
}

// Samples returns a copy of the retained traces, oldest first.
func (t *Tracer) Samples() []Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Trace, len(t.ring))
	copy(out, t.ring)
	return out
}

// StageLat is one row of the latency-attribution table. Times are
// nanoseconds in the JSON form; the String form uses adaptive units.
type StageLat struct {
	Stage      string `json:"stage"`
	Count      int64  `json:"count"`
	QueueP50   int64  `json:"queue_p50"`
	QueueP99   int64  `json:"queue_p99"`
	ServiceP50 int64  `json:"service_p50"`
	ServiceP99 int64  `json:"service_p99"`
	QueueMean  int64  `json:"queue_mean"`
	SvcMean    int64  `json:"service_mean"`
}

// Attribution is the paper-style latency-attribution table: per pipeline
// stage, queue-wait vs service-time quantiles. Rows follow the pipeline
// order (client, net, node, engine, cpu, ssd, device), then any extra
// stages alphabetically.
type Attribution struct {
	Stages []StageLat `json:"stages"`
}

// Attribution summarizes the per-stage histograms collected so far.
func (t *Tracer) Attribution() Attribution {
	var a Attribution
	if t == nil {
		return a
	}
	t.mu.Lock()
	names := make([]string, 0, len(t.stages))
	for name := range t.stages {
		names = append(names, name)
	}
	hists := make(map[string]stageHists, len(t.stages))
	for name, sh := range t.stages {
		hists[name] = sh
	}
	t.mu.Unlock()
	sort.Slice(names, func(i, j int) bool {
		oi, iok := stageOrder[names[i]]
		oj, jok := stageOrder[names[j]]
		switch {
		case iok && jok:
			return oi < oj
		case iok:
			return true
		case jok:
			return false
		default:
			return names[i] < names[j]
		}
	})
	for _, name := range names {
		q := hists[name].queue.Snap()
		s := hists[name].service.Snap()
		a.Stages = append(a.Stages, StageLat{
			Stage:      name,
			Count:      s.Count,
			QueueP50:   q.P50,
			QueueP99:   q.P99,
			ServiceP50: s.P50,
			ServiceP99: s.P99,
			QueueMean:  q.Mean,
			SvcMean:    s.Mean,
		})
	}
	return a
}

// String renders the attribution as a fixed-width table. Deterministic for
// deterministic inputs (sim virtual time), so seeded runs can be compared
// byte-for-byte.
func (a Attribution) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %10s %12s %12s %12s %12s\n",
		"stage", "count", "queue.p50", "queue.p99", "svc.p50", "svc.p99")
	for _, s := range a.Stages {
		fmt.Fprintf(&b, "%-8s %10d %12v %12v %12v %12v\n",
			s.Stage, s.Count, Time(s.QueueP50), Time(s.QueueP99),
			Time(s.ServiceP50), Time(s.ServiceP99))
	}
	return b.String()
}

// MarshalJSON keeps the table a plain stage array.
func (a Attribution) MarshalJSON() ([]byte, error) {
	return json.Marshal(a.Stages)
}
