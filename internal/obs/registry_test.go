package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestRegistryLookupIsIdempotent(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("leed_test_total", "node", "n1")
	b := reg.Counter("leed_test_total", "node", "n1")
	if a != b {
		t.Fatal("same (name, labels) returned distinct counters")
	}
	a.Inc()
	if got := b.Load(); got != 1 {
		t.Fatalf("shared counter = %d, want 1", got)
	}
	if reg.Counter("leed_test_total", "node", "n2") == a {
		t.Fatal("different labels returned the same counter")
	}
}

func TestRegistryLabelOrderCanonical(t *testing.T) {
	reg := NewRegistry()
	a := reg.Gauge("leed_test_depth", "dev", "ssd0", "node", "n1")
	b := reg.Gauge("leed_test_depth", "node", "n1", "dev", "ssd0")
	if a != b {
		t.Fatal("label order produced distinct series; labels should sort")
	}
	a.Set(7)
	snap := reg.Snapshot()
	const want = `leed_test_depth{dev="ssd0",node="n1"}`
	if snap.Gauges[want] != 7 {
		t.Fatalf("snapshot keys = %v, want %q = 7", snap.Gauges, want)
	}
}

func TestNilRegistryHandsBackWorkingInstruments(t *testing.T) {
	var reg *Registry
	c := reg.Counter("leed_test_total")
	g := reg.Gauge("leed_test_depth")
	h := reg.Hist("leed_test_ns")
	c.Inc()
	g.Set(3)
	h.Record(100)
	if c.Load() != 1 || g.Load() != 3 || h.Count() != 1 {
		t.Fatalf("nil-registry instruments dropped writes: c=%d g=%d h=%d",
			c.Load(), g.Load(), h.Count())
	}
	// And nil instruments themselves are no-ops, not panics.
	var nc *Counter
	var ng *Gauge
	var nh *Hist
	nc.Inc()
	ng.Add(1)
	nh.Record(1)
	if reg.Snapshot().Counters == nil {
		t.Fatal("nil registry snapshot should have non-nil (empty) maps")
	}
}

// TestRegistryConcurrentAccess hammers one registry from many goroutines —
// lookups of hot and cold series, increments, histogram records — while
// other goroutines snapshot and scrape it. Run under -race this is the
// registry's thread-safety proof (the wallclock backend does exactly this:
// task goroutines write while the HTTP scrape goroutine reads).
func TestRegistryConcurrentAccess(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg, 4, 32)
	const writers = 8
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			names := []string{"a", "b", "c"}
			for i := 0; i < iters; i++ {
				n := names[i%len(names)]
				reg.Counter("leed_test_ops_total", "w", n).Inc()
				reg.Gauge("leed_test_depth", "w", n).Set(int64(i))
				reg.Hist("leed_test_lat_ns", "w", n).Record(Time(i))
				tr.Observe("device", Time(i), Time(2*i))
				if i%64 == 0 {
					trc := tr.Begin("get", Time(i))
					trc.Span("node", 1, 2)
					trc.Span("engine", 3, 4)
					tr.End(trc)
				}
			}
		}(w)
	}
	var rg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 3; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = reg.Snapshot()
				reg.WritePrometheus(new(bytes.Buffer))
				_ = tr.Attribution()
				_ = tr.Samples()
			}
		}()
	}
	wg.Wait()
	close(stop)
	rg.Wait()

	snap := reg.Snapshot()
	var total int64
	for k, v := range snap.Counters {
		if strings.HasPrefix(k, "leed_test_ops_total") {
			total += v
		}
	}
	if want := int64(writers * iters); total != want {
		t.Fatalf("lost increments: counted %d, want %d", total, want)
	}
	dev := snap.Hists[`leed_stage_queue_ns{stage="device"}`]
	if want := int64(writers * iters); dev.Count != want {
		t.Fatalf("tracer lost observations: %d, want %d", dev.Count, want)
	}
}

func TestSnapshotDeterministicEncoding(t *testing.T) {
	build := func() *Registry {
		reg := NewRegistry()
		// Insert in scrambled order; output must not care.
		reg.Counter("leed_z_total").Add(3)
		reg.Counter("leed_a_total", "node", "n2").Add(1)
		reg.Counter("leed_a_total", "node", "n1").Add(2)
		reg.Gauge("leed_depth").Set(5)
		h := reg.Hist("leed_lat_ns", "dev", "ssd0")
		for i := 1; i <= 100; i++ {
			h.Record(Time(i * 1000))
		}
		return reg
	}
	r1, r2 := build(), build()
	var j1, j2 bytes.Buffer
	if err := r1.Snapshot().WriteJSON(&j1); err != nil {
		t.Fatal(err)
	}
	if err := r2.Snapshot().WriteJSON(&j2); err != nil {
		t.Fatal(err)
	}
	if j1.String() != j2.String() {
		t.Fatalf("snapshot JSON differs across identical registries:\n%s\n---\n%s", j1.String(), j2.String())
	}
	if r1.Snapshot().String() != r2.Snapshot().String() {
		t.Fatal("snapshot String differs across identical registries")
	}
	var p1, p2 bytes.Buffer
	r1.WritePrometheus(&p1)
	r2.WritePrometheus(&p2)
	if p1.String() != p2.String() {
		t.Fatal("Prometheus pages differ across identical registries")
	}
	// Sanity on the exposition format itself.
	page := p1.String()
	for _, want := range []string{
		"# TYPE leed_a_total counter",
		`leed_a_total{node="n1"} 2`,
		"# TYPE leed_lat_ns summary",
		`leed_lat_ns{dev="ssd0",quantile="0.5"}`,
		`leed_lat_ns_count{dev="ssd0"} 100`,
	} {
		if !strings.Contains(page, want) {
			t.Errorf("prometheus page missing %q:\n%s", want, page)
		}
	}
}

func TestAttributionOrderAndJSON(t *testing.T) {
	tr := NewTracer(nil, 0, 0)
	// Observe out of pipeline order plus one unknown stage.
	tr.Observe("device", 10, 20)
	tr.Observe("client", 1, 2)
	tr.Observe("zeta", 5, 5)
	tr.Observe("engine", 3, 4)
	a := tr.Attribution()
	var got []string
	for _, s := range a.Stages {
		got = append(got, s.Stage)
	}
	want := []string{"client", "engine", "device", "zeta"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("stage order = %v, want %v", got, want)
	}
	b, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(b), "[") {
		t.Fatalf("attribution JSON should be a plain stage array, got %s", b)
	}
	if a.String() == "" || !strings.Contains(a.String(), "queue.p99") {
		t.Fatalf("attribution table missing header:\n%s", a.String())
	}
}

func TestTracerSamplingRing(t *testing.T) {
	tr := NewTracer(nil, 2, 3)
	for i := 0; i < 10; i++ {
		trc := tr.Begin("op", Time(i))
		trc.Span("node", Time(i), Time(i))
		tr.End(trc)
	}
	s := tr.Samples()
	if len(s) != 3 {
		t.Fatalf("ring kept %d traces, want cap 3", len(s))
	}
	// Every 2nd of 10 traces sampled → 2,4,6,8,10th; ring keeps the last 3
	// (starts 5, 7, 9 by zero-based index).
	if s[0].Start != 5 || s[2].Start != 9 {
		t.Fatalf("ring contents = %v, want oldest Start=5 newest Start=9", s)
	}
}
