// Package obs is the observability substrate shared by every layer of the
// stack and by both runtime backends: the canonical Time type, the
// log-linear latency Histogram, a metrics Registry (counters, gauges,
// histograms) that snapshots deterministically under sim and serves
// Prometheus text on wallclock, and per-request trace spans that attribute
// latency to pipeline stages (queue wait vs service time).
//
// obs is the lowest internal layer: it imports nothing from the rest of the
// repo, so runtime, flashsim, core, engine, cluster, netsim, chaos, bench
// and the baselines can all depend on it without cycles.
package obs

import "fmt"

// Time is a point in time, in nanoseconds: virtual nanoseconds since the
// start of the simulation on the sim backend, nanoseconds since Env creation
// on the wallclock backend. It doubles as a duration; arithmetic on Time
// values is plain integer arithmetic.
type Time int64

// Convenient duration units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String formats the time with an adaptive unit, e.g. "12.5us" or "3.2ms".
func (t Time) String() string {
	switch {
	case t < 2*Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < 2*Millisecond:
		return fmt.Sprintf("%.1fus", float64(t)/float64(Microsecond))
	case t < 2*Second:
		return fmt.Sprintf("%.2fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.2fs", float64(t)/float64(Second))
	}
}

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }
