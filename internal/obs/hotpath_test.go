package obs

import (
	"sync"
	"testing"
)

// TestHistConcurrentRecord hammers one Hist from many goroutines while a
// reader snapshots it, under -race in CI. Exactness: every sample must land
// somewhere (primary or an overflow stripe) and be visible once the dust
// settles.
func TestHistConcurrentRecord(t *testing.T) {
	h := NewHist()
	const (
		writers = 8
		perW    = 5000
	)
	var writersWG, readerWG sync.WaitGroup
	stop := make(chan struct{})
	readerWG.Add(1)
	go func() { // concurrent reader: snapshots must never tear or deadlock
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				h.Snap()
				h.CumBuckets()
				h.Count()
			}
		}
	}()
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			for i := 0; i < perW; i++ {
				h.Record(Time(w*perW + i))
			}
		}(w)
	}
	writersWG.Wait()
	close(stop)
	readerWG.Wait()

	if got := h.Count(); got != writers*perW {
		t.Fatalf("count = %d, want %d", got, writers*perW)
	}
	snap := h.Snap()
	if snap.Count != writers*perW {
		t.Fatalf("snap count = %d, want %d", snap.Count, writers*perW)
	}
	cum, total := h.CumBuckets()
	if total != writers*perW || cum[len(cum)-1] > total {
		t.Fatalf("cum buckets inconsistent: last=%d total=%d", cum[len(cum)-1], total)
	}
}

// TestHistStripesMergeDeterministic checks a striped histogram summarizes
// identically to an unstriped one fed the same samples: diverting a sample
// to a stripe must never change what readers see.
func TestHistStripesMergeDeterministic(t *testing.T) {
	a, b := NewHist(), NewHist()
	for i := 0; i < 1000; i++ {
		a.Record(Time(i * 17))
	}
	// Force b's samples through the overflow stripes by holding the
	// primary mutex.
	b.mu.Lock()
	for i := 0; i < 1000; i++ {
		b.Record(Time(i * 17))
	}
	b.mu.Unlock()
	if sa, sb := a.Snap(), b.Snap(); sa != sb {
		t.Fatalf("striped snap %+v differs from unstriped %+v", sb, sa)
	}
	ca, ta := a.CumBuckets()
	cb, tb := b.CumBuckets()
	if ta != tb {
		t.Fatalf("totals differ: %d vs %d", ta, tb)
	}
	for i := range ca {
		if ca[i] != cb[i] {
			t.Fatalf("bucket %d differs: %d vs %d", i, ca[i], cb[i])
		}
	}
}

// TestTracePoolLifecycle checks End recycles traces without corrupting
// previously sampled ring entries, and that a recycled trace comes back
// clean from Begin.
func TestTracePoolLifecycle(t *testing.T) {
	tr := NewTracer(nil, 1, 8) // sample every trace
	for i := 0; i < 32; i++ {
		trc := tr.Begin("get", Time(i))
		trc.Span("node", Time(i), Time(2*i))
		trc.Span("engine", 1, 2)
		if len(trc.Spans) != 2 {
			t.Fatalf("begin returned a dirty trace: %d spans", len(trc.Spans))
		}
		tr.End(trc)
	}
	samples := tr.Samples()
	if len(samples) != 8 {
		t.Fatalf("ring holds %d, want 8", len(samples))
	}
	for i, s := range samples {
		want := Time(24 + i) // oldest retained is the 25th trace (index 24)
		if s.Start != want || len(s.Spans) != 2 {
			t.Fatalf("sample %d: start=%v spans=%d, want start=%v spans=2", i, s.Start, len(s.Spans), want)
		}
		if s.Spans[0].Queue != want || s.Spans[0].Service != 2*want {
			t.Fatalf("sample %d spans corrupted by pooling: %+v", i, s.Spans[0])
		}
	}
}

// TestTraceLifecycleAllocFree pins the pooled trace contract: a full
// Begin/Span/End cycle of an unsampled trace allocates nothing once the
// pool and span capacity are warm, and a pre-bound StageBind observation
// is likewise free.
func TestTraceLifecycleAllocFree(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg, 1<<30, 8) // sampling effectively off past the first trace
	for i := 0; i < 8; i++ {       // warm the pool, span capacity, and stage hists
		trc := tr.Begin("get", Time(i))
		trc.Span("node", 1, 2)
		trc.Span("engine", 3, 4)
		tr.End(trc)
	}
	if got := testing.AllocsPerRun(200, func() {
		trc := tr.Begin("get", 1)
		trc.Span("node", 1, 2)
		trc.Span("engine", 3, 4)
		tr.End(trc)
	}); got != 0 {
		t.Errorf("trace lifecycle: %.1f allocs/op, want 0", got)
	}

	b := tr.Bind("node")
	if got := testing.AllocsPerRun(200, func() { b.Observe(5, 10) }); got != 0 {
		t.Errorf("StageBind.Observe: %.1f allocs/op, want 0", got)
	}
}

// TestStageBindObserve checks the pre-bound handle feeds the same
// histograms Tracer.Observe does, and tolerates nil.
func TestStageBindObserve(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg, 0, 0)
	b := tr.Bind("node")
	b.Observe(5, 10)
	tr.Observe("node", 7, 14)
	if got := reg.Hist("leed_stage_queue_ns", "stage", "node").Count(); got != 2 {
		t.Fatalf("queue count = %d, want 2 (bound + direct share a series)", got)
	}
	var nilB *StageBind
	nilB.Observe(1, 2) // must not panic
	var nilT *Tracer
	if nilT.Bind("x") != nil {
		t.Fatal("nil tracer must bind nil")
	}
}
