package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestServeMetricsEndpoints(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg, 1, 16)
	reg.Counter("leed_test_ops_total", "dev", "ssd0").Add(42)
	reg.Hist("leed_test_lat_ns").Record(1000)
	trc := tr.Begin("get", 0)
	trc.Span("device", 100, 200)
	tr.End(trc)

	srv, err := ServeMetrics("127.0.0.1:0", reg, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return string(b)
	}

	page := get("/metrics")
	for _, want := range []string{
		`leed_test_ops_total{dev="ssd0"} 42`,
		`leed_test_lat_ns{quantile="0.5"}`,
		`leed_stage_service_ns{stage="device",quantile="0.99"}`,
	} {
		if !strings.Contains(page, want) {
			t.Errorf("/metrics missing %q:\n%s", want, page)
		}
	}

	var snap Snapshot
	if err := json.Unmarshal([]byte(get("/metrics.json")), &snap); err != nil {
		t.Fatalf("/metrics.json not valid JSON: %v", err)
	}
	if snap.Counters[`leed_test_ops_total{dev="ssd0"}`] != 42 {
		t.Fatalf("/metrics.json counters = %v", snap.Counters)
	}

	var traces struct {
		Traces []Trace `json:"traces"`
	}
	body := get("/traces")
	if err := json.Unmarshal([]byte(body), &traces); err != nil {
		t.Fatalf("/traces not valid JSON: %v\n%s", err, body)
	}
	if len(traces.Traces) != 1 || traces.Traces[0].Spans[0].Stage != "device" {
		t.Fatalf("/traces = %s", body)
	}
	if !strings.Contains(body, `"attribution"`) {
		t.Fatalf("/traces missing attribution: %s", body)
	}
}
