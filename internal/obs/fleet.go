package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Fleet aggregates the metrics of many processes into one cluster-wide
// view. Each member exports its registry in raw mergeable form
// (/metrics.raw.json); a poll loop feeds the scraped snapshots in through
// Update, and Merged rebuilds a single registry on demand:
//
//   - counters with the same series key sum across members,
//   - histograms with the same key merge bucket-by-bucket via the same
//     deterministic Histogram.Merge the in-process path uses (exact, unlike
//     combining quantile summaries),
//   - gauges are re-keyed with an instance label — a gauge like a view epoch
//     or queue depth has no meaningful cross-process sum.
//
// The aggregator's own registry is folded in as instance "manager", so
// fleet-health series (member count, scrape totals) and control-plane
// metrics appear on the same aggregated page.
type Fleet struct {
	self *Registry

	mu      sync.Mutex
	members map[string]RawSnapshot

	scrapes   *Counter
	scrapeErr *Counter
	mergeErr  *Counter
	memberG   *Gauge
}

// NewFleet returns a fleet folding self in as instance "manager". self may
// be nil (aggregation still works; health series go unregistered).
func NewFleet(self *Registry) *Fleet {
	return &Fleet{
		self:      self,
		members:   map[string]RawSnapshot{},
		scrapes:   self.Counter("leed_fleet_scrapes_total"),
		scrapeErr: self.Counter("leed_fleet_scrape_errors_total"),
		mergeErr:  self.Counter("leed_fleet_merge_errors_total"),
		memberG:   self.Gauge("leed_fleet_members"),
	}
}

// Update replaces instance's snapshot with a fresh scrape.
func (f *Fleet) Update(instance string, snap RawSnapshot) {
	f.mu.Lock()
	f.members[instance] = snap
	n := len(f.members)
	f.mu.Unlock()
	f.scrapes.Inc()
	f.memberG.Set(int64(n))
}

// Remove drops instance (a departed or unreachable member). Its last
// snapshot stops contributing to the merge.
func (f *Fleet) Remove(instance string) {
	f.mu.Lock()
	delete(f.members, instance)
	n := len(f.members)
	f.mu.Unlock()
	f.memberG.Set(int64(n))
}

// ScrapeError counts one failed member scrape.
func (f *Fleet) ScrapeError() { f.scrapeErr.Inc() }

// Instances returns the current member names, sorted.
func (f *Fleet) Instances() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.members))
	for name := range f.members {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// splitKey splits a rendered series key into base name and label string.
func splitKey(key string) (name, labels string) {
	if i := strings.IndexByte(key, '{'); i >= 0 && strings.HasSuffix(key, "}") {
		return key[:i], key[i+1 : len(key)-1]
	}
	return key, ""
}

// withInstance adds an instance label to a rendered label string, keeping
// the pair list sorted (the canonical form renderLabels produces).
func withInstance(labels, instance string) string {
	pair := fmt.Sprintf("instance=%q", instance)
	if labels == "" {
		return pair
	}
	parts := strings.Split(labels, ",")
	parts = append(parts, pair)
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// Merged rebuilds the aggregated registry from the latest member snapshots
// (plus the aggregator's own registry as instance "manager"). The result is
// a plain Registry, so every existing renderer — Prometheus text, JSON
// snapshot, raw dump — works on the cluster-wide view unchanged.
func (f *Fleet) Merged() *Registry {
	f.mu.Lock()
	members := make(map[string]RawSnapshot, len(f.members)+1)
	for name, snap := range f.members {
		members[name] = snap
	}
	f.mu.Unlock()
	if f.self != nil {
		members["manager"] = f.self.Raw()
	}

	names := make([]string, 0, len(members))
	for name := range members {
		names = append(names, name)
	}
	sort.Strings(names)

	merged := NewRegistry()
	for _, instance := range names {
		snap := members[instance]
		for key, v := range snap.Counters {
			name, labels := splitKey(key)
			merged.lookupRendered(name, labels, kindCounter).c.Add(v)
		}
		for key, v := range snap.Gauges {
			name, labels := splitKey(key)
			merged.lookupRendered(name, withInstance(labels, instance), kindGauge).g.Set(v)
		}
		for key, d := range snap.Hists {
			h, err := HistFromDump(d)
			if err != nil {
				f.mergeErr.Inc()
				continue
			}
			name, labels := splitKey(key)
			merged.lookupRendered(name, labels, kindHist).h.Merge(h)
		}
	}
	return merged
}

// Attribution builds the cluster-wide latency-attribution table from the
// merged leed_stage_queue_ns / leed_stage_service_ns histograms — the same
// rows a single process's tracer produces, now summed over every process the
// traced requests crossed.
func (f *Fleet) Attribution() Attribution {
	merged := f.Merged()
	type pair struct{ queue, service *Hist }
	stages := map[string]pair{}
	merged.mu.Lock()
	all := make([]*series, 0, len(merged.series))
	for _, s := range merged.series {
		all = append(all, s)
	}
	merged.mu.Unlock()
	for _, s := range all {
		if s.kind != kindHist {
			continue
		}
		var which int
		switch s.name {
		case "leed_stage_queue_ns":
			which = 1
		case "leed_stage_service_ns":
			which = 2
		default:
			continue
		}
		stage := labelValue(s.labels, "stage")
		if stage == "" {
			continue
		}
		p := stages[stage]
		if which == 1 {
			p.queue = s.h
		} else {
			p.service = s.h
		}
		stages[stage] = p
	}

	names := make([]string, 0, len(stages))
	for name := range stages {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		oi, iok := stageOrder[names[i]]
		oj, jok := stageOrder[names[j]]
		switch {
		case iok && jok:
			return oi < oj
		case iok:
			return true
		case jok:
			return false
		default:
			return names[i] < names[j]
		}
	})
	var a Attribution
	for _, name := range names {
		q := stages[name].queue.Snap()
		s := stages[name].service.Snap()
		a.Stages = append(a.Stages, StageLat{
			Stage:      name,
			Count:      s.Count,
			QueueP50:   q.P50,
			QueueP99:   q.P99,
			ServiceP50: s.P50,
			ServiceP99: s.P99,
			QueueMean:  q.Mean,
			SvcMean:    s.Mean,
		})
	}
	return a
}

// labelValue extracts one label's value from a rendered label string.
func labelValue(labels, key string) string {
	for _, part := range strings.Split(labels, ",") {
		if rest, ok := strings.CutPrefix(part, key+"="); ok {
			if v, err := strconv.Unquote(rest); err == nil {
				return v
			}
		}
	}
	return ""
}

// fetchClient bounds how long one member scrape may hang: a wedged member
// must not stall the poll loop past the next tick.
var fetchClient = &http.Client{Timeout: 2 * time.Second}

// FetchRaw scrapes one member's raw snapshot from its /metrics.raw.json URL.
func FetchRaw(url string) (RawSnapshot, error) {
	var snap RawSnapshot
	resp, err := fetchClient.Get(url)
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return snap, fmt.Errorf("obs: scrape %s: status %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return snap, fmt.Errorf("obs: scrape %s: %w", url, err)
	}
	return snap, nil
}
