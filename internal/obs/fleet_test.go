package obs

import (
	"strings"
	"testing"
)

// memberReg builds one fake member registry with a counter, a labeled
// counter, a gauge, and a stage histogram pair holding n observations.
func memberReg(ops int64, epoch int64, lat Time) *Registry {
	r := NewRegistry()
	r.Counter("leed_node_gets_total").Add(ops)
	r.Counter("leed_device_reads_total", "dev", "ssd0").Add(2 * ops)
	r.Gauge("leed_cluster_view_epoch").Set(epoch)
	for i := int64(0); i < ops; i++ {
		r.Hist("leed_stage_queue_ns", "stage", "node").Record(lat / 2)
		r.Hist("leed_stage_service_ns", "stage", "node").Record(lat)
	}
	return r
}

// TestFleetMergeSemantics pins the three merge rules: counters sum across
// members, histograms merge bucket-exactly, gauges re-key per instance.
func TestFleetMergeSemantics(t *testing.T) {
	f := NewFleet(nil)
	f.Update("n1", memberReg(10, 3, 1000).Raw())
	f.Update("n2", memberReg(5, 4, 4000).Raw())

	snap := f.Merged().Snapshot()
	if got := snap.Counters["leed_node_gets_total"]; got != 15 {
		t.Errorf("merged counter = %d, want 15 (10+5)", got)
	}
	if got := snap.Counters[`leed_device_reads_total{dev="ssd0"}`]; got != 30 {
		t.Errorf("merged labeled counter = %d, want 30", got)
	}
	// Gauges must NOT sum: each member's value survives under its instance.
	if got := snap.Gauges[`leed_cluster_view_epoch{instance="n1"}`]; got != 3 {
		t.Errorf("n1 gauge = %d, want 3; gauges: %v", got, snap.Gauges)
	}
	if got := snap.Gauges[`leed_cluster_view_epoch{instance="n2"}`]; got != 4 {
		t.Errorf("n2 gauge = %d, want 4; gauges: %v", got, snap.Gauges)
	}
	if _, ok := snap.Gauges["leed_cluster_view_epoch"]; ok {
		t.Error("un-instanced gauge leaked into the merge")
	}
	h := snap.Hists[`leed_stage_service_ns{stage="node"}`]
	if h.Count != 15 {
		t.Errorf("merged hist count = %d, want 15", h.Count)
	}

	// A removed member's contribution disappears on the next merge.
	f.Remove("n2")
	snap = f.Merged().Snapshot()
	if got := snap.Counters["leed_node_gets_total"]; got != 10 {
		t.Errorf("post-remove counter = %d, want 10", got)
	}
}

// TestFleetMergeExactHistogram checks the histogram path is Dump/Merge exact:
// merging two members equals one histogram fed both observation streams.
func TestFleetMergeExactHistogram(t *testing.T) {
	want := NewHistogram()
	a, b := NewHistogram(), NewHistogram()
	for i := Time(1); i <= 1000; i *= 3 {
		a.Record(i)
		want.Record(i)
	}
	for i := Time(2); i <= 5000; i *= 2 {
		b.Record(i)
		want.Record(i)
	}
	ra, rb := NewRegistry(), NewRegistry()
	ra.Hist("leed_test_lat_ns").Merge(a)
	rb.Hist("leed_test_lat_ns").Merge(b)
	f := NewFleet(nil)
	f.Update("a", ra.Raw())
	f.Update("b", rb.Raw())
	got := f.Merged().Snapshot().Hists["leed_test_lat_ns"]
	ws := want.Snap()
	if got.Count != ws.Count || got.Sum != ws.Sum || got.P50 != ws.P50 || got.P99 != ws.P99 {
		t.Errorf("merged hist %+v != direct %+v", got, ws)
	}
}

// TestFleetAttribution builds the cluster-wide attribution table from two
// members' stage histograms and checks rows merge and order correctly.
func TestFleetAttribution(t *testing.T) {
	f := NewFleet(nil)
	f.Update("n1", memberReg(8, 1, 1000).Raw())
	f.Update("n2", memberReg(4, 1, 2000).Raw())
	a := f.Attribution()
	if len(a.Stages) != 1 {
		t.Fatalf("attribution rows = %d, want 1 (node): %+v", len(a.Stages), a.Stages)
	}
	row := a.Stages[0]
	if row.Stage != "node" || row.Count != 12 {
		t.Errorf("row = %+v, want stage=node count=12", row)
	}
}

// TestFleetSelfAndHealthSeries pins the aggregator's own health series and
// its self-inclusion as instance "manager" — the golden names the CI smoke
// greps on the manager's aggregated /metrics.
func TestFleetSelfAndHealthSeries(t *testing.T) {
	self := NewRegistry()
	self.Counter("leed_mgr_heartbeats_total").Add(7)
	f := NewFleet(self)
	f.Update("n1", memberReg(1, 1, 10).Raw())
	f.ScrapeError()

	var b strings.Builder
	f.Merged().WritePrometheus(&b)
	out := b.String()
	for _, series := range []string{
		"leed_fleet_scrapes_total",
		"leed_fleet_scrape_errors_total",
		"leed_fleet_members",
		"leed_mgr_heartbeats_total",
		"leed_node_gets_total",
	} {
		if !strings.Contains(out, series) {
			t.Errorf("aggregated page missing series %q:\n%s", series, out)
		}
	}
}
