package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
)

// Server is a metrics endpoint bound to one registry and (optionally) one
// tracer. It exists on the wallclock backend only — under sim there is no
// wire, callers snapshot the registry directly.
type Server struct {
	Addr string // actual listen address (useful when the caller passed :0)
	srv  *http.Server
	ln   net.Listener
}

// ServeMetrics starts an HTTP server on addr exposing:
//
//	/metrics          Prometheus text exposition of every registry series
//	/metrics.json     the deterministic JSON snapshot
//	/metrics.raw.json the raw mergeable snapshot (what fleet aggregation
//	                  scrapes; histograms as bucket dumps, not summaries)
//	/traces           the tracer's sampled whole traces (JSON array)
//	/debug/pprof      the standard Go profiling endpoints (heap, cpu,
//	                  allocs…), registered explicitly so the hot path's
//	                  allocation budget can be audited against a live server
//
// The server runs on its own goroutines; instruments are atomic or
// mutex-guarded precisely so these handlers can read them mid-run.
func ServeMetrics(addr string, reg *Registry, tr *Tracer) (*Server, error) {
	return ServeMetricsWith(addr, reg, tr, nil)
}

// ServeMetricsWith is ServeMetrics plus caller-supplied handlers. An extra
// handler whose pattern collides with a default endpoint replaces it — the
// manager uses this to serve the fleet-aggregated view on /metrics while
// keeping its own raw snapshot scrapeable.
func ServeMetricsWith(addr string, reg *Registry, tr *Tracer, extra map[string]http.HandlerFunc) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	handlers := map[string]http.HandlerFunc{
		"/metrics": func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			reg.WritePrometheus(w)
		},
		"/metrics.json": func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = reg.Snapshot().WriteJSON(w)
		},
		"/metrics.raw.json": func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(reg.Raw())
		},
		"/traces": func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			samples := tr.Samples()
			if samples == nil {
				samples = []Trace{}
			}
			_ = enc.Encode(struct {
				Traces      []Trace     `json:"traces"`
				Attribution Attribution `json:"attribution"`
			}{samples, tr.Attribution()})
		},
		// Explicit registration: importing net/http/pprof only touches
		// http.DefaultServeMux, which this server deliberately does not use.
		"/debug/pprof/":        pprof.Index,
		"/debug/pprof/cmdline": pprof.Cmdline,
		"/debug/pprof/profile": pprof.Profile,
		"/debug/pprof/symbol":  pprof.Symbol,
		"/debug/pprof/trace":   pprof.Trace,
	}
	for pattern, h := range extra {
		handlers[pattern] = h
	}
	mux := http.NewServeMux()
	for pattern, h := range handlers {
		mux.HandleFunc(pattern, h)
	}
	s := &Server{Addr: ln.Addr().String(), srv: &http.Server{Handler: mux}, ln: ln}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Close shuts the listener down.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
