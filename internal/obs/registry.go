package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. Counters are atomic so they
// can be incremented from task context and read from an HTTP scrape
// goroutine on the wallclock backend without races. All methods are safe on
// a nil receiver (no-op / zero), so components can hold counters from an
// optional registry without guarding every increment.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds d.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Load returns the current value.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds d (may be negative).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Load returns the current value.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histShards is the overflow-stripe count for Hist. Small and fixed: a
// stripe only absorbs the samples that arrive while the primary mutex is
// held, so a handful is enough to keep writers from convoying.
const histShards = 8

// histShard is one lazily-materialized overflow stripe.
type histShard struct {
	mu sync.Mutex
	h  *Histogram
}

// Hist is a registry-owned histogram. The common case is one uncontended
// mutex around the primary Histogram; when Record finds that mutex held
// (wallclock scrape in flight, or a parallel recorder on another OS
// thread), the sample lands in one of a few overflow stripes instead of
// queueing on the lock. Readers merge primary and stripes under the primary
// mutex, so every snapshot is complete and self-consistent. Under the sim
// backend execution is serial, TryLock always succeeds, and the stripes
// stay nil — merged output is byte-identical to the unstriped histogram,
// which the golden-snapshot tests rely on.
type Hist struct {
	mu sync.Mutex
	h  Histogram

	next   atomic.Uint32 // round-robin stripe pick under contention
	shards [histShards]histShard
}

// NewHist returns an empty standalone Hist (not registered anywhere).
func NewHist() *Hist { return &Hist{h: Histogram{min: int64(^uint64(0) >> 1)}} }

// Record adds one observation. Never blocks behind a reader: contended
// samples divert to an overflow stripe.
func (x *Hist) Record(d Time) {
	if x == nil {
		return
	}
	if x.mu.TryLock() {
		x.h.Record(d)
		x.mu.Unlock()
		return
	}
	sh := &x.shards[x.next.Add(1)%histShards]
	sh.mu.Lock()
	if sh.h == nil {
		sh.h = NewHistogram()
	}
	sh.h.Record(d)
	sh.mu.Unlock()
}

// mergedLocked folds the overflow stripes into a copy of the primary
// histogram. Caller holds x.mu.
func (x *Hist) mergedLocked() Histogram {
	m := x.h
	for i := range x.shards {
		sh := &x.shards[i]
		sh.mu.Lock()
		if sh.h != nil {
			m.Merge(sh.h)
		}
		sh.mu.Unlock()
	}
	return m
}

// Merge adds all of o's observations.
func (x *Hist) Merge(o *Histogram) {
	if x == nil || o == nil {
		return
	}
	x.mu.Lock()
	x.h.Merge(o)
	x.mu.Unlock()
}

// Snap summarizes the histogram (primary plus overflow stripes).
func (x *Hist) Snap() HistSnap {
	if x == nil {
		return HistSnap{}
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	m := x.mergedLocked()
	return m.Snap()
}

// Clone returns a copy of the underlying histogram, stripes folded in.
func (x *Hist) Clone() *Histogram {
	if x == nil {
		return NewHistogram()
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	c := x.mergedLocked()
	return &c
}

// Dump exports the raw mergeable form (primary plus overflow stripes).
func (x *Hist) Dump() HistDump {
	if x == nil {
		return HistDump{}
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	m := x.mergedLocked()
	return m.Dump()
}

// Count returns the number of recorded observations.
func (x *Hist) Count() int64 {
	if x == nil {
		return 0
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	n := x.h.Count()
	for i := range x.shards {
		sh := &x.shards[i]
		sh.mu.Lock()
		if sh.h != nil {
			n += sh.h.Count()
		}
		sh.mu.Unlock()
	}
	return n
}

// CumBuckets returns the cumulative counts at HistPromEdges plus the total
// count, taken under one lock so the pair is self-consistent.
func (x *Hist) CumBuckets() ([]int64, int64) {
	if x == nil {
		return make([]int64, len(HistPromEdges)), 0
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	m := x.mergedLocked()
	return m.CumBuckets(), m.Count()
}

type seriesKind int

const (
	kindCounter seriesKind = iota
	kindGauge
	kindHist
)

type series struct {
	name   string // base metric name, e.g. leed_node_gets_total
	labels string // rendered label set, e.g. `node="101"` ("" if none)
	kind   seriesKind
	c      *Counter
	g      *Gauge
	h      *Hist
}

// key is the full series identity, e.g. `leed_node_gets_total{node="101"}`.
func (s *series) key() string {
	if s.labels == "" {
		return s.name
	}
	return s.name + "{" + s.labels + "}"
}

// Registry holds a set of named metric series. Lookups are idempotent: the
// same (name, labels) always returns the same instrument, so two components
// naming the same series share a counter. All methods are safe on a nil
// receiver — they hand back working but unregistered instruments — which
// lets every component treat its registry as optional.
type Registry struct {
	mu     sync.Mutex
	series map[string]*series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{series: make(map[string]*series)}
}

// renderLabels turns variadic k1,v1,k2,v2 pairs into a canonical (sorted)
// label string. Odd trailing elements are ignored.
func renderLabels(labels []string) string {
	if len(labels) < 2 {
		return ""
	}
	pairs := make([]string, 0, len(labels)/2)
	for i := 0; i+1 < len(labels); i += 2 {
		pairs = append(pairs, fmt.Sprintf("%s=%q", labels[i], labels[i+1]))
	}
	sort.Strings(pairs)
	return strings.Join(pairs, ",")
}

// lookup finds or publishes the series. The instrument is allocated before
// the series becomes visible to other goroutines — publishing first and
// filling in the instrument lazily would race two first-users of a series.
func (r *Registry) lookup(name string, kind seriesKind, labels []string) *series {
	s := &series{name: name, labels: renderLabels(labels), kind: kind}
	switch kind {
	case kindCounter:
		s.c = &Counter{}
	case kindGauge:
		s.g = &Gauge{}
	case kindHist:
		s.h = NewHist()
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if got, ok := r.series[s.key()]; ok && got.kind == kind {
		return got
	}
	r.series[s.key()] = s
	return s
}

// lookupRendered is lookup for an already-rendered label string — the fleet
// merge path rebuilds series from scraped snapshot keys, whose labels are
// canonical (sorted) by construction.
func (r *Registry) lookupRendered(name, labels string, kind seriesKind) *series {
	s := &series{name: name, labels: labels, kind: kind}
	switch kind {
	case kindCounter:
		s.c = &Counter{}
	case kindGauge:
		s.g = &Gauge{}
	case kindHist:
		s.h = NewHist()
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if got, ok := r.series[s.key()]; ok && got.kind == kind {
		return got
	}
	r.series[s.key()] = s
	return s
}

// Counter returns the counter named name with the given label pairs,
// creating it on first use.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	return r.lookup(name, kindCounter, labels).c
}

// Gauge returns the gauge named name with the given label pairs.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	return r.lookup(name, kindGauge, labels).g
}

// Hist returns the histogram named name with the given label pairs.
func (r *Registry) Hist(name string, labels ...string) *Hist {
	return r.lookup(name, kindHist, labels).h
}

// Snapshot is a point-in-time copy of every series in a registry. Encoded
// as JSON it is deterministic: map keys sort, values are plain integers
// (nanoseconds for histogram summaries), so two seeded sim runs produce
// byte-identical snapshots.
type Snapshot struct {
	Counters map[string]int64    `json:"counters"`
	Gauges   map[string]int64    `json:"gauges"`
	Hists    map[string]HistSnap `json:"hists"`
}

// Snapshot copies out every series.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters: map[string]int64{},
		Gauges:   map[string]int64{},
		Hists:    map[string]HistSnap{},
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	all := make([]*series, 0, len(r.series))
	for _, s := range r.series {
		all = append(all, s)
	}
	r.mu.Unlock()
	for _, s := range all {
		switch s.kind {
		case kindCounter:
			snap.Counters[s.key()] = s.c.Load()
		case kindGauge:
			snap.Gauges[s.key()] = s.g.Load()
		case kindHist:
			snap.Hists[s.key()] = s.h.Snap()
		}
	}
	return snap
}

// RawSnapshot is the mergeable counterpart of Snapshot: histograms appear as
// raw bucket dumps instead of quantile summaries, so snapshots from many
// processes can be combined exactly. This is what /metrics.raw.json serves
// and what the manager's fleet aggregation scrapes. Keys are the rendered
// series identities (`name{label="v",...}`), identical to Snapshot's.
type RawSnapshot struct {
	Counters map[string]int64    `json:"counters"`
	Gauges   map[string]int64    `json:"gauges"`
	Hists    map[string]HistDump `json:"hists"`
}

// Raw copies out every series in mergeable form.
func (r *Registry) Raw() RawSnapshot {
	raw := RawSnapshot{
		Counters: map[string]int64{},
		Gauges:   map[string]int64{},
		Hists:    map[string]HistDump{},
	}
	if r == nil {
		return raw
	}
	r.mu.Lock()
	all := make([]*series, 0, len(r.series))
	for _, s := range r.series {
		all = append(all, s)
	}
	r.mu.Unlock()
	for _, s := range all {
		switch s.kind {
		case kindCounter:
			raw.Counters[s.key()] = s.c.Load()
		case kindGauge:
			raw.Gauges[s.key()] = s.g.Load()
		case kindHist:
			raw.Hists[s.key()] = s.h.Dump()
		}
	}
	return raw
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// String renders the snapshot as a sorted human-readable listing: one line
// per counter/gauge, one summary line per histogram. The output is
// deterministic for a deterministic snapshot.
func (s Snapshot) String() string {
	var b strings.Builder
	keys := make([]string, 0, len(s.Counters)+len(s.Gauges))
	for k := range s.Counters {
		keys = append(keys, k)
	}
	for k := range s.Gauges {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if v, ok := s.Counters[k]; ok {
			fmt.Fprintf(&b, "%-52s %d\n", k, v)
		} else {
			fmt.Fprintf(&b, "%-52s %d\n", k, s.Gauges[k])
		}
	}
	hkeys := make([]string, 0, len(s.Hists))
	for k := range s.Hists {
		hkeys = append(hkeys, k)
	}
	sort.Strings(hkeys)
	for _, k := range hkeys {
		h := s.Hists[k]
		fmt.Fprintf(&b, "%-52s n=%d mean=%v p50=%v p99=%v max=%v\n",
			k, h.Count, Time(h.Mean), Time(h.P50), Time(h.P99), Time(h.Max))
	}
	return b.String()
}

// promKey merges extra label pairs (e.g. quantile="0.5") into a rendered
// series key.
func promKey(name, labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return name
	case labels == "":
		return name + "{" + extra + "}"
	case extra == "":
		return name + "{" + labels + "}"
	default:
		return name + "{" + labels + "," + extra + "}"
	}
}

// WritePrometheus writes every series in Prometheus text exposition format.
// Counters and gauges emit one sample; histograms emit a summary (quantile
// samples plus _sum and _count) followed by cumulative _bucket samples at
// the fixed HistPromEdges bounds with an explicit le="+Inf" — the histogram
// form histogram_quantile can aggregate across instances, which the
// pre-computed quantiles cannot. le values are nanoseconds, matching every
// other time on the page. Output is sorted, so identical registries produce
// identical pages.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	all := make([]*series, 0, len(r.series))
	for _, s := range r.series {
		all = append(all, s)
	}
	r.mu.Unlock()
	sort.Slice(all, func(i, j int) bool {
		if all[i].name != all[j].name {
			return all[i].name < all[j].name
		}
		return all[i].labels < all[j].labels
	})
	lastType := ""
	for _, s := range all {
		switch s.kind {
		case kindCounter:
			if s.name != lastType {
				fmt.Fprintf(w, "# TYPE %s counter\n", s.name)
				lastType = s.name
			}
			fmt.Fprintf(w, "%s %d\n", s.key(), s.c.Load())
		case kindGauge:
			if s.name != lastType {
				fmt.Fprintf(w, "# TYPE %s gauge\n", s.name)
				lastType = s.name
			}
			fmt.Fprintf(w, "%s %d\n", s.key(), s.g.Load())
		case kindHist:
			if s.name != lastType {
				fmt.Fprintf(w, "# TYPE %s summary\n", s.name)
				lastType = s.name
			}
			h := s.h.Snap()
			for _, q := range [...]struct {
				l string
				v int64
			}{{"0.5", h.P50}, {"0.99", h.P99}, {"0.999", h.P999}} {
				fmt.Fprintf(w, "%s %d\n", promKey(s.name, s.labels, `quantile=`+fmt.Sprintf("%q", q.l)), q.v)
			}
			fmt.Fprintf(w, "%s %d\n", promKey(s.name+"_sum", s.labels, ""), h.Sum)
			fmt.Fprintf(w, "%s %d\n", promKey(s.name+"_count", s.labels, ""), h.Count)
			cum, total := s.h.CumBuckets()
			for i, e := range HistPromEdges {
				fmt.Fprintf(w, "%s %d\n", promKey(s.name+"_bucket", s.labels, fmt.Sprintf(`le="%d"`, e)), cum[i])
			}
			fmt.Fprintf(w, "%s %d\n", promKey(s.name+"_bucket", s.labels, `le="+Inf"`), total)
		}
	}
}
