package obs

import (
	"fmt"
	"math/bits"
)

// histSubBits is the number of sub-bucket bits per power-of-two major
// bucket. 5 bits gives <= ~3% relative quantile error, plenty for latency
// reporting.
const histSubBits = 5

// Histogram is a log-linear latency histogram: values are bucketed by the
// position of their highest set bit (major bucket) and the next histSubBits
// bits (sub bucket), like HdrHistogram. Recording is O(1) and allocation
// free after construction.
//
// A Histogram is not internally synchronized: it relies on the Env execution
// contract (one task at a time) like every other structure in the stack.
// When a histogram must be readable from outside task context — an HTTP
// metrics scrape on the wallclock backend — wrap it in a Registry Hist,
// which adds a mutex.
type Histogram struct {
	counts [64 << histSubBits]int64
	n      int64
	sum    int64
	min    int64
	max    int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{min: int64(^uint64(0) >> 1)} }

func histBucket(v int64) int {
	if v < 1 {
		v = 1
	}
	hi := 63 - bits.LeadingZeros64(uint64(v))
	if hi <= histSubBits {
		return int(v)
	}
	sub := (v >> (uint(hi) - histSubBits)) & ((1 << histSubBits) - 1)
	return ((hi - histSubBits + 1) << histSubBits) + int(sub)
}

func histBucketLow(b int) int64 {
	if b < (1 << (histSubBits + 1)) {
		return int64(b)
	}
	major := (b >> histSubBits) + histSubBits - 1
	sub := int64(b & ((1 << histSubBits) - 1))
	return (1 << uint(major)) | (sub << (uint(major) - histSubBits))
}

// Record adds one observation of duration d.
func (h *Histogram) Record(d Time) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.counts[histBucket(v)]++
	h.n++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.n }

// Sum returns the sum of all observations, in nanoseconds.
func (h *Histogram) Sum() int64 { return h.sum }

// Mean returns the average observation.
func (h *Histogram) Mean() Time {
	if h.n == 0 {
		return 0
	}
	return Time(h.sum / h.n)
}

// Min and Max return the observed extremes (0 when empty).
func (h *Histogram) Min() Time {
	if h.n == 0 {
		return 0
	}
	return Time(h.min)
}

// Max returns the largest observation.
func (h *Histogram) Max() Time {
	if h.n == 0 {
		return 0
	}
	return Time(h.max)
}

// Quantile returns an estimate of the q-quantile (0 <= q <= 1).
func (h *Histogram) Quantile(q float64) Time {
	if h.n == 0 {
		return 0
	}
	target := int64(q*float64(h.n) + 0.5)
	if target < 1 {
		target = 1
	}
	if target > h.n {
		target = h.n
	}
	var cum int64
	for b, c := range h.counts {
		cum += c
		if cum >= target {
			v := histBucketLow(b)
			if Time(v) > Time(h.max) {
				return Time(h.max)
			}
			return Time(v)
		}
	}
	return Time(h.max)
}

// P50, P99, P999 are convenience quantile accessors.
func (h *Histogram) P50() Time { return h.Quantile(0.50) }

// P99 returns the 99th percentile estimate.
func (h *Histogram) P99() Time { return h.Quantile(0.99) }

// P999 returns the 99.9th percentile estimate.
func (h *Histogram) P999() Time { return h.Quantile(0.999) }

// HistPromEdges are the fixed upper bounds, in nanoseconds, of the
// cumulative bucket exposition (the Prometheus `le` values): powers of two
// from 1us to ~8.6s. A fixed edge set keeps the bucket layout identical
// across scrapes, which is what makes histogram_quantile aggregable.
var HistPromEdges = func() []int64 {
	e := make([]int64, 0, 24)
	for k := uint(10); k <= 33; k++ {
		e = append(e, 1<<k)
	}
	return e
}()

// histBucketUp is the exclusive upper bound of bucket b, saturating at
// MaxInt64 where the next bound would overflow.
func histBucketUp(b int) int64 {
	if ((b+1)>>histSubBits)+histSubBits-1 >= 62 {
		return int64(^uint64(0) >> 1)
	}
	return histBucketLow(b + 1)
}

// CumBuckets returns the cumulative observation counts at HistPromEdges:
// result[i] counts observations whose bucket lies entirely at or below
// HistPromEdges[i]. The edges are aligned with the log-linear bucket
// boundaries, so the only approximation is observations exactly on an edge
// (counted one edge up). The implicit +Inf bucket is Count().
func (h *Histogram) CumBuckets() []int64 {
	out := make([]int64, len(HistPromEdges))
	var cum int64
	i := 0
	for b, c := range h.counts {
		if c == 0 {
			continue
		}
		up := histBucketUp(b)
		for i < len(out) && HistPromEdges[i] < up-1 {
			out[i] = cum
			i++
		}
		cum += c
	}
	for ; i < len(out); i++ {
		out[i] = cum
	}
	return out
}

// Merge adds all of o's observations into h.
func (h *Histogram) Merge(o *Histogram) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.n += o.n
	h.sum += o.sum
	if o.n > 0 {
		if o.min < h.min {
			h.min = o.min
		}
		if o.max > h.max {
			h.max = o.max
		}
	}
}

// Reset clears the histogram.
func (h *Histogram) Reset() {
	*h = Histogram{min: int64(^uint64(0) >> 1)}
}

// String summarizes the distribution.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v p99.9=%v max=%v",
		h.n, h.Mean(), h.P50(), h.P99(), h.P999(), h.Max())
}

// HistSnap is a point-in-time summary of a histogram, used in registry
// snapshots. All times are nanoseconds so the JSON form is backend-stable.
type HistSnap struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Mean  int64 `json:"mean"`
	P50   int64 `json:"p50"`
	P99   int64 `json:"p99"`
	P999  int64 `json:"p999"`
	Max   int64 `json:"max"`
}

// Snap summarizes the histogram.
func (h *Histogram) Snap() HistSnap {
	return HistSnap{
		Count: h.n,
		Sum:   h.sum,
		Mean:  int64(h.Mean()),
		P50:   int64(h.P50()),
		P99:   int64(h.P99()),
		P999:  int64(h.P999()),
		Max:   int64(h.Max()),
	}
}

// HistDump is the raw, mergeable form of a histogram: the sparse non-zero
// buckets plus the scalar state. Unlike HistSnap — whose quantile summaries
// cannot be combined across instances — two dumps merge exactly, which is
// what fleet aggregation needs: each process exports dumps, the manager
// rebuilds histograms and merges them with the same deterministic Merge the
// in-process path uses.
type HistDump struct {
	N   int64 `json:"n"`
	Sum int64 `json:"sum"`
	Min int64 `json:"min"` // 0 when empty
	Max int64 `json:"max"`
	// Buckets holds [bucket index, count] pairs, ascending by index,
	// non-zero counts only.
	Buckets [][2]int64 `json:"buckets,omitempty"`
}

// Dump exports the histogram's raw state.
func (h *Histogram) Dump() HistDump {
	d := HistDump{N: h.n, Sum: h.sum, Max: h.max}
	if h.n > 0 {
		d.Min = h.min
	} else {
		d.Max = 0
	}
	for b, c := range h.counts {
		if c != 0 {
			d.Buckets = append(d.Buckets, [2]int64{int64(b), c})
		}
	}
	return d
}

// HistFromDump rebuilds a histogram from a dump. Dumps cross process
// boundaries (a scraped /metrics.raw.json), so every field is validated:
// bucket indexes must be in range and ascending, counts positive, and the
// bucket total must equal N — a corrupted dump is an error, never a panic
// or a silently wrong merge.
func HistFromDump(d HistDump) (*Histogram, error) {
	h := NewHistogram()
	if d.N < 0 {
		return nil, fmt.Errorf("obs: hist dump: negative count %d", d.N)
	}
	var total int64
	last := int64(-1)
	for _, b := range d.Buckets {
		idx, c := b[0], b[1]
		if idx <= last || idx >= int64(len(h.counts)) {
			return nil, fmt.Errorf("obs: hist dump: bad bucket index %d", idx)
		}
		if c <= 0 {
			return nil, fmt.Errorf("obs: hist dump: bad bucket count %d", c)
		}
		h.counts[idx] = c
		total += c
		last = idx
	}
	if total != d.N {
		return nil, fmt.Errorf("obs: hist dump: bucket total %d != n %d", total, d.N)
	}
	h.n = d.N
	h.sum = d.Sum
	if d.N > 0 {
		h.min = d.Min
		h.max = d.Max
	}
	return h, nil
}
