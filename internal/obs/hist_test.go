package obs

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 || h.Min() != 0 {
		t.Fatal("empty histogram not zeroed")
	}
	for _, v := range []Time{10, 20, 30, 40} {
		h.Record(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Mean() != 25 {
		t.Fatalf("mean = %v", h.Mean())
	}
	if h.Min() != 10 || h.Max() != 40 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	h := NewHistogram()
	vals := make([]int64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// log-uniform over [1us, 10ms]
		v := int64(float64(Microsecond) * pow10(rng.Float64()*4))
		vals = append(vals, v)
		h.Record(Time(v))
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := vals[int(q*float64(len(vals)))-1]
		got := int64(h.Quantile(q))
		rel := float64(got-exact) / float64(exact)
		if rel < -0.08 || rel > 0.08 {
			t.Errorf("q=%v: got %d, exact %d (rel err %.3f)", q, got, exact, rel)
		}
	}
}

func pow10(x float64) float64 {
	r := 1.0
	for x >= 1 {
		r *= 10
		x--
	}
	// linear blend is fine for test data generation
	return r * (1 + 9*x/1.0) // maps [0,1) to roughly one decade
}

func TestHistogramBucketRoundTrip(t *testing.T) {
	// Property: bucket lower bound is <= value, and bucketing is monotone.
	f := func(raw uint32) bool {
		v := int64(raw)
		if v < 1 {
			v = 1
		}
		b := histBucket(v)
		lo := histBucketLow(b)
		if lo > v {
			return false
		}
		// Relative width of a bucket is bounded.
		hi := histBucketLow(b + 1)
		return hi <= 0 || float64(hi-lo) <= float64(lo)/8+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramRelativeErrorBound(t *testing.T) {
	// Property: with histSubBits sub-bucket bits, a bucket's lower bound is
	// within 2^-histSubBits (~3.1%) of any value it holds, so quantile
	// estimates from a single repeated value are within that bound. This
	// pins the documented "<= ~3% relative quantile error" contract.
	f := func(raw uint64) bool {
		v := int64(raw >> 1) // keep positive
		if v < 1 {
			v = 1
		}
		h := NewHistogram()
		for i := 0; i < 10; i++ {
			h.Record(Time(v))
		}
		got := int64(h.Quantile(0.5))
		if got > v {
			return false
		}
		rel := float64(v-got) / float64(v)
		return rel <= 1.0/float64(int64(1)<<histSubBits)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramQuantileBounds(t *testing.T) {
	// Property: quantile estimates never exceed the recorded max and the
	// 0-quantile never exceeds the 1-quantile.
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewHistogram()
		count := int(n)%50 + 1
		maxv := int64(0)
		for i := 0; i < count; i++ {
			v := rng.Int63n(1 << 30)
			if v > maxv {
				maxv = v
			}
			h.Record(Time(v))
		}
		if int64(h.Quantile(1.0)) > maxv {
			return false
		}
		return h.Quantile(0.01) <= h.Quantile(0.99)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramMergeEqualsCombined(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, both := NewHistogram(), NewHistogram(), NewHistogram()
		for i := 0; i < 200; i++ {
			v := Time(rng.Int63n(1 << 24))
			if i%2 == 0 {
				a.Record(v)
			} else {
				b.Record(v)
			}
			both.Record(v)
		}
		a.Merge(b)
		return a.Count() == both.Count() &&
			a.Mean() == both.Mean() &&
			a.Min() == both.Min() &&
			a.Max() == both.Max() &&
			a.P99() == both.P99()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Record(100)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("reset did not clear histogram")
	}
}

func TestHistogramRecordNegativeClamps(t *testing.T) {
	h := NewHistogram()
	h.Record(-5)
	if h.Count() != 1 || h.Min() != 0 {
		t.Fatalf("negative record mishandled: %v", h)
	}
}
