package obs

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func TestCumBuckets(t *testing.T) {
	h := NewHistogram()
	h.Record(1000)          // <= 1024 (first edge)
	h.Record(3000)          // <= 4096
	h.Record(3100)          // <= 4096
	h.Record(5 * Second)    // ~5e9, <= 2^33
	h.Record(Time(1) << 62) // beyond every edge: only +Inf sees it
	cum := h.CumBuckets()

	if len(cum) != len(HistPromEdges) {
		t.Fatalf("got %d buckets, want %d", len(cum), len(HistPromEdges))
	}
	at := func(edge int64) int64 {
		for i, e := range HistPromEdges {
			if e == edge {
				return cum[i]
			}
		}
		t.Fatalf("no edge %d", edge)
		return 0
	}
	if got := at(1 << 10); got != 1 {
		t.Errorf("cum(1024) = %d, want 1", got)
	}
	if got := at(1 << 12); got != 3 {
		t.Errorf("cum(4096) = %d, want 3", got)
	}
	if got := at(1 << 33); got != 4 {
		t.Errorf("cum(2^33) = %d, want 4 (the 2^62 outlier is +Inf only)", got)
	}
	prev := int64(0)
	for i, c := range cum {
		if c < prev {
			t.Fatalf("cumulative counts decreased at edge %d: %d < %d", HistPromEdges[i], c, prev)
		}
		prev = c
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
}

func TestPrometheusBucketExport(t *testing.T) {
	reg := NewRegistry()
	hist := reg.Hist("leed_bkt_ns", "dev", "ssd0")
	for i := 0; i < 10; i++ {
		hist.Record(Time(2000 + i))
	}
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	page := buf.String()

	// The summary lines must still be there (pinned by older tests), and
	// every fixed edge plus +Inf must appear exactly once.
	for _, want := range []string{
		`leed_bkt_ns{dev="ssd0",quantile="0.5"}`,
		`leed_bkt_ns_count{dev="ssd0"} 10`,
		`leed_bkt_ns_bucket{dev="ssd0",le="+Inf"} 10`,
		fmt.Sprintf(`leed_bkt_ns_bucket{dev="ssd0",le="%d"} 0`, 1<<10),
		fmt.Sprintf(`leed_bkt_ns_bucket{dev="ssd0",le="%d"} 10`, 1<<12),
	} {
		if !strings.Contains(page, want) {
			t.Errorf("page missing %q:\n%s", want, page)
		}
	}
	if got := strings.Count(page, "leed_bkt_ns_bucket{"); got != len(HistPromEdges)+1 {
		t.Errorf("got %d bucket lines, want %d", got, len(HistPromEdges)+1)
	}
}
