package flashsim

import (
	"bytes"
	"path/filepath"
	"testing"

	"leed/internal/sim"
)

// TestMmapReadLaneCoherent pins the inline read contract on the file
// devices: after a write completes, TryReadAt returns the written bytes
// (MAP_SHARED coherence with pwrite), unwritten sparse regions read as
// zeros, and out-of-range reads decline rather than fault.
func TestMmapReadLaneCoherent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dev.img")
	k := sim.New()
	defer k.Close()
	d, err := OpenAsyncFileDevice(k, path, 1<<20, AsyncOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.SetSyncReads(true); err != nil {
		t.Fatal(err)
	}

	payload := []byte("mmap-coherent-bytes")
	k.Go("io", func(p *sim.Proc) {
		if err := doIO(p, d, OpWrite, 8192, payload); err != nil {
			t.Errorf("write: %v", err)
		}
	})
	k.Run()

	got := make([]byte, len(payload))
	if !d.TryReadAt(got, 8192) {
		t.Fatal("inline read declined on an idle device")
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("inline read %q, want %q", got, payload)
	}

	hole := make([]byte, 64)
	hole[0] = 0xFF // must be overwritten by the zero-filled read
	if !d.TryReadAt(hole, 1<<19) {
		t.Fatal("inline read of a sparse hole declined")
	}
	for i, b := range hole {
		if b != 0 {
			t.Fatalf("sparse hole byte %d = %#x, want 0", i, b)
		}
	}

	if d.TryReadAt(make([]byte, 16), 1<<20-8) {
		t.Fatal("inline read past capacity must decline")
	}
	if d.TryReadAt(make([]byte, 16), -1) {
		t.Fatal("inline read at negative offset must decline")
	}

	if got := d.Stats().Reads; got != 2 {
		t.Fatalf("inline reads recorded %d, want 2", got)
	}
}

// TestMmapReadLaneOrdering pins the decline conditions that keep inline
// reads consistent with the submission queue's ordering guarantees: a read
// overlapping a queued write must wait for that write's bytes, and a device
// with sync reads off (or never enabled) serves nothing inline.
func TestMmapReadLaneOrdering(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dev.img")
	k := sim.New()
	defer k.Close()
	d, err := OpenAsyncFileDevice(k, path, 1<<20, AsyncOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	if d.TryReadAt(make([]byte, 8), 0) {
		t.Fatal("inline read must decline before SetSyncReads(true)")
	}
	if err := d.SetSyncReads(true); err != nil {
		t.Fatal(err)
	}

	k.Go("io", func(p *sim.Proc) {
		// Two writes: the first occupies the lone worker, the second sits in
		// the ordered queue. An inline read overlapping the queued write must
		// decline (it would otherwise see pre-write bytes); a read elsewhere
		// is free to proceed.
		first := &Op{Kind: OpWrite, Offset: 0, Data: []byte("head"), Done: p.Kernel().NewEvent()}
		second := &Op{Kind: OpWrite, Offset: 4096, Data: []byte("tail"), Done: p.Kernel().NewEvent()}
		d.Submit(first)
		d.Submit(second)
		if d.TryReadAt(make([]byte, 8), 4096) {
			t.Error("inline read overlapping a queued write must decline")
		}
		if !d.TryReadAt(make([]byte, 8), 1<<18) {
			t.Error("inline read clear of all queued writes must proceed")
		}
		p.Wait(first.Done)
		p.Wait(second.Done)
		// Queue drained: the overlap now reads the landed bytes.
		got := make([]byte, 4)
		if !d.TryReadAt(got, 4096) {
			t.Error("inline read declined on an idle device")
		} else if string(got) != "tail" {
			t.Errorf("inline read %q after write completion, want %q", got, "tail")
		}
	})
	k.Run()

	d.SetSyncReads(false)
	if d.TryReadAt(make([]byte, 8), 0) {
		t.Fatal("inline read must decline after SetSyncReads(false)")
	}
}

// TestFileDeviceMmapReadLane pins the synchronous sibling's conservative
// guard: inline reads serve only when no write or flush is queued.
func TestFileDeviceMmapReadLane(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dev.img")
	k := sim.New()
	defer k.Close()
	d, err := OpenFileDevice(k, path, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.SetSyncReads(true); err != nil {
		t.Fatal(err)
	}

	k.Go("io", func(p *sim.Proc) {
		w := &Op{Kind: OpWrite, Offset: 0, Data: []byte("sync"), Done: p.Kernel().NewEvent()}
		d.Submit(w)
		if d.TryReadAt(make([]byte, 4), 1<<18) {
			t.Error("inline read with a queued write must decline (FileDevice tracks no ranges)")
		}
		p.Wait(w.Done)
		got := make([]byte, 4)
		if !d.TryReadAt(got, 0) {
			t.Error("inline read declined on an idle device")
		} else if string(got) != "sync" {
			t.Errorf("inline read %q, want %q", got, "sync")
		}
	})
	k.Run()
}
