package flashsim

import (
	"fmt"
	"io"
	"os"

	"leed/internal/runtime"
)

// FileDevice is a functional device backed by a real file on disk, so a
// store's contents survive process restarts and the recovery path (§3.2.3)
// can be exercised across real invocations (see cmd/leedctl). Like
// MemDevice it models no latency; it is a persistence substrate, not a
// performance model.
type FileDevice struct {
	env      runtime.Env
	f        *os.File
	capacity int64
	stats    Stats
}

// OpenFileDevice opens (or creates) the image file at path with the given
// advertised capacity. The file is sparse: unwritten regions read as zero.
func OpenFileDevice(env runtime.Env, path string, capacity int64) (*FileDevice, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("flashsim: open image: %w", err)
	}
	return &FileDevice{env: env, f: f, capacity: capacity, stats: newStats()}, nil
}

// Capacity returns the advertised device size.
func (d *FileDevice) Capacity() int64 { return d.capacity }

// Stats returns cumulative counters.
func (d *FileDevice) Stats() Stats { return d.stats }

// Close syncs and closes the image file.
func (d *FileDevice) Close() error {
	if err := d.f.Sync(); err != nil {
		return err
	}
	return d.f.Close()
}

// Submit completes the operation at the current time against the
// backing file.
func (d *FileDevice) Submit(op *Op) {
	if err := checkRange(d.capacity, op); err != nil {
		d.env.After(0, func() { op.Done.Fire(err) })
		return
	}
	d.env.After(0, func() {
		switch op.Kind {
		case OpRead:
			n, err := d.f.ReadAt(op.Data, op.Offset)
			if err != nil && err != io.EOF {
				op.Done.Fire(fmt.Errorf("flashsim: file read: %w", err))
				return
			}
			// Reads past the written extent return zeros (sparse image).
			for i := n; i < len(op.Data); i++ {
				op.Data[i] = 0
			}
			d.stats.Reads++
			d.stats.BytesRead += int64(len(op.Data))
			d.stats.ReadLat.Record(0)
		case OpWrite:
			if _, err := d.f.WriteAt(op.Data, op.Offset); err != nil {
				op.Done.Fire(fmt.Errorf("flashsim: file write: %w", err))
				return
			}
			d.stats.Writes++
			d.stats.BytesWritten += int64(len(op.Data))
			d.stats.WriteLat.Record(0)
		}
		op.Done.Fire(nil)
	})
}
