package flashsim

import (
	"fmt"
	"io"
	"os"
	"syscall"
	"time"

	"leed/internal/obs"
	"leed/internal/runtime"
)

// serviceSleep blocks for a modeled service time (no-op when zero). Devices
// use it to put an NVMe-class latency floor under page-cache syscalls that
// would otherwise complete in microseconds; where the sleep happens — on an
// offload worker for AsyncFileDevice, in scheduler context holding the
// runtime lock for FileDevice — is exactly the architectural difference the
// wall-clock benchmark measures.
func serviceSleep(t runtime.Time) {
	if t > 0 {
		time.Sleep(time.Duration(t))
	}
}

// openImage opens (or creates) a sparse image file. With durable set the
// file is opened O_DSYNC, so every write syscall returns only after the data
// reaches the medium — the latency profile of a real flash device with
// forced unit access, rather than of the page cache. Durable mode is what
// makes the sync-vs-async device comparison meaningful: page-cache writes
// complete in microseconds and hide the cost of doing I/O inside the
// runtime lock.
func openImage(path string, durable bool) (*os.File, error) {
	flags := os.O_RDWR | os.O_CREATE
	if durable {
		flags |= syscall.O_DSYNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("flashsim: open image: %w", err)
	}
	return f, nil
}

// FileOptions shape a FileDevice. The zero value is the plain persistence
// substrate: no modeled latency, page-cache durability.
type FileOptions struct {
	// Durable opens the image O_DSYNC (see openImage).
	Durable bool
	// ReadTime and WriteTime, when nonzero, add a modeled per-op service
	// floor, slept in scheduler context — i.e. holding the runtime lock on
	// the wallclock backend. That is not a bug: a synchronous in-context
	// device stalls the world for its service time, which is exactly what
	// AsyncFileDevice's submission queue exists to avoid. Wall-clock
	// benchmarking only; leave zero under the sim backend.
	ReadTime  runtime.Time
	WriteTime runtime.Time
}

// FileDevice is a functional device backed by a real file on disk, so a
// store's contents survive process restarts and the recovery path (§3.2.3)
// can be exercised across real invocations (see cmd/leedctl). By default it
// models no latency and is purely a persistence substrate; FileOptions can
// put an NVMe-class service-time floor under each op for wall-clock
// benchmarking.
type FileDevice struct {
	env      runtime.Env
	f        *os.File
	capacity int64
	opt      FileOptions
	stats    devStats
	queued   int // ops submitted but not yet completed

	queuedWrites int    // writes/flushes among queued (guards inline reads)
	mmap         []byte // read-only view of the image (see mmapread.go)
	syncReads    bool
}

// OpenFileDevice opens (or creates) the image file at path with the given
// advertised capacity. The file is sparse: unwritten regions read as zero.
func OpenFileDevice(env runtime.Env, path string, capacity int64) (*FileDevice, error) {
	return OpenFileDeviceOpts(env, path, capacity, FileOptions{})
}

// OpenFileDeviceDurable is OpenFileDevice with the image opened O_DSYNC:
// every write completes at device latency (see openImage).
func OpenFileDeviceDurable(env runtime.Env, path string, capacity int64) (*FileDevice, error) {
	return OpenFileDeviceOpts(env, path, capacity, FileOptions{Durable: true})
}

// OpenFileDeviceOpts is OpenFileDevice with explicit options.
func OpenFileDeviceOpts(env runtime.Env, path string, capacity int64, opt FileOptions) (*FileDevice, error) {
	f, err := openImage(path, opt.Durable)
	if err != nil {
		return nil, err
	}
	return &FileDevice{env: env, f: f, capacity: capacity, opt: opt, stats: newStats()}, nil
}

// Capacity returns the advertised device size.
func (d *FileDevice) Capacity() int64 { return d.capacity }

// Stats returns cumulative counters.
func (d *FileDevice) Stats() Stats { return d.stats.Stats }

// Observe binds the device to a metrics registry and tracer.
func (d *FileDevice) Observe(reg *obs.Registry, tr *obs.Tracer, dev string) {
	d.stats.o = newDevObs(reg, tr, dev)
}

// Close syncs and closes the image file.
func (d *FileDevice) Close() error {
	munmapImage(d.mmap)
	d.mmap = nil
	if err := d.f.Sync(); err != nil {
		return err
	}
	return d.f.Close()
}

// Submit completes the operation at the current time against the backing
// file. The syscall runs in scheduler context — on the wallclock backend
// that means inside the runtime lock, serializing all I/O behind one core
// (the submission-queue path in AsyncFileDevice exists to avoid exactly
// this). Latency recorded is real submit-to-complete time, which on the
// wallclock backend includes the wait behind other ops' syscalls.
func (d *FileDevice) Submit(op *Op) {
	if err := checkRange(d.capacity, op); err != nil {
		d.env.After(0, func() { op.Done.Fire(err) })
		return
	}
	op.submitted = d.env.Now()
	d.queued++
	if op.Kind != OpRead {
		d.queuedWrites++
	}
	d.stats.noteQueued(d.queued)
	d.env.After(0, func() {
		d.queued--
		if op.Kind != OpRead {
			d.queuedWrites--
		}
		op.started = d.env.Now()
		switch op.Kind {
		case OpRead:
			n, err := d.f.ReadAt(op.Data, op.Offset)
			if err != nil && err != io.EOF {
				op.Done.Fire(fmt.Errorf("flashsim: file read: %w", err))
				return
			}
			// Reads past the written extent return zeros (sparse image).
			for i := n; i < len(op.Data); i++ {
				op.Data[i] = 0
			}
			serviceSleep(d.opt.ReadTime)
		case OpWrite:
			if _, err := d.f.WriteAt(op.Data, op.Offset); err != nil {
				op.Done.Fire(fmt.Errorf("flashsim: file write: %w", err))
				return
			}
			serviceSleep(d.opt.WriteTime)
		case OpFlush:
			if err := d.f.Sync(); err != nil {
				op.Done.Fire(fmt.Errorf("flashsim: file sync: %w", err))
				return
			}
		}
		d.stats.record(op.Kind, len(op.Data), op.started-op.submitted, d.env.Now()-op.started)
		op.Done.Fire(nil)
	})
}
