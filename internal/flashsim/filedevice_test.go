package flashsim

import (
	"path/filepath"
	"testing"

	"leed/internal/sim"
)

func TestFileDevicePersistsAcrossOpens(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dev.img")
	{
		k := sim.New()
		d, err := OpenFileDevice(k, path, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		k.Go("io", func(p *sim.Proc) {
			if err := doIO(p, d, OpWrite, 4096, []byte("persistent")); err != nil {
				t.Errorf("write: %v", err)
			}
		})
		k.Run()
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
		k.Close()
	}
	k := sim.New()
	defer k.Close()
	d, err := OpenFileDevice(k, path, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	buf := make([]byte, 10)
	k.Go("io", func(p *sim.Proc) {
		if err := doIO(p, d, OpRead, 4096, buf); err != nil {
			t.Errorf("read: %v", err)
		}
	})
	k.Run()
	if string(buf) != "persistent" {
		t.Fatalf("read back %q", buf)
	}
}

func TestFileDeviceSparseReadsZero(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dev.img")
	k := sim.New()
	defer k.Close()
	d, err := OpenFileDevice(k, path, 1<<30) // 1GiB advertised, nothing written
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	buf := []byte{0xff, 0xff, 0xff, 0xff}
	k.Go("io", func(p *sim.Proc) {
		if err := doIO(p, d, OpRead, 512<<20, buf); err != nil {
			t.Errorf("read: %v", err)
		}
	})
	k.Run()
	for _, b := range buf {
		if b != 0 {
			t.Fatalf("sparse read = %v", buf)
		}
	}
}

func TestFileDeviceRangeCheck(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dev.img")
	k := sim.New()
	defer k.Close()
	d, err := OpenFileDevice(k, path, 4096)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	var ioErr error
	k.Go("io", func(p *sim.Proc) {
		ioErr = doIO(p, d, OpWrite, 4000, make([]byte, 200))
	})
	k.Run()
	if ioErr == nil {
		t.Fatal("out-of-range write accepted")
	}
}

func TestLatencyShimAddsServiceTime(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dev.img")
	k := sim.New()
	defer k.Close()
	fd, err := OpenFileDevice(k, path, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer fd.Close()
	spec := SamsungDCT983(1 << 20)
	spec.Jitter = 0
	d := NewLatencyShim(k, fd, spec)
	var lat sim.Time
	var got []byte
	k.Go("io", func(p *sim.Proc) {
		if err := doIO(p, d, OpWrite, 0, []byte("shimmed")); err != nil {
			t.Errorf("write: %v", err)
		}
		t0 := p.Now()
		got = make([]byte, 7)
		if err := doIO(p, d, OpRead, 0, got); err != nil {
			t.Errorf("read: %v", err)
		}
		lat = p.Now() - t0
	})
	k.Run()
	if string(got) != "shimmed" {
		t.Fatalf("data through shim corrupted: %q", got)
	}
	if lat < 40*sim.Microsecond {
		t.Fatalf("shim read latency = %v, want >= ReadBase", lat)
	}
}

func TestLatencyShimBoundsConcurrency(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dev.img")
	k := sim.New()
	defer k.Close()
	fd, _ := OpenFileDevice(k, path, 1<<20)
	defer fd.Close()
	spec := SamsungDCT983(1 << 20)
	spec.Jitter = 0
	spec.Parallelism = 2
	d := NewLatencyShim(k, fd, spec)
	const n = 10
	done := 0
	for i := 0; i < n; i++ {
		off := int64(i * 512)
		k.Go("io", func(p *sim.Proc) {
			doIO(p, d, OpRead, off, make([]byte, 512))
			done++
		})
	}
	end := k.Run()
	if done != n {
		t.Fatalf("completed %d", done)
	}
	// 10 reads, 2 at a time, ~56us each -> ~280us.
	if end < 250*sim.Microsecond {
		t.Fatalf("10 reads at parallelism 2 finished in %v", end)
	}
}

// TestFileDeviceLatencyMeasuredFromSubmit pins the stats fix: latency is
// submit-to-complete, not absolute completion time. On the sim backend a
// FileDevice op completes in the same instant it was submitted, so after
// letting virtual time advance first, a recorded latency other than zero
// means the op's submit time was never captured.
func TestFileDeviceLatencyMeasuredFromSubmit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dev.img")
	k := sim.New()
	defer k.Close()
	d, err := OpenFileDevice(k, path, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	k.Go("io", func(p *sim.Proc) {
		p.Sleep(10 * sim.Millisecond) // move the clock away from zero
		if err := doIO(p, d, OpWrite, 0, []byte("timed")); err != nil {
			t.Errorf("write: %v", err)
		}
		buf := make([]byte, 5)
		if err := doIO(p, d, OpRead, 0, buf); err != nil {
			t.Errorf("read: %v", err)
		}
	})
	k.Run()
	st := d.Stats()
	if st.WriteLat.Max() != 0 || st.ReadLat.Max() != 0 {
		t.Fatalf("latency includes absolute time: writeMax=%v readMax=%v",
			st.WriteLat.Max(), st.ReadLat.Max())
	}
	if st.Writes != 1 || st.Reads != 1 {
		t.Fatalf("ops not recorded: %+v", st)
	}
	if st.MaxQueue == 0 {
		t.Fatal("MaxQueue never tracked")
	}
}
