package flashsim

import (
	"math/rand"

	"leed/internal/obs"
	"leed/internal/runtime"
)

// LatencyShim adds an SSD performance model (service units, kind- and
// size-dependent service time) in front of any functional device, e.g. a
// FileDevice. Data still lands in the inner device; timing follows the
// Spec. This lets cmd/leedctl benchmark a persistent image with DCT983-like
// latencies.
type LatencyShim struct {
	env   runtime.Env
	inner Device
	spec  Spec
	rng   *rand.Rand

	busy    int
	waiting []*Op
}

// NewLatencyShim wraps inner with spec's timing model.
func NewLatencyShim(env runtime.Env, inner Device, spec Spec) *LatencyShim {
	if spec.Parallelism <= 0 {
		spec.Parallelism = 1
	}
	return &LatencyShim{env: env, inner: inner, spec: spec, rng: rand.New(rand.NewSource(spec.Seed + 0x5141))}
}

// Capacity returns the inner device's capacity.
func (d *LatencyShim) Capacity() int64 { return d.inner.Capacity() }

// Stats returns the inner device's counters.
func (d *LatencyShim) Stats() Stats { return d.inner.Stats() }

// Observe forwards the registry binding to the inner device.
func (d *LatencyShim) Observe(reg *obs.Registry, tr *obs.Tracer, dev string) {
	Observe(d.inner, reg, tr, dev)
}

func (d *LatencyShim) serviceTime(op *Op) runtime.Time {
	base := d.spec.ReadBase
	bw := d.spec.ReadBW
	if op.Kind == OpWrite {
		base = d.spec.WriteBase
		bw = d.spec.WriteBW
	}
	unitBW := bw / int64(d.spec.Parallelism)
	if unitBW <= 0 {
		unitBW = 1
	}
	svc := base + runtime.Time(int64(len(op.Data))*int64(runtime.Second)/unitBW)
	if d.spec.Jitter > 0 {
		svc = runtime.Time(float64(svc) * (1 + d.spec.Jitter*(2*d.rng.Float64()-1)))
	}
	if svc < 1 {
		svc = 1
	}
	return svc
}

// Submit queues the op behind the modeled service units, then forwards it
// to the inner device.
func (d *LatencyShim) Submit(op *Op) {
	if d.busy < d.spec.Parallelism {
		d.start(op)
		return
	}
	d.waiting = append(d.waiting, op)
}

func (d *LatencyShim) start(op *Op) {
	d.busy++
	d.env.After(d.serviceTime(op), func() {
		// Chain the inner (instant) completion into the caller's event.
		innerDone := d.env.MakeEvent()
		fwd := &Op{Kind: op.Kind, Offset: op.Offset, Data: op.Data, Done: innerDone}
		d.inner.Submit(fwd)
		innerDone.OnFire(func(v any) {
			d.busy--
			op.Done.Fire(v)
			if len(d.waiting) > 0 && d.busy < d.spec.Parallelism {
				next := d.waiting[0]
				d.waiting = d.waiting[1:]
				d.start(next)
			}
		})
	})
}
