package flashsim

import (
	"fmt"
	"io"
	"os"

	"leed/internal/obs"
	"leed/internal/runtime"
)

// AsyncOptions shape an AsyncFileDevice's submission queue. Zero values
// select the defaults.
type AsyncOptions struct {
	// Workers is the number of I/O batches that may execute concurrently
	// (the depth of the device's "hardware" queue). Default 4.
	Workers int
	// MaxBatch caps ops dispatched to one worker as a batch. Default 32.
	MaxBatch int
	// CoalesceBytes caps how many payload bytes one merged write syscall may
	// carry. Default 1 MiB.
	CoalesceBytes int
	// Durable opens the image O_DSYNC so every write syscall completes at
	// device latency (see openImage). Coalescing then amortizes one durable
	// write over the whole merged run.
	Durable bool
	// ReadTime and WriteTime, when nonzero, add a modeled per-syscall
	// service floor: the worker sleeps that long after each syscall, off
	// the runtime lock, so batches overlap the modeled latency exactly as
	// they overlap real I/O. A coalesced write run charges WriteTime once —
	// the amortization the batching exists to buy. This is for wall-clock
	// benchmarking against a page cache that completes I/O in microseconds;
	// leave both zero under the sim backend (a real sleep there would stall
	// virtual time in wall time).
	ReadTime  runtime.Time
	WriteTime runtime.Time
}

func (o *AsyncOptions) setDefaults() {
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 32
	}
	if o.CoalesceBytes <= 0 {
		o.CoalesceBytes = 1 << 20
	}
}

// AsyncFileDevice is FileDevice's submission-queue sibling: the same sparse
// image file, driven the way the paper's prototype drives its SSDs through
// SPDK. Submit only appends the op to a software submission queue; batches
// of queued ops are handed to runtime.Env.Offload, so on the wallclock
// backend the pread/pwrite syscalls run on pool goroutines
// OUTSIDE the big runtime lock and overlap both each other and the store's
// task execution. Batching is load-adaptive, the way NVMe queue pairs batch:
// an op submitted to an idle device dispatches immediately, while batches
// are in flight submissions accumulate, and each completion sweeps the
// backlog into new batches split across the free workers. Within a batch,
// writes to adjacent offsets — the shape every log append takes — are
// coalesced into a single syscall.
//
// Reads ride a fast lane: a read whose range overlaps no queued write may
// overtake queued writes and dispatch to the next free worker, the way an
// SSD scheduler prioritizes reads over buffered writes — otherwise
// microsecond page-cache reads queue behind millisecond durable writes.
// Sequence stamps keep the overtaking safe: any two ops with overlapping
// ranges still execute in submit order.
//
// Ordering guarantees, which recovery (§3.2.3) depends on:
//
//   - An op's Done fires only after its bytes reached (or were read from)
//     the file, so an acknowledged write is never reordered behind the ack.
//   - Ops whose ranges overlap are never in flight concurrently (dispatch
//     stalls the younger op), so same-offset rewrites land in submit order.
//   - OpFlush is a full barrier: it dispatches only once every earlier op
//     has completed, and it fsyncs the image.
//
// On the sim backend Offload degenerates to a zero-delay event, so the
// device stays deterministic: same submission order, same batches, same
// completion order on every run.
type AsyncFileDevice struct {
	env      runtime.Env
	f        *os.File
	capacity int64
	opt      AsyncOptions
	stats    devStats

	pending     []*Op         // ordered submission queue, FIFO
	reads       []*Op         // read fast lane, FIFO among reads
	inflight    []*asyncBatch // batches currently on workers
	inflightOps int
	workers     int
	seq         int64 // submit-order stamp
	flushQueued int   // OpFlush ops sitting in pending

	mmap      []byte // read-only view of the image (see mmapread.go)
	syncReads bool
}

// asyncBatch is one dispatch's worth of ops, executed sequentially by one
// offload worker.
type asyncBatch struct {
	ops    []*Op
	errs   []error // per-op results, filled off-lock by the worker
	merged int     // writes coalesced into a predecessor's syscall
}

// OpenAsyncFileDevice opens (or creates) the image file at path with the
// given advertised capacity, serving it through the async submission queue.
func OpenAsyncFileDevice(env runtime.Env, path string, capacity int64, opt AsyncOptions) (*AsyncFileDevice, error) {
	opt.setDefaults()
	f, err := openImage(path, opt.Durable)
	if err != nil {
		return nil, err
	}
	return &AsyncFileDevice{env: env, f: f, capacity: capacity, opt: opt, stats: newStats()}, nil
}

// Capacity returns the advertised device size.
func (d *AsyncFileDevice) Capacity() int64 { return d.capacity }

// Stats returns cumulative counters.
func (d *AsyncFileDevice) Stats() Stats { return d.stats.Stats }

// Observe binds the device to a metrics registry and tracer.
func (d *AsyncFileDevice) Observe(reg *obs.Registry, tr *obs.Tracer, dev string) {
	d.stats.o = newDevObs(reg, tr, dev)
}

// QueueDepth returns queued plus in-flight operations.
func (d *AsyncFileDevice) QueueDepth() int { return len(d.pending) + len(d.reads) + d.inflightOps }

// Close syncs and closes the image file. Call it only after the environment
// has drained (env.Wait on the wallclock backend): queued ops still in the
// submission queue are not flushed by Close.
func (d *AsyncFileDevice) Close() error {
	munmapImage(d.mmap)
	d.mmap = nil
	if err := d.f.Sync(); err != nil {
		return err
	}
	return d.f.Close()
}

// Submit implements Device: the op is queued and, when the device is idle,
// dispatched at once. It never blocks and never performs I/O itself. While
// batches are in flight, submissions accumulate instead: each completion
// sweeps the backlog into new batches (see dispatch), so batch size adapts
// to load without any timer — an idle device adds no latency, a busy one
// amortizes syscalls over whole queue's worth of ops.
func (d *AsyncFileDevice) Submit(op *Op) {
	if err := checkRange(d.capacity, op); err != nil {
		d.env.After(0, func() { op.Done.Fire(err) })
		return
	}
	op.submitted = d.env.Now()
	d.seq++
	op.seq = d.seq
	// A read joins the fast lane unless it must see a queued write's data
	// (range overlap) or a queued flush pins the order.
	if op.Kind == OpRead && d.flushQueued == 0 && !d.readMustOrder(op) {
		d.reads = append(d.reads, op)
	} else {
		if op.Kind == OpFlush {
			d.flushQueued++
		}
		d.pending = append(d.pending, op)
	}
	d.stats.noteQueued(d.QueueDepth())
	if d.workers == 0 || len(d.pending)+len(d.reads) >= d.opt.MaxBatch {
		d.dispatch()
	}
}

// readMustOrder reports whether the read overlaps a write still sitting in
// the ordered queue; such a read must stay behind that write.
func (d *AsyncFileDevice) readMustOrder(op *Op) bool {
	end := op.Offset + int64(len(op.Data))
	for _, w := range d.pending {
		if w.Kind != OpWrite {
			continue
		}
		if op.Offset < w.Offset+int64(len(w.Data)) && w.Offset < end {
			return true
		}
	}
	return false
}

// dispatch fills free worker slots with batches, splitting the backlog
// evenly across the free slots so the queue gets both coalescing (batches
// of adjacent writes) and overlap (all workers busy, each batch paying its
// service time concurrently with the others). Runs in scheduler context.
func (d *AsyncFileDevice) dispatch() {
	for d.workers < d.opt.Workers {
		free := d.opt.Workers - d.workers
		limit := (len(d.pending) + len(d.reads) + free - 1) / free
		if limit > d.opt.MaxBatch {
			limit = d.opt.MaxBatch
		}
		// Fast-lane reads first: they free the slot again quickly, so they
		// cannot starve the ordered queue for long.
		b := d.takeReadBatch(limit)
		if b == nil {
			b = d.takeBatch(limit)
		}
		if b == nil {
			return
		}
		d.workers++
		d.inflight = append(d.inflight, b)
		d.inflightOps += len(b.ops)
		d.stats.noteBatch()
		started := d.env.Now()
		for _, op := range b.ops {
			op.started = started
		}
		d.env.Offload(
			func() any { d.runBatch(b); return nil },
			func(any) { d.finishBatch(b) },
		)
	}
}

// conflicts reports whether op's range overlaps any in-flight op where at
// least one side is a write. Such an op must wait for the earlier one to
// complete so same-range I/O stays in submission order.
func (d *AsyncFileDevice) conflicts(op *Op) bool {
	end := op.Offset + int64(len(op.Data))
	for _, b := range d.inflight {
		for _, fl := range b.ops {
			if fl.Kind != OpWrite && op.Kind != OpWrite {
				continue
			}
			flEnd := fl.Offset + int64(len(fl.Data))
			if op.Offset < flEnd && fl.Offset < end {
				return true
			}
		}
	}
	return false
}

// takeReadBatch carves up to limit reads off the fast lane. Formation stops
// at a read whose range conflicts with an in-flight write.
func (d *AsyncFileDevice) takeReadBatch(limit int) *asyncBatch {
	var b asyncBatch
	for len(d.reads) > 0 && len(b.ops) < limit {
		op := d.reads[0]
		if d.conflicts(op) {
			break
		}
		b.ops = append(b.ops, op)
		d.reads = d.reads[1:]
	}
	if len(b.ops) == 0 {
		return nil
	}
	return &b
}

// takeBatch carves up to limit ops off the head of the ordered submission
// queue, preserving FIFO order: formation stops at the first op that cannot
// be dispatched yet (a barrier, a range conflict with an in-flight op, or a
// write an earlier-submitted fast-lane read has yet to overtake).
func (d *AsyncFileDevice) takeBatch(limit int) *asyncBatch {
	if len(d.pending) == 0 {
		return nil
	}
	if d.pending[0].Kind == OpFlush {
		if d.workers > 0 {
			return nil // barrier: drain in-flight batches first
		}
		d.flushQueued--
		b := &asyncBatch{ops: d.pending[:1:1]}
		d.pending = d.pending[1:]
		return b
	}
	var b asyncBatch
	for len(d.pending) > 0 && len(b.ops) < limit {
		op := d.pending[0]
		if op.Kind == OpFlush || d.conflicts(op) || d.overtaken(op) {
			break
		}
		b.ops = append(b.ops, op)
		d.pending = d.pending[1:]
	}
	if len(b.ops) == 0 {
		return nil
	}
	return &b
}

// overtaken reports whether an earlier-submitted read still queued in the
// fast lane overlaps op; op must wait so the read sees the pre-op bytes.
func (d *AsyncFileDevice) overtaken(op *Op) bool {
	if op.Kind != OpWrite {
		return false
	}
	end := op.Offset + int64(len(op.Data))
	for _, r := range d.reads {
		if r.seq < op.seq && op.Offset < r.Offset+int64(len(r.Data)) && r.Offset < end {
			return true
		}
	}
	return false
}

// runBatch executes a batch's syscalls. It runs OFF the runtime lock (on an
// offload worker) and touches only the batch, the op payloads, and the file.
func (d *AsyncFileDevice) runBatch(b *asyncBatch) {
	b.errs = make([]error, len(b.ops))
	for i := 0; i < len(b.ops); {
		op := b.ops[i]
		switch op.Kind {
		case OpWrite:
			// Coalesce the run of contiguous writes starting here into one
			// syscall: log appends from a group commit or from neighboring
			// clients arrive exactly back-to-back.
			j, total := i+1, len(op.Data)
			for j < len(b.ops) && b.ops[j].Kind == OpWrite &&
				b.ops[j].Offset == b.ops[j-1].Offset+int64(len(b.ops[j-1].Data)) &&
				total+len(b.ops[j].Data) <= d.opt.CoalesceBytes {
				total += len(b.ops[j].Data)
				j++
			}
			var err error
			if j > i+1 {
				buf := make([]byte, 0, total)
				for _, w := range b.ops[i:j] {
					buf = append(buf, w.Data...)
				}
				_, err = d.f.WriteAt(buf, op.Offset)
				b.merged += j - i - 1
			} else {
				_, err = d.f.WriteAt(op.Data, op.Offset)
			}
			if err != nil {
				err = fmt.Errorf("flashsim: file write: %w", err)
			}
			serviceSleep(d.opt.WriteTime) // one charge for the whole merged run
			for k := i; k < j; k++ {
				b.errs[k] = err
			}
			i = j
		case OpRead:
			n, err := d.f.ReadAt(op.Data, op.Offset)
			if err != nil && err != io.EOF {
				b.errs[i] = fmt.Errorf("flashsim: file read: %w", err)
			} else {
				// Reads past the written extent return zeros (sparse image).
				for z := n; z < len(op.Data); z++ {
					op.Data[z] = 0
				}
			}
			serviceSleep(d.opt.ReadTime)
			i++
		case OpFlush:
			if err := d.f.Sync(); err != nil {
				b.errs[i] = fmt.Errorf("flashsim: file sync: %w", err)
			}
			i++
		}
	}
}

// finishBatch runs back in scheduler context: record stats, fire
// completions, refill the freed worker slot.
func (d *AsyncFileDevice) finishBatch(b *asyncBatch) {
	d.workers--
	d.inflightOps -= len(b.ops)
	for i, fl := range d.inflight {
		if fl == b {
			d.inflight = append(d.inflight[:i], d.inflight[i+1:]...)
			break
		}
	}
	d.stats.noteCoalesced(int64(b.merged))
	now := d.env.Now()
	for i, op := range b.ops {
		if err := b.errs[i]; err != nil {
			op.Done.Fire(err)
			continue
		}
		d.stats.record(op.Kind, len(op.Data), op.started-op.submitted, now-op.started)
		op.Done.Fire(nil)
	}
	d.dispatch()
}
