package flashsim

import (
	"leed/internal/obs"
	"leed/internal/runtime"
)

// MemDevice is a functional device with no modeled latency: operations
// complete at the current time (asynchronously, so under the sim backend
// completion ordering relative to other same-time events is still
// deterministic). It is the substrate for unit and property tests of the
// data store, where only correctness matters.
type MemDevice struct {
	env       runtime.Env
	store     *pageStore
	stats     devStats
	syncReads bool
}

// NewMemDevice creates a zero-latency device of the given capacity.
func NewMemDevice(env runtime.Env, capacity int64) *MemDevice {
	return &MemDevice{env: env, store: newPageStore(capacity), stats: newStats()}
}

// Capacity returns the device size in bytes.
func (d *MemDevice) Capacity() int64 { return d.store.capacity }

// Stats returns cumulative counters.
func (d *MemDevice) Stats() Stats { return d.stats.Stats }

// Observe binds the device to a metrics registry and tracer.
func (d *MemDevice) Observe(reg *obs.Registry, tr *obs.Tracer, dev string) {
	d.stats.o = newDevObs(reg, tr, dev)
}

// Submit completes op at the current time.
func (d *MemDevice) Submit(op *Op) {
	if err := checkRange(d.store.capacity, op); err != nil {
		d.env.After(0, func() { op.Done.Fire(err) })
		return
	}
	op.submitted = d.env.Now()
	d.env.After(0, func() {
		switch op.Kind {
		case OpRead:
			d.store.readAt(op.Data, op.Offset)
		case OpWrite:
			d.store.writeAt(op.Data, op.Offset)
		}
		d.stats.record(op.Kind, len(op.Data), d.env.Now()-op.submitted, 0)
		op.Done.Fire(nil)
	})
}

// SetSyncReads toggles the SyncReader fast path. Off by default: the sim
// backend's golden tests depend on every completion being an event at a
// deterministic instant, so inline reads are strictly opt-in — the
// wallclock hot-path benchmark and server enable them, sims never do.
func (d *MemDevice) SetSyncReads(on bool) { d.syncReads = on }

// TryReadAt implements SyncReader: when enabled, the read completes inline
// in the caller's context and is recorded in Stats like any submitted read.
func (d *MemDevice) TryReadAt(dst []byte, off int64) bool {
	if !d.syncReads {
		return false
	}
	if off < 0 || off+int64(len(dst)) > d.store.capacity {
		return false // let Submit produce the range error
	}
	d.store.readAt(dst, off)
	d.stats.record(OpRead, len(dst), 0, 0)
	return true
}

// SyncRead reads synchronously, bypassing the simulation. Test helper.
func (d *MemDevice) SyncRead(dst []byte, off int64) { d.store.readAt(dst, off) }

// SyncWrite writes synchronously, bypassing the simulation. Test helper.
func (d *MemDevice) SyncWrite(src []byte, off int64) { d.store.writeAt(src, off) }
