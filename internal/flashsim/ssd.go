package flashsim

import (
	"math/rand"

	"leed/internal/obs"
	"leed/internal/runtime"
)

// Spec describes an SSD's performance envelope. Service time for an
// operation is Base + size/UnitBW + jitter, where UnitBW = BW/Parallelism,
// so small-op IOPS saturate at Parallelism/Base and large transfers saturate
// at the device bandwidth. This two-knee shape is what the paper's results
// depend on: an IOPS ceiling per drive plus a pronounced read/write
// bandwidth asymmetry (§2.3, C3).
type Spec struct {
	Name        string
	Capacity    int64
	Parallelism int // internal service units (channels x planes)
	ReadBase    runtime.Time
	WriteBase   runtime.Time
	ReadBW      int64   // bytes/sec, whole device
	WriteBW     int64   // bytes/sec, whole device
	Jitter      float64 // +/- fraction of service time, uniform
	Seed        int64
}

// SamsungDCT983 approximates the Samsung DCT983 960GB drives in the paper's
// testbed: ~400K 4KB random-read IOPS, 3.0/1.05 GB/s sequential read/write.
func SamsungDCT983(capacity int64) Spec {
	return Spec{
		Name:        "DCT983",
		Capacity:    capacity,
		Parallelism: 24,
		ReadBase:    52 * runtime.Microsecond,
		WriteBase:   22 * runtime.Microsecond,
		ReadBW:      3000 << 20,
		WriteBW:     1050 << 20,
		Jitter:      0.10,
	}
}

// SanDiskSD approximates the Raspberry Pi's 32GB SanDisk card: 60-80MB/s
// sequential, a couple of thousand small random reads per second, and
// buffered (log-friendly) writes that complete faster than random reads —
// which is why FAWN's append-only PUTs outrun its GETs on this medium
// (Figure 12).
func SanDiskSD(capacity int64) Spec {
	return Spec{
		Name:        "SanDiskSD",
		Capacity:    capacity,
		Parallelism: 2,
		ReadBase:    1100 * runtime.Microsecond,
		WriteBase:   350 * runtime.Microsecond,
		ReadBW:      80 << 20,
		WriteBW:     60 << 20,
		Jitter:      0.15,
	}
}

// SSD is a simulated NVMe drive. Operations wait FIFO for one of
// Parallelism service units, occupy it for the service time, then complete.
// Bytes are really stored: writes become visible at completion, reads copy
// out at completion.
type SSD struct {
	env   runtime.Env
	spec  Spec
	store *pageStore
	rng   *rand.Rand

	busy    int
	waiting []*Op
	stats   devStats

	// busy-time integral for utilization reporting
	busySince runtime.Time
	busyInt   runtime.Time
}

// NewSSD creates a drive on env from the given spec.
func NewSSD(env runtime.Env, spec Spec) *SSD {
	if spec.Parallelism <= 0 {
		spec.Parallelism = 1
	}
	return &SSD{
		env:   env,
		spec:  spec,
		store: newPageStore(spec.Capacity),
		rng:   rand.New(rand.NewSource(spec.Seed + 0x55D)),
		stats: newStats(),
	}
}

// Capacity returns the device size in bytes.
func (d *SSD) Capacity() int64 { return d.spec.Capacity }

// Spec returns the device's performance spec.
func (d *SSD) Spec() Spec { return d.spec }

// Stats returns cumulative counters.
func (d *SSD) Stats() Stats { return d.stats.Stats }

// Observe binds the drive to a metrics registry and tracer.
func (d *SSD) Observe(reg *obs.Registry, tr *obs.Tracer, dev string) {
	d.stats.o = newDevObs(reg, tr, dev)
}

// QueueDepth returns queued plus in-flight operations.
func (d *SSD) QueueDepth() int { return len(d.waiting) + d.busy }

// InFlight returns operations currently occupying service units.
func (d *SSD) InFlight() int { return d.busy }

// Utilization returns the time-averaged fraction of service units busy.
func (d *SSD) Utilization() float64 {
	d.account()
	if d.env.Now() == 0 {
		return 0
	}
	return float64(d.busyInt) / (float64(d.env.Now()) * float64(d.spec.Parallelism))
}

func (d *SSD) account() {
	now := d.env.Now()
	d.busyInt += runtime.Time(d.busy) * (now - d.busySince)
	d.busySince = now
}

// Submit enqueues op; op.Done fires at completion.
func (d *SSD) Submit(op *Op) {
	if err := checkRange(d.spec.Capacity, op); err != nil {
		d.env.After(0, func() { op.Done.Fire(err) })
		return
	}
	op.submitted = d.env.Now()
	d.stats.noteQueued(d.QueueDepth() + 1)
	if d.busy < d.spec.Parallelism {
		d.start(op)
	} else {
		d.waiting = append(d.waiting, op)
	}
}

func (d *SSD) serviceTime(op *Op) runtime.Time {
	base := d.spec.ReadBase
	bw := d.spec.ReadBW
	if op.Kind == OpWrite {
		base = d.spec.WriteBase
		bw = d.spec.WriteBW
	}
	unitBW := bw / int64(d.spec.Parallelism)
	if unitBW <= 0 {
		unitBW = 1
	}
	transfer := runtime.Time(int64(len(op.Data)) * int64(runtime.Second) / unitBW)
	svc := base + transfer
	if d.spec.Jitter > 0 {
		svc = runtime.Time(float64(svc) * (1 + d.spec.Jitter*(2*d.rng.Float64()-1)))
	}
	if svc < 1 {
		svc = 1
	}
	return svc
}

func (d *SSD) start(op *Op) {
	d.account()
	d.busy++
	op.started = d.env.Now()
	d.env.After(d.serviceTime(op), func() { d.complete(op) })
}

func (d *SSD) complete(op *Op) {
	switch op.Kind {
	case OpRead:
		d.store.readAt(op.Data, op.Offset)
	case OpWrite:
		d.store.writeAt(op.Data, op.Offset)
	}
	d.stats.record(op.Kind, len(op.Data), op.started-op.submitted, d.env.Now()-op.started)
	d.account()
	d.busy--
	op.Done.Fire(nil)
	if len(d.waiting) > 0 && d.busy < d.spec.Parallelism {
		next := d.waiting[0]
		d.waiting = d.waiting[1:]
		d.start(next)
	}
}
