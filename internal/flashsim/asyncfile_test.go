package flashsim

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"

	"leed/internal/runtime"
	"leed/internal/runtime/wallclock"
	"leed/internal/sim"
)

// submitAll queues every op before yielding, so ops beyond the free worker
// slots pile up in the submission queue, then waits for each completion in
// order.
func submitAll(p *sim.Proc, d Device, ops []*Op) []error {
	for _, op := range ops {
		op.Done = p.Kernel().NewEvent()
		d.Submit(op)
	}
	errs := make([]error, len(ops))
	for i, op := range ops {
		if v := p.Wait(op.Done); v != nil {
			errs[i] = v.(error)
		}
	}
	return errs
}

func TestAsyncFileDevicePersistsAcrossOpens(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dev.img")
	{
		k := sim.New()
		d, err := OpenAsyncFileDevice(k, path, 1<<20, AsyncOptions{})
		if err != nil {
			t.Fatal(err)
		}
		k.Go("io", func(p *sim.Proc) {
			if err := doIO(p, d, OpWrite, 4096, []byte("persistent")); err != nil {
				t.Errorf("write: %v", err)
			}
		})
		k.Run()
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
		k.Close()
	}
	// The image format is FileDevice's: the synchronous sibling must read
	// the async device's writes.
	k := sim.New()
	defer k.Close()
	d, err := OpenFileDevice(k, path, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	buf := make([]byte, 10)
	k.Go("io", func(p *sim.Proc) {
		if err := doIO(p, d, OpRead, 4096, buf); err != nil {
			t.Errorf("read: %v", err)
		}
	})
	k.Run()
	if string(buf) != "persistent" {
		t.Fatalf("read back %q", buf)
	}
}

func TestAsyncFileDeviceCoalescesAdjacentWrites(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dev.img")
	k := sim.New()
	defer k.Close()
	// One worker: the first write dispatches alone, the rest pile up behind
	// it and ride out as a single coalesced batch.
	d, err := OpenAsyncFileDevice(k, path, 1<<20, AsyncOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	const n = 8
	var want bytes.Buffer
	ops := make([]*Op, n)
	for i := range ops {
		data := bytes.Repeat([]byte{byte('a' + i)}, 512)
		want.Write(data)
		ops[i] = &Op{Kind: OpWrite, Offset: int64(i * 512), Data: data}
	}
	got := make([]byte, n*512)
	k.Go("io", func(p *sim.Proc) {
		for _, err := range submitAll(p, d, ops) {
			if err != nil {
				t.Errorf("write: %v", err)
			}
		}
		if err := doIO(p, d, OpRead, 0, got); err != nil {
			t.Errorf("read: %v", err)
		}
	})
	k.Run()
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatal("coalesced writes read back wrong")
	}
	st := d.Stats()
	// Write 0 dispatched immediately to the lone worker; writes 1..7 queued
	// behind it and were taken as one batch, one syscall: 6 rode along. The
	// read-back is the third batch.
	if st.Coalesced != n-2 {
		t.Errorf("Coalesced = %d, want %d", st.Coalesced, n-2)
	}
	if st.Batches != 3 {
		t.Errorf("Batches = %d, want 3", st.Batches)
	}
	if st.Writes != n {
		t.Errorf("Writes = %d, want %d", st.Writes, n)
	}
	if st.MaxQueue < n {
		t.Errorf("MaxQueue = %d, want >= %d", st.MaxQueue, n)
	}
}

func TestAsyncFileDeviceFlushIsBarrier(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dev.img")
	k := sim.New()
	defer k.Close()
	d, err := OpenAsyncFileDevice(k, path, 1<<20, AsyncOptions{Workers: 2, MaxBatch: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	// 6 writes split over 3 batches (MaxBatch 2), then a flush, then one
	// more write. The flush must complete after every earlier write and
	// before the later one.
	var order []string
	track := func(name string, op *Op) *Op {
		op.Done = k.NewEvent()
		op.Done.OnFire(func(any) { order = append(order, name) })
		return op
	}
	k.Go("io", func(p *sim.Proc) {
		var last *Op
		for i := 0; i < 6; i++ {
			d.Submit(track(fmt.Sprintf("w%d", i), &Op{
				Kind: OpWrite, Offset: int64(i * 1024), Data: make([]byte, 512),
			}))
		}
		fl := track("flush", &Op{Kind: OpFlush})
		d.Submit(fl)
		last = track("after", &Op{Kind: OpWrite, Offset: 0, Data: []byte{1}})
		d.Submit(last)
		p.Wait(last.Done)
	})
	k.Run()
	if len(order) != 8 {
		t.Fatalf("completions = %v", order)
	}
	if order[6] != "flush" || order[7] != "after" {
		t.Fatalf("flush did not act as a barrier: %v", order)
	}
	if d.Stats().Flushes != 1 {
		t.Errorf("Flushes = %d, want 1", d.Stats().Flushes)
	}
}

func TestAsyncFileDeviceOverlapKeepsSubmitOrder(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dev.img")
	k := sim.New()
	defer k.Close()
	// Workers > 1 so only the conflict check, not a single-lane queue,
	// enforces ordering.
	d, err := OpenAsyncFileDevice(k, path, 1<<20, AsyncOptions{Workers: 4, MaxBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	got := make([]byte, 4)
	k.Go("io", func(p *sim.Proc) {
		ops := []*Op{
			{Kind: OpWrite, Offset: 0, Data: []byte("old!")},
			{Kind: OpWrite, Offset: 0, Data: []byte("new!")},
			{Kind: OpRead, Offset: 0, Data: got},
		}
		for _, err := range submitAll(p, d, ops) {
			if err != nil {
				t.Errorf("io: %v", err)
			}
		}
	})
	k.Run()
	if string(got) != "new!" {
		t.Fatalf("overlapping writes reordered: read %q", got)
	}
}

func TestAsyncFileDeviceRangeCheck(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dev.img")
	k := sim.New()
	defer k.Close()
	d, err := OpenAsyncFileDevice(k, path, 4096, AsyncOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	var ioErr error
	k.Go("io", func(p *sim.Proc) {
		ioErr = doIO(p, d, OpWrite, 4000, make([]byte, 200))
	})
	k.Run()
	if ioErr == nil {
		t.Fatal("out-of-range write accepted")
	}
}

// TestAsyncFileDeviceWallclockConcurrent drives the device from 8 concurrent
// wallclock tasks on disjoint regions. Under -race this is the proof that
// the offload pool keeps batch execution off the runtime lock safely.
func TestAsyncFileDeviceWallclockConcurrent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dev.img")
	env := wallclock.New()
	d, err := OpenAsyncFileDevice(env, path, 1<<20, AsyncOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	const clients, rounds = 8, 25
	for c := 0; c < clients; c++ {
		c := c
		env.Spawn("client", func(p runtime.Task) {
			base := int64(c) * 4096
			for r := 0; r < rounds; r++ {
				data := bytes.Repeat([]byte{byte(c*31 + r)}, 512)
				wop := &Op{Kind: OpWrite, Offset: base, Data: data, Done: env.MakeEvent()}
				d.Submit(wop)
				if v := p.Wait(wop.Done); v != nil {
					t.Errorf("client %d write: %v", c, v)
					return
				}
				got := make([]byte, 512)
				rop := &Op{Kind: OpRead, Offset: base, Data: got, Done: env.MakeEvent()}
				d.Submit(rop)
				if v := p.Wait(rop.Done); v != nil {
					t.Errorf("client %d read: %v", c, v)
					return
				}
				if !bytes.Equal(got, data) {
					t.Errorf("client %d round %d read back wrong bytes", c, r)
					return
				}
			}
		})
	}
	env.Wait()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.Writes != clients*rounds || st.Reads != clients*rounds {
		t.Fatalf("stats lost ops: %+v", st)
	}
}
