// Package flashsim models NVMe flash devices: an SSD with bounded internal
// parallelism, kind- and size-dependent service times, and a real (sparse)
// byte backing store, plus a zero-latency MemDevice for functional tests and
// a file-backed FileDevice for persistence. Devices expose the asynchronous
// submit/complete interface a kernel-bypass stack like SPDK would: Submit
// never blocks, and completion is signalled through a runtime.Event.
//
// Devices are written against runtime.Env, so the same models run under the
// deterministic sim kernel or the wall-clock backend.
package flashsim

import (
	"fmt"

	"leed/internal/runtime"
)

// OpKind distinguishes reads from writes.
type OpKind uint8

// Operation kinds.
const (
	OpRead OpKind = iota
	OpWrite
)

func (k OpKind) String() string {
	if k == OpRead {
		return "read"
	}
	return "write"
}

// Op is one asynchronous device operation. For reads, Data is the
// destination buffer filled at completion; for writes it is the payload,
// which must not be mutated until Done fires. Done fires with a nil payload
// on success or an error.
type Op struct {
	Kind   OpKind
	Offset int64
	Data   []byte
	Done   runtime.Event

	submitted runtime.Time
}

// Device is an asynchronous block device.
type Device interface {
	// Submit enqueues the operation; it never blocks. op.Done fires when
	// the operation completes.
	Submit(op *Op)
	// Capacity returns the device size in bytes.
	Capacity() int64
	// Stats returns cumulative operation counters.
	Stats() Stats
}

// Stats are cumulative device counters.
type Stats struct {
	Reads, Writes           int64
	BytesRead, BytesWritten int64
	ReadLat, WriteLat       *runtime.Histogram // submit-to-complete
	MaxQueue                int                // high-water mark of queued + in-flight ops
}

func newStats() Stats {
	return Stats{ReadLat: runtime.NewHistogram(), WriteLat: runtime.NewHistogram()}
}

func checkRange(cap_ int64, op *Op) error {
	if op.Offset < 0 || op.Offset+int64(len(op.Data)) > cap_ {
		return fmt.Errorf("flashsim: %s of %d bytes at offset %d outside device capacity %d",
			op.Kind, len(op.Data), op.Offset, cap_)
	}
	return nil
}
