// Package flashsim models NVMe flash devices: an SSD with bounded internal
// parallelism, kind- and size-dependent service times, and a real (sparse)
// byte backing store, plus a zero-latency MemDevice for functional tests and
// a file-backed FileDevice for persistence. Devices expose the asynchronous
// submit/complete interface a kernel-bypass stack like SPDK would: Submit
// never blocks, and completion is signalled through a runtime.Event.
//
// Devices are written against runtime.Env, so the same models run under the
// deterministic sim kernel or the wall-clock backend.
package flashsim

import (
	"fmt"

	"leed/internal/obs"
	"leed/internal/runtime"
)

// OpKind distinguishes reads from writes.
type OpKind uint8

// Operation kinds.
const (
	OpRead OpKind = iota
	OpWrite
	// OpFlush is a barrier: it completes only after every operation
	// submitted before it has completed, and on file-backed devices it also
	// syncs the backing file. Offset and Data are ignored (leave them zero).
	// Purely modeled devices treat it as an ordering no-op.
	OpFlush
)

func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	default:
		return "flush"
	}
}

// Op is one asynchronous device operation. For reads, Data is the
// destination buffer filled at completion; for writes it is the payload,
// which must not be mutated until Done fires. Done fires with a nil payload
// on success or an error.
type Op struct {
	Kind   OpKind
	Offset int64
	Data   []byte
	Done   runtime.Event

	submitted runtime.Time
	started   runtime.Time // service start, stamped when the op leaves the queue
	seq       int64        // submit order, stamped by queueing devices
}

// Device is an asynchronous block device.
type Device interface {
	// Submit enqueues the operation; it never blocks. op.Done fires when
	// the operation completes.
	Submit(op *Op)
	// Capacity returns the device size in bytes.
	Capacity() int64
	// Stats returns cumulative operation counters.
	Stats() Stats
}

// SyncReader is an optional Device capability: serve a read synchronously,
// in the caller's task context, with no event machinery. The async Submit
// path costs several allocations per op (events, closures, timers), which
// is the right price for modeled latency but pure overhead on a
// zero-latency device. TryReadAt returns false when the device cannot (or
// is not configured to) serve the read inline; the caller then falls back
// to Submit. A true return means dst is filled and the read has been
// counted in Stats exactly as a submitted read would be.
type SyncReader interface {
	TryReadAt(dst []byte, off int64) bool
}

// Stats are cumulative device counters.
type Stats struct {
	Reads, Writes           int64
	BytesRead, BytesWritten int64
	ReadLat, WriteLat       *runtime.Histogram // submit-to-complete
	QueueLat                *runtime.Histogram // submit-to-service-start (queue wait)
	ServiceLat              *runtime.Histogram // service-start-to-complete
	MaxQueue                int                // high-water mark of queued + in-flight ops
	Flushes                 int64              // completed OpFlush barriers
	Batches                 int64              // doorbell batches dispatched (submission-queue devices)
	Coalesced               int64              // writes merged into a preceding write's syscall
}

func newStats() devStats {
	return devStats{Stats: Stats{
		ReadLat:    runtime.NewHistogram(),
		WriteLat:   runtime.NewHistogram(),
		QueueLat:   runtime.NewHistogram(),
		ServiceLat: runtime.NewHistogram(),
	}}
}

// devStats is the internal form: the legacy Stats view plus an optional obs
// binding that mirrors every completion into a metrics registry and the
// "device" trace stage. The Stats view keeps its execution-contract (one
// task at a time) semantics; the obs side is atomic/locked so a wallclock
// HTTP scrape can read it mid-run.
type devStats struct {
	Stats
	o *devObs
}

// record counts one successfully completed operation, split into queue wait
// (submit to service start) and service time. Shared by every device
// implementation so they all report the same way.
func (s *devStats) record(kind OpKind, bytes int, queue, service runtime.Time) {
	if queue < 0 {
		queue = 0
	}
	if service < 0 {
		service = 0
	}
	switch kind {
	case OpRead:
		s.Reads++
		s.BytesRead += int64(bytes)
		s.ReadLat.Record(queue + service)
	case OpWrite:
		s.Writes++
		s.BytesWritten += int64(bytes)
		s.WriteLat.Record(queue + service)
	case OpFlush:
		s.Flushes++
	}
	if kind != OpFlush {
		s.QueueLat.Record(queue)
		s.ServiceLat.Record(service)
	}
	s.o.record(kind, bytes, queue, service)
}

// noteQueued bumps the queue-depth high-water mark.
func (s *devStats) noteQueued(depth int) {
	if depth > s.MaxQueue {
		s.MaxQueue = depth
	}
	s.o.queueDepth(depth)
}

func (s *devStats) noteBatch() {
	s.Batches++
	s.o.batch()
}

func (s *devStats) noteCoalesced(n int64) {
	s.Coalesced += n
	s.o.coalesce(n)
}

// devObs is a device's registry binding: counters and histograms named
// leed_device_* with a dev label, plus "device"-stage trace observations.
// All methods no-op on a nil receiver, so unobserved devices pay one nil
// check per completion.
type devObs struct {
	tr                      *obs.Tracer
	reads, writes, flushes  *obs.Counter
	batches, coalesced      *obs.Counter
	bytesRead, bytesWritten *obs.Counter
	maxQueue                *obs.Gauge
	readLat, writeLat       *obs.Hist
	queueLat, svcLat        *obs.Hist
}

func newDevObs(reg *obs.Registry, tr *obs.Tracer, dev string) *devObs {
	l := []string{"dev", dev}
	return &devObs{
		tr:           tr,
		reads:        reg.Counter("leed_device_reads_total", l...),
		writes:       reg.Counter("leed_device_writes_total", l...),
		flushes:      reg.Counter("leed_device_flushes_total", l...),
		batches:      reg.Counter("leed_device_batches_total", l...),
		coalesced:    reg.Counter("leed_device_coalesced_total", l...),
		bytesRead:    reg.Counter("leed_device_read_bytes_total", l...),
		bytesWritten: reg.Counter("leed_device_written_bytes_total", l...),
		maxQueue:     reg.Gauge("leed_device_max_queue_depth", l...),
		readLat:      reg.Hist("leed_device_read_latency_ns", l...),
		writeLat:     reg.Hist("leed_device_write_latency_ns", l...),
		queueLat:     reg.Hist("leed_device_queue_wait_ns", l...),
		svcLat:       reg.Hist("leed_device_service_ns", l...),
	}
}

func (o *devObs) record(kind OpKind, bytes int, queue, service runtime.Time) {
	if o == nil {
		return
	}
	switch kind {
	case OpRead:
		o.reads.Inc()
		o.bytesRead.Add(int64(bytes))
		o.readLat.Record(queue + service)
	case OpWrite:
		o.writes.Inc()
		o.bytesWritten.Add(int64(bytes))
		o.writeLat.Record(queue + service)
	case OpFlush:
		o.flushes.Inc()
		return
	}
	o.queueLat.Record(queue)
	o.svcLat.Record(service)
	o.tr.Observe("device", queue, service)
}

func (o *devObs) queueDepth(d int) {
	if o == nil {
		return
	}
	// Monotone max; only written from task context, read by scrapes.
	if int64(d) > o.maxQueue.Load() {
		o.maxQueue.Set(int64(d))
	}
}

func (o *devObs) batch() {
	if o == nil {
		return
	}
	o.batches.Inc()
}

func (o *devObs) coalesce(n int64) {
	if o == nil {
		return
	}
	o.coalesced.Add(n)
}

// Observe binds a device to a metrics registry and tracer under the given
// dev label. Devices that don't support observation (external fakes) are
// left alone. Call before traffic starts.
func Observe(d Device, reg *obs.Registry, tr *obs.Tracer, dev string) {
	if o, ok := d.(interface {
		Observe(reg *obs.Registry, tr *obs.Tracer, dev string)
	}); ok {
		o.Observe(reg, tr, dev)
	}
}

func checkRange(cap_ int64, op *Op) error {
	if op.Offset < 0 || op.Offset+int64(len(op.Data)) > cap_ {
		return fmt.Errorf("flashsim: %s of %d bytes at offset %d outside device capacity %d",
			op.Kind, len(op.Data), op.Offset, cap_)
	}
	return nil
}
