// Package flashsim models NVMe flash devices: an SSD with bounded internal
// parallelism, kind- and size-dependent service times, and a real (sparse)
// byte backing store, plus a zero-latency MemDevice for functional tests and
// a file-backed FileDevice for persistence. Devices expose the asynchronous
// submit/complete interface a kernel-bypass stack like SPDK would: Submit
// never blocks, and completion is signalled through a runtime.Event.
//
// Devices are written against runtime.Env, so the same models run under the
// deterministic sim kernel or the wall-clock backend.
package flashsim

import (
	"fmt"

	"leed/internal/runtime"
)

// OpKind distinguishes reads from writes.
type OpKind uint8

// Operation kinds.
const (
	OpRead OpKind = iota
	OpWrite
	// OpFlush is a barrier: it completes only after every operation
	// submitted before it has completed, and on file-backed devices it also
	// syncs the backing file. Offset and Data are ignored (leave them zero).
	// Purely modeled devices treat it as an ordering no-op.
	OpFlush
)

func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	default:
		return "flush"
	}
}

// Op is one asynchronous device operation. For reads, Data is the
// destination buffer filled at completion; for writes it is the payload,
// which must not be mutated until Done fires. Done fires with a nil payload
// on success or an error.
type Op struct {
	Kind   OpKind
	Offset int64
	Data   []byte
	Done   runtime.Event

	submitted runtime.Time
	seq       int64 // submit order, stamped by queueing devices
}

// Device is an asynchronous block device.
type Device interface {
	// Submit enqueues the operation; it never blocks. op.Done fires when
	// the operation completes.
	Submit(op *Op)
	// Capacity returns the device size in bytes.
	Capacity() int64
	// Stats returns cumulative operation counters.
	Stats() Stats
}

// Stats are cumulative device counters.
type Stats struct {
	Reads, Writes           int64
	BytesRead, BytesWritten int64
	ReadLat, WriteLat       *runtime.Histogram // submit-to-complete
	MaxQueue                int                // high-water mark of queued + in-flight ops
	Flushes                 int64              // completed OpFlush barriers
	Batches                 int64              // doorbell batches dispatched (submission-queue devices)
	Coalesced               int64              // writes merged into a preceding write's syscall
}

func newStats() Stats {
	return Stats{ReadLat: runtime.NewHistogram(), WriteLat: runtime.NewHistogram()}
}

// record counts one successfully completed operation with its
// submit-to-complete latency. Shared by every device implementation so they
// all report the same way.
func (s *Stats) record(kind OpKind, bytes int, lat runtime.Time) {
	switch kind {
	case OpRead:
		s.Reads++
		s.BytesRead += int64(bytes)
		s.ReadLat.Record(lat)
	case OpWrite:
		s.Writes++
		s.BytesWritten += int64(bytes)
		s.WriteLat.Record(lat)
	case OpFlush:
		s.Flushes++
	}
}

// noteQueued bumps the queue-depth high-water mark.
func (s *Stats) noteQueued(depth int) {
	if depth > s.MaxQueue {
		s.MaxQueue = depth
	}
}

func checkRange(cap_ int64, op *Op) error {
	if op.Offset < 0 || op.Offset+int64(len(op.Data)) > cap_ {
		return fmt.Errorf("flashsim: %s of %d bytes at offset %d outside device capacity %d",
			op.Kind, len(op.Data), op.Offset, cap_)
	}
	return nil
}
