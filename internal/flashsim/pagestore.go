package flashsim

const pageSize = 64 << 10 // 64KiB backing pages, allocated on first write

// pageStore is a sparse byte array: pages materialize on first write, reads
// of untouched regions return zeros. It lets the simulation advertise
// multi-gigabyte device capacities while only paying for bytes actually
// stored.
type pageStore struct {
	capacity int64
	pages    map[int64][]byte
}

func newPageStore(capacity int64) *pageStore {
	return &pageStore{capacity: capacity, pages: make(map[int64][]byte)}
}

func (s *pageStore) readAt(dst []byte, off int64) {
	for len(dst) > 0 {
		pno := off / pageSize
		po := off % pageSize
		n := int64(len(dst))
		if n > pageSize-po {
			n = pageSize - po
		}
		if p, ok := s.pages[pno]; ok {
			copy(dst[:n], p[po:po+n])
		} else {
			for i := int64(0); i < n; i++ {
				dst[i] = 0
			}
		}
		dst = dst[n:]
		off += n
	}
}

func (s *pageStore) writeAt(src []byte, off int64) {
	for len(src) > 0 {
		pno := off / pageSize
		po := off % pageSize
		n := int64(len(src))
		if n > pageSize-po {
			n = pageSize - po
		}
		p, ok := s.pages[pno]
		if !ok {
			p = make([]byte, pageSize)
			s.pages[pno] = p
		}
		copy(p[po:po+n], src[:n])
		src = src[n:]
		off += n
	}
}

// residentBytes returns the number of materialized backing bytes.
func (s *pageStore) residentBytes() int64 { return int64(len(s.pages)) * pageSize }
