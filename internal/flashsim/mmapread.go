package flashsim

import (
	"fmt"
	"os"
	"syscall"
)

// mmapImage maps the image read-only so reads become a memcpy from the page
// cache instead of a pread syscall — the userspace read path the paper buys
// with SPDK. MAP_SHARED keeps the view coherent with the device's pwrite
// syscalls: a completed write is visible to the next mapped read. Accessing
// pages past EOF faults, so the sparse file is first grown to its advertised
// capacity (allocates nothing on disk; holes read as zeros, matching the
// sparse-read semantics of the syscall path).
func mmapImage(f *os.File, capacity int64) ([]byte, error) {
	if capacity <= 0 || int64(int(capacity)) != capacity {
		return nil, fmt.Errorf("flashsim: cannot mmap capacity %d", capacity)
	}
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("flashsim: mmap image: %w", err)
	}
	if st.Size() < capacity {
		if err := f.Truncate(capacity); err != nil {
			return nil, fmt.Errorf("flashsim: grow image for mmap: %w", err)
		}
	}
	m, err := syscall.Mmap(int(f.Fd()), 0, int(capacity), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("flashsim: mmap image: %w", err)
	}
	return m, nil
}

func munmapImage(m []byte) {
	if m != nil {
		syscall.Munmap(m)
	}
}

// SetSyncReads toggles the SyncReader fast path: reads with no ordering
// hazard complete inline in the caller's context by copying from a read-only
// mmap of the image — no event machinery, no syscall. Off by default; the
// serve path opts in. The first enable maps the image. Reads decline the
// fast path (falling back to Submit) whenever a modeled ReadTime is set, so
// the sync-vs-async latency benchmarks are unaffected.
func (d *AsyncFileDevice) SetSyncReads(on bool) error {
	if on && d.mmap == nil {
		m, err := mmapImage(d.f, d.capacity)
		if err != nil {
			return err
		}
		d.mmap = m
	}
	d.syncReads = on
	return nil
}

// TryReadAt implements SyncReader. The inline read must honor the same
// ordering the submission queue enforces: it declines when the range
// overlaps a queued or in-flight write (the read must see that write's
// bytes, and must not race its pwrite mid-flight) or when a flush barrier
// is queued. GETs of acknowledged data never overlap an in-flight write —
// the ack means the write completed — so in steady state the fast path
// always hits.
func (d *AsyncFileDevice) TryReadAt(dst []byte, off int64) bool {
	if !d.syncReads || d.opt.ReadTime != 0 {
		return false
	}
	end := off + int64(len(dst))
	if off < 0 || end > d.capacity {
		return false // let Submit produce the range error
	}
	if d.flushQueued > 0 {
		return false
	}
	probe := Op{Kind: OpRead, Offset: off, Data: dst}
	if d.readMustOrder(&probe) || d.conflicts(&probe) {
		return false
	}
	copy(dst, d.mmap[off:end])
	d.stats.record(OpRead, len(dst), 0, 0)
	return true
}

// SetSyncReads is the FileDevice flavor of the mmap read lane (see the
// AsyncFileDevice method).
func (d *FileDevice) SetSyncReads(on bool) error {
	if on && d.mmap == nil {
		m, err := mmapImage(d.f, d.capacity)
		if err != nil {
			return err
		}
		d.mmap = m
	}
	d.syncReads = on
	return nil
}

// TryReadAt implements SyncReader. FileDevice executes queued ops strictly
// in submit order, so an inline read may only overtake the queue when no
// write or flush is outstanding — it tracks no ranges, so the guard is
// conservative: any pending write declines the fast path.
func (d *FileDevice) TryReadAt(dst []byte, off int64) bool {
	if !d.syncReads || d.opt.ReadTime != 0 || d.queuedWrites > 0 {
		return false
	}
	end := off + int64(len(dst))
	if off < 0 || end > d.capacity {
		return false
	}
	copy(dst, d.mmap[off:end])
	d.stats.record(OpRead, len(dst), 0, 0)
	return true
}
