package flashsim

import (
	"testing"

	"leed/internal/sim"
)

// faultEnv wires a FaultInjector over a MemDevice on a fresh kernel.
func faultEnv(seed int64) (sim.Runner, *FaultInjector) {
	k := sim.New()
	f := NewFaultInjector(k, NewMemDevice(k, 1<<20), seed)
	return k, f
}

func TestFaultInjectorPassthrough(t *testing.T) {
	k, f := faultEnv(1)
	defer k.Close()
	k.Go("io", func(p *sim.Proc) {
		if err := doIO(p, f, OpWrite, 0, []byte("safe")); err != nil {
			t.Errorf("write through clean injector: %v", err)
		}
		buf := make([]byte, 4)
		if err := doIO(p, f, OpRead, 0, buf); err != nil {
			t.Errorf("read through clean injector: %v", err)
		}
		if string(buf) != "safe" {
			t.Errorf("read back %q", buf)
		}
	})
	k.Run()
	if f.Injected() != 0 {
		t.Fatalf("clean injector reported %d injections", f.Injected())
	}
	if f.Capacity() != 1<<20 {
		t.Fatalf("capacity %d not forwarded", f.Capacity())
	}
	if f.Stats().Writes != 1 || f.Stats().Reads != 1 {
		t.Fatalf("inner stats not forwarded: %+v", f.Stats())
	}
}

// TestFaultInjectorErrorRate exercises the probabilistic path: at a fixed
// seed and rate, the observed failures must match the injector's own count,
// every failure must surface ErrInjected, and failed writes must not reach
// the backing store.
func TestFaultInjectorErrorRate(t *testing.T) {
	k, f := faultEnv(42)
	defer k.Close()
	f.ErrorRate = 0.3
	const ops = 500
	var failed int64
	k.Go("io", func(p *sim.Proc) {
		for i := 0; i < ops; i++ {
			err := doIO(p, f, OpWrite, int64(i), []byte{0xab})
			if err == ErrInjected {
				failed++
			} else if err != nil {
				t.Errorf("op %d: unexpected error %v", i, err)
			}
		}
	})
	k.Run()
	if failed != f.Injected() {
		t.Fatalf("observed %d failures, injector counted %d", failed, f.Injected())
	}
	if failed == 0 || failed == ops {
		t.Fatalf("rate 0.3 over %d ops injected %d failures; probabilistic path not exercised", ops, failed)
	}
	// The injector must drop failed ops, not forward them.
	if got := f.Stats().Writes; got != ops-failed {
		t.Fatalf("inner device saw %d writes, want %d", got, ops-failed)
	}
}

// TestFaultInjectorFailAfter exercises the die-at-T path: the first FailAfter
// ops succeed, every later one fails.
func TestFaultInjectorFailAfter(t *testing.T) {
	k, f := faultEnv(1)
	defer k.Close()
	f.FailAfter = 10
	k.Go("io", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			if err := doIO(p, f, OpWrite, int64(i), []byte{1}); err != nil {
				t.Errorf("op %d before death: %v", i, err)
			}
		}
		for i := 0; i < 5; i++ {
			if err := doIO(p, f, OpWrite, 0, []byte{1}); err != ErrInjected {
				t.Errorf("op %d after death: got %v, want ErrInjected", i, err)
			}
			if err := doIO(p, f, OpRead, 0, []byte{0}); err != ErrInjected {
				t.Errorf("read %d after death: got %v, want ErrInjected", i, err)
			}
		}
	})
	k.Run()
	if f.Injected() != 10 {
		t.Fatalf("injected %d, want 10", f.Injected())
	}
}

// TestFaultInjectorKindFilters checks FailWritesOnly / FailReadsOnly gating
// on both failure modes.
func TestFaultInjectorKindFilters(t *testing.T) {
	k, f := faultEnv(7)
	defer k.Close()
	f.ErrorRate = 1.0
	f.FailWritesOnly = true
	k.Go("io", func(p *sim.Proc) {
		if err := doIO(p, f, OpWrite, 0, []byte{1}); err != ErrInjected {
			t.Errorf("write with FailWritesOnly: got %v, want ErrInjected", err)
		}
		if err := doIO(p, f, OpRead, 0, []byte{0}); err != nil {
			t.Errorf("read with FailWritesOnly: %v", err)
		}
	})
	k.Run()

	k2, f2 := faultEnv(7)
	defer k2.Close()
	f2.FailAfter = 1
	f2.FailReadsOnly = true
	k2.Go("io", func(p *sim.Proc) {
		for i := 0; i < 4; i++ { // burn past the countdown
			if err := doIO(p, f2, OpWrite, 0, []byte{1}); err != nil {
				t.Errorf("write %d with FailReadsOnly: %v", i, err)
			}
		}
		if err := doIO(p, f2, OpRead, 0, []byte{0}); err != ErrInjected {
			t.Errorf("read after death with FailReadsOnly: got %v, want ErrInjected", err)
		}
	})
	k2.Run()
}

// TestFaultInjectorCombinedModes sets ErrorRate and FailAfter together: a
// flaky device that later dies outright. Before the countdown expires
// failures are probabilistic; after it, every op fails regardless of rate.
func TestFaultInjectorCombinedModes(t *testing.T) {
	k, f := faultEnv(9)
	defer k.Close()
	f.ErrorRate = 0.3
	f.FailAfter = 100
	var flaky, dead int64
	k.Go("io", func(p *sim.Proc) {
		for i := 0; i < 100; i++ {
			if doIO(p, f, OpWrite, int64(i), []byte{1}) == ErrInjected {
				flaky++
			}
		}
		for i := 0; i < 50; i++ {
			if err := doIO(p, f, OpWrite, 0, []byte{1}); err != ErrInjected {
				t.Errorf("op %d past the countdown: got %v, want ErrInjected", i, err)
				return
			}
			dead++
		}
	})
	k.Run()
	if flaky == 0 || flaky == 100 {
		t.Errorf("flaky phase injected %d/100; the probabilistic mode was masked", flaky)
	}
	if dead != 50 {
		t.Errorf("dead phase injected %d/50", dead)
	}
	if f.Injected() != flaky+dead {
		t.Errorf("Injected() = %d, want %d", f.Injected(), flaky+dead)
	}
}

// TestFaultInjectorZeroRateDrawsNoRandomness pins the property the chaos
// drills lean on to stay deterministic while wrapping every device: an
// injector with ErrorRate 0 must not consume rng state, so enabling the
// rate later yields the same failure pattern as a fresh same-seed injector.
func TestFaultInjectorZeroRateDrawsNoRandomness(t *testing.T) {
	run := func(warmup int) []bool {
		k, f := faultEnv(77)
		defer k.Close()
		var pattern []bool
		k.Go("io", func(p *sim.Proc) {
			for i := 0; i < warmup; i++ {
				if err := doIO(p, f, OpWrite, 0, []byte{1}); err != nil {
					t.Errorf("warmup op %d with rate 0: %v", i, err)
					return
				}
			}
			f.ErrorRate = 0.5
			for i := 0; i < 64; i++ {
				pattern = append(pattern, doIO(p, f, OpWrite, 0, []byte{1}) == ErrInjected)
			}
		})
		k.Run()
		return pattern
	}
	cold, warmed := run(0), run(200)
	for i := range cold {
		if cold[i] != warmed[i] {
			t.Fatalf("op %d: failure pattern diverged after a zero-rate warmup; "+
				"ErrorRate 0 consumed rng state", i)
		}
	}
}

// TestFaultInjectorTornWrite exercises the crash-mid-batch model: a failing
// write with TornWriteRate set persists its first half on the inner device
// before surfacing ErrInjected.
func TestFaultInjectorTornWrite(t *testing.T) {
	k := sim.New()
	defer k.Close()
	mem := NewMemDevice(k, 1<<20)
	f := NewFaultInjector(k, mem, 3)
	f.ErrorRate = 1.0
	f.TornWriteRate = 1.0
	f.FailWritesOnly = true

	payload := make([]byte, 1024)
	for i := range payload {
		payload[i] = 0xcd
	}
	k.Go("io", func(p *sim.Proc) {
		if err := doIO(p, f, OpWrite, 0, payload); err != ErrInjected {
			t.Errorf("torn write: got %v, want ErrInjected", err)
		}
	})
	k.Run()

	got := make([]byte, 1024)
	mem.SyncRead(got, 0)
	for i := 0; i < 512; i++ {
		if got[i] != 0xcd {
			t.Fatalf("byte %d of the torn prefix did not land", i)
		}
	}
	for i := 512; i < 1024; i++ {
		if got[i] != 0 {
			t.Fatalf("byte %d past the tear landed; write was not torn", i)
		}
	}
	if f.Injected() != 1 {
		t.Fatalf("Injected = %d, want 1", f.Injected())
	}
}
