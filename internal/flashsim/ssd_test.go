package flashsim

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"leed/internal/sim"
)

// doIO runs one op from a proc and returns any error payload.
func doIO(p *sim.Proc, d Device, kind OpKind, off int64, data []byte) error {
	op := &Op{Kind: kind, Offset: off, Data: data, Done: p.Kernel().NewEvent()}
	d.Submit(op)
	if v := p.Wait(op.Done); v != nil {
		return v.(error)
	}
	return nil
}

func TestSSDReadBackWrite(t *testing.T) {
	k := sim.New()
	defer k.Close()
	d := NewSSD(k, SamsungDCT983(1<<20))
	payload := []byte("hello, flash")
	var got []byte
	k.Go("io", func(p *sim.Proc) {
		if err := doIO(p, d, OpWrite, 4096, payload); err != nil {
			t.Errorf("write: %v", err)
		}
		got = make([]byte, len(payload))
		if err := doIO(p, d, OpRead, 4096, got); err != nil {
			t.Errorf("read: %v", err)
		}
	})
	k.Run()
	if !bytes.Equal(got, payload) {
		t.Fatalf("read back %q, want %q", got, payload)
	}
}

func TestSSDUnwrittenReadsZero(t *testing.T) {
	k := sim.New()
	defer k.Close()
	d := NewSSD(k, SamsungDCT983(1<<20))
	buf := []byte{0xff, 0xff, 0xff}
	k.Go("io", func(p *sim.Proc) {
		if err := doIO(p, d, OpRead, 100, buf); err != nil {
			t.Errorf("read: %v", err)
		}
	})
	k.Run()
	for _, b := range buf {
		if b != 0 {
			t.Fatalf("unwritten region returned %v", buf)
		}
	}
}

func TestSSDOutOfRangeFails(t *testing.T) {
	k := sim.New()
	defer k.Close()
	d := NewSSD(k, SamsungDCT983(4096))
	var wErr, rErr error
	k.Go("io", func(p *sim.Proc) {
		wErr = doIO(p, d, OpWrite, 4000, make([]byte, 200))
		rErr = doIO(p, d, OpRead, -1, make([]byte, 1))
	})
	k.Run()
	if wErr == nil || rErr == nil {
		t.Fatalf("out-of-range ops did not fail: %v, %v", wErr, rErr)
	}
}

func TestSSDLatencyEnvelope(t *testing.T) {
	k := sim.New()
	defer k.Close()
	spec := SamsungDCT983(1 << 30)
	spec.Jitter = 0
	d := NewSSD(k, spec)
	var lat sim.Time
	k.Go("io", func(p *sim.Proc) {
		start := p.Now()
		doIO(p, d, OpRead, 0, make([]byte, 4096))
		lat = p.Now() - start
	})
	k.Run()
	// base 52us + 4KiB at (3000MiB/s / 24) = 52us + ~31us
	if lat < 70*sim.Microsecond || lat > 100*sim.Microsecond {
		t.Fatalf("idle 4KB read latency = %v, want ~83us", lat)
	}
}

func TestSSDParallelismCeiling(t *testing.T) {
	// With many concurrent small reads, throughput should cap near
	// Parallelism/ReadBase, not scale unboundedly.
	k := sim.New()
	defer k.Close()
	spec := SamsungDCT983(1 << 30)
	spec.Jitter = 0
	d := NewSSD(k, spec)
	const n = 2000
	done := 0
	for i := 0; i < n; i++ {
		off := int64(i) * 4096
		k.Go("io", func(p *sim.Proc) {
			doIO(p, d, OpRead, off, make([]byte, 4096))
			done++
		})
	}
	end := k.Run()
	if done != n {
		t.Fatalf("completed %d/%d", done, n)
	}
	iops := float64(n) / end.Seconds()
	// 24 units / 83us => ~289K IOPS for 4KB.
	if iops < 200e3 || iops > 400e3 {
		t.Fatalf("4KB read IOPS = %.0f, want ~289K", iops)
	}
	if u := d.Utilization(); u < 0.95 {
		t.Fatalf("utilization = %.2f under saturation", u)
	}
}

func TestSSDWriteReadAsymmetry(t *testing.T) {
	// Sustained large writes must be slower than sustained large reads.
	measure := func(kind OpKind) float64 {
		k := sim.New()
		defer k.Close()
		spec := SamsungDCT983(1 << 30)
		spec.Jitter = 0
		d := NewSSD(k, spec)
		const n = 400
		for i := 0; i < n; i++ {
			off := int64(i) * 65536
			k.Go("io", func(p *sim.Proc) { doIO(p, d, kind, off, make([]byte, 65536)) })
		}
		end := k.Run()
		return float64(n*65536) / end.Seconds()
	}
	rbw, wbw := measure(OpRead), measure(OpWrite)
	if rbw < 2*wbw {
		t.Fatalf("read BW %.0f not >> write BW %.0f", rbw, wbw)
	}
}

func TestSSDFIFOQueueing(t *testing.T) {
	k := sim.New()
	defer k.Close()
	spec := SamsungDCT983(1 << 20)
	spec.Parallelism = 1
	spec.Jitter = 0
	d := NewSSD(k, spec)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		k.Go("io", func(p *sim.Proc) {
			p.Sleep(sim.Time(i)) // stagger submissions deterministically
			doIO(p, d, OpRead, 0, make([]byte, 512))
			order = append(order, i)
		})
	}
	k.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("completion order = %v, want FIFO", order)
		}
	}
}

func TestSSDStats(t *testing.T) {
	k := sim.New()
	defer k.Close()
	d := NewSSD(k, SamsungDCT983(1<<20))
	k.Go("io", func(p *sim.Proc) {
		doIO(p, d, OpWrite, 0, make([]byte, 1000))
		doIO(p, d, OpRead, 0, make([]byte, 400))
		doIO(p, d, OpRead, 0, make([]byte, 600))
	})
	k.Run()
	s := d.Stats()
	if s.Reads != 2 || s.Writes != 1 || s.BytesRead != 1000 || s.BytesWritten != 1000 {
		t.Fatalf("stats = %+v", s)
	}
	if s.ReadLat.Count() != 2 || s.WriteLat.Count() != 1 {
		t.Fatalf("latency histograms not recorded: %+v", s)
	}
}

func TestMemDeviceFunctional(t *testing.T) {
	k := sim.New()
	defer k.Close()
	d := NewMemDevice(k, 1<<20)
	var got []byte
	k.Go("io", func(p *sim.Proc) {
		doIO(p, d, OpWrite, 777, []byte("abc"))
		got = make([]byte, 3)
		doIO(p, d, OpRead, 777, got)
	})
	end := k.Run()
	if string(got) != "abc" {
		t.Fatalf("got %q", got)
	}
	if end != 0 {
		t.Fatalf("MemDevice consumed virtual time: %v", end)
	}
}

func TestPageStoreSparse(t *testing.T) {
	s := newPageStore(1 << 40) // 1TiB advertised
	s.writeAt([]byte{1, 2, 3}, 1<<39)
	if s.residentBytes() > 2*pageSize {
		t.Fatalf("resident = %d bytes for a 3-byte write", s.residentBytes())
	}
	got := make([]byte, 3)
	s.readAt(got, 1<<39)
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestPageStoreCrossPageProperty(t *testing.T) {
	// Property: writeAt/readAt round-trip across arbitrary page-straddling
	// boundaries matches a reference flat buffer.
	const span = 4 * pageSize
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := newPageStore(span)
		ref := make([]byte, span)
		for i := 0; i < 30; i++ {
			off := rng.Int63n(span - 1)
			n := rng.Int63n(span-off) % (pageSize * 2)
			if n == 0 {
				n = 1
			}
			buf := make([]byte, n)
			rng.Read(buf)
			s.writeAt(buf, off)
			copy(ref[off:off+n], buf)
		}
		for i := 0; i < 30; i++ {
			off := rng.Int63n(span - 1)
			n := rng.Int63n(span-off)%(pageSize*2) + 1
			if off+n > span {
				n = span - off
			}
			got := make([]byte, n)
			s.readAt(got, off)
			if !bytes.Equal(got, ref[off:off+n]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSSDDeterministicWithSeed(t *testing.T) {
	run := func() sim.Time {
		k := sim.New()
		defer k.Close()
		spec := SamsungDCT983(1 << 20)
		spec.Seed = 42
		d := NewSSD(k, spec)
		for i := 0; i < 50; i++ {
			off := int64(i * 512)
			k.Go("io", func(p *sim.Proc) { doIO(p, d, OpRead, off, make([]byte, 512)) })
		}
		return k.Run()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}
