package flashsim

import (
	"errors"
	"math/rand"

	"leed/internal/runtime"
)

// ErrInjected is the failure surfaced by a FaultInjector.
var ErrInjected = errors.New("flashsim: injected device fault")

// FaultInjector wraps a Device and fails operations to exercise error
// paths: either probabilistically (ErrorRate) or deterministically after a
// countdown (FailAfter). Failed operations complete with ErrInjected and
// leave the backing store untouched.
type FaultInjector struct {
	Inner Device
	// ErrorRate is the probability in [0,1] that an op fails.
	ErrorRate float64
	// FailAfter, when > 0, lets that many ops through and then fails every
	// subsequent one (a die-at-T device).
	FailAfter int64
	// FailWrites/FailReads restrict which kinds fail (both false = both fail).
	FailWritesOnly bool
	FailReadsOnly  bool
	// TornWriteRate is the probability in [0,1] that a failing write is torn
	// instead of dropped: the first half of its payload reaches the inner
	// device before the op completes with ErrInjected. This models a crash
	// mid-batch on a submission-queue device — some sectors of an
	// acknowledged-to-the-device write land, the rest never do — and is what
	// the recovery scan's torn-append handling is exercised against.
	TornWriteRate float64

	env      runtime.Env
	rng      *rand.Rand
	ops      int64
	injected int64
}

// NewFaultInjector wraps dev.
func NewFaultInjector(env runtime.Env, dev Device, seed int64) *FaultInjector {
	return &FaultInjector{Inner: dev, env: env, rng: rand.New(rand.NewSource(seed))}
}

// Capacity returns the inner device's capacity.
func (f *FaultInjector) Capacity() int64 { return f.Inner.Capacity() }

// Stats returns the inner device's counters.
func (f *FaultInjector) Stats() Stats { return f.Inner.Stats() }

// Injected returns how many operations were failed.
func (f *FaultInjector) Injected() int64 { return f.injected }

func (f *FaultInjector) shouldFail(kind OpKind) bool {
	if f.FailWritesOnly && kind != OpWrite {
		return false
	}
	if f.FailReadsOnly && kind != OpRead {
		return false
	}
	if f.FailAfter > 0 && f.ops > f.FailAfter {
		return true
	}
	return f.ErrorRate > 0 && f.rng.Float64() < f.ErrorRate
}

// Submit forwards to the inner device or fails the op.
func (f *FaultInjector) Submit(op *Op) {
	f.ops++
	if f.shouldFail(op.Kind) {
		f.injected++
		if op.Kind == OpWrite && len(op.Data) > 1 &&
			f.TornWriteRate > 0 && f.rng.Float64() < f.TornWriteRate {
			f.tornWrite(op)
			return
		}
		f.env.After(0, func() { op.Done.Fire(error(ErrInjected)) })
		return
	}
	f.Inner.Submit(op)
}

// tornWrite persists the first half of op's payload on the inner device and
// then fails the op, so the caller observes an error while the medium holds
// a torn prefix.
func (f *FaultInjector) tornWrite(op *Op) {
	half := len(op.Data) / 2
	prefixDone := f.env.MakeEvent()
	f.Inner.Submit(&Op{Kind: OpWrite, Offset: op.Offset, Data: op.Data[:half], Done: prefixDone})
	prefixDone.OnFire(func(any) { op.Done.Fire(error(ErrInjected)) })
}
