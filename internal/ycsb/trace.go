package ycsb

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Trace support: record a generated operation stream to a compact text
// format and replay it later, so experiments can run against captured or
// externally produced workloads instead of synthetic distributions.
//
// Format, one op per line:
//
//	R <key>            read
//	U <key> <vlen>     update
//	I <key> <vlen>     insert
//	M <key> <vlen>     read-modify-write

// Source produces an operation stream; both Generator and TraceReplayer
// satisfy it.
type Source interface {
	Next() Op
}

// WriteTrace serializes ops to w.
func WriteTrace(w io.Writer, ops []Op) error {
	bw := bufio.NewWriter(w)
	for _, op := range ops {
		var err error
		switch op.Type {
		case OpRead:
			_, err = fmt.Fprintf(bw, "R %s\n", op.Key)
		case OpUpdate:
			_, err = fmt.Fprintf(bw, "U %s %d\n", op.Key, len(op.Value))
		case OpInsert:
			_, err = fmt.Fprintf(bw, "I %s %d\n", op.Key, len(op.Value))
		case OpReadModifyWrite:
			_, err = fmt.Fprintf(bw, "M %s %d\n", op.Key, len(op.Value))
		default:
			err = fmt.Errorf("ycsb: unknown op type %v", op.Type)
		}
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Record captures the next n ops from a source as a trace.
func Record(src Source, n int) []Op {
	out := make([]Op, 0, n)
	for i := 0; i < n; i++ {
		op := src.Next()
		cp := Op{Type: op.Type, Key: append([]byte(nil), op.Key...)}
		if op.Value != nil {
			cp.Value = append([]byte(nil), op.Value...)
		}
		out = append(out, cp)
	}
	return out
}

// TraceReplayer replays a parsed trace. Values are regenerated
// deterministically at the recorded lengths. Next cycles back to the start
// when the trace is exhausted, so replays can drive runs of any length.
type TraceReplayer struct {
	ops    []traceOp
	i      int
	valBuf []byte
	// Wrapped counts how many times the replay cycled.
	Wrapped int
}

type traceOp struct {
	typ  OpType
	key  []byte
	vlen int
}

// ReadTrace parses a trace from r.
func ReadTrace(r io.Reader) (*TraceReplayer, error) {
	t := &TraceReplayer{}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		op := traceOp{}
		switch fields[0] {
		case "R":
			if len(fields) != 2 {
				return nil, fmt.Errorf("ycsb: trace line %d: R needs a key", line)
			}
			op.typ = OpRead
			op.key = []byte(fields[1])
		case "U", "I", "M":
			if len(fields) != 3 {
				return nil, fmt.Errorf("ycsb: trace line %d: %s needs key and vlen", line, fields[0])
			}
			switch fields[0] {
			case "U":
				op.typ = OpUpdate
			case "I":
				op.typ = OpInsert
			default:
				op.typ = OpReadModifyWrite
			}
			op.key = []byte(fields[1])
			if _, err := fmt.Sscanf(fields[2], "%d", &op.vlen); err != nil || op.vlen < 0 {
				return nil, fmt.Errorf("ycsb: trace line %d: bad vlen %q", line, fields[2])
			}
		default:
			return nil, fmt.Errorf("ycsb: trace line %d: unknown op %q", line, fields[0])
		}
		t.ops = append(t.ops, op)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(t.ops) == 0 {
		return nil, fmt.Errorf("ycsb: empty trace")
	}
	return t, nil
}

// Len returns the number of ops in one pass of the trace.
func (t *TraceReplayer) Len() int { return len(t.ops) }

// Next returns the next operation, cycling at the end. The returned slices
// are reused across calls.
func (t *TraceReplayer) Next() Op {
	op := t.ops[t.i]
	t.i++
	if t.i == len(t.ops) {
		t.i = 0
		t.Wrapped++
	}
	out := Op{Type: op.typ, Key: op.key}
	if op.typ != OpRead {
		if cap(t.valBuf) < op.vlen {
			t.valBuf = make([]byte, op.vlen)
		}
		v := t.valBuf[:op.vlen]
		for i := range v {
			v[i] = byte(t.i>>3) ^ byte(i*13)
		}
		out.Value = v
	}
	return out
}
