// Package ycsb generates YCSB-style key-value workloads (Cooper et al.,
// SoCC'10): the standard A/B/C/D/F mixes plus the paper's write-only
// YCSB-WR, over uniform, Zipfian (scrambled), and latest request
// distributions with configurable skewness — the workloads behind Figures
// 5-8, 10, and 14.
package ycsb

import (
	"fmt"
	"math"
	"math/rand"
)

// OpType is one workload operation.
type OpType uint8

// Operation types.
const (
	OpRead OpType = iota + 1
	OpUpdate
	OpInsert
	OpReadModifyWrite
)

func (o OpType) String() string {
	switch o {
	case OpRead:
		return "READ"
	case OpUpdate:
		return "UPDATE"
	case OpInsert:
		return "INSERT"
	case OpReadModifyWrite:
		return "RMW"
	}
	return "?"
}

// Distribution selects how keys are drawn.
type Distribution uint8

// Request distributions.
const (
	Uniform Distribution = iota + 1
	Zipfian              // scrambled Zipf over the whole keyspace
	Latest               // Zipf biased toward recently inserted keys
)

// Workload is a YCSB mix definition.
type Workload struct {
	Name       string
	ReadProp   float64
	UpdateProp float64
	InsertProp float64
	RMWProp    float64
	Dist       Distribution
	// Skew is the Zipfian theta; YCSB's default is 0.99.
	Skew float64
}

// The six workloads the paper evaluates (§4.1): A (update heavy), B (read
// mostly), C (read only), D (read latest), F (read-modify-write), and WR
// (write only).
var (
	WorkloadA  = Workload{Name: "YCSB-A", ReadProp: 0.5, UpdateProp: 0.5, Dist: Zipfian, Skew: 0.99}
	WorkloadB  = Workload{Name: "YCSB-B", ReadProp: 0.95, UpdateProp: 0.05, Dist: Zipfian, Skew: 0.99}
	WorkloadC  = Workload{Name: "YCSB-C", ReadProp: 1.0, Dist: Zipfian, Skew: 0.99}
	WorkloadD  = Workload{Name: "YCSB-D", ReadProp: 0.95, InsertProp: 0.05, Dist: Latest, Skew: 0.99}
	WorkloadF  = Workload{Name: "YCSB-F", ReadProp: 0.5, RMWProp: 0.5, Dist: Zipfian, Skew: 0.99}
	WorkloadWR = Workload{Name: "YCSB-WR", UpdateProp: 1.0, Dist: Zipfian, Skew: 0.99}
)

// Workloads lists the paper's six mixes in presentation order.
var Workloads = []Workload{WorkloadA, WorkloadB, WorkloadC, WorkloadD, WorkloadF, WorkloadWR}

// ByName returns the workload with the given name.
func ByName(name string) (Workload, bool) {
	for _, w := range Workloads {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

// WithSkew returns a copy of the workload with a different Zipf theta.
func (w Workload) WithSkew(theta float64) Workload {
	w.Skew = theta
	if theta == 0 {
		w.Dist = Uniform
	}
	return w
}

// Op is one generated operation.
type Op struct {
	Type  OpType
	Key   []byte
	Value []byte // nil for reads
}

// Generator produces a deterministic operation stream.
type Generator struct {
	w            Workload
	rng          *rand.Rand
	records      int64 // current keyspace size
	valLen       int
	zipf         *ZipfGen
	keyBuf       []byte
	valBuf       []byte
	opsGenerated int64
}

// NewGenerator creates a generator over a keyspace of records keys with
// valLen-byte values, seeded for reproducibility.
func NewGenerator(w Workload, records int64, valLen int, seed int64) *Generator {
	if records <= 0 {
		panic("ycsb: records must be positive")
	}
	g := &Generator{
		w:       w,
		rng:     rand.New(rand.NewSource(seed)),
		records: records,
		valLen:  valLen,
		valBuf:  make([]byte, valLen),
	}
	if w.Dist == Zipfian || w.Dist == Latest {
		theta := w.Skew
		if theta <= 0 {
			theta = 0.99
		}
		g.zipf = NewZipfGen(records, theta)
	}
	return g
}

// Records returns the current keyspace size (grows with inserts).
func (g *Generator) Records() int64 { return g.records }

// KeyAt formats the canonical key for rank i ("user" + zero-padded id).
func KeyAt(i int64) []byte { return []byte(fmt.Sprintf("user%012d", i)) }

// nextKeyRank draws a key rank per the workload distribution.
func (g *Generator) nextKeyRank() int64 {
	switch g.w.Dist {
	case Uniform:
		return g.rng.Int63n(g.records)
	case Latest:
		// Bias toward recently inserted keys: rank counts back from the
		// newest record.
		off := g.zipf.Next(g.rng)
		if off >= g.records {
			off = g.records - 1
		}
		return g.records - 1 - off
	default: // Zipfian, scrambled so hot keys spread over the keyspace
		r := g.zipf.Next(g.rng)
		return int64(scramble(uint64(r)) % uint64(g.records))
	}
}

// fillValue writes a deterministic payload for the op sequence number.
func (g *Generator) fillValue(seq int64) []byte {
	v := g.valBuf
	for i := range v {
		v[i] = byte(seq>>uint(8*(i%4))) ^ byte(i)
	}
	return v
}

// Next generates the next operation. The returned slices are reused across
// calls; callers that retain them must copy.
func (g *Generator) Next() Op {
	g.opsGenerated++
	u := g.rng.Float64()
	w := &g.w
	switch {
	case u < w.ReadProp:
		return Op{Type: OpRead, Key: KeyAt(g.nextKeyRank())}
	case u < w.ReadProp+w.UpdateProp:
		return Op{Type: OpUpdate, Key: KeyAt(g.nextKeyRank()), Value: g.fillValue(g.opsGenerated)}
	case u < w.ReadProp+w.UpdateProp+w.RMWProp:
		return Op{Type: OpReadModifyWrite, Key: KeyAt(g.nextKeyRank()), Value: g.fillValue(g.opsGenerated)}
	default: // insert
		key := KeyAt(g.records)
		g.records++
		if g.w.Dist == Latest && g.zipf != nil && g.records > g.zipf.n {
			g.zipf.Grow(g.records)
		}
		return Op{Type: OpInsert, Key: key, Value: g.fillValue(g.opsGenerated)}
	}
}

// scramble is the splitmix64 finalizer, used as YCSB's FNV-style hash to
// de-cluster hot Zipf ranks.
func scramble(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// ZipfGen draws ranks from a Zipf(theta) distribution over [0, n) using
// Gray et al.'s incremental method (the algorithm YCSB itself uses), which
// supports any theta in (0, 1) and cheap growth of n.
type ZipfGen struct {
	n     int64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	zeta2 float64
}

// NewZipfGen builds a generator for ranks [0, n).
func NewZipfGen(n int64, theta float64) *ZipfGen {
	if theta <= 0 || theta >= 1 {
		// Clamp: YCSB skews are in (0,1); 0.99 is the default.
		if theta >= 1 {
			theta = 0.9999
		} else {
			theta = 0.0001
		}
	}
	z := &ZipfGen{n: n, theta: theta}
	z.zeta2 = zetaStatic(2, theta)
	z.zetan = zetaStatic(n, theta)
	z.finish()
	return z
}

func (z *ZipfGen) finish() {
	z.alpha = 1.0 / (1.0 - z.theta)
	z.eta = (1 - math.Pow(2.0/float64(z.n), 1-z.theta)) / (1 - z.zeta2/z.zetan)
}

// Grow extends the rank space to n2, updating zeta incrementally.
func (z *ZipfGen) Grow(n2 int64) {
	for i := z.n + 1; i <= n2; i++ {
		z.zetan += 1 / math.Pow(float64(i), z.theta)
	}
	z.n = n2
	z.finish()
}

func zetaStatic(n int64, theta float64) float64 {
	sum := 0.0
	for i := int64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next draws a rank in [0, n), rank 0 being the hottest.
func (z *ZipfGen) Next(rng *rand.Rand) int64 {
	u := rng.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	r := int64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if r >= z.n {
		r = z.n - 1
	}
	return r
}
