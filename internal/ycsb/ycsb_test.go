package ycsb

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWorkloadMixProportions(t *testing.T) {
	cases := []struct {
		w        Workload
		read, wr float64 // expected fractions (update+insert+rmw as writes)
	}{
		{WorkloadA, 0.5, 0.5},
		{WorkloadB, 0.95, 0.05},
		{WorkloadC, 1.0, 0.0},
		{WorkloadD, 0.95, 0.05},
		{WorkloadF, 0.5, 0.5},
		{WorkloadWR, 0.0, 1.0},
	}
	for _, tc := range cases {
		g := NewGenerator(tc.w, 10000, 64, 1)
		reads := 0
		const n = 20000
		for i := 0; i < n; i++ {
			if g.Next().Type == OpRead {
				reads++
			}
		}
		frac := float64(reads) / n
		if frac < tc.read-0.02 || frac > tc.read+0.02 {
			t.Errorf("%s: read fraction = %.3f, want %.2f", tc.w.Name, frac, tc.read)
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	a := NewGenerator(WorkloadA, 1000, 32, 7)
	b := NewGenerator(WorkloadA, 1000, 32, 7)
	for i := 0; i < 500; i++ {
		oa, ob := a.Next(), b.Next()
		if oa.Type != ob.Type || string(oa.Key) != string(ob.Key) {
			t.Fatalf("divergence at op %d", i)
		}
	}
}

func TestZipfSkewOrdersRanks(t *testing.T) {
	z := NewZipfGen(1000, 0.99)
	rng := rand.New(rand.NewSource(3))
	counts := make([]int, 1000)
	for i := 0; i < 200000; i++ {
		counts[z.Next(rng)]++
	}
	if counts[0] < counts[10] || counts[10] < counts[500] {
		t.Fatalf("zipf not skewed: c0=%d c10=%d c500=%d", counts[0], counts[10], counts[500])
	}
	// At theta 0.99 the hottest rank should take a large share.
	if counts[0] < 200000/20 {
		t.Fatalf("hottest rank only %d/200000", counts[0])
	}
}

func TestZipfLowSkewIsFlat(t *testing.T) {
	z := NewZipfGen(1000, 0.1)
	rng := rand.New(rand.NewSource(3))
	counts := make([]int, 1000)
	for i := 0; i < 200000; i++ {
		counts[z.Next(rng)]++
	}
	// Rank 0 should take far less than at high skew.
	if counts[0] > 200000/50 {
		t.Fatalf("theta=0.1 too skewed: c0=%d", counts[0])
	}
}

func TestZipfRanksInRange(t *testing.T) {
	f := func(seed int64, nRaw uint16, thetaRaw uint8) bool {
		n := int64(nRaw)%5000 + 2
		theta := 0.05 + 0.9*float64(thetaRaw)/255
		z := NewZipfGen(n, theta)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 200; i++ {
			r := z.Next(rng)
			if r < 0 || r >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestZipfGrowMatchesStatic(t *testing.T) {
	grown := NewZipfGen(100, 0.9)
	grown.Grow(200)
	direct := NewZipfGen(200, 0.9)
	if diff := grown.zetan - direct.zetan; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("incremental zeta diverges: %v vs %v", grown.zetan, direct.zetan)
	}
}

func TestScrambledZipfDisperses(t *testing.T) {
	// The hottest keys must not be adjacent ranks.
	g := NewGenerator(WorkloadC, 100000, 8, 5)
	seen := map[string]int{}
	for i := 0; i < 50000; i++ {
		seen[string(g.Next().Key)]++
	}
	var hotIDs []int64
	for k, c := range seen {
		if c > 500 {
			var id int64
			for _, ch := range k[4:] {
				id = id*10 + int64(ch-'0')
			}
			hotIDs = append(hotIDs, id)
		}
	}
	if len(hotIDs) < 2 {
		t.Skip("not enough hot keys to check dispersion")
	}
	// Unscrambled Zipf would make ranks 0,1,2,... hot; scrambled hot ids
	// must be spread across the keyspace.
	minID, maxID := hotIDs[0], hotIDs[0]
	for _, id := range hotIDs {
		if id < minID {
			minID = id
		}
		if id > maxID {
			maxID = id
		}
	}
	if maxID-minID < 10000 {
		t.Fatalf("hot keys clustered in [%d, %d]", minID, maxID)
	}
}

func TestLatestFavorsRecentKeys(t *testing.T) {
	g := NewGenerator(WorkloadD, 10000, 8, 9)
	recent := 0
	total := 0
	for i := 0; i < 20000; i++ {
		op := g.Next()
		if op.Type != OpRead {
			continue
		}
		total++
		var id int64
		// key format user%012d
		for _, ch := range op.Key[4:] {
			id = id*10 + int64(ch-'0')
		}
		if id >= g.Records()-1000 {
			recent++
		}
	}
	frac := float64(recent) / float64(total)
	if frac < 0.5 {
		t.Fatalf("latest distribution: only %.2f of reads in newest 10%%", frac)
	}
}

func TestInsertGrowsKeyspace(t *testing.T) {
	g := NewGenerator(WorkloadD, 1000, 8, 2)
	before := g.Records()
	inserts := 0
	for i := 0; i < 5000; i++ {
		if g.Next().Type == OpInsert {
			inserts++
		}
	}
	if g.Records() != before+int64(inserts) {
		t.Fatalf("records = %d, want %d", g.Records(), before+int64(inserts))
	}
	if inserts == 0 {
		t.Fatal("no inserts in YCSB-D")
	}
}

func TestKeyAtFormat(t *testing.T) {
	if string(KeyAt(42)) != "user000000000042" {
		t.Fatalf("KeyAt = %q", KeyAt(42))
	}
}

func TestByName(t *testing.T) {
	if w, ok := ByName("YCSB-F"); !ok || w.RMWProp != 0.5 {
		t.Fatal("ByName failed")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("unknown workload found")
	}
}

func TestWithSkew(t *testing.T) {
	w := WorkloadB.WithSkew(0.5)
	if w.Skew != 0.5 || w.Dist != Zipfian {
		t.Fatalf("%+v", w)
	}
	u := WorkloadB.WithSkew(0)
	if u.Dist != Uniform {
		t.Fatal("skew 0 should become uniform")
	}
}
