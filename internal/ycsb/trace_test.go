package ycsb

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	gen := NewGenerator(WorkloadA, 500, 64, 3)
	ops := Record(gen, 200)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, ops); err != nil {
		t.Fatal(err)
	}
	rep, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Len() != 200 {
		t.Fatalf("trace len = %d", rep.Len())
	}
	for i, want := range ops {
		got := rep.Next()
		if got.Type != want.Type || string(got.Key) != string(want.Key) {
			t.Fatalf("op %d: got %v/%s, want %v/%s", i, got.Type, got.Key, want.Type, want.Key)
		}
		if len(got.Value) != len(want.Value) {
			t.Fatalf("op %d: value len %d, want %d", i, len(got.Value), len(want.Value))
		}
	}
}

func TestTraceReplayerCycles(t *testing.T) {
	rep, err := ReadTrace(strings.NewReader("R a\nU b 8\n"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		rep.Next()
	}
	if rep.Wrapped != 2 {
		t.Fatalf("wrapped = %d", rep.Wrapped)
	}
}

func TestTraceCommentsAndBlanks(t *testing.T) {
	rep, err := ReadTrace(strings.NewReader("# header\n\nR key1\nM key2 32\n"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Len() != 2 {
		t.Fatalf("len = %d", rep.Len())
	}
	op := rep.Next()
	if op.Type != OpRead || string(op.Key) != "key1" {
		t.Fatalf("op = %v %s", op.Type, op.Key)
	}
	op = rep.Next()
	if op.Type != OpReadModifyWrite || len(op.Value) != 32 {
		t.Fatalf("op = %v len %d", op.Type, len(op.Value))
	}
}

func TestTraceRejectsGarbage(t *testing.T) {
	for _, bad := range []string{"", "X key", "U key", "U key notanum", "R"} {
		if _, err := ReadTrace(strings.NewReader(bad)); err == nil {
			t.Errorf("trace %q accepted", bad)
		}
	}
}

func TestSourceInterface(t *testing.T) {
	var _ Source = NewGenerator(WorkloadB, 10, 8, 1)
	rep, _ := ReadTrace(strings.NewReader("R a\n"))
	var _ Source = rep
}
