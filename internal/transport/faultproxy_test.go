package transport

import (
	"sync/atomic"
	"testing"
	"time"

	"leed/internal/netsim"
	"leed/internal/rpcproto"
	"leed/internal/runtime"
	"leed/internal/runtime/wallclock"
	"leed/internal/sim"
)

// proxyHarness stands up echo-server <- proxy <- client plumbing.
func proxyHarness(t *testing.T, env runtime.Env, seed int64) (*FaultProxy, *TCPListener) {
	t.Helper()
	l, err := ListenTCP(env, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	echoServe(env, l)
	proxy, err := NewFaultProxy("127.0.0.1:0", l.Addr(), seed)
	if err != nil {
		t.Fatalf("proxy: %v", err)
	}
	return proxy, l
}

// oneEcho round-trips a single request with the given ID through conn.
func oneEcho(p runtime.Task, conn Conn, id uint64) error {
	frame := rpcproto.AppendRequestFrame(nil, &rpcproto.Request{
		ID: id, Op: rpcproto.OpGet, Key: []byte("key")})
	if err := conn.Send(p, frame); err != nil {
		return err
	}
	_, err := conn.Recv(p)
	return err
}

// TestFaultProxyPassthrough: with no faults installed the proxy is invisible
// — the full pipelined echo workload completes through it.
func TestFaultProxyPassthrough(t *testing.T) {
	env := wallclock.New()
	proxy, l := proxyHarness(t, env, 1)
	defer proxy.Close()
	var done atomic.Int64
	env.Spawn("dial", func(p runtime.Task) {
		conn, err := DialTCP(env, proxy.Addr())
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		driveEcho(t, env, conn, 100, &done)
		env.Spawn("closer", func(q runtime.Task) {
			for done.Load() < 100 {
				q.Sleep(runtime.Millisecond)
			}
			l.Close()
		})
	})
	env.Wait()
	if done.Load() != 100 {
		t.Fatalf("completed %d of 100", done.Load())
	}
	st := proxy.Stats()
	if st.Bridged < 1 || st.Bytes == 0 || st.Chunks == 0 {
		t.Fatalf("proxy saw no traffic: %+v", st)
	}
}

// TestFaultProxyDropKillsConnection: with Drop=1 the first forwarded chunk
// kills the connection abruptly; the client sees a connection error, never a
// clean response.
func TestFaultProxyDropKillsConnection(t *testing.T) {
	env := wallclock.New()
	proxy, l := proxyHarness(t, env, 42)
	proxy.SetDrop(1.0)
	result := make(chan error, 1)
	env.Spawn("client", func(p runtime.Task) {
		conn, err := DialTCP(env, proxy.Addr())
		if err != nil {
			result <- err
			return
		}
		defer conn.Close()
		result <- oneEcho(p, conn, 1)
	})
	err := <-result
	// The echo accept task parks in Accept until its listener closes, and
	// Wait counts parked tasks — tear the stack down before draining.
	proxy.Close()
	l.Close()
	env.Wait()
	if err == nil {
		t.Fatal("echo through a Drop=1 link succeeded")
	}
	if st := proxy.Stats(); st.KilledByDrop == 0 {
		t.Fatalf("drop kill not counted: %+v", st)
	}
}

// TestFaultProxyDelay: a per-chunk delay is paid in wall time.
func TestFaultProxyDelay(t *testing.T) {
	env := wallclock.New()
	proxy, l := proxyHarness(t, env, 7)
	proxy.SetDelay(30 * time.Millisecond)
	start := time.Now()
	result := make(chan error, 1)
	env.Spawn("client", func(p runtime.Task) {
		conn, err := DialTCP(env, proxy.Addr())
		if err != nil {
			result <- err
			return
		}
		err = oneEcho(p, conn, 1)
		conn.Close()
		result <- err
	})
	err := <-result
	proxy.Close()
	l.Close()
	env.Wait()
	if err != nil {
		t.Fatalf("echo: %v", err)
	}
	// Request and response directions each pay >= 30ms.
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Fatalf("delay not applied: round trip took %v", elapsed)
	}
	if st := proxy.Stats(); st.DelayedChunks < 2 {
		t.Fatalf("delayed chunks not counted: %+v", st)
	}
}

// TestFaultProxyPartitionHeal: a partition blackholes in-flight traffic (the
// client just stalls — no error), and healing releases it; the stalled
// request then completes.
func TestFaultProxyPartitionHeal(t *testing.T) {
	env := wallclock.New()
	proxy, l := proxyHarness(t, env, 3)
	result := make(chan error, 2)
	env.Spawn("client", func(p runtime.Task) {
		conn, err := DialTCP(env, proxy.Addr())
		if err != nil {
			result <- err
			return
		}
		// Warm the bridge with a clean round trip, then partition.
		if err := oneEcho(p, conn, 1); err != nil {
			result <- err
			return
		}
		proxy.Partition()
		time.AfterFunc(80*time.Millisecond, proxy.Heal)
		start := time.Now()
		err = oneEcho(p, conn, 2)
		if err == nil && time.Since(start) < 50*time.Millisecond {
			t.Errorf("request crossed a partitioned link in %v", time.Since(start))
		}
		conn.Close()
		result <- err
	})
	err := <-result
	proxy.Close()
	l.Close()
	env.Wait()
	if err != nil {
		t.Fatalf("echo across heal: %v", err)
	}
	if st := proxy.Stats(); st.PartitionedStalls == 0 {
		t.Fatalf("partition stall not counted: %+v", st)
	}
}

// TestFaultProxyKillAll: killing active connections surfaces as an abrupt
// error on the client.
func TestFaultProxyKillAll(t *testing.T) {
	env := wallclock.New()
	proxy, l := proxyHarness(t, env, 9)
	result := make(chan error, 1)
	env.Spawn("client", func(p runtime.Task) {
		conn, err := DialTCP(env, proxy.Addr())
		if err != nil {
			result <- err
			return
		}
		defer conn.Close()
		if err := oneEcho(p, conn, 1); err != nil {
			result <- err
			return
		}
		proxy.KillAll()
		result <- oneEcho(p, conn, 2)
	})
	err := <-result
	proxy.Close()
	l.Close()
	env.Wait()
	if err == nil {
		t.Fatal("echo after KillAll succeeded")
	}
	if st := proxy.Stats(); st.Killed == 0 {
		t.Fatalf("kill not counted: %+v", st)
	}
}

// TestLinkFaultsApplyTo: the portable config lands on a sim fault layer with
// the same semantics — the parity bridge between proxy and fabric.
func TestLinkFaultsApplyTo(t *testing.T) {
	k := sim.New()
	defer k.Close()
	fab := netsim.New(k, netsim.Config{})
	fl := fab.InstallFaults(1)
	LinkFaults{Drop: 0.5, Delay: time.Millisecond, Partitioned: true}.ApplyTo(fl, 1, 2)
	if !fl.Partitioned(1, 2) {
		t.Fatal("partition not applied to fabric")
	}
	LinkFaults{}.ApplyTo(fl, 1, 2)
	if fl.Partitioned(1, 2) {
		t.Fatal("heal not applied to fabric")
	}
}
