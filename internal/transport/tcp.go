package transport

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"leed/internal/rpcproto"
	"leed/internal/runtime"
)

// The TCP backend carries frames over real sockets. Socket syscalls cannot
// run under the execution contract (a blocked read would stall every task),
// so each connection owns two plain goroutines — a reader and a writer —
// and bridges into the runtime world through env.After(0, ...), which both
// backends define as "run this in scheduler context". In practice TCP is
// used with the wallclock backend: under sim there is no real wire, and the
// sim kernel's virtual clock has no relation to socket readiness.
//
// Pipelining and coalescing: the reader delivers frames as fast as the
// stream yields them, so any number of requests from one client can be in
// flight; Send appends to a per-connection buffer that the writer drains
// with single large writes, so a burst of pipelined responses costs one
// syscall, not one per response.

// inbox orders deliveries from a raw goroutine into a runtime queue.
// Multiple After(0) callbacks carry no ordering guarantee on the wallclock
// backend (each is its own timer goroutine racing for the runtime lock), so
// the reader appends to a mutex-guarded slice and schedules a single drain;
// the drain moves everything in arrival order.
type inbox struct {
	env     runtime.Env
	q       runtime.Queue
	drainFn func() // bound once; After(0, b.drain) would allocate per call

	mu        sync.Mutex
	pending   []any
	spare     []any // previous drained slice, recycled to keep put alloc-free
	scheduled bool
}

func newInbox(env runtime.Env) *inbox {
	b := &inbox{env: env, q: env.MakeQueue()}
	b.drainFn = b.drain
	return b
}

// put delivers v; safe from any goroutine.
func (b *inbox) put(v any) {
	b.mu.Lock()
	b.pending = append(b.pending, v)
	sched := b.scheduled
	b.scheduled = true
	b.mu.Unlock()
	if !sched {
		b.env.After(0, b.drainFn)
	}
}

// drain runs in scheduler context.
func (b *inbox) drain() {
	b.mu.Lock()
	items := b.pending
	b.pending = b.spare
	b.spare = nil
	b.scheduled = false
	b.mu.Unlock()
	for i, v := range items {
		b.q.Put(v)
		items[i] = nil
	}
	b.mu.Lock()
	if b.spare == nil {
		b.spare = items[:0]
	}
	b.mu.Unlock()
}

// ErrIdleTimeout reports a connection torn down by its read-idle deadline:
// no bytes arrived (or a frame stalled mid-read) for longer than the
// configured TCPOptions.ReadIdleTimeout. For a server this is the idle-reap
// signal; for a client it means the peer silently disappeared.
var ErrIdleTimeout = errors.New("transport: connection idle timeout")

// TCPOptions bounds a TCP connection's patience. The zero value preserves
// the historical behavior (block forever), but production servers should
// set both: without a read deadline a peer that vanishes mid-frame — a
// kill -9'd client, a blackholed route — parks the reader goroutine on that
// socket forever, and without a write deadline a peer that stops reading
// can park the writer the same way.
type TCPOptions struct {
	// ReadIdleTimeout tears the connection down when no bytes arrive for
	// this long, whether between frames (idle reaping) or mid-frame (a
	// half-dead peer). Recv then reports ErrIdleTimeout. 0 = never.
	ReadIdleTimeout time.Duration
	// WriteTimeout bounds each coalesced socket write. A peer that stops
	// draining its receive window fails the write instead of wedging the
	// writer goroutine. 0 = never.
	WriteTimeout time.Duration
}

// TCPListener is the TCP transport's Listener.
type TCPListener struct {
	env     runtime.Env
	ln      net.Listener
	inbox   *inbox
	closeMu sync.Mutex
	closed  bool
}

// ListenTCP binds addr (e.g. ":9090" or "127.0.0.1:0") and starts
// accepting. Wallclock backend only; see the package comment.
func ListenTCP(env runtime.Env, addr string) (*TCPListener, error) {
	return ListenTCPOpts(env, addr, TCPOptions{})
}

// ListenTCPOpts is ListenTCP with connection options applied to every
// accepted connection.
func ListenTCPOpts(env runtime.Env, addr string, opts TCPOptions) (*TCPListener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	l := &TCPListener{env: env, ln: ln, inbox: newInbox(env)}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				l.inbox.put(eofItem{err: err})
				return
			}
			l.inbox.put(newTCPConn(env, c, opts))
		}
	}()
	return l, nil
}

// Accept implements Listener.
func (l *TCPListener) Accept(t runtime.Task) (Conn, error) {
	v := l.inbox.q.Get(t)
	if _, eof := v.(eofItem); eof {
		l.inbox.q.Put(eofItem{})
		return nil, ErrClosed
	}
	return v.(Conn), nil
}

// Addr implements Listener: the bound host:port, useful with ":0".
func (l *TCPListener) Addr() string { return l.ln.Addr().String() }

// Close implements Listener; safe from any goroutine, idempotent.
func (l *TCPListener) Close() error {
	l.closeMu.Lock()
	defer l.closeMu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	return l.ln.Close() // accept goroutine injects the eofItem
}

// TCPConn is one TCP connection speaking length-prefixed rpcproto frames.
type TCPConn struct {
	env  runtime.Env
	c    net.Conn
	name string
	rx   *inbox
	opts TCPOptions

	wmu     sync.Mutex
	wcond   *sync.Cond
	wbuf    []byte
	wspare  []byte // last written buffer, recycled so Send stays alloc-free
	werr    error
	wclosed bool

	closeOnce sync.Once
}

// DialTCP connects to a LEED server at addr. Wallclock backend only.
func DialTCP(env runtime.Env, addr string) (*TCPConn, error) {
	return DialTCPOpts(env, addr, TCPOptions{})
}

// DialTCPOpts is DialTCP with connection options.
func DialTCPOpts(env runtime.Env, addr string, opts TCPOptions) (*TCPConn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return newTCPConn(env, c, opts), nil
}

func newTCPConn(env runtime.Env, c net.Conn, opts TCPOptions) *TCPConn {
	tc := &TCPConn{
		env:  env,
		c:    c,
		name: fmt.Sprintf("tcp-%s", c.RemoteAddr()),
		rx:   newInbox(env),
		opts: opts,
	}
	tc.wcond = sync.NewCond(&tc.wmu)
	go tc.readLoop()
	go tc.writeLoop()
	return tc
}

// readLoop reads one frame at a time off the stream and delivers it. The
// length prefix is validated (rpcproto.FrameLen) before the frame buffer is
// sized, so a garbage prefix costs an error, never an allocation. With a
// ReadIdleTimeout configured the deadline is re-armed before every read, so
// a peer that vanishes mid-frame (no FIN, no RST — just silence) bounds this
// goroutine's lifetime instead of leaking it.
func (tc *TCPConn) readLoop() {
	br := bufio.NewReaderSize(tc.c, 64<<10)
	var hdr [4]byte
	for {
		tc.armReadDeadline()
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			tc.readFailed(err)
			return
		}
		total, err := rpcproto.FrameLen(hdr[:])
		if err != nil {
			tc.rx.put(eofItem{err: err})
			tc.c.Close() // poisoned stream: no resync point past a bad prefix
			return
		}
		// Rent the frame from the pool; its eventual Recv caller owns and
		// releases it. Box the slice so the queue hop carries a pointer.
		frame := rpcproto.GetBufLen(total)
		copy(frame, hdr[:])
		tc.armReadDeadline()
		if _, err := io.ReadFull(br, frame[4:]); err != nil {
			rpcproto.PutBuf(frame)
			tc.readFailed(err)
			return
		}
		fb := boxPool.Get().(*frameBox)
		fb.data = frame
		tc.rx.put(fb)
	}
}

func (tc *TCPConn) armReadDeadline() {
	if tc.opts.ReadIdleTimeout > 0 {
		tc.c.SetReadDeadline(time.Now().Add(tc.opts.ReadIdleTimeout))
	}
}

// readFailed delivers the reader's terminal error. A deadline expiry is
// translated to ErrIdleTimeout and — unlike a clean peer FIN, where queued
// responses may still be deliverable — tears the whole connection down:
// the peer is presumed dead, so parking the writer to flush to it would
// just trade a reader leak for a writer leak.
func (tc *TCPConn) readFailed(err error) {
	var nerr net.Error
	if errors.As(err, &nerr) && nerr.Timeout() {
		err = ErrIdleTimeout
		tc.Close()
	}
	tc.rx.put(eofItem{err: err})
}

// writeLoop drains the coalescing buffer: everything Send accumulated since
// the last wakeup goes out in one Write call.
func (tc *TCPConn) writeLoop() {
	tc.wmu.Lock()
	for {
		for len(tc.wbuf) == 0 && !tc.wclosed && tc.werr == nil {
			tc.wcond.Wait()
		}
		if tc.werr != nil || (tc.wclosed && len(tc.wbuf) == 0) {
			break
		}
		buf := tc.wbuf
		tc.wbuf = tc.wspare[:0]
		tc.wspare = nil
		tc.wmu.Unlock()
		if tc.opts.WriteTimeout > 0 {
			tc.c.SetWriteDeadline(time.Now().Add(tc.opts.WriteTimeout))
		}
		_, err := tc.c.Write(buf)
		tc.wmu.Lock()
		if err != nil && tc.werr == nil {
			tc.werr = err
		}
		// Recycle the written buffer (capacity-bounded) so the two buffers
		// ping-pong between Send and the writer without reallocating.
		if cap(buf) <= 1<<20 {
			tc.wspare = buf[:0]
		}
	}
	tc.wmu.Unlock()
	// The writer owns the socket teardown so queued responses flush before
	// FIN; this is what lets a draining server close cleanly.
	tc.c.Close()
}

// Send implements Conn: append to the coalescing buffer and wake the
// writer. Never blocks on the socket.
func (tc *TCPConn) Send(t runtime.Task, frame []byte) error {
	tc.wmu.Lock()
	defer tc.wmu.Unlock()
	if tc.wclosed {
		return ErrClosed
	}
	if tc.werr != nil {
		return tc.werr
	}
	tc.wbuf = append(tc.wbuf, frame...)
	tc.wcond.Signal()
	// The frame is fully copied into the coalescing buffer; this conn's
	// ownership ends here and the buffer goes back to the pool.
	rpcproto.PutBuf(frame)
	return nil
}

// Recv implements Conn. The caller owns the returned frame buffer.
func (tc *TCPConn) Recv(t runtime.Task) ([]byte, error) {
	v := tc.rx.q.Get(t)
	if fb, ok := v.(*frameBox); ok {
		data := fb.data
		fb.data = nil
		boxPool.Put(fb)
		return data, nil
	}
	eof := v.(eofItem)
	tc.rx.q.Put(eofItem{err: eof.err})
	if eof.err != nil && eof.err != io.EOF {
		return nil, eof.err
	}
	return nil, ErrClosed
}

// Close implements Conn: queued outbound frames flush, then the socket
// closes, which unblocks the peer and the local reader. Safe from any
// goroutine; idempotent.
func (tc *TCPConn) Close() error {
	tc.closeOnce.Do(func() {
		tc.wmu.Lock()
		tc.wclosed = true
		tc.wcond.Signal()
		tc.wmu.Unlock()
	})
	return nil
}

func (tc *TCPConn) String() string { return tc.name }

var (
	_ Listener = (*TCPListener)(nil)
	_ Conn     = (*TCPConn)(nil)
)
