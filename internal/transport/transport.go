// Package transport is the seam between LEED's request path and the wire.
// A server accepts Conns from a Listener and exchanges rpcproto frames over
// them; everything above this interface (routing, admission, execution,
// response generation) is identical whether the peer is a goroutine in the
// same process or a remote process on a TCP socket.
//
// Two backends implement the seam:
//
//   - inproc: channel-style queue pairs on the runtime seam. Runs under both
//     the sim kernel and the wallclock backend, and can be routed through a
//     netsim.Fabric so the chaos fault layer (delay, jitter, partitions)
//     applies to served traffic.
//   - tcp: a real net.Listener. Frames are length-prefixed on the stream
//     (rpcproto's frame layer), requests pipeline freely per connection, and
//     responses are coalesced into batched writes.
//
// All Conn and Listener methods that can block take a runtime.Task and
// follow the execution contract, so server code stays backend-agnostic.
// Frames passed through Send/Recv are complete encoded frames, length
// prefix included — exactly what rpcproto.DecodeFrame consumes.
//
// Frame buffers follow rpcproto's single-owner pool contract: Send takes
// ownership of the frame it is handed (the caller must not touch it after
// Send returns), and the caller of Recv owns the returned frame — it should
// rpcproto.PutBuf it once decoded values are no longer needed. The TCP
// backend copies outbound frames into its coalescing write buffer and
// releases them immediately; the inproc backend passes the buffer itself to
// the peer, whose Recv caller releases it. Fabric-routed frames are held by
// the modeled network and simply fall to the GC (the pool is best-effort).
package transport

import (
	"errors"

	"leed/internal/runtime"
)

// ErrClosed reports an operation on a closed Conn or Listener, including a
// Recv that drained the peer's final frame and found the stream ended.
var ErrClosed = errors.New("transport: closed")

// Conn is one bidirectional frame stream between a client and a server.
type Conn interface {
	// Send queues one encoded frame for the peer and returns without
	// waiting for delivery. The frame must be a complete rpcproto frame
	// (length prefix included); the transport may batch queued frames into
	// one wire write. Send must be called in task context. Send takes
	// OWNERSHIP of the frame buffer: the caller must not read, reuse, or
	// release it after Send returns (see the package comment).
	Send(t Task, frame []byte) error
	// Recv blocks until the next frame arrives and returns it. It returns
	// ErrClosed when the connection is closed (locally or by the peer) and
	// no frames remain. The caller owns the returned frame and should
	// release it with rpcproto.PutBuf when done with its bytes.
	Recv(t Task) ([]byte, error)
	// Close tears the connection down; pending Recvs unblock with
	// ErrClosed once queued frames drain. Close must be called in task or
	// scheduler context on the inproc backend; the TCP backend accepts it
	// from any goroutine. Close is idempotent.
	Close() error
	// String names the connection for logs and metric labels.
	String() string
}

// Listener accepts inbound connections.
type Listener interface {
	// Accept blocks until a new connection arrives. It returns ErrClosed
	// once the listener is closed.
	Accept(t Task) (Conn, error)
	// Addr returns the bound address ("inproc" for the in-process backend,
	// host:port for TCP).
	Addr() string
	// Close stops accepting. Established connections are unaffected.
	// Same context rules as Conn.Close. Idempotent.
	Close() error
}

// Task aliases runtime.Task: every blocking transport method runs in task
// context under the execution contract.
type Task = runtime.Task

// eofItem is the in-queue sentinel marking end of stream.
type eofItem struct{ err error }
