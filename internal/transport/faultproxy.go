package transport

import (
	"errors"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"leed/internal/netsim"
	"leed/internal/runtime"
)

// FaultProxy is the real-socket twin of netsim.Faults: a TCP shim that sits
// between clients and one upstream address and injects the same fault
// vocabulary — seeded probabilistic loss, added delay, a bandwidth clamp,
// and partitions — onto live connections. The sim fabric and this proxy are
// driven by the same LinkFaults config, so a chaos drill's fault schedule is
// portable between the two worlds; what differs is how each fault manifests,
// because a byte stream cannot lose one message the way a datagram fabric
// can:
//
//   - Drop: the fabric loses individual messages. TCP would retransmit a
//     lost segment invisibly, so here a "drop" is what sustained loss looks
//     like from the application — the connection dies abruptly (RST via
//     SO_LINGER=0), mid-frame if that is where the dice landed.
//   - Delay: added per forwarded chunk, each direction, exactly like the
//     fabric's per-link delay.
//   - Bandwidth: the fabric serializes at the endpoint's NIC rate; the
//     proxy sleeps each chunk to the configured byte rate.
//   - Partition: the fabric silently discards; the proxy blackholes —
//     established connections stall (no FIN, no RST, bytes simply stop) and
//     new connections are accepted but not bridged until Heal. This is the
//     fault that exercises client deadlines rather than error paths.
//
// The proxy runs on plain goroutines (it exists only for the wallclock/real
// socket world; the sim world has netsim.Faults) and is safe for concurrent
// use. All randomness flows from the seed, so a drill's kill schedule is
// reproducible modulo goroutine interleaving.
type FaultProxy struct {
	ln       net.Listener
	upstream string

	rngMu sync.Mutex
	rng   *rand.Rand

	mu     sync.Mutex
	faults LinkFaults
	pipes  map[*proxyPipe]struct{}
	closed bool

	stats faultProxyCounters
}

// LinkFaults is one link's fault configuration, portable between the proxy
// (real sockets) and netsim.Faults (simulated fabric) via ApplyTo.
type LinkFaults struct {
	// Drop is the per-forwarded-chunk probability that the connection is
	// abruptly killed (see the type comment for why stream "drop" means
	// connection death). 0 disables; 1 kills on first byte.
	Drop float64
	// Delay is added to every forwarded chunk, each direction.
	Delay time.Duration
	// BandwidthBps clamps forwarding to this many bytes/second per
	// connection per direction. 0 = unlimited.
	BandwidthBps int64
	// Partitioned blackholes the link: established connections stall and
	// new ones are accepted but not bridged until healed.
	Partitioned bool
}

// ApplyTo installs the same configuration on a sim fault layer's a<->b link,
// the bridge that keeps a drill's fault schedule portable between the proxy
// and the fabric. BandwidthBps has no per-link knob in the fabric — there it
// is the endpoint NIC rate fixed at AddNode time — so it is not mapped.
func (f LinkFaults) ApplyTo(fl *netsim.Faults, a, b netsim.Addr) {
	fl.SetDropBoth(a, b, f.Drop)
	fl.SetDelay(a, b, runtime.Time(f.Delay))
	fl.SetDelay(b, a, runtime.Time(f.Delay))
	if f.Partitioned {
		fl.Partition(a, b)
	} else {
		fl.Heal(a, b)
	}
}

// FaultProxyStats counts what the proxy did, mirroring netsim.FaultStats.
type FaultProxyStats struct {
	Accepted           int64 // connections accepted from clients
	Bridged            int64 // connections successfully dialed through to upstream
	KilledByDrop       int64 // connections abruptly closed by the drop dice
	Killed             int64 // connections abruptly closed by KillAll
	Chunks             int64 // chunks forwarded (both directions)
	Bytes              int64 // bytes forwarded (both directions)
	DelayedChunks      int64 // chunks that ate the configured delay
	PartitionedStalls  int64 // chunks that stalled against a partition
	PartitionedAccepts int64 // accepts that arrived during a partition
}

type faultProxyCounters struct {
	accepted, bridged, killedByDrop, killed atomic.Int64
	chunks, bytes, delayedChunks            atomic.Int64
	partitionedStalls, partitionedAccepts   atomic.Int64
}

// NewFaultProxy listens on listenAddr (use "127.0.0.1:0" to let the kernel
// pick) and forwards every accepted connection to upstream, subject to the
// currently installed faults (none initially). seed drives the drop dice.
func NewFaultProxy(listenAddr, upstream string, seed int64) (*FaultProxy, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, err
	}
	p := &FaultProxy{
		ln:       ln,
		upstream: upstream,
		rng:      rand.New(rand.NewSource(seed)),
		pipes:    make(map[*proxyPipe]struct{}),
	}
	go p.acceptLoop()
	return p, nil
}

// Addr is the proxy's listen address — what clients should dial.
func (p *FaultProxy) Addr() string { return p.ln.Addr().String() }

// SetFaults replaces the whole fault configuration atomically.
func (p *FaultProxy) SetFaults(f LinkFaults) {
	p.mu.Lock()
	p.faults = f
	p.mu.Unlock()
}

// Faults returns the current configuration.
func (p *FaultProxy) Faults() LinkFaults {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.faults
}

// SetDrop sets only the drop probability.
func (p *FaultProxy) SetDrop(prob float64) {
	p.mu.Lock()
	p.faults.Drop = prob
	p.mu.Unlock()
}

// SetDelay sets only the per-chunk delay.
func (p *FaultProxy) SetDelay(d time.Duration) {
	p.mu.Lock()
	p.faults.Delay = d
	p.mu.Unlock()
}

// SetBandwidth sets only the per-connection byte-rate clamp.
func (p *FaultProxy) SetBandwidth(bps int64) {
	p.mu.Lock()
	p.faults.BandwidthBps = bps
	p.mu.Unlock()
}

// Partition blackholes the link: in-flight traffic stalls (no FIN, no RST)
// and new connections are accepted but not bridged. The twin of
// netsim.Faults.Partition — silent discard, not explicit refusal — so
// clients discover it only through their own deadlines.
func (p *FaultProxy) Partition() {
	p.mu.Lock()
	p.faults.Partitioned = true
	p.mu.Unlock()
}

// Heal clears a partition; stalled traffic resumes.
func (p *FaultProxy) Heal() {
	p.mu.Lock()
	p.faults.Partitioned = false
	p.mu.Unlock()
}

// KillAll abruptly closes (RST) every active bridged connection: the
// real-socket form of netsim's node-down event, and the fault a process
// crash inflicts on its peers.
func (p *FaultProxy) KillAll() {
	p.mu.Lock()
	pipes := make([]*proxyPipe, 0, len(p.pipes))
	for pp := range p.pipes {
		pipes = append(pipes, pp)
	}
	p.mu.Unlock()
	for _, pp := range pipes {
		if pp.kill() {
			p.stats.killed.Add(1)
		}
	}
}

// Stats snapshots the proxy's counters.
func (p *FaultProxy) Stats() FaultProxyStats {
	return FaultProxyStats{
		Accepted:           p.stats.accepted.Load(),
		Bridged:            p.stats.bridged.Load(),
		KilledByDrop:       p.stats.killedByDrop.Load(),
		Killed:             p.stats.killed.Load(),
		Chunks:             p.stats.chunks.Load(),
		Bytes:              p.stats.bytes.Load(),
		DelayedChunks:      p.stats.delayedChunks.Load(),
		PartitionedStalls:  p.stats.partitionedStalls.Load(),
		PartitionedAccepts: p.stats.partitionedAccepts.Load(),
	}
}

// Close stops accepting and kills every active connection.
func (p *FaultProxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	err := p.ln.Close()
	p.KillAll()
	return err
}

func (p *FaultProxy) isClosed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closed
}

func (p *FaultProxy) chance(prob float64) bool {
	if prob <= 0 {
		return false
	}
	p.rngMu.Lock()
	defer p.rngMu.Unlock()
	return p.rng.Float64() < prob
}

func (p *FaultProxy) acceptLoop() {
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.stats.accepted.Add(1)
		go p.bridge(c)
	}
}

// bridge dials upstream for one accepted client connection and starts the
// two pump directions. During a partition the accepted connection is held
// open but un-bridged — the SYN "crossed the wire" before the partition
// could drop the stream's bytes, which is as close as TCP gets to the
// fabric's drop-the-message semantics.
func (p *FaultProxy) bridge(client net.Conn) {
	if p.Faults().Partitioned {
		p.stats.partitionedAccepts.Add(1)
		for p.Faults().Partitioned {
			if p.isClosed() {
				client.Close()
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	up, err := net.DialTimeout("tcp", p.upstream, 2*time.Second)
	if err != nil {
		client.Close()
		return
	}
	pp := &proxyPipe{client: client, upstream: up}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		pp.kill()
		return
	}
	p.pipes[pp] = struct{}{}
	p.mu.Unlock()
	p.stats.bridged.Add(1)

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); p.pump(pp, client, up) }()
	go func() { defer wg.Done(); p.pump(pp, up, client) }()
	wg.Wait()
	p.mu.Lock()
	delete(p.pipes, pp)
	p.mu.Unlock()
}

// pump forwards src -> dst chunk by chunk, consulting the fault config
// before each forward, like the fabric consults Faults.apply per message.
func (p *FaultProxy) pump(pp *proxyPipe, src, dst net.Conn) {
	buf := make([]byte, 16<<10)
	for {
		n, rerr := src.Read(buf)
		if n > 0 {
			f := p.Faults()
			if p.chance(f.Drop) {
				if pp.kill() {
					p.stats.killedByDrop.Add(1)
				}
				return
			}
			if f.Delay > 0 {
				p.stats.delayedChunks.Add(1)
				time.Sleep(f.Delay)
			}
			if f.BandwidthBps > 0 {
				time.Sleep(time.Duration(int64(n) * int64(time.Second) / f.BandwidthBps))
			}
			if p.Faults().Partitioned {
				p.stats.partitionedStalls.Add(1)
				for p.Faults().Partitioned {
					if pp.killed() || p.isClosed() {
						pp.kill()
						return
					}
					time.Sleep(2 * time.Millisecond)
				}
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				pp.kill()
				return
			}
			p.stats.chunks.Add(1)
			p.stats.bytes.Add(int64(n))
		}
		if rerr != nil {
			// Propagate a clean FIN as a clean FIN so graceful shutdown
			// still looks graceful through the proxy; errors tear down.
			if tcp, ok := dst.(*net.TCPConn); ok && errors.Is(rerr, io.EOF) {
				tcp.CloseWrite()
			} else {
				pp.shutdown()
			}
			return
		}
	}
}

// proxyPipe is one bridged client<->upstream connection pair.
type proxyPipe struct {
	client   net.Conn
	upstream net.Conn
	mu       sync.Mutex
	dead     bool
}

func (pp *proxyPipe) killed() bool {
	pp.mu.Lock()
	defer pp.mu.Unlock()
	return pp.dead
}

// kill abruptly closes both sides with SO_LINGER=0 so the peers see RST,
// not FIN — the "connection vanished" failure mode. Reports whether this
// call was the one that did it.
func (pp *proxyPipe) kill() bool {
	pp.mu.Lock()
	if pp.dead {
		pp.mu.Unlock()
		return false
	}
	pp.dead = true
	pp.mu.Unlock()
	for _, c := range []net.Conn{pp.client, pp.upstream} {
		if tcp, ok := c.(*net.TCPConn); ok {
			tcp.SetLinger(0)
		}
		c.Close()
	}
	return true
}

// shutdown closes both sides normally (FIN) for graceful teardown.
func (pp *proxyPipe) shutdown() {
	pp.mu.Lock()
	if pp.dead {
		pp.mu.Unlock()
		return
	}
	pp.dead = true
	pp.mu.Unlock()
	pp.client.Close()
	pp.upstream.Close()
}
