package transport

import (
	"fmt"
	"sync/atomic"
	"testing"

	"leed/internal/netsim"
	"leed/internal/rpcproto"
	"leed/internal/runtime"
	"leed/internal/runtime/wallclock"
	"leed/internal/sim"
)

// echoServe accepts connections until the listener closes, echoing every
// request frame back as a response frame with the same ID and the request
// key as the value.
func echoServe(env runtime.Env, l Listener) {
	env.Spawn("accept", func(t runtime.Task) {
		for {
			conn, err := l.Accept(t)
			if err != nil {
				return
			}
			env.Spawn("serve", func(t runtime.Task) {
				for {
					frame, err := conn.Recv(t)
					if err != nil {
						return
					}
					kind, payload, _, err := rpcproto.DecodeFrame(frame)
					if err != nil || kind != rpcproto.FrameRequest {
						conn.Send(t, rpcproto.AppendErrorFrame(nil, &rpcproto.ErrorFrame{
							Code: rpcproto.StatusErr, Msg: "bad frame"}))
						continue
					}
					req, _, err := rpcproto.DecodeRequest(payload)
					if err != nil {
						continue
					}
					conn.Send(t, rpcproto.AppendResponseFrame(nil, &rpcproto.Response{
						ID: req.ID, Status: rpcproto.StatusOK, Value: req.Key}))
				}
			})
		}
	})
}

// driveEcho sends n pipelined requests on the conn, then matches all n
// responses by ID and verifies the echoed values.
func driveEcho(t *testing.T, env runtime.Env, conn Conn, n int, done *atomic.Int64) {
	env.Spawn("client", func(p runtime.Task) {
		for i := 0; i < n; i++ {
			key := []byte(fmt.Sprintf("key-%04d", i))
			frame := rpcproto.AppendRequestFrame(nil, &rpcproto.Request{
				ID: uint64(i + 1), Op: rpcproto.OpGet, Key: key})
			if err := conn.Send(p, frame); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
		seen := make(map[uint64]bool)
		for len(seen) < n {
			frame, err := conn.Recv(p)
			if err != nil {
				t.Errorf("recv after %d responses: %v", len(seen), err)
				return
			}
			kind, payload, _, err := rpcproto.DecodeFrame(frame)
			if err != nil || kind != rpcproto.FrameResponse {
				t.Errorf("bad response frame: kind=%v err=%v", kind, err)
				return
			}
			resp, _, err := rpcproto.DecodeResponse(payload)
			if err != nil {
				t.Errorf("decode response: %v", err)
				return
			}
			if seen[resp.ID] {
				t.Errorf("duplicate response id %d", resp.ID)
				return
			}
			seen[resp.ID] = true
			want := fmt.Sprintf("key-%04d", resp.ID-1)
			if string(resp.Value) != want {
				t.Errorf("response %d: value %q, want %q", resp.ID, resp.Value, want)
				return
			}
		}
		done.Add(int64(len(seen)))
		conn.Close()
	})
}

func TestInprocEchoSim(t *testing.T) {
	k := sim.New()
	defer k.Close()
	n := NewInproc(k, InprocOptions{})
	echoServe(k, n)
	var done atomic.Int64
	k.Go("dial", func(p *sim.Proc) {
		conn, err := n.Dial(p)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		driveEcho(t, k, conn, 50, &done)
	})
	k.Go("closer", func(p *sim.Proc) {
		p.Sleep(runtime.Second) // after the workload quiesces
		n.Close()
	})
	k.Run()
	if done.Load() != 50 {
		t.Fatalf("completed %d of 50", done.Load())
	}
}

func TestInprocEchoWallclock(t *testing.T) {
	env := wallclock.New()
	n := NewInproc(env, InprocOptions{})
	echoServe(env, n)
	var done atomic.Int64
	env.Spawn("dial", func(p runtime.Task) {
		conn, err := n.Dial(p)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		driveEcho(t, env, conn, 50, &done)
		// Unblock the accept task once the client is finished so Wait can
		// drain; driveEcho spawned the client task, so delay the close
		// until it reports completion.
		env.Spawn("closer", func(q runtime.Task) {
			for done.Load() < 50 {
				q.Sleep(runtime.Millisecond)
			}
			n.Close()
		})
	})
	env.Wait()
	if done.Load() != 50 {
		t.Fatalf("completed %d of 50", done.Load())
	}
}

// TestInprocFabric routes the inproc transport through a netsim fabric with
// an installed delay fault: frames pay modeled propagation plus the fault's
// extra delay, and the transcript still completes exactly — the transport
// seam composes with the chaos layer.
func TestInprocFabric(t *testing.T) {
	k := sim.New()
	defer k.Close()
	fab := netsim.New(k, netsim.Config{})
	fl := fab.InstallFaults(7)
	fl.SetDelay(1, 2, 200*runtime.Microsecond)
	fl.SetDelay(2, 1, 200*runtime.Microsecond)
	n := NewInproc(k, InprocOptions{Fabric: fab, ClientAddr: 1, ServerAddr: 2})
	echoServe(k, n)
	var done atomic.Int64
	start := k.Now()
	k.Go("dial", func(p *sim.Proc) {
		conn, err := n.Dial(p)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		driveEcho(t, k, conn, 30, &done)
	})
	k.Go("closer", func(p *sim.Proc) {
		p.Sleep(10 * runtime.Second)
		n.Close()
	})
	k.Run()
	if done.Load() != 30 {
		t.Fatalf("completed %d of 30", done.Load())
	}
	if k.Now()-start < 400*runtime.Microsecond {
		t.Fatalf("fabric delays not applied: run took %v", k.Now()-start)
	}
}

func TestTCPEcho(t *testing.T) {
	env := wallclock.New()
	l, err := ListenTCP(env, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	echoServe(env, l)
	var done atomic.Int64
	env.Spawn("dial", func(p runtime.Task) {
		conn, err := DialTCP(env, l.Addr())
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		// 200 pipelined sends stress the write-coalescing path: most of
		// them land in the writer's buffer while a write syscall is in
		// flight and go out in merged batches.
		driveEcho(t, env, conn, 200, &done)
		env.Spawn("closer", func(q runtime.Task) {
			for done.Load() < 200 {
				q.Sleep(runtime.Millisecond)
			}
			l.Close()
		})
	})
	env.Wait()
	if done.Load() != 200 {
		t.Fatalf("completed %d of 200", done.Load())
	}
}

func TestTCPPeerClose(t *testing.T) {
	env := wallclock.New()
	l, err := ListenTCP(env, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	result := make(chan error, 1)
	env.Spawn("server", func(p runtime.Task) {
		conn, err := l.Accept(p)
		if err != nil {
			result <- fmt.Errorf("accept: %v", err)
			return
		}
		_, err = conn.Recv(p) // blocks until the client closes
		result <- err
		l.Close()
	})
	env.Spawn("client", func(p runtime.Task) {
		conn, err := DialTCP(env, l.Addr())
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		conn.Close()
	})
	env.Wait()
	if err := <-result; err != ErrClosed {
		t.Fatalf("server Recv after peer close: got %v, want ErrClosed", err)
	}
}

func TestTCPListenerClosedAccept(t *testing.T) {
	env := wallclock.New()
	l, err := ListenTCP(env, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	l.Close()
	l.Close() // idempotent
	env.Spawn("accept", func(p runtime.Task) {
		if _, err := l.Accept(p); err != ErrClosed {
			t.Errorf("accept on closed listener: got %v, want ErrClosed", err)
		}
	})
	env.Wait()
}

// TestTCPGarbagePrefix writes a hostile length prefix at a raw socket and
// checks the server side surfaces an error instead of allocating or
// hanging.
func TestTCPGarbagePrefix(t *testing.T) {
	env := wallclock.New()
	l, err := ListenTCP(env, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	result := make(chan error, 1)
	env.Spawn("server", func(p runtime.Task) {
		conn, err := l.Accept(p)
		if err != nil {
			result <- fmt.Errorf("accept: %v", err)
			return
		}
		_, err = conn.Recv(p)
		result <- err
		l.Close()
	})
	env.Spawn("client", func(p runtime.Task) {
		conn, err := DialTCP(env, l.Addr())
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		conn.Send(p, []byte{0xFF, 0xFF, 0xFF, 0xFF, 0x01, 0x02}) // 4GB claimed length
	})
	env.Wait()
	if err := <-result; err != rpcproto.ErrFrameTooLarge {
		t.Fatalf("server Recv of garbage prefix: got %v, want ErrFrameTooLarge", err)
	}
}
