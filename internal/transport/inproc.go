package transport

import (
	"fmt"
	"sync"

	"leed/internal/netsim"
	"leed/internal/runtime"
)

// frameBox wraps a frame for the trip through a runtime.Queue. Boxing a
// []byte into an `any` queue slot copies the three-word slice header to the
// heap — one allocation per frame — while boxing a pointer is free. The
// boxes are pooled; Recv unwraps and returns the box immediately, so each
// box lives only for the queue hop.
type frameBox struct{ data []byte }

var boxPool = sync.Pool{New: func() any { return new(frameBox) }}

// Inproc is the in-process transport backend: a Listener whose Conns are
// queue pairs on the runtime seam. It runs under both runtime backends (the
// queues come from env.MakeQueue), and can optionally be routed through a
// netsim.Fabric so every frame crosses the modeled network — paying NIC
// serialization and propagation, and subject to the chaos fault layer's
// delay and partition schedules. Construct with NewInproc; dial with Dial.
type Inproc struct {
	env  runtime.Env
	name string

	acceptQ  runtime.Queue
	closed   bool
	nextConn uint64

	// Fabric routing (nil fab means direct queue pairs). The listener owns
	// the server endpoint; each net has one client endpoint shared by its
	// dialed conns. One pump task per endpoint demultiplexes arriving
	// envelopes to per-conn receive queues by connection id.
	fab          *netsim.Fabric
	srvEP, cliEP *netsim.Endpoint
	srvConns     map[uint64]*inprocConn
	cliConns     map[uint64]*inprocConn
}

// InprocOptions configures an Inproc transport.
type InprocOptions struct {
	// Name labels the listener's Addr. Default "inproc".
	Name string
	// Fabric, when set, routes every frame through the modeled network
	// between ClientAddr and ServerAddr. Both endpoints are registered by
	// NewInproc with NICBitsPerS. The fault schedule installed on the
	// fabric (delays, jitter, partitions) then applies to served traffic.
	// Lossy fault modes are for protocols with retries; the plain KV
	// request path assumes the fabric delivers (possibly late).
	Fabric                 *netsim.Fabric
	ClientAddr, ServerAddr netsim.Addr
	// NICBitsPerS is the modeled NIC speed for both endpoints when Fabric
	// is set. Default 100Gb/s.
	NICBitsPerS int64
}

// envelope is the payload frames travel in when fabric-routed.
type envelope struct {
	conn uint64
	kind uint8 // envSyn, envData, envFin
	data []byte
}

const (
	envSyn = iota + 1
	envData
	envFin
	envStop // pump shutdown sentinel, injected locally
)

// NewInproc creates an in-process transport. The returned value is both the
// Listener (server side) and the dialer (client side).
func NewInproc(env runtime.Env, opts InprocOptions) *Inproc {
	if opts.Name == "" {
		opts.Name = "inproc"
	}
	n := &Inproc{
		env:     env,
		name:    opts.Name,
		acceptQ: env.MakeQueue(),
	}
	if opts.Fabric != nil {
		if opts.NICBitsPerS == 0 {
			opts.NICBitsPerS = 100_000_000_000
		}
		n.fab = opts.Fabric
		n.srvEP = opts.Fabric.AddNode(opts.ServerAddr, opts.NICBitsPerS)
		n.cliEP = opts.Fabric.AddNode(opts.ClientAddr, opts.NICBitsPerS)
		n.srvConns = make(map[uint64]*inprocConn)
		n.cliConns = make(map[uint64]*inprocConn)
		env.Spawn(opts.Name+"-srv-pump", func(t runtime.Task) { n.pump(t, n.srvEP, true) })
		env.Spawn(opts.Name+"-cli-pump", func(t runtime.Task) { n.pump(t, n.cliEP, false) })
	}
	return n
}

// pump drains one fabric endpoint's RX queue, demultiplexing envelopes to
// per-connection receive queues. SYN envelopes arriving at the server side
// materialize the accepting half of a new connection.
func (n *Inproc) pump(t runtime.Task, ep *netsim.Endpoint, server bool) {
	conns := n.cliConns
	if server {
		conns = n.srvConns
	}
	for {
		m := ep.RX().Get(t).(*netsim.Message)
		env, ok := m.Payload.(envelope)
		if !ok {
			continue // foreign traffic on a shared fabric; not ours
		}
		switch env.kind {
		case envStop:
			return
		case envSyn:
			if !server || n.closed {
				continue
			}
			c := &inprocConn{net: n, id: env.conn, server: true, rxq: n.env.MakeQueue(),
				name: fmt.Sprintf("%s-srv-%d", n.name, env.conn)}
			conns[env.conn] = c
			n.acceptQ.Put(c)
		case envData:
			if c := conns[env.conn]; c != nil {
				c.rxq.Put(env.data)
			}
		case envFin:
			if c := conns[env.conn]; c != nil {
				delete(conns, env.conn)
				c.rxq.Put(eofItem{})
			}
		}
	}
}

// Dial opens a client connection to the listener. With a fabric, the SYN
// crosses the modeled network and Accept observes it one propagation later;
// without one, the accepting half is visible immediately.
func (n *Inproc) Dial(t runtime.Task) (Conn, error) {
	if n.closed {
		return nil, ErrClosed
	}
	n.nextConn++
	id := n.nextConn
	cli := &inprocConn{net: n, id: id, rxq: n.env.MakeQueue(),
		name: fmt.Sprintf("%s-cli-%d", n.name, id)}
	if n.fab != nil {
		n.cliConns[id] = cli
		n.cliEP.Send(n.srvEP.Addr(), 16, envelope{conn: id, kind: envSyn})
		return cli, nil
	}
	srv := &inprocConn{net: n, id: id, server: true, rxq: n.env.MakeQueue(),
		name: fmt.Sprintf("%s-srv-%d", n.name, id)}
	cli.peer, srv.peer = srv, cli
	n.acceptQ.Put(srv)
	return cli, nil
}

// Accept implements Listener. After Close, Accept keeps returning the
// connections that were queued before the close — the acceptor must see
// (and close) them, or their dialed halves would hang forever — and only
// then reports ErrClosed.
func (n *Inproc) Accept(t runtime.Task) (Conn, error) {
	v := n.acceptQ.Get(t)
	if _, eof := v.(eofItem); eof {
		n.acceptQ.Put(eofItem{}) // keep later Accepts unblocked too
		return nil, ErrClosed
	}
	return v.(Conn), nil
}

// Addr implements Listener.
func (n *Inproc) Addr() string { return n.name }

// Close stops accepting and, when fabric-routed, winds down the pump tasks.
// Established conns are unaffected (close them individually). Must run in
// task or scheduler context; idempotent.
func (n *Inproc) Close() error {
	if n.closed {
		return nil
	}
	n.closed = true
	n.acceptQ.Put(eofItem{})
	if n.fab != nil {
		// Local injection, not a fabric send: the pumps must die even if
		// the fabric is partitioned.
		n.srvEP.RX().Put(&netsim.Message{Payload: envelope{kind: envStop}})
		n.cliEP.RX().Put(&netsim.Message{Payload: envelope{kind: envStop}})
	}
	return nil
}

// inprocConn is one half of an in-process connection.
type inprocConn struct {
	net    *Inproc
	id     uint64
	server bool
	name   string
	rxq    runtime.Queue
	peer   *inprocConn // direct mode only; nil when fabric-routed
	closed bool
}

// Send implements Conn. Direct mode delivers into the peer's receive queue
// in the same instant (the queue itself is the wire); fabric mode pays the
// modeled network.
func (c *inprocConn) Send(t runtime.Task, frame []byte) error {
	if c.closed {
		return ErrClosed
	}
	if c.net.fab != nil {
		from, to := c.net.cliEP, c.net.srvEP
		if c.server {
			from, to = to, from
		}
		from.Send(to.Addr(), int64(len(frame)), envelope{conn: c.id, kind: envData, data: frame})
		return nil
	}
	if c.peer.closed {
		return ErrClosed
	}
	fb := boxPool.Get().(*frameBox)
	fb.data = frame
	c.peer.rxq.Put(fb)
	return nil
}

// Recv implements Conn.
func (c *inprocConn) Recv(t runtime.Task) ([]byte, error) {
	if c.closed {
		return nil, ErrClosed
	}
	v := c.rxq.Get(t)
	switch v := v.(type) {
	case *frameBox:
		data := v.data
		v.data = nil
		boxPool.Put(v)
		return data, nil
	case []byte: // fabric-routed envelope payload
		return v, nil
	}
	c.rxq.Put(eofItem{}) // later Recvs see the eof too
	return nil, ErrClosed
}

// Close implements Conn: the local side stops immediately; the peer's Recv
// drains queued frames, then reports ErrClosed. Must run in task or
// scheduler context; idempotent.
func (c *inprocConn) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	c.rxq.Put(eofItem{}) // unblock a local Recv parked on the queue
	if c.net.fab != nil {
		from, to := c.net.cliEP, c.net.srvEP
		if c.server {
			from, to = to, from
		}
		from.Send(to.Addr(), 16, envelope{conn: c.id, kind: envFin})
		return nil
	}
	if !c.peer.closed {
		c.peer.rxq.Put(eofItem{})
	}
	return nil
}

func (c *inprocConn) String() string { return c.name }

var (
	_ Listener = (*Inproc)(nil)
	_ Conn     = (*inprocConn)(nil)
)
