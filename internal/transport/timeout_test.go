package transport

import (
	"errors"
	"net"
	goruntime "runtime"
	"testing"
	"time"

	"leed/internal/rpcproto"
	"leed/internal/runtime"
	"leed/internal/runtime/wallclock"
)

// waitGoroutines polls until the process goroutine count falls back to the
// limit, dumping stacks on failure — the leak audit for connection teardown.
func waitGoroutines(t *testing.T, limit int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if goruntime.NumGoroutine() <= limit {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	n := goruntime.Stack(buf, true)
	t.Fatalf("goroutines leaked: %d > %d\n%s", goruntime.NumGoroutine(), limit, buf[:n])
}

// TestTCPReadIdleTimeoutMidFrame pins the reader-leak fix: a peer that sends
// a frame header and then goes silent (no FIN, no RST — the kill -9 shape)
// used to park the reader goroutine in ReadFull forever. With a
// ReadIdleTimeout the reader gives up, Recv surfaces ErrIdleTimeout, and
// both connection goroutines exit.
func TestTCPReadIdleTimeoutMidFrame(t *testing.T) {
	rawLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("raw listen: %v", err)
	}
	defer rawLn.Close()
	peerDone := make(chan struct{})
	go func() {
		defer close(peerDone)
		c, err := rawLn.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		// Announce a 64-byte frame, deliver only the kind byte, go silent.
		c.Write([]byte{64, 0, 0, 0, byte(rpcproto.FrameRequest)})
		// Hold the socket open until the client's reader times out.
		buf := make([]byte, 1)
		c.Read(buf) // returns when the client tears down
	}()

	before := goruntime.NumGoroutine()
	env := wallclock.New()
	result := make(chan error, 1)
	env.Spawn("client", func(p runtime.Task) {
		conn, err := DialTCPOpts(env, rawLn.Addr().String(),
			TCPOptions{ReadIdleTimeout: 50 * time.Millisecond})
		if err != nil {
			result <- err
			return
		}
		_, err = conn.Recv(p)
		result <- err
	})
	env.Wait()
	if err := <-result; !errors.Is(err, ErrIdleTimeout) {
		t.Fatalf("Recv from silent peer: got %v, want ErrIdleTimeout", err)
	}
	<-peerDone
	// +1 slack: wallclock timer goroutines from After(0) may still be parked.
	waitGoroutines(t, before+1)
}

// TestTCPNoTimeoutByDefault: the zero-options path must not impose any
// deadline — an idle but healthy connection stays usable indefinitely
// (bounded here by a round trip after a quiet period).
func TestTCPNoTimeoutByDefault(t *testing.T) {
	env := wallclock.New()
	l, err := ListenTCP(env, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	echoServe(env, l)
	result := make(chan error, 1)
	env.Spawn("client", func(p runtime.Task) {
		conn, err := DialTCP(env, l.Addr())
		if err != nil {
			result <- err
			return
		}
		p.Sleep(120 * runtime.Millisecond) // longer than the other test's timeout
		frame := rpcproto.AppendRequestFrame(nil, &rpcproto.Request{
			ID: 1, Op: rpcproto.OpGet, Key: []byte("k")})
		if err := conn.Send(p, frame); err != nil {
			result <- err
			return
		}
		_, err = conn.Recv(p)
		result <- err
		conn.Close()
		l.Close()
	})
	env.Wait()
	if err := <-result; err != nil {
		t.Fatalf("round trip after idle period: %v", err)
	}
}
