package power

import (
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"leed/internal/obs"
)

// ProcessMeter is the wallclock counterpart of Meter: instead of integrating
// component activity over virtual time, it meters one real OS process. The
// energy model has three terms, mirroring the sim meter's idle + dynamic
// split:
//
//	joules = IdleW·wall_seconds            (baseline package draw)
//	       + CPUW·cpu_seconds              (per busy core-second, from
//	                                        /proc/self/stat utime+stime)
//	       + ReadJ·reads + WriteJ·writes   (per device op, from the process's
//	                                        own leed_device_*_total counters)
//
// A sampling goroutine folds the deltas into monotonic registry counters —
// leed_power_joules_total (and a millijoule twin for requests-per-Joule math
// at short windows), per-component breakdowns, CPU busy time — plus average-
// power gauges, so every node's energy is scrapeable and the fleet merge
// sums it cluster-wide. On platforms without /proc the CPU term reads zero
// and the meter degrades to idle + device energy rather than failing.
type ProcessMeter struct {
	cfg ProcessConfig
	reg *obs.Registry

	joules  *obs.Counter
	mjoules *obs.Counter
	cpuMS   *obs.Counter
	avgW    *obs.Gauge
	mW      *obs.Gauge
	compMJ  map[string]*obs.Counter

	mu       sync.Mutex
	start    time.Time
	lastWall time.Time
	lastCPU  float64
	lastRd   int64
	lastWr   int64
	termMJ   map[string]float64 // accumulated millijoules per component
	cpuSec   float64
	pubMJ    int64
	pubJ     int64
	pubCPUMS int64
	pubComp  map[string]int64

	done chan struct{}
	wg   sync.WaitGroup
}

// ProcessConfig parameterizes the energy model. Zero values take the
// defaults below — wimpy-core SmartNIC SoC numbers in the spirit of the
// paper's per-platform power budgets, deliberately conservative: the point
// is comparable requests-per-Joule across runs, not absolute calibration.
type ProcessConfig struct {
	IdleW    float64       // baseline draw, watts (default 2.0)
	CPUW     float64       // extra draw per busy core-second, watts (default 3.5)
	ReadJ    float64       // energy per device read op, joules (default 35e-6)
	WriteJ   float64       // energy per device write op, joules (default 60e-6)
	Interval time.Duration // sampling period (default 500ms; < 0 disables the loop)

	// ReadCPU overrides the CPU-time source (tests). nil reads
	// /proc/self/stat.
	ReadCPU func() (seconds float64, ok bool)
}

func (c *ProcessConfig) fill() {
	if c.IdleW == 0 {
		c.IdleW = 2.0
	}
	if c.CPUW == 0 {
		c.CPUW = 3.5
	}
	if c.ReadJ == 0 {
		c.ReadJ = 35e-6
	}
	if c.WriteJ == 0 {
		c.WriteJ = 60e-6
	}
	if c.Interval == 0 {
		c.Interval = 500 * time.Millisecond
	}
	if c.ReadCPU == nil {
		c.ReadCPU = readSelfCPUSeconds
	}
}

// NewProcessMeter starts metering the calling process into reg. Unless
// cfg.Interval is negative it spawns a raw sampling goroutine (this runs on
// the wallclock backend; it must not enter the Env task contract) — Close
// stops it, taking one final sample.
func NewProcessMeter(reg *obs.Registry, cfg ProcessConfig) *ProcessMeter {
	cfg.fill()
	now := time.Now()
	m := &ProcessMeter{
		cfg:      cfg,
		reg:      reg,
		joules:   reg.Counter("leed_power_joules_total"),
		mjoules:  reg.Counter("leed_power_millijoules_total"),
		cpuMS:    reg.Counter("leed_power_cpu_busy_ms_total"),
		avgW:     reg.Gauge("leed_power_avg_watts"),
		mW:       reg.Gauge("leed_power_milliwatts"),
		compMJ:   map[string]*obs.Counter{},
		start:    now,
		lastWall: now,
		termMJ:   map[string]float64{},
		pubComp:  map[string]int64{},
		done:     make(chan struct{}),
	}
	for _, comp := range []string{"idle", "cpu", "flash_read", "flash_write"} {
		m.compMJ[comp] = reg.Counter("leed_power_component_millijoules_total", "comp", comp)
	}
	if cpu, ok := cfg.ReadCPU(); ok {
		m.lastCPU = cpu
	}
	m.lastRd, m.lastWr = m.deviceOps()
	if cfg.Interval > 0 {
		m.wg.Add(1)
		go m.loop()
	}
	return m
}

func (m *ProcessMeter) loop() {
	defer m.wg.Done()
	t := time.NewTicker(m.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			m.Sample()
		case <-m.done:
			return
		}
	}
}

// Close stops the sampling loop after one final sample.
func (m *ProcessMeter) Close() {
	if m == nil {
		return
	}
	m.mu.Lock()
	select {
	case <-m.done:
		m.mu.Unlock()
		return
	default:
		close(m.done)
	}
	m.mu.Unlock()
	m.wg.Wait()
	m.Sample()
}

// deviceOps sums the process's device op counters (any label set).
func (m *ProcessMeter) deviceOps() (reads, writes int64) {
	raw := m.reg.Raw()
	for key, v := range raw.Counters {
		switch {
		case strings.HasPrefix(key, "leed_device_reads_total"):
			reads += v
		case strings.HasPrefix(key, "leed_device_writes_total"):
			writes += v
		}
	}
	return reads, writes
}

// Sample takes one accounting step: advance every energy term by the time
// and ops elapsed since the last step and publish the new totals. Safe to
// call concurrently with the loop; exposed so tests (and shutdown) can force
// a deterministic step.
func (m *ProcessMeter) Sample() {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()

	now := time.Now()
	wall := now.Sub(m.lastWall).Seconds()
	if wall < 0 {
		wall = 0
	}
	m.lastWall = now

	var dcpu float64
	if cpu, ok := m.cfg.ReadCPU(); ok {
		dcpu = cpu - m.lastCPU
		if dcpu < 0 {
			dcpu = 0
		}
		m.lastCPU = cpu
	}
	reads, writes := m.deviceOps()
	dr, dw := reads-m.lastRd, writes-m.lastWr
	if dr < 0 {
		dr = 0
	}
	if dw < 0 {
		dw = 0
	}
	m.lastRd, m.lastWr = reads, writes

	m.termMJ["idle"] += m.cfg.IdleW * wall * 1e3
	m.termMJ["cpu"] += m.cfg.CPUW * dcpu * 1e3
	m.termMJ["flash_read"] += m.cfg.ReadJ * float64(dr) * 1e3
	m.termMJ["flash_write"] += m.cfg.WriteJ * float64(dw) * 1e3
	m.cpuSec += dcpu

	var totalMJ float64
	for comp, mj := range m.termMJ {
		totalMJ += mj
		pub := int64(mj)
		m.compMJ[comp].Add(pub - m.pubComp[comp])
		m.pubComp[comp] = pub
	}
	pubStep(m.mjoules, &m.pubMJ, int64(totalMJ))
	pubStep(m.joules, &m.pubJ, int64(totalMJ/1e3))
	pubStep(m.cpuMS, &m.pubCPUMS, int64(m.cpuSec*1e3))

	if elapsed := now.Sub(m.start).Seconds(); elapsed > 0 {
		mw := totalMJ / elapsed // mJ/s = mW
		m.mW.Set(int64(mw))
		m.avgW.Set(int64(mw/1e3 + 0.5))
	}
}

// pubStep advances a monotonic counter to a new published total.
func pubStep(c *obs.Counter, last *int64, total int64) {
	if total < *last {
		return
	}
	c.Add(total - *last)
	*last = total
}

// readSelfCPUSeconds returns the process's cumulative user+system CPU time
// from /proc/self/stat. The comm field may contain spaces and parentheses,
// so parsing anchors on the LAST ')': utime and stime are the 12th and 13th
// fields after it. Returns ok=false on platforms without /proc.
func readSelfCPUSeconds() (float64, bool) {
	b, err := os.ReadFile("/proc/self/stat")
	if err != nil {
		return 0, false
	}
	s := string(b)
	i := strings.LastIndexByte(s, ')')
	if i < 0 || i+2 >= len(s) {
		return 0, false
	}
	fields := strings.Fields(s[i+2:])
	if len(fields) < 13 {
		return 0, false
	}
	ut, err1 := strconv.ParseFloat(fields[11], 64)
	st, err2 := strconv.ParseFloat(fields[12], 64)
	if err1 != nil || err2 != nil {
		return 0, false
	}
	// Linux exposes these in clock ticks; sysconf(_SC_CLK_TCK) is 100 on
	// every supported target and not worth a cgo dependency to confirm.
	const clkTck = 100
	return (ut + st) / clkTck, true
}
