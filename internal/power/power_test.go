package power

import (
	"math"
	"testing"

	"leed/internal/sim"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 || math.Abs(a-b) < 1e-6*math.Abs(b) }

func TestIdleEnergy(t *testing.T) {
	k := sim.New()
	defer k.Close()
	m := NewMeter(k, 45.0)
	k.At(2*sim.Second, func() {})
	k.Run()
	if e := m.Energy(); !almost(e, 90.0) {
		t.Fatalf("energy = %v J, want 90", e)
	}
	if w := m.AvgWatts(); !almost(w, 45.0) {
		t.Fatalf("avg = %v W, want 45", w)
	}
}

func TestComponentBusyEnergy(t *testing.T) {
	k := sim.New()
	defer k.Close()
	m := NewMeter(k, 10.0)
	c := m.NewComponent("core0", 2.0)
	k.Go("w", func(p *sim.Proc) {
		p.Sleep(1 * sim.Second)
		c.Begin()
		p.Sleep(1 * sim.Second)
		c.End()
		p.Sleep(2 * sim.Second)
	})
	k.Run()
	// 4s idle at 10W + 1s busy at 2W
	if e := m.Energy(); !almost(e, 42.0) {
		t.Fatalf("energy = %v J, want 42", e)
	}
	if b := c.BusySeconds(); !almost(b, 1.0) {
		t.Fatalf("busy = %v s, want 1", b)
	}
}

func TestComponentNesting(t *testing.T) {
	k := sim.New()
	defer k.Close()
	m := NewMeter(k, 0)
	c := m.NewComponent("x", 1.0)
	k.Go("w", func(p *sim.Proc) {
		c.Begin()
		p.Sleep(sim.Second)
		c.Begin() // nested: still 1W, not 2W
		p.Sleep(sim.Second)
		c.End()
		p.Sleep(sim.Second)
		c.End()
	})
	k.Run()
	if e := m.Energy(); !almost(e, 3.0) {
		t.Fatalf("energy = %v J, want 3", e)
	}
}

func TestEndWithoutBeginPanics(t *testing.T) {
	k := sim.New()
	defer k.Close()
	m := NewMeter(k, 0)
	c := m.NewComponent("x", 1.0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	c.End()
}

func TestPinActive(t *testing.T) {
	k := sim.New()
	defer k.Close()
	m := NewMeter(k, 45.0)
	for i := 0; i < 8; i++ {
		m.NewComponent("poll", 7.5/8).PinActive()
	}
	k.At(sim.Second, func() {})
	k.Run()
	// Paper's measurement: 45W idle + 7.5W with eight polled cores.
	if w := m.AvgWatts(); !almost(w, 52.5) {
		t.Fatalf("avg = %v W, want 52.5", w)
	}
}

func TestSnapshotWindow(t *testing.T) {
	k := sim.New()
	defer k.Close()
	m := NewMeter(k, 5.0)
	c := m.NewComponent("x", 5.0)
	var j, s float64
	k.Go("w", func(p *sim.Proc) {
		p.Sleep(sim.Second) // outside window
		snap := m.Snap()
		c.Begin()
		p.Sleep(2 * sim.Second)
		c.End()
		j, s = m.Since(snap)
	})
	k.Run()
	if !almost(s, 2.0) {
		t.Fatalf("window = %v s", s)
	}
	// 2s at (5 idle + 5 busy) = 20 J
	if !almost(j, 20.0) {
		t.Fatalf("window energy = %v J, want 20", j)
	}
}
