// Package power provides wall-power and energy accounting for simulated
// platforms, playing the role of the paper's Watts Up Pro meter. A Meter has
// a constant idle draw plus dynamic Components (cores, drives, NICs) that
// contribute their wattage while active; energy is the integral of total
// power over virtual time.
package power

import "leed/internal/runtime"

// Meter accumulates the energy drawn by one platform.
type Meter struct {
	env   runtime.Env
	idleW float64
	comps []*Component
}

// NewMeter creates a meter with the given constant idle draw in watts.
func NewMeter(env runtime.Env, idleWatts float64) *Meter {
	return &Meter{env: env, idleW: idleWatts}
}

// IdleWatts returns the configured idle draw.
func (m *Meter) IdleWatts() float64 { return m.idleW }

// Component models one dynamic power consumer. Begin/End calls nest: the
// component draws its wattage whenever the nesting count is positive.
type Component struct {
	name   string
	watts  float64
	meter  *Meter
	active int
	since  runtime.Time
	busyNs float64 // integral of active time in ns
}

// NewComponent registers a dynamic consumer drawing watts while active.
func (m *Meter) NewComponent(name string, watts float64) *Component {
	c := &Component{name: name, watts: watts, meter: m}
	m.comps = append(m.comps, c)
	return c
}

func (c *Component) account() {
	now := c.meter.env.Now()
	if c.active > 0 {
		c.busyNs += float64(now - c.since)
	}
	c.since = now
}

// Begin marks the component active (nestable).
func (c *Component) Begin() {
	c.account()
	c.active++
}

// End reverses one Begin.
func (c *Component) End() {
	c.account()
	c.active--
	if c.active < 0 {
		panic("power: Component.End without Begin")
	}
}

// PinActive makes the component permanently active — e.g. a core spinning in
// a poll loop, which draws power regardless of useful work (§4.1).
func (c *Component) PinActive() { c.Begin() }

// BusySeconds returns the component's accumulated active time.
func (c *Component) BusySeconds() float64 {
	c.account()
	return c.busyNs / float64(runtime.Second)
}

// Energy returns total Joules drawn from time zero to now.
func (m *Meter) Energy() float64 {
	j := m.idleW * m.env.Now().Seconds()
	for _, c := range m.comps {
		j += c.watts * c.BusySeconds()
	}
	return j
}

// AvgWatts returns average power from time zero to now.
func (m *Meter) AvgWatts() float64 {
	if m.env.Now() == 0 {
		return m.idleW
	}
	return m.Energy() / m.env.Now().Seconds()
}

// Snapshot captures the meter state so a later call can measure a window.
type Snapshot struct {
	at     runtime.Time
	joules float64
}

// Snap records the current cumulative energy.
func (m *Meter) Snap() Snapshot { return Snapshot{at: m.env.Now(), joules: m.Energy()} }

// Since returns (joules, seconds) elapsed since the snapshot.
func (m *Meter) Since(s Snapshot) (joules, seconds float64) {
	return m.Energy() - s.joules, (m.env.Now() - s.at).Seconds()
}
