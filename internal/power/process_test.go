package power

import (
	"strings"
	"testing"

	"leed/internal/obs"
)

// TestProcessMeterSeriesGolden pins the wallclock energy series names every
// proc role exports — the names the fleet merge sums cluster-wide and the CI
// smoke greps on the manager's aggregated /metrics. Renaming any of these is
// a cross-layer change (CI, DESIGN.md §15, bench docs), so it must fail
// loudly here first.
func TestProcessMeterSeriesGolden(t *testing.T) {
	reg := obs.NewRegistry()
	cpu := 0.0
	m := NewProcessMeter(reg, ProcessConfig{
		Interval: -1, // no sampling goroutine; the test steps explicitly
		ReadCPU:  func() (float64, bool) { return cpu, true },
	})
	cpu = 0.25 // a quarter core-second of busy time since the baseline
	reg.Counter("leed_device_reads_total", "dev", "ssd0").Add(1000)
	reg.Counter("leed_device_writes_total", "dev", "ssd0").Add(500)
	m.Sample()
	m.Close()

	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	for _, series := range []string{
		"leed_power_joules_total",
		"leed_power_millijoules_total",
		"leed_power_cpu_busy_ms_total",
		"leed_power_avg_watts",
		"leed_power_milliwatts",
		`leed_power_component_millijoules_total{comp="idle"}`,
		`leed_power_component_millijoules_total{comp="cpu"}`,
		`leed_power_component_millijoules_total{comp="flash_read"}`,
		`leed_power_component_millijoules_total{comp="flash_write"}`,
	} {
		if !strings.Contains(out, series) {
			t.Errorf("registry missing power series %q:\n%s", series, out)
		}
	}
}

// TestProcessMeterEnergyModel checks the three-term model arithmetic with a
// deterministic CPU source: cpu and device terms are exact (wall time only
// feeds the idle term, which the assertions bracket rather than pin).
func TestProcessMeterEnergyModel(t *testing.T) {
	reg := obs.NewRegistry()
	cpu := 0.0
	m := NewProcessMeter(reg, ProcessConfig{
		IdleW:    2.0,
		CPUW:     4.0,
		ReadJ:    1e-3,
		WriteJ:   2e-3,
		Interval: -1,
		ReadCPU:  func() (float64, bool) { return cpu, true },
	})
	cpu = 2.0                                                     // 2 core-seconds → 4.0·2 = 8 J
	reg.Counter("leed_device_reads_total").Add(3000)              // 3000·1mJ = 3 J
	reg.Counter("leed_device_writes_total", "dev", "s1").Add(500) // 500·2mJ = 1 J
	m.Sample()
	m.Close()

	snap := reg.Snapshot()
	if got := snap.Counters["leed_power_cpu_busy_ms_total"]; got != 2000 {
		t.Errorf("cpu busy ms = %d, want 2000", got)
	}
	if got := snap.Counters[`leed_power_component_millijoules_total{comp="cpu"}`]; got != 8000 {
		t.Errorf("cpu component = %d mJ, want 8000", got)
	}
	if got := snap.Counters[`leed_power_component_millijoules_total{comp="flash_read"}`]; got != 3000 {
		t.Errorf("flash_read component = %d mJ, want 3000", got)
	}
	if got := snap.Counters[`leed_power_component_millijoules_total{comp="flash_write"}`]; got != 1000 {
		t.Errorf("flash_write component = %d mJ, want 1000", got)
	}
	// Total ≥ the deterministic terms; the idle term adds the wall time the
	// test took (tiny but nonzero).
	total := snap.Counters["leed_power_millijoules_total"]
	if total < 12000 {
		t.Errorf("total = %d mJ, want ≥ 12000 (cpu+flash terms)", total)
	}
	idle := snap.Counters[`leed_power_component_millijoules_total{comp="idle"}`]
	if deterministic := total - idle; deterministic != 12000 {
		t.Errorf("total-idle = %d mJ, want exactly 12000", deterministic)
	}
	if got := snap.Counters["leed_power_joules_total"]; got != total/1000 {
		t.Errorf("joules = %d, want mJ/1000 = %d", got, total/1000)
	}
}

// TestProcessMeterNoCPUSource degrades gracefully on platforms without
// /proc: the cpu term reads zero, everything else still accounts.
func TestProcessMeterNoCPUSource(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewProcessMeter(reg, ProcessConfig{
		Interval: -1,
		ReadCPU:  func() (float64, bool) { return 0, false },
	})
	reg.Counter("leed_device_reads_total").Add(100)
	m.Sample()
	m.Close()
	snap := reg.Snapshot()
	if got := snap.Counters[`leed_power_component_millijoules_total{comp="cpu"}`]; got != 0 {
		t.Errorf("cpu component = %d, want 0 without a CPU source", got)
	}
	if got := snap.Counters[`leed_power_component_millijoules_total{comp="flash_read"}`]; got != 3 {
		t.Errorf("flash_read = %d mJ, want 3 (100 · 35µJ)", got)
	}
}
