package server_test

import (
	"fmt"
	"sync/atomic"
	"testing"

	"leed/internal/core"
	"leed/internal/engine"
	"leed/internal/flashsim"
	"leed/internal/obs"
	"leed/internal/rpcproto"
	"leed/internal/runtime"
	"leed/internal/runtime/wallclock"
	"leed/internal/server"
	"leed/internal/sim"
	"leed/internal/transport"
)

// newTestEngine builds a pure-device engine (no platform node): two
// in-memory drives, two partitions each. slow interposes a latency shim
// with tens-of-ms service times so requests stay observably in flight —
// the drain test needs a window it can act inside.
func newTestEngine(env runtime.Env, slow bool) *engine.Engine {
	const devCap = 8 << 20
	mk := func() flashsim.Device {
		var d flashsim.Device = flashsim.NewMemDevice(env, devCap)
		if slow {
			d = flashsim.NewLatencyShim(env, d, flashsim.Spec{
				Capacity: devCap, Parallelism: 16,
				ReadBase: 20 * runtime.Millisecond, WriteBase: 50 * runtime.Millisecond,
				ReadBW: 1 << 40, WriteBW: 1 << 40,
			})
		}
		return d
	}
	return engine.New(engine.Config{
		Env:              env,
		Devices:          []flashsim.Device{mk(), mk()},
		PartitionsPerSSD: 2,
		Geometry:         core.PlanPartition(2<<20, 16, 256, core.PlanOpts{}),
		PartitionBytes:   2 << 20,
	})
}

func testKey(i int) []byte { return []byte(fmt.Sprintf("key-%04d", i)) }

func testVal(i int) []byte {
	v := make([]byte, 64)
	for j := range v {
		v[j] = byte(i*31 + j)
	}
	return v
}

// TestServerInprocSim runs the full stack — client, transport, server,
// engine, store, device — on the deterministic sim kernel.
func TestServerInprocSim(t *testing.T) {
	k := sim.New()
	defer k.Close()
	eng := newTestEngine(k, false)
	srv := server.New(server.Config{Env: k, Engine: eng})
	inp := transport.NewInproc(k, transport.InprocOptions{})
	srv.Serve(inp)

	checked := false
	k.Go("client", func(p *sim.Proc) {
		conn, err := inp.Dial(p)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		cl := server.NewClient(k, conn, 8)
		for i := 0; i < 40; i++ {
			if err := cl.Put(p, testKey(i), testVal(i)); err != nil {
				t.Errorf("put %d: %v", i, err)
			}
		}
		for i := 0; i < 40; i++ {
			v, err := cl.Get(p, testKey(i))
			if err != nil {
				t.Errorf("get %d: %v", i, err)
				continue
			}
			if string(v) != string(testVal(i)) {
				t.Errorf("get %d: wrong value", i)
			}
		}
		if err := cl.Del(p, testKey(7)); err != nil {
			t.Errorf("del: %v", err)
		}
		if _, err := cl.Get(p, testKey(7)); err != core.ErrNotFound {
			t.Errorf("get deleted: want ErrNotFound, got %v", err)
		}
		if _, err := cl.Get(p, []byte("never-put")); err != core.ErrNotFound {
			t.Errorf("get missing: want ErrNotFound, got %v", err)
		}
		checked = true
		cl.Close()
		srv.Close()
	})
	k.Run()
	if !checked {
		t.Fatal("client never ran")
	}
}

// TestServerGracefulDrain pins the drain contract on the wallclock backend:
// every request in flight when Close lands still completes successfully, a
// request arriving during the drain is refused (error, not silence), a new
// Dial after the drain is rejected, and double-Close — including from a
// raw goroutine racing the in-task Close — is safe.
func TestServerGracefulDrain(t *testing.T) {
	env := wallclock.New()
	eng := newTestEngine(env, true)
	reg := obs.NewRegistry()
	srv := server.New(server.Config{
		Env: env, Engine: eng, Obs: reg,
		SamplePeriod: 5 * runtime.Millisecond,
	})
	inp := transport.NewInproc(env, transport.InprocOptions{})
	srv.Serve(inp)

	const puts = 16
	inflight := reg.Gauge("leed_server_inflight")
	var okPuts, lateErrs atomic.Int64
	var lateErr atomic.Value

	env.Spawn("driver", func(p runtime.Task) {
		connA, err := inp.Dial(p)
		if err != nil {
			t.Errorf("dial A: %v", err)
			return
		}
		clA := server.NewClient(env, connA, puts+1)
		connB, err := inp.Dial(p)
		if err != nil {
			t.Errorf("dial B: %v", err)
			return
		}
		server.NewClient(env, connB, 4) // idle conn: drain must close it

		evs := make([]runtime.Event, 0, puts)
		for i := 0; i < puts; i++ {
			i := i
			ev := env.MakeEvent()
			evs = append(evs, ev)
			env.Spawn("put", func(q runtime.Task) {
				defer ev.Fire(nil)
				if err := clA.Put(q, testKey(i), testVal(i)); err == nil {
					okPuts.Add(1)
				}
			})
		}
		env.Spawn("closer", func(q runtime.Task) {
			// Wait until all puts are actually executing: the slow device
			// holds them in flight for tens of ms, so this settles fast.
			deadline := q.Now() + 5*runtime.Second
			for inflight.Load() < puts && q.Now() < deadline {
				q.Sleep(runtime.Millisecond)
			}
			srv.Close()
			srv.Close() // idempotent in-task
			// A request issued mid-drain must be answered with an error
			// (NACK while the conn drains, or closed), never hang.
			q.Sleep(10 * runtime.Millisecond)
			if _, err := clA.Get(q, testKey(0)); err != nil {
				lateErrs.Add(1)
				lateErr.Store(err)
			}
		})
		runtime.WaitAll(p, evs...)
	})
	env.Wait()

	if got := okPuts.Load(); got != puts {
		t.Errorf("drain lost in-flight requests: %d of %d puts succeeded", got, puts)
	}
	if lateErrs.Load() != 1 {
		t.Errorf("request issued mid-drain was not refused")
	} else {
		// The refusal must be the explicit drain NACK, typed so a retry
		// policy can classify it as safe-to-retry — not a generic
		// connection error.
		ef, ok := lateErr.Load().(*rpcproto.ErrorFrame)
		if !ok || ef.Code != rpcproto.StatusNack {
			t.Errorf("mid-drain refusal: want *rpcproto.ErrorFrame(StatusNack), got %v", lateErr.Load())
		}
	}

	var dialErr error
	env.Spawn("post-drain", func(p runtime.Task) {
		_, dialErr = inp.Dial(p)
	})
	env.Wait()
	if dialErr != transport.ErrClosed {
		t.Errorf("post-drain dial: want ErrClosed, got %v", dialErr)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("post-drain Close: %v", err)
	}
}

// transcript is what a workload observed: per key, the final GET outcome,
// plus per-phase status tallies. Two transports serving the same seeded
// workload must produce identical transcripts.
type transcript struct {
	gets map[string]string
	puts int
	dels int
}

// runWorkload drives the seeded workload through dial over nIssuers
// pipelined issuer tasks sharing one connection: put every key, delete
// every fifth, read all back. Phases are barriers; inside a phase requests
// pipeline freely, so the transcript is order-independent by construction
// (disjoint keys) and pins that pipelining doesn't corrupt routing.
func runWorkload(t *testing.T, env *wallclock.Env, srv *server.Server, dial func(p runtime.Task) (transport.Conn, error)) transcript {
	const keys = 120
	const nIssuers = 8
	tx := transcript{gets: make(map[string]string)}

	env.Spawn("workload", func(p runtime.Task) {
		conn, err := dial(p)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		cl := server.NewClient(env, conn, 32)
		phase := func(name string, fn func(q runtime.Task, i int)) {
			evs := make([]runtime.Event, 0, nIssuers)
			for w := 0; w < nIssuers; w++ {
				w := w
				ev := env.MakeEvent()
				evs = append(evs, ev)
				env.Spawn(name, func(q runtime.Task) {
					defer ev.Fire(nil)
					for i := w; i < keys; i += nIssuers {
						fn(q, i)
					}
				})
			}
			runtime.WaitAll(p, evs...)
		}
		phase("put", func(q runtime.Task, i int) {
			if err := cl.Put(q, testKey(i), testVal(i)); err != nil {
				t.Errorf("put %d: %v", i, err)
				return
			}
			tx.puts++
		})
		phase("del", func(q runtime.Task, i int) {
			if i%5 != 0 {
				return
			}
			if err := cl.Del(q, testKey(i)); err != nil {
				t.Errorf("del %d: %v", i, err)
				return
			}
			tx.dels++
		})
		phase("get", func(q runtime.Task, i int) {
			v, err := cl.Get(q, testKey(i))
			switch err {
			case nil:
				tx.gets[string(testKey(i))] = fmt.Sprintf("ok:%x", v)
			case core.ErrNotFound:
				tx.gets[string(testKey(i))] = "notfound"
			default:
				t.Errorf("get %d: %v", i, err)
			}
		})
		cl.Close()
		// Close the server from in here so env.Wait below has a reason to
		// return: the accept task and sampler exit only on drain.
		srv.Close()
	})
	env.Wait()
	return tx
}

// TestTransportEquivalence pins the tentpole property: the same seeded
// workload over the in-process transport and over real TCP sockets
// produces identical KV transcripts. Run under -race this also exercises
// the TCP bridge goroutines against the runtime contract.
func TestTransportEquivalence(t *testing.T) {
	run := func(useTCP bool) transcript {
		env := wallclock.New()
		eng := newTestEngine(env, false)
		srv := server.New(server.Config{Env: env, Engine: eng, Obs: obs.NewRegistry()})
		var dial func(p runtime.Task) (transport.Conn, error)
		if useTCP {
			l, err := transport.ListenTCP(env, "127.0.0.1:0")
			if err != nil {
				t.Fatalf("listen: %v", err)
			}
			srv.Serve(l)
			addr := l.Addr()
			dial = func(p runtime.Task) (transport.Conn, error) { return transport.DialTCP(env, addr) }
		} else {
			inp := transport.NewInproc(env, transport.InprocOptions{})
			srv.Serve(inp)
			dial = inp.Dial
		}
		return runWorkload(t, env, srv, dial)
	}

	inproc := run(false)
	tcp := run(true)

	if inproc.puts != tcp.puts || inproc.dels != tcp.dels {
		t.Fatalf("phase counts differ: inproc %d/%d tcp %d/%d",
			inproc.puts, inproc.dels, tcp.puts, tcp.dels)
	}
	if len(inproc.gets) != len(tcp.gets) {
		t.Fatalf("transcript sizes differ: %d vs %d", len(inproc.gets), len(tcp.gets))
	}
	for k, v := range inproc.gets {
		if tcp.gets[k] != v {
			t.Fatalf("transcript diverges at %s: inproc %q tcp %q", k, v, tcp.gets[k])
		}
	}
}
