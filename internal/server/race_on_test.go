//go:build race

package server_test

// raceEnabled reports whether the race detector is active; its
// instrumentation allocates on the serve path, so allocation-budget
// assertions only run without it.
const raceEnabled = true
