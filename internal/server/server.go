// Package server is LEED's request front-end: the piece that turns an
// engine full of partitions into a network service. It owns what `leedctl
// serve` used to hard-code — partition routing, admission, execution,
// response generation, drain — behind the transport seam, so the same
// server stack serves a goroutine client over an in-process queue pair and
// a separate process over a TCP socket (§3.5, §3.8.1's client-visible
// surface).
//
// Request path: a frame arrives on a transport.Conn, is borrow-decoded in
// place (key and value alias the frame buffer until the request completes),
// routed through a precomputed partition table, admitted through a
// per-connection pipeline window plus the engine's per-partition tokens,
// executed, and answered with a response frame carrying the partition's
// remaining tokens (§3.5's piggybacked flow control). Requests on one
// connection pipeline freely: a per-connection worker pool (grown lazily up
// to the pipeline window) executes them concurrently, so responses return
// in completion order and the client matches them by ID. The steady-state
// path recycles everything — frames, request state, response buffers — so
// serving allocates nothing (see DESIGN.md §13).
//
// Batch frames (FrameBatchReq) carry a MultiGet/MultiPut: the server splits
// the items by owning partition, executes the sub-batches in parallel
// across partitions (sequentially within one), and answers with a single
// FrameBatchResp in the request's item order.
//
// Shutdown is a graceful drain: new connections are refused, requests
// already in flight complete and their responses flush, late requests on
// open connections are answered with an ErrorFrame (StatusNack) rather
// than silently dropped, and every connection then closes.
package server

import (
	"fmt"
	"sync/atomic"

	"leed/internal/cluster"
	"leed/internal/core"
	"leed/internal/engine"
	"leed/internal/obs"
	"leed/internal/rpcproto"
	"leed/internal/runtime"
	"leed/internal/transport"
)

// Config describes one server.
type Config struct {
	Env    runtime.Env
	Engine *engine.Engine

	// VPartitions is the number of virtual partitions keys hash onto before
	// the ring maps them to engine partitions; it is the unit of future
	// rebalancing, so it should exceed the partition count. Default 64.
	VPartitions int
	// MaxInflightPerConn bounds how many requests from one connection may
	// be executing at once: the pipeline admission window. A connection
	// that fills its window is simply not read from until a slot frees —
	// TCP backpressure does the rest. Default 64.
	MaxInflightPerConn int64
	// MaxInflightTotal bounds requests executing across ALL connections:
	// the overload-shedding line. Past it the server answers with an
	// explicit OverloadFrame NACK instead of queueing — the request
	// provably never executed, so the client may safely retry anything,
	// even a PUT, after the frame's backoff hint. 0 disables (per-conn
	// windows remain the only admission).
	MaxInflightTotal int64
	// OverloadRetryHint is the backoff hint carried in overload NACKs.
	// Default 1ms.
	OverloadRetryHint runtime.Time
	// IdleTimeout reaps connections that have had no request in flight or
	// arriving for this long. This is the server-policy layer of idle
	// reaping; the transport's TCPOptions.ReadIdleTimeout is the socket
	// layer that also catches peers that vanished mid-frame. 0 disables.
	IdleTimeout runtime.Time

	// Handler, when set, replaces the default route-and-execute step for
	// single-op requests: the server keeps owning framing, admission,
	// pooling, drain, and metrics, while the handler owns what happens
	// between decode and response — a cluster node installs one to validate
	// the request against its membership view, execute locally, and forward
	// down the CRRS chain before acking. With a handler installed the
	// server also accepts FrameChainFwd peer traffic (refused otherwise)
	// and refuses batch frames (chain routing is per-key). Nil = plain
	// single-store serving.
	Handler Handler

	// Obs and Tracer bind the server to a metrics registry and the request
	// tracer. Both optional.
	Obs    *obs.Registry
	Tracer *obs.Tracer
	// SamplePeriod is the queue-depth sampling cadence. Default 10ms.
	SamplePeriod runtime.Time

	// testHook, when set (tests only — unexported, so only this package can
	// install it), runs at the top of every handled request; a hook that
	// panics exercises the handler's panic isolation.
	testHook func(*rpcproto.Request)
}

// Server serves rpcproto frames from transport listeners against an engine.
type Server struct {
	cfg     Config
	env     runtime.Env
	handles []engine.Handle
	ring    *cluster.Ring
	// owners is the precomputed virtual-partition → engine-partition table.
	// Ring.OwnerOf walks the consistent-hash ring and allocates; the ring is
	// static for a server's lifetime, so route() is a pair of array reads.
	owners []int

	// State below is mutated only in task or scheduler context: the
	// execution contract is the lock.
	listeners     []transport.Listener
	conns         map[*serverConn]struct{}
	draining      bool
	inflightTotal int64

	// closed makes Close idempotent and callable from any goroutine (a
	// signal handler, a test's raw goroutine).
	closed atomic.Bool

	o *srvObs
}

// Handler executes one admitted single-op request. fwd reports the frame
// kind: false for a client FrameRequest, true for peer FrameChainFwd
// traffic. req is borrow-decoded (Key/Value alias the frame, which stays
// alive for the whole call); the handler fills resp (already zeroed with
// ID and Epoch echoed) and returns its value scratch buffer — grown
// capacity is kept across requests, so a handler that reads into scratch
// keeps the serve path allocation-free. resp.Value may alias the returned
// scratch or the request frame. tr is the request's trace (nil when the
// server has no tracer): the handler attributes engine execution and chain
// forwards to it, and — for requests carrying a sampled trace context — a
// handler that relays downstream may append the downstream response's
// piggybacked spans to resp.Spans; the server adds the handler's own spans
// and the node span before the response leaves. Runs in task context;
// blocking (e.g. a chain forward's round trip) is fine, it occupies one
// pipeline slot.
type Handler interface {
	Handle(t runtime.Task, fwd bool, req *rpcproto.Request, resp *rpcproto.Response, scratch []byte, tr *obs.Trace) []byte
}

// workerStop is the sentinel closeConn injects to retire a connection's
// workers. Zero-size, so boxing it into the queue never allocates.
type workerStop struct{}

// reqWork is one admitted request's state, pooled per connection. The
// request frame stays borrowed for the request's whole lifetime: Key and
// Value alias it (rpcproto's borrow contract), and the engine copies on
// PUT ingest, so the frame is released only when the response has been
// sent. Scratch fields (val, batch slices) keep their capacity across
// requests, which is what makes the steady-state serve path allocation
// free.
type reqWork struct {
	frame   []byte
	arrived runtime.Time
	fwd     bool              // frame kind was FrameChainFwd (peer traffic)
	req     rpcproto.Request  // borrow-decoded; Key/Value alias frame
	resp    rpcproto.Response // response scratch
	val     []byte            // GET value scratch, reused across requests

	// Batch request state (kind FrameBatchReq).
	batch    bool
	batchID  uint64
	batchOp  rpcproto.Op
	items    []rpcproto.BatchItem // alias frame
	resps    []rpcproto.BatchRespItem
	statuses []rpcproto.Status
	vals     [][]byte
}

// serverConn is the server side of one accepted connection.
type serverConn struct {
	conn       transport.Conn
	pipe       runtime.Resource // pipeline admission window
	workQ      runtime.Queue    // admitted *reqWork, consumed by workers
	workers    int              // workers spawned, grown lazily to the window
	free       []*reqWork       // recycled work items
	inflight   int              // requests executing right now
	closed     bool
	readerDone bool
	lastActive runtime.Time // last request arrival, for idle reaping
	lat        *obs.Hist
}

func (sc *serverConn) getWork() *reqWork {
	if n := len(sc.free); n > 0 {
		w := sc.free[n-1]
		sc.free[n-1] = nil
		sc.free = sc.free[:n-1]
		return w
	}
	return &reqWork{}
}

// putWork recycles w, dropping every reference into the (released) frame
// while keeping scratch capacity.
func (sc *serverConn) putWork(w *reqWork) {
	w.frame = nil
	w.fwd = false
	w.req = rpcproto.Request{}
	// The response's span scratch is work-item-owned (piggyback spans are
	// value types, never aliases into the frame); keep its capacity so a
	// traced steady state allocates nothing.
	w.resp = rpcproto.Response{Spans: w.resp.Spans[:0]}
	w.batch = false
	w.items = w.items[:0]
	for i := range w.resps {
		w.resps[i] = rpcproto.BatchRespItem{}
	}
	// w.vals entries are the work item's own per-slot read buffers (never
	// aliases into a borrowed frame), kept so their capacity survives into
	// the next batch.
	for i := range w.vals {
		w.vals[i] = w.vals[i][:0]
	}
	if len(sc.free) < 64 {
		sc.free = append(sc.free, w)
	}
}

type srvObs struct {
	reg *obs.Registry
	// requests is indexed by rpcproto.Op — an array, not a map, so the
	// per-request increment is a load and an atomic add.
	requests  [8]*obs.Counter
	errors    *obs.Counter
	badFrame  *obs.Counter
	refused   *obs.Counter
	overloads *obs.Counter
	panics    *obs.Counter
	reaped    *obs.Counter
	connsNow  *obs.Gauge
	connsTot  *obs.Counter
	inflight  *obs.Gauge
	partLat   []*obs.Hist
	depth     []*obs.Gauge
}

func (o *srvObs) reqInc(op rpcproto.Op) {
	if int(op) < len(o.requests) {
		o.requests[op].Inc() // nil-safe for unregistered ops
	}
}

func newSrvObs(reg *obs.Registry, nparts int) *srvObs {
	o := &srvObs{
		reg:       reg,
		errors:    reg.Counter("leed_server_errors_total"),
		badFrame:  reg.Counter("leed_server_bad_frames_total"),
		refused:   reg.Counter("leed_server_refused_total"),
		overloads: reg.Counter("leed_server_overloads_total"),
		panics:    reg.Counter("leed_server_panics_total"),
		reaped:    reg.Counter("leed_server_reaped_total"),
		connsNow:  reg.Gauge("leed_server_conns"),
		connsTot:  reg.Counter("leed_server_conns_total"),
		inflight:  reg.Gauge("leed_server_inflight"),
	}
	for _, op := range []rpcproto.Op{rpcproto.OpGet, rpcproto.OpPut, rpcproto.OpDel} {
		o.requests[op] = reg.Counter("leed_server_requests_total", "op", op.String())
	}
	for pid := 0; pid < nparts; pid++ {
		l := []string{"partition", fmt.Sprintf("%d", pid)}
		o.partLat = append(o.partLat, reg.Hist("leed_server_partition_latency_ns", l...))
		o.depth = append(o.depth, reg.Gauge("leed_server_queue_depth", l...))
	}
	return o
}

// New builds a server over the engine's partitions. The engine should
// already be recovered/started; the server does not own its lifecycle.
func New(cfg Config) *Server {
	if cfg.VPartitions == 0 {
		cfg.VPartitions = 64
	}
	if cfg.MaxInflightPerConn == 0 {
		cfg.MaxInflightPerConn = 64
	}
	if cfg.SamplePeriod == 0 {
		cfg.SamplePeriod = 10 * runtime.Millisecond
	}
	if cfg.OverloadRetryHint == 0 {
		cfg.OverloadRetryHint = runtime.Millisecond
	}
	handles := cfg.Engine.Handles()
	members := make([]cluster.NodeID, len(handles))
	for i := range handles {
		members[i] = cluster.NodeID(i)
	}
	s := &Server{
		cfg:     cfg,
		env:     cfg.Env,
		handles: handles,
		ring:    cluster.NewRing(members),
		owners:  make([]int, cfg.VPartitions),
		conns:   make(map[*serverConn]struct{}),
		o:       newSrvObs(cfg.Obs, len(handles)),
	}
	for vp := range s.owners {
		s.owners[vp] = int(s.ring.OwnerOf(uint32(vp)))
	}
	if cfg.Obs != nil {
		s.env.Spawn("server-sampler", s.sample)
	}
	if cfg.IdleTimeout > 0 {
		s.env.Spawn("server-reaper", s.reap)
	}
	return s
}

// route maps a key to the engine partition that owns it: key hash →
// virtual partition → precomputed owner. Deterministic across processes
// and transports, and allocation-free.
func (s *Server) route(key []byte) int {
	return s.owners[cluster.PartitionOf(core.HashKey(key), s.cfg.VPartitions)]
}

// sample periodically publishes per-partition waiting-queue depths; it
// exits once the server drains.
func (s *Server) sample(t runtime.Task) {
	for !s.draining {
		t.Sleep(s.cfg.SamplePeriod)
		for pid, h := range s.handles {
			s.o.depth[pid].Set(int64(h.WaitingDepth()))
		}
	}
}

// reap closes connections that have sat idle past Config.IdleTimeout: no
// request executing and none arrived recently. Closing wakes the conn's
// reader with ErrClosed, which deregisters it; a request racing the reaper
// at the transport layer loses the connection, which is exactly what the
// same request would see against a ReadIdleTimeout — clients own retry.
func (s *Server) reap(t runtime.Task) {
	period := s.cfg.IdleTimeout / 4
	if period <= 0 {
		period = runtime.Millisecond
	}
	for !s.draining {
		t.Sleep(period)
		now := t.Now()
		for sc := range s.conns {
			if sc.inflight == 0 && now-sc.lastActive > s.cfg.IdleTimeout {
				s.o.reaped.Inc()
				s.closeConn(sc)
			}
		}
	}
}

// Serve mounts the server on a listener and returns immediately; accepted
// connections are served until the listener fails or the server drains.
// A server may Serve any number of listeners (e.g. inproc and TCP at
// once). Safe to call from any goroutine.
func (s *Server) Serve(l transport.Listener) {
	s.env.Spawn("server-accept", func(t runtime.Task) {
		if s.draining {
			l.Close()
			return
		}
		s.listeners = append(s.listeners, l)
		for {
			c, err := l.Accept(t)
			if err != nil {
				return
			}
			if s.draining {
				c.Close()
				continue
			}
			s.startConn(t, c)
		}
	})
}

// startConn registers one accepted connection and spawns its reader. Task
// context.
func (s *Server) startConn(t runtime.Task, c transport.Conn) {
	sc := &serverConn{
		conn:       c,
		pipe:       s.env.MakeResource(s.cfg.MaxInflightPerConn),
		workQ:      s.env.MakeQueue(),
		lastActive: t.Now(),
		lat:        s.cfg.Obs.Hist("leed_server_conn_latency_ns", "conn", c.String()),
	}
	s.conns[sc] = struct{}{}
	s.o.connsTot.Inc()
	s.o.connsNow.Set(int64(len(s.conns)))
	s.env.Spawn("server-conn", func(t runtime.Task) { s.serveConn(t, sc) })
}

// serveConn is one connection's reader loop: decode, admit, enqueue for the
// connection's workers.
func (s *Server) serveConn(t runtime.Task, sc *serverConn) {
	for {
		frame, err := sc.conn.Recv(t)
		if err != nil {
			break
		}
		arrived := t.Now()
		sc.lastActive = arrived
		kind, payload, _, err := rpcproto.DecodeFrame(frame)
		okKind := kind == rpcproto.FrameRequest ||
			(kind == rpcproto.FrameBatchReq && s.cfg.Handler == nil) ||
			(kind == rpcproto.FrameChainFwd && s.cfg.Handler != nil)
		if err != nil || !okKind {
			// Undecodable bytes poison the stream — there is no resync
			// point past a bad frame. Report and hang up. (Peer-only and
			// handler-incompatible kinds land here too: a plain KV server
			// refuses FrameChainFwd, a cluster node refuses batches.)
			rpcproto.PutBuf(frame)
			s.o.badFrame.Inc()
			s.sendError(t, sc, &rpcproto.ErrorFrame{Code: rpcproto.StatusErr, Msg: "undecodable frame"})
			break
		}
		w := sc.getWork()
		w.frame = frame
		w.arrived = arrived
		w.fwd = kind == rpcproto.FrameChainFwd
		var reqID uint64
		if kind == rpcproto.FrameBatchReq {
			id, op, items, derr := rpcproto.DecodeBatchReq(payload, w.items[:0])
			if derr != nil {
				rpcproto.PutBuf(frame)
				w.frame = nil
				sc.putWork(w)
				s.o.badFrame.Inc()
				s.sendError(t, sc, &rpcproto.ErrorFrame{Code: rpcproto.StatusErr, Msg: "undecodable batch"})
				break
			}
			w.batch, w.batchID, w.batchOp, w.items = true, id, op, items
			reqID = id
		} else {
			if _, derr := w.req.DecodeBorrow(payload); derr != nil {
				rpcproto.PutBuf(frame)
				w.frame = nil
				sc.putWork(w)
				s.o.badFrame.Inc()
				s.sendError(t, sc, &rpcproto.ErrorFrame{Code: rpcproto.StatusErr, Msg: "undecodable request"})
				break
			}
			reqID = w.req.ID
		}
		// Pipeline admission: block the reader (and thus the stream) while
		// the connection's window is full.
		sc.pipe.Acquire(t, 1)
		if s.draining {
			// The drain completes requests that were in flight when it
			// began; this one arrived after. Refuse it explicitly.
			sc.pipe.Release(1)
			s.o.refused.Inc()
			s.sendError(t, sc, &rpcproto.ErrorFrame{ID: reqID, Code: rpcproto.StatusNack, Msg: "server draining"})
			rpcproto.PutBuf(w.frame)
			sc.putWork(w)
			continue
		}
		if s.cfg.MaxInflightTotal > 0 && s.inflightTotal >= s.cfg.MaxInflightTotal {
			// Overload shedding: the global execution budget is spent, so
			// NACK immediately instead of queueing. The per-conn window slot
			// is returned — this reader keeps draining its stream (a shed
			// request must not wedge the connection behind it).
			sc.pipe.Release(1)
			s.o.overloads.Inc()
			shedKey := w.req.Key
			if w.batch && len(w.items) > 0 {
				shedKey = w.items[0].Key
			}
			sc.conn.Send(t, rpcproto.AppendOverloadFrame(rpcproto.GetBuf(), &rpcproto.OverloadFrame{
				ID:           reqID,
				Tokens:       int32(s.handles[s.route(shedKey)].AvailableTokens()),
				RetryAfterNS: int64(s.cfg.OverloadRetryHint),
			}))
			rpcproto.PutBuf(w.frame)
			sc.putWork(w)
			continue
		}
		sc.inflight++
		s.inflightTotal++
		s.o.inflight.Add(1)
		sc.workQ.Put(w)
		// Grow the worker pool to match observed concurrency: one worker per
		// in-flight request, capped by the pipeline window. Workers persist
		// for the connection's lifetime, so steady state spawns nothing.
		if sc.workers < sc.inflight && int64(sc.workers) < s.cfg.MaxInflightPerConn {
			sc.workers++
			s.env.Spawn("server-worker", func(q runtime.Task) { s.connWorker(q, sc) })
		}
	}
	// Reader exit: if the drain hasn't already retired the connection,
	// in-flight requests may still be executing — leave the conn to them
	// (their completions will find readerDone set), but retire an idle one.
	sc.readerDone = true
	if !sc.closed && sc.inflight == 0 {
		s.closeConn(sc)
	}
}

// connWorker drains one connection's admitted-work queue until closeConn
// injects its stop sentinel.
func (s *Server) connWorker(t runtime.Task, sc *serverConn) {
	for {
		w, ok := sc.workQ.Get(t).(*reqWork)
		if !ok {
			return // workerStop
		}
		s.process(t, sc, w)
	}
}

// process executes one admitted work item with panic isolation, then does
// the admission bookkeeping and recycles the work state.
func (s *Server) process(t runtime.Task, sc *serverConn, w *reqWork) {
	// Admission bookkeeping must survive a panicking handler, so it is
	// deferred; the recover below it (LIFO: runs first) keeps one poisoned
	// request from killing the whole process.
	defer func() {
		rpcproto.PutBuf(w.frame)
		sc.putWork(w)
		sc.pipe.Release(1)
		sc.inflight--
		s.inflightTotal--
		s.o.inflight.Add(-1)
		if (s.draining || sc.readerDone) && sc.inflight == 0 && !sc.closed {
			s.closeConn(sc)
		}
	}()
	defer func() {
		if r := recover(); r != nil {
			// The request died mid-execution; its effects on the engine are
			// unknown, so answer with an ErrorFrame the retry policy treats
			// as ambiguous (no blind PUT retry) and hang up — per-conn state
			// is no longer trusted.
			s.o.panics.Inc()
			id := w.req.ID
			if w.batch {
				id = w.batchID
			}
			s.sendError(t, sc,
				&rpcproto.ErrorFrame{ID: id, Code: rpcproto.StatusErr,
					Msg: fmt.Sprintf("panic in handler: %v", r)})
			s.closeConn(sc)
		}
	}()
	if w.batch {
		s.handleBatch(t, sc, w)
	} else {
		s.handle(t, sc, w)
	}
}

// handle executes one request and sends its response. Task context.
func (s *Server) handle(t runtime.Task, sc *serverConn, w *reqWork) {
	req := &w.req
	arrived := w.arrived
	tr := s.cfg.Tracer.Begin(req.Op.String(), arrived)
	// The node span: dispatch wait (admission window) vs everything the
	// server itself does around engine execution.
	dispatched := t.Now()
	if s.cfg.testHook != nil {
		s.cfg.testHook(req)
	}

	resp := &w.resp
	*resp = rpcproto.Response{ID: req.ID, Epoch: req.Epoch, Spans: resp.Spans[:0]}
	if s.cfg.Handler != nil {
		// Cluster mode: the handler owns validation, execution, and chain
		// forwarding; the server keeps the framing and latency accounting.
		w.val = s.cfg.Handler.Handle(t, w.fwd, req, resp, w.val[:0], tr)
		s.o.reqInc(req.Op)
		done := t.Now()
		if req.Sampled() {
			appendPiggySpans(resp, req, tr, dispatched-arrived, done-dispatched)
		}
		sc.conn.Send(t, rpcproto.AppendResponseFrame(rpcproto.GetBuf(), resp))
		tr.Span("node", dispatched-arrived, t.Now()-done)
		s.cfg.Tracer.End(tr)
		sc.lat.Record(t.Now() - arrived)
		return
	}
	var pid int
	switch req.Op {
	case rpcproto.OpGet, rpcproto.OpPut, rpcproto.OpDel:
		pid = s.route(req.Key)
		val, _, err := s.handles[pid].ExecuteTracedInto(t, req.Op, req.Key, req.Value, w.val[:0], tr)
		if val != nil {
			w.val = val[:0] // keep grown capacity for the next request
		}
		switch {
		case err == core.ErrNotFound:
			resp.Status = rpcproto.StatusNotFound
		case err != nil:
			s.o.errors.Inc()
			resp.Status = rpcproto.StatusErr
		default:
			resp.Status = rpcproto.StatusOK
			resp.Value = val
		}
		resp.Tokens = int32(s.handles[pid].AvailableTokens())
		s.o.reqInc(req.Op)
	default:
		s.o.errors.Inc()
		resp.Status = rpcproto.StatusErr
	}

	done := t.Now()
	if req.Sampled() {
		appendPiggySpans(resp, req, tr, dispatched-arrived, done-dispatched)
	}
	sc.conn.Send(t, rpcproto.AppendResponseFrame(rpcproto.GetBuf(), resp))
	tr.Span("node", dispatched-arrived, t.Now()-done)
	s.cfg.Tracer.End(tr)
	sc.lat.Record(t.Now() - arrived)
	if pid < len(s.o.partLat) {
		s.o.partLat[pid].Record(t.Now() - arrived)
	}
}

// appendPiggySpans builds the span section a sampled request's response
// carries back upstream: every stage the local trace recorded during
// execution, tagged with this server's chain hop, plus the node span — the
// handler window not already covered by a local stage or by the downstream
// spans a relaying handler merged into resp.Spans. Summing the resulting
// disjoint (non-nested) spans therefore reproduces the server-side elapsed
// time, which is what lets the issuing client decompose its measured round
// trip without a shared clock. Appends reuse resp.Spans capacity, so the
// traced steady state stays allocation-free.
func appendPiggySpans(resp *rpcproto.Response, req *rpcproto.Request, tr *obs.Trace, queue, total runtime.Time) {
	hop := req.Hop + 1
	// Time already attributed: downstream piggyback spans (the forward's
	// remote side) plus the local disjoint stages. Nested stages (cpu, ssd,
	// device) break down the engine span and must not be double-counted.
	covered := rpcproto.DisjointTotalNS(resp.Spans)
	if tr != nil {
		for _, sp := range tr.Spans {
			sid := rpcproto.StageIDOf(sp.Stage)
			if sid == 0 {
				continue
			}
			resp.Spans = append(resp.Spans, rpcproto.PSpan{
				Stage: sid, Hop: hop,
				QueueNS: int64(sp.Queue), ServiceNS: int64(sp.Service),
			})
			if !sid.Nested() {
				covered += int64(sp.Queue) + int64(sp.Service)
			}
		}
	}
	svc := int64(total) - covered
	if svc < 0 {
		svc = 0
	}
	resp.Spans = append(resp.Spans, rpcproto.PSpan{
		Stage: rpcproto.StageNode, Hop: hop,
		QueueNS: int64(queue), ServiceNS: svc,
	})
}

// handleBatch executes one MultiGet/MultiPut/MultiDel: items grouped by
// owning partition, sub-batches in parallel across partitions (sequential
// within one — they share a segment table and device queue anyway), one
// FrameBatchResp in item order. The batch path tolerates per-batch
// allocations: its throughput win comes from framing and syscall
// amortization, and the allocs/op budget is pinned on the single-op path.
func (s *Server) handleBatch(t runtime.Task, sc *serverConn, w *reqWork) {
	arrived := w.arrived
	n := len(w.items)
	if cap(w.resps) < n {
		w.resps = make([]rpcproto.BatchRespItem, n)
	}
	resps := w.resps[:n]
	for i := range resps {
		resps[i] = rpcproto.BatchRespItem{}
	}
	if cap(w.vals) < n {
		grown := make([][]byte, n)
		copy(grown, w.vals[:cap(w.vals)])
		w.vals = grown
	}
	vals := w.vals[:n]

	switch w.batchOp {
	case rpcproto.OpGet, rpcproto.OpPut, rpcproto.OpDel:
		perPart := make([][]int, len(s.handles))
		used := make([]int, 0, len(s.handles))
		for i := range w.items {
			pid := s.route(w.items[i].Key)
			if len(perPart[pid]) == 0 {
				used = append(used, pid)
			}
			perPart[pid] = append(perPart[pid], i)
		}
		done := s.env.MakeEvent()
		pending := len(used)
		for _, pid := range used {
			pid := pid
			idxs := perPart[pid]
			s.env.Spawn("server-batch", func(q runtime.Task) {
				for _, i := range idxs {
					it := w.items[i]
					// Into variant: reads land in the work item's per-slot
					// buffer (grown capacity survives across batches), and
					// take the device's inline mmap lane when it is open —
					// the syscall amortization the batch frame exists for.
					val, _, err := s.handles[pid].ExecuteTracedInto(q, w.batchOp, it.Key, it.Value, vals[i][:0], nil)
					if val != nil {
						vals[i] = val
					}
					switch {
					case err == core.ErrNotFound:
						resps[i].Status = rpcproto.StatusNotFound
					case err != nil:
						s.o.errors.Inc()
						resps[i].Status = rpcproto.StatusErr
					default:
						resps[i].Status = rpcproto.StatusOK
						resps[i].Value = val
					}
					s.o.reqInc(w.batchOp)
				}
				pending--
				if pending == 0 {
					done.Fire(nil)
				}
			})
		}
		if pending == 0 {
			done.Fire(nil) // empty batch
		}
		t.Wait(done)
	default:
		s.o.errors.Inc()
		for i := range resps {
			resps[i].Status = rpcproto.StatusErr
		}
	}

	if cap(w.statuses) < n {
		w.statuses = make([]rpcproto.Status, n)
	}
	sts := w.statuses[:n]
	for i := range resps {
		sts[i] = resps[i].Status
		// Marshal from resps[i].Value, not vals[i]: a failed item must
		// contribute no bytes even though its slot buffer holds old data.
		vals[i] = resps[i].Value
	}
	sc.conn.Send(t, rpcproto.AppendBatchRespFrame(rpcproto.GetBuf(), w.batchID, sts, vals))
	sc.lat.Record(t.Now() - arrived)
}

// sendError reports a request-level failure as an ErrorFrame.
func (s *Server) sendError(t runtime.Task, sc *serverConn, e *rpcproto.ErrorFrame) {
	sc.conn.Send(t, rpcproto.AppendErrorFrame(rpcproto.GetBuf(), e))
}

// closeConn retires one connection: deregister, close the transport, and
// stop the worker pool. Stop sentinels queue behind any still-admitted
// work, so a close racing queued requests lets them finish their
// bookkeeping first. Task or scheduler context.
func (s *Server) closeConn(sc *serverConn) {
	if sc.closed {
		return
	}
	sc.closed = true
	delete(s.conns, sc)
	s.o.connsNow.Set(int64(len(s.conns)))
	sc.conn.Close()
	for i := 0; i < sc.workers; i++ {
		sc.workQ.Put(workerStop{})
	}
	sc.workers = 0
}

// Close starts a graceful drain and returns immediately: listeners stop
// accepting, in-flight requests complete and flush, idle connections
// close now and busy ones close as their last response lands. Safe from
// any goroutine; idempotent. On the wallclock backend, Env.Wait() returns
// once the drain (and everything else) has finished.
func (s *Server) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	s.env.After(0, s.drain)
	return nil
}

// drain runs in scheduler context.
func (s *Server) drain() {
	s.draining = true
	for _, l := range s.listeners {
		l.Close()
	}
	for sc := range s.conns {
		if sc.inflight == 0 {
			s.closeConn(sc)
		}
	}
}

// NumPartitions returns how many engine partitions the server routes over.
func (s *Server) NumPartitions() int { return len(s.handles) }
