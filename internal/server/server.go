// Package server is LEED's request front-end: the piece that turns an
// engine full of partitions into a network service. It owns what `leedctl
// serve` used to hard-code — partition routing, admission, execution,
// response generation, drain — behind the transport seam, so the same
// server stack serves a goroutine client over an in-process queue pair and
// a separate process over a TCP socket (§3.5, §3.8.1's client-visible
// surface).
//
// Request path: a frame arrives on a transport.Conn, is decoded, routed by
// consistent hash over the engine's partitions (the same ring placement
// internal/cluster uses, so a one-process server and a multi-JBOF
// deployment agree on where any key lives), admitted through a
// per-connection pipeline window plus the engine's per-partition tokens,
// executed, and answered with a response frame carrying the partition's
// remaining tokens (§3.5's piggybacked flow control). Requests on one
// connection pipeline freely: each runs as its own task, so responses
// return in completion order and the client matches them by ID.
//
// Shutdown is a graceful drain: new connections are refused, requests
// already in flight complete and their responses flush, late requests on
// open connections are answered with an ErrorFrame (StatusNack) rather
// than silently dropped, and every connection then closes.
package server

import (
	"fmt"
	"sync/atomic"

	"leed/internal/cluster"
	"leed/internal/core"
	"leed/internal/engine"
	"leed/internal/obs"
	"leed/internal/rpcproto"
	"leed/internal/runtime"
	"leed/internal/transport"
)

// Config describes one server.
type Config struct {
	Env    runtime.Env
	Engine *engine.Engine

	// VPartitions is the number of virtual partitions keys hash onto before
	// the ring maps them to engine partitions; it is the unit of future
	// rebalancing, so it should exceed the partition count. Default 64.
	VPartitions int
	// MaxInflightPerConn bounds how many requests from one connection may
	// be executing at once: the pipeline admission window. A connection
	// that fills its window is simply not read from until a slot frees —
	// TCP backpressure does the rest. Default 64.
	MaxInflightPerConn int64
	// MaxInflightTotal bounds requests executing across ALL connections:
	// the overload-shedding line. Past it the server answers with an
	// explicit OverloadFrame NACK instead of queueing — the request
	// provably never executed, so the client may safely retry anything,
	// even a PUT, after the frame's backoff hint. 0 disables (per-conn
	// windows remain the only admission).
	MaxInflightTotal int64
	// OverloadRetryHint is the backoff hint carried in overload NACKs.
	// Default 1ms.
	OverloadRetryHint runtime.Time
	// IdleTimeout reaps connections that have had no request in flight or
	// arriving for this long. This is the server-policy layer of idle
	// reaping; the transport's TCPOptions.ReadIdleTimeout is the socket
	// layer that also catches peers that vanished mid-frame. 0 disables.
	IdleTimeout runtime.Time

	// Obs and Tracer bind the server to a metrics registry and the request
	// tracer. Both optional.
	Obs    *obs.Registry
	Tracer *obs.Tracer
	// SamplePeriod is the queue-depth sampling cadence. Default 10ms.
	SamplePeriod runtime.Time

	// testHook, when set (tests only — unexported, so only this package can
	// install it), runs at the top of every handled request; a hook that
	// panics exercises the handler's panic isolation.
	testHook func(*rpcproto.Request)
}

// Server serves rpcproto frames from transport listeners against an engine.
type Server struct {
	cfg     Config
	env     runtime.Env
	handles []engine.Handle
	ring    *cluster.Ring

	// State below is mutated only in task or scheduler context: the
	// execution contract is the lock.
	listeners     []transport.Listener
	conns         map[*serverConn]struct{}
	draining      bool
	inflightTotal int64

	// closed makes Close idempotent and callable from any goroutine (a
	// signal handler, a test's raw goroutine).
	closed atomic.Bool

	o *srvObs
}

// serverConn is the server side of one accepted connection.
type serverConn struct {
	conn       transport.Conn
	pipe       runtime.Resource // pipeline admission window
	inflight   int              // requests executing right now
	closed     bool
	lastActive runtime.Time // last request arrival, for idle reaping
	lat        *obs.Hist
}

type srvObs struct {
	reg       *obs.Registry
	requests  map[rpcproto.Op]*obs.Counter
	errors    *obs.Counter
	badFrame  *obs.Counter
	refused   *obs.Counter
	overloads *obs.Counter
	panics    *obs.Counter
	reaped    *obs.Counter
	connsNow  *obs.Gauge
	connsTot  *obs.Counter
	inflight  *obs.Gauge
	partLat   []*obs.Hist
	depth     []*obs.Gauge
}

func newSrvObs(reg *obs.Registry, nparts int) *srvObs {
	o := &srvObs{
		reg:       reg,
		requests:  make(map[rpcproto.Op]*obs.Counter),
		errors:    reg.Counter("leed_server_errors_total"),
		badFrame:  reg.Counter("leed_server_bad_frames_total"),
		refused:   reg.Counter("leed_server_refused_total"),
		overloads: reg.Counter("leed_server_overloads_total"),
		panics:    reg.Counter("leed_server_panics_total"),
		reaped:    reg.Counter("leed_server_reaped_total"),
		connsNow:  reg.Gauge("leed_server_conns"),
		connsTot:  reg.Counter("leed_server_conns_total"),
		inflight:  reg.Gauge("leed_server_inflight"),
	}
	for _, op := range []rpcproto.Op{rpcproto.OpGet, rpcproto.OpPut, rpcproto.OpDel} {
		o.requests[op] = reg.Counter("leed_server_requests_total", "op", op.String())
	}
	for pid := 0; pid < nparts; pid++ {
		l := []string{"partition", fmt.Sprintf("%d", pid)}
		o.partLat = append(o.partLat, reg.Hist("leed_server_partition_latency_ns", l...))
		o.depth = append(o.depth, reg.Gauge("leed_server_queue_depth", l...))
	}
	return o
}

// New builds a server over the engine's partitions. The engine should
// already be recovered/started; the server does not own its lifecycle.
func New(cfg Config) *Server {
	if cfg.VPartitions == 0 {
		cfg.VPartitions = 64
	}
	if cfg.MaxInflightPerConn == 0 {
		cfg.MaxInflightPerConn = 64
	}
	if cfg.SamplePeriod == 0 {
		cfg.SamplePeriod = 10 * runtime.Millisecond
	}
	if cfg.OverloadRetryHint == 0 {
		cfg.OverloadRetryHint = runtime.Millisecond
	}
	handles := cfg.Engine.Handles()
	members := make([]cluster.NodeID, len(handles))
	for i := range handles {
		members[i] = cluster.NodeID(i)
	}
	s := &Server{
		cfg:     cfg,
		env:     cfg.Env,
		handles: handles,
		ring:    cluster.NewRing(members),
		conns:   make(map[*serverConn]struct{}),
		o:       newSrvObs(cfg.Obs, len(handles)),
	}
	if cfg.Obs != nil {
		s.env.Spawn("server-sampler", s.sample)
	}
	if cfg.IdleTimeout > 0 {
		s.env.Spawn("server-reaper", s.reap)
	}
	return s
}

// route maps a key to the engine partition that owns it: key hash →
// virtual partition → ring walk. Deterministic across processes and
// transports.
func (s *Server) route(key []byte) int {
	vp := cluster.PartitionOf(core.HashKey(key), s.cfg.VPartitions)
	return int(s.ring.OwnerOf(vp))
}

// sample periodically publishes per-partition waiting-queue depths; it
// exits once the server drains.
func (s *Server) sample(t runtime.Task) {
	for !s.draining {
		t.Sleep(s.cfg.SamplePeriod)
		for pid, h := range s.handles {
			s.o.depth[pid].Set(int64(h.WaitingDepth()))
		}
	}
}

// reap closes connections that have sat idle past Config.IdleTimeout: no
// request executing and none arrived recently. Closing wakes the conn's
// reader with ErrClosed, which deregisters it; a request racing the reaper
// at the transport layer loses the connection, which is exactly what the
// same request would see against a ReadIdleTimeout — clients own retry.
func (s *Server) reap(t runtime.Task) {
	period := s.cfg.IdleTimeout / 4
	if period <= 0 {
		period = runtime.Millisecond
	}
	for !s.draining {
		t.Sleep(period)
		now := t.Now()
		for sc := range s.conns {
			if sc.inflight == 0 && now-sc.lastActive > s.cfg.IdleTimeout {
				s.o.reaped.Inc()
				s.closeConn(sc)
			}
		}
	}
}

// Serve mounts the server on a listener and returns immediately; accepted
// connections are served until the listener fails or the server drains.
// A server may Serve any number of listeners (e.g. inproc and TCP at
// once). Safe to call from any goroutine.
func (s *Server) Serve(l transport.Listener) {
	s.env.Spawn("server-accept", func(t runtime.Task) {
		if s.draining {
			l.Close()
			return
		}
		s.listeners = append(s.listeners, l)
		for {
			c, err := l.Accept(t)
			if err != nil {
				return
			}
			if s.draining {
				c.Close()
				continue
			}
			s.startConn(t, c)
		}
	})
}

// startConn registers one accepted connection and spawns its reader. Task
// context.
func (s *Server) startConn(t runtime.Task, c transport.Conn) {
	sc := &serverConn{
		conn:       c,
		pipe:       s.env.MakeResource(s.cfg.MaxInflightPerConn),
		lastActive: t.Now(),
		lat:        s.cfg.Obs.Hist("leed_server_conn_latency_ns", "conn", c.String()),
	}
	s.conns[sc] = struct{}{}
	s.o.connsTot.Inc()
	s.o.connsNow.Set(int64(len(s.conns)))
	s.env.Spawn("server-conn", func(t runtime.Task) { s.serveConn(t, sc) })
}

// serveConn is one connection's reader loop: decode, admit, dispatch.
func (s *Server) serveConn(t runtime.Task, sc *serverConn) {
	for {
		frame, err := sc.conn.Recv(t)
		if err != nil {
			break
		}
		arrived := t.Now()
		sc.lastActive = arrived
		kind, payload, _, err := rpcproto.DecodeFrame(frame)
		if err != nil || kind != rpcproto.FrameRequest {
			// Undecodable bytes poison the stream — there is no resync
			// point past a bad frame. Report and hang up.
			s.o.badFrame.Inc()
			s.sendError(t, sc, &rpcproto.ErrorFrame{Code: rpcproto.StatusErr, Msg: "undecodable frame"})
			break
		}
		req, _, err := rpcproto.DecodeRequest(payload)
		if err != nil {
			s.o.badFrame.Inc()
			s.sendError(t, sc, &rpcproto.ErrorFrame{Code: rpcproto.StatusErr, Msg: "undecodable request"})
			break
		}
		// Pipeline admission: block the reader (and thus the stream) while
		// the connection's window is full.
		sc.pipe.Acquire(t, 1)
		if s.draining {
			// The drain completes requests that were in flight when it
			// began; this one arrived after. Refuse it explicitly.
			sc.pipe.Release(1)
			s.o.refused.Inc()
			s.sendError(t, sc, &rpcproto.ErrorFrame{ID: req.ID, Code: rpcproto.StatusNack, Msg: "server draining"})
			continue
		}
		if s.cfg.MaxInflightTotal > 0 && s.inflightTotal >= s.cfg.MaxInflightTotal {
			// Overload shedding: the global execution budget is spent, so
			// NACK immediately instead of queueing. The per-conn window slot
			// is returned — this reader keeps draining its stream (a shed
			// request must not wedge the connection behind it).
			sc.pipe.Release(1)
			s.o.overloads.Inc()
			sc.conn.Send(t, rpcproto.AppendOverloadFrame(nil, &rpcproto.OverloadFrame{
				ID:           req.ID,
				Tokens:       int32(s.handles[s.route(req.Key)].AvailableTokens()),
				RetryAfterNS: int64(s.cfg.OverloadRetryHint),
			}))
			continue
		}
		sc.inflight++
		s.inflightTotal++
		s.o.inflight.Add(1)
		s.env.Spawn("server-req", func(q runtime.Task) {
			// Admission bookkeeping must survive a panicking handler, so it
			// is deferred; the recover below it (LIFO: runs first) keeps one
			// poisoned request from killing the whole process.
			defer func() {
				sc.pipe.Release(1)
				sc.inflight--
				s.inflightTotal--
				s.o.inflight.Add(-1)
				if s.draining && sc.inflight == 0 {
					s.closeConn(sc)
				}
			}()
			defer func() {
				if r := recover(); r != nil {
					// The request died mid-execution; its effects on the
					// engine are unknown, so answer with an ErrorFrame the
					// retry policy treats as ambiguous (no blind PUT retry)
					// and hang up — per-conn state is no longer trusted.
					s.o.panics.Inc()
					s.sendError(q, sc,
						&rpcproto.ErrorFrame{ID: req.ID, Code: rpcproto.StatusErr,
							Msg: fmt.Sprintf("panic in handler: %v", r)})
					s.closeConn(sc)
				}
			}()
			s.handle(q, sc, req, arrived)
		})
	}
	// Reader exit: if the drain hasn't already retired the connection,
	// in-flight requests may still be executing — leave the conn to them
	// (their completions will find draining set if a drain is on), but
	// deregister an idle one.
	if !sc.closed && sc.inflight == 0 {
		s.closeConn(sc)
	}
}

// handle executes one request and sends its response. Task context.
func (s *Server) handle(t runtime.Task, sc *serverConn, req *rpcproto.Request, arrived runtime.Time) {
	tr := s.cfg.Tracer.Begin(req.Op.String(), arrived)
	// The node span: dispatch wait (admission window) vs everything the
	// server itself does around engine execution.
	dispatched := t.Now()
	if s.cfg.testHook != nil {
		s.cfg.testHook(req)
	}

	resp := &rpcproto.Response{ID: req.ID, Epoch: req.Epoch}
	var pid int
	switch req.Op {
	case rpcproto.OpGet, rpcproto.OpPut, rpcproto.OpDel:
		pid = s.route(req.Key)
		val, _, err := s.handles[pid].ExecuteTraced(t, req.Op, req.Key, req.Value, tr)
		switch {
		case err == core.ErrNotFound:
			resp.Status = rpcproto.StatusNotFound
		case err != nil:
			s.o.errors.Inc()
			resp.Status = rpcproto.StatusErr
		default:
			resp.Status = rpcproto.StatusOK
			resp.Value = val
		}
		resp.Tokens = int32(s.handles[pid].AvailableTokens())
		s.o.requests[req.Op].Inc()
	default:
		s.o.errors.Inc()
		resp.Status = rpcproto.StatusErr
	}

	done := t.Now()
	sc.conn.Send(t, rpcproto.AppendResponseFrame(nil, resp))
	tr.Span("node", dispatched-arrived, t.Now()-done)
	s.cfg.Tracer.End(tr)
	sc.lat.Record(t.Now() - arrived)
	if pid < len(s.o.partLat) {
		s.o.partLat[pid].Record(t.Now() - arrived)
	}
}

// sendError reports a request-level failure as an ErrorFrame.
func (s *Server) sendError(t runtime.Task, sc *serverConn, e *rpcproto.ErrorFrame) {
	sc.conn.Send(t, rpcproto.AppendErrorFrame(nil, e))
}

// closeConn retires one connection. Task or scheduler context.
func (s *Server) closeConn(sc *serverConn) {
	if sc.closed {
		return
	}
	sc.closed = true
	delete(s.conns, sc)
	s.o.connsNow.Set(int64(len(s.conns)))
	sc.conn.Close()
}

// Close starts a graceful drain and returns immediately: listeners stop
// accepting, in-flight requests complete and flush, idle connections
// close now and busy ones close as their last response lands. Safe from
// any goroutine; idempotent. On the wallclock backend, Env.Wait() returns
// once the drain (and everything else) has finished.
func (s *Server) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	s.env.After(0, s.drain)
	return nil
}

// drain runs in scheduler context.
func (s *Server) drain() {
	s.draining = true
	for _, l := range s.listeners {
		l.Close()
	}
	for sc := range s.conns {
		if sc.inflight == 0 {
			s.closeConn(sc)
		}
	}
}

// NumPartitions returns how many engine partitions the server routes over.
func (s *Server) NumPartitions() int { return len(s.handles) }
