package server

import "leed/internal/rpcproto"

// SetTestHook installs a per-request hook on cfg (tests only); a hook that
// panics exercises the handler's panic isolation.
func SetTestHook(cfg *Config, hook func(*rpcproto.Request)) { cfg.testHook = hook }
