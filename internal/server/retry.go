package server

import (
	"errors"
	"math/rand"

	"leed/internal/core"
	"leed/internal/obs"
	"leed/internal/rpcproto"
	"leed/internal/runtime"
	"leed/internal/transport"
)

// ErrBreakerOpen reports a call refused locally because the endpoint's
// circuit breaker is open: recent consecutive failures crossed the
// threshold, so the client fails fast instead of feeding a dead or drowning
// server more work. The request was never sent — retrying anything is safe
// once the breaker lets traffic through again.
var ErrBreakerOpen = errors.New("client: circuit breaker open")

// errStaleEpoch guards against a response crossing a reconnect boundary:
// the response echoes the connection epoch its request carried, and a
// mismatch means it answers a request from a previous connection's life.
var errStaleEpoch = errors.New("client: response from stale connection epoch")

// ReliableConfig describes a ReliableClient.
type ReliableConfig struct {
	Env runtime.Env
	// Dial establishes one transport connection; called from task context
	// on first use and on every reconnect.
	Dial func(t runtime.Task) (transport.Conn, error)
	// Depth is the pipeline window per connection (Client depth).
	Depth int64

	// Deadline bounds each attempt's wait (slot + round trip). Default 2s.
	Deadline runtime.Time
	// MaxAttempts bounds tries per call, first included. Default 4.
	MaxAttempts int
	// BackoffBase/BackoffCap shape the exponential backoff between
	// attempts: attempt n sleeps ~base<<(n-1), jittered to [d/2, d],
	// clamped to cap. Defaults 10ms / 500ms.
	BackoffBase runtime.Time
	BackoffCap  runtime.Time
	// Seed drives the jitter; fixed seed = reproducible schedule.
	Seed int64

	// BreakerThreshold is how many consecutive failures open the circuit
	// breaker. Default 5. BreakerCooloff is how long it stays open before
	// letting a single half-open probe through. Default 1s.
	BreakerThreshold int
	BreakerCooloff   runtime.Time

	// ChainFwd frames every request as FrameChainFwd peer traffic instead
	// of a client FrameRequest. Cluster nodes set it on the per-peer
	// clients that carry hop-to-hop chain forwards; plain KV servers refuse
	// the peer kind, handler-mode servers accept it.
	ChainFwd bool

	// Obs and Tracer are optional.
	Obs    *obs.Registry
	Tracer *obs.Tracer
}

// Breaker states, exported via the leed_breaker_state gauge.
const (
	breakerClosed   = 0
	breakerOpen     = 1
	breakerHalfOpen = 2
)

// ReliableClient wraps the pipelined Client with the client half of the
// fault-tolerant RPC path: per-request deadlines, transparent reconnect
// with seeded exponential backoff, an idempotency-aware retry policy, and a
// half-open circuit breaker. All state is mutated only in task context —
// the execution contract is the lock — so any number of issuer tasks may
// share one ReliableClient.
//
// The retry policy is the load-bearing part. An error is retried only when
// doing so cannot apply a write twice:
//
//   - OverloadFrame NACK and drain NACK (ErrorFrame/StatusNack): the server
//     explicitly rejected before execution — ANY op retries safely.
//   - Dial failure, breaker fast-fail: the request never left this process
//     — any op retries safely.
//   - Deadline expiry, connection death after send: the server may or may
//     not have executed the request. GET retries (idempotent); PUT/DEL do
//     not — the ambiguity surfaces to the caller, who owns the
//     read-back-or-reissue decision (the chaos drills track exactly this
//     as dup-risk).
type ReliableClient struct {
	cfg ReliableConfig
	env runtime.Env
	rng *rand.Rand

	cl         *Client
	epoch      uint64        // bumped per successful (re)connect; rides req.Epoch
	connecting runtime.Event // non-nil while a dial is in flight: single-flight gate

	// Circuit breaker.
	bstate   int
	bfails   int
	bopened  runtime.Time
	bprobing bool

	o relObs
	s ReliableStats
}

// ReliableStats counts what the reliability layer did.
type ReliableStats struct {
	Attempts   int64 // attempts issued (first tries included)
	Retries    int64 // attempts beyond the first
	Timeouts   int64 // attempts that hit the per-request deadline
	Overloads  int64 // overload NACKs received
	Reconnects int64 // successful dials after the first
	FastFails  int64 // calls refused by an open breaker
}

type relObs struct {
	retries    *obs.Counter
	timeouts   *obs.Counter
	overloads  *obs.Counter
	reconnects *obs.Counter
	fastFails  *obs.Counter
	state      *obs.Gauge
}

// NewReliableClient builds the client; no connection is made until the
// first call.
func NewReliableClient(cfg ReliableConfig) *ReliableClient {
	if cfg.Deadline == 0 {
		cfg.Deadline = 2 * runtime.Second
	}
	if cfg.MaxAttempts == 0 {
		cfg.MaxAttempts = 4
	}
	if cfg.BackoffBase == 0 {
		cfg.BackoffBase = 10 * runtime.Millisecond
	}
	if cfg.BackoffCap == 0 {
		cfg.BackoffCap = 500 * runtime.Millisecond
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = 5
	}
	if cfg.BreakerCooloff == 0 {
		cfg.BreakerCooloff = runtime.Second
	}
	rc := &ReliableClient{
		cfg: cfg,
		env: cfg.Env,
		rng: rand.New(rand.NewSource(cfg.Seed)),
		o: relObs{
			retries:    cfg.Obs.Counter("leed_client_retries_total"),
			timeouts:   cfg.Obs.Counter("leed_client_timeouts_total"),
			overloads:  cfg.Obs.Counter("leed_client_overloads_total"),
			reconnects: cfg.Obs.Counter("leed_client_reconnects_total"),
			fastFails:  cfg.Obs.Counter("leed_client_breaker_fastfails_total"),
			state:      cfg.Obs.Gauge("leed_breaker_state"),
		},
	}
	return rc
}

// retrySafe reports whether err may be retried for op without risking a
// duplicate write. See the type comment for the matrix.
func retrySafe(op rpcproto.Op, err error) bool {
	var of *rpcproto.OverloadFrame
	if errors.As(err, &of) {
		return true // admission rejected before execution
	}
	var ef *rpcproto.ErrorFrame
	if errors.As(err, &ef) {
		return ef.Code == rpcproto.StatusNack // drain/view NACK: not executed
	}
	if errors.Is(err, errStaleEpoch) {
		return op == rpcproto.OpGet // stale answer, outcome unknown
	}
	// Everything else — deadline, connection death, transport teardown —
	// is ambiguous: the request may have executed. Only idempotent ops go
	// again.
	return op == rpcproto.OpGet
}

// Do issues req with deadlines, retries, and reconnects per the config.
// Task context. Do owns req.Epoch: it stamps the connection epoch into it
// and rejects responses whose echo mismatches (a reply crossing a reconnect
// boundary). Callers that carry a cluster view epoch in req.Epoch must use
// DoView instead.
func (rc *ReliableClient) Do(t runtime.Task, req *rpcproto.Request) (*rpcproto.Response, error) {
	return rc.do(t, req, true)
}

// DoView issues req like Do but leaves req.Epoch untouched: the field
// carries the caller's cluster view epoch end to end (nodes validate it and
// NACK with their newer epoch on mismatch, §3.8.1), so the connection-epoch
// stamp and stale-echo check are skipped. Cross-reconnect confusion is
// already impossible at this layer — each reconnect builds a fresh pipelined
// Client with its own ID demux. Task context.
func (rc *ReliableClient) DoView(t runtime.Task, req *rpcproto.Request) (*rpcproto.Response, error) {
	return rc.do(t, req, false)
}

func (rc *ReliableClient) do(t runtime.Task, req *rpcproto.Request, stampEpoch bool) (*rpcproto.Response, error) {
	var lastErr error
	var hint runtime.Time
	for attempt := 1; attempt <= rc.cfg.MaxAttempts; attempt++ {
		if attempt > 1 {
			rc.s.Retries++
			rc.o.retries.Inc()
			t.Sleep(rc.backoff(attempt, hint))
			hint = 0
		}
		rc.s.Attempts++
		if err := rc.breakerAllow(t); err != nil {
			// Fail fast — no backoff loop against a breaker that will not
			// close for a while; surface immediately.
			return nil, err
		}
		cl, epoch, err := rc.ensureConn(t)
		if err != nil {
			rc.breakerRecord(t, false)
			lastErr = err
			continue // dial failed: nothing sent, always safe to retry
		}
		if stampEpoch {
			req.Epoch = epoch
		}
		resp, err := cl.DoDeadline(t, req, rc.cfg.Deadline)
		if err == nil {
			if stampEpoch && resp.Epoch != epoch {
				lastErr = errStaleEpoch
				if !retrySafe(req.Op, lastErr) {
					return nil, lastErr
				}
				continue
			}
			rc.breakerRecord(t, true)
			return resp, nil
		}
		lastErr = err
		rc.classifyFailure(t, cl, err, &hint)
		// The breaker tracks endpoint health, not admission pushback: a
		// NACK is a complete round trip from a live server, so it counts
		// as contact, while dial failures, deadlines, and connection
		// deaths count toward opening.
		rc.breakerRecord(t, isNack(err))
		if !retrySafe(req.Op, err) {
			return nil, err
		}
	}
	return nil, lastErr
}

// WriteNotExecuted reports whether err, returned from a failed Put or Del,
// proves the write never executed: breaker fast-fails happen before
// anything is sent, and NACK frames are explicit pre-execution rejections.
// Drivers use this to distinguish "definitely didn't happen" from
// "ambiguous — the key's state is now unknown". Conservative: a dial
// failure surfaced after exhausted attempts reads as ambiguous even though
// nothing was sent, because its error type is indistinguishable from a
// mid-request connection death.
func WriteNotExecuted(err error) bool {
	if errors.Is(err, ErrBreakerOpen) {
		return true
	}
	return retrySafe(rpcproto.OpPut, err)
}

// isNack reports whether err is a server-issued rejection frame — proof of
// a live, responding endpoint.
func isNack(err error) bool {
	var of *rpcproto.OverloadFrame
	var ef *rpcproto.ErrorFrame
	return errors.As(err, &of) || errors.As(err, &ef)
}

// classifyFailure counts the failure and decides the connection's fate:
// deadline expiries and transport errors drop the connection (the next
// attempt redials — a deadline on a healthy-looking conn is how a
// partition presents); server NACKs keep it (the server answered, the
// connection is fine).
func (rc *ReliableClient) classifyFailure(t runtime.Task, cl *Client, err error, hint *runtime.Time) {
	var of *rpcproto.OverloadFrame
	if errors.As(err, &of) {
		rc.s.Overloads++
		rc.o.overloads.Inc()
		*hint = runtime.Time(of.RetryAfterNS)
		return
	}
	var ef *rpcproto.ErrorFrame
	if errors.As(err, &ef) {
		return
	}
	if errors.Is(err, ErrDeadlineExceeded) {
		rc.s.Timeouts++
		rc.o.timeouts.Inc()
	}
	rc.dropConn(cl)
}

// backoff returns the jittered exponential delay before the given attempt
// (attempt >= 2), at least the server's overload hint when one was given.
func (rc *ReliableClient) backoff(attempt int, hint runtime.Time) runtime.Time {
	d := rc.cfg.BackoffBase << uint(attempt-2)
	if d > rc.cfg.BackoffCap || d <= 0 {
		d = rc.cfg.BackoffCap
	}
	if hint > d {
		d = hint
	}
	return d/2 + runtime.Time(rc.rng.Int63n(int64(d/2)+1))
}

// ensureConn returns a healthy client, dialing (single-flight) if the
// current one is dead or absent. Task context.
func (rc *ReliableClient) ensureConn(t runtime.Task) (*Client, uint64, error) {
	for {
		if rc.cl != nil && rc.cl.Err() == nil {
			return rc.cl, rc.epoch, nil
		}
		if rc.connecting != nil {
			// Another task is dialing; piggyback on its outcome rather than
			// racing it with a second dial.
			t.Wait(rc.connecting)
			continue
		}
		if rc.cl != nil {
			rc.dropConn(rc.cl)
		}
		ev := rc.env.MakeEvent()
		rc.connecting = ev
		conn, err := rc.cfg.Dial(t)
		rc.connecting = nil
		if err != nil {
			ev.Fire(nil)
			return nil, 0, err
		}
		rc.epoch++
		if rc.epoch > 1 {
			rc.s.Reconnects++
			rc.o.reconnects.Inc()
		}
		rc.cl = NewClientTraced(rc.env, conn, rc.cfg.Depth, rc.cfg.Tracer)
		rc.cl.SetChainFwd(rc.cfg.ChainFwd)
		ev.Fire(nil)
		return rc.cl, rc.epoch, nil
	}
}

// dropConn retires a dead connection so the next attempt redials.
func (rc *ReliableClient) dropConn(cl *Client) {
	if rc.cl == cl {
		rc.cl = nil
	}
	cl.Close()
}

// breakerAllow gates one attempt through the circuit breaker.
func (rc *ReliableClient) breakerAllow(t runtime.Task) error {
	switch rc.bstate {
	case breakerClosed:
		return nil
	case breakerOpen:
		if t.Now()-rc.bopened < rc.cfg.BreakerCooloff {
			rc.s.FastFails++
			rc.o.fastFails.Inc()
			return ErrBreakerOpen
		}
		// Cooled off: half-open, admit this attempt as the probe.
		rc.bstate = breakerHalfOpen
		rc.bprobing = true
		rc.o.state.Set(breakerHalfOpen)
		return nil
	default: // half-open
		if rc.bprobing {
			rc.s.FastFails++
			rc.o.fastFails.Inc()
			return ErrBreakerOpen // one probe at a time
		}
		rc.bprobing = true
		return nil
	}
}

// breakerRecord feeds one attempt's outcome back into the breaker.
func (rc *ReliableClient) breakerRecord(t runtime.Task, ok bool) {
	rc.bprobing = false
	if ok {
		rc.bfails = 0
		if rc.bstate != breakerClosed {
			rc.bstate = breakerClosed
			rc.o.state.Set(breakerClosed)
		}
		return
	}
	rc.bfails++
	if rc.bstate == breakerHalfOpen || rc.bfails >= rc.cfg.BreakerThreshold {
		rc.bstate = breakerOpen
		rc.bopened = t.Now()
		rc.o.state.Set(breakerOpen)
	}
}

// BreakerState reports the current breaker state (0 closed, 1 open, 2
// half-open). Task context.
func (rc *ReliableClient) BreakerState() int { return rc.bstate }

// Stats snapshots the reliability counters. Task context.
func (rc *ReliableClient) Stats() ReliableStats { return rc.s }

// Get fetches key, retrying freely (GET is idempotent). A missing key is
// core.ErrNotFound.
func (rc *ReliableClient) Get(t runtime.Task, key []byte) ([]byte, error) {
	resp, err := rc.Do(t, &rpcproto.Request{Op: rpcproto.OpGet, Key: key})
	if err != nil {
		return nil, err
	}
	switch resp.Status {
	case rpcproto.StatusOK:
		return resp.Value, nil
	case rpcproto.StatusNotFound:
		return nil, core.ErrNotFound
	}
	return nil, errStatus("GET", resp.Status)
}

// Put stores key=val, retrying only failures that provably precede
// execution; an ambiguous failure (deadline, dead connection) is returned
// to the caller.
func (rc *ReliableClient) Put(t runtime.Task, key, val []byte) error {
	resp, err := rc.Do(t, &rpcproto.Request{Op: rpcproto.OpPut, Key: key, Value: val})
	if err != nil {
		return err
	}
	if resp.Status != rpcproto.StatusOK {
		return errStatus("PUT", resp.Status)
	}
	return nil
}

// Del removes key under the same write-retry policy as Put. Deleting a
// missing key is core.ErrNotFound.
func (rc *ReliableClient) Del(t runtime.Task, key []byte) error {
	resp, err := rc.Do(t, &rpcproto.Request{Op: rpcproto.OpDel, Key: key})
	if err != nil {
		return err
	}
	switch resp.Status {
	case rpcproto.StatusOK:
		return nil
	case rpcproto.StatusNotFound:
		return core.ErrNotFound
	}
	return errStatus("DEL", resp.Status)
}

// Close tears down the current connection, if any. Task context.
func (rc *ReliableClient) Close() error {
	if rc.cl != nil {
		rc.dropConn(rc.cl)
	}
	return nil
}

type statusError struct {
	op     string
	status rpcproto.Status
}

func (e *statusError) Error() string { return "client: " + e.op + " " + e.status.String() }

func errStatus(op string, st rpcproto.Status) error { return &statusError{op: op, status: st} }
