package server_test

import (
	"testing"

	"leed/internal/bench"
	"leed/internal/rpcproto"
)

// The serve-path allocation benchmarks: the full stack (client, inproc
// transport, rpcproto, server, engine, store, in-memory device with sync
// reads) measured end to end. CI runs these with -benchmem and separately
// enforces the GET allocs/op budget via `leedctl hotpath`, which shares
// bench.BenchServe; see DESIGN.md §13 for the budget and the pooling
// contract behind it.

func BenchmarkServeGet(b *testing.B) { bench.BenchServe(b, rpcproto.OpGet) }

func BenchmarkServePut(b *testing.B) { bench.BenchServe(b, rpcproto.OpPut) }
