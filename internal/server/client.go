package server

import (
	"fmt"

	"leed/internal/core"
	"leed/internal/obs"
	"leed/internal/rpcproto"
	"leed/internal/runtime"
	"leed/internal/transport"
)

// Client is a pipelined KV client over one transport.Conn. Up to depth
// requests are outstanding at once; a dedicated receiver task matches
// responses (which arrive in completion order, not issue order) back to
// their callers by request ID. All state is mutated only in task context,
// so the execution contract is the lock.
type Client struct {
	env  runtime.Env
	conn transport.Conn
	pipe runtime.Resource

	nextID  uint64
	pending map[uint64]runtime.Event
	err     error // sticky; set when the connection dies

	// tr, when set, attributes each call's pipeline-slot wait to the
	// "client" stage and its wire round-trip to the "net" stage — the
	// client-side half of the paper-style attribution table; the server
	// owns node/engine/cpu/ssd/device.
	tr *obs.Tracer
}

// NewClient wraps an established connection. depth bounds outstanding
// requests (the pipeline window); 0 means 16. Call from task context or
// before the environment starts running tasks.
func NewClient(env runtime.Env, conn transport.Conn, depth int64) *Client {
	return NewClientTraced(env, conn, depth, nil)
}

// NewClientTraced is NewClient with per-call stage attribution into tr.
func NewClientTraced(env runtime.Env, conn transport.Conn, depth int64, tr *obs.Tracer) *Client {
	if depth <= 0 {
		depth = 16
	}
	c := &Client{
		tr:      tr,
		env:     env,
		conn:    conn,
		pipe:    env.MakeResource(depth),
		pending: make(map[uint64]runtime.Event),
	}
	env.Spawn("client-recv", c.recvLoop)
	return c
}

// recvLoop demultiplexes inbound frames to waiting callers.
func (c *Client) recvLoop(t runtime.Task) {
	for {
		frame, err := c.conn.Recv(t)
		if err != nil {
			c.fail(err)
			return
		}
		kind, payload, _, err := rpcproto.DecodeFrame(frame)
		if err != nil {
			c.fail(fmt.Errorf("client: bad frame from server: %w", err))
			c.conn.Close()
			return
		}
		switch kind {
		case rpcproto.FrameResponse:
			resp, _, err := rpcproto.DecodeResponse(payload)
			if err != nil {
				c.fail(fmt.Errorf("client: bad response: %w", err))
				c.conn.Close()
				return
			}
			c.complete(resp.ID, resp)
		case rpcproto.FrameError:
			ef, _, err := rpcproto.DecodeError(payload)
			if err != nil {
				c.fail(fmt.Errorf("client: bad error frame: %w", err))
				c.conn.Close()
				return
			}
			if ef.ID == 0 {
				// The server could not attribute the failure to a request:
				// the stream is poisoned.
				c.fail(ef)
				c.conn.Close()
				return
			}
			c.complete(ef.ID, ef)
		}
	}
}

// complete hands v (a *rpcproto.Response or an error) to the caller
// waiting on id. Unknown ids are ignored (a late response after fail).
func (c *Client) complete(id uint64, v any) {
	if ev, ok := c.pending[id]; ok {
		delete(c.pending, id)
		ev.Fire(v)
	}
}

// fail poisons the client: every waiter and all future calls see err.
func (c *Client) fail(err error) {
	if c.err == nil {
		c.err = err
	}
	for id, ev := range c.pending {
		delete(c.pending, id)
		ev.Fire(c.err)
	}
}

// Do sends one request and blocks until its response arrives. The
// request's ID is assigned by the client. A *rpcproto.ErrorFrame from the
// server is returned as the error.
func (c *Client) Do(t runtime.Task, req *rpcproto.Request) (*rpcproto.Response, error) {
	t0 := t.Now()
	c.pipe.Acquire(t, 1)
	defer c.pipe.Release(1)
	if c.err != nil {
		return nil, c.err
	}
	c.nextID++
	req.ID = c.nextID
	ev := c.env.MakeEvent()
	c.pending[req.ID] = ev
	sent := t.Now()
	if err := c.conn.Send(t, rpcproto.AppendRequestFrame(nil, req)); err != nil {
		delete(c.pending, req.ID)
		return nil, err
	}
	if c.tr != nil {
		defer func() {
			c.tr.Observe("client", sent-t0, 0)
			c.tr.Observe("net", 0, t.Now()-sent)
		}()
	}
	switch v := t.Wait(ev).(type) {
	case *rpcproto.Response:
		return v, nil
	case error:
		return nil, v
	}
	return nil, transport.ErrClosed
}

// Get fetches key. A missing key is core.ErrNotFound.
func (c *Client) Get(t runtime.Task, key []byte) ([]byte, error) {
	resp, err := c.Do(t, &rpcproto.Request{Op: rpcproto.OpGet, Key: key})
	if err != nil {
		return nil, err
	}
	switch resp.Status {
	case rpcproto.StatusOK:
		return resp.Value, nil
	case rpcproto.StatusNotFound:
		return nil, core.ErrNotFound
	}
	return nil, fmt.Errorf("client: GET %s", resp.Status)
}

// Put stores key=val.
func (c *Client) Put(t runtime.Task, key, val []byte) error {
	resp, err := c.Do(t, &rpcproto.Request{Op: rpcproto.OpPut, Key: key, Value: val})
	if err != nil {
		return err
	}
	if resp.Status != rpcproto.StatusOK {
		return fmt.Errorf("client: PUT %s", resp.Status)
	}
	return nil
}

// Del removes key. Deleting a missing key is core.ErrNotFound.
func (c *Client) Del(t runtime.Task, key []byte) error {
	resp, err := c.Do(t, &rpcproto.Request{Op: rpcproto.OpDel, Key: key})
	if err != nil {
		return err
	}
	switch resp.Status {
	case rpcproto.StatusOK:
		return nil
	case rpcproto.StatusNotFound:
		return core.ErrNotFound
	}
	return fmt.Errorf("client: DEL %s", resp.Status)
}

// Close tears the connection down; outstanding calls fail with ErrClosed
// once the receiver drains. Follow the conn's Close context rules.
func (c *Client) Close() error { return c.conn.Close() }
