package server

import (
	"errors"
	"fmt"

	"leed/internal/core"
	"leed/internal/obs"
	"leed/internal/rpcproto"
	"leed/internal/runtime"
	"leed/internal/transport"
)

// ErrDeadlineExceeded reports a request that outlived its caller-imposed
// deadline. The request may still execute on the server — the deadline
// bounds the caller's wait, not the server's work — so the outcome is
// ambiguous and the retry policy must not blindly reissue writes.
var ErrDeadlineExceeded = errors.New("client: request deadline exceeded")

// Client is a pipelined KV client over one transport.Conn. Up to depth
// requests are outstanding at once; a dedicated receiver task matches
// responses (which arrive in completion order, not issue order) back to
// their callers by request ID. All state is mutated only in task context,
// so the execution contract is the lock.
type Client struct {
	env  runtime.Env
	conn transport.Conn
	pipe runtime.Resource

	nextID  uint64
	pending map[uint64]runtime.Event
	err     error // sticky; set when the connection dies

	// tr, when set, attributes each call's pipeline-slot wait to the
	// "client" stage and its wire round-trip to the "net" stage — the
	// client-side half of the paper-style attribution table; the server
	// owns node/engine/cpu/ssd/device.
	tr *obs.Tracer
}

// NewClient wraps an established connection. depth bounds outstanding
// requests (the pipeline window); 0 means 16. Call from task context or
// before the environment starts running tasks.
func NewClient(env runtime.Env, conn transport.Conn, depth int64) *Client {
	return NewClientTraced(env, conn, depth, nil)
}

// NewClientTraced is NewClient with per-call stage attribution into tr.
func NewClientTraced(env runtime.Env, conn transport.Conn, depth int64, tr *obs.Tracer) *Client {
	if depth <= 0 {
		depth = 16
	}
	c := &Client{
		tr:      tr,
		env:     env,
		conn:    conn,
		pipe:    env.MakeResource(depth),
		pending: make(map[uint64]runtime.Event),
	}
	env.Spawn("client-recv", c.recvLoop)
	return c
}

// recvLoop demultiplexes inbound frames to waiting callers.
func (c *Client) recvLoop(t runtime.Task) {
	for {
		frame, err := c.conn.Recv(t)
		if err != nil {
			c.fail(err)
			return
		}
		kind, payload, _, err := rpcproto.DecodeFrame(frame)
		if err != nil {
			c.fail(fmt.Errorf("client: bad frame from server: %w", err))
			c.conn.Close()
			return
		}
		switch kind {
		case rpcproto.FrameResponse:
			resp, _, err := rpcproto.DecodeResponse(payload)
			if err != nil {
				c.fail(fmt.Errorf("client: bad response: %w", err))
				c.conn.Close()
				return
			}
			c.complete(resp.ID, resp)
		case rpcproto.FrameError:
			ef, _, err := rpcproto.DecodeError(payload)
			if err != nil {
				c.fail(fmt.Errorf("client: bad error frame: %w", err))
				c.conn.Close()
				return
			}
			if ef.ID == 0 {
				// The server could not attribute the failure to a request:
				// the stream is poisoned.
				c.fail(ef)
				c.conn.Close()
				return
			}
			c.complete(ef.ID, ef)
		case rpcproto.FrameOverload:
			of, _, err := rpcproto.DecodeOverload(payload)
			if err != nil {
				c.fail(fmt.Errorf("client: bad overload frame: %w", err))
				c.conn.Close()
				return
			}
			c.complete(of.ID, of)
		}
	}
}

// complete hands v (a *rpcproto.Response or an error) to the caller
// waiting on id. Unknown ids are ignored (a late response after fail).
func (c *Client) complete(id uint64, v any) {
	if ev, ok := c.pending[id]; ok {
		delete(c.pending, id)
		ev.Fire(v)
	}
}

// fail poisons the client: every waiter and all future calls see err.
func (c *Client) fail(err error) {
	if c.err == nil {
		c.err = err
	}
	for id, ev := range c.pending {
		delete(c.pending, id)
		ev.Fire(c.err)
	}
}

// Do sends one request and blocks until its response arrives. The
// request's ID is assigned by the client. A *rpcproto.ErrorFrame or
// *rpcproto.OverloadFrame from the server is returned as the error.
func (c *Client) Do(t runtime.Task, req *rpcproto.Request) (*rpcproto.Response, error) {
	return c.DoDeadline(t, req, 0)
}

// DoDeadline is Do with a per-request deadline (0 = wait forever). The
// deadline covers the wait for a pipeline slot plus the round trip; when it
// expires the call returns ErrDeadlineExceeded, the request's ID is
// forgotten, and the response — should it arrive later — is discarded by
// the receiver's unknown-ID path rather than delivered to a caller that has
// moved on. The server may still have executed the request: a deadline
// bounds the caller's wait, not the remote work, so the outcome is
// ambiguous (see ErrDeadlineExceeded).
func (c *Client) DoDeadline(t runtime.Task, req *rpcproto.Request, d runtime.Time) (*rpcproto.Response, error) {
	t0 := t.Now()
	var timer runtime.Event
	var cancelTimer func()
	if d > 0 {
		timer, cancelTimer = runtime.CancelableTimer(c.env, d)
		defer cancelTimer()
	}
	c.pipe.Acquire(t, 1)
	defer c.pipe.Release(1)
	if c.err != nil {
		return nil, c.err
	}
	if timer != nil && timer.Fired() {
		// The deadline burned away while queued for a pipeline slot; the
		// request was never sent, so this failure is unambiguous.
		return nil, ErrDeadlineExceeded
	}
	c.nextID++
	req.ID = c.nextID
	ev := c.env.MakeEvent()
	c.pending[req.ID] = ev
	sent := t.Now()
	if err := c.conn.Send(t, rpcproto.AppendRequestFrame(nil, req)); err != nil {
		delete(c.pending, req.ID)
		return nil, err
	}
	if c.tr != nil {
		defer func() {
			c.tr.Observe("client", sent-t0, 0)
			c.tr.Observe("net", 0, t.Now()-sent)
		}()
	}
	var v any
	if timer != nil {
		if runtime.WaitAny(t, ev, timer) != 0 && !ev.Fired() {
			delete(c.pending, req.ID)
			return nil, ErrDeadlineExceeded
		}
		v = ev.Value()
	} else {
		v = t.Wait(ev)
	}
	switch v := v.(type) {
	case *rpcproto.Response:
		return v, nil
	case error:
		return nil, v
	}
	return nil, transport.ErrClosed
}

// Get fetches key. A missing key is core.ErrNotFound.
func (c *Client) Get(t runtime.Task, key []byte) ([]byte, error) {
	resp, err := c.Do(t, &rpcproto.Request{Op: rpcproto.OpGet, Key: key})
	if err != nil {
		return nil, err
	}
	switch resp.Status {
	case rpcproto.StatusOK:
		return resp.Value, nil
	case rpcproto.StatusNotFound:
		return nil, core.ErrNotFound
	}
	return nil, fmt.Errorf("client: GET %s", resp.Status)
}

// Put stores key=val.
func (c *Client) Put(t runtime.Task, key, val []byte) error {
	resp, err := c.Do(t, &rpcproto.Request{Op: rpcproto.OpPut, Key: key, Value: val})
	if err != nil {
		return err
	}
	if resp.Status != rpcproto.StatusOK {
		return fmt.Errorf("client: PUT %s", resp.Status)
	}
	return nil
}

// Del removes key. Deleting a missing key is core.ErrNotFound.
func (c *Client) Del(t runtime.Task, key []byte) error {
	resp, err := c.Do(t, &rpcproto.Request{Op: rpcproto.OpDel, Key: key})
	if err != nil {
		return err
	}
	switch resp.Status {
	case rpcproto.StatusOK:
		return nil
	case rpcproto.StatusNotFound:
		return core.ErrNotFound
	}
	return fmt.Errorf("client: DEL %s", resp.Status)
}

// Err reports the sticky connection error: nil while the connection is
// healthy, the terminal failure after it dies. Task context (the execution
// contract is the lock).
func (c *Client) Err() error { return c.err }

// Close tears the connection down; outstanding calls fail with ErrClosed
// once the receiver drains. Follow the conn's Close context rules.
func (c *Client) Close() error { return c.conn.Close() }
