package server

import (
	"errors"
	"fmt"

	"leed/internal/core"
	"leed/internal/obs"
	"leed/internal/rpcproto"
	"leed/internal/runtime"
	"leed/internal/transport"
)

// ErrDeadlineExceeded reports a request that outlived its caller-imposed
// deadline. The request may still execute on the server — the deadline
// bounds the caller's wait, not the server's work — so the outcome is
// ambiguous and the retry policy must not blindly reissue writes.
var ErrDeadlineExceeded = errors.New("client: request deadline exceeded")

// call is one in-flight request's state, pooled on the client. The receive
// loop delivers the response frame into the call (resp/items alias frame),
// and the calling task consumes and releases it — single owner at every
// step. The steady-state path (GetInto/Put/Del) waits on the task's
// reusable Prepare/Park ticket; only the deadline path pays for an Event.
type call struct {
	id   uint64
	tk   runtime.Ticket // park-path wakeup; nil when ev is used
	ev   runtime.Event  // deadline-path wakeup; nil on the hot path
	done bool
	err  error

	frame []byte                   // borrowed response frame
	resp  rpcproto.Response        // single-op result; Value aliases frame
	items []rpcproto.BatchRespItem // batch result; Values alias frame

	// spans is the call-owned buffer behind resp.Spans: piggybacked spans
	// are copied out of the shared decode scratch at delivery (the scratch
	// is clobbered by the next inbound frame, which may land before this
	// call's owner consumes the response). Capacity survives recycling.
	spans []rpcproto.PSpan

	req rpcproto.Request // request scratch, avoids an escaping literal per op
}

// Client is a pipelined KV client over one transport.Conn. Up to depth
// requests are outstanding at once; a dedicated receiver task matches
// responses (which arrive in completion order, not issue order) back to
// their callers by request ID. All state is mutated only in task context,
// so the execution contract is the lock.
type Client struct {
	env  runtime.Env
	conn transport.Conn
	pipe runtime.Resource

	nextID  uint64
	pending map[uint64]*call
	free    []*call
	scratch rpcproto.Response // recv-loop decode scratch, moved into a call
	err     error             // sticky; set when the connection dies

	// tr, when set, attributes each call's pipeline-slot wait to the
	// "client" stage and its wire round-trip to the "net" stage — the
	// client-side half of the paper-style attribution table; the server
	// owns node/engine/cpu/ssd/device.
	tr *obs.Tracer

	// chainFwd frames single-op requests as FrameChainFwd peer traffic
	// instead of FrameRequest. See SetChainFwd.
	chainFwd bool
}

// SetChainFwd makes every single-op request leave as a FrameChainFwd peer
// frame instead of a client FrameRequest: same payload bytes, the peer
// discriminator. Cluster nodes set it on the connections that carry
// hop-to-hop chain forwards — servers accept the peer kind only when a
// Handler is installed. Set it right after construction, from task context.
func (c *Client) SetChainFwd(on bool) { c.chainFwd = on }

// appendReqFrame frames one single-op request under the client's kind.
func (c *Client) appendReqFrame(dst []byte, r *rpcproto.Request) []byte {
	if c.chainFwd {
		return rpcproto.AppendChainFwdFrame(dst, r)
	}
	return rpcproto.AppendRequestFrame(dst, r)
}

// NewClient wraps an established connection. depth bounds outstanding
// requests (the pipeline window); 0 means 16. Call from task context or
// before the environment starts running tasks.
func NewClient(env runtime.Env, conn transport.Conn, depth int64) *Client {
	return NewClientTraced(env, conn, depth, nil)
}

// NewClientTraced is NewClient with per-call stage attribution into tr.
func NewClientTraced(env runtime.Env, conn transport.Conn, depth int64, tr *obs.Tracer) *Client {
	if depth <= 0 {
		depth = 16
	}
	c := &Client{
		tr:      tr,
		env:     env,
		conn:    conn,
		pipe:    env.MakeResource(depth),
		pending: make(map[uint64]*call),
	}
	env.Spawn("client-recv", c.recvLoop)
	return c
}

func (c *Client) getCall() *call {
	if n := len(c.free); n > 0 {
		cl := c.free[n-1]
		c.free[n-1] = nil
		c.free = c.free[:n-1]
		return cl
	}
	return &call{}
}

func (c *Client) putCall(cl *call) {
	cl.tk, cl.ev = nil, nil
	cl.done = false
	cl.err = nil
	cl.frame = nil
	cl.resp = rpcproto.Response{}
	cl.spans = cl.spans[:0]
	cl.req = rpcproto.Request{}
	for i := range cl.items {
		cl.items[i] = rpcproto.BatchRespItem{}
	}
	cl.items = cl.items[:0]
	if len(c.free) < 64 {
		c.free = append(c.free, cl)
	}
}

// release returns the call's borrowed frame to the pool and recycles the
// call. After release the call's resp/items must not be touched.
func (c *Client) release(cl *call) {
	if cl.frame != nil {
		rpcproto.PutBuf(cl.frame)
		cl.frame = nil
	}
	c.putCall(cl)
}

// recvLoop demultiplexes inbound frames to waiting callers. Response and
// batch-response frames are handed to the owning call still borrowed (no
// copy); error and overload frames are decoded here and their frames
// released immediately.
func (c *Client) recvLoop(t runtime.Task) {
	for {
		frame, err := c.conn.Recv(t)
		if err != nil {
			c.fail(err)
			return
		}
		kind, payload, _, err := rpcproto.DecodeFrame(frame)
		if err != nil {
			rpcproto.PutBuf(frame)
			c.fail(fmt.Errorf("client: bad frame from server: %w", err))
			c.conn.Close()
			return
		}
		switch kind {
		case rpcproto.FrameResponse:
			if _, err := c.scratch.DecodeBorrow(payload); err != nil {
				rpcproto.PutBuf(frame)
				c.fail(fmt.Errorf("client: bad response: %w", err))
				c.conn.Close()
				return
			}
			cl, ok := c.pending[c.scratch.ID]
			if !ok {
				rpcproto.PutBuf(frame) // late response after a deadline; drop
				continue
			}
			delete(c.pending, cl.id)
			cl.resp = c.scratch
			if len(c.scratch.Spans) > 0 {
				// Move the piggybacked spans into the call's own buffer: the
				// scratch's span slice is reused by the next decode, which
				// may run before this call's owner reads the response.
				cl.spans = append(cl.spans[:0], c.scratch.Spans...)
			}
			cl.resp.Spans = cl.spans
			cl.frame = frame
			c.deliver(cl)
		case rpcproto.FrameBatchResp:
			id, err := rpcproto.BatchID(payload)
			if err != nil {
				rpcproto.PutBuf(frame)
				c.fail(fmt.Errorf("client: bad batch response: %w", err))
				c.conn.Close()
				return
			}
			cl, ok := c.pending[id]
			if !ok {
				rpcproto.PutBuf(frame)
				continue
			}
			_, items, derr := rpcproto.DecodeBatchResp(payload, cl.items[:0])
			if derr != nil {
				rpcproto.PutBuf(frame)
				c.fail(fmt.Errorf("client: bad batch response: %w", derr))
				c.conn.Close()
				return
			}
			delete(c.pending, id)
			cl.items = items
			cl.frame = frame
			c.deliver(cl)
		case rpcproto.FrameError:
			ef, _, err := rpcproto.DecodeError(payload)
			rpcproto.PutBuf(frame)
			if err != nil {
				c.fail(fmt.Errorf("client: bad error frame: %w", err))
				c.conn.Close()
				return
			}
			if ef.ID == 0 {
				// The server could not attribute the failure to a request:
				// the stream is poisoned.
				c.fail(ef)
				c.conn.Close()
				return
			}
			c.completeErr(ef.ID, ef)
		case rpcproto.FrameOverload:
			of, _, err := rpcproto.DecodeOverload(payload)
			rpcproto.PutBuf(frame)
			if err != nil {
				c.fail(fmt.Errorf("client: bad overload frame: %w", err))
				c.conn.Close()
				return
			}
			c.completeErr(of.ID, of)
		default:
			rpcproto.PutBuf(frame)
		}
	}
}

// deliver wakes the caller waiting on cl. The call (and its borrowed
// frame) now belongs to that caller.
func (c *Client) deliver(cl *call) {
	cl.done = true
	if cl.ev != nil {
		cl.ev.Fire(nil)
	} else if cl.tk != nil {
		cl.tk.Wake()
	}
	// A caller that has sent but not yet parked finds done already set.
}

// completeErr resolves the call waiting on id with err. Unknown ids are
// ignored (a late response after a deadline or fail).
func (c *Client) completeErr(id uint64, err error) {
	if cl, ok := c.pending[id]; ok {
		delete(c.pending, id)
		cl.err = err
		c.deliver(cl)
	}
}

// fail poisons the client: every waiter and all future calls see err.
func (c *Client) fail(err error) {
	if c.err == nil {
		c.err = err
	}
	for id, cl := range c.pending {
		delete(c.pending, id)
		cl.err = c.err
		c.deliver(cl)
	}
}

// await parks the task until the receiver delivers the call. Wakeups may
// be spurious, so it loops on the call's done flag.
func (c *Client) await(t runtime.Task, cl *call) {
	for !cl.done {
		cl.tk = t.Prepare()
		t.Park()
	}
	cl.tk = nil
}

// roundTrip runs one single-op request through admission, the wire, and
// the park-based wait. On success the returned call holds the borrowed
// response; the caller consumes it and must release it. On error the call
// has already been recycled.
func (c *Client) roundTrip(t runtime.Task, op rpcproto.Op, key, val []byte) (*call, error) {
	t0 := t.Now()
	c.pipe.Acquire(t, 1)
	defer c.pipe.Release(1)
	if c.err != nil {
		return nil, c.err
	}
	cl := c.getCall()
	c.nextID++
	cl.id = c.nextID
	cl.req = rpcproto.Request{ID: cl.id, Op: op, Key: key, Value: val}
	c.pending[cl.id] = cl
	sent := t.Now()
	if err := c.conn.Send(t, c.appendReqFrame(rpcproto.GetBuf(), &cl.req)); err != nil {
		delete(c.pending, cl.id)
		c.putCall(cl)
		return nil, err
	}
	c.await(t, cl)
	if c.tr != nil {
		c.tr.Observe("client", sent-t0, 0)
		c.tr.Observe("net", 0, t.Now()-sent)
	}
	if cl.err != nil {
		err := cl.err
		c.release(cl)
		return nil, err
	}
	return cl, nil
}

// Do sends one request and blocks until its response arrives. The
// request's ID is assigned by the client. A *rpcproto.ErrorFrame or
// *rpcproto.OverloadFrame from the server is returned as the error. The
// returned response owns its bytes (this is the copying, allocation-paying
// surface ReliableClient builds on; the typed helpers below are the
// allocation-free path).
func (c *Client) Do(t runtime.Task, req *rpcproto.Request) (*rpcproto.Response, error) {
	return c.DoDeadline(t, req, 0)
}

// DoDeadline is Do with a per-request deadline (0 = wait forever). The
// deadline covers the wait for a pipeline slot plus the round trip; when it
// expires the call returns ErrDeadlineExceeded, the request's ID is
// forgotten, and the response — should it arrive later — is discarded by
// the receiver's unknown-ID path rather than delivered to a caller that has
// moved on. The server may still have executed the request: a deadline
// bounds the caller's wait, not the remote work, so the outcome is
// ambiguous (see ErrDeadlineExceeded).
func (c *Client) DoDeadline(t runtime.Task, req *rpcproto.Request, d runtime.Time) (*rpcproto.Response, error) {
	t0 := t.Now()
	var timer runtime.Event
	var cancelTimer func()
	if d > 0 {
		timer, cancelTimer = runtime.CancelableTimer(c.env, d)
		defer cancelTimer()
	}
	c.pipe.Acquire(t, 1)
	defer c.pipe.Release(1)
	if c.err != nil {
		return nil, c.err
	}
	if timer != nil && timer.Fired() {
		// The deadline burned away while queued for a pipeline slot; the
		// request was never sent, so this failure is unambiguous.
		return nil, ErrDeadlineExceeded
	}
	cl := c.getCall()
	c.nextID++
	cl.id = c.nextID
	req.ID = cl.id
	cl.ev = c.env.MakeEvent()
	c.pending[cl.id] = cl
	sent := t.Now()
	if err := c.conn.Send(t, c.appendReqFrame(rpcproto.GetBuf(), req)); err != nil {
		delete(c.pending, cl.id)
		c.putCall(cl)
		return nil, err
	}
	if c.tr != nil {
		defer func() {
			c.tr.Observe("client", sent-t0, 0)
			c.tr.Observe("net", 0, t.Now()-sent)
		}()
	}
	if timer != nil {
		if runtime.WaitAny(t, cl.ev, timer) != 0 && !cl.ev.Fired() {
			delete(c.pending, cl.id)
			c.putCall(cl)
			return nil, ErrDeadlineExceeded
		}
	} else {
		t.Wait(cl.ev)
	}
	if cl.err != nil {
		err := cl.err
		c.release(cl)
		return nil, err
	}
	resp := &rpcproto.Response{
		ID:     cl.resp.ID,
		Status: cl.resp.Status,
		Tokens: cl.resp.Tokens,
		Epoch:  cl.resp.Epoch,
	}
	if len(cl.resp.Value) > 0 {
		resp.Value = append([]byte(nil), cl.resp.Value...)
	}
	if len(cl.resp.Spans) > 0 {
		resp.Spans = append([]rpcproto.PSpan(nil), cl.resp.Spans...)
	}
	c.release(cl)
	return resp, nil
}

// Get fetches key. A missing key is core.ErrNotFound. The returned value
// owns its bytes; use GetInto to reuse a buffer across calls.
func (c *Client) Get(t runtime.Task, key []byte) ([]byte, error) {
	return c.GetInto(t, key, nil)
}

// GetInto fetches key, appending the value to dst and returning the
// extended slice — the allocation-free read: with a reused dst of
// sufficient capacity, the whole round trip allocates nothing. A missing
// key is core.ErrNotFound.
func (c *Client) GetInto(t runtime.Task, key, dst []byte) ([]byte, error) {
	cl, err := c.roundTrip(t, rpcproto.OpGet, key, nil)
	if err != nil {
		return nil, err
	}
	st := cl.resp.Status
	if st == rpcproto.StatusOK {
		dst = append(dst, cl.resp.Value...)
		c.release(cl)
		return dst, nil
	}
	c.release(cl)
	if st == rpcproto.StatusNotFound {
		return nil, core.ErrNotFound
	}
	return nil, fmt.Errorf("client: GET %s", st)
}

// Put stores key=val.
func (c *Client) Put(t runtime.Task, key, val []byte) error {
	cl, err := c.roundTrip(t, rpcproto.OpPut, key, val)
	if err != nil {
		return err
	}
	st := cl.resp.Status
	c.release(cl)
	if st != rpcproto.StatusOK {
		return fmt.Errorf("client: PUT %s", st)
	}
	return nil
}

// Del removes key. Deleting a missing key is core.ErrNotFound.
func (c *Client) Del(t runtime.Task, key []byte) error {
	cl, err := c.roundTrip(t, rpcproto.OpDel, key, nil)
	if err != nil {
		return err
	}
	st := cl.resp.Status
	c.release(cl)
	switch st {
	case rpcproto.StatusOK:
		return nil
	case rpcproto.StatusNotFound:
		return core.ErrNotFound
	}
	return fmt.Errorf("client: DEL %s", st)
}

// doBatch runs one batch frame round trip and copies the per-item results
// into out (reused across calls; values own their bytes). The batch path
// trades a few per-batch allocations for amortizing framing and admission
// over the whole batch.
func (c *Client) doBatch(t runtime.Task, op rpcproto.Op, keys, vals [][]byte, out []rpcproto.BatchRespItem) ([]rpcproto.BatchRespItem, error) {
	out = out[:0]
	if len(keys) == 0 {
		return out, nil
	}
	if len(keys) > rpcproto.MaxBatchItems {
		return out, rpcproto.ErrBatchTooLarge
	}
	t0 := t.Now()
	c.pipe.Acquire(t, 1)
	defer c.pipe.Release(1)
	if c.err != nil {
		return out, c.err
	}
	cl := c.getCall()
	c.nextID++
	cl.id = c.nextID
	c.pending[cl.id] = cl
	sent := t.Now()
	if err := c.conn.Send(t, rpcproto.AppendBatchReqFrame(rpcproto.GetBuf(), cl.id, op, keys, vals)); err != nil {
		delete(c.pending, cl.id)
		c.putCall(cl)
		return out, err
	}
	c.await(t, cl)
	if c.tr != nil {
		c.tr.Observe("client", sent-t0, 0)
		c.tr.Observe("net", 0, t.Now()-sent)
	}
	if cl.err != nil {
		err := cl.err
		c.release(cl)
		return out, err
	}
	for _, it := range cl.items {
		ri := rpcproto.BatchRespItem{Status: it.Status}
		if len(it.Value) > 0 {
			ri.Value = append([]byte(nil), it.Value...)
		}
		out = append(out, ri)
	}
	c.release(cl)
	return out, nil
}

// MultiGet fetches many keys in one frame. The result has one item per
// key, in key order: StatusOK items carry the value, StatusNotFound items
// report a missing key. Pass a reused out slice to amortize the result
// across calls. The server executes the batch across partitions in
// parallel, so a MultiGet of n keys costs roughly one slow partition, not
// n round trips.
func (c *Client) MultiGet(t runtime.Task, keys [][]byte, out []rpcproto.BatchRespItem) ([]rpcproto.BatchRespItem, error) {
	return c.doBatch(t, rpcproto.OpGet, keys, nil, out)
}

// MultiPut stores many key=value pairs in one frame; vals[i] goes with
// keys[i]. The result has one item per key reporting that item's status.
func (c *Client) MultiPut(t runtime.Task, keys, vals [][]byte, out []rpcproto.BatchRespItem) ([]rpcproto.BatchRespItem, error) {
	return c.doBatch(t, rpcproto.OpPut, keys, vals, out)
}

// Err reports the sticky connection error: nil while the connection is
// healthy, the terminal failure after it dies. Task context (the execution
// contract is the lock).
func (c *Client) Err() error { return c.err }

// Close tears the connection down; outstanding calls fail with ErrClosed
// once the receiver drains. Follow the conn's Close context rules.
func (c *Client) Close() error { return c.conn.Close() }
