package server_test

import (
	"errors"
	"strings"
	"testing"

	"leed/internal/obs"
	"leed/internal/rpcproto"
	"leed/internal/runtime"
	"leed/internal/server"
	"leed/internal/sim"
	"leed/internal/transport"
)

// TestDeadlineLateResponseIgnored pins satellite behavior: a request that
// outlives its deadline returns ErrDeadlineExceeded, and when the server's
// response eventually lands it is silently discarded — not delivered to a
// later request, not a client poison. Sim kernel, so the timing is exact:
// the slow engine takes 20ms per read against a 5ms deadline.
func TestDeadlineLateResponseIgnored(t *testing.T) {
	k := sim.New()
	defer k.Close()
	eng := newTestEngine(k, true)
	srv := server.New(server.Config{Env: k, Engine: eng})
	inp := transport.NewInproc(k, transport.InprocOptions{})
	srv.Serve(inp)

	checked := false
	k.Go("client", func(p *sim.Proc) {
		conn, err := inp.Dial(p)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		cl := server.NewClient(k, conn, 8)
		if err := cl.Put(p, testKey(1), testVal(1)); err != nil {
			t.Errorf("seed put: %v", err)
			return
		}
		_, err = cl.DoDeadline(p, &rpcproto.Request{Op: rpcproto.OpGet, Key: testKey(1)},
			5*runtime.Millisecond)
		if !errors.Is(err, server.ErrDeadlineExceeded) {
			t.Errorf("fast deadline: want ErrDeadlineExceeded, got %v", err)
		}
		// Let the timed-out request's response arrive (service time 20ms)
		// and hit the receiver's unknown-ID path.
		p.Sleep(100 * runtime.Millisecond)
		// The client must still be fully usable, and the late response must
		// not have been delivered to anyone.
		v, err := cl.Get(p, testKey(1))
		if err != nil || string(v) != string(testVal(1)) {
			t.Errorf("get after late response: v=%q err=%v", v, err)
		}
		checked = true
		cl.Close()
		srv.Close()
	})
	k.Run()
	if !checked {
		t.Fatal("client never ran")
	}
}

// TestOverloadNack pins overload shedding: past MaxInflightTotal the server
// answers immediately with a typed OverloadFrame carrying a backoff hint,
// and the shed request never executes.
func TestOverloadNack(t *testing.T) {
	k := sim.New()
	defer k.Close()
	eng := newTestEngine(k, true)
	reg := obs.NewRegistry()
	srv := server.New(server.Config{
		Env: k, Engine: eng, Obs: reg, MaxInflightTotal: 1,
	})
	inp := transport.NewInproc(k, transport.InprocOptions{})
	srv.Serve(inp)

	checked := false
	k.Go("client", func(p *sim.Proc) {
		conn, err := inp.Dial(p)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		cl := server.NewClient(k, conn, 8)
		first := k.MakeEvent()
		k.Go("slow-put", func(q *sim.Proc) {
			defer first.Fire(nil)
			if err := cl.Put(q, testKey(1), testVal(1)); err != nil {
				t.Errorf("first put: %v", err)
			}
		})
		// Give the first PUT time to be admitted (service time 50ms), then
		// collide with the total-inflight cap.
		p.Sleep(5 * runtime.Millisecond)
		_, err = cl.Do(p, &rpcproto.Request{Op: rpcproto.OpPut, Key: testKey(2), Value: testVal(2)})
		var of *rpcproto.OverloadFrame
		if !errors.As(err, &of) {
			t.Errorf("second put: want *rpcproto.OverloadFrame, got %v", err)
		} else if of.RetryAfterNS <= 0 {
			t.Errorf("overload NACK missing backoff hint: %+v", of)
		}
		p.Wait(first)
		if got := reg.Counter("leed_server_overloads_total").Load(); got != 1 {
			t.Errorf("leed_server_overloads_total = %d, want 1", got)
		}
		checked = true
		cl.Close()
		srv.Close()
	})
	k.Run()
	if !checked {
		t.Fatal("client never ran")
	}
}

// TestPanicIsolation: a request whose handler panics is answered with an
// ErrorFrame and costs only its own connection — the server keeps serving
// other connections, and the panic is counted.
func TestPanicIsolation(t *testing.T) {
	k := sim.New()
	defer k.Close()
	eng := newTestEngine(k, false)
	reg := obs.NewRegistry()
	cfg := server.Config{Env: k, Engine: eng, Obs: reg}
	server.SetTestHook(&cfg, func(req *rpcproto.Request) {
		if string(req.Key) == "boom" {
			panic("injected handler panic")
		}
	})
	srv := server.New(cfg)
	inp := transport.NewInproc(k, transport.InprocOptions{})
	srv.Serve(inp)

	checked := false
	k.Go("client", func(p *sim.Proc) {
		conn, err := inp.Dial(p)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		cl := server.NewClient(k, conn, 8)
		if err := cl.Put(p, testKey(1), testVal(1)); err != nil {
			t.Errorf("pre-panic put: %v", err)
		}
		err = cl.Put(p, []byte("boom"), testVal(2))
		var ef *rpcproto.ErrorFrame
		if !errors.As(err, &ef) || ef.Code != rpcproto.StatusErr ||
			!strings.Contains(ef.Msg, "panic") {
			t.Errorf("panicked request: want ErrorFrame(StatusErr, panic...), got %v", err)
		}
		// The poisoned connection is closed by the server; a fresh one works.
		conn2, err := inp.Dial(p)
		if err != nil {
			t.Errorf("dial after panic: %v", err)
			return
		}
		cl2 := server.NewClient(k, conn2, 8)
		if v, err := cl2.Get(p, testKey(1)); err != nil || string(v) != string(testVal(1)) {
			t.Errorf("server state after panic: v=%q err=%v", v, err)
		}
		if got := reg.Counter("leed_server_panics_total").Load(); got != 1 {
			t.Errorf("leed_server_panics_total = %d, want 1", got)
		}
		checked = true
		cl.Close()
		cl2.Close()
		srv.Close()
	})
	k.Run()
	if !checked {
		t.Fatal("client never ran")
	}
}

// TestIdleReaping: a connection with no traffic for IdleTimeout is closed
// by the server and counted.
func TestIdleReaping(t *testing.T) {
	k := sim.New()
	defer k.Close()
	eng := newTestEngine(k, false)
	reg := obs.NewRegistry()
	srv := server.New(server.Config{
		Env: k, Engine: eng, Obs: reg, IdleTimeout: 30 * runtime.Millisecond,
	})
	inp := transport.NewInproc(k, transport.InprocOptions{})
	srv.Serve(inp)

	checked := false
	k.Go("client", func(p *sim.Proc) {
		conn, err := inp.Dial(p)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		cl := server.NewClient(k, conn, 8)
		if err := cl.Put(p, testKey(1), testVal(1)); err != nil {
			t.Errorf("put: %v", err)
		}
		p.Sleep(100 * runtime.Millisecond) // well past IdleTimeout
		if _, err := cl.Get(p, testKey(1)); err == nil {
			t.Errorf("get on reaped connection succeeded")
		}
		if got := reg.Counter("leed_server_reaped_total").Load(); got == 0 {
			t.Errorf("leed_server_reaped_total = 0, want >= 1")
		}
		checked = true
		srv.Close()
	})
	k.Run()
	if !checked {
		t.Fatal("client never ran")
	}
}

// TestReliableRetryOnOverload: overload NACKs are provably-safe failures,
// so the ReliableClient retries even PUTs through them; under a tiny
// MaxInflightTotal every write still lands.
func TestReliableRetryOnOverload(t *testing.T) {
	k := sim.New()
	defer k.Close()
	eng := newTestEngine(k, true)
	reg := obs.NewRegistry()
	srv := server.New(server.Config{
		Env: k, Engine: eng, Obs: reg, MaxInflightTotal: 1,
		OverloadRetryHint: 20 * runtime.Millisecond,
	})
	inp := transport.NewInproc(k, transport.InprocOptions{})
	srv.Serve(inp)

	rc := server.NewReliableClient(server.ReliableConfig{
		Env:  k,
		Dial: inp.Dial,
		Obs:  reg, Seed: 1,
		Depth: 8, MaxAttempts: 10,
		BackoffBase: 5 * runtime.Millisecond,
	})
	const writers = 4
	oks := 0
	evs := make([]runtime.Event, 0, writers)
	for w := 0; w < writers; w++ {
		w := w
		ev := k.MakeEvent()
		evs = append(evs, ev)
		k.Go("writer", func(p *sim.Proc) {
			defer ev.Fire(nil)
			if err := rc.Put(p, testKey(w), testVal(w)); err != nil {
				t.Errorf("put %d: %v", w, err)
				return
			}
			oks++
		})
	}
	k.Go("closer", func(p *sim.Proc) {
		runtime.WaitAll(p, evs...)
		st := rc.Stats()
		if st.Overloads == 0 || st.Retries == 0 {
			t.Errorf("expected overload NACKs and retries, got %+v", st)
		}
		if got := reg.Counter("leed_client_retries_total").Load(); got != st.Retries {
			t.Errorf("leed_client_retries_total = %d, stats say %d", got, st.Retries)
		}
		rc.Close()
		srv.Close()
	})
	k.Run()
	if oks != writers {
		t.Fatalf("%d of %d writes landed", oks, writers)
	}
}

// TestReliablePutAmbiguousNotRetried: a deadline expiry is ambiguous — the
// server may have executed the write — so a PUT must NOT be reissued; the
// error surfaces to the caller after exactly one attempt.
func TestReliablePutAmbiguousNotRetried(t *testing.T) {
	k := sim.New()
	defer k.Close()
	eng := newTestEngine(k, true) // 50ms writes
	srv := server.New(server.Config{Env: k, Engine: eng})
	inp := transport.NewInproc(k, transport.InprocOptions{})
	srv.Serve(inp)

	checked := false
	k.Go("client", func(p *sim.Proc) {
		rc := server.NewReliableClient(server.ReliableConfig{
			Env: k, Dial: inp.Dial, Seed: 1,
			Deadline: 5 * runtime.Millisecond, MaxAttempts: 4,
		})
		err := rc.Put(p, testKey(1), testVal(1))
		if !errors.Is(err, server.ErrDeadlineExceeded) {
			t.Errorf("ambiguous put: want ErrDeadlineExceeded, got %v", err)
		}
		st := rc.Stats()
		if st.Attempts != 1 || st.Retries != 0 {
			t.Errorf("ambiguous put was retried: %+v", st)
		}
		if st.Timeouts != 1 {
			t.Errorf("timeout not counted: %+v", st)
		}
		// A GET under the same deadline IS retried (idempotent).
		_, err = rc.Get(p, testKey(1))
		if !errors.Is(err, server.ErrDeadlineExceeded) {
			t.Errorf("get: want ErrDeadlineExceeded after exhausting retries, got %v", err)
		}
		if st2 := rc.Stats(); st2.Retries != 3 {
			t.Errorf("idempotent get retries = %d, want 3 (MaxAttempts-1)", st2.Retries)
		}
		checked = true
		rc.Close()
		srv.Close()
	})
	k.Run()
	if !checked {
		t.Fatal("client never ran")
	}
}

// TestReliableReconnect: a dead connection is replaced transparently — the
// next idempotent call redials and succeeds, and the reconnect is counted.
func TestReliableReconnect(t *testing.T) {
	k := sim.New()
	defer k.Close()
	eng := newTestEngine(k, false)
	srv := server.New(server.Config{Env: k, Engine: eng})
	inp := transport.NewInproc(k, transport.InprocOptions{})
	srv.Serve(inp)

	var conns []transport.Conn
	dial := func(t runtime.Task) (transport.Conn, error) {
		c, err := inp.Dial(t)
		if err == nil {
			conns = append(conns, c)
		}
		return c, err
	}
	checked := false
	k.Go("client", func(p *sim.Proc) {
		rc := server.NewReliableClient(server.ReliableConfig{
			Env: k, Dial: dial, Seed: 1,
			BackoffBase: runtime.Millisecond,
		})
		if err := rc.Put(p, testKey(1), testVal(1)); err != nil {
			t.Errorf("put: %v", err)
		}
		// Kill the connection under the client, as a crashed server would.
		conns[0].Close()
		p.Sleep(runtime.Millisecond) // let the receiver observe the death
		v, err := rc.Get(p, testKey(1))
		if err != nil || string(v) != string(testVal(1)) {
			t.Errorf("get after conn death: v=%q err=%v", v, err)
		}
		st := rc.Stats()
		if st.Reconnects != 1 || len(conns) != 2 {
			t.Errorf("reconnect not transparent: stats=%+v dials=%d", st, len(conns))
		}
		checked = true
		rc.Close()
		srv.Close()
	})
	k.Run()
	if !checked {
		t.Fatal("client never ran")
	}
}

// TestBreakerOpensAndRecovers walks the circuit breaker through its whole
// state machine: consecutive dial failures open it, an open breaker fails
// fast without touching the network, the cooloff admits a single half-open
// probe, and a probe success closes it again.
func TestBreakerOpensAndRecovers(t *testing.T) {
	k := sim.New()
	defer k.Close()
	eng := newTestEngine(k, false)
	srv := server.New(server.Config{Env: k, Engine: eng})
	inp := transport.NewInproc(k, transport.InprocOptions{})
	srv.Serve(inp)

	reg := obs.NewRegistry()
	down := true
	dials := 0
	dial := func(t runtime.Task) (transport.Conn, error) {
		dials++
		if down {
			return nil, errors.New("connection refused")
		}
		return inp.Dial(t)
	}
	checked := false
	k.Go("client", func(p *sim.Proc) {
		rc := server.NewReliableClient(server.ReliableConfig{
			Env: k, Dial: dial, Obs: reg, Seed: 1,
			MaxAttempts: 6, BackoffBase: runtime.Millisecond,
			BreakerThreshold: 3, BreakerCooloff: 50 * runtime.Millisecond,
		})
		// Three dial failures trip the breaker; the call then fails fast.
		if _, err := rc.Get(p, testKey(1)); !errors.Is(err, server.ErrBreakerOpen) {
			t.Errorf("get against downed server: want ErrBreakerOpen, got %v", err)
		}
		if dials != 3 {
			t.Errorf("dials before breaker opened = %d, want 3", dials)
		}
		if rc.BreakerState() != 1 {
			t.Errorf("breaker state = %d, want 1 (open)", rc.BreakerState())
		}
		if got := reg.Gauge("leed_breaker_state").Load(); got != 1 {
			t.Errorf("leed_breaker_state = %d, want 1", got)
		}
		// While open: instant fast-fail, no dial.
		before := dials
		if _, err := rc.Get(p, testKey(1)); !errors.Is(err, server.ErrBreakerOpen) {
			t.Errorf("open breaker: want ErrBreakerOpen, got %v", err)
		}
		if dials != before {
			t.Errorf("open breaker dialed anyway (%d -> %d)", before, dials)
		}
		// Past the cooloff with the server healthy again: the half-open
		// probe goes through and closes the breaker.
		down = false
		p.Sleep(60 * runtime.Millisecond)
		seedDone := k.MakeEvent()
		k.Go("seed", func(q *sim.Proc) {
			defer seedDone.Fire(nil)
			if err := rc.Put(q, testKey(1), testVal(1)); err != nil {
				t.Errorf("put after heal: %v", err)
			}
		})
		p.Wait(seedDone)
		if v, err := rc.Get(p, testKey(1)); err != nil || string(v) != string(testVal(1)) {
			t.Errorf("get after heal: v=%q err=%v", v, err)
		}
		if rc.BreakerState() != 0 {
			t.Errorf("breaker state after recovery = %d, want 0 (closed)", rc.BreakerState())
		}
		if st := rc.Stats(); st.FastFails == 0 {
			t.Errorf("fast-fails not counted: %+v", st)
		}
		checked = true
		rc.Close()
		srv.Close()
	})
	k.Run()
	if !checked {
		t.Fatal("client never ran")
	}
}
