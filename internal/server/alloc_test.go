package server_test

import (
	"testing"

	"leed/internal/bench"
	"leed/internal/core"
	"leed/internal/engine"
	"leed/internal/flashsim"
	"leed/internal/runtime"
	"leed/internal/runtime/wallclock"
	"leed/internal/server"
	"leed/internal/transport"
)

// TestServeGetAllocBudget pins the end-to-end per-request allocation budget
// at the unit-test level (the benchmark + `leedctl hotpath` CI gate measure
// the same path with more samples): a steady-state served GET over the
// inproc transport must stay within bench.GetAllocBudget allocations,
// counted across every goroutine involved — client, transport, server
// workers, engine, store, device.
func TestServeGetAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates on the serve path")
	}
	env := wallclock.New()
	const devCap = 8 << 20
	mk := func() flashsim.Device {
		d := flashsim.NewMemDevice(env, devCap)
		d.SetSyncReads(true)
		return d
	}
	eng := engine.New(engine.Config{
		Env:              env,
		Devices:          []flashsim.Device{mk(), mk()},
		PartitionsPerSSD: 2,
		Geometry:         core.PlanPartition(2<<20, 16, 256, core.PlanOpts{}),
		PartitionBytes:   2 << 20,
	})
	srv := server.New(server.Config{Env: env, Engine: eng})
	inp := transport.NewInproc(env, transport.InprocOptions{})
	srv.Serve(inp)

	env.Spawn("alloc-driver", func(p runtime.Task) {
		conn, err := inp.Dial(p)
		if err != nil {
			t.Errorf("dial: %v", err)
			srv.Close()
			return
		}
		cl := server.NewClient(env, conn, 16)
		defer func() {
			cl.Close()
			srv.Close()
		}()
		for i := 0; i < 8; i++ {
			if err := cl.Put(p, testKey(i), testVal(i)); err != nil {
				t.Errorf("put %d: %v", i, err)
				return
			}
		}
		dst := make([]byte, 0, 256)
		for i := 0; i < 500; i++ { // warm every pool and free list
			if dst, err = cl.GetInto(p, testKey(i%8), dst[:0]); err != nil {
				t.Errorf("warmup get: %v", err)
				return
			}
		}
		i := 0
		got := testing.AllocsPerRun(300, func() {
			var err error
			if dst, err = cl.GetInto(p, testKey(i%8), dst[:0]); err != nil {
				t.Errorf("get: %v", err)
			}
			i++
		})
		if got > bench.GetAllocBudget {
			t.Errorf("served GET = %.1f allocs/op, budget %d", got, bench.GetAllocBudget)
		}
	})
	env.Wait()
}
