package rpcproto

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRequestRoundTrip(t *testing.T) {
	r := &Request{
		ID: 12345, Op: OpPut, Tenant: 7, Partition: 42,
		Epoch: 99, Hop: 2, Shipped: true,
		Key: []byte("the-key"), Value: []byte("the-value"),
	}
	buf := EncodeRequest(nil, r)
	if int64(len(buf)) != r.WireSize() {
		t.Fatalf("encoded %d bytes, WireSize %d", len(buf), r.WireSize())
	}
	got, n, err := DecodeRequest(buf)
	if err != nil || n != len(buf) {
		t.Fatalf("decode: %v, n=%d", err, n)
	}
	if got.ID != r.ID || got.Op != r.Op || got.Tenant != r.Tenant ||
		got.Partition != r.Partition || got.Epoch != r.Epoch ||
		got.Hop != r.Hop || got.Shipped != r.Shipped ||
		!bytes.Equal(got.Key, r.Key) || !bytes.Equal(got.Value, r.Value) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	r := &Response{ID: 88, Status: StatusNack, Value: []byte("v"), Tokens: -3, Epoch: 5}
	buf := EncodeResponse(nil, r)
	if int64(len(buf)) != r.WireSize() {
		t.Fatalf("encoded %d, WireSize %d", len(buf), r.WireSize())
	}
	got, n, err := DecodeResponse(buf)
	if err != nil || n != len(buf) {
		t.Fatalf("decode: %v", err)
	}
	if got.ID != 88 || got.Status != StatusNack || string(got.Value) != "v" ||
		got.Tokens != -3 || got.Epoch != 5 {
		t.Fatalf("mismatch: %+v", got)
	}
}

func TestDecodeShortBuffers(t *testing.T) {
	r := &Request{ID: 1, Op: OpGet, Key: []byte("abc")}
	buf := EncodeRequest(nil, r)
	for i := 0; i < len(buf); i++ {
		if _, _, err := DecodeRequest(buf[:i]); err != ErrShortBuffer {
			t.Fatalf("prefix %d: err = %v", i, err)
		}
	}
	resp := &Response{ID: 1, Status: StatusOK, Value: []byte("xy")}
	rbuf := EncodeResponse(nil, resp)
	for i := 0; i < len(rbuf); i++ {
		if _, _, err := DecodeResponse(rbuf[:i]); err != ErrShortBuffer {
			t.Fatalf("resp prefix %d: err = %v", i, err)
		}
	}
}

func TestFramesConcatenate(t *testing.T) {
	var buf []byte
	reqs := []*Request{
		{ID: 1, Op: OpGet, Key: []byte("a")},
		{ID: 2, Op: OpPut, Key: []byte("bb"), Value: []byte("vv")},
		{ID: 3, Op: OpDel, Key: []byte("ccc")},
	}
	for _, r := range reqs {
		buf = EncodeRequest(buf, r)
	}
	for _, want := range reqs {
		got, n, err := DecodeRequest(buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.ID != want.ID || got.Op != want.Op || !bytes.Equal(got.Key, want.Key) {
			t.Fatalf("frame %d mismatch", want.ID)
		}
		buf = buf[n:]
	}
	if len(buf) != 0 {
		t.Fatalf("%d trailing bytes", len(buf))
	}
}

func TestRequestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := &Request{
			ID:        rng.Uint64(),
			Op:        Op(rng.Intn(6) + 1),
			Tenant:    uint16(rng.Intn(1 << 16)),
			Partition: rng.Uint32(),
			Epoch:     rng.Uint64(),
			Hop:       uint8(rng.Intn(8)),
			Shipped:   rng.Intn(2) == 1,
			Key:       make([]byte, rng.Intn(64)+1),
			Value:     make([]byte, rng.Intn(2048)),
		}
		rng.Read(r.Key)
		rng.Read(r.Value)
		if len(r.Value) == 0 {
			r.Value = nil
		}
		buf := EncodeRequest(nil, r)
		got, n, err := DecodeRequest(buf)
		if err != nil || n != len(buf) {
			return false
		}
		return got.ID == r.ID && got.Op == r.Op && got.Tenant == r.Tenant &&
			got.Partition == r.Partition && got.Epoch == r.Epoch &&
			got.Hop == r.Hop && got.Shipped == r.Shipped &&
			bytes.Equal(got.Key, r.Key) && bytes.Equal(got.Value, r.Value)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestOpAndStatusStrings(t *testing.T) {
	if OpGet.String() != "GET" || OpHeartbeat.String() != "HEARTBEAT" {
		t.Fatal("op strings")
	}
	if StatusNack.String() != "NACK" || Status(99).String() == "" {
		t.Fatal("status strings")
	}
	if Op(99).String() == "" {
		t.Fatal("unknown op string empty")
	}
}
