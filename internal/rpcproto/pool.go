package rpcproto

import "sync"

// Frame buffer pool. Every frame the hot path sends or receives is rented
// here and returned when its single owner is done with it (see the package
// comment for the ownership contract). A mutex-guarded free list instead of
// sync.Pool: Put of a []byte into a sync.Pool boxes the slice header (one
// allocation per return), which would defeat the point; pushing onto a
// retained [][]byte does not.
//
// The pool is best-effort. Losing a buffer (a frame dropped by a faulty
// fabric, an error path that forgets to release) leaks nothing — the buffer
// falls back to the garbage collector — and releasing a buffer that never
// came from the pool is fine. The only hard rule is single ownership:
// releasing the same buffer twice while someone still uses it corrupts
// whatever they were reading.

// maxPooledBuf bounds the capacity the pool retains. Oversized buffers
// (a huge value in flight) are dropped to the GC rather than pinning
// worst-case capacity forever.
const maxPooledBuf = 64 << 10

var framePool struct {
	mu   sync.Mutex
	free [][]byte
}

// GetBuf rents a zero-length buffer from the pool (allocating a fresh one
// when the pool is empty). Append into it, hand it off, and the final owner
// returns it with PutBuf.
func GetBuf() []byte {
	framePool.mu.Lock()
	if n := len(framePool.free); n > 0 {
		b := framePool.free[n-1]
		framePool.free[n-1] = nil
		framePool.free = framePool.free[:n-1]
		framePool.mu.Unlock()
		return b
	}
	framePool.mu.Unlock()
	return make([]byte, 0, 512)
}

// GetBufLen rents a buffer of length n (contents undefined). Used by stream
// readers that know the next frame's size up front.
func GetBufLen(n int) []byte {
	b := GetBuf()
	if cap(b) < n {
		PutBuf(b)
		return make([]byte, n)
	}
	return b[:n]
}

// PutBuf returns a buffer to the pool. Only the buffer's single owner may
// call this, exactly once; the buffer must not be touched afterwards.
// nil and oversized buffers are dropped.
func PutBuf(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledBuf {
		return
	}
	b = b[:0]
	framePool.mu.Lock()
	framePool.free = append(framePool.free, b)
	framePool.mu.Unlock()
}
