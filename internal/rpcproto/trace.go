package rpcproto

import "encoding/binary"

// Trace propagation on the wire. A traced request carries a compact trace
// context (identity + flags) so every process it touches can open child
// spans under the same trace; a response piggybacks the spans the remote
// side recorded (stage, hop, queue-wait, service time) so the issuing client
// can reassemble one end-to-end trace across process boundaries without a
// collector. Both sections are length-prefixed and version-tolerant: a v1
// decoder skips bytes a future version appends inside the declared length,
// and every length is validated before it sizes a loop or an index — the
// same hostile-input contract the rest of the package keeps.
//
// Wire layout:
//
//	trace context section: [1B len L][8B trace ID LE][1B trace flags]
//	                       L in [9, MaxTraceCtxLen]; bytes past the first 9
//	                       are ignored (future extension space).
//	span section:          [2B len L LE][1B count][count × 18B span]
//	                       each span: [1B stage][1B hop][8B queue ns][8B svc ns]
//	                       L counts the bytes after the length field; bytes
//	                       past the declared spans are ignored.
//
// Where the sections attach is the carrying frame's business: requests and
// batch requests flag the context in a header bit and append the section
// after their payload; responses flag the span section in the status byte.

// Trace-context flag bits (Request.TraceFlags).
const (
	// TraceSampled marks a trace whose whole-trace record is being kept;
	// nodes piggyback span summaries only for sampled traces, so the
	// steady-state response stays minimal.
	TraceSampled uint8 = 1 << 0
)

// Sampled reports whether the request carries a sampled trace context —
// the condition under which servers piggyback span summaries on the
// response.
func (r *Request) Sampled() bool {
	return r.TraceID != 0 && r.TraceFlags&TraceSampled != 0
}

const (
	// traceCtxV1Len is the canonical v1 context body length.
	traceCtxV1Len = 9
	// MaxTraceCtxLen bounds a context section body, leaving future versions
	// room to grow without breaking v1 decoders.
	MaxTraceCtxLen = 64
	// MaxPiggySpans bounds the spans one response may piggyback. A chain of
	// realistic depth produces well under ten; the cap keeps a hostile count
	// from provoking a long loop.
	MaxPiggySpans = 32
	// pspanSize is one encoded span summary.
	pspanSize = 1 + 1 + 8 + 8
	// spanSecHdr is the span section's length prefix plus count byte.
	spanSecHdr = 2 + 1
)

// StageID names one pipeline stage in a piggybacked span. The values are
// wire format; names match the obs tracer's stage strings.
type StageID uint8

// Pipeline stages, in attribution-table order.
const (
	StageClient StageID = iota + 1
	StageNet
	StageNode
	StageEngine
	StageCPU
	StageSSD
	StageDevice
	// StageFwd is the chain-forward hop: the time a node spent waiting on
	// its downstream replica beyond what that replica itself accounted for
	// (i.e. the node-to-node wire and scheduling cost).
	StageFwd
)

var stageNames = [...]string{
	StageClient: "client",
	StageNet:    "net",
	StageNode:   "node",
	StageEngine: "engine",
	StageCPU:    "cpu",
	StageSSD:    "ssd",
	StageDevice: "device",
	StageFwd:    "fwd",
}

// Name returns the obs stage string for s ("" for unknown IDs).
func (s StageID) Name() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return ""
}

// StageIDOf maps an obs stage string to its wire ID (0 when unknown —
// unknown stages are simply not piggybacked).
func StageIDOf(name string) StageID {
	for id, n := range stageNames {
		if n == name && n != "" {
			return StageID(id)
		}
	}
	return 0
}

// Nested reports whether the stage is a nested breakdown of another span
// (cpu, ssd, and device time all happen inside the engine span) rather than
// a disjoint segment of the request's wall-clock path. Attribution sums that
// want to add up to the end-to-end latency skip nested stages.
func (s StageID) Nested() bool {
	return s == StageCPU || s == StageSSD || s == StageDevice
}

// PSpan is one piggybacked span summary: what one stage on one chain hop
// cost, split into queue wait and service time like obs.Span.
type PSpan struct {
	Stage     StageID
	Hop       uint8
	QueueNS   int64
	ServiceNS int64
}

// DisjointTotalNS sums queue+service over the non-nested spans: the remote
// wall-clock time the span set accounts for. The issuer subtracts this from
// its measured round trip to attribute the remainder to the wire.
func DisjointTotalNS(spans []PSpan) int64 {
	var total int64
	for _, sp := range spans {
		if sp.Stage.Nested() {
			continue
		}
		total += sp.QueueNS + sp.ServiceNS
	}
	return total
}

// traceCtxWireSize is the encoded size of one canonical context section.
const traceCtxWireSize = 1 + traceCtxV1Len

// appendTraceCtx appends one canonical v1 trace-context section.
func appendTraceCtx(dst []byte, id uint64, flags uint8) []byte {
	var b [traceCtxWireSize]byte
	b[0] = traceCtxV1Len
	binary.LittleEndian.PutUint64(b[1:], id)
	b[9] = flags
	return append(dst, b[:]...)
}

// decodeTraceCtx parses one trace-context section at the head of src,
// returning the identity, flags, and bytes consumed. Bytes inside the
// declared length past the v1 fields are skipped (version tolerance).
func decodeTraceCtx(src []byte) (id uint64, flags uint8, n int, err error) {
	if len(src) < 1 {
		return 0, 0, 0, ErrShortBuffer
	}
	l := int(src[0])
	if l < traceCtxV1Len || l > MaxTraceCtxLen {
		return 0, 0, 0, ErrBadFrame
	}
	if len(src) < 1+l {
		return 0, 0, 0, ErrShortBuffer
	}
	id = binary.LittleEndian.Uint64(src[1:])
	flags = src[9]
	return id, flags, 1 + l, nil
}

// spansWireSize is the encoded size of a span section carrying n spans
// (after the encoder's MaxPiggySpans clamp).
func spansWireSize(n int) int {
	if n > MaxPiggySpans {
		n = MaxPiggySpans
	}
	return spanSecHdr + n*pspanSize
}

// appendSpans appends one canonical span section. Spans past MaxPiggySpans
// are dropped (oldest kept — the early hops are the ones the issuer cannot
// reconstruct any other way).
func appendSpans(dst []byte, spans []PSpan) []byte {
	n := len(spans)
	if n > MaxPiggySpans {
		n = MaxPiggySpans
	}
	var h [spanSecHdr]byte
	binary.LittleEndian.PutUint16(h[0:], uint16(1+n*pspanSize))
	h[2] = byte(n)
	dst = append(dst, h[:]...)
	for _, sp := range spans[:n] {
		var b [pspanSize]byte
		b[0] = byte(sp.Stage)
		b[1] = sp.Hop
		binary.LittleEndian.PutUint64(b[2:], uint64(sp.QueueNS))
		binary.LittleEndian.PutUint64(b[10:], uint64(sp.ServiceNS))
		dst = append(dst, b[:]...)
	}
	return dst
}

// decodeSpans parses one span section at the head of src, appending each
// span into spans (pass a reused spans[:0] for an allocation-free steady
// state). Returns the grown slice and bytes consumed. The count is validated
// against both MaxPiggySpans and the declared section length before the loop
// runs; bytes inside the section past the declared spans are skipped.
func decodeSpans(src []byte, spans []PSpan) (out []PSpan, n int, err error) {
	if len(src) < spanSecHdr {
		return spans, 0, ErrShortBuffer
	}
	l := int(binary.LittleEndian.Uint16(src[0:]))
	if l < 1 {
		return spans, 0, ErrBadFrame
	}
	if len(src) < 2+l {
		return spans, 0, ErrShortBuffer
	}
	cnt := int(src[2])
	if cnt > MaxPiggySpans || 1+cnt*pspanSize > l {
		return spans, 0, ErrBadFrame
	}
	off := spanSecHdr
	for i := 0; i < cnt; i++ {
		spans = append(spans, PSpan{
			Stage:     StageID(src[off]),
			Hop:       src[off+1],
			QueueNS:   int64(binary.LittleEndian.Uint64(src[off+2:])),
			ServiceNS: int64(binary.LittleEndian.Uint64(src[off+10:])),
		})
		off += pspanSize
	}
	return spans, 2 + l, nil
}
