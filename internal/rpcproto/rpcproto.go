// Package rpcproto defines the wire protocol spoken between LEED clients,
// storage nodes, and the control plane: key-value requests and responses
// (with piggybacked flow-control tokens, §3.5), chain hop counters for view
// validation (§3.8.1), and a compact binary framing. The simulation passes
// decoded structs through the fabric and charges the encoded size as wire
// bytes; Encode/Decode implement the actual format and are exercised by
// tests so the protocol is real, not notional.
//
// # Buffer ownership and the borrow-vs-copy decode contract
//
// The hot serve path is allocation-free, which requires explicit buffer
// ownership rules:
//
//   - Frame buffers come from the package-level pool (GetBuf/PutBuf). A
//     buffer has exactly one owner at a time; only the owner may PutBuf it,
//     exactly once. transport.Conn.Send takes ownership of the frame it is
//     handed; Recv's caller takes ownership of the frame it receives and
//     releases it (directly or via PutBuf) when done.
//   - DecodeBorrow methods (Request.DecodeBorrow, Response.DecodeBorrow,
//     DecodeBatchReq, DecodeBatchResp) alias the source buffer: the decoded
//     Key/Value slices point INTO src and are valid only until the owner
//     releases src. Callers that need the bytes past that point must copy
//     them out first. The engine honors this on PUT ingest by copying the
//     key and value into its own log buffers before the request completes.
//   - DecodeRequest/DecodeResponse are the copying variants: the result owns
//     its bytes and survives the source buffer. They exist for cold paths
//     and external callers; the server and client never use them per-op.
package rpcproto

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Op enumerates request operations.
type Op uint8

// Request operations.
const (
	OpGet Op = iota + 1
	OpPut
	OpDel
	// OpCopy carries one key-value pair during partition migration
	// (§3.8.1's COPY primitive, built from GET+PUT).
	OpCopy
	// OpAck propagates the tail's commit acknowledgment backward along the
	// chain so replicas clear dirty bits (§3.7).
	OpAck
	// OpHeartbeat is a node -> control-plane liveness beacon.
	OpHeartbeat
)

func (o Op) String() string {
	switch o {
	case OpGet:
		return "GET"
	case OpPut:
		return "PUT"
	case OpDel:
		return "DEL"
	case OpCopy:
		return "COPY"
	case OpAck:
		return "ACK"
	case OpHeartbeat:
		return "HEARTBEAT"
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Status enumerates response outcomes.
type Status uint8

// Response statuses.
const (
	StatusOK Status = iota + 1
	StatusNotFound
	// StatusNack reports a view mismatch (wrong hop position or stale
	// epoch); the client must refresh its view and retry (§3.8.1).
	StatusNack
	// StatusOverload reports admission rejection; the client should back
	// off and respect tokens.
	StatusOverload
	StatusErr
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "OK"
	case StatusNotFound:
		return "NOT_FOUND"
	case StatusNack:
		return "NACK"
	case StatusOverload:
		return "OVERLOAD"
	case StatusErr:
		return "ERR"
	}
	return fmt.Sprintf("Status(%d)", uint8(s))
}

// Request is one command traveling client -> node or node -> node.
type Request struct {
	ID        uint64
	Op        Op
	Tenant    uint16
	Partition uint32 // target partition (virtual-node key range)
	Epoch     uint64 // sender's membership view epoch
	Hop       uint8  // position along the chain, incremented per forward
	Shipped   bool   // CRRS: true once a replica shipped this GET to the tail
	// TraceID propagates the issuer's trace identity across process
	// boundaries (0 = untraced; the context section is then omitted).
	TraceID uint64
	// TraceFlags carries the trace flag bits (TraceSampled); meaningful only
	// when TraceID is non-zero.
	TraceFlags uint8
	Key        []byte
	Value      []byte
}

// Request flag bits (header byte 24). Unknown bits are rejected on decode so
// they stay available for future, semantics-changing extensions; optional
// growth belongs in the length-prefixed trace-context section instead.
const (
	reqFlagShipped  = 1 << 0
	reqFlagTraceCtx = 1 << 1 // a trace-context section follows the value
)

// respFlagSpans (status byte bit 7) marks a span section after the value.
// Status values occupy the low 7 bits.
const respFlagSpans = 1 << 7

// Response is the reply, delivered by one-sided WRITE into the client's
// pre-allocated completion slot.
type Response struct {
	ID     uint64
	Status Status
	Value  []byte
	// Tokens piggybacks the target partition's available admission tokens
	// so the front-end scheduler stays load-aware (§3.5).
	Tokens int32
	// Epoch lets clients learn a newer view on NACK.
	Epoch uint64
	// Spans piggybacks the span summaries the responder (and everything
	// downstream of it) recorded for a sampled trace, so the issuer can
	// reassemble one end-to-end trace. Empty on untraced requests. Decode
	// appends into the existing capacity (allocation-free once warm).
	Spans []PSpan
}

const (
	reqHdrSize  = 8 + 1 + 2 + 4 + 8 + 1 + 1 + 4 + 4 // fixed fields + key/value lengths
	respHdrSize = 8 + 1 + 4 + 8 + 4
)

// WireSize returns the request's encoded size in bytes.
func (r *Request) WireSize() int64 {
	n := int64(reqHdrSize + len(r.Key) + len(r.Value))
	if r.TraceID != 0 {
		n += traceCtxWireSize
	}
	return n
}

// WireSize returns the response's encoded size in bytes.
func (r *Response) WireSize() int64 {
	n := int64(respHdrSize + len(r.Value))
	if len(r.Spans) > 0 {
		n += int64(spansWireSize(len(r.Spans)))
	}
	return n
}

// ErrShortBuffer reports a truncated frame.
var ErrShortBuffer = errors.New("rpcproto: short buffer")

// EncodeRequest appends the request's wire form to dst and returns it.
func EncodeRequest(dst []byte, r *Request) []byte {
	var hdr [reqHdrSize]byte
	binary.LittleEndian.PutUint64(hdr[0:], r.ID)
	hdr[8] = uint8(r.Op)
	binary.LittleEndian.PutUint16(hdr[9:], r.Tenant)
	binary.LittleEndian.PutUint32(hdr[11:], r.Partition)
	binary.LittleEndian.PutUint64(hdr[15:], r.Epoch)
	hdr[23] = r.Hop
	var flags byte
	if r.Shipped {
		flags |= reqFlagShipped
	}
	if r.TraceID != 0 {
		flags |= reqFlagTraceCtx
	}
	hdr[24] = flags
	binary.LittleEndian.PutUint32(hdr[25:], uint32(len(r.Key)))
	binary.LittleEndian.PutUint32(hdr[29:], uint32(len(r.Value)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, r.Key...)
	dst = append(dst, r.Value...)
	if r.TraceID != 0 {
		dst = appendTraceCtx(dst, r.TraceID, r.TraceFlags)
	}
	return dst
}

// DecodeBorrow parses one request from src into r, ALIASING src: r.Key and
// r.Value point into src and are valid only while src's owner keeps it
// alive. It returns the bytes consumed. This is the zero-copy, zero-alloc
// server-side decode; see the package comment for the ownership contract.
func (r *Request) DecodeBorrow(src []byte) (int, error) {
	if len(src) < reqHdrSize {
		return 0, ErrShortBuffer
	}
	// The key/value lengths come straight off the wire; cap them (in 64-bit
	// arithmetic, so a 4GB-1 length can't wrap a 32-bit int into a negative
	// slice bound) before any of them sizes an allocation or an index.
	kl64 := int64(binary.LittleEndian.Uint32(src[25:]))
	vl64 := int64(binary.LittleEndian.Uint32(src[29:]))
	if kl64 > MaxFrameBytes || vl64 > MaxFrameBytes || kl64+vl64 > MaxFrameBytes {
		return 0, ErrFrameTooLarge
	}
	kl, vl := int(kl64), int(vl64)
	total := reqHdrSize + kl + vl
	if len(src) < total {
		return 0, ErrShortBuffer
	}
	flags := src[24]
	if flags&^byte(reqFlagShipped|reqFlagTraceCtx) != 0 {
		return 0, ErrBadFrame
	}
	r.ID = binary.LittleEndian.Uint64(src[0:])
	r.Op = Op(src[8])
	r.Tenant = binary.LittleEndian.Uint16(src[9:])
	r.Partition = binary.LittleEndian.Uint32(src[11:])
	r.Epoch = binary.LittleEndian.Uint64(src[15:])
	r.Hop = src[23]
	r.Shipped = flags&reqFlagShipped != 0
	r.TraceID = 0
	r.TraceFlags = 0
	r.Key = nil
	r.Value = nil
	if kl > 0 {
		r.Key = src[reqHdrSize : reqHdrSize+kl : reqHdrSize+kl]
	}
	if vl > 0 {
		r.Value = src[reqHdrSize+kl : total : total]
	}
	if flags&reqFlagTraceCtx != 0 {
		id, tf, n, err := decodeTraceCtx(src[total:])
		if err != nil {
			return 0, err
		}
		r.TraceID, r.TraceFlags = id, tf
		total += n
	}
	return total, nil
}

// DecodeRequest parses one request frame from src, returning the request
// and the bytes consumed. The result owns its bytes (copying decode).
func DecodeRequest(src []byte) (*Request, int, error) {
	r := &Request{}
	total, err := r.DecodeBorrow(src)
	if err != nil {
		return nil, 0, err
	}
	if len(r.Key) > 0 {
		r.Key = append([]byte(nil), r.Key...)
	}
	if len(r.Value) > 0 {
		r.Value = append([]byte(nil), r.Value...)
	}
	return r, total, nil
}

// EncodeResponse appends the response's wire form to dst and returns it.
func EncodeResponse(dst []byte, r *Response) []byte {
	var hdr [respHdrSize]byte
	binary.LittleEndian.PutUint64(hdr[0:], r.ID)
	st := uint8(r.Status) &^ byte(respFlagSpans)
	if len(r.Spans) > 0 {
		st |= respFlagSpans
	}
	hdr[8] = st
	binary.LittleEndian.PutUint32(hdr[9:], uint32(r.Tokens))
	binary.LittleEndian.PutUint64(hdr[13:], r.Epoch)
	binary.LittleEndian.PutUint32(hdr[21:], uint32(len(r.Value)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, r.Value...)
	if len(r.Spans) > 0 {
		dst = appendSpans(dst, r.Spans)
	}
	return dst
}

// DecodeBorrow parses one response from src into r, ALIASING src: r.Value
// points into src and is valid only while src's owner keeps it alive. It
// returns the bytes consumed. See the package comment for the contract.
func (r *Response) DecodeBorrow(src []byte) (int, error) {
	if len(src) < respHdrSize {
		return 0, ErrShortBuffer
	}
	vl64 := int64(binary.LittleEndian.Uint32(src[21:]))
	if vl64 > MaxFrameBytes {
		return 0, ErrFrameTooLarge
	}
	vl := int(vl64)
	total := respHdrSize + vl
	if len(src) < total {
		return 0, ErrShortBuffer
	}
	sb := src[8]
	r.ID = binary.LittleEndian.Uint64(src[0:])
	r.Status = Status(sb &^ byte(respFlagSpans))
	r.Tokens = int32(binary.LittleEndian.Uint32(src[9:]))
	r.Epoch = binary.LittleEndian.Uint64(src[13:])
	r.Value = nil
	r.Spans = r.Spans[:0]
	if vl > 0 {
		r.Value = src[respHdrSize:total:total]
	}
	if sb&respFlagSpans != 0 {
		spans, n, err := decodeSpans(src[total:], r.Spans)
		if err != nil {
			return 0, err
		}
		r.Spans = spans
		total += n
	}
	return total, nil
}

// DecodeResponse parses one response frame from src, returning the response
// and the bytes consumed. The result owns its bytes (copying decode).
func DecodeResponse(src []byte) (*Response, int, error) {
	r := &Response{}
	total, err := r.DecodeBorrow(src)
	if err != nil {
		return nil, 0, err
	}
	if len(r.Value) > 0 {
		r.Value = append([]byte(nil), r.Value...)
	}
	return r, total, nil
}
