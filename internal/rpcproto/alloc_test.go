package rpcproto

import (
	"testing"
)

// The steady-state allocation contract: with reused destination buffers and
// borrow decodes, a full encode/decode round trip of every hot-path frame
// kind allocates nothing. These pin the contract at the unit level; the
// end-to-end budget over the full serve stack is pinned by BenchmarkServeGet
// and the `leedctl hotpath` CI gate (DESIGN.md §13).

func assertZeroAllocs(t *testing.T, name string, fn func()) {
	t.Helper()
	if got := testing.AllocsPerRun(200, fn); got != 0 {
		t.Errorf("%s: %.1f allocs/op, want 0", name, got)
	}
}

func TestRequestRoundTripAllocFree(t *testing.T) {
	req := &Request{ID: 7, Op: OpPut, Epoch: 3, Key: []byte("alloc-key"), Value: []byte("alloc-value")}
	frame := AppendRequestFrame(nil, req)
	buf := make([]byte, 0, len(frame))
	var dec Request
	assertZeroAllocs(t, "request encode+borrow-decode", func() {
		buf = AppendRequestFrame(buf[:0], req)
		_, payload, _, err := DecodeFrame(buf)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dec.DecodeBorrow(payload); err != nil {
			t.Fatal(err)
		}
	})
	if string(dec.Key) != "alloc-key" || string(dec.Value) != "alloc-value" {
		t.Fatalf("decode corrupted: %q %q", dec.Key, dec.Value)
	}
}

func TestResponseRoundTripAllocFree(t *testing.T) {
	resp := &Response{ID: 9, Status: StatusOK, Tokens: 12, Value: []byte("resp-value")}
	frame := AppendResponseFrame(nil, resp)
	buf := make([]byte, 0, len(frame))
	var dec Response
	assertZeroAllocs(t, "response encode+borrow-decode", func() {
		buf = AppendResponseFrame(buf[:0], resp)
		_, payload, _, err := DecodeFrame(buf)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dec.DecodeBorrow(payload); err != nil {
			t.Fatal(err)
		}
	})
	if string(dec.Value) != "resp-value" || dec.Tokens != 12 {
		t.Fatalf("decode corrupted: %q %d", dec.Value, dec.Tokens)
	}
}

func TestBatchRoundTripAllocFree(t *testing.T) {
	keys := [][]byte{[]byte("k1"), []byte("k2"), []byte("k3")}
	vals := [][]byte{[]byte("v1"), []byte("v2"), []byte("v3")}
	frame := AppendBatchReqFrame(nil, 5, OpPut, keys, vals)
	buf := make([]byte, 0, len(frame))
	items := make([]BatchItem, 0, len(keys))
	assertZeroAllocs(t, "batch req encode+decode", func() {
		buf = AppendBatchReqFrame(buf[:0], 5, OpPut, keys, vals)
		_, payload, _, err := DecodeFrame(buf)
		if err != nil {
			t.Fatal(err)
		}
		var derr error
		_, _, items, derr = DecodeBatchReq(payload, items[:0])
		if derr != nil {
			t.Fatal(derr)
		}
	})
	if len(items) != 3 || string(items[2].Value) != "v3" {
		t.Fatalf("decode corrupted: %+v", items)
	}

	sts := []Status{StatusOK, StatusNotFound}
	rvals := [][]byte{[]byte("rv"), nil}
	rframe := AppendBatchRespFrame(nil, 6, sts, rvals)
	rbuf := make([]byte, 0, len(rframe))
	ritems := make([]BatchRespItem, 0, len(sts))
	assertZeroAllocs(t, "batch resp encode+decode", func() {
		rbuf = AppendBatchRespFrame(rbuf[:0], 6, sts, rvals)
		_, payload, _, err := DecodeFrame(rbuf)
		if err != nil {
			t.Fatal(err)
		}
		var derr error
		_, ritems, derr = DecodeBatchResp(payload, ritems[:0])
		if derr != nil {
			t.Fatal(derr)
		}
	})
	if len(ritems) != 2 || string(ritems[0].Value) != "rv" {
		t.Fatalf("decode corrupted: %+v", ritems)
	}
}

func TestTracedRequestRoundTripAllocFree(t *testing.T) {
	// The trace-context section must add zero allocations on the borrow-
	// decode path: the context is fixed-size fields, no slices.
	req := &Request{ID: 7, Op: OpGet, Epoch: 3, Key: []byte("traced-key"),
		TraceID: 0xfeedbeef, TraceFlags: TraceSampled}
	frame := AppendRequestFrame(nil, req)
	buf := make([]byte, 0, len(frame))
	var dec Request
	assertZeroAllocs(t, "traced request encode+borrow-decode", func() {
		buf = AppendRequestFrame(buf[:0], req)
		_, payload, _, err := DecodeFrame(buf)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dec.DecodeBorrow(payload); err != nil {
			t.Fatal(err)
		}
	})
	if dec.TraceID != 0xfeedbeef || dec.TraceFlags != TraceSampled || string(dec.Key) != "traced-key" {
		t.Fatalf("decode corrupted: %+v", dec)
	}
}

func TestSpanPiggybackRoundTripAllocFree(t *testing.T) {
	// The span section must decode allocation-free once the destination
	// response's Spans slice is warm (pooled call objects keep capacity).
	resp := &Response{ID: 9, Status: StatusOK, Value: []byte("v"), Spans: []PSpan{
		{Stage: StageNode, Hop: 1, QueueNS: 100, ServiceNS: 200},
		{Stage: StageEngine, Hop: 1, ServiceNS: 300},
		{Stage: StageFwd, Hop: 1, ServiceNS: 50},
		{Stage: StageNode, Hop: 2, QueueNS: 10, ServiceNS: 20},
	}}
	frame := AppendResponseFrame(nil, resp)
	buf := make([]byte, 0, len(frame))
	dec := Response{Spans: make([]PSpan, 0, len(resp.Spans))}
	assertZeroAllocs(t, "span piggyback encode+borrow-decode", func() {
		buf = AppendResponseFrame(buf[:0], resp)
		_, payload, _, err := DecodeFrame(buf)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dec.DecodeBorrow(payload); err != nil {
			t.Fatal(err)
		}
	})
	if len(dec.Spans) != 4 || dec.Spans[3] != resp.Spans[3] || string(dec.Value) != "v" {
		t.Fatalf("decode corrupted: %+v", dec)
	}
}

func TestBufPoolAllocFree(t *testing.T) {
	// Warm one buffer into the pool, then rent/return must never allocate.
	PutBuf(make([]byte, 0, 1024))
	assertZeroAllocs(t, "GetBuf/PutBuf cycle", func() {
		b := GetBuf()
		b = append(b, "some frame bytes"...)
		PutBuf(b)
	})
}
