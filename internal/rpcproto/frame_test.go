package rpcproto

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	req := &Request{ID: 7, Op: OpPut, Tenant: 3, Partition: 11, Epoch: 9,
		Hop: 2, Shipped: true, Key: []byte("user1"), Value: []byte("hello")}
	resp := &Response{ID: 7, Status: StatusOK, Value: []byte("world"), Tokens: 12, Epoch: 9}
	ef := &ErrorFrame{ID: 7, Code: StatusErr, Msg: "engine: no partition 99"}

	// Three frames back to back on one "stream": each decodes in order and
	// consumes exactly its announced bytes.
	var stream []byte
	stream = AppendRequestFrame(stream, req)
	stream = AppendResponseFrame(stream, resp)
	stream = AppendErrorFrame(stream, ef)

	kind, payload, n, err := DecodeFrame(stream)
	if err != nil || kind != FrameRequest {
		t.Fatalf("frame 1: kind=%v err=%v", kind, err)
	}
	gotReq, _, err := DecodeRequest(payload)
	if err != nil {
		t.Fatalf("decode request: %v", err)
	}
	if gotReq.ID != req.ID || gotReq.Op != req.Op || !bytes.Equal(gotReq.Key, req.Key) ||
		!bytes.Equal(gotReq.Value, req.Value) || !gotReq.Shipped {
		t.Fatalf("request round trip mismatch: %+v", gotReq)
	}
	stream = stream[n:]

	kind, payload, n, err = DecodeFrame(stream)
	if err != nil || kind != FrameResponse {
		t.Fatalf("frame 2: kind=%v err=%v", kind, err)
	}
	gotResp, _, err := DecodeResponse(payload)
	if err != nil {
		t.Fatalf("decode response: %v", err)
	}
	if gotResp.ID != resp.ID || gotResp.Status != resp.Status ||
		!bytes.Equal(gotResp.Value, resp.Value) || gotResp.Tokens != resp.Tokens {
		t.Fatalf("response round trip mismatch: %+v", gotResp)
	}
	stream = stream[n:]

	kind, payload, n, err = DecodeFrame(stream)
	if err != nil || kind != FrameError {
		t.Fatalf("frame 3: kind=%v err=%v", kind, err)
	}
	gotErr, _, err := DecodeError(payload)
	if err != nil {
		t.Fatalf("decode error frame: %v", err)
	}
	if gotErr.ID != ef.ID || gotErr.Code != ef.Code || gotErr.Msg != ef.Msg {
		t.Fatalf("error frame round trip mismatch: %+v", gotErr)
	}
	if len(stream[n:]) != 0 {
		t.Fatalf("stream not fully consumed: %d bytes left", len(stream[n:]))
	}
}

func TestFrameTruncation(t *testing.T) {
	full := AppendRequestFrame(nil, &Request{ID: 1, Op: OpGet, Key: []byte("k")})
	// Every strict prefix must report ErrShortBuffer (or, for prefixes that
	// cut into the length field, never succeed).
	for i := 0; i < len(full); i++ {
		if _, _, _, err := DecodeFrame(full[:i]); !errors.Is(err, ErrShortBuffer) {
			t.Fatalf("prefix %d: want ErrShortBuffer, got %v", i, err)
		}
	}
	if _, _, _, err := DecodeFrame(full); err != nil {
		t.Fatalf("full frame: %v", err)
	}
}

func TestFrameOversizedLength(t *testing.T) {
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:], MaxFrameBytes+1)
	hdr[4] = byte(FrameRequest)
	if _, _, _, err := DecodeFrame(hdr[:]); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
	// FrameLen must reject it too, before any caller sizes a read buffer.
	if _, err := FrameLen(hdr[:4]); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("FrameLen: want ErrFrameTooLarge, got %v", err)
	}
	// Zero-length frames are malformed, not empty successes.
	binary.LittleEndian.PutUint32(hdr[:], 0)
	if _, _, _, err := DecodeFrame(hdr[:]); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("zero length: want ErrBadFrame, got %v", err)
	}
}

func TestFrameUnknownKind(t *testing.T) {
	frame := AppendResponseFrame(nil, &Response{ID: 1, Status: StatusOK})
	frame[4] = 0xEE // corrupt the kind byte
	if _, _, _, err := DecodeFrame(frame); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("want ErrBadFrame, got %v", err)
	}
}

func TestErrorFrameAsError(t *testing.T) {
	ef := &ErrorFrame{ID: 42, Code: StatusOverload, Msg: "draining"}
	var e error = ef
	for _, want := range []string{"42", "OVERLOAD", "draining"} {
		if !bytes.Contains([]byte(e.Error()), []byte(want)) {
			t.Fatalf("error string %q missing %q", e.Error(), want)
		}
	}
}
