package rpcproto

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	req := &Request{ID: 7, Op: OpPut, Tenant: 3, Partition: 11, Epoch: 9,
		Hop: 2, Shipped: true, Key: []byte("user1"), Value: []byte("hello")}
	resp := &Response{ID: 7, Status: StatusOK, Value: []byte("world"), Tokens: 12, Epoch: 9}
	ef := &ErrorFrame{ID: 7, Code: StatusErr, Msg: "engine: no partition 99"}

	// Three frames back to back on one "stream": each decodes in order and
	// consumes exactly its announced bytes.
	var stream []byte
	stream = AppendRequestFrame(stream, req)
	stream = AppendResponseFrame(stream, resp)
	stream = AppendErrorFrame(stream, ef)

	kind, payload, n, err := DecodeFrame(stream)
	if err != nil || kind != FrameRequest {
		t.Fatalf("frame 1: kind=%v err=%v", kind, err)
	}
	gotReq, _, err := DecodeRequest(payload)
	if err != nil {
		t.Fatalf("decode request: %v", err)
	}
	if gotReq.ID != req.ID || gotReq.Op != req.Op || !bytes.Equal(gotReq.Key, req.Key) ||
		!bytes.Equal(gotReq.Value, req.Value) || !gotReq.Shipped {
		t.Fatalf("request round trip mismatch: %+v", gotReq)
	}
	stream = stream[n:]

	kind, payload, n, err = DecodeFrame(stream)
	if err != nil || kind != FrameResponse {
		t.Fatalf("frame 2: kind=%v err=%v", kind, err)
	}
	gotResp, _, err := DecodeResponse(payload)
	if err != nil {
		t.Fatalf("decode response: %v", err)
	}
	if gotResp.ID != resp.ID || gotResp.Status != resp.Status ||
		!bytes.Equal(gotResp.Value, resp.Value) || gotResp.Tokens != resp.Tokens {
		t.Fatalf("response round trip mismatch: %+v", gotResp)
	}
	stream = stream[n:]

	kind, payload, n, err = DecodeFrame(stream)
	if err != nil || kind != FrameError {
		t.Fatalf("frame 3: kind=%v err=%v", kind, err)
	}
	gotErr, _, err := DecodeError(payload)
	if err != nil {
		t.Fatalf("decode error frame: %v", err)
	}
	if gotErr.ID != ef.ID || gotErr.Code != ef.Code || gotErr.Msg != ef.Msg {
		t.Fatalf("error frame round trip mismatch: %+v", gotErr)
	}
	if len(stream[n:]) != 0 {
		t.Fatalf("stream not fully consumed: %d bytes left", len(stream[n:]))
	}
}

func TestFrameTruncation(t *testing.T) {
	full := AppendRequestFrame(nil, &Request{ID: 1, Op: OpGet, Key: []byte("k")})
	// Every strict prefix must report ErrShortBuffer (or, for prefixes that
	// cut into the length field, never succeed).
	for i := 0; i < len(full); i++ {
		if _, _, _, err := DecodeFrame(full[:i]); !errors.Is(err, ErrShortBuffer) {
			t.Fatalf("prefix %d: want ErrShortBuffer, got %v", i, err)
		}
	}
	if _, _, _, err := DecodeFrame(full); err != nil {
		t.Fatalf("full frame: %v", err)
	}
}

func TestFrameOversizedLength(t *testing.T) {
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:], MaxFrameBytes+1)
	hdr[4] = byte(FrameRequest)
	if _, _, _, err := DecodeFrame(hdr[:]); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
	// FrameLen must reject it too, before any caller sizes a read buffer.
	if _, err := FrameLen(hdr[:4]); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("FrameLen: want ErrFrameTooLarge, got %v", err)
	}
	// Zero-length frames are malformed, not empty successes.
	binary.LittleEndian.PutUint32(hdr[:], 0)
	if _, _, _, err := DecodeFrame(hdr[:]); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("zero length: want ErrBadFrame, got %v", err)
	}
}

func TestFrameUnknownKind(t *testing.T) {
	frame := AppendResponseFrame(nil, &Response{ID: 1, Status: StatusOK})
	frame[4] = 0xEE // corrupt the kind byte
	if _, _, _, err := DecodeFrame(frame); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("want ErrBadFrame, got %v", err)
	}
}

func TestOverloadFrameRoundTrip(t *testing.T) {
	o := &OverloadFrame{ID: 99, Tokens: -3, RetryAfterNS: 2_500_000}
	frame := AppendOverloadFrame(nil, o)
	kind, payload, n, err := DecodeFrame(frame)
	if err != nil || kind != FrameOverload {
		t.Fatalf("kind=%v err=%v", kind, err)
	}
	if n != len(frame) {
		t.Fatalf("consumed %d of %d", n, len(frame))
	}
	got, _, err := DecodeOverload(payload)
	if err != nil {
		t.Fatalf("decode overload: %v", err)
	}
	if got.ID != o.ID || got.Tokens != o.Tokens || got.RetryAfterNS != o.RetryAfterNS {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	var e error = got
	for _, want := range []string{"99", "overloaded"} {
		if !bytes.Contains([]byte(e.Error()), []byte(want)) {
			t.Fatalf("error string %q missing %q", e.Error(), want)
		}
	}
}

// TestHostileInnerLengths pins the decode hard cap: length fields inside a
// request/response/error payload that announce more than MaxFrameBytes are
// rejected with ErrFrameTooLarge before any buffer is sized from them.
func TestHostileInnerLengths(t *testing.T) {
	req := make([]byte, reqHdrSize)
	binary.LittleEndian.PutUint32(req[25:], MaxFrameBytes+1) // key length
	if _, _, err := DecodeRequest(req); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("request key cap: want ErrFrameTooLarge, got %v", err)
	}
	binary.LittleEndian.PutUint32(req[25:], 1<<31) // would wrap a 32-bit int
	binary.LittleEndian.PutUint32(req[29:], 1<<31)
	if _, _, err := DecodeRequest(req); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("request sum cap: want ErrFrameTooLarge, got %v", err)
	}
	resp := make([]byte, respHdrSize)
	binary.LittleEndian.PutUint32(resp[21:], MaxFrameBytes+1)
	if _, _, err := DecodeResponse(resp); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("response cap: want ErrFrameTooLarge, got %v", err)
	}
	ef := make([]byte, errHdrSize)
	binary.LittleEndian.PutUint32(ef[9:], MaxFrameBytes+1)
	if _, _, err := DecodeError(ef); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("error cap: want ErrFrameTooLarge, got %v", err)
	}
}

func TestErrorFrameAsError(t *testing.T) {
	ef := &ErrorFrame{ID: 42, Code: StatusOverload, Msg: "draining"}
	var e error = ef
	for _, want := range []string{"42", "OVERLOAD", "draining"} {
		if !bytes.Contains([]byte(e.Error()), []byte(want)) {
			t.Fatalf("error string %q missing %q", e.Error(), want)
		}
	}
}
