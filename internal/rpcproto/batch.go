package rpcproto

import (
	"encoding/binary"
	"fmt"
)

// Batch frames: one frame carrying many sub-operations of the same kind
// (MultiGet, MultiPut), so the per-frame network cost — syscalls, framing,
// demux, admission — amortizes across the batch the way the device path's
// group commit already amortizes the flash cost. §3.5's front-end scheduler
// shape is preserved: the server splits a batch into per-partition
// sub-batches and runs them through the same token admission as single ops.
//
// Wire layout (after the standard [len][kind] envelope):
//
//	batch request  payload: [ID u64][op u8][count u32]
//	                        then, when op bit 7 is set, one trace-context
//	                        section (see trace.go),
//	                        then per item [klen u32][vlen u32][key][val]
//	batch response payload: [ID u64][count u32]
//	                        then per item [status u8][vlen u32][val]
//
// The op byte's low 7 bits are the Op; bit 7 flags a propagated trace
// context, so an untraced batch is byte-identical to the pre-trace format.
// GET items carry vlen=0; response items for PUT/DEL carry vlen=0. All
// lengths are validated in 64-bit arithmetic against MaxFrameBytes before
// sizing anything, and count is validated against both MaxBatchItems and
// the bytes actually present, so a hostile count can neither provoke a
// large allocation nor a long loop.

// MaxBatchItems bounds the sub-operations one batch frame may carry.
const MaxBatchItems = 1 << 16

const (
	batchReqHdrSize  = 8 + 1 + 4
	batchReqItemHdr  = 4 + 4
	batchRespHdrSize = 8 + 4
	batchRespItemHdr = 1 + 4
)

// ErrBatchTooLarge reports a batch whose item count exceeds MaxBatchItems
// or overruns the frame it arrived in.
var ErrBatchTooLarge = fmt.Errorf("rpcproto: batch exceeds %d items", MaxBatchItems)

// BatchItem is one borrowed sub-operation of a decoded batch request. Key
// and Value alias the source buffer (see the package ownership contract).
type BatchItem struct {
	Key   []byte
	Value []byte
}

// BatchRespItem is one borrowed sub-result of a decoded batch response.
type BatchRespItem struct {
	Status Status
	Value  []byte
}

// batchFlagTraceCtx (op byte bit 7) marks a trace-context section between
// the batch header and the first item.
const batchFlagTraceCtx = 1 << 7

// AppendBatchReqFrame appends a complete batch-request frame carrying op
// over keys (and, for writes, vals — nil or shorter-than-keys vals encode
// as empty values). len(keys) must be ≤ MaxBatchItems.
func AppendBatchReqFrame(dst []byte, id uint64, op Op, keys, vals [][]byte) []byte {
	return AppendBatchReqFrameCtx(dst, id, op, keys, vals, 0, 0)
}

// AppendBatchReqFrameCtx is AppendBatchReqFrame with a propagated trace
// context (traceID 0 omits the section and the flag bit entirely).
func AppendBatchReqFrameCtx(dst []byte, id uint64, op Op, keys, vals [][]byte, traceID uint64, traceFlags uint8) []byte {
	dst, off := appendFrameHdr(dst, FrameBatchReq)
	var hdr [batchReqHdrSize]byte
	binary.LittleEndian.PutUint64(hdr[0:], id)
	opb := uint8(op) &^ byte(batchFlagTraceCtx)
	if traceID != 0 {
		opb |= batchFlagTraceCtx
	}
	hdr[8] = opb
	binary.LittleEndian.PutUint32(hdr[9:], uint32(len(keys)))
	dst = append(dst, hdr[:]...)
	if traceID != 0 {
		dst = appendTraceCtx(dst, traceID, traceFlags)
	}
	for i, k := range keys {
		var v []byte
		if i < len(vals) {
			v = vals[i]
		}
		var ih [batchReqItemHdr]byte
		binary.LittleEndian.PutUint32(ih[0:], uint32(len(k)))
		binary.LittleEndian.PutUint32(ih[4:], uint32(len(v)))
		dst = append(dst, ih[:]...)
		dst = append(dst, k...)
		dst = append(dst, v...)
	}
	return finishFrame(dst, off)
}

// AppendBatchRespFrame appends a complete batch-response frame. vals may be
// nil or shorter than statuses; missing entries encode as empty values.
func AppendBatchRespFrame(dst []byte, id uint64, statuses []Status, vals [][]byte) []byte {
	dst, off := appendFrameHdr(dst, FrameBatchResp)
	var hdr [batchRespHdrSize]byte
	binary.LittleEndian.PutUint64(hdr[0:], id)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(statuses)))
	dst = append(dst, hdr[:]...)
	for i, st := range statuses {
		var v []byte
		if i < len(vals) {
			v = vals[i]
		}
		var ih [batchRespItemHdr]byte
		ih[0] = uint8(st)
		binary.LittleEndian.PutUint32(ih[1:], uint32(len(v)))
		dst = append(dst, ih[:]...)
		dst = append(dst, v...)
	}
	return finishFrame(dst, off)
}

// BatchID returns the request ID leading a batch request or response
// payload without decoding the items — the client's receive loop uses it to
// find the owning call before borrow-decoding into that call's scratch.
func BatchID(src []byte) (uint64, error) {
	if len(src) < 8 {
		return 0, ErrShortBuffer
	}
	return binary.LittleEndian.Uint64(src), nil
}

// DecodeBatchReq parses a batch-request payload, appending one BatchItem
// per sub-operation into items (pass a reused items[:0] for an
// allocation-free steady state). The returned items ALIAS src. Any trace
// context is validated but discarded; trace-aware servers use
// DecodeBatchReqCtx.
func DecodeBatchReq(src []byte, items []BatchItem) (id uint64, op Op, out []BatchItem, err error) {
	id, op, _, _, out, err = DecodeBatchReqCtx(src, items)
	return id, op, out, err
}

// DecodeBatchReqCtx is DecodeBatchReq plus the propagated trace context
// (traceID 0 when the frame carries none).
func DecodeBatchReqCtx(src []byte, items []BatchItem) (id uint64, op Op, traceID uint64, traceFlags uint8, out []BatchItem, err error) {
	if len(src) < batchReqHdrSize {
		return 0, 0, 0, 0, items, ErrShortBuffer
	}
	id = binary.LittleEndian.Uint64(src[0:])
	opb := src[8]
	op = Op(opb &^ byte(batchFlagTraceCtx))
	count := int64(binary.LittleEndian.Uint32(src[9:]))
	rest := src[batchReqHdrSize:]
	if opb&batchFlagTraceCtx != 0 {
		tid, tf, n, terr := decodeTraceCtx(rest)
		if terr != nil {
			return 0, 0, 0, 0, items, terr
		}
		traceID, traceFlags = tid, tf
		rest = rest[n:]
	}
	if count > MaxBatchItems || count*batchReqItemHdr > int64(len(rest)) {
		return 0, 0, 0, 0, items, ErrBatchTooLarge
	}
	off := int64(0)
	for i := int64(0); i < count; i++ {
		if off+batchReqItemHdr > int64(len(rest)) {
			return 0, 0, 0, 0, items, ErrShortBuffer
		}
		kl := int64(binary.LittleEndian.Uint32(rest[off:]))
		vl := int64(binary.LittleEndian.Uint32(rest[off+4:]))
		if kl > MaxFrameBytes || vl > MaxFrameBytes {
			return 0, 0, 0, 0, items, ErrFrameTooLarge
		}
		off += batchReqItemHdr
		if off+kl+vl > int64(len(rest)) {
			return 0, 0, 0, 0, items, ErrShortBuffer
		}
		var it BatchItem
		if kl > 0 {
			it.Key = rest[off : off+kl : off+kl]
		}
		if vl > 0 {
			it.Value = rest[off+kl : off+kl+vl : off+kl+vl]
		}
		items = append(items, it)
		off += kl + vl
	}
	return id, op, traceID, traceFlags, items, nil
}

// DecodeBatchResp parses a batch-response payload, appending one
// BatchRespItem per sub-result into items. The returned items ALIAS src.
func DecodeBatchResp(src []byte, items []BatchRespItem) (id uint64, out []BatchRespItem, err error) {
	if len(src) < batchRespHdrSize {
		return 0, items, ErrShortBuffer
	}
	id = binary.LittleEndian.Uint64(src[0:])
	count := int64(binary.LittleEndian.Uint32(src[8:]))
	rest := src[batchRespHdrSize:]
	if count > MaxBatchItems || count*batchRespItemHdr > int64(len(rest)) {
		return 0, items, ErrBatchTooLarge
	}
	off := int64(0)
	for i := int64(0); i < count; i++ {
		if off+batchRespItemHdr > int64(len(rest)) {
			return 0, items, ErrShortBuffer
		}
		st := Status(rest[off])
		vl := int64(binary.LittleEndian.Uint32(rest[off+1:]))
		if vl > MaxFrameBytes {
			return 0, items, ErrFrameTooLarge
		}
		off += batchRespItemHdr
		if off+vl > int64(len(rest)) {
			return 0, items, ErrShortBuffer
		}
		it := BatchRespItem{Status: st}
		if vl > 0 {
			it.Value = rest[off : off+vl : off+vl]
		}
		items = append(items, it)
		off += vl
	}
	return id, items, nil
}
