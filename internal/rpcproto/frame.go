package rpcproto

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Frame layer: the stream framing the transport seam speaks. A request or
// response struct is self-describing once its header is in hand, but a byte
// stream (a TCP connection, a fabric payload) needs an outer envelope that
// says how long the next message is and what kind it is before any of it is
// parsed. Each frame is
//
//	[4B little-endian length n][1B kind][n-1 bytes payload]
//
// where the length counts the kind byte plus the payload, so a reader can
// take exactly 4+n bytes off the stream and hand the rest to the kind's
// decoder. The length is validated against MaxFrameBytes BEFORE any buffer
// is sized from it: a garbage or hostile prefix can never cause a large
// allocation, only an error.

// FrameKind discriminates what a frame carries.
type FrameKind uint8

// Frame kinds.
const (
	FrameRequest FrameKind = iota + 1
	FrameResponse
	// FrameError carries an ErrorFrame: a transport- or server-level
	// failure (undecodable request, unknown op, draining server) reported
	// back to the issuer instead of silently dropping the request.
	FrameError
	// FrameOverload carries an OverloadFrame: the server's admission layer
	// refused the request before execution (bounded in-flight cap hit).
	// Distinct from FrameError because it is a *safe* rejection — the
	// request provably never touched a store, so even a non-idempotent
	// write may be retried after backing off.
	FrameOverload
	// FrameBatchReq carries one MultiGet/MultiPut batch request: many
	// same-op sub-operations amortizing the per-frame network cost. See
	// batch.go for the inner layout.
	FrameBatchReq
	// FrameBatchResp carries the per-item results of a FrameBatchReq.
	FrameBatchResp
	// FrameHeartbeat carries a Heartbeat: a node's (or view observer's)
	// periodic liveness beacon to the control plane, piggybacking completed
	// COPY migrations. The manager answers every heartbeat with a
	// FrameViewPush on the same connection. See ctrl.go.
	FrameHeartbeat
	// FrameViewPush carries a ViewPush: one membership-view snapshot plus
	// the COPY commands outstanding for the heartbeating node. See ctrl.go.
	FrameViewPush
	// FrameChainFwd carries a Request traveling node -> node down a CRRS
	// replication chain (or an OpCopy migration write). The payload layout
	// is identical to FrameRequest; the distinct kind keeps peer traffic
	// recognizable so a plain KV server can refuse it and a cluster node can
	// trust Hop/Epoch validation applies.
	FrameChainFwd
)

func (k FrameKind) String() string {
	switch k {
	case FrameRequest:
		return "REQUEST"
	case FrameResponse:
		return "RESPONSE"
	case FrameError:
		return "ERROR"
	case FrameOverload:
		return "OVERLOAD"
	case FrameBatchReq:
		return "BATCH_REQUEST"
	case FrameBatchResp:
		return "BATCH_RESPONSE"
	case FrameHeartbeat:
		return "HEARTBEAT"
	case FrameViewPush:
		return "VIEW_PUSH"
	case FrameChainFwd:
		return "CHAIN_FWD"
	}
	return fmt.Sprintf("FrameKind(%d)", uint8(k))
}

// MaxFrameBytes bounds one frame's length field (kind byte + payload). It
// comfortably fits the largest legitimate value the stack ships (values are
// KBs) while keeping a corrupted length prefix from provoking a huge read
// buffer.
const MaxFrameBytes = 1 << 24

// frameHdrSize is the length prefix size.
const frameHdrSize = 4

// Frame decoding errors.
var (
	ErrFrameTooLarge = errors.New("rpcproto: frame exceeds MaxFrameBytes")
	ErrBadFrame      = errors.New("rpcproto: malformed frame")
)

// appendFrameHdr reserves the length prefix and kind byte, returning the
// offset of the prefix so finishFrame can patch it once the payload is in.
func appendFrameHdr(dst []byte, kind FrameKind) ([]byte, int) {
	off := len(dst)
	return append(dst, 0, 0, 0, 0, byte(kind)), off
}

func finishFrame(dst []byte, off int) []byte {
	binary.LittleEndian.PutUint32(dst[off:], uint32(len(dst)-off-frameHdrSize))
	return dst
}

// AppendRequestFrame appends r as a complete request frame.
func AppendRequestFrame(dst []byte, r *Request) []byte {
	dst, off := appendFrameHdr(dst, FrameRequest)
	dst = EncodeRequest(dst, r)
	return finishFrame(dst, off)
}

// AppendResponseFrame appends r as a complete response frame.
func AppendResponseFrame(dst []byte, r *Response) []byte {
	dst, off := appendFrameHdr(dst, FrameResponse)
	dst = EncodeResponse(dst, r)
	return finishFrame(dst, off)
}

// AppendErrorFrame appends e as a complete error frame.
func AppendErrorFrame(dst []byte, e *ErrorFrame) []byte {
	dst, off := appendFrameHdr(dst, FrameError)
	dst = EncodeError(dst, e)
	return finishFrame(dst, off)
}

// AppendOverloadFrame appends o as a complete overload frame.
func AppendOverloadFrame(dst []byte, o *OverloadFrame) []byte {
	dst, off := appendFrameHdr(dst, FrameOverload)
	dst = EncodeOverload(dst, o)
	return finishFrame(dst, off)
}

// FrameLen inspects a length prefix and reports the total byte size of the
// frame it announces (prefix included), without touching the payload. It
// returns ErrShortBuffer when src holds less than a prefix, and rejects
// zero-length and oversized announcements so a stream reader can size its
// next read from untrusted bytes safely.
func FrameLen(src []byte) (int, error) {
	if len(src) < frameHdrSize {
		return 0, ErrShortBuffer
	}
	n := int64(binary.LittleEndian.Uint32(src))
	if n < 1 {
		return 0, ErrBadFrame
	}
	if n > MaxFrameBytes {
		return 0, ErrFrameTooLarge
	}
	return frameHdrSize + int(n), nil
}

// DecodeFrame parses one frame from src, returning its kind, its payload
// (a sub-slice of src, not a copy), and the bytes consumed. The payload is
// still encoded; hand it to DecodeRequest/DecodeResponse/DecodeError/
// DecodeOverload per the kind. An unknown kind is ErrBadFrame — the frame length is still
// validated first, so a reader that wants to skip unknown kinds can.
func DecodeFrame(src []byte) (FrameKind, []byte, int, error) {
	total, err := FrameLen(src)
	if err != nil {
		return 0, nil, 0, err
	}
	if len(src) < total {
		return 0, nil, 0, ErrShortBuffer
	}
	kind := FrameKind(src[frameHdrSize])
	if kind < FrameRequest || kind > FrameChainFwd {
		return 0, nil, 0, ErrBadFrame
	}
	return kind, src[frameHdrSize+1 : total], total, nil
}

// ErrorFrame reports a request-level failure the server could not express
// as a normal Response: the request never reached a store (undecodable
// frame, unknown op, server draining). ID echoes the failed request's ID
// when the server got far enough to learn it; 0 means the failure poisons
// the connection (the frame itself was unparseable).
type ErrorFrame struct {
	ID   uint64
	Code Status
	Msg  string
}

// Error implements error, so a decoded error frame can surface directly.
func (e *ErrorFrame) Error() string {
	return fmt.Sprintf("rpcproto: remote error (id=%d, %v): %s", e.ID, e.Code, e.Msg)
}

const errHdrSize = 8 + 1 + 4

// EncodeError appends the error frame's wire form to dst.
func EncodeError(dst []byte, e *ErrorFrame) []byte {
	var hdr [errHdrSize]byte
	binary.LittleEndian.PutUint64(hdr[0:], e.ID)
	hdr[8] = uint8(e.Code)
	binary.LittleEndian.PutUint32(hdr[9:], uint32(len(e.Msg)))
	dst = append(dst, hdr[:]...)
	return append(dst, e.Msg...)
}

// DecodeError parses one error-frame payload from src, returning the frame
// and the bytes consumed.
func DecodeError(src []byte) (*ErrorFrame, int, error) {
	if len(src) < errHdrSize {
		return nil, 0, ErrShortBuffer
	}
	ml := int64(binary.LittleEndian.Uint32(src[9:]))
	if ml > MaxFrameBytes {
		return nil, 0, ErrFrameTooLarge
	}
	total := errHdrSize + int(ml)
	if len(src) < total {
		return nil, 0, ErrShortBuffer
	}
	e := &ErrorFrame{
		ID:   binary.LittleEndian.Uint64(src[0:]),
		Code: Status(src[8]),
		Msg:  string(src[errHdrSize:total]),
	}
	return e, total, nil
}

// OverloadFrame is the server's explicit overload NACK: the bounded
// in-flight admission layer rejected request ID before it was routed or
// executed. Tokens is the target partition's admission-token count at
// rejection time (0 when routing never ran); RetryAfterNS is the server's
// backoff hint. Because the rejection provably precedes execution, a client
// may retry ANY op — including a PUT — after honoring the hint.
type OverloadFrame struct {
	ID           uint64
	Tokens       int32
	RetryAfterNS int64
}

// Error implements error, so an overload NACK can surface directly from a
// client call and be classified by the retry policy.
func (o *OverloadFrame) Error() string {
	return fmt.Sprintf("rpcproto: server overloaded (id=%d, tokens=%d, retry after %dns)",
		o.ID, o.Tokens, o.RetryAfterNS)
}

const overloadSize = 8 + 4 + 8

// EncodeOverload appends the overload frame's wire form to dst.
func EncodeOverload(dst []byte, o *OverloadFrame) []byte {
	var b [overloadSize]byte
	binary.LittleEndian.PutUint64(b[0:], o.ID)
	binary.LittleEndian.PutUint32(b[8:], uint32(o.Tokens))
	binary.LittleEndian.PutUint64(b[12:], uint64(o.RetryAfterNS))
	return append(dst, b[:]...)
}

// DecodeOverload parses one overload-frame payload from src, returning the
// frame and the bytes consumed.
func DecodeOverload(src []byte) (*OverloadFrame, int, error) {
	if len(src) < overloadSize {
		return nil, 0, ErrShortBuffer
	}
	o := &OverloadFrame{
		ID:           binary.LittleEndian.Uint64(src[0:]),
		Tokens:       int32(binary.LittleEndian.Uint32(src[8:])),
		RetryAfterNS: int64(binary.LittleEndian.Uint64(src[12:])),
	}
	return o, overloadSize, nil
}
