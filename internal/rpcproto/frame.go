package rpcproto

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Frame layer: the stream framing the transport seam speaks. A request or
// response struct is self-describing once its header is in hand, but a byte
// stream (a TCP connection, a fabric payload) needs an outer envelope that
// says how long the next message is and what kind it is before any of it is
// parsed. Each frame is
//
//	[4B little-endian length n][1B kind][n-1 bytes payload]
//
// where the length counts the kind byte plus the payload, so a reader can
// take exactly 4+n bytes off the stream and hand the rest to the kind's
// decoder. The length is validated against MaxFrameBytes BEFORE any buffer
// is sized from it: a garbage or hostile prefix can never cause a large
// allocation, only an error.

// FrameKind discriminates what a frame carries.
type FrameKind uint8

// Frame kinds.
const (
	FrameRequest FrameKind = iota + 1
	FrameResponse
	// FrameError carries an ErrorFrame: a transport- or server-level
	// failure (undecodable request, unknown op, draining server) reported
	// back to the issuer instead of silently dropping the request.
	FrameError
)

func (k FrameKind) String() string {
	switch k {
	case FrameRequest:
		return "REQUEST"
	case FrameResponse:
		return "RESPONSE"
	case FrameError:
		return "ERROR"
	}
	return fmt.Sprintf("FrameKind(%d)", uint8(k))
}

// MaxFrameBytes bounds one frame's length field (kind byte + payload). It
// comfortably fits the largest legitimate value the stack ships (values are
// KBs) while keeping a corrupted length prefix from provoking a huge read
// buffer.
const MaxFrameBytes = 1 << 24

// frameHdrSize is the length prefix size.
const frameHdrSize = 4

// Frame decoding errors.
var (
	ErrFrameTooLarge = errors.New("rpcproto: frame exceeds MaxFrameBytes")
	ErrBadFrame      = errors.New("rpcproto: malformed frame")
)

// appendFrameHdr reserves the length prefix and kind byte, returning the
// offset of the prefix so finishFrame can patch it once the payload is in.
func appendFrameHdr(dst []byte, kind FrameKind) ([]byte, int) {
	off := len(dst)
	return append(dst, 0, 0, 0, 0, byte(kind)), off
}

func finishFrame(dst []byte, off int) []byte {
	binary.LittleEndian.PutUint32(dst[off:], uint32(len(dst)-off-frameHdrSize))
	return dst
}

// AppendRequestFrame appends r as a complete request frame.
func AppendRequestFrame(dst []byte, r *Request) []byte {
	dst, off := appendFrameHdr(dst, FrameRequest)
	dst = EncodeRequest(dst, r)
	return finishFrame(dst, off)
}

// AppendResponseFrame appends r as a complete response frame.
func AppendResponseFrame(dst []byte, r *Response) []byte {
	dst, off := appendFrameHdr(dst, FrameResponse)
	dst = EncodeResponse(dst, r)
	return finishFrame(dst, off)
}

// AppendErrorFrame appends e as a complete error frame.
func AppendErrorFrame(dst []byte, e *ErrorFrame) []byte {
	dst, off := appendFrameHdr(dst, FrameError)
	dst = EncodeError(dst, e)
	return finishFrame(dst, off)
}

// FrameLen inspects a length prefix and reports the total byte size of the
// frame it announces (prefix included), without touching the payload. It
// returns ErrShortBuffer when src holds less than a prefix, and rejects
// zero-length and oversized announcements so a stream reader can size its
// next read from untrusted bytes safely.
func FrameLen(src []byte) (int, error) {
	if len(src) < frameHdrSize {
		return 0, ErrShortBuffer
	}
	n := int64(binary.LittleEndian.Uint32(src))
	if n < 1 {
		return 0, ErrBadFrame
	}
	if n > MaxFrameBytes {
		return 0, ErrFrameTooLarge
	}
	return frameHdrSize + int(n), nil
}

// DecodeFrame parses one frame from src, returning its kind, its payload
// (a sub-slice of src, not a copy), and the bytes consumed. The payload is
// still encoded; hand it to DecodeRequest/DecodeResponse/DecodeError per the
// kind. An unknown kind is ErrBadFrame — the frame length is still
// validated first, so a reader that wants to skip unknown kinds can.
func DecodeFrame(src []byte) (FrameKind, []byte, int, error) {
	total, err := FrameLen(src)
	if err != nil {
		return 0, nil, 0, err
	}
	if len(src) < total {
		return 0, nil, 0, ErrShortBuffer
	}
	kind := FrameKind(src[frameHdrSize])
	if kind < FrameRequest || kind > FrameError {
		return 0, nil, 0, ErrBadFrame
	}
	return kind, src[frameHdrSize+1 : total], total, nil
}

// ErrorFrame reports a request-level failure the server could not express
// as a normal Response: the request never reached a store (undecodable
// frame, unknown op, server draining). ID echoes the failed request's ID
// when the server got far enough to learn it; 0 means the failure poisons
// the connection (the frame itself was unparseable).
type ErrorFrame struct {
	ID   uint64
	Code Status
	Msg  string
}

// Error implements error, so a decoded error frame can surface directly.
func (e *ErrorFrame) Error() string {
	return fmt.Sprintf("rpcproto: remote error (id=%d, %v): %s", e.ID, e.Code, e.Msg)
}

const errHdrSize = 8 + 1 + 4

// EncodeError appends the error frame's wire form to dst.
func EncodeError(dst []byte, e *ErrorFrame) []byte {
	var hdr [errHdrSize]byte
	binary.LittleEndian.PutUint64(hdr[0:], e.ID)
	hdr[8] = uint8(e.Code)
	binary.LittleEndian.PutUint32(hdr[9:], uint32(len(e.Msg)))
	dst = append(dst, hdr[:]...)
	return append(dst, e.Msg...)
}

// DecodeError parses one error-frame payload from src, returning the frame
// and the bytes consumed.
func DecodeError(src []byte) (*ErrorFrame, int, error) {
	if len(src) < errHdrSize {
		return nil, 0, ErrShortBuffer
	}
	ml := int64(binary.LittleEndian.Uint32(src[9:]))
	total := errHdrSize + int(ml)
	if ml > MaxFrameBytes || len(src) < total {
		return nil, 0, ErrShortBuffer
	}
	e := &ErrorFrame{
		ID:   binary.LittleEndian.Uint64(src[0:]),
		Code: Status(src[8]),
		Msg:  string(src[errHdrSize:total]),
	}
	return e, total, nil
}
