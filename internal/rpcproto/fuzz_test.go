package rpcproto

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// hostileLengthRequest builds a request header whose key/value length fields
// announce more bytes than MaxFrameBytes allows — the shape a corrupted or
// adversarial peer would use to provoke a huge allocation.
func hostileLengthRequest(kl, vl uint32) []byte {
	hdr := make([]byte, reqHdrSize)
	binary.LittleEndian.PutUint32(hdr[25:], kl)
	binary.LittleEndian.PutUint32(hdr[29:], vl)
	return hdr
}

// tracedRequestCtx builds an empty-key request whose flags announce a trace
// context, followed by the given raw context-section bytes — the knob for
// truncated, oversized, and padded context encodings.
func tracedRequestCtx(ctx []byte) []byte {
	hdr := make([]byte, reqHdrSize)
	hdr[8] = uint8(OpGet)
	hdr[24] = reqFlagTraceCtx
	return append(hdr, ctx...)
}

// tracedResponseSpans builds a value-less response whose status byte
// announces a span section, followed by the given raw section bytes.
func tracedResponseSpans(sec []byte) []byte {
	hdr := make([]byte, respHdrSize)
	hdr[8] = uint8(StatusOK) | respFlagSpans
	return append(hdr, sec...)
}

// The decode paths parse bytes straight off the network. The fuzz targets
// below pin the safety contract every decoder must keep on arbitrary input:
// return an error or a value — never panic, and never size an allocation
// from an unvalidated length field (truncated frames, oversized length
// prefixes, and garbage must all be cheap rejections). `go test` runs the
// seeded corpus on every CI run; `go test -fuzz=FuzzDecodeFrame` explores.

func FuzzDecodeRequest(f *testing.F) {
	f.Add(EncodeRequest(nil, &Request{ID: 1, Op: OpGet, Key: []byte("k")}))
	f.Add(EncodeRequest(nil, &Request{ID: 2, Op: OpPut, Key: []byte("key"), Value: bytes.Repeat([]byte("v"), 300)}))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, reqHdrSize))   // max key/value lengths, no body
	f.Add(hostileLengthRequest(MaxFrameBytes+1, 0)) // oversized key length
	f.Add(hostileLengthRequest(0, MaxFrameBytes+1)) // oversized value length
	f.Add(hostileLengthRequest(MaxFrameBytes-1, 2)) // sum overflows the cap
	f.Add(hostileLengthRequest(1<<31, 1<<31))       // 32-bit int wraparound bait
	// Trace-context corpus: the canonical form, then the hostile shapes the
	// decoder must reject without panicking or allocating.
	f.Add(EncodeRequest(nil, &Request{ID: 3, Op: OpGet, Key: []byte("k"), TraceID: 77, TraceFlags: TraceSampled}))
	f.Add(tracedRequestCtx(nil))                                     // flag set, section missing
	f.Add(tracedRequestCtx([]byte{9}))                               // declared length, truncated body
	f.Add(tracedRequestCtx([]byte{8, 0, 0, 0, 0, 0, 0, 0, 0}))       // length below the v1 minimum
	f.Add(tracedRequestCtx([]byte{255}))                             // length above MaxTraceCtxLen
	f.Add(tracedRequestCtx(append([]byte{12}, make([]byte, 12)...))) // padded: v1 fields + ignored tail
	f.Add(func() []byte {                                            // unknown header flag bits must be rejected
		b := EncodeRequest(nil, &Request{ID: 4, Op: OpGet, Key: []byte("k")})
		b[24] = 0xF0
		return b
	}())
	f.Fuzz(func(t *testing.T, data []byte) {
		r, n, err := DecodeRequest(data)
		if err != nil {
			if r != nil || n != 0 {
				t.Fatalf("error return leaked partial result: r=%v n=%d", r, n)
			}
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		// A successful decode must survive a re-encode/re-decode cycle with
		// identical fields. (Byte equality is too strict: a non-canonical
		// Shipped byte decodes to a bool and re-encodes canonically.)
		r2, n2, err := DecodeRequest(EncodeRequest(nil, r))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if n2 != int(r.WireSize()) || r2.ID != r.ID || r2.Op != r.Op || r2.Tenant != r.Tenant ||
			r2.Partition != r.Partition || r2.Epoch != r.Epoch || r2.Hop != r.Hop ||
			r2.Shipped != r.Shipped || r2.TraceID != r.TraceID ||
			!bytes.Equal(r2.Key, r.Key) || !bytes.Equal(r2.Value, r.Value) {
			t.Fatalf("round trip mismatch: %+v vs %+v", r2, r)
		}
		if r.TraceID != 0 && r2.TraceFlags != r.TraceFlags {
			t.Fatalf("trace flags lost: %d vs %d", r2.TraceFlags, r.TraceFlags)
		}
	})
}

func FuzzDecodeResponse(f *testing.F) {
	f.Add(EncodeResponse(nil, &Response{ID: 1, Status: StatusOK, Value: []byte("v")}))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, respHdrSize))
	// Span-section corpus: a canonical piggyback, then the hostile shapes.
	f.Add(EncodeResponse(nil, &Response{ID: 2, Status: StatusOK, Spans: []PSpan{
		{Stage: StageNode, Hop: 1, QueueNS: 10, ServiceNS: 20},
		{Stage: StageEngine, Hop: 1, ServiceNS: 30},
	}}))
	f.Add(tracedResponseSpans(nil))               // flag set, section missing
	f.Add(tracedResponseSpans([]byte{0, 0, 0}))   // zero section length
	f.Add(tracedResponseSpans([]byte{200, 0, 5})) // declared spans, truncated body
	f.Add(tracedResponseSpans([]byte{1, 0, 255})) // count over MaxPiggySpans
	f.Add(tracedResponseSpans(func() []byte {     // count larger than the declared length holds
		sec := make([]byte, spanSecHdr+pspanSize)
		binary.LittleEndian.PutUint16(sec, uint16(1+pspanSize))
		sec[2] = 2
		return sec
	}()))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, n, err := DecodeResponse(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		// A successful decode must survive a re-encode/re-decode cycle with
		// identical fields. (Byte equality is too strict: a span or context
		// section may carry non-canonical padding that re-encodes minimal.)
		r2, n2, err := DecodeResponse(EncodeResponse(nil, r))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if n2 != int(r.WireSize()) || r2.ID != r.ID || r2.Status != r.Status ||
			r2.Tokens != r.Tokens || r2.Epoch != r.Epoch || !bytes.Equal(r2.Value, r.Value) ||
			len(r2.Spans) != len(r.Spans) {
			t.Fatalf("round trip mismatch: %+v vs %+v", r2, r)
		}
		for i := range r.Spans {
			if r2.Spans[i] != r.Spans[i] {
				t.Fatalf("span %d mismatch: %+v vs %+v", i, r2.Spans[i], r.Spans[i])
			}
		}
	})
}

func FuzzDecodeError(f *testing.F) {
	f.Add(EncodeError(nil, &ErrorFrame{ID: 9, Code: StatusErr, Msg: "boom"}))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, errHdrSize))
	f.Fuzz(func(t *testing.T, data []byte) {
		e, n, err := DecodeError(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if got := EncodeError(nil, e); !bytes.Equal(got, data[:n]) {
			t.Fatalf("re-encode mismatch: %x vs %x", got, data[:n])
		}
	})
}

func FuzzDecodeFrame(f *testing.F) {
	f.Add(AppendRequestFrame(nil, &Request{ID: 1, Op: OpPut, Key: []byte("k"), Value: []byte("v")}))
	f.Add(AppendResponseFrame(nil, &Response{ID: 1, Status: StatusNotFound}))
	f.Add(AppendErrorFrame(nil, &ErrorFrame{ID: 1, Code: StatusNack, Msg: "stale view"}))
	f.Add(AppendOverloadFrame(nil, &OverloadFrame{ID: 3, Tokens: 0, RetryAfterNS: 1e6}))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1}) // oversized length prefix
	f.Add([]byte{0, 0, 0, 0})                // zero-length frame
	// A well-framed request whose inner key length is hostile: the frame
	// layer accepts it, the request decoder must reject it allocation-free.
	hostile := append([]byte{0, 0, 0, 0, byte(FrameRequest)}, hostileLengthRequest(MaxFrameBytes+1, 0)...)
	binary.LittleEndian.PutUint32(hostile, uint32(len(hostile)-frameHdrSize))
	f.Add(hostile)
	f.Fuzz(func(t *testing.T, data []byte) {
		kind, payload, n, err := DecodeFrame(data)
		if err != nil {
			return
		}
		if n < frameHdrSize+1 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if len(payload) != n-frameHdrSize-1 {
			t.Fatalf("payload %d bytes for frame of %d", len(payload), n)
		}
		// The inner decoders must hold the same no-panic contract on the
		// sliced payload, whatever it contains.
		switch kind {
		case FrameRequest:
			DecodeRequest(payload)
		case FrameResponse:
			DecodeResponse(payload)
		case FrameError:
			DecodeError(payload)
		case FrameOverload:
			DecodeOverload(payload)
		case FrameBatchReq:
			DecodeBatchReq(payload, nil)
		case FrameBatchResp:
			DecodeBatchResp(payload, nil)
		case FrameHeartbeat:
			DecodeHeartbeat(payload)
		case FrameViewPush:
			DecodeViewPush(payload)
		case FrameChainFwd:
			DecodeRequest(payload)
		default:
			t.Fatalf("DecodeFrame accepted unknown kind %v", kind)
		}
	})
}

// hostileBatchReq builds a batch-request header announcing count items with
// no bodies behind them — the shape that must be rejected before any loop
// or allocation is sized from it.
func hostileBatchReq(count uint32, itemHdrs int) []byte {
	b := make([]byte, batchReqHdrSize+itemHdrs*batchReqItemHdr)
	b[8] = uint8(OpGet)
	binary.LittleEndian.PutUint32(b[9:], count)
	return b
}

func FuzzDecodeBatchReq(f *testing.F) {
	keys := [][]byte{[]byte("a"), []byte("bb"), nil}
	vals := [][]byte{[]byte("v1"), nil, []byte("v3")}
	frame := AppendBatchReqFrame(nil, 7, OpPut, keys, vals)
	_, payload, _, _ := DecodeFrame(frame)
	f.Add(append([]byte(nil), payload...))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, batchReqHdrSize)) // max count, no items
	f.Add(hostileBatchReq(MaxBatchItems+1, 0))         // count over the cap
	f.Add(hostileBatchReq(MaxBatchItems, 1))           // capped count, one header's bytes
	f.Add(hostileBatchReq(1<<31, 0))                   // 32-bit wraparound bait
	f.Add(hostileBatchReq(2, 2))                       // two zero-length items: valid
	hostileItem := hostileBatchReq(1, 1)               // one item whose klen is hostile
	binary.LittleEndian.PutUint32(hostileItem[batchReqHdrSize:], MaxFrameBytes+1)
	f.Add(hostileItem)
	// Trace-context corpus: a canonical traced batch, then hostile contexts
	// behind the flag bit.
	tframe := AppendBatchReqFrameCtx(nil, 8, OpGet, keys, nil, 99, TraceSampled)
	_, tpayload, _, _ := DecodeFrame(tframe)
	f.Add(append([]byte(nil), tpayload...))
	tracedHdr := func(ctx []byte) []byte {
		b := hostileBatchReq(0, 0)
		b[8] = uint8(OpGet) | batchFlagTraceCtx
		return append(b, ctx...)
	}
	f.Add(tracedHdr(nil))          // flag set, section missing
	f.Add(tracedHdr([]byte{9}))    // declared length, truncated body
	f.Add(tracedHdr([]byte{0xFF})) // length above MaxTraceCtxLen
	f.Fuzz(func(t *testing.T, data []byte) {
		id, op, traceID, traceFlags, items, err := DecodeBatchReqCtx(data, nil)
		if err != nil {
			return
		}
		if len(items) > MaxBatchItems {
			t.Fatalf("accepted %d items past the cap", len(items))
		}
		// A successful decode must survive a re-encode/re-decode cycle.
		keys := make([][]byte, len(items))
		vals := make([][]byte, len(items))
		for i, it := range items {
			keys[i], vals[i] = it.Key, it.Value
		}
		frame := AppendBatchReqFrameCtx(nil, id, op, keys, vals, traceID, traceFlags)
		_, payload, _, ferr := DecodeFrame(frame)
		if ferr != nil {
			t.Fatalf("re-framed batch rejected: %v", ferr)
		}
		id2, op2, traceID2, traceFlags2, items2, err := DecodeBatchReqCtx(payload, nil)
		if err != nil || id2 != id || op2 != op || traceID2 != traceID || len(items2) != len(items) {
			t.Fatalf("round trip mismatch: id %d/%d op %v/%v trace %d/%d n %d/%d err %v",
				id2, id, op2, op, traceID2, traceID, len(items2), len(items), err)
		}
		if traceID != 0 && traceFlags2 != traceFlags {
			t.Fatalf("trace flags lost: %d vs %d", traceFlags2, traceFlags)
		}
		for i := range items {
			if !bytes.Equal(items2[i].Key, items[i].Key) || !bytes.Equal(items2[i].Value, items[i].Value) {
				t.Fatalf("item %d mismatch", i)
			}
		}
	})
}

func FuzzDecodeBatchResp(f *testing.F) {
	frame := AppendBatchRespFrame(nil, 9, []Status{StatusOK, StatusNotFound}, [][]byte{[]byte("val"), nil})
	_, payload, _, _ := DecodeFrame(frame)
	f.Add(append([]byte(nil), payload...))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, batchRespHdrSize)) // max count, no items
	hostile := make([]byte, batchRespHdrSize+batchRespItemHdr)
	binary.LittleEndian.PutUint32(hostile[8:], 1)
	binary.LittleEndian.PutUint32(hostile[batchRespHdrSize+1:], MaxFrameBytes+1) // hostile vlen
	f.Add(hostile)
	f.Fuzz(func(t *testing.T, data []byte) {
		id, items, err := DecodeBatchResp(data, nil)
		if err != nil {
			return
		}
		if len(items) > MaxBatchItems {
			t.Fatalf("accepted %d items past the cap", len(items))
		}
		sts := make([]Status, len(items))
		vals := make([][]byte, len(items))
		for i, it := range items {
			sts[i], vals[i] = it.Status, it.Value
		}
		frame := AppendBatchRespFrame(nil, id, sts, vals)
		_, payload, _, ferr := DecodeFrame(frame)
		if ferr != nil {
			t.Fatalf("re-framed batch rejected: %v", ferr)
		}
		id2, items2, err := DecodeBatchResp(payload, nil)
		if err != nil || id2 != id || len(items2) != len(items) {
			t.Fatalf("round trip mismatch: id %d/%d n %d/%d err %v", id2, id, len(items2), len(items), err)
		}
		for i := range items {
			if items2[i].Status != items[i].Status || !bytes.Equal(items2[i].Value, items[i].Value) {
				t.Fatalf("item %d mismatch", i)
			}
		}
	})
}

func FuzzDecodeOverload(f *testing.F) {
	f.Add(EncodeOverload(nil, &OverloadFrame{ID: 1, Tokens: 7, RetryAfterNS: 5e5}))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, overloadSize))
	f.Fuzz(func(t *testing.T, data []byte) {
		o, n, err := DecodeOverload(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if got := EncodeOverload(nil, o); !bytes.Equal(got, data[:n]) {
			t.Fatalf("re-encode mismatch: %x vs %x", got, data[:n])
		}
	})
}
