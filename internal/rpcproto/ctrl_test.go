package rpcproto

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"strings"
	"testing"
)

func TestHeartbeatRoundTrip(t *testing.T) {
	cases := []*Heartbeat{
		{},
		{Node: 101, Epoch: 7, Addr: "127.0.0.1:9001"},
		{Node: 0, Epoch: 0, Addr: ""}, // observer beat
		{Node: 3, Epoch: 12, Addr: "[::1]:80", Done: []CopyRef{
			{Partition: 0, Dest: 102},
			{Partition: 7, Dest: 101},
		}},
	}
	for _, h := range cases {
		enc := EncodeHeartbeat(nil, h)
		got, n, err := DecodeHeartbeat(enc)
		if err != nil {
			t.Fatalf("decode %+v: %v", h, err)
		}
		if n != len(enc) {
			t.Fatalf("consumed %d of %d", n, len(enc))
		}
		if got.Node != h.Node || got.Epoch != h.Epoch || got.Addr != h.Addr ||
			!reflect.DeepEqual(got.Done, h.Done) {
			t.Fatalf("round trip mismatch: %+v vs %+v", got, h)
		}
	}
}

func TestViewPushRoundTrip(t *testing.T) {
	cases := []*ViewPush{
		{},
		{Epoch: 3, R: 3, NumPart: 8, Nodes: []ViewNode{
			{ID: 101, State: 2, Addr: "127.0.0.1:9001"},
			{ID: 102, State: 1, Addr: "127.0.0.1:9002"},
			{ID: 103, State: 2, Addr: ""},
		}},
		{Epoch: 9, R: 2, NumPart: 16,
			Nodes:    []ViewNode{{ID: 101, State: 2, Addr: "h:1"}},
			Unsynced: []UnsyncedRef{{Partition: 3, Node: 102}, {Partition: 5, Node: 102}},
			Copies:   []CopyRef{{Partition: 3, Dest: 102}},
		},
	}
	for _, v := range cases {
		enc := EncodeViewPush(nil, v)
		got, n, err := DecodeViewPush(enc)
		if err != nil {
			t.Fatalf("decode %+v: %v", v, err)
		}
		if n != len(enc) {
			t.Fatalf("consumed %d of %d", n, len(enc))
		}
		if got.Epoch != v.Epoch || got.R != v.R || got.NumPart != v.NumPart ||
			!reflect.DeepEqual(got.Nodes, v.Nodes) ||
			!reflect.DeepEqual(got.Unsynced, v.Unsynced) ||
			!reflect.DeepEqual(got.Copies, v.Copies) {
			t.Fatalf("round trip mismatch: %+v vs %+v", got, v)
		}
	}
}

// TestCtrlHostileCounts pins the validation order: a count or length field
// announcing more than the payload holds (or more than the cap allows) is a
// cheap error, never a large allocation or a panic.
func TestCtrlHostileCounts(t *testing.T) {
	// Heartbeat announcing a giant done count with no bodies.
	hb := make([]byte, hbHdrSize)
	binary.LittleEndian.PutUint16(hb[18:], 1<<15)
	if _, _, err := DecodeHeartbeat(hb); err == nil {
		t.Fatal("hostile done count accepted")
	}
	// Heartbeat with an addr length past the cap.
	hb2 := make([]byte, hbHdrSize)
	binary.LittleEndian.PutUint16(hb2[16:], MaxAddrLen+1)
	if _, _, err := DecodeHeartbeat(hb2); err == nil {
		t.Fatal("hostile addr length accepted")
	}
	// ViewPush announcing max counts with no bodies.
	vp := make([]byte, vpHdrSize)
	binary.LittleEndian.PutUint16(vp[13:], 1<<12)
	if _, _, err := DecodeViewPush(vp); err == nil {
		t.Fatal("hostile node count accepted")
	}
	vp2 := make([]byte, vpHdrSize)
	binary.LittleEndian.PutUint32(vp2[15:], 1<<31) // unsynced count wraparound bait
	if _, _, err := DecodeViewPush(vp2); err == nil {
		t.Fatal("hostile unsynced count accepted")
	}
	// A node entry whose addr length overruns the buffer.
	vp3 := make([]byte, vpHdrSize+vpNodeHdrSize)
	binary.LittleEndian.PutUint16(vp3[13:], 1)
	binary.LittleEndian.PutUint16(vp3[vpHdrSize+9:], 200)
	if _, _, err := DecodeViewPush(vp3); err == nil {
		t.Fatal("overrunning addr accepted")
	}
}

func TestCtrlFrames(t *testing.T) {
	hb := &Heartbeat{Node: 101, Epoch: 4, Addr: "127.0.0.1:9001",
		Done: []CopyRef{{Partition: 1, Dest: 103}}}
	frame := AppendHeartbeatFrame(nil, hb)
	kind, payload, n, err := DecodeFrame(frame)
	if err != nil || kind != FrameHeartbeat || n != len(frame) {
		t.Fatalf("heartbeat frame: kind=%v n=%d err=%v", kind, n, err)
	}
	if got, _, err := DecodeHeartbeat(payload); err != nil || got.Node != 101 {
		t.Fatalf("heartbeat payload: %+v err=%v", got, err)
	}

	vp := &ViewPush{Epoch: 2, R: 3, NumPart: 8,
		Nodes: []ViewNode{{ID: 101, State: 2, Addr: "a:1"}}}
	frame = AppendViewPushFrame(nil, vp)
	kind, payload, _, err = DecodeFrame(frame)
	if err != nil || kind != FrameViewPush {
		t.Fatalf("view-push frame: kind=%v err=%v", kind, err)
	}
	if got, _, err := DecodeViewPush(payload); err != nil || got.Epoch != 2 {
		t.Fatalf("view-push payload: %+v err=%v", got, err)
	}

	// A chain-forward frame is a request under the peer kind: same payload
	// bytes, distinct discriminator.
	req := &Request{ID: 9, Op: OpPut, Partition: 3, Epoch: 2, Hop: 1,
		Key: []byte("k"), Value: []byte("v")}
	fwd := AppendChainFwdFrame(nil, req)
	plain := AppendRequestFrame(nil, req)
	if !bytes.Equal(fwd[frameHdrSize+1:], plain[frameHdrSize+1:]) {
		t.Fatal("chain-forward payload diverged from request payload")
	}
	kind, payload, _, err = DecodeFrame(fwd)
	if err != nil || kind != FrameChainFwd {
		t.Fatalf("chain-fwd frame: kind=%v err=%v", kind, err)
	}
	var r2 Request
	if _, err := r2.DecodeBorrow(payload); err != nil || r2.ID != 9 || r2.Hop != 1 {
		t.Fatalf("chain-fwd payload: %+v err=%v", r2, err)
	}

	for _, k := range []FrameKind{FrameHeartbeat, FrameViewPush, FrameChainFwd} {
		if strings.HasPrefix(k.String(), "FrameKind(") {
			t.Fatalf("kind %d has no name", k)
		}
	}
}

// TestChainFwdEncodeAllocs pins that framing a chain-forward into a pooled
// buffer allocates nothing: the per-hop forward on the serve path reuses the
// request encoder, which appends into caller-owned capacity.
func TestChainFwdEncodeAllocs(t *testing.T) {
	req := &Request{ID: 1, Op: OpPut, Partition: 3, Epoch: 2, Hop: 1,
		Key: bytes.Repeat([]byte("k"), 16), Value: bytes.Repeat([]byte("v"), 256)}
	buf := make([]byte, 0, 1024)
	allocs := testing.AllocsPerRun(200, func() {
		buf = AppendChainFwdFrame(buf[:0], req)
	})
	if allocs > 0 {
		t.Fatalf("AppendChainFwdFrame allocates %.1f/op, want 0", allocs)
	}
}

func FuzzDecodeHeartbeat(f *testing.F) {
	f.Add(EncodeHeartbeat(nil, &Heartbeat{Node: 101, Epoch: 3, Addr: "127.0.0.1:9001"}))
	f.Add(EncodeHeartbeat(nil, &Heartbeat{Node: 1, Done: []CopyRef{{Partition: 2, Dest: 103}}}))
	f.Add(EncodeHeartbeat(nil, &Heartbeat{Node: 2, Addr: "a", MetricsAddr: "127.0.0.1:9151"}))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, hbHdrSize)) // max addr len + done count, no bodies
	// Hostile metrics-addr extensions: a lone trailing byte (no room for the
	// length prefix), a truncated declared address, an oversized length.
	base := EncodeHeartbeat(nil, &Heartbeat{Node: 7, Addr: "x"})
	f.Add(append(append([]byte(nil), base...), 0x01))
	f.Add(append(append([]byte(nil), base...), 9, 0, 'a'))
	f.Add(append(append([]byte(nil), base...), 0xFF, 0xFF))
	f.Fuzz(func(t *testing.T, data []byte) {
		h, n, err := DecodeHeartbeat(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		// Field equality, not byte equality: an empty trailing extension
		// decodes to "" and re-encodes as absent.
		h2, n2, err := DecodeHeartbeat(EncodeHeartbeat(nil, h))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if h2.Node != h.Node || h2.Epoch != h.Epoch || h2.Addr != h.Addr ||
			h2.MetricsAddr != h.MetricsAddr || len(h2.Done) != len(h.Done) || n2 <= 0 {
			t.Fatalf("round trip mismatch: %+v vs %+v", h2, h)
		}
	})
}

func FuzzDecodeViewPush(f *testing.F) {
	f.Add(EncodeViewPush(nil, &ViewPush{Epoch: 1, R: 3, NumPart: 8,
		Nodes:    []ViewNode{{ID: 101, State: 2, Addr: "h:1"}, {ID: 102, State: 1, Addr: "h:2"}},
		Unsynced: []UnsyncedRef{{Partition: 1, Node: 102}},
		Copies:   []CopyRef{{Partition: 1, Dest: 102}},
	}))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, vpHdrSize)) // hostile counts, no bodies
	hostileAddr := make([]byte, vpHdrSize+vpNodeHdrSize)
	binary.LittleEndian.PutUint16(hostileAddr[13:], 1)
	binary.LittleEndian.PutUint16(hostileAddr[vpHdrSize+9:], MaxAddrLen) // announced, absent
	f.Add(hostileAddr)
	f.Fuzz(func(t *testing.T, data []byte) {
		v, n, err := DecodeViewPush(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if got := EncodeViewPush(nil, v); !bytes.Equal(got, data[:n]) {
			t.Fatalf("re-encode mismatch: %x vs %x", got, data[:n])
		}
	})
}
