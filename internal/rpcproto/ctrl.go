package rpcproto

import "encoding/binary"

// Control frames: the node <-> manager protocol the multi-process cluster
// speaks over the same framing as the KV path. A node (or a view observer
// such as a client) periodically sends a Heartbeat; the manager answers each
// one with a ViewPush carrying the current membership snapshot plus any COPY
// commands outstanding for that node. Both sides decode these off a raw
// socket, so every length and count field is validated against MaxFrameBytes
// (and its own cap) BEFORE it sizes an allocation or a loop — the same
// hostile-input contract the request/batch decoders keep.

// Caps on control-frame repetition counts. Far above any legitimate
// deployment, low enough that a corrupted count cannot provoke a huge
// allocation on its own; the per-item bounds checks below do the rest.
const (
	// MaxViewNodes bounds the members one ViewPush may carry.
	MaxViewNodes = 1 << 12
	// MaxViewUnsynced bounds the (partition, node) unsynced marks.
	MaxViewUnsynced = 1 << 16
	// MaxCopyCmds bounds the COPY commands piggybacked per push, and the
	// completions piggybacked per heartbeat.
	MaxCopyCmds = 1 << 16
	// MaxAddrLen bounds one advertised host:port string.
	MaxAddrLen = 1 << 8
)

// CopyRef names one (partition, destination) migration: a command in a
// ViewPush (ordered by the manager, executed by the receiving node as the
// source), a completion in a Heartbeat.
type CopyRef struct {
	Partition uint32
	Dest      uint64 // destination node ID
}

// Heartbeat is one liveness beacon. Node 0 is the observer convention: the
// manager answers with the view but does not admit the sender to membership
// (clients use this to fetch views). Addr is the sender's advertised peer
// address, re-sent every beat so the manager learns it at registration and
// keeps it current. Done lists COPY migrations this node completed as the
// source since the last beat.
type Heartbeat struct {
	Node  uint64
	Epoch uint64 // sender's current view epoch (0 = none yet)
	Addr  string
	Done  []CopyRef
	// MetricsAddr is the sender's observability endpoint (the host:port its
	// /metrics HTTP server listens on), "" when it serves none. The manager
	// uses it to scrape members for fleet aggregation. Encoded as a trailing
	// length-prefixed extension: decoders that predate it (which ignored
	// trailing heartbeat bytes) skip it, and an absent section decodes as "".
	MetricsAddr string
}

const hbHdrSize = 8 + 8 + 2 + 2 // node, epoch, addr len, done count

// EncodeHeartbeat appends the heartbeat's wire form to dst.
func EncodeHeartbeat(dst []byte, h *Heartbeat) []byte {
	var hdr [hbHdrSize]byte
	binary.LittleEndian.PutUint64(hdr[0:], h.Node)
	binary.LittleEndian.PutUint64(hdr[8:], h.Epoch)
	binary.LittleEndian.PutUint16(hdr[16:], uint16(len(h.Addr)))
	binary.LittleEndian.PutUint16(hdr[18:], uint16(len(h.Done)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, h.Addr...)
	for _, d := range h.Done {
		dst = appendCopyRef(dst, d)
	}
	if h.MetricsAddr != "" {
		var ml [2]byte
		binary.LittleEndian.PutUint16(ml[:], uint16(len(h.MetricsAddr)))
		dst = append(dst, ml[:]...)
		dst = append(dst, h.MetricsAddr...)
	}
	return dst
}

// DecodeHeartbeat parses one heartbeat payload from src, returning the
// heartbeat and the bytes consumed. The result owns its bytes.
func DecodeHeartbeat(src []byte) (*Heartbeat, int, error) {
	if len(src) < hbHdrSize {
		return nil, 0, ErrShortBuffer
	}
	al := int(binary.LittleEndian.Uint16(src[16:]))
	nd := int(binary.LittleEndian.Uint16(src[18:]))
	if al > MaxAddrLen || nd > MaxCopyCmds {
		return nil, 0, ErrBadFrame
	}
	total := hbHdrSize + al + nd*copyRefSize
	if len(src) < total {
		return nil, 0, ErrShortBuffer
	}
	h := &Heartbeat{
		Node:  binary.LittleEndian.Uint64(src[0:]),
		Epoch: binary.LittleEndian.Uint64(src[8:]),
		Addr:  string(src[hbHdrSize : hbHdrSize+al]),
	}
	off := hbHdrSize + al
	if nd > 0 {
		h.Done = make([]CopyRef, nd)
		for i := range h.Done {
			h.Done[i] = decodeCopyRef(src[off:])
			off += copyRefSize
		}
	}
	// Trailing extension: the metrics address. Absent on older (and
	// metrics-less) senders; bytes past it are in turn ignored, keeping the
	// same room for future extensions this one used.
	if len(src) > total {
		if len(src) < total+2 {
			return nil, 0, ErrShortBuffer
		}
		ml := int(binary.LittleEndian.Uint16(src[total:]))
		if ml > MaxAddrLen {
			return nil, 0, ErrBadFrame
		}
		if len(src) < total+2+ml {
			return nil, 0, ErrShortBuffer
		}
		h.MetricsAddr = string(src[total+2 : total+2+ml])
		total += 2 + ml
	}
	return h, total, nil
}

// AppendHeartbeatFrame appends h as a complete heartbeat frame.
func AppendHeartbeatFrame(dst []byte, h *Heartbeat) []byte {
	dst, off := appendFrameHdr(dst, FrameHeartbeat)
	dst = EncodeHeartbeat(dst, h)
	return finishFrame(dst, off)
}

// ViewNode is one member in a pushed view.
type ViewNode struct {
	ID    uint64
	State uint8 // cluster.NodeState value
	Addr  string
}

// UnsyncedRef marks one (partition, node) replica still receiving COPY
// traffic: it participates in write chains but must not serve reads.
type UnsyncedRef struct {
	Partition uint32
	Node      uint64
}

// ViewPush is one membership snapshot plus the COPY commands outstanding
// for the heartbeating node (redelivered every push until the node reports
// them Done — commands are idempotent, nodes dedup in-flight copies).
type ViewPush struct {
	Epoch    uint64
	R        uint8
	NumPart  uint32
	Nodes    []ViewNode
	Unsynced []UnsyncedRef
	Copies   []CopyRef
}

const (
	vpHdrSize     = 8 + 1 + 4 + 2 + 4 + 2 // epoch, r, numpart, node count, unsynced count, copy count
	vpNodeHdrSize = 8 + 1 + 2             // id, state, addr len
	copyRefSize   = 4 + 8
	unsyncedSize  = 4 + 8
)

func appendCopyRef(dst []byte, c CopyRef) []byte {
	var b [copyRefSize]byte
	binary.LittleEndian.PutUint32(b[0:], c.Partition)
	binary.LittleEndian.PutUint64(b[4:], c.Dest)
	return append(dst, b[:]...)
}

func decodeCopyRef(src []byte) CopyRef {
	return CopyRef{
		Partition: binary.LittleEndian.Uint32(src[0:]),
		Dest:      binary.LittleEndian.Uint64(src[4:]),
	}
}

// EncodeViewPush appends the push's wire form to dst.
func EncodeViewPush(dst []byte, v *ViewPush) []byte {
	var hdr [vpHdrSize]byte
	binary.LittleEndian.PutUint64(hdr[0:], v.Epoch)
	hdr[8] = v.R
	binary.LittleEndian.PutUint32(hdr[9:], v.NumPart)
	binary.LittleEndian.PutUint16(hdr[13:], uint16(len(v.Nodes)))
	binary.LittleEndian.PutUint32(hdr[15:], uint32(len(v.Unsynced)))
	binary.LittleEndian.PutUint16(hdr[19:], uint16(len(v.Copies)))
	dst = append(dst, hdr[:]...)
	for _, n := range v.Nodes {
		var nh [vpNodeHdrSize]byte
		binary.LittleEndian.PutUint64(nh[0:], n.ID)
		nh[8] = n.State
		binary.LittleEndian.PutUint16(nh[9:], uint16(len(n.Addr)))
		dst = append(dst, nh[:]...)
		dst = append(dst, n.Addr...)
	}
	for _, u := range v.Unsynced {
		var ub [unsyncedSize]byte
		binary.LittleEndian.PutUint32(ub[0:], u.Partition)
		binary.LittleEndian.PutUint64(ub[4:], u.Node)
		dst = append(dst, ub[:]...)
	}
	for _, c := range v.Copies {
		dst = appendCopyRef(dst, c)
	}
	return dst
}

// DecodeViewPush parses one view-push payload from src, returning the push
// and the bytes consumed. The result owns its bytes. Every count is capped
// and every item bounds-checked before it is read, so truncated or hostile
// payloads are cheap rejections.
func DecodeViewPush(src []byte) (*ViewPush, int, error) {
	if len(src) < vpHdrSize {
		return nil, 0, ErrShortBuffer
	}
	nn := int(binary.LittleEndian.Uint16(src[13:]))
	nu := int64(binary.LittleEndian.Uint32(src[15:]))
	nc := int(binary.LittleEndian.Uint16(src[19:]))
	if nn > MaxViewNodes || nu > MaxViewUnsynced || nc > MaxCopyCmds {
		return nil, 0, ErrBadFrame
	}
	v := &ViewPush{
		Epoch:   binary.LittleEndian.Uint64(src[0:]),
		R:       src[8],
		NumPart: binary.LittleEndian.Uint32(src[9:]),
	}
	off := vpHdrSize
	if nn > 0 {
		v.Nodes = make([]ViewNode, nn)
		for i := range v.Nodes {
			if len(src) < off+vpNodeHdrSize {
				return nil, 0, ErrShortBuffer
			}
			al := int(binary.LittleEndian.Uint16(src[off+9:]))
			if al > MaxAddrLen {
				return nil, 0, ErrBadFrame
			}
			if len(src) < off+vpNodeHdrSize+al {
				return nil, 0, ErrShortBuffer
			}
			v.Nodes[i] = ViewNode{
				ID:    binary.LittleEndian.Uint64(src[off:]),
				State: src[off+8],
				Addr:  string(src[off+vpNodeHdrSize : off+vpNodeHdrSize+al]),
			}
			off += vpNodeHdrSize + al
		}
	}
	if nu > 0 {
		if int64(len(src)-off) < nu*unsyncedSize {
			return nil, 0, ErrShortBuffer
		}
		v.Unsynced = make([]UnsyncedRef, nu)
		for i := range v.Unsynced {
			v.Unsynced[i] = UnsyncedRef{
				Partition: binary.LittleEndian.Uint32(src[off:]),
				Node:      binary.LittleEndian.Uint64(src[off+4:]),
			}
			off += unsyncedSize
		}
	}
	if nc > 0 {
		if len(src)-off < nc*copyRefSize {
			return nil, 0, ErrShortBuffer
		}
		v.Copies = make([]CopyRef, nc)
		for i := range v.Copies {
			v.Copies[i] = decodeCopyRef(src[off:])
			off += copyRefSize
		}
	}
	return v, off, nil
}

// AppendViewPushFrame appends v as a complete view-push frame.
func AppendViewPushFrame(dst []byte, v *ViewPush) []byte {
	dst, off := appendFrameHdr(dst, FrameViewPush)
	dst = EncodeViewPush(dst, v)
	return finishFrame(dst, off)
}

// AppendChainFwdFrame appends r as a complete chain-forward frame: the
// request wire form under the peer-traffic kind. Decode the payload with
// Request.DecodeBorrow, exactly like a FrameRequest.
func AppendChainFwdFrame(dst []byte, r *Request) []byte {
	dst, off := appendFrameHdr(dst, FrameChainFwd)
	dst = EncodeRequest(dst, r)
	return finishFrame(dst, off)
}
