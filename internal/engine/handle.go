package engine

import (
	"leed/internal/core"
	"leed/internal/obs"
	"leed/internal/rpcproto"
	"leed/internal/runtime"
)

// Handle is a borrowed reference to one partition: the unit the server
// front-end routes to. A Handle carries everything the serve path needs —
// execution, admission introspection — without exposing Engine internals,
// so routing code holds a flat []Handle instead of (engine, pid) pairs and
// a future multi-engine server can mix handles from several JBOFs.
type Handle struct {
	e   *Engine
	pid int
}

// HandleOf returns a handle to partition pid.
func (e *Engine) HandleOf(pid int) Handle { return Handle{e: e, pid: pid} }

// Handles returns handles to all partitions, in pid order.
func (e *Engine) Handles() []Handle {
	hs := make([]Handle, len(e.parts))
	for i := range hs {
		hs[i] = Handle{e: e, pid: i}
	}
	return hs
}

// ID returns the partition id the handle refers to.
func (h Handle) ID() int { return h.pid }

// SSD returns the drive the partition lives on.
func (h Handle) SSD() int { return h.e.parts[h.pid].SSD }

// Execute runs one storage command against the partition, blocking through
// admission, execution, and completion.
func (h Handle) Execute(p runtime.Task, op rpcproto.Op, key, val []byte) ([]byte, core.OpStats, error) {
	return h.e.ExecuteTraced(p, h.pid, op, key, val, nil)
}

// ExecuteTraced is Execute carrying the request's trace.
func (h Handle) ExecuteTraced(p runtime.Task, op rpcproto.Op, key, val []byte, tr *obs.Trace) ([]byte, core.OpStats, error) {
	return h.e.ExecuteTraced(p, h.pid, op, key, val, tr)
}

// ExecuteTracedInto is ExecuteTraced with a GET's value appended to dst;
// see Engine.ExecuteTracedInto.
func (h Handle) ExecuteTracedInto(p runtime.Task, op rpcproto.Op, key, val, dst []byte, tr *obs.Trace) ([]byte, core.OpStats, error) {
	return h.e.ExecuteTracedInto(p, h.pid, op, key, val, dst, tr)
}

// AvailableTokens returns the partition's current admission tokens.
func (h Handle) AvailableTokens() int64 { return h.e.AvailableTokens(h.pid) }

// WaitingDepth returns the partition's waiting-queue occupancy.
func (h Handle) WaitingDepth() int { return h.e.WaitingDepth(h.pid) }
