// Package engine implements LEED's intra-JBOF I/O execution (§3.4) and
// write-imbalance handling (§3.6) on one SmartNIC JBOF: a static core-to-SSD
// mapping, per-partition token-based admission (active queue) with FIFO
// waiting queues, background compaction, and data swapping that redirects
// overloaded PUTs to the least-loaded co-located SSD.
package engine

import (
	"fmt"
	"sync/atomic"

	"leed/internal/core"
	"leed/internal/flashsim"
	"leed/internal/obs"
	"leed/internal/platform"
	"leed/internal/rpcproto"
	"leed/internal/runtime"
)

// Config describes one engine instance over a platform node.
type Config struct {
	Env runtime.Env
	// Node is the platform model the engine charges compute and memory
	// movement against. Optional: with a nil Node the engine runs in
	// pure-device mode — Devices alone define the drive set, no core gates
	// or memory bus are modeled, and store compute is uncharged (NopExec).
	// The server front-end uses this mode: on real hardware the host CPU
	// is real, so only the device path needs modeling.
	Node *platform.Node

	// Devices, when non-nil, overrides Node.SSDs as the backing device per
	// drive index (len must equal len(Node.SSDs)). Chaos harnesses use it to
	// interpose flashsim.FaultInjector wrappers; the SSDs still provide the
	// timing/capacity model that sizes the engine. With a nil Node, Devices
	// is required and is the drive set.
	Devices []flashsim.Device

	// PartitionsPerSSD is the number of virtual nodes per drive (the
	// paper's prototype uses 32; simulations typically use fewer).
	PartitionsPerSSD int
	// Geometry sizes each partition's store. Required.
	Geometry core.Geometry
	// PartitionBytes is each partition's device region size. Required.
	PartitionBytes int64

	// TokensPerPartition sizes each partition's active queue, in token
	// units (a GET costs 2, a PUT 3, a DEL 2 — one token per NVMe access,
	// following the paper's empirical assignment). Default 48.
	TokensPerPartition int64
	// SwapEnabled turns on intra-JBOF data swapping.
	SwapEnabled bool
	// SwapThreshold is the home drive's waiting-queue occupancy that
	// triggers swapping, provided an idle helper exists. Defaults to
	// TokensPerPartition: the home must be oversubscribed by a full
	// admission window before writes are redirected.
	SwapThreshold int

	SubCompactions int
	Prefetch       bool
	Costs          core.CostModel
	// CompactEvery is the background compaction check period. Default 1ms.
	CompactEvery runtime.Time
	// FlushEvery, when non-zero, makes each partition's compactor proc
	// persist the store superblock periodically. Without it a superblock is
	// written only when compaction moves a log head, so a crash early in a
	// partition's life recovers nothing (§3.8.1's replay needs a root).
	FlushEvery runtime.Time

	// ModelMemBW serializes each command's data movement through the
	// node's onboard memory pipe (platform.Spec.MemBWBytesPS). The paper
	// identifies this 4390MB/s bus as the Stingray's other hard ceiling:
	// it "bounds the max number of concurrent operations" (§4.8).
	ModelMemBW bool

	// Obs and Tracer, when set, bind the engine to a metrics registry and
	// attribute each executed command to the engine/cpu/ssd trace stages
	// (token admission wait vs store execution, with the store's CPU/SSD
	// split from core.OpStats). Both optional.
	Obs    *obs.Registry
	Tracer *obs.Tracer
	// ObsNode labels this engine's series (e.g. the node address).
	ObsNode string
}

// memBus models the onboard DRAM bandwidth as a serialization pipe: each
// transfer occupies the bus for bytes/BW, queued FIFO by busy-until time.
type memBus struct {
	bytesPS  int64
	busyFree runtime.Time
	waited   runtime.Time // cumulative queueing delay, for diagnostics
}

// transfer blocks the proc until the bus has carried n bytes for it.
func (b *memBus) transfer(p runtime.Task, n int64) {
	if b == nil || n <= 0 {
		return
	}
	now := p.Now()
	start := now
	if b.busyFree > start {
		start = b.busyFree
	}
	dur := runtime.Time(n * int64(runtime.Second) / b.bytesPS)
	b.busyFree = start + dur
	b.waited += start - now
	p.Sleep(b.busyFree - now)
}

// Partition is one virtual node: a store plus its admission state.
type Partition struct {
	ID     int
	SSD    int
	Store  *core.Store
	tokens runtime.Resource
}

// TokenCost returns the admission cost of an operation: one token per NVMe
// access (§3.4: token quantity per command decided empirically).
func TokenCost(op rpcproto.Op) int64 {
	switch op {
	case rpcproto.OpPut, rpcproto.OpCopy:
		return 3
	case rpcproto.OpGet, rpcproto.OpDel:
		return 2
	}
	return 1
}

// Engine is one JBOF's storage executor.
type Engine struct {
	cfg    Config
	env    runtime.Env
	parts  []*Partition
	execs  []*coreGate // one per SSD
	membus *memBus     // nil unless ModelMemBW
	// gen is bumped by Stop so compactors from an old incarnation drain even
	// if the engine restarts before they wake; atomic because on the
	// wallclock backend Stop may be called from outside any task (e.g. the
	// goroutine that owns the Env).
	gen atomic.Int64

	stats EngineStats
	o     *engObs
}

// engObs is the engine's registry binding. Nil receiver methods no-op.
type engObs struct {
	tr                             *obs.Tracer
	executed, swapped, compactions *obs.Counter
}

func newEngObs(reg *obs.Registry, tr *obs.Tracer, node string) *engObs {
	l := []string{"node", node}
	return &engObs{
		tr:          tr,
		executed:    reg.Counter("leed_engine_executed_total", l...),
		swapped:     reg.Counter("leed_engine_swapped_total", l...),
		compactions: reg.Counter("leed_engine_compactions_total", l...),
	}
}

func (o *engObs) exec() {
	if o == nil {
		return
	}
	o.executed.Inc()
}

func (o *engObs) swap() {
	if o == nil {
		return
	}
	o.swapped.Inc()
}

func (o *engObs) compact() {
	if o == nil {
		return
	}
	o.compactions.Inc()
}

// observeExec attributes one executed command: the engine span (admission
// queue vs store execution) plus the store's CPU/SSD split. A command that
// carries a trace records into it (the trace's End aggregates); an
// untraced command aggregates directly.
func (e *Engine) observeExec(tr *obs.Trace, queue, service runtime.Time, st core.OpStats) {
	if tr != nil {
		tr.Span("engine", queue, service)
		tr.Span("cpu", 0, st.CPU)
		tr.Span("ssd", 0, st.SSD)
		return
	}
	if e.o != nil {
		e.o.tr.Observe("engine", queue, service)
		e.o.tr.Observe("cpu", 0, st.CPU)
		e.o.tr.Observe("ssd", 0, st.SSD)
	}
}

// EngineStats are cumulative counters.
type EngineStats struct {
	Executed    int64
	Swapped     int64
	Compactions int64
}

// coreGate serializes store compute phases onto one CPU core.
type coreGate struct {
	core *platform.Core
	res  runtime.Resource
}

// Compute implements core.Exec.
func (g *coreGate) Compute(t runtime.Task, cycles int64) {
	g.res.Acquire(t, 1)
	g.core.RunCycles(t, cycles)
	g.res.Release(1)
}

// New builds an engine: one store per (SSD, partition slot), with stores on
// the same JBOF registered as swap peers of one another.
func New(cfg Config) *Engine {
	if cfg.PartitionsPerSSD == 0 {
		cfg.PartitionsPerSSD = 2
	}
	if cfg.TokensPerPartition == 0 {
		cfg.TokensPerPartition = 48
	}
	if cfg.SwapThreshold == 0 {
		cfg.SwapThreshold = int(cfg.TokensPerPartition)
	}
	if cfg.CompactEvery == 0 {
		cfg.CompactEvery = runtime.Millisecond
	}
	e := &Engine{cfg: cfg, env: cfg.Env}
	if cfg.Obs != nil || cfg.Tracer != nil {
		e.o = newEngObs(cfg.Obs, cfg.Tracer, cfg.ObsNode)
	}
	n := cfg.Node
	if n == nil && len(cfg.Devices) == 0 {
		panic("engine: Config needs a Node or Devices")
	}
	if n != nil && cfg.ModelMemBW && n.Spec.MemBWBytesPS > 0 {
		e.membus = &memBus{bytesPS: n.Spec.MemBWBytesPS}
	}
	numSSD := len(cfg.Devices)
	if n != nil {
		numSSD = len(n.SSDs)
	}
	g := cfg.Geometry
	needed := g.KeyLogBytes + g.ValLogBytes + g.SwapLogBytes + 4096
	if needed > cfg.PartitionBytes {
		panic(fmt.Sprintf("engine: geometry (%d bytes) exceeds partition size %d", needed, cfg.PartitionBytes))
	}
	cap0 := int64(0)
	if n != nil {
		cap0 = n.SSDs[0].Capacity()
	} else {
		cap0 = cfg.Devices[0].Capacity()
	}
	if int64(cfg.PartitionsPerSSD)*cfg.PartitionBytes > cap0 {
		panic(fmt.Sprintf("engine: %d partitions of %d bytes exceed SSD capacity %d",
			cfg.PartitionsPerSSD, cfg.PartitionBytes, cap0))
	}
	// Static core mapping (§3.4): the first min(numSSD, cores) cores drive
	// storage; remaining cores are left to the caller for polling/control.
	// Pure-device mode has no modeled cores: execs stays empty and each
	// store's Exec defaults to NopExec.
	if n != nil {
		for i := 0; i < numSSD; i++ {
			c := n.Cores[i%len(n.Cores)]
			e.execs = append(e.execs, &coreGate{core: c, res: cfg.Env.MakeResource(1)})
		}
	}
	for ssd := 0; ssd < numSSD; ssd++ {
		var dev flashsim.Device
		if cfg.Devices != nil {
			dev = cfg.Devices[ssd]
		} else {
			dev = n.SSDs[ssd]
		}
		var exec core.Exec
		if e.execs != nil {
			exec = e.execs[ssd]
		}
		for slot := 0; slot < cfg.PartitionsPerSSD; slot++ {
			pid := len(e.parts)
			sc := core.StoreConfigFor(cfg.Geometry, core.Config{
				Env:            cfg.Env,
				Device:         dev,
				DevID:          uint8(ssd),
				Exec:           exec,
				Costs:          cfg.Costs,
				RegionOff:      int64(slot) * cfg.PartitionBytes,
				SubCompactions: cfg.SubCompactions,
				Prefetch:       cfg.Prefetch,
			})
			st := core.NewStore(sc)
			e.parts = append(e.parts, &Partition{
				ID: pid, SSD: ssd, Store: st,
				tokens: cfg.Env.MakeResource(cfg.TokensPerPartition),
			})
		}
	}
	// Register swap peers: stores on *different* SSDs may lend swap space.
	e.wirePeers()
	return e
}

// wirePeers registers same-slot stores on different SSDs as swap peers.
func (e *Engine) wirePeers() {
	for _, a := range e.parts {
		for _, b := range e.parts {
			if a.SSD != b.SSD && a.ID%e.cfg.PartitionsPerSSD == b.ID%e.cfg.PartitionsPerSSD {
				a.Store.AddPeer(b.Store)
			}
		}
	}
}

// ResetPartition replaces a partition's store with a fresh, empty one —
// used when a node stops replicating a key range and the space is handed
// back. Swap peers are re-wired to the new store.
func (e *Engine) ResetPartition(pid int) {
	pt := e.parts[pid]
	cfg := pt.Store.Config()
	pt.Store = core.NewStore(cfg)
	e.wirePeers()
}

// RecoverPartition rebuilds partition pid's store from flash after a crash:
// a fresh store over the same device region replays the superblock and the
// key log past its persisted tail (core recovery, §3.8.1). It returns the
// number of live segments recovered; 0 with nil error means no superblock
// was ever persisted and the partition is treated as empty.
func (e *Engine) RecoverPartition(p runtime.Task, pid int) (int, error) {
	pt := e.parts[pid]
	cfg := pt.Store.Config()
	pt.Store = core.NewStore(cfg)
	e.wirePeers()
	return pt.Store.Recover(p)
}

// NumPartitions returns the number of virtual nodes on this JBOF.
func (e *Engine) NumPartitions() int { return len(e.parts) }

// Partition returns partition pid.
func (e *Engine) Partition(pid int) *Partition { return e.parts[pid] }

// Stats returns cumulative counters.
func (e *Engine) Stats() EngineStats { return e.stats }

// AvailableTokens returns the partition's current admission tokens; this is
// the number piggybacked to front-ends for flow control (§3.5).
func (e *Engine) AvailableTokens(pid int) int64 {
	if pid < 0 || pid >= len(e.parts) {
		return 0
	}
	return e.parts[pid].tokens.Avail()
}

// WaitingDepth returns the partition's waiting-queue occupancy.
func (e *Engine) WaitingDepth(pid int) int { return e.parts[pid].tokens.Waiting() }

// ssdWaiting sums waiting commands across a drive's partitions.
func (e *Engine) ssdWaiting(ssd int) int {
	w := 0
	for _, pt := range e.parts {
		if pt.SSD == ssd {
			w += pt.tokens.Waiting()
		}
	}
	return w
}

// pickSwapHelper returns the co-located partition (same slot, different
// SSD) with the most available capacity, or nil if none beats the home SSD
// by the threshold (§3.6: choose the candidate with the most available
// bandwidth). Guards keep swapping targeted at genuine imbalance: the
// helper must itself be unloaded, its swap region must have headroom, and
// the home's merge-back backlog must be bounded — otherwise swapping feeds
// back on itself (merge-back load keeps the home hot, which triggers more
// swapping, until the swap region overflows).
func (e *Engine) pickSwapHelper(home *Partition) *Partition {
	// Swapping absorbs *bursts*: once a handful of segments are parked
	// remotely and the home never idles long enough to merge them back,
	// further swapping only adds cross-drive hops to an already saturated
	// partition, so stop until the backlog drains (§3.6's "temporarily").
	if home.Store.SwapBacklog() >= 8 {
		return nil
	}
	homeWait := e.ssdWaiting(home.SSD)
	if homeWait < e.cfg.SwapThreshold {
		return nil
	}
	var best *Partition
	bestWait := 1 << 30
	for _, cand := range e.parts {
		if cand.SSD == home.SSD || cand.ID%e.cfg.PartitionsPerSSD != home.ID%e.cfg.PartitionsPerSSD {
			continue
		}
		if w := e.ssdWaiting(cand.SSD); w < bestWait {
			bestWait = w
			best = cand
		}
	}
	// The helper must be genuinely idle in absolute terms: no waiting
	// commands and most of its token budget free. Under uniform
	// saturation no drive qualifies, which is exactly right — swapping
	// only pays when spare bandwidth actually exists (§3.6).
	if best == nil || bestWait != 0 {
		return nil
	}
	if best.tokens.Avail()*3 < best.tokens.Capacity()*2 {
		return nil
	}
	if sl := best.Store.SwapLog(); sl == nil || sl.Free() < sl.Size()/4 {
		return nil
	}
	return best
}

// Execute runs one storage command against partition pid, blocking through
// admission (token acquisition), execution, and completion. It returns the
// value for GETs.
func (e *Engine) Execute(p runtime.Task, pid int, op rpcproto.Op, key, val []byte) ([]byte, core.OpStats, error) {
	return e.ExecuteTraced(p, pid, op, key, val, nil)
}

// ExecuteTraced is Execute carrying the request's trace: the engine span
// (admission wait vs store execution) plus the store's CPU/SSD split are
// attributed to it.
func (e *Engine) ExecuteTraced(p runtime.Task, pid int, op rpcproto.Op, key, val []byte, tr *obs.Trace) ([]byte, core.OpStats, error) {
	return e.executeTraced(p, pid, op, key, val, nil, false, tr)
}

// ExecuteTracedInto is ExecuteTraced for the allocation-free serve path: a
// GET's value is appended to dst (which may be nil) via Store.GetInto and
// the extended slice returned, instead of materializing a fresh copy. Other
// ops ignore dst and behave exactly as ExecuteTraced. The returned slice
// never aliases store-owned memory, so the caller may reuse dst freely
// between requests.
func (e *Engine) ExecuteTracedInto(p runtime.Task, pid int, op rpcproto.Op, key, val, dst []byte, tr *obs.Trace) ([]byte, core.OpStats, error) {
	return e.executeTraced(p, pid, op, key, val, dst, true, tr)
}

func (e *Engine) executeTraced(p runtime.Task, pid int, op rpcproto.Op, key, val, dst []byte, into bool, tr *obs.Trace) ([]byte, core.OpStats, error) {
	if pid < 0 || pid >= len(e.parts) {
		return nil, core.OpStats{}, fmt.Errorf("engine: no partition %d", pid)
	}
	pt := e.parts[pid]
	cost := TokenCost(op)
	t0 := p.Now()

	// Write-imbalance handling: a PUT facing a long home waiting queue is
	// redirected to an unloaded co-located SSD (§3.6). The home still pays
	// for its two key-log accesses; the helper is charged for the value
	// write it absorbs. Tokens are acquired in partition-id order so two
	// opposite-direction swaps cannot deadlock.
	if op == rpcproto.OpPut && e.cfg.SwapEnabled {
		if helper := e.pickSwapHelper(pt); helper != nil {
			// Full swap (§3.6): both the value and the segment array land
			// on the helper, so the helper absorbs two writes while the
			// home pays only for its segment read.
			first, fCost, second, sCost := pt, int64(1), helper, int64(2)
			if helper.ID < pt.ID {
				first, fCost, second, sCost = helper, 2, pt, 1
			}
			first.tokens.Acquire(p, fCost)
			second.tokens.Acquire(p, sCost)
			defer first.tokens.Release(fCost)
			defer second.tokens.Release(sCost)
			e.stats.Swapped++
			e.stats.Executed++
			e.o.swap()
			e.o.exec()
			admitted := p.Now()
			e.memTransfer(p, 1024+int64(len(key))+int64(len(val)))
			st, err := pt.Store.PutSwapped(p, key, val, helper.Store)
			e.observeExec(tr, admitted-t0, p.Now()-admitted, st)
			return nil, st, err
		}
	}

	pt.tokens.Acquire(p, cost)
	defer pt.tokens.Release(cost)
	e.stats.Executed++
	e.o.exec()
	admitted := p.Now()
	// Each command moves roughly a segment array plus the value through
	// DRAM (RX buffer -> store buffers -> DMA) — charge the memory pipe.
	e.memTransfer(p, 1024+int64(len(key))+int64(len(val)))
	var st core.OpStats
	var v []byte
	var err error
	switch op {
	case rpcproto.OpGet:
		if into {
			v, st, err = pt.Store.GetInto(p, key, dst)
		} else {
			v, st, err = pt.Store.Get(p, key)
		}
	case rpcproto.OpPut, rpcproto.OpCopy:
		st, err = pt.Store.Put(p, key, val)
	case rpcproto.OpDel:
		st, err = pt.Store.Del(p, key)
	default:
		return nil, core.OpStats{}, fmt.Errorf("engine: unsupported op %v", op)
	}
	e.observeExec(tr, admitted-t0, p.Now()-admitted, st)
	return v, st, err
}

// memTransfer charges n bytes of data movement against the onboard memory
// bus when ModelMemBW is enabled.
func (e *Engine) memTransfer(p runtime.Task, n int64) {
	if e.membus != nil {
		e.membus.transfer(p, n)
	}
}

// MemBusWaited returns the cumulative queueing delay behind the memory
// bus; zero when the model is disabled.
func (e *Engine) MemBusWaited() runtime.Time {
	if e.membus == nil {
		return 0
	}
	return e.membus.waited
}

// Start launches one background compaction proc per partition. The proc
// wakes every CompactEvery, merges swapped data back when the drive is
// unloaded, and runs log compaction when a trigger threshold is crossed.
func (e *Engine) Start() {
	gen := e.gen.Load()
	for _, pt := range e.parts {
		pt := pt
		e.env.Spawn("compactor", func(p runtime.Task) {
			var lastFlush runtime.Time
			for e.gen.Load() == gen {
				p.Sleep(e.cfg.CompactEvery)
				if e.gen.Load() != gen {
					return
				}
				if pt.Store.SwapBacklog() > 0 && e.ssdWaiting(pt.SSD) == 0 {
					pt.Store.Mergeback(p, 8)
				}
				if pt.Store.NeedsValueCompaction() {
					pt.Store.CompactValueLog(p)
					e.stats.Compactions++
					e.o.compact()
				}
				if pt.Store.NeedsKeyCompaction() {
					pt.Store.CompactKeyLog(p)
					e.stats.Compactions++
					e.o.compact()
				}
				if fe := e.cfg.FlushEvery; fe > 0 && p.Now()-lastFlush >= fe {
					lastFlush = p.Now()
					pt.Store.Flush(p)
				}
			}
		})
	}
}

// Stop halts background compaction after the current cycle. Safe to call
// from outside task context (e.g. before wallclock.Env.Wait). A later
// Start spawns a fresh set of compactors; the old generation drains.
func (e *Engine) Stop() { e.gen.Add(1) }
