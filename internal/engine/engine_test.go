package engine

import (
	"fmt"
	"testing"

	"leed/internal/core"
	"leed/internal/platform"
	"leed/internal/rpcproto"
	"leed/internal/sim"
)

// newTestEngine builds a Stingray engine with small partitions.
func newTestEngine(k sim.Runner, swap bool) (*Engine, *platform.Node) {
	node := platform.NewNode(k, platform.Stingray(), 4, 64<<20, 1)
	g := core.Geometry{
		NumSegments:  256,
		KeyLogBytes:  4 << 20,
		ValLogBytes:  8 << 20,
		SwapLogBytes: 2 << 20,
	}
	e := New(Config{
		Env:              k,
		Node:             node,
		PartitionsPerSSD: 2,
		Geometry:         g,
		PartitionBytes:   16 << 20,
		SwapEnabled:      swap,
		SwapThreshold:    4,
	})
	return e, node
}

func TestEngineExecuteCRUD(t *testing.T) {
	k := sim.New()
	defer k.Close()
	e, _ := newTestEngine(k, false)
	k.Go("client", func(p *sim.Proc) {
		if _, _, err := e.Execute(p, 0, rpcproto.OpPut, []byte("k"), []byte("v")); err != nil {
			t.Errorf("put: %v", err)
			return
		}
		v, _, err := e.Execute(p, 0, rpcproto.OpGet, []byte("k"), nil)
		if err != nil || string(v) != "v" {
			t.Errorf("get = %q, %v", v, err)
		}
		if _, _, err := e.Execute(p, 0, rpcproto.OpDel, []byte("k"), nil); err != nil {
			t.Errorf("del: %v", err)
		}
		if _, _, err := e.Execute(p, 0, rpcproto.OpGet, []byte("k"), nil); err != core.ErrNotFound {
			t.Errorf("get after del: %v", err)
		}
	})
	k.Run()
}

func TestEnginePartitionLayout(t *testing.T) {
	k := sim.New()
	defer k.Close()
	e, _ := newTestEngine(k, false)
	if e.NumPartitions() != 8 {
		t.Fatalf("partitions = %d, want 8 (4 SSDs x 2)", e.NumPartitions())
	}
	ssdSeen := map[int]int{}
	for i := 0; i < e.NumPartitions(); i++ {
		ssdSeen[e.Partition(i).SSD]++
	}
	for ssd, n := range ssdSeen {
		if n != 2 {
			t.Fatalf("ssd %d has %d partitions", ssd, n)
		}
	}
}

func TestEngineTokenAdmissionLimitsInflight(t *testing.T) {
	k := sim.New()
	defer k.Close()
	e, _ := newTestEngine(k, false)
	pt := e.Partition(0)
	// With 48 tokens and GET=2, at most 24 GETs run concurrently.
	var maxInUse int64
	for i := 0; i < 100; i++ {
		i := i
		k.Go("c", func(p *sim.Proc) {
			key := []byte(fmt.Sprintf("k%d", i%10))
			if i < 10 {
				e.Execute(p, 0, rpcproto.OpPut, key, []byte("v"))
				return
			}
			e.Execute(p, 0, rpcproto.OpGet, key, nil)
			if u := pt.tokens.InUse(); u > maxInUse {
				maxInUse = u
			}
		})
	}
	k.Run()
	if maxInUse > 48 {
		t.Fatalf("token budget exceeded: %d in use", maxInUse)
	}
}

func TestEngineAvailableTokensDropUnderLoad(t *testing.T) {
	k := sim.New()
	defer k.Close()
	e, _ := newTestEngine(k, false)
	if e.AvailableTokens(0) != 48 {
		t.Fatalf("initial tokens = %d", e.AvailableTokens(0))
	}
	var seen int64 = 48
	for i := 0; i < 40; i++ {
		i := i
		k.Go("c", func(p *sim.Proc) {
			e.Execute(p, 0, rpcproto.OpPut, []byte(fmt.Sprintf("k%d", i)), []byte("v"))
			if a := e.AvailableTokens(0); a < seen {
				seen = a
			}
		})
	}
	k.Run()
	if seen >= 48 {
		t.Fatal("tokens never consumed under load")
	}
	if e.AvailableTokens(0) != 48 {
		t.Fatalf("tokens not restored: %d", e.AvailableTokens(0))
	}
}

func TestEngineSwapRedirectsOverloadedPuts(t *testing.T) {
	k := sim.New()
	defer k.Close()
	e, _ := newTestEngine(k, true)
	// Flood partition 0 (ssd 0) with writes; ssds 1-3 stay idle, so the
	// swap mechanism must engage.
	for i := 0; i < 400; i++ {
		i := i
		k.Go("c", func(p *sim.Proc) {
			key := []byte(fmt.Sprintf("key-%04d", i))
			if _, _, err := e.Execute(p, 0, rpcproto.OpPut, key, make([]byte, 256)); err != nil {
				t.Errorf("put: %v", err)
			}
		})
	}
	k.Run()
	if e.Stats().Swapped == 0 {
		t.Fatal("no PUTs were swapped despite heavy imbalance")
	}
	// All data must be readable afterwards.
	k.Go("verify", func(p *sim.Proc) {
		for i := 0; i < 400; i++ {
			key := []byte(fmt.Sprintf("key-%04d", i))
			if _, _, err := e.Execute(p, 0, rpcproto.OpGet, key, nil); err != nil {
				t.Errorf("get %d: %v", i, err)
				return
			}
		}
	})
	k.Run()
}

func TestEngineSwapDisabledNeverSwaps(t *testing.T) {
	k := sim.New()
	defer k.Close()
	e, _ := newTestEngine(k, false)
	for i := 0; i < 200; i++ {
		i := i
		k.Go("c", func(p *sim.Proc) {
			e.Execute(p, 0, rpcproto.OpPut, []byte(fmt.Sprintf("k%d", i)), make([]byte, 256))
		})
	}
	k.Run()
	if e.Stats().Swapped != 0 {
		t.Fatalf("swapped %d with swapping disabled", e.Stats().Swapped)
	}
}

func TestEngineBackgroundCompaction(t *testing.T) {
	k := sim.New()
	defer k.Close()
	node := platform.NewNode(k, platform.Stingray(), 4, 64<<20, 1)
	// Tight logs force compaction under churn.
	e := New(Config{
		Env:              k,
		Node:             node,
		PartitionsPerSSD: 1,
		Geometry: core.Geometry{
			NumSegments: 64, KeyLogBytes: 256 << 10, ValLogBytes: 512 << 10, SwapLogBytes: 128 << 10,
		},
		PartitionBytes: 4 << 20,
		CompactEvery:   200 * sim.Microsecond,
	})
	e.Start()
	k.Go("churn", func(p *sim.Proc) {
		for r := 0; r < 20; r++ {
			for i := 0; i < 60; i++ {
				key := []byte(fmt.Sprintf("key-%03d", i))
				if _, _, err := e.Execute(p, 0, rpcproto.OpPut, key, make([]byte, 512)); err != nil {
					t.Errorf("put r%d i%d: %v", r, i, err)
					return
				}
			}
		}
		e.Stop()
	})
	k.Run(10 * sim.Second)
	if e.Stats().Compactions == 0 {
		t.Fatal("background compactor never ran")
	}
	// Verify data integrity post-churn.
	k.Go("verify", func(p *sim.Proc) {
		for i := 0; i < 60; i++ {
			key := []byte(fmt.Sprintf("key-%03d", i))
			if _, _, err := e.Execute(p, 0, rpcproto.OpGet, key, nil); err != nil {
				t.Errorf("get %d: %v", i, err)
				return
			}
		}
	})
	k.Run(20 * sim.Second)
}

func TestEngineComputeContendsOnCore(t *testing.T) {
	// Two partitions on the same SSD share one core; their compute phases
	// must serialize through the core gate.
	k := sim.New()
	defer k.Close()
	e, node := newTestEngine(k, false)
	_ = node
	busy0 := node.Cores[0].BusySeconds()
	for i := 0; i < 50; i++ {
		i := i
		k.Go("c", func(p *sim.Proc) {
			pid := i % 2 // both partitions live on ssd 0
			e.Execute(p, pid, rpcproto.OpPut, []byte(fmt.Sprintf("k%d", i)), []byte("v"))
		})
	}
	k.Run()
	if node.Cores[0].BusySeconds() <= busy0 {
		t.Fatal("core 0 accumulated no busy time")
	}
	// Cores for other SSDs stayed idle.
	if node.Cores[3].BusySeconds() != 0 {
		t.Fatal("unrelated core got work")
	}
}

func TestTokenCost(t *testing.T) {
	if TokenCost(rpcproto.OpGet) != 2 || TokenCost(rpcproto.OpPut) != 3 || TokenCost(rpcproto.OpDel) != 2 {
		t.Fatal("token costs diverge from the 2/3/2 NVMe access counts")
	}
}

func TestEngineRangeThroughStore(t *testing.T) {
	k := sim.New()
	defer k.Close()
	e, _ := newTestEngine(k, false)
	k.Go("c", func(p *sim.Proc) {
		for i := 0; i < 25; i++ {
			e.Execute(p, 3, rpcproto.OpPut, []byte(fmt.Sprintf("k%02d", i)), []byte("v"))
		}
		seen := 0
		err := e.Partition(3).Store.Range(p, func(key, val []byte) bool {
			seen++
			return true
		})
		if err != nil || seen != 25 {
			t.Errorf("range: %d objects, %v", seen, err)
		}
	})
	k.Run()
}

func TestEngineMemoryBandwidthModel(t *testing.T) {
	// With the §4.8 memory-bus model enabled, a large burst of concurrent
	// ops must queue behind the 4390MB/s pipe.
	build := func(model bool) (*Engine, sim.Runner) {
		k := sim.New()
		node := platform.NewNode(k, platform.Stingray(), 4, 64<<20, 1)
		e := New(Config{
			Env:              k,
			Node:             node,
			PartitionsPerSSD: 2,
			Geometry: core.Geometry{
				NumSegments: 256, KeyLogBytes: 4 << 20, ValLogBytes: 8 << 20, SwapLogBytes: 2 << 20,
			},
			PartitionBytes: 16 << 20,
			ModelMemBW:     model,
		})
		return e, k
	}
	run := func(model bool) (sim.Time, sim.Time) {
		e, k := build(model)
		defer k.Close()
		for i := 0; i < 600; i++ {
			i := i
			k.Go("c", func(p *sim.Proc) {
				key := []byte(fmt.Sprintf("key-%04d", i))
				e.Execute(p, i%8, rpcproto.OpPut, key, make([]byte, 4096))
			})
		}
		end := k.Run()
		return end, e.MemBusWaited()
	}
	offEnd, offWait := run(false)
	onEnd, onWait := run(true)
	if offWait != 0 {
		t.Fatalf("disabled model accumulated bus wait %v", offWait)
	}
	if onWait == 0 {
		t.Fatal("enabled model never queued on the memory bus")
	}
	if onEnd < offEnd {
		t.Fatalf("memory-bus model made the burst faster: %v vs %v", onEnd, offEnd)
	}
}

func TestEngineFullSwapMovesWritesToHelper(t *testing.T) {
	// §3.6 full swapping: a swapped PUT's writes (value and segment array)
	// land on the helper SSD; the home pays only reads.
	k := sim.New()
	defer k.Close()
	e, node := newTestEngine(k, true)
	k.Go("seed", func(p *sim.Proc) {
		// Seed the key so the segment exists at home.
		e.Execute(p, 0, rpcproto.OpPut, []byte("hot"), []byte("v0"))
	})
	k.Run()
	homeWrites := node.SSDs[0].Stats().Writes
	// Flood to trigger swapping.
	for i := 0; i < 300; i++ {
		i := i
		k.Go("c", func(p *sim.Proc) {
			e.Execute(p, 0, rpcproto.OpPut, []byte(fmt.Sprintf("k%03d", i)), make([]byte, 256))
		})
	}
	k.Run()
	if e.Stats().Swapped == 0 {
		t.Fatal("no swaps under flood")
	}
	helperWrites := int64(0)
	for ssd := 1; ssd < 4; ssd++ {
		helperWrites += node.SSDs[ssd].Stats().Writes
	}
	if helperWrites == 0 {
		t.Fatal("helpers absorbed no writes")
	}
	// Home writes grow only for non-swapped puts; swapped ones add none.
	nonSwapped := int64(300) - e.Stats().Swapped
	maxHome := homeWrites + nonSwapped*2 + 5
	if node.SSDs[0].Stats().Writes > maxHome {
		t.Fatalf("home writes = %d, expected <= %d (swapped puts must not write home)",
			node.SSDs[0].Stats().Writes, maxHome)
	}
	// Data still readable.
	k.Go("verify", func(p *sim.Proc) {
		for i := 0; i < 300; i++ {
			if _, _, err := e.Execute(p, 0, rpcproto.OpGet, []byte(fmt.Sprintf("k%03d", i)), nil); err != nil {
				t.Errorf("get %d: %v", i, err)
				return
			}
		}
	})
	k.Run()
}
