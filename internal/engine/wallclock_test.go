package engine

import (
	"fmt"
	"sort"
	"testing"

	"leed/internal/core"
	"leed/internal/platform"
	"leed/internal/rpcproto"
	"leed/internal/runtime"
	"leed/internal/runtime/wallclock"
	"leed/internal/sim"
)

// newEnvEngine builds the test engine on an arbitrary runtime backend; it is
// newTestEngine generalized over the seam.
func newEnvEngine(env runtime.Env) *Engine {
	node := platform.NewNode(env, platform.Stingray(), 2, 64<<20, 1)
	g := core.Geometry{
		NumSegments:  256,
		KeyLogBytes:  4 << 20,
		ValLogBytes:  8 << 20,
		SwapLogBytes: 2 << 20,
	}
	return New(Config{
		Env:              env,
		Node:             node,
		PartitionsPerSSD: 2,
		Geometry:         g,
		PartitionBytes:   16 << 20,
	})
}

// engineClientOps is one client's deterministic sequence against one
// partition: puts, overwrites, and deletes over a small key range.
func engineClientOps(e *Engine, p runtime.Task, t *testing.T, client, pid, ops int) {
	t.Helper()
	for i := 0; i < ops; i++ {
		key := []byte(fmt.Sprintf("c%d-key-%02d", client, i%20))
		switch i % 5 {
		case 0, 1, 2:
			val := []byte(fmt.Sprintf("c%d-val-%d", client, i))
			if _, _, err := e.Execute(p, pid, rpcproto.OpPut, key, val); err != nil {
				t.Errorf("client %d put: %v", client, err)
			}
		case 3:
			if _, _, err := e.Execute(p, pid, rpcproto.OpGet, key, nil); err != nil && err != core.ErrNotFound {
				t.Errorf("client %d get: %v", client, err)
			}
		case 4:
			if _, _, err := e.Execute(p, pid, rpcproto.OpDel, key, nil); err != nil && err != core.ErrNotFound {
				t.Errorf("client %d del: %v", client, err)
			}
		}
	}
}

// engineContents dumps every partition's KV contents, sorted.
func engineContents(e *Engine, p runtime.Task, t *testing.T) []string {
	t.Helper()
	var kv []string
	for pid := 0; pid < e.NumPartitions(); pid++ {
		if err := e.Partition(pid).Store.Range(p, func(key, val []byte) bool {
			kv = append(kv, fmt.Sprintf("p%d/%s=%s", pid, key, val))
			return true
		}); err != nil {
			t.Errorf("range partition %d: %v", pid, err)
		}
	}
	sort.Strings(kv)
	return kv
}

// TestEngineEquivalenceSimVsWallclock drives the full engine path (admission
// tokens, core gates, SSD model, background compaction) with the same
// per-client sequences on both backends; clients use disjoint keys, so the
// final contents must match exactly even though wallclock interleaving is
// scheduler-dependent.
func TestEngineEquivalenceSimVsWallclock(t *testing.T) {
	const clients = 8
	const opsPer = 60

	// Sim run: 8 procs through the engine on the kernel.
	k := sim.New()
	se := newEnvEngine(k)
	se.Start()
	for c := 0; c < clients; c++ {
		c := c
		k.Go("client", func(p *sim.Proc) {
			engineClientOps(se, p, t, c, c%se.NumPartitions(), opsPer)
		})
	}
	k.Run(10 * sim.Second)
	se.Stop()
	var simKV []string
	k.Go("dump", func(p *sim.Proc) { simKV = engineContents(se, p, t) })
	k.Run()
	k.Close()

	// Wall-clock run: 8 goroutine tasks through the identical engine. This
	// is the ≥8-concurrent-client -race acceptance path.
	env := wallclock.New()
	we := newEnvEngine(env)
	we.Start()
	for c := 0; c < clients; c++ {
		c := c
		env.Spawn("client", func(p runtime.Task) {
			engineClientOps(we, p, t, c, c%we.NumPartitions(), opsPer)
		})
	}
	we.Stop() // compactors exit at their next wakeup; clients keep running
	env.Wait()
	var wcKV []string
	env.Spawn("dump", func(p runtime.Task) { wcKV = engineContents(we, p, t) })
	env.Wait()

	if len(simKV) == 0 {
		t.Fatal("sim engine run left no data")
	}
	if fmt.Sprint(simKV) != fmt.Sprint(wcKV) {
		t.Errorf("engine contents diverge between backends:\nsim (%d): %v\nwc  (%d): %v",
			len(simKV), simKV, len(wcKV), wcKV)
	}
}
