package chaos

import (
	"fmt"
	"strings"

	"leed/internal/obs"
	"leed/internal/runtime"
)

// Report is a drill's outcome. Every field is filled from deterministic
// state (seeded rngs, virtual clocks, sorted iteration), so the same seed
// renders a byte-identical report — the property CI leans on to catch any
// nondeterminism that creeps into the protocol stack.
type Report struct {
	Scenario Scenario
	Seed     int64
	Pass     bool
	// Violations are invariant breaches, in detection order.
	Violations []string

	// Working-set accounting.
	Keys     int
	Poisoned int // keys whose write exhausted retries (version ambiguous)
	DupRisk  int // keys whose acked write needed retries (duplicate may trail)

	// Client-observed traffic.
	WritesAcked, WritesFailed int64
	Reads, ReadErrors         int64
	Backoffs, Retries         int64
	Nacks, Timeouts           int64

	// Fault-layer accounting.
	DroppedByLoss, DroppedByPartition int64
	Delayed                           int64
	DeviceInjected                    int64

	// Recovery machinery.
	CopyRetries, ShieldedCopies int64
	Restarts, RecoveredParts    int64
	PartitionsLost              int64
	DirtyResidue                int64 // leaked dirty marks after quiescence (metric, not invariant)

	FinalEpoch uint64
	QuiescedAt runtime.Time // backend time at which the cluster converged

	// Metrics is the cluster registry's final snapshot. It is excluded from
	// String() so the byte-compared drill transcript stays as-is; under sim
	// the snapshot itself is deterministic too.
	Metrics *obs.Snapshot
}

// String renders the report with a fixed field order; drills compare these
// strings byte-for-byte across runs of the same seed.
func (r *Report) String() string {
	var b strings.Builder
	verdict := "PASS"
	if !r.Pass {
		verdict = "FAIL"
	}
	fmt.Fprintf(&b, "drill scenario=%s seed=%d verdict=%s\n", r.Scenario, r.Seed, verdict)
	fmt.Fprintf(&b, "  keys=%d poisoned=%d dupRisk=%d\n", r.Keys, r.Poisoned, r.DupRisk)
	fmt.Fprintf(&b, "  writesAcked=%d writesFailed=%d reads=%d readErrors=%d\n",
		r.WritesAcked, r.WritesFailed, r.Reads, r.ReadErrors)
	fmt.Fprintf(&b, "  backoffs=%d retries=%d nacks=%d timeouts=%d\n",
		r.Backoffs, r.Retries, r.Nacks, r.Timeouts)
	fmt.Fprintf(&b, "  droppedByLoss=%d droppedByPartition=%d delayed=%d deviceInjected=%d\n",
		r.DroppedByLoss, r.DroppedByPartition, r.Delayed, r.DeviceInjected)
	fmt.Fprintf(&b, "  copyRetries=%d shieldedCopies=%d restarts=%d recoveredParts=%d\n",
		r.CopyRetries, r.ShieldedCopies, r.Restarts, r.RecoveredParts)
	fmt.Fprintf(&b, "  partitionsLost=%d dirtyResidue=%d finalEpoch=%d quiescedAt=%v\n",
		r.PartitionsLost, r.DirtyResidue, r.FinalEpoch, r.QuiescedAt)
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "  violation: %s\n", v)
	}
	return b.String()
}

func (r *Report) violate(format string, args ...any) {
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}
