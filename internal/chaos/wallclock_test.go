package chaos

import (
	"testing"

	"leed/internal/runtime"
)

// wallclockConfig shrinks a drill to a wall-clock-friendly size: the
// invariants are identical, but real sleeps (heartbeats, detection windows,
// quiesce stability) dominate, so fewer keys and rounds keep the suite
// fast — especially under -race.
func wallclockConfig(sc Scenario, seed int64) Config {
	return Config{
		Seed:     seed,
		Scenario: sc,
		Backend:  BackendWallclock,
		Keys:     24,
		Rounds:   1,
		Budget:   60 * runtime.Second,
	}
}

// runWallclockScenario executes one drill on real goroutines and fails the
// test on any invariant violation. Counters are timing-dependent on this
// backend, so tests only assert invariants and fault engagement, never
// exact values.
func runWallclockScenario(t *testing.T, sc Scenario, seed int64) *Report {
	t.Helper()
	rep, err := RunDrill(wallclockConfig(sc, seed))
	if err != nil {
		t.Fatalf("%s wallclock drill: %v", sc, err)
	}
	t.Logf("\n%s", rep)
	if !rep.Pass {
		t.Errorf("%s wallclock drill failed:\n%s", sc, rep)
	}
	return rep
}

func TestWallclockDrillMessageLoss(t *testing.T) {
	rep := runWallclockScenario(t, MessageLoss, 1)
	if rep.DroppedByLoss == 0 {
		t.Error("message-loss drill dropped nothing; the fault never engaged")
	}
	if rep.WritesAcked == 0 {
		t.Error("no writes were acknowledged under message loss")
	}
}

func TestWallclockDrillPartitionHeal(t *testing.T) {
	cfg := wallclockConfig(PartitionHeal, 1)
	cfg.JBOFs = 4 // some chains avoid the victim and keep acking
	rep, err := RunDrill(cfg)
	if err != nil {
		t.Fatalf("partition-heal wallclock drill: %v", err)
	}
	t.Logf("\n%s", rep)
	if !rep.Pass {
		t.Errorf("partition-heal wallclock drill failed:\n%s", rep)
	}
	if rep.DroppedByPartition == 0 {
		t.Error("partition-heal drill dropped nothing; the partition never engaged")
	}
}

func TestWallclockDrillCrashRestart(t *testing.T) {
	rep := runWallclockScenario(t, CrashRestart, 1)
	if rep.Restarts != 1 {
		t.Errorf("Restarts = %d, want 1", rep.Restarts)
	}
	if rep.RecoveredParts == 0 {
		t.Error("the restarted node recovered no partitions from flash")
	}
	if rep.PartitionsLost != 0 {
		t.Errorf("PartitionsLost = %d on a single-failure drill", rep.PartitionsLost)
	}
}

func TestWallclockDrillDeviceFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode runs the three core scenarios only")
	}
	rep := runWallclockScenario(t, DeviceFaults, 1)
	if rep.DeviceInjected == 0 {
		t.Error("device-faults drill injected nothing")
	}
}

func TestWallclockDrillMixed(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode runs the three core scenarios only")
	}
	rep := runWallclockScenario(t, Mixed, 1)
	if rep.Restarts != 1 {
		t.Errorf("mixed drill restarted %d nodes, want 1", rep.Restarts)
	}
	if rep.DroppedByLoss == 0 {
		t.Error("mixed drill dropped nothing; the loss fault never engaged")
	}
}
