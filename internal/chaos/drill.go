// Package chaos is LEED's deterministic fault-drill harness. A drill builds
// a cluster, runs a seeded fault schedule against it — link loss,
// partitions, node crash-restarts, device faults — while a driver issues
// versioned operations, then waits for quiescence and checks the paper's
// §3.8 claims as machine-verified invariants:
//
//   - no acknowledged write is lost while overlapping failures stay ≤ R-1;
//   - reads from synced replicas never return a stale committed value;
//   - the view/COPY machinery converges (pendingCopies drains, epochs
//     stabilize) once faults heal.
//
// Drills run on either runtime backend. On the sim kernel everything —
// fault schedule, client jitter, device errors — draws from seeded streams
// over deterministic virtual time, so one seed yields a byte-identical
// Report on every run. On the wallclock backend the same scenarios execute
// on real goroutines: timing (and therefore counters) varies run to run,
// but every invariant above must still hold.
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"

	"leed/internal/cluster"
	"leed/internal/core"
	"leed/internal/flashsim"
	"leed/internal/netsim"
	"leed/internal/obs"
	"leed/internal/runtime"
	"leed/internal/runtime/wallclock"
	"leed/internal/sim"
)

// Scenario names one fault schedule shape.
type Scenario string

const (
	// MessageLoss drops a fraction of messages on one storage-to-storage
	// link in both directions (chain forwards, backward acks).
	MessageLoss Scenario = "message-loss"
	// PartitionHeal severs one node from its storage peers — heartbeats to
	// the manager still flow, a gray failure the detector cannot see — then
	// heals the link.
	PartitionHeal Scenario = "partition-heal"
	// CrashRestart power-fails one JBOF, waits for failure detection, then
	// restarts it through flash recovery and re-join.
	CrashRestart Scenario = "crash-restart"
	// DeviceFaults makes one node's SSDs fail operations probabilistically.
	DeviceFaults Scenario = "device-faults"
	// Mixed overlaps a crash with link loss between the survivors, staying
	// within the R-1 failure budget.
	Mixed Scenario = "mixed"
)

// Scenarios lists every drill scenario in a fixed order.
func Scenarios() []Scenario {
	return []Scenario{MessageLoss, PartitionHeal, CrashRestart, DeviceFaults, Mixed}
}

// Backend selects the runtime a drill executes on.
type Backend int

const (
	// BackendSim runs the drill on the deterministic DES kernel (virtual
	// time, byte-identical reports per seed).
	BackendSim Backend = iota
	// BackendWallclock runs the same drill on real goroutines: the fault
	// schedule still draws from the seeded stream, but timing is real, so
	// only the invariants — not the counters — are reproducible.
	BackendWallclock
)

// Config shapes one drill.
type Config struct {
	Seed     int64
	Scenario Scenario

	// Backend picks the runtime substrate. Default BackendSim.
	Backend Backend

	// Cluster shape; zero values pick small-but-real defaults.
	JBOFs       int
	SSDs        int
	SSDCapacity int64
	Partitions  int
	R           int

	// Keys is the tracked working-set size; Rounds is how many times the
	// driver sweeps it during the fault window and again after healing.
	Keys   int
	Rounds int

	// Budget bounds the whole drill: virtual time on the sim backend, real
	// time on wallclock. Default 120s.
	Budget runtime.Time

	// Obs, when set, is the registry the drill's cluster reports into (the
	// cluster otherwise creates its own; either way Report.Metrics carries
	// the final snapshot).
	Obs *obs.Registry
}

func (cfg *Config) setDefaults() {
	if cfg.Scenario == "" {
		cfg.Scenario = MessageLoss
	}
	if cfg.JBOFs == 0 {
		cfg.JBOFs = 3
	}
	if cfg.SSDs == 0 {
		cfg.SSDs = 4
	}
	if cfg.SSDCapacity == 0 {
		cfg.SSDCapacity = 48 << 20
	}
	if cfg.Partitions == 0 {
		cfg.Partitions = 8
	}
	if cfg.R == 0 {
		cfg.R = 3
	}
	if cfg.Keys == 0 {
		cfg.Keys = 48
	}
	if cfg.Rounds == 0 {
		cfg.Rounds = 2
	}
	if cfg.Budget == 0 {
		cfg.Budget = 120 * runtime.Second
	}
}

// keyState tracks one key's version history as the driver sees it.
type keyState struct {
	maxIssued int  // highest version ever sent
	lastAcked int  // highest version acknowledged
	poisoned  bool // a write exhausted retries: final version ambiguous
	dupRisk   bool // an acked write was retried: a duplicate may trail it
}

// drill carries one run's moving parts.
type drill struct {
	cfg    Config
	rng    *rand.Rand
	c      *cluster.Cluster
	faults *netsim.Faults
	// injectors by node in NodeIDs order, one per SSD.
	injectors map[cluster.NodeID][]*flashsim.FaultInjector
	keys      []keyState
	rep       *Report
}

func keyName(i int) []byte { return []byte(fmt.Sprintf("drill-%04d", i)) }

func valFor(i, ver int) []byte {
	return []byte(fmt.Sprintf("%d|drill-%04d", ver, i))
}

func parseVer(val []byte) (int, bool) {
	s := string(val)
	num, _, ok := strings.Cut(s, "|")
	if !ok {
		return 0, false
	}
	v, err := strconv.Atoi(num)
	return v, err == nil
}

// newDrill assembles the cluster and fault layer on the given env. The
// construction is backend-neutral: only the driving loop differs.
func newDrill(cfg Config, env runtime.Env) *drill {
	d := &drill{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		injectors: make(map[cluster.NodeID][]*flashsim.FaultInjector),
		keys:      make([]keyState, cfg.Keys),
		rep:       &Report{Scenario: cfg.Scenario, Seed: cfg.Seed, Keys: cfg.Keys},
	}
	// On the wallclock backend the 20ms default detection window is within
	// real scheduler jitter (worse under -race): a healthy node whose
	// heartbeat task is preempted would be spuriously removed, turning a
	// bounded-failure drill into an unbounded one. Widen it; detection
	// latency is not what these drills measure.
	var hbTimeout runtime.Time
	if cfg.Backend == BackendWallclock {
		hbTimeout = 250 * runtime.Millisecond
	}
	d.c = cluster.New(cluster.Config{
		Env:              env,
		Obs:              cfg.Obs,
		HeartbeatTimeout: hbTimeout,
		NumJBOFs:         cfg.JBOFs,
		SSDsPerJBOF:      cfg.SSDs,
		SSDCapacity:      cfg.SSDCapacity,
		NumPartitions:    cfg.Partitions,
		R:                cfg.R,
		KeyLen:           16,
		ValLen:           64,
		NumClients:       1,
		CRRS:             true,
		FlowControl:      true,
		Swap:             true,
		FlushEvery:       2 * runtime.Millisecond,
		WrapDevice: func(id cluster.NodeID, ssd int, dev flashsim.Device) flashsim.Device {
			fi := flashsim.NewFaultInjector(env, dev, cfg.Seed^(int64(id)*131+int64(ssd)))
			d.injectors[id] = append(d.injectors[id], fi)
			return fi
		},
	})
	d.faults = d.c.Fabric.InstallFaults(cfg.Seed + 1)
	return d
}

// RunDrill executes one scenario end to end and returns its report. The
// report's Pass field is the drill verdict; err is reserved for harness
// failures (the drill not completing within its budget).
func RunDrill(cfg Config) (*Report, error) {
	cfg.setDefaults()
	if cfg.Backend == BackendWallclock {
		return runDrillWallclock(cfg)
	}
	return runDrillSim(cfg)
}

func runDrillSim(cfg Config) (*Report, error) {
	k := sim.New()
	defer k.Close()

	d := newDrill(cfg, k)
	d.c.Start()

	finished := false
	k.Spawn("drill", func(t runtime.Task) {
		d.run(t)
		finished = true
	})
	deadline := k.Now() + cfg.Budget
	for !finished && k.Now() < deadline {
		k.Run(k.Now() + 10*runtime.Millisecond)
	}
	if !finished {
		return d.rep, errors.New("chaos: drill did not finish within its virtual budget")
	}
	d.finishReport()
	return d.rep, nil
}

func runDrillWallclock(cfg Config) (*Report, error) {
	env := wallclock.New()
	d := newDrill(cfg, env)
	d.c.Start()

	// The driver runs entirely in one task, so every protocol-side counter
	// it reads (in run and finishReport) is accessed under the execution
	// contract; the report is handed to this goroutine through the channel.
	done := make(chan struct{})
	env.Spawn("drill", func(t runtime.Task) {
		d.run(t)
		d.finishReport()
		d.c.Shutdown()
		close(done)
	})
	select {
	case <-done:
	case <-time.After(time.Duration(cfg.Budget)):
		return d.rep, errors.New("chaos: drill did not finish within its real-time budget")
	}
	// Drain: Shutdown poisoned every poller, so the env empties once
	// in-flight timers (client timeouts, copy-ack timers) expire. Bound the
	// wait — a leaked task must not hang the harness.
	drained := make(chan struct{})
	go func() { env.Wait(); close(drained) }()
	select {
	case <-drained:
	case <-time.After(15 * time.Second):
	}
	return d.rep, nil
}

// run is the drill driver: load, scenario, heal, quiesce, verify.
func (d *drill) run(p runtime.Task) {
	// Wait for launch to settle — views delivered to every client.
	if err := d.c.AwaitReady(p, 5*runtime.Second); err != nil {
		d.rep.violate("cluster never became ready: %v", err)
		return
	}
	// Load phase: version 1 of every key, fault-free.
	d.sweep(p, false)

	switch d.cfg.Scenario {
	case MessageLoss:
		d.runMessageLoss(p)
	case PartitionHeal:
		d.runPartitionHeal(p)
	case CrashRestart:
		d.runCrashRestart(p)
	case DeviceFaults:
		d.runDeviceFaults(p)
	case Mixed:
		d.runMixed(p)
	default:
		d.rep.violate("unknown scenario %q", d.cfg.Scenario)
		return
	}

	// All faults healed by the scenario; wait for convergence, then verify.
	if !d.quiesce(p) {
		d.rep.violate("no convergence: %s after heal", d.c.Manager)
		return
	}
	d.verify(p)
}

// pickNodes draws n distinct member node ids from the seeded stream.
func (d *drill) pickNodes(n int) []cluster.NodeID {
	ids := append([]cluster.NodeID(nil), d.c.NodeIDs...)
	d.rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	return ids[:n]
}

func (d *drill) runMessageLoss(p runtime.Task) {
	pair := d.pickNodes(2)
	d.faults.SetDropBoth(netsim.Addr(pair[0]), netsim.Addr(pair[1]), 0.25)
	for r := 0; r < d.cfg.Rounds; r++ {
		d.sweep(p, true)
	}
	d.faults.HealAll()
	d.sweep(p, true)
}

func (d *drill) runPartitionHeal(p runtime.Task) {
	victim := d.pickNodes(1)[0]
	for _, id := range d.c.NodeIDs {
		if id != victim {
			d.faults.Partition(netsim.Addr(victim), netsim.Addr(id))
		}
	}
	d.sweep(p, true) // the window: chains through the victim stall
	d.faults.HealAll()
	for r := 0; r < d.cfg.Rounds; r++ {
		d.sweep(p, true)
	}
}

func (d *drill) runCrashRestart(p runtime.Task) {
	victim := d.pickNodes(1)[0]
	d.c.Crash(victim)
	d.sweep(p, true) // ops ride out detection and chain repair
	if !d.waitFor(p, 5*runtime.Second, func() bool {
		_, still := d.c.Manager.State(victim)
		return !still
	}) {
		d.rep.violate("failure detection never removed crashed node %d", victim)
		return
	}
	done, err := d.c.Restart(victim)
	if err != nil {
		d.rep.violate("restart refused: %v", err)
		return
	}
	if !done.Fired() {
		p.Wait(done)
	}
	if !d.waitFor(p, 20*runtime.Second, func() bool {
		s, ok := d.c.Manager.State(victim)
		return ok && s == cluster.StateRunning && d.c.Manager.PendingCopies() == 0
	}) {
		d.rep.violate("restarted node %d never re-synced: %s", victim, d.c.Manager)
		return
	}
	for r := 0; r < d.cfg.Rounds; r++ {
		d.sweep(p, true)
	}
}

func (d *drill) runDeviceFaults(p runtime.Task) {
	victim := d.pickNodes(1)[0]
	for _, fi := range d.injectors[victim] {
		fi.ErrorRate = 0.15
	}
	for r := 0; r < d.cfg.Rounds; r++ {
		d.sweep(p, true)
	}
	for _, fi := range d.injectors[victim] {
		fi.ErrorRate = 0
	}
	d.sweep(p, true)
}

func (d *drill) runMixed(p runtime.Task) {
	picks := d.pickNodes(3)
	crashed, a, b := picks[0], picks[1], picks[2]
	d.c.Crash(crashed)
	d.faults.SetDropBoth(netsim.Addr(a), netsim.Addr(b), 0.15)
	d.sweep(p, true)
	d.faults.HealAll()
	if !d.waitFor(p, 5*runtime.Second, func() bool {
		_, still := d.c.Manager.State(crashed)
		return !still
	}) {
		d.rep.violate("failure detection never removed crashed node %d", crashed)
		return
	}
	done, err := d.c.Restart(crashed)
	if err != nil {
		d.rep.violate("restart refused: %v", err)
		return
	}
	if !done.Fired() {
		p.Wait(done)
	}
	if !d.waitFor(p, 20*runtime.Second, func() bool {
		s, ok := d.c.Manager.State(crashed)
		return ok && s == cluster.StateRunning && d.c.Manager.PendingCopies() == 0
	}) {
		d.rep.violate("restarted node %d never re-synced: %s", crashed, d.c.Manager)
		return
	}
	d.sweep(p, true)
}

// sweep writes the next version of every key and interleaves invariant-
// checked reads of the previously written keys. Writes and reads are
// sequential, so per-key version history is totally ordered at the driver.
func (d *drill) sweep(p runtime.Task, faulty bool) {
	cl := d.c.Clients[0]
	for i := range d.keys {
		ks := &d.keys[i]
		if !ks.poisoned {
			ver := ks.maxIssued + 1
			ks.maxIssued = ver
			retriesBefore := cl.Stats().Retries
			_, err := cl.Put(p, keyName(i), valFor(i, ver))
			if err != nil {
				// Exhausted retries: the write may or may not have landed.
				// Quarantine the key — later reads can legitimately see
				// either side of the ambiguity.
				ks.poisoned = true
				d.rep.WritesFailed++
			} else {
				ks.lastAcked = ver
				d.rep.WritesAcked++
				if cl.Stats().Retries > retriesBefore {
					// Acked on a retry: a duplicate of this version may still
					// be in flight with no dedup to stop it re-applying.
					ks.dupRisk = true
				}
			}
		}
		// Read a key from the other end of the working set.
		j := (i + len(d.keys)/2) % len(d.keys)
		d.checkRead(p, j, faulty)
	}
}

// checkRead fetches key j and applies the read invariants. During a fault
// window (faulty=true) unavailability (errors other than NotFound) is
// tolerated; value-level violations never are.
func (d *drill) checkRead(p runtime.Task, j int, faulty bool) {
	cl := d.c.Clients[0]
	ks := &d.keys[j]
	d.rep.Reads++
	val, _, err := cl.Get(p, keyName(j))
	switch {
	case err == core.ErrNotFound:
		if ks.lastAcked > 0 {
			d.rep.violate("lost acked write: key %04d read NotFound with lastAcked=%d", j, ks.lastAcked)
		}
	case err != nil:
		d.rep.ReadErrors++
		if !faulty {
			d.rep.violate("read of key %04d failed outside any fault window: %v", j, err)
		}
	default:
		ver, ok := parseVer(val)
		if !ok {
			d.rep.violate("unparseable value for key %04d: %q", j, val)
			return
		}
		if ver > ks.maxIssued {
			d.rep.violate("phantom version: key %04d read v%d, max issued v%d", j, ver, ks.maxIssued)
		}
		if ver < ks.lastAcked && !ks.poisoned && !ks.dupRisk {
			d.rep.violate("stale read: key %04d read v%d, lastAcked v%d", j, ver, ks.lastAcked)
		}
	}
}

// waitFor polls cond once per millisecond up to budget.
func (d *drill) waitFor(p runtime.Task, budget runtime.Time, cond func() bool) bool {
	deadline := p.Now() + budget
	for p.Now() < deadline {
		if cond() {
			return true
		}
		p.Sleep(runtime.Millisecond)
	}
	return cond()
}

// quiesce waits until the view/copy machinery converges: no pending copies
// and a manager epoch that stays put for 50 consecutive milliseconds.
func (d *drill) quiesce(p runtime.Task) bool {
	ok := d.waitFor(p, 30*runtime.Second, func() bool {
		if d.c.Manager.PendingCopies() != 0 {
			return false
		}
		epoch := d.c.Manager.Epoch()
		p.Sleep(50 * runtime.Millisecond)
		return d.c.Manager.PendingCopies() == 0 && d.c.Manager.Epoch() == epoch
	})
	if ok {
		d.rep.QuiescedAt = p.Now()
	}
	return ok
}

// verify runs the post-quiescence checks: every key re-read through the
// protocol, and clean keys additionally checked for replica agreement
// across their chain.
func (d *drill) verify(p runtime.Task) {
	cl := d.c.Clients[0]
	view := d.c.Manager.View()
	for i := range d.keys {
		ks := &d.keys[i]
		key := keyName(i)
		d.rep.Reads++
		val, _, err := cl.Get(p, key)
		switch {
		case err == core.ErrNotFound:
			if ks.lastAcked > 0 {
				d.rep.violate("lost acked write: key %04d NotFound after quiescence, lastAcked=%d", i, ks.lastAcked)
			}
			continue
		case err != nil:
			d.rep.ReadErrors++
			d.rep.violate("key %04d unreadable after quiescence: %v", i, err)
			continue
		}
		ver, ok := parseVer(val)
		if !ok {
			d.rep.violate("unparseable value for key %04d after quiescence: %q", i, val)
			continue
		}
		switch {
		case ver > ks.maxIssued:
			d.rep.violate("phantom version after quiescence: key %04d v%d > issued v%d", i, ver, ks.maxIssued)
		case ks.poisoned || ks.dupRisk:
			// Ambiguous history: any issued version is acceptable, but an
			// acked write must never have vanished (checked above).
		case ver != ks.lastAcked:
			d.rep.violate("final value mismatch: key %04d v%d, want acked v%d", i, ver, ks.lastAcked)
		default:
			d.checkReplicas(p, i, view, val)
		}
	}
}

// checkReplicas asserts every synced, non-dirty chain member holds the
// committed value for a clean key.
func (d *drill) checkReplicas(p runtime.Task, i int, view *cluster.View, want []byte) {
	key := keyName(i)
	part := cluster.PartitionOf(core.HashKey(key), view.NumPart)
	for _, id := range view.Chain(part) {
		if !view.Synced(part, id) {
			continue
		}
		if d.c.Nodes[id].Dirty(part, key) {
			continue // unacked residue; the tail is authoritative
		}
		got, have, err := d.c.ReplicaGet(p, id, part, key)
		if !have {
			d.rep.violate("replica hole: node %d in chain of part %d has no slot for it", id, part)
			continue
		}
		if err != nil {
			d.rep.violate("replica divergence: node %d part %d key %04d: %v", id, part, i, err)
			continue
		}
		if string(got) != string(want) {
			d.rep.violate("replica divergence: node %d part %d key %04d has %q, committed %q", id, part, i, got, want)
		}
	}
}

// finishReport folds cluster counters into the report and sets the verdict.
func (d *drill) finishReport() {
	rep, c := d.rep, d.c
	for i := range d.keys {
		if d.keys[i].poisoned {
			rep.Poisoned++
		}
		if d.keys[i].dupRisk {
			rep.DupRisk++
		}
	}
	for _, cl := range c.Clients {
		st := cl.Stats()
		rep.Backoffs += st.Backoffs
		rep.Retries += st.Retries
		rep.Nacks += st.Nacks
		rep.Timeouts += st.Timeouts
	}
	fs := d.faults.Stats()
	rep.DroppedByLoss = fs.DroppedByLoss
	rep.DroppedByPartition = fs.DroppedByPartition
	rep.Delayed = fs.Delayed
	ids := append([]cluster.NodeID(nil), c.NodeIDs...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		st := c.Nodes[id].Stats()
		rep.CopyRetries += st.CopyRetries
		rep.ShieldedCopies += st.ShieldedCopies
		rep.Restarts += st.Restarts
		rep.RecoveredParts += st.RecoveredParts
		rep.DirtyResidue += int64(c.Nodes[id].DirtyKeys())
		for _, fi := range d.injectors[id] {
			rep.DeviceInjected += fi.Injected()
		}
	}
	rep.PartitionsLost = c.Manager.PartitionsLost()
	rep.FinalEpoch = c.Manager.Epoch()
	rep.Pass = len(rep.Violations) == 0
	snap := c.Obs().Snapshot()
	rep.Metrics = &snap
}
