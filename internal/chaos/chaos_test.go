package chaos

import (
	"strings"
	"testing"
)

// runScenario executes one drill and fails the test on any invariant
// violation, printing the report for the log.
func runScenario(t *testing.T, sc Scenario, seed int64) *Report {
	t.Helper()
	rep, err := RunDrill(Config{Seed: seed, Scenario: sc})
	if err != nil {
		t.Fatalf("%s drill: %v", sc, err)
	}
	t.Logf("\n%s", rep)
	if !rep.Pass {
		t.Errorf("%s drill failed:\n%s", sc, rep)
	}
	return rep
}

func TestDrillMessageLoss(t *testing.T) {
	rep := runScenario(t, MessageLoss, 1)
	if rep.DroppedByLoss == 0 {
		t.Error("message-loss drill dropped nothing; the fault never engaged")
	}
	if rep.WritesAcked == 0 {
		t.Error("no writes were acknowledged under message loss")
	}
}

func TestDrillPartitionHeal(t *testing.T) {
	// 4 JBOFs with R=3 so some chains avoid the partitioned victim: those
	// keys must keep acking through the window, not just ride it out.
	rep, err := RunDrill(Config{Seed: 1, Scenario: PartitionHeal, JBOFs: 4})
	if err != nil {
		t.Fatalf("partition-heal drill: %v", err)
	}
	t.Logf("\n%s", rep)
	if !rep.Pass {
		t.Errorf("partition-heal drill failed:\n%s", rep)
	}
	if rep.DroppedByPartition == 0 {
		t.Error("partition-heal drill dropped nothing; the partition never engaged")
	}
	if rep.Poisoned == rep.Keys {
		t.Error("every key poisoned: no chain avoided the victim, the drill checked nothing")
	}
}

func TestDrillCrashRestart(t *testing.T) {
	rep := runScenario(t, CrashRestart, 1)
	if rep.Restarts != 1 {
		t.Errorf("Restarts = %d, want 1", rep.Restarts)
	}
	if rep.RecoveredParts == 0 {
		t.Error("the restarted node recovered no partitions from flash")
	}
	if rep.PartitionsLost != 0 {
		t.Errorf("PartitionsLost = %d on a single-failure drill", rep.PartitionsLost)
	}
}

func TestDrillDeviceFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode runs the three core scenarios only")
	}
	rep := runScenario(t, DeviceFaults, 1)
	if rep.DeviceInjected == 0 {
		t.Error("device-faults drill injected nothing")
	}
}

func TestDrillMixed(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode runs the three core scenarios only")
	}
	rep := runScenario(t, Mixed, 1)
	if rep.Restarts != 1 || rep.DroppedByLoss == 0 {
		t.Errorf("mixed drill engaged restarts=%d droppedByLoss=%d; want both",
			rep.Restarts, rep.DroppedByLoss)
	}
}

// TestDrillReportIsDeterministic is the seed-reproducibility contract: the
// same seed must render a byte-identical report, violations and all.
func TestDrillReportIsDeterministic(t *testing.T) {
	scenarios := Scenarios()
	if testing.Short() {
		scenarios = []Scenario{MessageLoss}
	}
	for _, sc := range scenarios {
		a, errA := RunDrill(Config{Seed: 7, Scenario: sc})
		b, errB := RunDrill(Config{Seed: 7, Scenario: sc})
		if errA != nil || errB != nil {
			t.Fatalf("%s: drill errors: %v / %v", sc, errA, errB)
		}
		if a.String() != b.String() {
			t.Errorf("%s: same seed, different reports:\n--- run A\n%s--- run B\n%s",
				sc, a, b)
		}
	}
}

// TestDrillSeedChangesSchedule guards against the rng being wired to a
// constant: different seeds must explore different fault schedules.
func TestDrillSeedChangesSchedule(t *testing.T) {
	if testing.Short() {
		t.Skip("covered by the long run")
	}
	a, errA := RunDrill(Config{Seed: 1, Scenario: MessageLoss})
	b, errB := RunDrill(Config{Seed: 2, Scenario: MessageLoss})
	if errA != nil || errB != nil {
		t.Fatalf("drill errors: %v / %v", errA, errB)
	}
	if a.String() == b.String() {
		t.Error("seeds 1 and 2 produced identical reports; the schedule ignores the seed")
	}
	if !strings.Contains(a.String(), "verdict=") {
		t.Errorf("report missing verdict line:\n%s", a)
	}
}
