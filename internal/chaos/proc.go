package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"os/exec"
	"syscall"
	"time"

	"leed/internal/cluster"
	"leed/internal/cluster/proc"
	"leed/internal/core"
	"leed/internal/runtime"
	"leed/internal/runtime/wallclock"
	"leed/internal/transport"
)

// Proc drills are the multi-process complement of the served drills: instead
// of one server behind a fault proxy they stand up a real cluster — a
// manager process and several node processes on loopback — and attack a
// process, not a connection. The contract under test is CRRS's (§3.7): a
// write is acked only after the whole chain has absorbed it, so SIGKILLing
// any single chain member must lose nothing the client was told succeeded,
// and the manager must detect the death, cut a new view, and keep the
// cluster serving.
//
// The drill does not fork processes itself; the caller supplies Spawn, which
// maps a ProcSpec to a running *exec.Cmd. Tests re-exec the test binary
// through an env-var dispatcher; leedctl re-execs itself with the manager /
// node subcommands. Everything else — readiness, load, the kill, the
// convergence wait, verification, graceful shutdown — is the drill's.

// ProcScenario names one multi-process fault schedule.
type ProcScenario string

const (
	// ProcKillTail SIGKILLs partition 0's chain tail mid-load. The tail is
	// the read replica, so reads must fail over once the manager cuts the
	// new view; acked writes live on the surviving upstream replicas.
	ProcKillTail ProcScenario = "proc-kill-tail"
	// ProcKillHead SIGKILLs partition 0's chain head mid-load. Writes lose
	// their entry point until the view moves the head; the synchronous
	// downstream ack means everything acked already reached the survivors.
	ProcKillHead ProcScenario = "proc-kill-head"
	// ProcPartition blackholes one node's heartbeat link through a
	// transport.FaultProxy: the node stays alive but falls silent, the
	// manager must declare it dead and cut it from the view, and after the
	// heal the node must re-join, re-sync via COPY, and return to RUNNING.
	ProcPartition ProcScenario = "proc-partition"
)

// ProcScenarios lists the multi-process scenarios in a fixed order.
func ProcScenarios() []ProcScenario {
	return []ProcScenario{ProcKillTail, ProcKillHead, ProcPartition}
}

// ProcSpec describes one cluster process for Spawn to start. Role is
// "manager" or "node"; node specs carry the ID and the manager address to
// heartbeat (which the partition scenario routes through a fault proxy).
type ProcSpec struct {
	Role       string // "manager" | "node"
	ID         cluster.NodeID
	Listen     string
	Manager    string
	NumPart    int
	R          int
	HBInterval time.Duration
	HBTimeout  time.Duration
}

// Args renders the spec as the `leedctl manager` / `leedctl node` argument
// vector — the shared vocabulary between the drill and every spawner that
// re-execs a binary embedding proc.Main. Zero-valued fields are omitted so
// the subcommand's own defaults apply.
func (s ProcSpec) Args() []string {
	var args []string
	switch s.Role {
	case "manager":
		args = []string{"manager", "-listen", s.Listen}
		if s.R != 0 {
			args = append(args, "-r", fmt.Sprint(s.R))
		}
		if s.HBTimeout != 0 {
			args = append(args, "-hb-timeout", s.HBTimeout.String())
		}
	case "node":
		args = []string{"node",
			"-id", fmt.Sprint(uint64(s.ID)),
			"-listen", s.Listen,
			"-manager", s.Manager,
		}
		if s.HBInterval != 0 {
			args = append(args, "-hb-interval", s.HBInterval.String())
		}
	default:
		return nil
	}
	if s.NumPart != 0 {
		args = append(args, "-numpart", fmt.Sprint(s.NumPart))
	}
	return args
}

// ProcConfig shapes one multi-process drill.
type ProcConfig struct {
	Seed     int64
	Scenario ProcScenario

	// Spawn starts one cluster process from its spec. Required. If the
	// returned command's Stdout is a *bytes.Buffer the drill additionally
	// asserts the "drained" line on graceful shutdown.
	Spawn func(ProcSpec) (*exec.Cmd, error)

	// Keys is the tracked working set. Default 32.
	Keys int
	// Nodes is the cluster size. Default 3 (the minimum that leaves a full
	// R=3 chain one death away from quorum data).
	Nodes int
	// NumPart and R shape the ring. Defaults 8 and 3.
	NumPart int
	R       int

	// HBInterval is the node heartbeat cadence, HBTimeout the manager's
	// silent-node failure timeout. Defaults 50ms / 600ms.
	HBInterval time.Duration
	HBTimeout  time.Duration

	// KillAfter is how far into the loaded window the fault lands.
	// Default 400ms.
	KillAfter time.Duration

	// Budget bounds the whole drill in real time. Default 120s.
	Budget time.Duration
}

func (cfg *ProcConfig) setProcDefaults() {
	if cfg.Scenario == "" {
		cfg.Scenario = ProcKillTail
	}
	if cfg.Keys == 0 {
		cfg.Keys = 32
	}
	if cfg.Nodes == 0 {
		cfg.Nodes = 3
	}
	if cfg.NumPart == 0 {
		cfg.NumPart = 8
	}
	if cfg.R == 0 {
		cfg.R = 3
	}
	if cfg.HBInterval == 0 {
		cfg.HBInterval = 50 * time.Millisecond
	}
	if cfg.HBTimeout == 0 {
		cfg.HBTimeout = 600 * time.Millisecond
	}
	if cfg.KillAfter == 0 {
		cfg.KillAfter = 400 * time.Millisecond
	}
	if cfg.Budget == 0 {
		cfg.Budget = 120 * time.Second
	}
}

// ProcReport is a multi-process drill's outcome.
type ProcReport struct {
	Scenario ProcScenario
	Seed     int64

	// Victim is the node the fault hit (killed or partitioned).
	Victim cluster.NodeID
	// EpochBefore/EpochAfter bracket the reconfiguration: After must exceed
	// Before or the manager never reacted.
	EpochBefore, EpochAfter uint64

	WritesAcked  int64
	WritesFailed int64
	// AckedAfterFault counts writes acknowledged after the fault landed —
	// the liveness half of the verdict (the cluster kept serving).
	AckedAfterFault int64
	Reads           int64
	ReadErrors      int64
	Poisoned        int // keys whose final version is ambiguous

	Violations []string
	Pass       bool
}

func (r *ProcReport) violate(format string, args ...any) {
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}

// String renders a compact single-drill summary.
func (r *ProcReport) String() string {
	verdict := "PASS"
	if !r.Pass {
		verdict = "FAIL"
	}
	return fmt.Sprintf(
		"proc %s seed=%d: %s victim=%d epoch %d→%d acked=%d failed=%d ackedAfterFault=%d "+
			"poisoned=%d reads=%d readErrs=%d violations=%d",
		r.Scenario, r.Seed, verdict, r.Victim, r.EpochBefore, r.EpochAfter,
		r.WritesAcked, r.WritesFailed, r.AckedAfterFault, r.Poisoned,
		r.Reads, r.ReadErrors, len(r.Violations))
}

// procDrill carries one run's moving parts.
type procDrill struct {
	cfg    ProcConfig
	env    *wallclock.Env
	cl     *proc.Client
	mgr    *exec.Cmd
	nodes  map[cluster.NodeID]*exec.Cmd
	proxy  *transport.FaultProxy
	keys   []keyState
	rep    *ProcReport
	stop   bool          // set in task context; writers poll it
	faultC chan struct{} // closed (from a raw goroutine) when the fault lands
}

// RunProcDrill executes one multi-process scenario end to end. The report's
// Pass field is the verdict; err is reserved for harness failures (a child
// that never came up, a missing Spawn).
func RunProcDrill(cfg ProcConfig) (*ProcReport, error) {
	cfg.setProcDefaults()
	d := &procDrill{
		cfg:    cfg,
		nodes:  make(map[cluster.NodeID]*exec.Cmd),
		keys:   make([]keyState, cfg.Keys),
		rep:    &ProcReport{Scenario: cfg.Scenario, Seed: cfg.Seed},
		faultC: make(chan struct{}),
	}
	if cfg.Spawn == nil {
		return d.rep, errors.New("chaos: proc drill needs a Spawn function")
	}
	defer d.reapAll()

	mgrAddr, err := freeLocalAddr()
	if err != nil {
		return d.rep, err
	}
	d.mgr, err = cfg.Spawn(ProcSpec{
		Role: "manager", Listen: mgrAddr,
		NumPart: cfg.NumPart, R: cfg.R, HBTimeout: cfg.HBTimeout,
	})
	if err != nil {
		return d.rep, fmt.Errorf("spawn manager: %w", err)
	}
	if err := awaitListener(mgrAddr, 15*time.Second); err != nil {
		return d.rep, fmt.Errorf("manager never came up: %w", err)
	}

	// The partition scenario interposes a fault proxy on ONE node's
	// heartbeat link; everything else talks to the manager directly.
	if cfg.Scenario == ProcPartition {
		d.proxy, err = transport.NewFaultProxy("127.0.0.1:0", mgrAddr, cfg.Seed)
		if err != nil {
			return d.rep, err
		}
		defer d.proxy.Close()
	}
	for i := 1; i <= cfg.Nodes; i++ {
		id := cluster.NodeID(i)
		addr, err := freeLocalAddr()
		if err != nil {
			return d.rep, err
		}
		hbTarget := mgrAddr
		if d.proxy != nil && i == cfg.Nodes {
			hbTarget = d.proxy.Addr()
		}
		d.nodes[id], err = cfg.Spawn(ProcSpec{
			Role: "node", ID: id, Listen: addr, Manager: hbTarget,
			NumPart: cfg.NumPart, HBInterval: cfg.HBInterval,
		})
		if err != nil {
			return d.rep, fmt.Errorf("spawn node %d: %w", id, err)
		}
	}

	d.env = wallclock.New()
	d.cl = proc.NewClient(proc.ClientConfig{
		Env:     d.env,
		Manager: mgrAddr,
		// Generous retries: one op must be able to ride out the detection
		// window (HBTimeout plus a couple of heartbeat cadences) on NACKs.
		Retries:    60,
		RetrySleep: 25 * runtime.Millisecond,
	})

	done := make(chan struct{})
	var harnessErr error
	d.env.Spawn("proc-drill", func(t runtime.Task) {
		harnessErr = d.run(t)
		d.finish()
		d.cl.Close()
		close(done)
	})
	select {
	case <-done:
	case <-time.After(cfg.Budget):
		harnessErr = errors.New("chaos: proc drill did not finish within its budget")
	}
	waitBoundedEnv(d.env, 15*time.Second)
	return d.rep, harnessErr
}

// run drives the drill inside the scheduler: readiness, clean preload,
// fault, convergence, verification, graceful shutdown.
func (d *procDrill) run(t runtime.Task) error {
	if !d.awaitMembers(t, 30*time.Second) {
		return errors.New("chaos: cluster never assembled (not all nodes RUNNING)")
	}
	d.sweep(t, 0, 1, false) // version 1 of every key, fault-free
	v := d.cl.View()
	d.rep.EpochBefore = v.Epoch

	// The victim: partition 0's chain tail or head for the kill scenarios,
	// the proxied node for the partition scenario.
	chain := v.Chain(0)
	if len(chain) == 0 {
		return errors.New("chaos: partition 0 has no chain")
	}
	switch d.cfg.Scenario {
	case ProcKillTail:
		d.rep.Victim = chain[len(chain)-1]
	case ProcKillHead:
		d.rep.Victim = chain[0]
	case ProcPartition:
		d.rep.Victim = cluster.NodeID(d.cfg.Nodes)
	default:
		return fmt.Errorf("chaos: unknown proc scenario %q", d.cfg.Scenario)
	}

	// The fault lands from a raw goroutine mid-load, like a real crash.
	victim := d.rep.Victim
	timer := time.AfterFunc(d.cfg.KillAfter, func() {
		switch d.cfg.Scenario {
		case ProcPartition:
			d.proxy.Partition()
			d.proxy.KillAll() // sever the in-flight heartbeat conn too
		default:
			syscall.Kill(d.nodes[victim].Process.Pid, syscall.SIGKILL)
		}
		close(d.faultC)
	})
	defer timer.Stop()

	// Writers hammer versioned writes in disjoint key stripes until the
	// drill releases them; they ride through the reconfiguration on the
	// client's NACK-refresh-retry loop.
	const nWriters = 2
	evs := make([]runtime.Event, 0, nWriters)
	for w := 0; w < nWriters; w++ {
		w := w
		ev := d.env.MakeEvent()
		evs = append(evs, ev)
		d.env.Spawn("proc-writer", func(q runtime.Task) {
			defer ev.Fire(nil)
			for !d.stop {
				d.sweep(q, w, nWriters, true)
				q.Sleep(2 * runtime.Millisecond)
			}
		})
	}

	// Convergence: the manager must cut the victim from the view.
	if !d.awaitEpoch(t, 30*time.Second, func(v *cluster.View) bool {
		_, present := v.States[victim]
		return v.Epoch > d.rep.EpochBefore && !present
	}) {
		d.rep.violate("manager never removed node %d from the view", victim)
	}

	// The partition scenario heals and demands the full round trip: the
	// silenced node re-joins, re-syncs via COPY, and returns to RUNNING.
	if d.cfg.Scenario == ProcPartition {
		d.proxy.Heal()
		if !d.awaitEpoch(t, 45*time.Second, func(v *cluster.View) bool {
			return len(v.States) == d.cfg.Nodes && v.States[victim] == cluster.StateRunning
		}) {
			d.rep.violate("node %d never re-joined and re-synced after the heal", victim)
		}
	}

	d.stop = true
	runtime.WaitAll(t, evs...)
	if v := d.cl.View(); v != nil {
		d.rep.EpochAfter = v.Epoch
	}
	d.verify(t)
	d.shutdown()
	return nil
}

// sweep writes the next version of every key in the writer's stripe and
// interleaves invariant-checked reads, with the same acked/poisoned
// bookkeeping as the served drills. Key state is only touched in task
// context — the execution contract is the lock.
func (d *procDrill) sweep(t runtime.Task, off, stride int, faulty bool) {
	for i := off; i < len(d.keys); i += stride {
		ks := &d.keys[i]
		if !ks.poisoned {
			ver := ks.maxIssued + 1
			ks.maxIssued = ver
			err := d.cl.Put(t, keyName(i), valFor(i, ver))
			if err != nil {
				d.rep.WritesFailed++
				if !proc.WriteNotExecuted(err) {
					ks.poisoned = true
				}
			} else {
				ks.lastAcked = ver
				d.rep.WritesAcked++
				select {
				case <-d.faultC:
					d.rep.AckedAfterFault++
				default:
				}
			}
		}
		d.checkProcRead(t, (i+len(d.keys)/2)%len(d.keys), faulty)
	}
}

// checkProcRead fetches key j under the cluster read invariants. Chains mean
// a non-acked write can still surface (a NACKed write may have reached a
// chain prefix that survives reconfiguration), so the invariant is the
// one-sided CRRS contract: never below the acked floor, never beyond the
// issued ceiling.
func (d *procDrill) checkProcRead(t runtime.Task, j int, faulty bool) {
	ks := &d.keys[j]
	ackedBefore := ks.lastAcked
	d.rep.Reads++
	val, err := d.cl.Get(t, keyName(j))
	switch {
	case errors.Is(err, core.ErrNotFound):
		if ackedBefore > 0 {
			d.rep.violate("lost acked write: key %04d read NotFound with lastAcked=%d", j, ackedBefore)
		}
	case err != nil:
		d.rep.ReadErrors++
		if !faulty {
			d.rep.violate("read of key %04d failed outside any fault window: %v", j, err)
		}
	default:
		ver, ok := parseVer(val)
		if !ok {
			d.rep.violate("unparseable value for key %04d: %q", j, val)
			return
		}
		if ver > ks.maxIssued {
			d.rep.violate("phantom version: key %04d read v%d, max issued v%d", j, ver, ks.maxIssued)
		}
		if ver < ackedBefore {
			d.rep.violate("stale read: key %04d read v%d, lastAcked v%d", j, ver, ackedBefore)
		}
	}
}

// awaitMembers polls the manager until every node is present and RUNNING.
func (d *procDrill) awaitMembers(t runtime.Task, budget time.Duration) bool {
	return d.awaitEpoch(t, budget, func(v *cluster.View) bool {
		if len(v.States) != d.cfg.Nodes {
			return false
		}
		for i := 1; i <= d.cfg.Nodes; i++ {
			if v.States[cluster.NodeID(i)] != cluster.StateRunning {
				return false
			}
		}
		return true
	})
}

// awaitEpoch refreshes the client's view until cond holds or the budget
// runs out. Refresh errors are retried — the manager may be mid-kill.
func (d *procDrill) awaitEpoch(t runtime.Task, budget time.Duration, cond func(*cluster.View) bool) bool {
	deadline := time.Now().Add(budget)
	for time.Now().Before(deadline) {
		if err := d.cl.Refresh(t); err == nil {
			if v := d.cl.View(); v != nil && cond(v) {
				return true
			}
		}
		t.Sleep(runtime.Time(d.cfg.HBInterval))
	}
	return false
}

// verify is the post-convergence pass: every key re-read against the final
// view; no error is tolerable now.
func (d *procDrill) verify(t runtime.Task) {
	for i := range d.keys {
		ks := &d.keys[i]
		d.rep.Reads++
		val, err := d.cl.Get(t, keyName(i))
		switch {
		case errors.Is(err, core.ErrNotFound):
			if ks.lastAcked > 0 {
				d.rep.violate("lost acked write: key %04d NotFound after convergence, lastAcked=%d", i, ks.lastAcked)
			}
		case err != nil:
			d.rep.ReadErrors++
			d.rep.violate("key %04d unreadable after convergence: %v", i, err)
		default:
			ver, ok := parseVer(val)
			switch {
			case !ok:
				d.rep.violate("unparseable value for key %04d after convergence: %q", i, val)
			case ver > ks.maxIssued:
				d.rep.violate("phantom version after convergence: key %04d v%d > issued v%d", i, ver, ks.maxIssued)
			case ver < ks.lastAcked:
				d.rep.violate("lost acked write: key %04d read v%d < acked v%d", i, ver, ks.lastAcked)
			}
		}
	}
}

// shutdown SIGTERMs every surviving process and verifies the graceful-drain
// contract: exit code 0 and (when the spawner captured stdout into a
// bytes.Buffer) the "drained" line.
func (d *procDrill) shutdown() {
	killed := cluster.NodeID(0)
	if d.cfg.Scenario == ProcKillTail || d.cfg.Scenario == ProcKillHead {
		killed = d.rep.Victim
	}
	for id, cmd := range d.nodes {
		if id == killed {
			continue
		}
		d.drainChild(fmt.Sprintf("node %d", id), cmd)
	}
	d.drainChild("manager", d.mgr)
}

// drainChild SIGTERMs one child and waits, bounded, for a clean exit.
func (d *procDrill) drainChild(name string, cmd *exec.Cmd) {
	if cmd == nil || cmd.Process == nil {
		return
	}
	cmd.Process.Signal(syscall.SIGTERM)
	waited := make(chan error, 1)
	go func() { waited <- cmd.Wait() }()
	select {
	case err := <-waited:
		if err != nil {
			d.rep.violate("%s exited dirty on SIGTERM: %v", name, err)
		}
	case <-time.After(15 * time.Second):
		d.rep.violate("%s did not drain within 15s of SIGTERM", name)
		syscall.Kill(cmd.Process.Pid, syscall.SIGKILL)
		<-waited
	}
	if buf, ok := cmd.Stdout.(*bytes.Buffer); ok {
		if !bytes.Contains(buf.Bytes(), []byte("drained")) {
			d.rep.violate("%s never printed \"drained\" on SIGTERM", name)
		}
	}
}

// finish folds counters into the report and applies scenario expectations:
// the view must have moved, and the cluster must have kept acking writes
// after the fault.
func (d *procDrill) finish() {
	for i := range d.keys {
		if d.keys[i].poisoned {
			d.rep.Poisoned++
		}
	}
	if d.rep.EpochAfter <= d.rep.EpochBefore {
		d.rep.violate("view epoch never advanced past the fault (%d → %d)",
			d.rep.EpochBefore, d.rep.EpochAfter)
	}
	if d.rep.AckedAfterFault == 0 {
		d.rep.violate("no write was acked after the fault — the cluster stopped serving")
	}
	d.rep.Pass = len(d.rep.Violations) == 0
}

// reapAll makes sure no child outlives the drill, whatever path exited.
func (d *procDrill) reapAll() {
	reap := func(cmd *exec.Cmd) {
		if cmd == nil || cmd.Process == nil {
			return
		}
		if cmd.ProcessState == nil {
			syscall.Kill(cmd.Process.Pid, syscall.SIGKILL)
			cmd.Wait()
		}
	}
	for _, cmd := range d.nodes {
		reap(cmd)
	}
	reap(d.mgr)
}

// freeLocalAddr reserves an ephemeral loopback port and releases it for a
// child to bind. The tiny race window is acceptable for a drill.
func freeLocalAddr() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := l.Addr().String()
	l.Close()
	return addr, nil
}

// awaitListener polls until addr accepts a TCP connection; both roles bind
// their listeners before printing their ready line, so connect == ready.
func awaitListener(addr string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for time.Now().Before(deadline) {
		c, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			c.Close()
			return nil
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("no listener on %s within %v", addr, budget)
}

// waitBoundedEnv drains env.Wait with a hard timeout so a wedged task
// cannot hang the drill process.
func waitBoundedEnv(env *wallclock.Env, budget time.Duration) {
	done := make(chan struct{})
	go func() { env.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(budget):
	}
}
