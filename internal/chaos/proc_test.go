package chaos

import (
	"bytes"
	"os"
	"os/exec"
	"strings"
	"testing"

	"leed/internal/cluster/proc"
)

// The proc drill tests re-exec this test binary as the cluster's manager and
// node processes, exactly like the proc package's own integration battery:
// TestMain diverts to the subcommand dispatcher when LEED_PROC_ROLE is set.

func TestMain(m *testing.M) {
	if os.Getenv("LEED_PROC_ROLE") != "" {
		os.Exit(proc.Main(strings.Fields(os.Getenv("LEED_PROC_ARGS"))))
	}
	os.Exit(m.Run())
}

// testSpawner maps a ProcSpec onto a re-exec of the test binary, capturing
// output so the drill can assert the "drained" line.
func testSpawner(t *testing.T) func(ProcSpec) (*exec.Cmd, error) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("os.Executable: %v", err)
	}
	var spawned []*exec.Cmd
	t.Cleanup(func() {
		for _, cmd := range spawned {
			if cmd.Process != nil && cmd.ProcessState == nil {
				cmd.Process.Kill()
				cmd.Wait()
			}
		}
	})
	return func(spec ProcSpec) (*exec.Cmd, error) {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(),
			"LEED_PROC_ROLE=1",
			"LEED_PROC_ARGS="+strings.Join(spec.Args(), " "))
		out := &bytes.Buffer{}
		cmd.Stdout = out
		cmd.Stderr = out
		if err := cmd.Start(); err != nil {
			return nil, err
		}
		spawned = append(spawned, cmd)
		return cmd, nil
	}
}

func runProcScenario(t *testing.T, sc ProcScenario) {
	if testing.Short() {
		t.Skipf("proc drill %s skipped in -short mode", sc)
	}
	rep, err := RunProcDrill(ProcConfig{
		Seed:     7,
		Scenario: sc,
		Spawn:    testSpawner(t),
	})
	if err != nil {
		t.Fatalf("drill harness: %v", err)
	}
	t.Log(rep)
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if !rep.Pass {
		t.Errorf("drill %s failed", sc)
	}
}

// TestProcDrillKillTail SIGKILLs partition 0's chain tail — the read
// replica — mid-load and demands zero acked-write loss plus a manager-cut
// view that keeps serving.
func TestProcDrillKillTail(t *testing.T) { runProcScenario(t, ProcKillTail) }

// TestProcDrillKillHead SIGKILLs partition 0's chain head mid-load; the
// synchronous downstream ack means everything acked already reached the
// survivors.
func TestProcDrillKillHead(t *testing.T) { runProcScenario(t, ProcKillHead) }

// TestProcDrillPartition silences one node's heartbeat link through a fault
// proxy: the manager must detect and evict it, and after the heal the node
// must re-join, re-sync via COPY, and return to RUNNING.
func TestProcDrillPartition(t *testing.T) { runProcScenario(t, ProcPartition) }
