package chaos

import (
	"fmt"
	"math/rand"
	"strings"

	"leed/internal/core"
	"leed/internal/flashsim"
	"leed/internal/obs"
	"leed/internal/runtime"
)

// SoakConfig shapes a store-level durability soak: repeated cycles of seeded
// writes (with a device-fault window in the middle of each), ended by a
// simulated power cut — a fresh Store over the same device, rebuilt through
// Recover — after which every acknowledged write must still read back.
//
// The soak is written against runtime.Task, so the same code runs on the
// deterministic sim backend (tests) and on the wall-clock backend
// (`leedctl soak`).
type SoakConfig struct {
	Env  runtime.Env
	Seed int64

	Cycles      int   // crash-recovery cycles; default 3
	OpsPerCycle int   // writes per cycle; default 256
	Capacity    int64 // device bytes; default 24 MiB
	ValLen      int   // object value size; default 128

	// ErrorRate is the device fault probability during each cycle's middle
	// window. Default 0.05; set negative for a fault-free soak.
	ErrorRate float64

	// TornRate is the probability that a failing write is torn — its first
	// half reaches the medium before the error — instead of dropped whole.
	// Torn writes exercise the recovery scan's torn-chain and hole-probe
	// paths, the failure shape a crashed submission-queue device leaves
	// behind. Default 0.5 during fault windows; set negative to disable.
	TornRate float64

	// Device overrides the backing device (default: a fresh in-memory
	// device of Capacity bytes). The soak formats it from scratch —
	// existing contents are overwritten.
	Device flashsim.Device

	// Obs, when set, receives the soak device's leed_dev_* series;
	// SoakReport.Metrics carries its final snapshot.
	Obs *obs.Registry
}

func (cfg *SoakConfig) setDefaults() {
	if cfg.Cycles == 0 {
		cfg.Cycles = 3
	}
	if cfg.OpsPerCycle == 0 {
		cfg.OpsPerCycle = 256
	}
	if cfg.Capacity == 0 {
		cfg.Capacity = 24 << 20
	}
	if cfg.ValLen == 0 {
		cfg.ValLen = 128
	}
	if cfg.ErrorRate == 0 {
		cfg.ErrorRate = 0.05
	}
	if cfg.ErrorRate < 0 {
		cfg.ErrorRate = 0
	}
	if cfg.TornRate == 0 {
		cfg.TornRate = 0.5
	}
	if cfg.TornRate < 0 {
		cfg.TornRate = 0
	}
}

// SoakReport is a soak's outcome; like a drill Report, every field on the
// sim backend is deterministic in the seed.
type SoakReport struct {
	Seed       int64
	Pass       bool
	Violations []string

	Cycles                    int
	WritesAcked, WritesFailed int64
	Reads                     int64
	DeviceInjected            int64
	Recoveries                int64
	RecoveredSegments         int64
	LiveObjects               int64
	Elapsed                   runtime.Time

	// Metrics is the registry's final snapshot when SoakConfig.Obs was set.
	// Excluded from String() (the byte-compared transcript).
	Metrics *obs.Snapshot
}

// String renders the report with a fixed field order.
func (r *SoakReport) String() string {
	var b strings.Builder
	verdict := "PASS"
	if !r.Pass {
		verdict = "FAIL"
	}
	fmt.Fprintf(&b, "soak seed=%d verdict=%s\n", r.Seed, verdict)
	fmt.Fprintf(&b, "  cycles=%d writesAcked=%d writesFailed=%d reads=%d\n",
		r.Cycles, r.WritesAcked, r.WritesFailed, r.Reads)
	fmt.Fprintf(&b, "  deviceInjected=%d recoveries=%d recoveredSegments=%d\n",
		r.DeviceInjected, r.Recoveries, r.RecoveredSegments)
	fmt.Fprintf(&b, "  liveObjects=%d elapsed=%v\n", r.LiveObjects, r.Elapsed)
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "  violation: %s\n", v)
	}
	return b.String()
}

func (r *SoakReport) violate(format string, args ...any) {
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}

// soakKey tracks one key's driver-side truth. A failed Put taints the key —
// the write may or may not have landed — until the next acknowledged Put
// supersedes whatever it left behind (ops against a single store are
// synchronous, so there are no trailing duplicates as in cluster drills).
type soakKey struct {
	lastAcked string
	tainted   bool
}

// RunSoak drives one soak inside task p and returns its report.
func RunSoak(p runtime.Task, cfg SoakConfig) *SoakReport {
	if cfg.Device != nil && cfg.Capacity == 0 {
		cfg.Capacity = cfg.Device.Capacity()
	}
	cfg.setDefaults()
	rep := &SoakReport{Seed: cfg.Seed, Cycles: cfg.Cycles}
	start := cfg.Env.Now()

	dev := cfg.Device
	if dev == nil {
		dev = flashsim.NewMemDevice(cfg.Env, cfg.Capacity)
	}
	if cfg.Obs != nil {
		flashsim.Observe(dev, cfg.Obs, nil, "soak")
	}
	fi := flashsim.NewFaultInjector(cfg.Env, dev, cfg.Seed+17)
	fi.TornWriteRate = cfg.TornRate // only failing writes tear, so windows gate it
	geo := core.PlanPartition(cfg.Capacity, 24, cfg.ValLen, core.PlanOpts{})
	store := core.NewStore(core.StoreConfigFor(geo, core.Config{
		Env:    cfg.Env,
		Device: fi,
	}))

	rng := rand.New(rand.NewSource(cfg.Seed))
	keyspace := cfg.OpsPerCycle / 2
	if keyspace < 16 {
		keyspace = 16
	}
	keys := make([]soakKey, keyspace)
	key := func(i int) []byte { return []byte(fmt.Sprintf("soak-%05d", i)) }

	// compactIfNeeded runs compactions with injection off: the soak tests
	// crash durability, and a compaction failing mid-move is an engine-level
	// concern the cluster drills cover.
	compactIfNeeded := func() error {
		saved := fi.ErrorRate
		fi.ErrorRate = 0
		defer func() { fi.ErrorRate = saved }()
		if store.NeedsValueCompaction() {
			if _, err := store.CompactValueLog(p); err != nil {
				return err
			}
		}
		if store.NeedsKeyCompaction() {
			if _, err := store.CompactKeyLog(p); err != nil {
				return err
			}
		}
		return nil
	}

	// One superblock up front so every later recovery has an anchor; writes
	// after it are recovered by the key-log scan past the persisted tail.
	if err := store.Flush(p); err != nil {
		rep.violate("initial flush: %v", err)
		rep.Pass = false
		return rep
	}

	for cycle := 0; cycle < cfg.Cycles; cycle++ {
		val := func(i, op int) string {
			return fmt.Sprintf("c%d-%d|soak-%05d", cycle, op, i)
		}
		for op := 0; op < cfg.OpsPerCycle; op++ {
			// Device faults only in the middle half of the cycle, so every
			// cycle also exercises clean writes before and after.
			if op == cfg.OpsPerCycle/4 {
				fi.ErrorRate = cfg.ErrorRate
			}
			if op == 3*cfg.OpsPerCycle/4 {
				fi.ErrorRate = 0
			}
			i := rng.Intn(keyspace)
			v := val(i, op)
			if _, err := store.Put(p, key(i), []byte(v)); err != nil {
				keys[i].tainted = true
				rep.WritesFailed++
			} else {
				keys[i].lastAcked = v
				keys[i].tainted = false
				rep.WritesAcked++
			}
			if err := compactIfNeeded(); err != nil {
				rep.violate("cycle %d compaction: %v", cycle, err)
			}
			// Interleaved read of a random key, checked against the tracker.
			j := rng.Intn(keyspace)
			checkSoakKey(p, store, rep, key(j), &keys[j], fmt.Sprintf("cycle %d", cycle))
		}
		fi.ErrorRate = 0

		// Power cut: odd cycles flush first (superblock recovery), even
		// cycles don't (key-log scan recovery) — both must hold every ack.
		if cycle%2 == 1 {
			if err := store.Flush(p); err != nil {
				rep.violate("cycle %d flush: %v", cycle, err)
			}
		}
		store = core.NewStore(store.Config())
		segs, err := store.Recover(p)
		if err != nil {
			rep.violate("cycle %d recovery: %v", cycle, err)
			break
		}
		rep.Recoveries++
		rep.RecoveredSegments += int64(segs)

		// Post-recovery audit: every acked write must have survived.
		for i := range keys {
			checkSoakKey(p, store, rep, key(i), &keys[i], fmt.Sprintf("after recovery %d", cycle))
		}
	}

	rep.LiveObjects = store.Objects()
	rep.DeviceInjected = fi.Injected()
	rep.Elapsed = cfg.Env.Now() - start
	rep.Pass = len(rep.Violations) == 0
	if cfg.Obs != nil {
		snap := cfg.Obs.Snapshot()
		rep.Metrics = &snap
	}
	return rep
}

// checkSoakKey reads one key and applies the durability invariants: an
// acknowledged write is never missing, and an untainted key reads exactly
// its last acknowledged value.
func checkSoakKey(p runtime.Task, store *core.Store, rep *SoakReport, k []byte, ks *soakKey, when string) {
	rep.Reads++
	got, _, err := store.Get(p, k)
	switch {
	case err == core.ErrNotFound:
		if ks.lastAcked != "" {
			rep.violate("%s: lost acked write: %s NotFound, acked %q", when, k, ks.lastAcked)
		}
	case err != nil:
		// Injected read errors say nothing about durability.
	case ks.tainted:
		// A failed Put may or may not have landed; any value is legal.
	case ks.lastAcked != "" && string(got) != ks.lastAcked:
		rep.violate("%s: %s = %q, want acked %q", when, k, got, ks.lastAcked)
	}
}
