package chaos

import (
	"testing"
	"time"

	"leed/internal/runtime"
)

// servedConfig shrinks a served drill to a test-friendly size. Real sockets
// and real sleeps mean counters vary run to run; tests assert invariants
// and fault engagement, never exact values.
func servedConfig(sc ServedScenario, seed int64) ServedConfig {
	return ServedConfig{
		Seed:         seed,
		Scenario:     sc,
		Keys:         24,
		Rounds:       2,
		Clients:      2,
		Deadline:     100 * runtime.Millisecond,
		PartitionFor: 400 * time.Millisecond,
		Budget:       60 * time.Second,
	}
}

func runServedScenario(t *testing.T, sc ServedScenario, seed int64) *ServedReport {
	t.Helper()
	rep, err := RunServedDrill(servedConfig(sc, seed))
	if err != nil {
		t.Fatalf("%s served drill: %v", sc, err)
	}
	t.Logf("\n%s", rep)
	if !rep.Pass {
		t.Errorf("%s served drill failed:\n%s", sc, rep)
	}
	return rep
}

// TestServedDrillDrop: the proxy abruptly kills connections mid-stream;
// clients must reconnect and retry through it with zero acked-write loss.
func TestServedDrillDrop(t *testing.T) {
	rep := runServedScenario(t, ServedProxyDrop, 1)
	if rep.WritesAcked == 0 {
		t.Error("no writes were acknowledged under connection drops")
	}
	if rep.Proxy.KilledByDrop == 0 {
		t.Error("drop drill killed no connections; the fault never engaged")
	}
}

// TestServedDrillPartition: the wire blackholes, requests stall into their
// deadlines, the breaker opens and bounds the tail, the heal restores
// service and the working set reads back intact.
func TestServedDrillPartition(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode runs the drop scenario only")
	}
	rep := runServedScenario(t, ServedProxyPartition, 1)
	if !rep.BreakerOpened {
		t.Error("partition drill never opened a client breaker")
	}
	if rep.Timeouts == 0 {
		t.Error("partition drill produced no client timeouts")
	}
	if rep.WritesAcked == 0 {
		t.Error("no writes were acknowledged across the partition drill")
	}
}
