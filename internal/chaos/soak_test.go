package chaos

import (
	"testing"

	"leed/internal/flashsim"
	"leed/internal/sim"
)

func runSoak(t *testing.T, cfg SoakConfig) *SoakReport {
	t.Helper()
	k := sim.New()
	defer k.Close()
	cfg.Env = k
	var rep *SoakReport
	k.Go("soak", func(p *sim.Proc) {
		rep = RunSoak(p, cfg)
	})
	k.Run()
	if rep == nil {
		t.Fatal("soak driver never finished")
	}
	t.Logf("\n%s", rep)
	return rep
}

func TestSoakSurvivesCrashRecoveryCycles(t *testing.T) {
	rep := runSoak(t, SoakConfig{Seed: 5})
	if !rep.Pass {
		t.Errorf("soak failed:\n%s", rep)
	}
	if rep.Recoveries != int64(rep.Cycles) {
		t.Errorf("Recoveries = %d, want %d", rep.Recoveries, rep.Cycles)
	}
	if rep.RecoveredSegments == 0 {
		t.Error("recovery rebuilt no segments")
	}
	if rep.DeviceInjected == 0 && rep.WritesFailed == 0 {
		// The injector is seeded; with the default rate some ops must fail.
		t.Error("the fault window never engaged")
	}
}

func TestSoakIsDeterministicOnSim(t *testing.T) {
	a := runSoak(t, SoakConfig{Seed: 11})
	b := runSoak(t, SoakConfig{Seed: 11})
	// Elapsed is virtual time on sim, so even it must match.
	if a.String() != b.String() {
		t.Errorf("same seed, different soak reports:\n--- run A\n%s--- run B\n%s", a, b)
	}
}

func TestSoakFaultFree(t *testing.T) {
	if testing.Short() {
		t.Skip("covered by the faulted soak")
	}
	rep := runSoak(t, SoakConfig{Seed: 3, ErrorRate: -1, Cycles: 2})
	if !rep.Pass {
		t.Errorf("fault-free soak failed:\n%s", rep)
	}
	if rep.WritesFailed != 0 || rep.DeviceInjected != 0 {
		t.Errorf("fault-free soak injected faults: failed=%d injected=%d",
			rep.WritesFailed, rep.DeviceInjected)
	}
}

// TestSoakAsyncFileDevice runs the durability soak against the
// submission-queue device over a real image file, with torn writes enabled:
// fault windows kill batches mid-write (half the payload lands), and every
// crash-recovery cycle must still hold every acknowledged write. This is the
// crash-consistency acceptance test for the async device path.
func TestSoakAsyncFileDevice(t *testing.T) {
	img := t.TempDir() + "/soak.img"
	k := sim.New()
	defer k.Close()
	dev, err := flashsim.OpenAsyncFileDevice(k, img, 24<<20, flashsim.AsyncOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	var rep *SoakReport
	k.Go("soak", func(p *sim.Proc) {
		rep = RunSoak(p, SoakConfig{Env: k, Seed: 23, Device: dev, TornRate: 1.0})
	})
	k.Run()
	if rep == nil {
		t.Fatal("soak driver never finished")
	}
	t.Logf("\n%s", rep)
	if !rep.Pass {
		t.Errorf("async-device soak failed:\n%s", rep)
	}
	if rep.DeviceInjected == 0 {
		t.Error("the fault window never engaged; torn batches untested")
	}
	if dev.Stats().Batches == 0 {
		t.Error("the soak never exercised the submission queue")
	}
}
