package chaos

import (
	"errors"
	"fmt"
	"time"

	"leed/internal/core"
	"leed/internal/engine"
	"leed/internal/flashsim"
	"leed/internal/obs"
	"leed/internal/runtime"
	"leed/internal/runtime/wallclock"
	"leed/internal/server"
	"leed/internal/transport"
)

// Served drills are the real-socket complement of the fabric drills above:
// instead of a simulated cluster they stand up the actual served path —
// engine, server front-end, TCP listener — put a transport.FaultProxy on
// the wire, and drive it with ReliableClients whose deadlines, retries,
// reconnects, and circuit breakers are the thing under test. The fault
// vocabulary is the same LinkFaults config netsim.Faults speaks; what the
// drill verifies is the client-visible contract:
//
//   - no acknowledged write is ever lost, whatever the wire does;
//   - write ambiguity is only ever surfaced, never silently resolved
//     (a failed PUT poisons its key in the tracker, exactly like the
//     fabric drills' quarantine);
//   - client tail latency stays bounded through a partition — the breaker
//     opens and converts hangs into fast failures instead of letting every
//     op eat the full deadline × attempts budget.
//
// Real sockets mean real time: like the fabric drills' wallclock backend,
// counters vary run to run and only the invariants are reproducible.

// ServedScenario names one served-path fault schedule.
type ServedScenario string

const (
	// ServedProxyDrop kills connections probabilistically mid-stream: the
	// TCP rendering of sustained message loss. Clients must reconnect and
	// retry through it with zero acked-write loss.
	ServedProxyDrop ServedScenario = "proxy-drop"
	// ServedProxyPartition blackholes the wire for a while, then heals:
	// requests stall into their deadlines, the breaker opens, and after the
	// heal the working set must read back intact.
	ServedProxyPartition ServedScenario = "proxy-partition"
)

// ServedScenarios lists the served-path scenarios in a fixed order.
func ServedScenarios() []ServedScenario {
	return []ServedScenario{ServedProxyDrop, ServedProxyPartition}
}

// ServedConfig shapes one served-path drill.
type ServedConfig struct {
	Seed     int64
	Scenario ServedScenario

	// Keys is the tracked working set; Rounds is how many sweeps run inside
	// the fault window. Defaults 32 / 2.
	Keys   int
	Rounds int
	// Clients is how many ReliableClients drive concurrently, each owning a
	// disjoint key slice. Default 2.
	Clients int

	// Deadline is the per-request deadline each client runs with; the
	// partition scenario's tail-latency bound derives from it. Default
	// 150ms.
	Deadline runtime.Time
	// PartitionFor is how long the partition scenario blackholes the wire.
	// Default 700ms.
	PartitionFor time.Duration

	// Budget bounds the whole drill in real time. Default 60s.
	Budget time.Duration

	// Obs, when set, receives the server's and clients' metrics (the drill
	// otherwise creates its own registry); the final snapshot rides the
	// report either way.
	Obs *obs.Registry
}

func (cfg *ServedConfig) setDefaults() {
	if cfg.Scenario == "" {
		cfg.Scenario = ServedProxyDrop
	}
	if cfg.Keys == 0 {
		cfg.Keys = 32
	}
	if cfg.Rounds == 0 {
		cfg.Rounds = 2
	}
	if cfg.Clients == 0 {
		cfg.Clients = 2
	}
	if cfg.Deadline == 0 {
		cfg.Deadline = 150 * runtime.Millisecond
	}
	if cfg.PartitionFor == 0 {
		cfg.PartitionFor = 700 * time.Millisecond
	}
	if cfg.Budget == 0 {
		cfg.Budget = 60 * time.Second
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.NewRegistry()
	}
}

// ServedReport is a served-path drill's outcome.
type ServedReport struct {
	Scenario ServedScenario
	Seed     int64

	WritesAcked  int64
	WritesFailed int64
	Reads        int64
	ReadErrors   int64
	Poisoned     int // keys whose final version is ambiguous

	// Client reliability counters, summed across clients.
	Attempts   int64
	Retries    int64
	Timeouts   int64
	Reconnects int64
	Overloads  int64
	FastFails  int64

	// BreakerOpened records whether any client's breaker left closed state
	// during the drill (the partition scenario requires it).
	BreakerOpened bool
	// MaxStall is the longest any single driver op took, wall clock — the
	// tail-latency bound the breaker is there to enforce.
	MaxStall time.Duration

	Proxy transport.FaultProxyStats

	Violations []string
	Pass       bool
	Metrics    *obs.Snapshot
}

func (r *ServedReport) violate(format string, args ...any) {
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}

// String renders a compact single-drill summary.
func (r *ServedReport) String() string {
	verdict := "PASS"
	if !r.Pass {
		verdict = "FAIL"
	}
	return fmt.Sprintf(
		"served %s seed=%d: %s acked=%d failed=%d poisoned=%d reads=%d readErrs=%d "+
			"retries=%d timeouts=%d reconnects=%d fastFails=%d breakerOpened=%v maxStall=%v "+
			"proxyKills=%d violations=%d",
		r.Scenario, r.Seed, verdict, r.WritesAcked, r.WritesFailed, r.Poisoned,
		r.Reads, r.ReadErrors, r.Retries, r.Timeouts, r.Reconnects, r.FastFails,
		r.BreakerOpened, r.MaxStall, r.Proxy.KilledByDrop+r.Proxy.Killed, len(r.Violations))
}

// servedDrill carries one run's moving parts.
type servedDrill struct {
	cfg     ServedConfig
	env     *wallclock.Env
	srv     *server.Server
	proxy   *transport.FaultProxy
	clients []*server.ReliableClient
	keys    []keyState
	rep     *ServedReport
}

// RunServedDrill executes one served-path scenario end to end. The report's
// Pass field is the verdict; err is reserved for harness failures.
func RunServedDrill(cfg ServedConfig) (*ServedReport, error) {
	cfg.setDefaults()
	d := &servedDrill{
		cfg:  cfg,
		keys: make([]keyState, cfg.Keys),
		rep:  &ServedReport{Scenario: cfg.Scenario, Seed: cfg.Seed},
	}
	env := wallclock.New()
	d.env = env

	// The stack: engine over in-memory devices, server front-end, real TCP
	// listener, fault proxy on the wire, reliable clients dialing the proxy.
	const devCap = 16 << 20
	eng := engine.New(engine.Config{
		Env:              env,
		Devices:          []flashsim.Device{flashsim.NewMemDevice(env, devCap), flashsim.NewMemDevice(env, devCap)},
		PartitionsPerSSD: 2,
		Geometry:         core.PlanPartition(4<<20, 16, 256, core.PlanOpts{}),
		PartitionBytes:   4 << 20,
	})
	d.srv = server.New(server.Config{
		Env: env, Engine: eng, Obs: cfg.Obs,
		MaxInflightTotal: 256,
		IdleTimeout:      10 * runtime.Second,
	})
	l, err := transport.ListenTCPOpts(env, "127.0.0.1:0", transport.TCPOptions{
		ReadIdleTimeout: 30 * time.Second, // leak bound, not a behavior knob here
	})
	if err != nil {
		return d.rep, err
	}
	d.srv.Serve(l)
	d.proxy, err = transport.NewFaultProxy("127.0.0.1:0", l.Addr(), cfg.Seed)
	if err != nil {
		l.Close()
		return d.rep, err
	}
	addr := d.proxy.Addr()
	for c := 0; c < cfg.Clients; c++ {
		d.clients = append(d.clients, server.NewReliableClient(server.ReliableConfig{
			Env: env,
			Dial: func(t runtime.Task) (transport.Conn, error) {
				return transport.DialTCPOpts(env, addr, transport.TCPOptions{
					ReadIdleTimeout: 10 * time.Second,
				})
			},
			Depth:       8,
			Deadline:    cfg.Deadline,
			MaxAttempts: 5,
			BackoffBase: 5 * runtime.Millisecond,
			BackoffCap:  100 * runtime.Millisecond,
			Seed:        cfg.Seed + int64(c),
			// Low threshold so a partition window a few deadlines long is
			// guaranteed to trip it — the scenario asserts the breaker opens.
			BreakerThreshold: 3,
			BreakerCooloff:   200 * runtime.Millisecond,
			Obs:              cfg.Obs,
		}))
	}

	done := make(chan struct{})
	env.Spawn("served-drill", func(t runtime.Task) {
		d.run(t)
		d.finish()
		for _, rc := range d.clients {
			rc.Close()
		}
		d.srv.Close()
		close(done)
	})
	var harnessErr error
	select {
	case <-done:
	case <-time.After(cfg.Budget):
		harnessErr = errors.New("chaos: served drill did not finish within its budget")
		d.srv.Close()
	}
	d.proxy.Close()
	// Bounded drain, as in runDrillWallclock: a leaked task must not hang
	// the harness.
	drained := make(chan struct{})
	go func() { d.env.Wait(); close(drained) }()
	select {
	case <-drained:
	case <-time.After(15 * time.Second):
	}
	return d.rep, harnessErr
}

// run drives the drill: clean load, fault window per scenario, heal, final
// verified sweep.
func (d *servedDrill) run(p runtime.Task) {
	d.parallelSweep(p, false) // version 1 of every key, fault-free

	switch d.cfg.Scenario {
	case ServedProxyDrop:
		d.proxy.SetDrop(0.015) // per-16KB-chunk: a few kills per sweep
		for r := 0; r < d.cfg.Rounds; r++ {
			d.parallelSweep(p, true)
		}
		d.proxy.SetDrop(0)
	case ServedProxyPartition:
		d.proxy.Partition()
		time.AfterFunc(d.cfg.PartitionFor, d.proxy.Heal)
		for r := 0; r < d.cfg.Rounds; r++ {
			d.parallelSweep(p, true)
		}
		// Make sure the heal has landed before the verification sweep.
		for d.proxy.Faults().Partitioned {
			p.Sleep(5 * runtime.Millisecond)
		}
	default:
		d.rep.violate("unknown served scenario %q", d.cfg.Scenario)
		return
	}

	d.settle(p)
	d.parallelSweep(p, false) // post-heal: must be clean
	d.verify(p)
}

// settle probes each client until it completes a request cleanly: after a
// heal, breakers still in cooloff must be allowed to half-open and close
// before the fault-free verification sweep, which tolerates no errors.
func (d *servedDrill) settle(p runtime.Task) {
	deadline := time.Now().Add(10 * time.Second)
	for _, rc := range d.clients {
		for time.Now().Before(deadline) {
			_, err := rc.Get(p, keyName(0))
			if err == nil || err == core.ErrNotFound {
				break
			}
			p.Sleep(20 * runtime.Millisecond)
		}
	}
}

// parallelSweep runs one sweep with every client working its own key slice
// concurrently; the caller's task is the barrier.
func (d *servedDrill) parallelSweep(p runtime.Task, faulty bool) {
	evs := make([]runtime.Event, 0, len(d.clients))
	for c := range d.clients {
		c := c
		ev := d.env.MakeEvent()
		evs = append(evs, ev)
		d.env.Spawn("sweep-client", func(q runtime.Task) {
			defer ev.Fire(nil)
			d.sweepSlice(q, c, faulty)
		})
	}
	runtime.WaitAll(p, evs...)
}

// sweepSlice writes the next version of every key owned by client c and
// interleaves invariant-checked reads. Keys partition by index, so each
// key's version history is totally ordered at its owning client.
func (d *servedDrill) sweepSlice(q runtime.Task, c int, faulty bool) {
	rc := d.clients[c]
	for i := c; i < len(d.keys); i += len(d.clients) {
		ks := &d.keys[i]
		if !ks.poisoned {
			ver := ks.maxIssued + 1
			ks.maxIssued = ver
			err := d.timedOp(q, rc, func() error {
				return rc.Put(q, keyName(i), valFor(i, ver))
			})
			if err != nil {
				d.rep.WritesFailed++
				// The reliability layer already retried everything that was
				// safe to retry. A breaker fast-fail or NACK exhaustion
				// proves the write never executed — the key is still exactly
				// at lastAcked. Anything else (deadline, dead conn) is
				// ambiguous: quarantine the key, its final version is
				// unknowable from the driver.
				if !server.WriteNotExecuted(err) {
					ks.poisoned = true
				}
			} else {
				ks.lastAcked = ver
				d.rep.WritesAcked++
			}
		}
		j := (i + len(d.keys)/2) % len(d.keys)
		d.checkServedRead(q, rc, j, faulty)
	}
}

// timedOp runs one driver op, folding its wall-clock duration and the
// client's breaker excursions into the report.
func (d *servedDrill) timedOp(q runtime.Task, rc *server.ReliableClient, op func() error) error {
	start := time.Now()
	err := op()
	if el := time.Since(start); el > d.rep.MaxStall {
		d.rep.MaxStall = el
	}
	if rc.BreakerState() != 0 {
		d.rep.BreakerOpened = true
	}
	return err
}

// checkServedRead fetches key j and applies the read invariants. A key
// sliced to another client may be mid-write there, so version-freshness is
// only asserted for keys this reader owns; the lost-acked-write invariant
// (the one that matters) is global and unconditional.
func (d *servedDrill) checkServedRead(q runtime.Task, rc *server.ReliableClient, j int, faulty bool) {
	ks := &d.keys[j]
	ackedBefore := ks.lastAcked
	d.rep.Reads++
	val, err := d.timedGet(q, rc, keyName(j))
	switch {
	case err == core.ErrNotFound:
		if ackedBefore > 0 {
			d.rep.violate("lost acked write: key %04d read NotFound with lastAcked=%d", j, ackedBefore)
		}
	case err != nil:
		d.rep.ReadErrors++
		if !faulty {
			d.rep.violate("read of key %04d failed outside any fault window: %v", j, err)
		}
	default:
		ver, ok := parseVer(val)
		if !ok {
			d.rep.violate("unparseable value for key %04d: %q", j, val)
			return
		}
		if ver > ks.maxIssued {
			d.rep.violate("phantom version: key %04d read v%d, max issued v%d", j, ver, ks.maxIssued)
		}
		if ver < ackedBefore && !ks.poisoned {
			d.rep.violate("stale read: key %04d read v%d, lastAcked v%d", j, ver, ackedBefore)
		}
	}
}

func (d *servedDrill) timedGet(q runtime.Task, rc *server.ReliableClient, key []byte) ([]byte, error) {
	var val []byte
	err := d.timedOp(q, rc, func() error {
		v, err := rc.Get(q, key)
		val = v
		return err
	})
	return val, err
}

// verify is the post-heal pass: every key re-read on a fault-free wire.
func (d *servedDrill) verify(p runtime.Task) {
	rc := d.clients[0]
	for i := range d.keys {
		ks := &d.keys[i]
		d.rep.Reads++
		val, err := rc.Get(p, keyName(i))
		switch {
		case err == core.ErrNotFound:
			if ks.lastAcked > 0 {
				d.rep.violate("lost acked write: key %04d NotFound after heal, lastAcked=%d", i, ks.lastAcked)
			}
		case err != nil:
			d.rep.ReadErrors++
			d.rep.violate("key %04d unreadable after heal: %v", i, err)
		default:
			ver, ok := parseVer(val)
			switch {
			case !ok:
				d.rep.violate("unparseable value for key %04d after heal: %q", i, val)
			case ver > ks.maxIssued:
				d.rep.violate("phantom version after heal: key %04d v%d > issued v%d", i, ver, ks.maxIssued)
			case ks.poisoned:
				// Ambiguous history: any issued version ≥ lastAcked stands;
				// losing the acked floor is still a violation.
				if ver < ks.lastAcked {
					d.rep.violate("ambiguous key %04d regressed: v%d < acked v%d", i, ver, ks.lastAcked)
				}
			case ver != ks.lastAcked:
				d.rep.violate("final value mismatch: key %04d v%d, want acked v%d", i, ver, ks.lastAcked)
			}
		}
	}
}

// finish folds counters into the report and applies scenario-level
// expectations: the drill must not only preserve data, it must show the
// machinery actually engaged (retries happened, the breaker opened during
// a partition, the tail stayed bounded).
func (d *servedDrill) finish() {
	for i := range d.keys {
		if d.keys[i].poisoned {
			d.rep.Poisoned++
		}
	}
	for _, rc := range d.clients {
		st := rc.Stats()
		d.rep.Attempts += st.Attempts
		d.rep.Retries += st.Retries
		d.rep.Timeouts += st.Timeouts
		d.rep.Reconnects += st.Reconnects
		d.rep.Overloads += st.Overloads
		d.rep.FastFails += st.FastFails
	}
	d.rep.Proxy = d.proxy.Stats()

	switch d.cfg.Scenario {
	case ServedProxyDrop:
		if d.rep.Proxy.KilledByDrop == 0 {
			d.rep.violate("drop scenario ran but the proxy killed nothing")
		}
		if d.rep.Retries == 0 && d.rep.Reconnects == 0 {
			d.rep.violate("drop scenario engaged no client recovery (retries=0, reconnects=0)")
		}
	case ServedProxyPartition:
		if !d.rep.BreakerOpened {
			d.rep.violate("partition scenario never opened a breaker")
		}
		if d.rep.Timeouts == 0 {
			d.rep.violate("partition scenario produced no client timeouts")
		}
		// The tail bound: one op may at worst eat every attempt's deadline
		// plus every backoff plus the breaker cooloff once. Anything past
		// that means an op hung un-deadlined somewhere.
		bound := 5*time.Duration(d.cfg.Deadline) + 5*100*time.Millisecond +
			200*time.Millisecond + 2*time.Second
		if d.rep.MaxStall > bound {
			d.rep.violate("unbounded stall: max op time %v exceeds bound %v", d.rep.MaxStall, bound)
		}
	}
	d.rep.Pass = len(d.rep.Violations) == 0
	snap := d.cfg.Obs.Snapshot()
	d.rep.Metrics = &snap
}
