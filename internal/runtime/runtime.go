// Package runtime defines the execution substrate the LEED stack runs on.
//
// Every layer above the device models (flashsim, core, engine, the leed
// facade) is written against the small interfaces in this package instead of
// a concrete scheduler, so the same store code runs on two backends:
//
//   - internal/sim: the deterministic discrete-event kernel. Virtual time,
//     single-threaded baton-passing execution, bit-identical replays.
//   - internal/runtime/wallclock: real goroutines, time.Now/time.Sleep and
//     sync under a single runtime lock, for serving real traffic.
//
// The execution contract both backends provide: at most one Task executes
// user code at any instant, and a Task releases the processor only inside
// the blocking primitives (Sleep, Wait, Park, Queue.Get, Resource.Acquire).
// Code written for this contract needs no data-level locking of its own —
// exactly the invariant the sim kernel has always provided — while the
// wallclock backend still overlaps timers, device I/O completions, and
// sleeping tasks in real time.
package runtime

// Env is one runtime environment: a clock, a timer wheel, a spawner, and
// constructors for the synchronization primitives the stack is built from.
type Env interface {
	// Now returns the current time: virtual nanoseconds on the sim backend,
	// nanoseconds since Env creation on the wallclock backend.
	Now() Time
	// After schedules fn to run d from now. fn runs in scheduler context
	// (it must not block); completions and timeouts are wired through it.
	After(d Time, fn func())
	// Spawn starts fn as a new task. name is used for debugging.
	Spawn(name string, fn func(t Task))
	// Offload runs fn outside the execution contract and then runs done with
	// fn's result back in scheduler context. It is the seam for real blocking
	// work (file I/O syscalls) that must not stall every other task: the
	// wallclock backend executes fn on a worker-pool goroutine without the
	// runtime lock, so submissions keep flowing while the syscall runs; the
	// sim backend executes fn inline at the current virtual time, preserving
	// determinism. fn must not touch Env state or any structure protected by
	// the execution contract — it gets its inputs up front and communicates
	// results only through its return value.
	Offload(fn func() any, done func(v any))
	// MakeEvent returns an unfired one-shot completion event.
	MakeEvent() Event
	// MakeQueue returns an empty unbounded FIFO queue.
	MakeQueue() Queue
	// MakeResource returns a counting semaphore with the given capacity.
	MakeResource(capacity int64) Resource
	// MakeHistogram returns an empty latency histogram.
	MakeHistogram() *Histogram
}

// Task is the execution context of one running task. Blocking store APIs
// take a Task the same way POSIX blocking calls implicitly take a thread.
type Task interface {
	// Name returns the task's debug name.
	Name() string
	// Now returns the environment's current time.
	Now() Time
	// Sleep blocks the task for d.
	Sleep(d Time)
	// Wait blocks until ev fires and returns its payload. The event must
	// belong to the same Env as the task.
	Wait(ev Event) any
	// Prepare issues a one-shot wakeup ticket for the task's next Park.
	// Custom blocking primitives (e.g. core's per-segment locks) register
	// the ticket with whoever will wake them, then Park.
	Prepare() Ticket
	// Park blocks until a ticket from the most recent Prepare is woken.
	// Wakeups may be spurious; callers must loop on their condition.
	Park()
}

// Ticket is a one-shot wakeup permit issued by Task.Prepare. A ticket whose
// task has moved on (woken by something else, or exited) is silently
// ignored, so stale wakeups are harmless.
type Ticket interface {
	// Wake schedules the ticket's task to resume now.
	Wake()
	// WakeAfter schedules the wakeup d into the future.
	WakeAfter(d Time)
}

// Event is a one-shot completion signal with an optional payload. Any number
// of tasks may Wait on it and any number of callbacks may be attached; all
// are released when Fire is called. Firing twice panics: completions in this
// system are single-owner.
type Event interface {
	// Fire marks the event complete, wakes all waiters, and schedules all
	// callbacks.
	Fire(val any)
	// Fired reports whether the event has fired.
	Fired() bool
	// Value returns the payload passed to Fire, or nil if not yet fired.
	Value() any
	// OnFire registers fn to run (in scheduler context) when the event
	// fires. If the event already fired, fn is scheduled immediately.
	OnFire(fn func(val any))
}

// Queue is an unbounded FIFO connecting tasks: producers Put without
// blocking, consumers Get and block while the queue is empty.
type Queue interface {
	// Put appends v and wakes one blocked getter, if any.
	Put(v any)
	// TryGet pops the head item without blocking. ok is false when empty.
	TryGet() (v any, ok bool)
	// Get pops the head item, blocking the task while the queue is empty.
	// Getters are served in FIFO order.
	Get(t Task) any
	// Peek returns the head item without removing it.
	Peek() (v any, ok bool)
	// Len returns the number of queued items.
	Len() int
	// MaxLen returns the high-water mark of the queue length.
	MaxLen() int
}

// Resource is a counting semaphore: the standard model for anything with
// bounded concurrency (SSD service units, admission tokens, DMA engines).
// Waiters are granted strictly in FIFO order, so a large request at the head
// blocks smaller ones behind it — matching hardware queues.
type Resource interface {
	// Acquire blocks the task until n units are available and all earlier
	// waiters have been served.
	Acquire(t Task, n int64)
	// TryAcquire takes n units if immediately available and nobody is
	// queued ahead. It reports whether the units were taken.
	TryAcquire(n int64) bool
	// Release returns n units and grants as many queued waiters as now
	// fit, in FIFO order.
	Release(n int64)
	// Capacity returns the configured capacity.
	Capacity() int64
	// Avail returns the currently available units.
	Avail() int64
	// InUse returns capacity minus available units.
	InUse() int64
	// Waiting returns the number of queued acquirers.
	Waiting() int
	// Utilization returns the time-averaged fraction of capacity in use
	// since the resource was created.
	Utilization() float64
}
