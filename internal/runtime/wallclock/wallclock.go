// Package wallclock implements runtime.Env on real time: tasks are plain
// goroutines, Sleep is time.Sleep, and timers are time.AfterFunc.
//
// The backend keeps the execution contract the store code was written for —
// at most one task runs at any instant — with a single environment-wide
// mutex (a "big runtime lock", like an early OS kernel): a task holds the
// lock from the moment it is scheduled until it blocks in a primitive, which
// releases the lock for the duration of the wait. Device I/O, timers, and
// sleeping tasks therefore overlap in real time while all store state is
// still accessed one task at a time, so the unlocked data structures in
// core/engine/flashsim are race-free here too (and `go test -race` agrees).
//
// What wallclock does NOT provide is determinism: goroutine wakeup order
// under contention is up to the Go scheduler and the OS clock. Use the sim
// backend for reproducible experiments.
package wallclock

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"leed/internal/runtime"
)

// Env is the wall-clock runtime environment. Construct with New.
type Env struct {
	mu    sync.Mutex // the big runtime lock; see the package comment
	start time.Time
	ntask atomic.Int64 // task name counter

	// Inflight work counter: spawned tasks, pending timers, and offloads.
	// A plain mutex-guarded counter instead of sync.WaitGroup because
	// transports inject work via After from raw goroutines (socket readers)
	// that may race with Wait — WaitGroup forbids Add concurrent with Wait
	// at counter zero, a counter with a condvar does not.
	wgmu     sync.Mutex
	wgcond   *sync.Cond // lazily initialized under wgmu
	inflight int

	// The offload pool. offmu is a leaf lock ordered after mu: Offload is
	// called with mu held, workers take mu only while not holding offmu.
	// Workers are started lazily, then parked on offcond between jobs; they
	// live as long as the process (an Env has no teardown), which keeps the
	// per-job cost at one condvar signal instead of a goroutine spawn.
	offmu      sync.Mutex
	offcond    *sync.Cond // lazily initialized under offmu
	offjobs    []offloadJob
	offworkers int // started workers (parked or running)
	offidle    int // workers parked in offcond.Wait
}

// maxOffloadWorkers bounds the I/O worker pool. Offloaded jobs are short
// (one batch of syscalls); a small pool keeps real parallelism without
// letting a submission burst spawn a goroutine per job.
const maxOffloadWorkers = 8

type offloadJob struct {
	fn   func() any
	done func(v any)
}

// Compile-time interface checks.
var (
	_ runtime.Env      = (*Env)(nil)
	_ runtime.Task     = (*task)(nil)
	_ runtime.Ticket   = (*ticket)(nil)
	_ runtime.Event    = (*event)(nil)
	_ runtime.Queue    = (*queue)(nil)
	_ runtime.Resource = (*resource)(nil)
)

// New returns a wall-clock environment whose clock starts at zero now.
func New() *Env {
	return &Env{start: time.Now()}
}

// Now returns the time elapsed since New, in nanoseconds.
func (e *Env) Now() runtime.Time { return runtime.Time(time.Since(e.start)) }

// track registers one unit of inflight work; untrack retires it and wakes
// Wait when the count reaches zero. Safe from any goroutine.
func (e *Env) track() {
	e.wgmu.Lock()
	e.inflight++
	e.wgmu.Unlock()
}

func (e *Env) untrack() {
	e.wgmu.Lock()
	e.inflight--
	if e.inflight == 0 && e.wgcond != nil {
		e.wgcond.Broadcast()
	}
	e.wgmu.Unlock()
}

// After schedules fn to run d from now in scheduler context (holding the
// runtime lock). Wait blocks until all pending timers have run.
func (e *Env) After(d runtime.Time, fn func()) {
	if d < 0 {
		d = 0
	}
	e.track()
	time.AfterFunc(time.Duration(d), func() {
		defer e.untrack()
		e.mu.Lock()
		defer e.mu.Unlock()
		fn()
	})
}

// Spawn starts fn as a new task goroutine. The task body runs holding the
// runtime lock except while blocked in a primitive.
func (e *Env) Spawn(name string, fn func(t runtime.Task)) {
	t := &task{
		env:  e,
		name: fmt.Sprintf("%s#%d", name, e.ntask.Add(1)),
		park: make(chan struct{}, 1),
	}
	t.tk.t = t
	e.track()
	go func() {
		defer e.untrack()
		e.mu.Lock()
		defer e.mu.Unlock()
		fn(t)
	}()
}

// Wait blocks until every spawned task has returned, every pending timer
// has run, and every offloaded job has completed. Call it from the owning
// goroutine (not from a task) after the last Spawn; it is the wall-clock
// analogue of Kernel.Run draining the heap.
func (e *Env) Wait() {
	e.wgmu.Lock()
	if e.wgcond == nil {
		e.wgcond = sync.NewCond(&e.wgmu)
	}
	for e.inflight > 0 {
		e.wgcond.Wait()
	}
	e.wgmu.Unlock()
}

// Offload implements runtime.Env: fn runs on a pool goroutine WITHOUT the
// runtime lock — this is the only place in the backend where user-supplied
// code executes outside the execution contract — and done(v) then runs
// holding the lock, like a timer callback. Jobs are served FIFO.
func (e *Env) Offload(fn func() any, done func(v any)) {
	e.track()
	e.offmu.Lock()
	if e.offcond == nil {
		e.offcond = sync.NewCond(&e.offmu)
	}
	e.offjobs = append(e.offjobs, offloadJob{fn: fn, done: done})
	switch {
	case e.offidle > 0:
		e.offcond.Signal()
	case e.offworkers < maxOffloadWorkers:
		e.offworkers++
		go e.offloadWorker()
	}
	e.offmu.Unlock()
}

func (e *Env) offloadWorker() {
	for {
		e.offmu.Lock()
		for len(e.offjobs) == 0 {
			e.offidle++
			e.offcond.Wait()
			e.offidle--
		}
		job := e.offjobs[0]
		e.offjobs = e.offjobs[1:]
		e.offmu.Unlock()

		v := job.fn()
		e.mu.Lock()
		job.done(v)
		e.mu.Unlock()
		e.untrack()
	}
}

// MakeEvent implements runtime.Env.
func (e *Env) MakeEvent() runtime.Event { return &event{env: e} }

// MakeQueue implements runtime.Env.
func (e *Env) MakeQueue() runtime.Queue { return &queue{} }

// MakeResource implements runtime.Env.
func (e *Env) MakeResource(capacity int64) runtime.Resource {
	return &resource{env: e, capacity: capacity, avail: capacity, busySince: e.Now()}
}

// MakeHistogram implements runtime.Env.
func (e *Env) MakeHistogram() *runtime.Histogram { return runtime.NewHistogram() }

// task is one running goroutine. parked/seq are guarded by env.mu; the park
// channel (capacity 1) carries the wakeup token so a Wake landing between
// lock release and channel receive is never lost.
//
// tk is the task's single reusable ticket: Prepare bumps seq and hands out
// &t.tk instead of allocating, so the hot park/wake path is allocation-free.
// The cost of sharing one ticket is that a holder of an *old* ticket can no
// longer be distinguished by pointer identity — its Wake sees the current
// seq and wakes the task. That is exactly a spurious wakeup, which the
// runtime.Task contract already requires every caller to tolerate by
// re-checking its condition in a loop.
type task struct {
	env    *Env
	name   string
	park   chan struct{}
	seq    uint64
	parked bool
	tk     ticket
}

// Name returns the task's debug name.
func (t *task) Name() string { return t.name }

// Now returns the environment's current time.
func (t *task) Now() runtime.Time { return t.env.Now() }

// Sleep blocks the task for d, releasing the runtime lock while asleep.
func (t *task) Sleep(d runtime.Time) {
	if d < 0 {
		d = 0
	}
	t.env.mu.Unlock()
	time.Sleep(time.Duration(d))
	t.env.mu.Lock()
}

// Prepare issues a wakeup ticket for the task's next Park. The returned
// ticket is the task's embedded one (no allocation); see the task comment
// for why stale holders degrade to spurious wakeups rather than bugs.
func (t *task) Prepare() runtime.Ticket {
	t.seq++
	t.tk.seq = t.seq
	return &t.tk
}

// Park blocks until the current ticket is woken, releasing the runtime lock
// while parked. Wakeups may be spurious (a second Wake on a still-valid
// ticket leaves a token for the next Park); primitives loop on their
// condition, as the runtime.Task contract requires.
func (t *task) Park() {
	t.parked = true
	t.env.mu.Unlock()
	<-t.park
	t.env.mu.Lock()
	t.parked = false
}

// Wait blocks until ev fires and returns its payload.
func (t *task) Wait(ev runtime.Event) any {
	e := ev.(*event)
	for !e.fired {
		tk := t.Prepare().(*ticket)
		e.waiters = append(e.waiters, tk)
		t.Park()
	}
	return e.val
}

// ticket is a one-shot wakeup permit. Wake must run with env.mu held, which
// is true for every caller: primitives wake tickets from task context, and
// WakeAfter goes through After.
type ticket struct {
	t   *task
	seq uint64
}

// Wake resumes the ticket's task if it is still parked on this ticket.
func (tk *ticket) Wake() {
	t := tk.t
	if !t.parked || t.seq != tk.seq {
		return
	}
	select {
	case t.park <- struct{}{}:
	default: // token already pending; one is enough
	}
}

// WakeAfter schedules the wakeup d into the future.
func (tk *ticket) WakeAfter(d runtime.Time) {
	tk.t.env.After(d, tk.Wake)
}

// event is the wall-clock runtime.Event. All fields are guarded by env.mu.
type event struct {
	env     *Env
	fired   bool
	val     any
	waiters []*ticket
	cbs     []func(val any)
}

// Fire marks the event complete, wakes all waiters, and schedules all
// callbacks.
func (e *event) Fire(val any) {
	if e.fired {
		panic("wallclock: Event fired twice")
	}
	e.fired = true
	e.val = val
	for _, tk := range e.waiters {
		tk.Wake()
	}
	e.waiters = nil
	cbs := e.cbs
	e.cbs = nil
	for _, cb := range cbs {
		cb := cb
		e.env.After(0, func() { cb(val) })
	}
}

// Fired reports whether the event has fired.
func (e *event) Fired() bool { return e.fired }

// Value returns the payload passed to Fire, or nil if not yet fired.
func (e *event) Value() any { return e.val }

// OnFire registers fn to run when the event fires; if it already fired, fn
// is scheduled immediately.
func (e *event) OnFire(fn func(val any)) {
	if e.fired {
		v := e.val
		e.env.After(0, func() { fn(v) })
		return
	}
	e.cbs = append(e.cbs, fn)
}

// queue is the wall-clock runtime.Queue, guarded by env.mu like sim's is by
// the kernel baton.
type queue struct {
	items   []any
	head    int
	getters []*ticket
	maxLen  int
}

// Put appends v and wakes one blocked getter, if any.
func (q *queue) Put(v any) {
	q.items = append(q.items, v)
	if n := q.Len(); n > q.maxLen {
		q.maxLen = n
	}
	if n := len(q.getters); n > 0 {
		tk := q.getters[0]
		// Shift down instead of reslicing forward: q.getters[1:] would walk
		// the slice base off its backing array, so the next append allocates
		// a fresh one — once per blocking Get, on the serve hot path.
		copy(q.getters, q.getters[1:])
		q.getters[n-1] = nil
		q.getters = q.getters[:n-1]
		tk.Wake()
	}
}

// TryGet pops the head item without blocking.
func (q *queue) TryGet() (any, bool) {
	if q.Len() == 0 {
		return nil, false
	}
	v := q.items[q.head]
	q.items[q.head] = nil
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return v, true
}

// Get pops the head item, blocking the task while the queue is empty.
func (q *queue) Get(t runtime.Task) any {
	tt := t.(*task)
	for {
		if v, ok := q.TryGet(); ok {
			return v
		}
		tk := tt.Prepare().(*ticket)
		q.getters = append(q.getters, tk)
		tt.Park()
	}
}

// Peek returns the head item without removing it.
func (q *queue) Peek() (any, bool) {
	if q.Len() == 0 {
		return nil, false
	}
	return q.items[q.head], true
}

// Len returns the number of queued items.
func (q *queue) Len() int { return len(q.items) - q.head }

// MaxLen returns the high-water mark of the queue length.
func (q *queue) MaxLen() int { return q.maxLen }

// resWaiter is one task waiting for n units of a resource.
type resWaiter struct {
	tk      *ticket
	n       int64
	granted *bool
}

// resource is the wall-clock runtime.Resource: a FIFO counting semaphore
// with the same grant algorithm and busy-time accounting as sim's.
type resource struct {
	env         *Env
	capacity    int64
	avail       int64
	waiters     []resWaiter
	busySince   runtime.Time
	busyIntegal runtime.Time
}

// Capacity returns the configured capacity.
func (r *resource) Capacity() int64 { return r.capacity }

// Avail returns the currently available units.
func (r *resource) Avail() int64 { return r.avail }

// InUse returns capacity minus available units.
func (r *resource) InUse() int64 { return r.capacity - r.avail }

func (r *resource) account() {
	now := r.env.Now()
	r.busyIntegal += runtime.Time(r.InUse()) * (now - r.busySince)
	r.busySince = now
}

// Utilization returns the time-averaged fraction of capacity in use.
func (r *resource) Utilization() float64 {
	r.account()
	elapsed := r.env.Now()
	if elapsed == 0 || r.capacity == 0 {
		return 0
	}
	return float64(r.busyIntegal) / (float64(elapsed) * float64(r.capacity))
}

// Waiting returns the number of queued acquirers.
func (r *resource) Waiting() int { return len(r.waiters) }

// TryAcquire takes n units if immediately available and nobody is queued
// ahead.
func (r *resource) TryAcquire(n int64) bool {
	if len(r.waiters) > 0 || r.avail < n {
		return false
	}
	r.account()
	r.avail -= n
	return true
}

// Acquire blocks the task until n units are available and all earlier
// waiters have been served.
func (r *resource) Acquire(t runtime.Task, n int64) {
	tt := t.(*task)
	if n > r.capacity {
		panic("wallclock: Resource.Acquire exceeds capacity")
	}
	if r.TryAcquire(n) {
		return
	}
	granted := false
	r.waiters = append(r.waiters, resWaiter{tk: tt.Prepare().(*ticket), n: n, granted: &granted})
	for !granted {
		tt.Park()
		if !granted {
			// Spurious wake; re-park with a fresh ticket wired to the same
			// waiter entry.
			for i := range r.waiters {
				if r.waiters[i].granted == &granted {
					r.waiters[i].tk = tt.Prepare().(*ticket)
				}
			}
		}
	}
}

// Release returns n units and grants as many queued waiters as now fit, in
// FIFO order.
func (r *resource) Release(n int64) {
	r.account()
	r.avail += n
	if r.avail > r.capacity {
		panic("wallclock: Resource.Release over capacity")
	}
	for len(r.waiters) > 0 && r.waiters[0].n <= r.avail {
		w := r.waiters[0]
		// Shift down, as in queue.Put: reslicing forward would make every
		// future append reallocate the waiter list.
		n := len(r.waiters)
		copy(r.waiters, r.waiters[1:])
		r.waiters[n-1] = resWaiter{}
		r.waiters = r.waiters[:n-1]
		r.avail -= w.n
		*w.granted = true
		w.tk.Wake()
	}
}
