package wallclock

import (
	"sync/atomic"
	"testing"

	"leed/internal/runtime"
)

func TestNowAdvances(t *testing.T) {
	env := New()
	var before, after runtime.Time
	env.Spawn("sleeper", func(tk runtime.Task) {
		before = tk.Now()
		tk.Sleep(2 * runtime.Millisecond)
		after = tk.Now()
	})
	env.Wait()
	if after-before < 2*runtime.Millisecond {
		t.Fatalf("slept %v, want >= 2ms", after-before)
	}
}

func TestAfterRunsAndWaitBlocks(t *testing.T) {
	env := New()
	var fired atomic.Bool
	env.After(runtime.Millisecond, func() { fired.Store(true) })
	env.Wait()
	if !fired.Load() {
		t.Fatal("Wait returned before the pending timer ran")
	}
}

func TestEventWaitAcrossTasks(t *testing.T) {
	env := New()
	ev := env.MakeEvent()
	var got any
	env.Spawn("waiter", func(tk runtime.Task) { got = tk.Wait(ev) })
	env.Spawn("firer", func(tk runtime.Task) {
		tk.Sleep(runtime.Millisecond)
		ev.Fire("payload")
	})
	env.Wait()
	if got != "payload" {
		t.Fatalf("Wait returned %v, want payload", got)
	}
	if !ev.Fired() || ev.Value() != "payload" {
		t.Fatal("event state wrong after Fire")
	}
}

func TestEventOnFire(t *testing.T) {
	env := New()
	ev := env.MakeEvent()
	var ran []int
	env.Spawn("firer", func(tk runtime.Task) {
		ev.OnFire(func(v any) { ran = append(ran, v.(int)) })
		ev.Fire(1)
		// Registering after the fire still schedules the callback. Unlike
		// sim, wallclock does not order same-instant callbacks, so assert
		// only that both ran.
		ev.OnFire(func(any) { ran = append(ran, 2) })
	})
	env.Wait()
	if len(ran) != 2 || ran[0]+ran[1] != 3 {
		t.Fatalf("callbacks ran as %v, want {1,2} in some order", ran)
	}
}

func TestQueueBlockingGet(t *testing.T) {
	env := New()
	q := env.MakeQueue()
	var got []any
	env.Spawn("consumer", func(tk runtime.Task) {
		for i := 0; i < 3; i++ {
			got = append(got, q.Get(tk))
		}
	})
	env.Spawn("producer", func(tk runtime.Task) {
		for i := 0; i < 3; i++ {
			tk.Sleep(runtime.Millisecond / 2)
			q.Put(i)
		}
	})
	env.Wait()
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("consumed %v, want [0 1 2]", got)
	}
	if q.Len() != 0 {
		t.Fatalf("queue length %d after drain", q.Len())
	}
}

func TestResourceBoundsConcurrency(t *testing.T) {
	env := New()
	res := env.MakeResource(2)
	var inside, maxInside atomic.Int64
	for i := 0; i < 8; i++ {
		env.Spawn("worker", func(tk runtime.Task) {
			res.Acquire(tk, 1)
			n := inside.Add(1)
			for {
				m := maxInside.Load()
				if n <= m || maxInside.CompareAndSwap(m, n) {
					break
				}
			}
			tk.Sleep(runtime.Millisecond)
			inside.Add(-1)
			res.Release(1)
		})
	}
	env.Wait()
	if got := maxInside.Load(); got > 2 {
		t.Fatalf("resource admitted %d concurrent holders, capacity 2", got)
	}
	if res.Avail() != 2 || res.Waiting() != 0 {
		t.Fatalf("resource not fully released: avail=%d waiting=%d", res.Avail(), res.Waiting())
	}
}

func TestTicketParkWake(t *testing.T) {
	env := New()
	var woken bool
	env.Spawn("parker", func(tk runtime.Task) {
		ticket := tk.Prepare()
		ticket.WakeAfter(runtime.Millisecond)
		tk.Park()
		woken = true
	})
	env.Wait()
	if !woken {
		t.Fatal("parked task never woke")
	}
}

func TestStaleTicketIgnored(t *testing.T) {
	env := New()
	done := make(chan struct{})
	env.Spawn("parker", func(tk runtime.Task) {
		stale := tk.Prepare()
		fresh := tk.Prepare() // invalidates stale
		stale.WakeAfter(0)    // must not satisfy the park below on its own
		fresh.WakeAfter(runtime.Millisecond)
		tk.Park()
		close(done)
	})
	env.Wait()
	select {
	case <-done:
	default:
		t.Fatal("task still parked")
	}
}

// TestManyTasksSharedState drives shared structures from many tasks; its
// value is maximized under -race, where it proves the big runtime lock makes
// unlocked shared state safe.
func TestManyTasksSharedState(t *testing.T) {
	env := New()
	q := env.MakeQueue()
	res := env.MakeResource(3)
	hist := env.MakeHistogram()
	counter := 0 // deliberately unsynchronized: the Env contract protects it
	const tasks = 12
	const opsPer = 50
	for i := 0; i < tasks; i++ {
		env.Spawn("hammer", func(tk runtime.Task) {
			for j := 0; j < opsPer; j++ {
				res.Acquire(tk, 1)
				counter++
				hist.Record(runtime.Time(j))
				q.Put(j)
				q.TryGet()
				res.Release(1)
			}
		})
	}
	env.Wait()
	if counter != tasks*opsPer {
		t.Fatalf("counter = %d, want %d", counter, tasks*opsPer)
	}
	if hist.Count() != tasks*opsPer {
		t.Fatalf("histogram count = %d, want %d", hist.Count(), tasks*opsPer)
	}
}
