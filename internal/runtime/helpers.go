package runtime

// Backend-neutral waiting helpers. These are plain compositions of the Env
// and Task primitives, so they behave identically on the sim kernel and the
// wallclock backend. Under the execution contract (at most one task runs at
// any instant, and callbacks run in scheduler context) the check-then-register
// sequences below are atomic: no event can fire between a Fired() check and
// the OnFire registration that follows it.

// Timer returns an event that fires with a nil payload d from now.
func Timer(env Env, d Time) Event {
	ev := env.MakeEvent()
	env.After(d, func() { ev.Fire(nil) })
	return ev
}

// CancelableTimer returns a timer event plus a cancel function. Cancel must
// be called in task or scheduler context; after cancel the event never fires.
// Canceling an already-fired timer is a no-op. This is the primitive for
// failure-detection timeouts that are usually disarmed before they expire.
func CancelableTimer(env Env, d Time) (Event, func()) {
	ev := env.MakeEvent()
	canceled := false
	env.After(d, func() {
		if !canceled && !ev.Fired() {
			ev.Fire(nil)
		}
	})
	return ev, func() { canceled = true }
}

// WaitAny blocks until at least one of evs has fired and returns the index of
// the first fired event (lowest index among those fired at wakeup). Wakeups
// registered on the losing events remain as stale tickets, which both
// backends ignore.
func WaitAny(t Task, evs ...Event) int {
	for {
		for i, ev := range evs {
			if ev.Fired() {
				return i
			}
		}
		tk := t.Prepare()
		for _, ev := range evs {
			ev.OnFire(func(any) { tk.Wake() })
		}
		t.Park()
	}
}

// WaitAll blocks until every event in evs has fired.
func WaitAll(t Task, evs ...Event) {
	for _, ev := range evs {
		t.Wait(ev)
	}
}
