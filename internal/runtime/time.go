package runtime

import "leed/internal/obs"

// Time is a point in time, in nanoseconds: virtual nanoseconds since the
// start of the simulation on the sim backend, nanoseconds since Env creation
// on the wallclock backend. It doubles as a duration; arithmetic on Time
// values is plain integer arithmetic.
//
// The canonical definition lives in internal/obs (the lowest layer, so the
// observability types can use it without an import cycle); runtime keeps
// the historical spelling as an alias.
type Time = obs.Time

// Convenient duration units.
const (
	Nanosecond  = obs.Nanosecond
	Microsecond = obs.Microsecond
	Millisecond = obs.Millisecond
	Second      = obs.Second
)
