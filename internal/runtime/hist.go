package runtime

import "leed/internal/obs"

// Histogram is the log-linear latency histogram shared by both runtime
// backends and the obs metrics registry; the canonical implementation lives
// in internal/obs and is aliased here so runtime-side code keeps its
// historical spelling.
type Histogram = obs.Histogram

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return obs.NewHistogram() }
