package cluster

import (
	"errors"
	"fmt"
	"math/rand"

	"leed/internal/core"
	"leed/internal/netsim"
	"leed/internal/obs"
	"leed/internal/rpcproto"
	"leed/internal/runtime"
)

// ErrTimeout reports that a request exhausted its retries.
var ErrTimeout = errors.New("cluster: request timed out")

// target identifies one (node, partition) admission domain tracked by the
// flow-control scheduler.
type target struct {
	node NodeID
	part uint32
}

// ClientConfig wires one front-end library instance.
type ClientConfig struct {
	Env      runtime.Env
	Tenant   uint16
	Endpoint *netsim.Endpoint

	// FlowControl enables the token-based load-aware scheduler of §3.5
	// (Algorithm 1). When false, requests are issued immediately.
	FlowControl bool
	// CRRS lets GETs pick any synced replica (the one with the most
	// tokens); otherwise reads always target the tail.
	CRRS bool

	// InitialTokens seeds per-target token estimates; should match the
	// engine's TokensPerPartition. Default 48.
	InitialTokens int64
	// Timeout is the per-attempt response deadline. Default 30ms.
	Timeout runtime.Time
	// Retries is the attempt budget per operation. Default 10.
	Retries int

	// BackoffBase is the first retry's backoff delay; it doubles each
	// attempt up to BackoffMax, jittered in [d/2, d] from a seeded stream
	// so retries never re-issue immediately (hammering a partitioned chain)
	// yet replay deterministically. Defaults 200µs / 10ms.
	BackoffBase runtime.Time
	BackoffMax  runtime.Time
	// BackoffSeed seeds the jitter stream. Default Tenant+1, so co-tenant
	// clients desynchronize without any configuration.
	BackoffSeed int64

	// Obs receives the client's counter and latency series (leed_client_*).
	// May be nil; the client then keeps unregistered instruments.
	Obs *obs.Registry
	// Tracer, when non-nil, starts one trace per attempt; the successful
	// attempt's trace is finished with a "client" span covering admission
	// wait and the residual round-trip time no downstream stage claimed.
	Tracer *obs.Tracer
}

// ClientStats are cumulative counters.
type ClientStats struct {
	Ops, Retries, Nacks, Timeouts int64
	Throttled                     int64 // times the scheduler waited for tokens
	Backoffs                      int64 // retry attempts that waited a backoff delay
}

// Client is LEED's co-located front-end library: it tracks membership
// views, routes writes to chain heads and reads to token-rich replicas, and
// paces submissions with the end-to-end flow control of §3.5.
type Client struct {
	cfg    ClientConfig
	env    runtime.Env
	view   *View
	nextID uint64

	tokens      map[target]int64
	outstanding map[target]int
	wake        runtime.Event
	rng         *rand.Rand // backoff jitter

	stopped bool
	stats   ClientStats
	o       *clientObs
}

// clientObs is the client's registry binding: one counter per ClientStats
// field plus the end-to-end latency histogram, labeled by tenant. Always
// constructed (a nil registry hands back working unregistered instruments).
type clientObs struct {
	tr *obs.Tracer

	ops, retries, nacks *obs.Counter
	timeouts            *obs.Counter
	throttled           *obs.Counter
	backoffs            *obs.Counter
	latency             *obs.Hist
}

func newClientObs(reg *obs.Registry, tr *obs.Tracer, tenant uint16) *clientObs {
	t := fmt.Sprint(tenant)
	c := func(name string) *obs.Counter { return reg.Counter(name, "tenant", t) }
	return &clientObs{
		tr:        tr,
		ops:       c("leed_client_ops_total"),
		retries:   c("leed_client_retries_total"),
		nacks:     c("leed_client_nacks_total"),
		timeouts:  c("leed_client_timeouts_total"),
		throttled: c("leed_client_throttled_total"),
		backoffs:  c("leed_client_backoffs_total"),
		latency:   reg.Hist("leed_client_latency_ns", "tenant", t),
	}
}

// NewClient creates a client; Start launches its view/completion poller.
func NewClient(cfg ClientConfig) *Client {
	if cfg.InitialTokens == 0 {
		cfg.InitialTokens = 48
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 30 * runtime.Millisecond
	}
	if cfg.Retries == 0 {
		cfg.Retries = 10
	}
	if cfg.BackoffBase == 0 {
		cfg.BackoffBase = 200 * runtime.Microsecond
	}
	if cfg.BackoffMax == 0 {
		cfg.BackoffMax = 10 * runtime.Millisecond
	}
	if cfg.BackoffSeed == 0 {
		cfg.BackoffSeed = int64(cfg.Tenant) + 1
	}
	c := &Client{
		cfg:         cfg,
		env:         cfg.Env,
		o:           newClientObs(cfg.Obs, cfg.Tracer, cfg.Tenant),
		tokens:      make(map[target]int64),
		outstanding: make(map[target]int),
		rng:         rand.New(rand.NewSource(cfg.BackoffSeed)),
	}
	c.wake = c.env.MakeEvent()
	return c
}

// backoffDur returns the jittered exponential delay before retry `attempt`
// (0-based): base<<attempt capped at max, drawn uniformly from [d/2, d].
func (c *Client) backoffDur(attempt int) runtime.Time {
	d := c.cfg.BackoffBase << uint(attempt)
	if d <= 0 || d > c.cfg.BackoffMax {
		d = c.cfg.BackoffMax
	}
	half := d / 2
	return half + runtime.Time(c.rng.Int63n(int64(half)+1))
}

// Start launches the client's receive loop (view updates arrive as
// two-sided SENDs; responses arrive one-sided into per-request events).
func (c *Client) Start() {
	c.env.Spawn(fmt.Sprintf("client%d-rx", c.cfg.Tenant), func(p runtime.Task) {
		rx := c.cfg.Endpoint.RX()
		for {
			m := rx.Get(p).(*netsim.Message)
			if _, stop := m.Payload.(stopMsg); stop {
				rx.Put(m)
				return
			}
			if c.stopped {
				return
			}
			if vm, ok := m.Payload.(*viewMsg); ok {
				if c.view == nil || vm.view.Epoch > c.view.Epoch {
					c.view = vm.view
					c.fireWake()
				}
			}
		}
	})
}

// Stop makes the client cease processing; its receive loop exits on the
// shutdown pill. Part of Cluster.Shutdown.
func (c *Client) Stop() { c.stopped = true }

// Stats returns cumulative counters.
func (c *Client) Stats() ClientStats { return c.stats }

// View returns the client's current view.
func (c *Client) View() *View { return c.view }

func (c *Client) fireWake() {
	old := c.wake
	c.wake = c.env.MakeEvent()
	old.Fire(nil)
}

func (c *Client) tokensFor(t target) int64 {
	if v, ok := c.tokens[t]; ok {
		return v
	}
	return c.cfg.InitialTokens
}

// pickTarget chooses the destination replica for an operation under the
// current view.
func (c *Client) pickTarget(op rpcproto.Op, part uint32) (target, uint8, error) {
	v := c.view
	if v == nil {
		return target{}, 0, errors.New("cluster: client has no view")
	}
	chain := v.Chain(part)
	if len(chain) == 0 {
		return target{}, 0, errors.New("cluster: empty chain")
	}
	switch op {
	case rpcproto.OpPut, rpcproto.OpDel:
		return target{node: chain[0], part: part}, 0, nil
	default: // GET
		tail := chain[len(chain)-1]
		if !c.cfg.CRRS {
			return target{node: tail, part: part}, uint8(len(chain) - 1), nil
		}
		// CRRS: choose the synced replica with the most available tokens,
		// breaking ties toward the tail (§3.7).
		best := target{node: tail, part: part}
		bestTok := c.tokensFor(best)
		for i := len(chain) - 2; i >= 0; i-- {
			if !v.Synced(part, chain[i]) {
				continue
			}
			t := target{node: chain[i], part: part}
			if tok := c.tokensFor(t); tok > bestTok {
				best, bestTok = t, tok
			}
		}
		pos := 0
		for i, nd := range chain {
			if nd == best.node {
				pos = i
			}
		}
		return best, uint8(pos), nil
	}
}

// admit paces the submission per Algorithm 1: issue when the target has
// tokens, or when no commands are outstanding toward it (the Nagle-like
// probe); otherwise wait for a response or view change.
func (c *Client) admit(p runtime.Task, t target, cost int64) {
	if !c.cfg.FlowControl {
		return
	}
	for {
		if c.tokensFor(t) >= cost {
			c.tokens[t] = c.tokensFor(t) - cost
			return
		}
		if c.outstanding[t] == 0 {
			c.tokens[t] = 0 // probe: a single outstanding command
			return
		}
		c.stats.Throttled++
		c.o.throttled.Inc()
		p.Wait(c.wake)
	}
}

// finishTrace closes the successful attempt's trace: the "client" span's
// queue is the admission wait, and its service is the round-trip time no
// downstream span accounts for (client-side marshaling, completion
// dispatch). Downstream layers recorded directly into tr, so attribution
// sums to the observed RTT without double counting.
func (c *Client) finishTrace(tr *obs.Trace, admitWait, rtt runtime.Time) {
	if tr == nil {
		return
	}
	var known runtime.Time
	for _, s := range tr.Spans {
		known += s.Queue + s.Service
	}
	tr.Span("client", admitWait, rtt-known)
	c.o.tr.End(tr)
}

// Do executes one operation end to end, handling flow control, NACK/view
// refresh, and timeout retries. It returns the response and the measured
// latency (including throttling time, as a client observes it).
func (c *Client) Do(p runtime.Task, op rpcproto.Op, key, val []byte) (*rpcproto.Response, runtime.Time, error) {
	start := p.Now()
	v := c.view
	if v == nil {
		return nil, 0, errors.New("cluster: client has no view")
	}
	part := PartitionOf(core.HashKey(key), v.NumPart)
	cost := int64(3)
	if op == rpcproto.OpGet || op == rpcproto.OpDel {
		cost = 2
	}
	var lastErr error = ErrTimeout
	for attempt := 0; attempt < c.cfg.Retries; attempt++ {
		t, hop, err := c.pickTarget(op, part)
		if err != nil {
			return nil, 0, err
		}
		// Each attempt gets a fresh trace: a late response from an abandoned
		// attempt may still append spans to its own trace, but only the
		// successful attempt's trace is ever finished.
		tr := c.o.tr.Begin(op.String(), p.Now())
		a0 := p.Now()
		c.admit(p, t, cost)
		admitWait := p.Now() - a0
		c.nextID++
		req := &rpcproto.Request{
			ID: c.nextID, Op: op, Tenant: c.cfg.Tenant,
			Partition: part, Epoch: c.view.Epoch, Hop: hop,
			Key: key, Value: val,
		}
		done := c.env.MakeEvent()
		env := &reqEnvelope{req: req, clientAddr: c.cfg.Endpoint.Addr(), complete: done, trace: tr}
		c.outstanding[t]++
		sent := p.Now()
		c.cfg.Endpoint.SendTraced(netsim.Addr(t.node), req.WireSize(), env, tr)
		deadline, cancel := runtime.CancelableTimer(c.env, c.cfg.Timeout)
		idx := runtime.WaitAny(p, done, deadline)
		cancel()
		c.outstanding[t]--
		if idx != 0 {
			// Timeout: the target may be dead; decay its token estimate so
			// the scheduler stops preferring it, then back off and retry.
			c.stats.Timeouts++
			c.o.timeouts.Inc()
			c.stats.Retries++
			c.o.retries.Inc()
			delete(c.tokens, t)
			c.fireWake()
			c.stats.Backoffs++
			c.o.backoffs.Inc()
			p.Sleep(c.backoffDur(attempt))
			continue
		}
		resp := done.Value().(*netsim.Message).Payload.(*rpcproto.Response)
		c.tokens[t] = int64(resp.Tokens)
		c.fireWake()
		switch resp.Status {
		case rpcproto.StatusOK, rpcproto.StatusNotFound:
			c.stats.Ops++
			c.o.ops.Inc()
			lat := p.Now() - start
			c.o.latency.Record(lat)
			c.finishTrace(tr, admitWait, p.Now()-sent)
			return resp, lat, nil
		case rpcproto.StatusNack:
			c.stats.Nacks++
			c.o.nacks.Inc()
			c.stats.Retries++
			c.o.retries.Inc()
			c.stats.Backoffs++
			c.o.backoffs.Inc()
			// Back off before retrying; when the NACK advertises a newer
			// epoch, the wait doubles as "view should arrive soon" and is
			// cut short by the wake event the view update fires.
			if resp.Epoch > c.view.Epoch {
				bo, boCancel := runtime.CancelableTimer(c.env, c.backoffDur(attempt))
				runtime.WaitAny(p, c.wake, bo)
				boCancel()
			} else {
				p.Sleep(c.backoffDur(attempt))
			}
			lastErr = fmt.Errorf("cluster: nacked at epoch %d", resp.Epoch)
		default:
			c.stats.Retries++
			c.o.retries.Inc()
			c.stats.Backoffs++
			c.o.backoffs.Inc()
			p.Sleep(c.backoffDur(attempt))
			lastErr = fmt.Errorf("cluster: status %v", resp.Status)
		}
	}
	return nil, p.Now() - start, lastErr
}

// Get fetches key's value.
func (c *Client) Get(p runtime.Task, key []byte) ([]byte, runtime.Time, error) {
	resp, lat, err := c.Do(p, rpcproto.OpGet, key, nil)
	if err != nil {
		return nil, lat, err
	}
	if resp.Status == rpcproto.StatusNotFound {
		return nil, lat, core.ErrNotFound
	}
	return resp.Value, lat, nil
}

// Put stores key=val through the partition's chain.
func (c *Client) Put(p runtime.Task, key, val []byte) (runtime.Time, error) {
	_, lat, err := c.Do(p, rpcproto.OpPut, key, val)
	return lat, err
}

// Del removes key.
func (c *Client) Del(p runtime.Task, key []byte) (runtime.Time, error) {
	resp, lat, err := c.Do(p, rpcproto.OpDel, key, nil)
	if err != nil {
		return lat, err
	}
	if resp.Status == rpcproto.StatusNotFound {
		return lat, core.ErrNotFound
	}
	return lat, nil
}
