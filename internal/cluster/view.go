package cluster

import "sort"

// NodeState tracks a member's lifecycle (§3.8).
type NodeState uint8

// Node lifecycle states.
const (
	StateJoining NodeState = iota + 1
	StateRunning
	StateLeaving
)

func (s NodeState) String() string {
	switch s {
	case StateJoining:
		return "JOINING"
	case StateRunning:
		return "RUNNING"
	case StateLeaving:
		return "LEAVING"
	}
	return "UNKNOWN"
}

// View is one immutable membership snapshot, distributed asynchronously by
// the control plane. Epochs totally order views; nodes and clients validate
// requests against their current epoch and NACK on mismatch (§3.8.1).
type View struct {
	Epoch   uint64
	States  map[NodeID]NodeState
	R       int // replication factor
	NumPart int // global partition count

	// Unsynced marks (partition, node) replicas still receiving COPY
	// traffic; they participate in write chains but must not serve reads.
	Unsynced map[uint32]map[NodeID]bool

	ring *ring
}

// NewView assembles a view from explicit parts. The manager builds its own
// views; this constructor exists for the multi-process binding, which
// rehydrates a view from a decoded rpcproto.ViewPush on the node and client
// side of the wire (internal/cluster/proc).
func NewView(epoch uint64, states map[NodeID]NodeState, r, numPart int, unsynced map[uint32]map[NodeID]bool) *View {
	return newView(epoch, states, r, numPart, unsynced)
}

// newView builds a view; chainMembers are nodes in states that participate
// in chains (JOINING and RUNNING — LEAVING nodes are already excluded).
func newView(epoch uint64, states map[NodeID]NodeState, r, numPart int, unsynced map[uint32]map[NodeID]bool) *View {
	var members []NodeID
	for n, st := range states {
		if st == StateJoining || st == StateRunning {
			members = append(members, n)
		}
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	v := &View{
		Epoch:    epoch,
		States:   states,
		R:        r,
		NumPart:  numPart,
		Unsynced: unsynced,
		ring:     buildRing(members),
	}
	return v
}

// Chain returns the replication chain (head first) for a partition.
func (v *View) Chain(partition uint32) []NodeID { return v.ring.chainFor(partition, v.R) }

// ChainPos returns node's position in the partition's chain, or -1.
func (v *View) ChainPos(partition uint32, node NodeID) int {
	for i, n := range v.Chain(partition) {
		if n == node {
			return i
		}
	}
	return -1
}

// IsTail reports whether node is the partition's tail.
func (v *View) IsTail(partition uint32, node NodeID) bool {
	c := v.Chain(partition)
	return len(c) > 0 && c[len(c)-1] == node
}

// Synced reports whether the replica may serve reads.
func (v *View) Synced(partition uint32, node NodeID) bool {
	if m, ok := v.Unsynced[partition]; ok && m[node] {
		return false
	}
	return true
}

// Members returns chain-eligible nodes, sorted.
func (v *View) Members() []NodeID {
	var out []NodeID
	for n, st := range v.States {
		if st == StateJoining || st == StateRunning {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
