package cluster

import (
	"math/rand"
	"testing"
)

func TestChainDistinctNodes(t *testing.T) {
	members := []NodeID{100, 101, 102, 103, 104}
	r := buildRing(members)
	for part := uint32(0); part < 64; part++ {
		chain := r.chainFor(part, 3)
		if len(chain) != 3 {
			t.Fatalf("part %d: chain = %v", part, chain)
		}
		seen := map[NodeID]bool{}
		for _, n := range chain {
			if seen[n] {
				t.Fatalf("part %d: duplicate node in chain %v", part, chain)
			}
			seen[n] = true
		}
	}
}

func TestChainDeterministic(t *testing.T) {
	members := []NodeID{100, 101, 102}
	a, b := buildRing(members), buildRing(members)
	for part := uint32(0); part < 32; part++ {
		ca, cb := a.chainFor(part, 3), b.chainFor(part, 3)
		for i := range ca {
			if ca[i] != cb[i] {
				t.Fatalf("part %d: %v vs %v", part, ca, cb)
			}
		}
	}
}

func TestChainShorterThanRWithFewNodes(t *testing.T) {
	r := buildRing([]NodeID{100, 101})
	chain := r.chainFor(5, 3)
	if len(chain) != 2 {
		t.Fatalf("chain = %v", chain)
	}
}

func TestRingBalance(t *testing.T) {
	members := []NodeID{100, 101, 102, 103}
	r := buildRing(members)
	counts := map[NodeID]int{}
	const parts = 1024
	for part := uint32(0); part < parts; part++ {
		counts[r.chainFor(part, 1)[0]]++
	}
	for n, c := range counts {
		frac := float64(c) / parts
		if frac < 0.10 || frac > 0.45 {
			t.Fatalf("node %d owns %.1f%% of partitions", n, 100*frac)
		}
	}
}

func TestRingMinimalDisruption(t *testing.T) {
	// Removing one node must not reshuffle partitions between surviving
	// nodes: consistent hashing's defining property.
	before := buildRing([]NodeID{100, 101, 102, 103})
	after := buildRing([]NodeID{100, 101, 103})
	moved := 0
	const parts = 512
	for part := uint32(0); part < parts; part++ {
		a := before.chainFor(part, 1)[0]
		b := after.chainFor(part, 1)[0]
		if a != b {
			if a != 102 {
				t.Fatalf("part %d moved from surviving node %d to %d", part, a, b)
			}
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("node 102 owned nothing")
	}
}

// TestRingChurnProperties drives seeded random add/remove sequences and
// checks, after every membership change, the two properties the cluster
// layer leans on: placement stays balanced (no node owns a wildly
// disproportionate share of partition heads) and movement is minimal
// (a change only moves partitions touching the changed node — survivors
// never trade partitions among themselves).
func TestRingChurnProperties(t *testing.T) {
	const parts = 1024
	cases := []struct {
		name    string
		seed    int64
		initial int
		steps   int
	}{
		{"small-churn", 1, 3, 24},
		{"mid-churn", 7, 5, 24},
		{"grow-heavy", 42, 3, 32},
		{"shrink-heavy", 99, 8, 32},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(tc.seed))
			members := []NodeID{}
			next := NodeID(100)
			for i := 0; i < tc.initial; i++ {
				members = append(members, next)
				next++
			}
			heads := func(r *ring) []NodeID {
				out := make([]NodeID, parts)
				for p := uint32(0); p < parts; p++ {
					out[p] = r.chainFor(p, 1)[0]
				}
				return out
			}
			checkBalance := func(r *ring, members []NodeID) {
				t.Helper()
				counts := map[NodeID]int{}
				for _, h := range heads(r) {
					counts[h]++
				}
				n := len(members)
				for _, m := range members {
					frac := float64(counts[m]) / parts
					// With 32 virtual points per node the spread is wide but
					// bounded; a broken ring (constant hash, dropped points)
					// lands far outside [1/(4n), 3/n].
					if frac < 1.0/(4*float64(n)) || frac > 3.0/float64(n) {
						t.Fatalf("%d members: node %d owns %.1f%% of heads", n, m, 100*frac)
					}
				}
			}
			checkChains := func(r *ring, members []NodeID) {
				t.Helper()
				want := 3
				if len(members) < want {
					want = len(members)
				}
				for p := uint32(0); p < 64; p++ {
					chain := r.chainFor(p, 3)
					if len(chain) != want {
						t.Fatalf("part %d: chain %v, want %d distinct nodes", p, chain, want)
					}
					seen := map[NodeID]bool{}
					for _, nd := range chain {
						if seen[nd] {
							t.Fatalf("part %d: duplicate in chain %v", p, chain)
						}
						seen[nd] = true
					}
				}
			}
			r := buildRing(members)
			checkBalance(r, members)
			checkChains(r, members)
			for step := 0; step < tc.steps; step++ {
				before := heads(r)
				add := len(members) <= 3 || (rng.Intn(2) == 0 && len(members) < 12)
				var changed NodeID
				if add {
					changed = next
					next++
					members = append(members, changed)
				} else {
					i := rng.Intn(len(members))
					changed = members[i]
					members = append(members[:i], members[i+1:]...)
				}
				r = buildRing(members)
				after := heads(r)
				moved := 0
				for p := 0; p < parts; p++ {
					if before[p] == after[p] {
						continue
					}
					moved++
					if add && after[p] != changed {
						t.Fatalf("step %d: adding %d moved part %d from %d to %d (survivor reshuffle)",
							step, changed, p, before[p], after[p])
					}
					if !add && before[p] != changed {
						t.Fatalf("step %d: removing %d moved part %d from surviving %d to %d",
							step, changed, p, before[p], after[p])
					}
				}
				if moved == 0 {
					t.Fatalf("step %d: membership change of node %d moved nothing", step, changed)
				}
				// Minimal movement: roughly the changed node's share, never a
				// wholesale reshuffle.
				if frac := float64(moved) / parts; frac > 3.0/float64(len(members)+1) {
					t.Fatalf("step %d: %.1f%% of heads moved for one node among %d",
						step, 100*frac, len(members))
				}
				checkBalance(r, members)
				checkChains(r, members)
			}
		})
	}
}

func TestViewChainPosAndTail(t *testing.T) {
	states := map[NodeID]NodeState{100: StateRunning, 101: StateRunning, 102: StateRunning}
	v := newView(1, states, 3, 8, nil)
	for part := uint32(0); part < 8; part++ {
		chain := v.Chain(part)
		for i, n := range chain {
			if v.ChainPos(part, n) != i {
				t.Fatalf("ChainPos mismatch at part %d", part)
			}
		}
		if !v.IsTail(part, chain[len(chain)-1]) {
			t.Fatalf("IsTail false for tail at part %d", part)
		}
		if v.IsTail(part, chain[0]) && len(chain) > 1 {
			t.Fatalf("head reported as tail at part %d", part)
		}
	}
	if v.ChainPos(0, 999) != -1 {
		t.Fatal("unknown node has a chain position")
	}
}

func TestViewExcludesLeaving(t *testing.T) {
	states := map[NodeID]NodeState{
		100: StateRunning, 101: StateLeaving, 102: StateRunning, 103: StateJoining,
	}
	v := newView(1, states, 3, 8, nil)
	for _, m := range v.Members() {
		if m == 101 {
			t.Fatal("LEAVING node in member set")
		}
	}
	found := false
	for _, m := range v.Members() {
		if m == 103 {
			found = true
		}
	}
	if !found {
		t.Fatal("JOINING node missing from member set")
	}
}

func TestViewSynced(t *testing.T) {
	states := map[NodeID]NodeState{100: StateRunning, 101: StateRunning}
	un := map[uint32]map[NodeID]bool{4: {101: true}}
	v := newView(1, states, 2, 8, un)
	if !v.Synced(4, 100) || v.Synced(4, 101) {
		t.Fatal("Synced wrong")
	}
	if !v.Synced(3, 101) {
		t.Fatal("unrelated partition marked unsynced")
	}
}
