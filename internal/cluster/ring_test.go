package cluster

import "testing"

func TestChainDistinctNodes(t *testing.T) {
	members := []NodeID{100, 101, 102, 103, 104}
	r := buildRing(members)
	for part := uint32(0); part < 64; part++ {
		chain := r.chainFor(part, 3)
		if len(chain) != 3 {
			t.Fatalf("part %d: chain = %v", part, chain)
		}
		seen := map[NodeID]bool{}
		for _, n := range chain {
			if seen[n] {
				t.Fatalf("part %d: duplicate node in chain %v", part, chain)
			}
			seen[n] = true
		}
	}
}

func TestChainDeterministic(t *testing.T) {
	members := []NodeID{100, 101, 102}
	a, b := buildRing(members), buildRing(members)
	for part := uint32(0); part < 32; part++ {
		ca, cb := a.chainFor(part, 3), b.chainFor(part, 3)
		for i := range ca {
			if ca[i] != cb[i] {
				t.Fatalf("part %d: %v vs %v", part, ca, cb)
			}
		}
	}
}

func TestChainShorterThanRWithFewNodes(t *testing.T) {
	r := buildRing([]NodeID{100, 101})
	chain := r.chainFor(5, 3)
	if len(chain) != 2 {
		t.Fatalf("chain = %v", chain)
	}
}

func TestRingBalance(t *testing.T) {
	members := []NodeID{100, 101, 102, 103}
	r := buildRing(members)
	counts := map[NodeID]int{}
	const parts = 1024
	for part := uint32(0); part < parts; part++ {
		counts[r.chainFor(part, 1)[0]]++
	}
	for n, c := range counts {
		frac := float64(c) / parts
		if frac < 0.10 || frac > 0.45 {
			t.Fatalf("node %d owns %.1f%% of partitions", n, 100*frac)
		}
	}
}

func TestRingMinimalDisruption(t *testing.T) {
	// Removing one node must not reshuffle partitions between surviving
	// nodes: consistent hashing's defining property.
	before := buildRing([]NodeID{100, 101, 102, 103})
	after := buildRing([]NodeID{100, 101, 103})
	moved := 0
	const parts = 512
	for part := uint32(0); part < parts; part++ {
		a := before.chainFor(part, 1)[0]
		b := after.chainFor(part, 1)[0]
		if a != b {
			if a != 102 {
				t.Fatalf("part %d moved from surviving node %d to %d", part, a, b)
			}
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("node 102 owned nothing")
	}
}

func TestViewChainPosAndTail(t *testing.T) {
	states := map[NodeID]NodeState{100: StateRunning, 101: StateRunning, 102: StateRunning}
	v := newView(1, states, 3, 8, nil)
	for part := uint32(0); part < 8; part++ {
		chain := v.Chain(part)
		for i, n := range chain {
			if v.ChainPos(part, n) != i {
				t.Fatalf("ChainPos mismatch at part %d", part)
			}
		}
		if !v.IsTail(part, chain[len(chain)-1]) {
			t.Fatalf("IsTail false for tail at part %d", part)
		}
		if v.IsTail(part, chain[0]) && len(chain) > 1 {
			t.Fatalf("head reported as tail at part %d", part)
		}
	}
	if v.ChainPos(0, 999) != -1 {
		t.Fatal("unknown node has a chain position")
	}
}

func TestViewExcludesLeaving(t *testing.T) {
	states := map[NodeID]NodeState{
		100: StateRunning, 101: StateLeaving, 102: StateRunning, 103: StateJoining,
	}
	v := newView(1, states, 3, 8, nil)
	for _, m := range v.Members() {
		if m == 101 {
			t.Fatal("LEAVING node in member set")
		}
	}
	found := false
	for _, m := range v.Members() {
		if m == 103 {
			found = true
		}
	}
	if !found {
		t.Fatal("JOINING node missing from member set")
	}
}

func TestViewSynced(t *testing.T) {
	states := map[NodeID]NodeState{100: StateRunning, 101: StateRunning}
	un := map[uint32]map[NodeID]bool{4: {101: true}}
	v := newView(1, states, 2, 8, un)
	if !v.Synced(4, 100) || v.Synced(4, 101) {
		t.Fatal("Synced wrong")
	}
	if !v.Synced(3, 101) {
		t.Fatal("unrelated partition marked unsynced")
	}
}
