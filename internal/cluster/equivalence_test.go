package cluster

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"

	"leed/internal/core"
	"leed/internal/runtime"
	"leed/internal/runtime/wallclock"
	"leed/internal/sim"
)

// The equivalence test is the tentpole check for the cluster-on-runtime
// seam: the same seeded YCSB-style operation sequence, pushed through a
// 3-node CRRS chain, must leave identical final KV contents on the DES
// kernel and on real goroutines — and on both backends every synced
// replica must agree with the client-visible value.

// eqOp is one scripted operation.
type eqOp struct {
	put      bool
	key, val string
}

// eqOps derives a deterministic YCSB-B-flavored op sequence (95% of ops
// touch a zipf-ish hot set, half of the writes overwrite) from seed.
func eqOps(seed int64, n, keys int) []eqOp {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]eqOp, 0, n)
	ver := make([]int, keys)
	for i := 0; i < n; i++ {
		k := rng.Intn(keys)
		if rng.Intn(10) < 3 { // 30% writes
			ver[k]++
			ops = append(ops, eqOp{put: true,
				key: fmt.Sprintf("eq-%04d", k),
				val: fmt.Sprintf("v%d-of-%04d", ver[k], k)})
		} else {
			ops = append(ops, eqOp{key: fmt.Sprintf("eq-%04d", k)})
		}
	}
	return ops
}

// eqClusterConfig is the shared 3-node CRRS shape.
func eqClusterConfig(env runtime.Env) Config {
	return Config{
		Env:           env,
		NumJBOFs:      3,
		SSDsPerJBOF:   2,
		SSDCapacity:   32 << 20,
		NumPartitions: 8,
		R:             3,
		KeyLen:        16,
		ValLen:        64,
		NumClients:    1,
		CRRS:          true,
		FlowControl:   true,
		Swap:          true,
	}
}

// eqResult is one backend's outcome: the final client-visible KV contents
// plus a replica-agreement transcript (sorted, rendered canonically).
type eqResult struct {
	kv       map[string]string
	replicas string
	errs     []string
}

// runEqOps executes the scripted ops and snapshots the outcome. Runs inside
// a task on either backend.
func runEqOps(p runtime.Task, c *Cluster, ops []eqOp) *eqResult {
	res := &eqResult{kv: make(map[string]string)}
	cl := c.Clients[0]
	for i, op := range ops {
		if op.put {
			if _, err := cl.Put(p, []byte(op.key), []byte(op.val)); err != nil {
				res.errs = append(res.errs, fmt.Sprintf("op %d put %s: %v", i, op.key, err))
			}
			continue
		}
		if _, _, err := cl.Get(p, []byte(op.key)); err != nil && err != core.ErrNotFound {
			res.errs = append(res.errs, fmt.Sprintf("op %d get %s: %v", i, op.key, err))
		}
	}
	// Let trailing backward acks clear dirty bits before the audit.
	p.Sleep(20 * runtime.Millisecond)

	// Final contents, client-visible.
	seen := map[string]bool{}
	for _, op := range ops {
		if !op.put || seen[op.key] {
			continue
		}
		seen[op.key] = true
		v, _, err := cl.Get(p, []byte(op.key))
		if err != nil {
			res.errs = append(res.errs, fmt.Sprintf("final get %s: %v", op.key, err))
			continue
		}
		res.kv[op.key] = string(v)
	}

	// Replica agreement: every synced chain member that is not mid-write
	// must hold the committed value.
	keys := make([]string, 0, len(res.kv))
	for k := range res.kv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	view := c.Manager.View()
	var b strings.Builder
	for _, key := range keys {
		part := PartitionOf(core.HashKey([]byte(key)), view.NumPart)
		for _, id := range view.Chain(part) {
			if !view.Synced(part, id) {
				continue
			}
			got, have, err := c.ReplicaGet(p, id, part, []byte(key))
			if err != nil || !have {
				res.errs = append(res.errs, fmt.Sprintf("replica %d %s: have=%v err=%v", id, key, have, err))
				continue
			}
			if string(got) != res.kv[key] {
				res.errs = append(res.errs, fmt.Sprintf("replica %d diverges on %s: %q != %q",
					id, key, got, res.kv[key]))
				continue
			}
			fmt.Fprintf(&b, "%s@%d=%s\n", key, id, got)
		}
	}
	res.replicas = b.String()
	return res
}

// runEqSim executes the script on the DES kernel.
func runEqSim(t *testing.T, ops []eqOp) *eqResult {
	t.Helper()
	k := sim.New()
	defer k.Close()
	c := New(eqClusterConfig(k))
	c.Start()
	k.Run(k.Now() + 5*runtime.Millisecond)
	var res *eqResult
	done := false
	k.Spawn("eq-driver", func(p runtime.Task) {
		res = runEqOps(p, c, ops)
		done = true
	})
	deadline := k.Now() + 120*runtime.Second
	for !done && k.Now() < deadline {
		k.Run(k.Now() + 10*runtime.Millisecond)
	}
	if !done {
		t.Fatal("sim equivalence driver did not finish")
	}
	return res
}

// runEqWallclock executes the same script on real goroutines.
func runEqWallclock(t *testing.T, ops []eqOp) *eqResult {
	t.Helper()
	env := wallclock.New()
	cfg := eqClusterConfig(env)
	// Real scheduler jitter under load trips the sim-scale 20ms heartbeat
	// default — the manager evicts every healthy node and publishes an empty
	// view. Detection latency is a tunable, not what this test compares
	// (DESIGN §9); raise it like the wallclock drills and leedctl do.
	cfg.HeartbeatTimeout = 250 * runtime.Millisecond
	c := New(cfg)
	c.Start()
	var res *eqResult
	done := make(chan struct{})
	env.Spawn("eq-driver", func(p runtime.Task) {
		if err := c.AwaitReady(p, 10*runtime.Second); err != nil {
			t.Errorf("wallclock cluster never ready: %v", err)
		} else {
			res = runEqOps(p, c, ops)
		}
		c.Shutdown()
		close(done)
	})
	select {
	case <-done:
	case <-time.After(90 * time.Second):
		t.Fatal("wallclock equivalence driver did not finish")
	}
	drained := make(chan struct{})
	go func() { env.Wait(); close(drained) }()
	select {
	case <-drained:
	case <-time.After(10 * time.Second):
	}
	return res
}

func TestSimWallclockClusterEquivalence(t *testing.T) {
	ops := eqOps(42, 300, 32)
	simRes := runEqSim(t, ops)
	wcRes := runEqWallclock(t, ops)
	if simRes == nil || wcRes == nil {
		t.Fatal("missing result from one backend")
	}
	for _, e := range simRes.errs {
		t.Errorf("sim: %s", e)
	}
	for _, e := range wcRes.errs {
		t.Errorf("wallclock: %s", e)
	}

	// Identical final KV contents on both backends.
	if len(simRes.kv) == 0 {
		t.Fatal("sim backend committed nothing")
	}
	if len(simRes.kv) != len(wcRes.kv) {
		t.Errorf("final KV sizes differ: sim=%d wallclock=%d", len(simRes.kv), len(wcRes.kv))
	}
	for k, v := range simRes.kv {
		if wv, ok := wcRes.kv[k]; !ok {
			t.Errorf("key %s present on sim, missing on wallclock", k)
		} else if wv != v {
			t.Errorf("key %s: sim=%q wallclock=%q", k, v, wv)
		}
	}

	// Replica agreement transcripts match: same chains, same synced
	// replicas, same committed bytes everywhere.
	if simRes.replicas != wcRes.replicas {
		t.Errorf("replica transcripts differ:\n--- sim\n%s--- wallclock\n%s",
			simRes.replicas, wcRes.replicas)
	}
	if simRes.replicas == "" {
		t.Error("empty replica transcript: the agreement audit checked nothing")
	}
}
