package cluster

import (
	"fmt"
	"sort"
	"sync/atomic"

	"leed/internal/netsim"
	"leed/internal/obs"
	"leed/internal/runtime"
)

// ManagerConfig wires the control plane (the paper's etcd-backed manager,
// §3.1.2): membership, heartbeat-based failure detection, and join/leave
// orchestration through the COPY primitive.
type ManagerConfig struct {
	Env      runtime.Env
	Endpoint *netsim.Endpoint

	R       int // replication factor
	NumPart int // global partitions

	// HeartbeatTimeout is how long a silent node lives before being
	// declared failed. Default 20ms.
	HeartbeatTimeout runtime.Time
	// CheckEvery is the failure-detector period. Default 5ms.
	CheckEvery runtime.Time

	// Obs receives the control plane's counter series (leed_mgr_*). May be
	// nil; the manager then keeps unregistered instruments.
	Obs *obs.Registry
}

// ManagerStats are cumulative counters.
type ManagerStats struct {
	Joins, Leaves, Failures int64
	ViewsPublished          int64
	CopiesOrdered           int64
	// PartitionsLost counts (partition, replacement) repairs abandoned
	// because no synced survivor remained to source the COPY — i.e. more
	// than R-1 overlapping failures ate every committed replica. Drills
	// assert this stays zero within the paper's fault budget (§3.8.1).
	PartitionsLost int64
}

// Manager is the control plane.
type Manager struct {
	cfg   ManagerConfig
	env   runtime.Env
	epoch uint64

	states   map[NodeID]NodeState
	unsynced map[uint32]map[NodeID]bool
	lastHB   map[NodeID]runtime.Time
	// subs receive every view broadcast, in subscription order; peers
	// additionally receive node-addressed COPY commands. Both sides of the
	// Peer seam: the goroutine cluster registers netsimPeer bindings via
	// Subscribe, the multi-process cluster registers its own via
	// SubscribeNode/SubscribePeer.
	subs  []Peer
	peers map[NodeID]Peer

	// pendingCopies tracks outstanding (partition, dest) migrations; when
	// a JOINING node's count drains it becomes RUNNING, and when a
	// LEAVING node's count drains it is removed.
	pendingCopies map[copyKey]NodeID // -> node whose transition awaits this copy
	pendingCount  map[NodeID]int

	view    *View
	stopped bool
	stats   ManagerStats
	o       *mgrObs
	// partitionsLost is kept as an atomic (assembled into Stats on read) so
	// wallclock monitors and -race tests can poll it while drills run.
	partitionsLost atomic.Int64
}

type copyKey struct {
	part uint32
	dest NodeID
}

// mgrObs is the control plane's registry binding: one counter per
// ManagerStats field. Always constructed (a nil registry hands back working
// unregistered counters).
type mgrObs struct {
	joins, leaves, failures *obs.Counter
	views                   *obs.Counter
	copiesOrdered           *obs.Counter
	partitionsLost          *obs.Counter
}

func newMgrObs(reg *obs.Registry) *mgrObs {
	return &mgrObs{
		joins:          reg.Counter("leed_mgr_joins_total"),
		leaves:         reg.Counter("leed_mgr_leaves_total"),
		failures:       reg.Counter("leed_mgr_failures_total"),
		views:          reg.Counter("leed_mgr_views_published_total"),
		copiesOrdered:  reg.Counter("leed_mgr_copies_ordered_total"),
		partitionsLost: reg.Counter("leed_mgr_partitions_lost_total"),
	}
}

// NewManager creates the control plane with an initial RUNNING member set.
func NewManager(cfg ManagerConfig, initial []NodeID) *Manager {
	if cfg.HeartbeatTimeout == 0 {
		cfg.HeartbeatTimeout = 20 * runtime.Millisecond
	}
	if cfg.CheckEvery == 0 {
		cfg.CheckEvery = 5 * runtime.Millisecond
	}
	m := &Manager{
		cfg:           cfg,
		env:           cfg.Env,
		o:             newMgrObs(cfg.Obs),
		states:        make(map[NodeID]NodeState),
		unsynced:      make(map[uint32]map[NodeID]bool),
		lastHB:        make(map[NodeID]runtime.Time),
		peers:         make(map[NodeID]Peer),
		pendingCopies: make(map[copyKey]NodeID),
		pendingCount:  make(map[NodeID]int),
	}
	for _, n := range initial {
		m.states[n] = StateRunning
		m.lastHB[n] = cfg.Env.Now()
	}
	return m
}

// Subscribe registers a netsim address to receive view broadcasts (nodes
// and clients alike) over the simulated fabric. Node addresses and node IDs
// coincide on the fabric, so the same binding receives that node's COPY
// commands; client addresses live in a disjoint range and never collide.
func (m *Manager) Subscribe(addr netsim.Addr) {
	p := netsimPeer{ep: m.cfg.Endpoint, addr: addr}
	m.subs = append(m.subs, p)
	m.peers[NodeID(addr)] = p
}

// SubscribeNode registers a node's Peer binding: it receives every view
// broadcast plus the COPY commands addressed to it as a migration source.
func (m *Manager) SubscribeNode(id NodeID, p Peer) {
	m.subs = append(m.subs, p)
	m.peers[id] = p
}

// SubscribePeer registers a view observer (a client): broadcasts only.
func (m *Manager) SubscribePeer(p Peer) { m.subs = append(m.subs, p) }

// View returns the manager's current view (publishing it first if needed).
func (m *Manager) View() *View {
	if m.view == nil {
		m.rebuildView()
	}
	return m.view
}

// Stats returns cumulative counters.
func (m *Manager) Stats() ManagerStats {
	s := m.stats
	s.PartitionsLost = m.partitionsLost.Load()
	return s
}

// PartitionsLost returns the lost-partition repair counter. Safe to call
// from any goroutine, including while drills run on the wallclock backend.
func (m *Manager) PartitionsLost() int64 { return m.partitionsLost.Load() }

func (m *Manager) rebuildView() {
	m.epoch++
	states := make(map[NodeID]NodeState, len(m.states))
	for n, s := range m.states {
		states[n] = s
	}
	unsynced := make(map[uint32]map[NodeID]bool, len(m.unsynced))
	for p, set := range m.unsynced {
		cp := make(map[NodeID]bool, len(set))
		for n := range set {
			cp[n] = true
		}
		unsynced[p] = cp
	}
	m.view = newView(m.epoch, states, m.cfg.R, m.cfg.NumPart, unsynced)
}

// publish rebuilds the view and broadcasts it to all subscribers. Delivery
// is asynchronous, so nodes transiently disagree — exactly the condition
// the hop-counter validation exists for (§3.8.1).
func (m *Manager) publish() {
	m.rebuildView()
	m.stats.ViewsPublished++
	m.o.views.Inc()
	for _, p := range m.subs {
		p.SendView(m.view)
	}
}

// OnHeartbeat records one liveness beacon from node. The netsim receive
// loop calls it for fabric hbMsg payloads; the multi-process manager calls
// it per decoded FrameHeartbeat. Task or scheduler context.
func (m *Manager) OnHeartbeat(node NodeID, now runtime.Time) {
	m.lastHB[node] = now
}

// OnCopyDone records one completed (partition, dest) migration: the pending
// transition it belongs to advances, the unsynced mark clears, and a new
// view publishes. Task or scheduler context.
func (m *Manager) OnCopyDone(part uint32, dest NodeID) {
	m.onCopyDone(&copyDone{partition: part, dest: dest})
}

// Start launches the manager's failure detector — and, when bound to a
// netsim endpoint, its fabric receive loop — then publishes the initial
// view. Must run in task or scheduler context. A manager without an
// endpoint (the multi-process binding) is fed through OnHeartbeat/
// OnCopyDone by its transport layer instead.
func (m *Manager) Start() {
	m.publish()
	if m.cfg.Endpoint != nil {
		m.env.Spawn("manager-rx", func(p runtime.Task) {
			rx := m.cfg.Endpoint.RX()
			for {
				msg := rx.Get(p).(*netsim.Message)
				if _, stop := msg.Payload.(stopMsg); stop {
					rx.Put(msg)
					return
				}
				if m.stopped {
					return
				}
				switch pl := msg.Payload.(type) {
				case *hbMsg:
					m.OnHeartbeat(pl.node, p.Now())
				case *copyDone:
					m.onCopyDone(pl)
				}
			}
		})
	}
	m.env.Spawn("manager-fd", func(p runtime.Task) {
		for !m.stopped {
			p.Sleep(m.cfg.CheckEvery)
			if m.stopped {
				return
			}
			now := p.Now()
			ids := make([]NodeID, 0, len(m.states))
			for n := range m.states {
				ids = append(ids, n)
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			for _, n := range ids {
				st := m.states[n]
				if st != StateRunning && st != StateJoining {
					continue
				}
				if now-m.lastHB[n] > m.cfg.HeartbeatTimeout {
					m.stats.Failures++
					m.o.failures.Inc()
					m.removeNode(n, true)
				}
			}
		}
	})
}

// Stop makes the manager cease detecting failures and processing messages;
// its receive loop exits on the shutdown pill. Part of Cluster.Shutdown.
func (m *Manager) Stop() { m.stopped = true }

// chainsContaining returns partitions whose chain under v includes node.
func chainsContaining(v *View, node NodeID) []uint32 {
	var out []uint32
	for p := uint32(0); int(p) < v.NumPart; p++ {
		if v.ChainPos(p, node) >= 0 {
			out = append(out, p)
		}
	}
	return out
}

// lastSynced returns the most downstream synced member of the partition's
// chain under v, consulting the manager's *live* unsynced set (the view's
// snapshot may predate marks added in the current transition).
func (m *Manager) lastSynced(v *View, part uint32) (NodeID, bool) {
	chain := v.Chain(part)
	for i := len(chain) - 1; i >= 0; i-- {
		if set, ok := m.unsynced[part]; ok && set[chain[i]] {
			continue
		}
		return chain[i], true
	}
	return 0, false
}

// Join admits a new node (§3.8.1): it enters JOINING (participating in
// write chains immediately), old tails COPY the stipulated ranges to it,
// and once every copy completes it becomes RUNNING.
func (m *Manager) Join(node NodeID) {
	if _, exists := m.states[node]; exists {
		return
	}
	m.stats.Joins++
	m.o.joins.Inc()
	old := m.View()
	m.states[node] = StateJoining
	m.lastHB[node] = m.env.Now()
	// Compute which partitions the node will replicate under the new ring.
	m.rebuildView()
	parts := chainsContaining(m.view, node)
	for _, part := range parts {
		set := m.unsynced[part]
		if set == nil {
			set = make(map[NodeID]bool)
			m.unsynced[part] = set
		}
		set[node] = true
	}
	m.publish()
	// Direct the old tails to copy. Source selection uses the *old* view:
	// those tails hold complete, committed data.
	for _, part := range parts {
		src, ok := m.lastSynced(old, part)
		if !ok || src == node {
			m.clearUnsynced(part, node)
			continue
		}
		m.orderCopy(part, src, node, node)
	}
	m.maybeFinishJoin(node)
}

// Leave retires a node gracefully: it leaves all chains at once; surviving
// tails re-replicate its ranges to the chains' new members (§3.8.1).
func (m *Manager) Leave(node NodeID) {
	if _, exists := m.states[node]; !exists {
		return
	}
	m.stats.Leaves++
	m.o.leaves.Inc()
	m.removeNode(node, false)
}

func (m *Manager) removeNode(node NodeID, failed bool) {
	old := m.View()
	m.states[node] = StateLeaving
	affected := chainsContaining(old, node)
	// Rebuild chains without the node; find each affected chain's new
	// member (the next ring successor) and order a COPY to it.
	m.rebuildView()
	type order struct {
		part uint32
		src  NodeID
		dst  NodeID
	}
	var orders []order
	for _, part := range affected {
		newChain := m.view.Chain(part)
		oldChain := old.Chain(part)
		inOld := make(map[NodeID]bool, len(oldChain))
		for _, n := range oldChain {
			inOld[n] = true
		}
		for _, nn := range newChain {
			if inOld[nn] {
				continue
			}
			set := m.unsynced[part]
			if set == nil {
				set = make(map[NodeID]bool)
				m.unsynced[part] = set
			}
			set[nn] = true
			if src, ok := m.lastSynced(m.view, part); ok && src != nn {
				orders = append(orders, order{part: part, src: src, dst: nn})
			} else {
				// No synced survivor: committed data for this partition is
				// unrecoverable (more simultaneous failures than R-1).
				m.partitionsLost.Add(1)
				m.o.partitionsLost.Inc()
				delete(set, nn)
			}
		}
	}
	m.publish()
	for _, o := range orders {
		m.orderCopy(o.part, o.src, o.dst, node)
	}
	m.maybeFinishLeave(node)
	_ = failed
}

func (m *Manager) orderCopy(part uint32, src, dst, transitioning NodeID) {
	m.stats.CopiesOrdered++
	m.o.copiesOrdered.Inc()
	m.pendingCopies[copyKey{part: part, dest: dst}] = transitioning
	m.pendingCount[transitioning]++
	if p := m.peers[src]; p != nil {
		p.SendCopyCmd(part, dst)
	}
}

func (m *Manager) clearUnsynced(part uint32, node NodeID) {
	if set, ok := m.unsynced[part]; ok {
		delete(set, node)
		if len(set) == 0 {
			delete(m.unsynced, part)
		}
	}
}

func (m *Manager) onCopyDone(d *copyDone) {
	key := copyKey{part: d.partition, dest: d.dest}
	trans, ok := m.pendingCopies[key]
	if !ok {
		return
	}
	delete(m.pendingCopies, key)
	m.pendingCount[trans]--
	m.clearUnsynced(d.partition, d.dest)
	m.publish()
	m.maybeFinishJoin(trans)
	m.maybeFinishLeave(trans)
}

func (m *Manager) maybeFinishJoin(node NodeID) {
	if m.states[node] == StateJoining && m.pendingCount[node] == 0 {
		m.states[node] = StateRunning
		m.publish()
	}
}

func (m *Manager) maybeFinishLeave(node NodeID) {
	if m.states[node] == StateLeaving && m.pendingCount[node] == 0 {
		delete(m.states, node)
		delete(m.lastHB, node)
		delete(m.pendingCount, node)
		m.publish()
	}
}

// State returns a node's current lifecycle state, if known.
func (m *Manager) State(node NodeID) (NodeState, bool) {
	s, ok := m.states[node]
	return s, ok
}

// Epoch returns the manager's current view epoch.
func (m *Manager) Epoch() uint64 { return m.epoch }

// PendingCopies returns the number of outstanding migrations; drills treat
// zero as one of the quiescence conditions.
func (m *Manager) PendingCopies() int { return len(m.pendingCopies) }

// String summarizes the membership for debugging.
func (m *Manager) String() string {
	return fmt.Sprintf("epoch=%d members=%d pendingCopies=%d partitionsLost=%d",
		m.epoch, len(m.states), len(m.pendingCopies), m.partitionsLost.Load())
}
