package cluster

import "leed/internal/netsim"

// Peer is the manager's outbound seam to one cluster participant: how view
// snapshots and COPY commands leave the control plane. The in-process
// goroutine cluster binds it to the simulated fabric (netsimPeer below); the
// multi-process cluster binds it to heartbeat-reply mailboxes delivered over
// TCP (internal/cluster/proc). The manager's membership state machine —
// failure detection, join/leave orchestration, view epochs, COPY ordering —
// is identical across both bindings; only delivery differs.
//
// Both methods are called in task or scheduler context (the execution
// contract is the lock) and must not block: delivery is asynchronous by
// design, which is exactly why views carry epochs and nodes validate hops.
type Peer interface {
	// SendView delivers one immutable view snapshot.
	SendView(v *View)
	// SendCopyCmd directs the receiving node (as source) to copy one
	// partition's contents to dest.
	SendCopyCmd(partition uint32, dest NodeID)
}

// netsimPeer binds Peer to the simulated fabric: messages are the same
// payload structs, sizes, and ordering the goroutine cluster always used,
// so sim transcripts stay byte-identical across the seam introduction.
type netsimPeer struct {
	ep   *netsim.Endpoint
	addr netsim.Addr
}

func (p netsimPeer) SendView(v *View) {
	size := int64(128 + 16*len(v.States))
	p.ep.Send(p.addr, size, &viewMsg{view: v})
}

func (p netsimPeer) SendCopyCmd(partition uint32, dest NodeID) {
	p.ep.Send(p.addr, 64, &copyCmd{partition: partition, dest: dest})
}
