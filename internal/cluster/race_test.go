package cluster

import (
	"testing"
	"time"

	"leed/internal/runtime"
	"leed/internal/runtime/wallclock"
)

// TestPartitionsLostRaceSafeOnWallclock is the -race regression for the
// manager's lost-partition counter: a monitor goroutine polls
// Manager.PartitionsLost while the control plane is mid-catastrophe on the
// wallclock backend. The counter is an atomic precisely so wallclock
// monitors (and this test) can watch repairs fail in real time.
func TestPartitionsLostRaceSafeOnWallclock(t *testing.T) {
	env := wallclock.New()
	cfg := Config{
		Env:           env,
		NumJBOFs:      3,
		SpareJBOFs:    3,
		SSDsPerJBOF:   2,
		SSDCapacity:   32 << 20,
		NumPartitions: 8,
		R:             3,
		KeyLen:        16,
		ValLen:        64,
		NumClients:    1,
		CRRS:          true,
	}
	c := New(cfg)
	c.Start()

	done := make(chan struct{})
	env.Spawn("driver", func(p runtime.Task) {
		defer func() {
			c.Shutdown()
			close(done)
		}()
		if err := c.AwaitReady(p, 10*runtime.Second); err != nil {
			t.Errorf("cluster never ready: %v", err)
			return
		}
		// Kill every original replica, then join spares whose re-sync has no
		// synced source left: each affected chain charges PartitionsLost.
		for _, id := range c.NodeIDs[:3] {
			c.Kill(id)
		}
		for _, id := range c.NodeIDs[3:] {
			c.Manager.Join(id)
		}
		if !waitFor(p, 10*runtime.Second, func() bool {
			return c.Manager.PartitionsLost() > 0
		}) {
			t.Errorf("PartitionsLost stayed 0 after losing every synced replica: %s", c.Manager)
		}
	})

	// Concurrent reads from a plain goroutine while the failure detector and
	// join machinery bump the counter in task context.
	var observed int64
	deadline := time.After(60 * time.Second)
	for {
		select {
		case <-done:
			if got := c.Manager.PartitionsLost(); got == 0 {
				t.Errorf("final PartitionsLost = 0 (observed %d mid-run)", observed)
			}
			drained := make(chan struct{})
			go func() { env.Wait(); close(drained) }()
			select {
			case <-drained:
			case <-time.After(10 * time.Second):
			}
			return
		case <-deadline:
			t.Fatal("driver did not finish")
		default:
			if v := c.Manager.PartitionsLost(); v > observed {
				observed = v
			}
			time.Sleep(200 * time.Microsecond)
		}
	}
}
