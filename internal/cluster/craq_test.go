package cluster

import (
	"fmt"
	"testing"

	"leed/internal/core"
	"leed/internal/runtime"
	"leed/internal/sim"
)

func TestCRAQModeServesDirtyReadsViaVersionQuery(t *testing.T) {
	k := sim.New()
	defer k.Close()
	c := newTestCluster(k, 0, func(cfg *Config) { cfg.CRAQMode = true })
	drive(t, k, 30*runtime.Second, func(p runtime.Task) {
		cl := c.Clients[0]
		key := []byte("craq-key")
		cl.Put(p, key, []byte("v0"))
		part := PartitionOf(core.HashKey(key), cl.View().NumPart)
		chain := cl.View().Chain(part)
		head := chain[0]
		// Keep the key dirty at the head with a write stream, and force
		// reads toward the head.
		stop := false
		wdone := k.MakeEvent()
		k.Spawn("writer", func(wp runtime.Task) {
			i := 0
			for !stop {
				c.Clients[1].Put(wp, key, []byte(fmt.Sprintf("v%d", i)))
				i++
			}
			wdone.Fire(nil)
		})
		for i := 0; i < 40; i++ {
			cl.tokens[target{node: head, part: part}] = 1 << 20
			if _, _, err := cl.Get(p, key); err != nil {
				t.Errorf("get: %v", err)
				break
			}
		}
		stop = true
		p.Wait(wdone)
		if c.Nodes[head].Stats().VersionQueries == 0 {
			t.Error("CRAQ mode never issued a version query")
		}
		if c.Nodes[head].Stats().Shipped != 0 {
			t.Error("CRAQ mode shipped requests")
		}
	})
}

func TestCRAQModeGeneratesMoreInternalTraffic(t *testing.T) {
	// The paper's reason for rejecting version queries: more cross-JBOF
	// traffic than shipping (§3.7). Compare backend TX bytes for the same
	// dirty-read pattern.
	measure := func(craq bool) (int64, int64) {
		k := sim.New()
		defer k.Close()
		c := newTestCluster(k, 0, func(cfg *Config) { cfg.CRAQMode = craq })
		var served int64
		drive(t, k, 60*runtime.Second, func(p runtime.Task) {
			cl := c.Clients[0]
			key := []byte("hot")
			cl.Put(p, key, make([]byte, 512))
			part := PartitionOf(core.HashKey(key), cl.View().NumPart)
			head := cl.View().Chain(part)[0]
			stop := false
			wdone := k.MakeEvent()
			k.Spawn("writer", func(wp runtime.Task) {
				for !stop {
					c.Clients[1].Put(wp, key, make([]byte, 512))
				}
				wdone.Fire(nil)
			})
			for i := 0; i < 60; i++ {
				cl.tokens[target{node: head, part: part}] = 1 << 20
				if _, _, err := cl.Get(p, key); err == nil {
					served++
				}
			}
			stop = true
			p.Wait(wdone)
		})
		return c.BackendTxBytes(), served
	}
	shipBytes, shipServed := measure(false)
	craqBytes, craqServed := measure(true)
	if shipServed == 0 || craqServed == 0 {
		t.Fatalf("reads failed: ship=%d craq=%d", shipServed, craqServed)
	}
	perShip := float64(shipBytes) / float64(shipServed)
	perCraq := float64(craqBytes) / float64(craqServed)
	if perCraq <= perShip {
		t.Errorf("CRAQ per-read backend bytes (%.0f) not above shipping (%.0f)", perCraq, perShip)
	}
}
