package proc

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"leed/internal/obs"
	"leed/internal/runtime"
	"leed/internal/runtime/wallclock"
)

// startObsProcCluster spawns a manager (aggregating) and n nodes, every
// process exporting metrics, and returns the manager heartbeat address, its
// metrics address, and the children (manager first).
func startObsProcCluster(t *testing.T, n int) (string, string, []*procChild) {
	t.Helper()
	mgrAddr := freeTestAddr(t)
	mgrMetrics := freeTestAddr(t)
	children := []*procChild{spawnProc(t, "manager",
		[]string{"manager", "-listen", mgrAddr, "-hb-timeout", "600ms",
			"-metrics-addr", mgrMetrics, "-metrics-poll", "100ms"})}
	awaitTCP(t, mgrAddr, 15*time.Second)
	for i := 1; i <= n; i++ {
		children = append(children, spawnProc(t, fmt.Sprintf("node %d", i),
			[]string{"node",
				"-id", fmt.Sprint(i),
				"-listen", freeTestAddr(t),
				"-manager", mgrAddr,
				"-hb-interval", "25ms",
				"-metrics-addr", freeTestAddr(t)}))
	}
	return mgrAddr, mgrMetrics, children
}

// httpGet fetches a URL body with a short timeout ("" on any failure).
func httpGet(url string) string {
	cl := http.Client{Timeout: 2 * time.Second}
	resp, err := cl.Get(url)
	if err != nil {
		return ""
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		return ""
	}
	return string(b)
}

// TestClusterObservabilityEndToEnd is the observability tentpole's
// integration gate, all three pillars over real processes and sockets:
//
//  1. cross-process trace propagation — a traced client demands a reassembled
//     trace whose piggybacked spans cover the whole write chain (node spans
//     at hop 1, 2, AND 3 for R=3), client/net measured locally at hop 0;
//  2. fleet aggregation — the manager's /metrics must converge to the
//     cluster-wide merge (member nodes present, node series summed in);
//  3. energy accounting — the aggregated page must show cluster-summed
//     leed_power energy counters strictly rising.
func TestClusterObservabilityEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process observability integration skipped in -short mode")
	}
	mgrAddr, mgrMetrics, children := startObsProcCluster(t, 3)

	env := wallclock.New()
	reg := obs.NewRegistry()
	tr := obs.NewTracer(reg, 1, 128) // sample every op: the test asserts on whole traces
	client := NewClient(ClientConfig{Env: env, Manager: mgrAddr, Tracer: tr})
	var taskErrs []string
	done := make(chan struct{})
	env.Spawn("obs-driver", func(p runtime.Task) {
		defer close(done)
		if !awaitRunningView(p, client, 3, 30*time.Second) {
			taskErrs = append(taskErrs, "cluster never reached 3 RUNNING members")
			return
		}
		for i := 0; i < 32; i++ {
			key := []byte(fmt.Sprintf("obs-%04d", i))
			if err := client.Put(p, key, []byte(fmt.Sprintf("val-%d", i))); err != nil {
				taskErrs = append(taskErrs, fmt.Sprintf("put %d: %v", i, err))
				return
			}
			if _, err := client.Get(p, key); err != nil {
				taskErrs = append(taskErrs, fmt.Sprintf("get %d: %v", i, err))
				return
			}
		}
	})
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("obs driver did not finish")
	}
	for _, e := range taskErrs {
		t.Fatal(e)
	}

	// Pillar 1: trace reassembly. With R=3 over 3 nodes every PUT crosses the
	// full chain, so some sampled trace must carry node spans from three
	// distinct server processes plus the client-side spans.
	samples := tr.Samples()
	if len(samples) == 0 {
		t.Fatal("tracer retained no samples")
	}
	bestHops := map[int]bool{}
	stages := map[string]bool{}
	for _, trace := range samples {
		hops := map[int]bool{}
		for _, sp := range trace.Spans {
			stages[sp.Stage] = true
			if sp.Stage == "node" {
				hops[sp.Hop] = true
			}
		}
		if len(hops) > len(bestHops) {
			bestHops = hops
		}
	}
	for hop := 1; hop <= 3; hop++ {
		if !bestHops[hop] {
			t.Errorf("no sampled trace carries a node span at hop %d (deepest: %v) — chain propagation broken", hop, bestHops)
		}
	}
	for _, want := range []string{"client", "net", "node", "engine"} {
		if !stages[want] {
			t.Errorf("no sampled trace carries stage %q; saw %v", want, stages)
		}
	}
	attr := tr.Attribution()
	if len(attr.Stages) < 4 {
		t.Errorf("client-side attribution has %d stages, want ≥ 4:\n%s", len(attr.Stages), attr)
	}

	// Pillars 2+3: the manager's aggregated page. Convergence needs a scrape
	// cycle (100ms poll) and a power sample (500ms tick) per node, so poll.
	metricsURL := "http://" + mgrMetrics + "/metrics"
	var page string
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		page = httpGet(metricsURL)
		// Gauges are instance-keyed in the merge, so the member count rides
		// under the aggregator's own instance.
		if strings.Contains(page, `leed_fleet_members{instance="manager"} 3`) &&
			strings.Contains(page, "leed_node_puts_total") &&
			powerRising(page) {
			break
		}
		time.Sleep(200 * time.Millisecond)
	}
	if !strings.Contains(page, `leed_fleet_members{instance="manager"} 3`) {
		t.Errorf("aggregated /metrics never showed 3 fleet members:\n%s", page)
	}
	for _, series := range []string{
		"leed_node_puts_total",
		"leed_node_gets_total",
		"leed_power_millijoules_total",
		"leed_power_joules_total",
		"leed_mgr_joins_total",
	} {
		if !strings.Contains(page, series) {
			t.Errorf("aggregated /metrics missing series %q", series)
		}
	}
	if !powerRising(page) {
		t.Error("aggregated leed_power_millijoules_total never rose above zero")
	}
	// The cluster-wide attribution table is served too, fed by the members'
	// own stage histograms (every node traces what it handles).
	attrPage := httpGet("http://" + mgrMetrics + "/attribution")
	if !strings.Contains(attrPage, `"node"`) || !strings.Contains(attrPage, `"engine"`) {
		t.Errorf("manager /attribution missing node/engine stages:\n%s", attrPage)
	}

	for i := len(children) - 1; i >= 0; i-- {
		children[i].drain(t)
	}
}

// powerRising reports whether the aggregated page shows a strictly positive
// cluster-wide energy total.
func powerRising(page string) bool {
	for _, line := range strings.Split(page, "\n") {
		if rest, ok := strings.CutPrefix(line, "leed_power_millijoules_total "); ok {
			return strings.TrimSpace(rest) != "0" && !strings.HasPrefix(strings.TrimSpace(rest), "-")
		}
	}
	return false
}
