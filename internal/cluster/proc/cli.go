package proc

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"leed/internal/cluster"
	"leed/internal/obs"
	"leed/internal/power"
	"leed/internal/runtime"
	"leed/internal/runtime/wallclock"
)

// Main implements the `leedctl manager` and `leedctl node` subcommands:
// one process per cluster role, assembled from nothing but a manager
// address. It returns the process exit code. Both roles run until SIGINT
// or SIGTERM, then drain and print "drained" so harnesses (and humans) can
// assert a clean exit.
func Main(args []string) int {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "proc: missing role (manager|node)")
		return 2
	}
	var err error
	switch args[0] {
	case "manager":
		err = managerMain(args[1:])
	case "node":
		err = nodeMain(args[1:])
	default:
		err = fmt.Errorf("proc: unknown role %q", args[0])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "leedctl:", err)
		return 1
	}
	return 0
}

// awaitSignal blocks until SIGINT or SIGTERM.
func awaitSignal() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
}

// drainWait waits for the env to quiesce, bounded — a peer that never
// closes its connection must not wedge shutdown.
func drainWait(env *wallclock.Env, bound time.Duration) {
	done := make(chan struct{})
	go func() {
		env.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(bound):
	}
}

// traceSampleEvery is the whole-trace sampling cadence for proc roles: every
// N-th traced request is retained whole for /traces.
const traceSampleEvery = 32

func managerMain(args []string) error {
	fs := flag.NewFlagSet("manager", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:0", "heartbeat listen address")
	r := fs.Int("r", 3, "replication factor")
	numpart := fs.Int("numpart", 8, "global partition count (must match nodes)")
	hbTimeout := fs.Duration("hb-timeout", 750*time.Millisecond, "silent-node failure timeout")
	checkEvery := fs.Duration("check-every", 0, "failure-detector period (default hb-timeout/4)")
	metricsAddr := fs.String("metrics-addr", "", "HTTP address exposing the fleet-aggregated /metrics while running")
	metricsPoll := fs.Duration("metrics-poll", 250*time.Millisecond, "member metrics scrape cadence")
	if err := fs.Parse(args); err != nil {
		return err
	}
	env := wallclock.New()
	reg := obs.NewRegistry()
	tr := obs.NewTracer(reg, traceSampleEvery, 256)
	var fleet *obs.Fleet
	if *metricsAddr != "" {
		fleet = obs.NewFleet(reg)
	}
	pm := power.NewProcessMeter(reg, power.ProcessConfig{})
	defer pm.Close()
	m, err := StartManager(ManagerConfig{
		Env:              env,
		Listen:           *listen,
		R:                *r,
		NumPart:          *numpart,
		HeartbeatTimeout: runtime.Time(*hbTimeout),
		CheckEvery:       runtime.Time(*checkEvery),
		Obs:              reg,
		Fleet:            fleet,
		MetricsPoll:      *metricsPoll,
	})
	if err != nil {
		return err
	}
	if *metricsAddr != "" {
		// The manager's metrics page is the cluster-wide one: /metrics and
		// friends serve the fleet-merged registry (counters summed,
		// histograms merged, gauges instance-labeled), /attribution the
		// cross-process latency table. The default mux (pprof, /traces)
		// rides along unchanged.
		msrv, err := obs.ServeMetricsWith(*metricsAddr, reg, tr, map[string]http.HandlerFunc{
			"/metrics": func(w http.ResponseWriter, _ *http.Request) {
				w.Header().Set("Content-Type", "text/plain; version=0.0.4")
				fleet.Merged().WritePrometheus(w)
			},
			"/metrics.json": func(w http.ResponseWriter, _ *http.Request) {
				w.Header().Set("Content-Type", "application/json")
				_ = fleet.Merged().Snapshot().WriteJSON(w)
			},
			"/metrics.raw.json": func(w http.ResponseWriter, _ *http.Request) {
				w.Header().Set("Content-Type", "application/json")
				_ = json.NewEncoder(w).Encode(fleet.Merged().Raw())
			},
			"/attribution": func(w http.ResponseWriter, _ *http.Request) {
				w.Header().Set("Content-Type", "application/json")
				enc := json.NewEncoder(w)
				enc.SetIndent("", "  ")
				_ = enc.Encode(fleet.Attribution())
			},
		})
		if err != nil {
			return err
		}
		defer msrv.Close()
	}
	fmt.Printf("leed manager listening on %s\n", m.Addr())
	awaitSignal()
	fmt.Println("draining...")
	m.Close()
	drainWait(env, 5*time.Second)
	fmt.Println("drained")
	return nil
}

func nodeMain(args []string) error {
	fs := flag.NewFlagSet("node", flag.ContinueOnError)
	id := fs.Uint64("id", 0, "node ID (required, nonzero)")
	listen := fs.String("listen", "127.0.0.1:0", "RPC listen address for clients and peers")
	advertise := fs.String("advertise", "", "address peers dial (default: the bound listen address)")
	manager := fs.String("manager", "", "manager heartbeat address (required)")
	numpart := fs.Int("numpart", 8, "global partition count (must match the manager)")
	ssds := fs.Int("ssds", 2, "simulated drives backing the engine")
	capacity := fs.Int64("capacity", 64<<20, "per-drive capacity in bytes")
	hbInterval := fs.Duration("hb-interval", 50*time.Millisecond, "heartbeat / view-pull cadence")
	metricsAddr := fs.String("metrics-addr", "", "HTTP address exposing /metrics while running")
	if err := fs.Parse(args); err != nil {
		return err
	}
	env := wallclock.New()
	reg := obs.NewRegistry()
	tr := obs.NewTracer(reg, traceSampleEvery, 256)
	pm := power.NewProcessMeter(reg, power.ProcessConfig{})
	defer pm.Close()
	// The metrics server comes up before the node so its bound address (the
	// caller may have passed :0) can ride the node's heartbeats — that is
	// how the manager's fleet aggregator discovers scrape targets.
	var scrapeAddr string
	if *metricsAddr != "" {
		msrv, err := obs.ServeMetrics(*metricsAddr, reg, tr)
		if err != nil {
			return err
		}
		defer msrv.Close()
		scrapeAddr = msrv.Addr
	}
	n, err := StartNode(NodeConfig{
		Env:         env,
		ID:          cluster.NodeID(*id),
		Listen:      *listen,
		Advertise:   *advertise,
		Manager:     *manager,
		MetricsAddr: scrapeAddr,
		NumPart:     *numpart,
		SSDs:        *ssds,
		SSDCapacity: *capacity,
		HBInterval:  runtime.Time(*hbInterval),
		Obs:         reg,
		Tracer:      tr,
	})
	if err != nil {
		return err
	}
	fmt.Printf("leed node %d serving on %s\n", *id, n.Addr())
	awaitSignal()
	fmt.Println("draining...")
	n.Close()
	drainWait(env, 5*time.Second)
	fmt.Println("drained")
	return nil
}
