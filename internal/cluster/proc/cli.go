package proc

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"leed/internal/cluster"
	"leed/internal/obs"
	"leed/internal/runtime"
	"leed/internal/runtime/wallclock"
)

// Main implements the `leedctl manager` and `leedctl node` subcommands:
// one process per cluster role, assembled from nothing but a manager
// address. It returns the process exit code. Both roles run until SIGINT
// or SIGTERM, then drain and print "drained" so harnesses (and humans) can
// assert a clean exit.
func Main(args []string) int {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "proc: missing role (manager|node)")
		return 2
	}
	var err error
	switch args[0] {
	case "manager":
		err = managerMain(args[1:])
	case "node":
		err = nodeMain(args[1:])
	default:
		err = fmt.Errorf("proc: unknown role %q", args[0])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "leedctl:", err)
		return 1
	}
	return 0
}

// awaitSignal blocks until SIGINT or SIGTERM.
func awaitSignal() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
}

// drainWait waits for the env to quiesce, bounded — a peer that never
// closes its connection must not wedge shutdown.
func drainWait(env *wallclock.Env, bound time.Duration) {
	done := make(chan struct{})
	go func() {
		env.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(bound):
	}
}

func managerMain(args []string) error {
	fs := flag.NewFlagSet("manager", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:0", "heartbeat listen address")
	r := fs.Int("r", 3, "replication factor")
	numpart := fs.Int("numpart", 8, "global partition count (must match nodes)")
	hbTimeout := fs.Duration("hb-timeout", 750*time.Millisecond, "silent-node failure timeout")
	checkEvery := fs.Duration("check-every", 0, "failure-detector period (default hb-timeout/4)")
	metricsAddr := fs.String("metrics-addr", "", "HTTP address exposing /metrics while running")
	if err := fs.Parse(args); err != nil {
		return err
	}
	env := wallclock.New()
	reg := obs.NewRegistry()
	m, err := StartManager(ManagerConfig{
		Env:              env,
		Listen:           *listen,
		R:                *r,
		NumPart:          *numpart,
		HeartbeatTimeout: runtime.Time(*hbTimeout),
		CheckEvery:       runtime.Time(*checkEvery),
		Obs:              reg,
	})
	if err != nil {
		return err
	}
	if *metricsAddr != "" {
		msrv, err := obs.ServeMetrics(*metricsAddr, reg, nil)
		if err != nil {
			return err
		}
		defer msrv.Close()
	}
	fmt.Printf("leed manager listening on %s\n", m.Addr())
	awaitSignal()
	fmt.Println("draining...")
	m.Close()
	drainWait(env, 5*time.Second)
	fmt.Println("drained")
	return nil
}

func nodeMain(args []string) error {
	fs := flag.NewFlagSet("node", flag.ContinueOnError)
	id := fs.Uint64("id", 0, "node ID (required, nonzero)")
	listen := fs.String("listen", "127.0.0.1:0", "RPC listen address for clients and peers")
	advertise := fs.String("advertise", "", "address peers dial (default: the bound listen address)")
	manager := fs.String("manager", "", "manager heartbeat address (required)")
	numpart := fs.Int("numpart", 8, "global partition count (must match the manager)")
	ssds := fs.Int("ssds", 2, "simulated drives backing the engine")
	capacity := fs.Int64("capacity", 64<<20, "per-drive capacity in bytes")
	hbInterval := fs.Duration("hb-interval", 50*time.Millisecond, "heartbeat / view-pull cadence")
	metricsAddr := fs.String("metrics-addr", "", "HTTP address exposing /metrics while running")
	if err := fs.Parse(args); err != nil {
		return err
	}
	env := wallclock.New()
	reg := obs.NewRegistry()
	n, err := StartNode(NodeConfig{
		Env:         env,
		ID:          cluster.NodeID(*id),
		Listen:      *listen,
		Advertise:   *advertise,
		Manager:     *manager,
		NumPart:     *numpart,
		SSDs:        *ssds,
		SSDCapacity: *capacity,
		HBInterval:  runtime.Time(*hbInterval),
		Obs:         reg,
	})
	if err != nil {
		return err
	}
	if *metricsAddr != "" {
		msrv, err := obs.ServeMetrics(*metricsAddr, reg, nil)
		if err != nil {
			return err
		}
		defer msrv.Close()
	}
	fmt.Printf("leed node %d serving on %s\n", *id, n.Addr())
	awaitSignal()
	fmt.Println("draining...")
	n.Close()
	drainWait(env, 5*time.Second)
	fmt.Println("drained")
	return nil
}
