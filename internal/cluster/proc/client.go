package proc

import (
	"errors"
	"fmt"
	"time"

	"leed/internal/cluster"
	"leed/internal/core"
	"leed/internal/obs"
	"leed/internal/rpcproto"
	"leed/internal/runtime"
	"leed/internal/runtime/wallclock"
	"leed/internal/server"
	"leed/internal/transport"
)

// errAmbiguous marks a write whose execution state is unknown: the head
// acked nothing, but some chain prefix may hold it. WriteNotExecuted
// reports false for it.
var errAmbiguous = errors.New("proc: write outcome ambiguous")

// ErrNoView reports that the client exhausted its retries without a view
// under which the operation could be routed and accepted.
var ErrNoView = errors.New("proc: retries exhausted without a usable view")

// WriteNotExecuted reports whether a failed Put/Del provably never
// executed (safe to count as not-written in loss accounting). It extends
// server.WriteNotExecuted across the client's own failure modes: NACK
// exhaustion and view starvation never execute; an ambiguous chain outcome
// might have.
func WriteNotExecuted(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, errAmbiguous) {
		return false
	}
	if errors.Is(err, ErrNoView) {
		return true
	}
	return server.WriteNotExecuted(err)
}

// ClientConfig wires one multi-process cluster client.
type ClientConfig struct {
	Env     *wallclock.Env
	Manager string // the control plane's heartbeat address

	// Retries bounds attempts per operation (view refreshes included).
	// Default 16.
	Retries int
	// RetrySleep spaces attempts that found no usable route. Default 25ms
	// — a fraction of the heartbeat cadence, so a view change is usually
	// visible within a few retries.
	RetrySleep runtime.Time
	// Deadline bounds each attempt's round trip. Default 500ms.
	Deadline runtime.Time

	// Obs is optional.
	Obs *obs.Registry
	// Tracer, when set, traces every operation end to end: the request
	// carries a sampled trace context across process boundaries, every node
	// it touches piggybacks its span summaries on the response, and the
	// client replays them (hop-tagged) into one reassembled trace alongside
	// its own client/net spans.
	Tracer *obs.Tracer
}

// Client routes operations against a multi-process cluster: writes to the
// partition's chain head, reads to its read replica, views pulled from the
// manager with observer heartbeats (Node 0). All state is mutated only in
// task context — the execution contract is the lock.
type Client struct {
	cfg     ClientConfig
	env     *wallclock.Env
	view    *cluster.View
	addrs   map[cluster.NodeID]string
	peers   map[string]*server.ReliableClient
	mgrConn transport.Conn
	nextID  uint64
	seed    int64
	stopped bool
}

// NewClient creates a client; it fetches its first view lazily on first
// use (or an explicit Refresh).
func NewClient(cfg ClientConfig) *Client {
	if cfg.Retries == 0 {
		cfg.Retries = 16
	}
	if cfg.RetrySleep == 0 {
		cfg.RetrySleep = 25 * runtime.Millisecond
	}
	if cfg.Deadline == 0 {
		cfg.Deadline = 500 * runtime.Millisecond
	}
	return &Client{
		cfg:   cfg,
		env:   cfg.Env,
		addrs: make(map[cluster.NodeID]string),
		peers: make(map[string]*server.ReliableClient),
	}
}

// View returns the client's current view (nil before the first refresh).
func (c *Client) View() *cluster.View { return c.view }

// Close drops every connection. Task or scheduler context not required.
func (c *Client) Close() error {
	c.env.After(0, func() {
		c.stopped = true
		if c.mgrConn != nil {
			c.mgrConn.Close()
		}
		for _, p := range c.peers {
			p.Close()
		}
	})
	return nil
}

// Refresh pulls the current view from the manager with one observer
// heartbeat. Task context.
func (c *Client) Refresh(t runtime.Task) error {
	if c.mgrConn == nil {
		conn, err := transport.DialTCPOpts(c.env, c.cfg.Manager, transport.TCPOptions{
			ReadIdleTimeout: 30 * time.Second,
			WriteTimeout:    5 * time.Second,
		})
		if err != nil {
			return err
		}
		c.mgrConn = conn
	}
	var epoch uint64
	if c.view != nil {
		epoch = c.view.Epoch
	}
	vp, err := hbExchange(t, c.mgrConn, &rpcproto.Heartbeat{Node: 0, Epoch: epoch})
	if err != nil {
		c.mgrConn.Close()
		c.mgrConn = nil
		return err
	}
	v, addrs := viewFromPush(vp)
	for id, a := range addrs {
		c.addrs[id] = a
	}
	if c.view == nil || v.Epoch > c.view.Epoch {
		c.view = v
	}
	return nil
}

// peer returns (creating on first use) the reliable client for a node
// address. Client traffic frames as FrameRequest (no ChainFwd) and enters
// chains only at the head.
func (c *Client) peer(addr string) *server.ReliableClient {
	if rc, ok := c.peers[addr]; ok {
		return rc
	}
	c.seed++
	rc := server.NewReliableClient(server.ReliableConfig{
		Env: c.env,
		Dial: func(t runtime.Task) (transport.Conn, error) {
			return transport.DialTCPOpts(c.env, addr, transport.TCPOptions{
				ReadIdleTimeout: 30 * time.Second,
				WriteTimeout:    5 * time.Second,
			})
		},
		Depth:       16,
		Deadline:    c.cfg.Deadline,
		MaxAttempts: 2,
		BackoffBase: 5 * runtime.Millisecond,
		Seed:        c.seed,
		Obs:         c.cfg.Obs,
	})
	c.peers[addr] = rc
	return rc
}

// do routes one operation under the current view, refreshing and retrying
// on NACK or routing failure. Writes stop at the first ambiguous outcome.
func (c *Client) do(t runtime.Task, op rpcproto.Op, key, val []byte) (*rpcproto.Response, error) {
	isWrite := op == rpcproto.OpPut || op == rpcproto.OpDel
	lastErr := error(ErrNoView)
	start := t.Now()
	tr := c.cfg.Tracer.Begin(op.String(), start)
	// End aggregates whatever spans the attempts recorded — on failure the
	// trace still contributes its client time. Nil-safe throughout.
	defer c.cfg.Tracer.End(tr)
	for attempt := 0; attempt < c.cfg.Retries; attempt++ {
		if attempt > 0 {
			t.Sleep(c.cfg.RetrySleep)
		}
		if c.stopped {
			return nil, errors.New("proc: client closed")
		}
		if c.view == nil || attempt > 0 {
			if err := c.Refresh(t); err != nil {
				lastErr = fmt.Errorf("%w (refresh: %v)", ErrNoView, err)
				continue
			}
		}
		v := c.view
		if v == nil {
			continue
		}
		part := cluster.PartitionOf(core.HashKey(key), v.NumPart)
		var target cluster.NodeID
		if isWrite {
			chain := v.Chain(part)
			if len(chain) == 0 {
				lastErr = fmt.Errorf("%w (empty chain)", ErrNoView)
				continue
			}
			target = chain[0]
		} else {
			rep, ok := ReadReplica(v, part)
			if !ok {
				lastErr = fmt.Errorf("%w (no synced replica)", ErrNoView)
				continue
			}
			target = rep
		}
		addr := c.addrs[target]
		if addr == "" {
			lastErr = fmt.Errorf("%w (no address for node %d)", ErrNoView, target)
			continue
		}
		c.nextID++
		req := &rpcproto.Request{
			ID: c.nextID, Op: op,
			Partition: part, Epoch: v.Epoch, Hop: 0,
			Key: key, Value: val,
		}
		if tr != nil {
			// Propagate the trace across the process boundary: the sampled
			// context makes every node on the route piggyback its spans.
			req.TraceID = c.nextID
			req.TraceFlags = rpcproto.TraceSampled
		}
		sent := t.Now()
		resp, err := c.peer(addr).DoView(t, req)
		if err != nil {
			if isWrite && !server.WriteNotExecuted(err) {
				return nil, fmt.Errorf("%w: %v", errAmbiguous, err)
			}
			lastErr = err
			continue
		}
		switch resp.Status {
		case rpcproto.StatusOK, rpcproto.StatusNotFound:
			if tr != nil {
				// Reassemble the end-to-end trace: the client span is the
				// routing/retry overhead before the wire, the net span is the
				// round trip minus everything the remote spans account for,
				// and the piggybacked spans replay hop-tagged so the whole
				// chain (head → … → tail) shows up in one trace.
				rtt := t.Now() - sent
				tr.SpanHop("client", 0, sent-start, 0)
				remote := rpcproto.DisjointTotalNS(resp.Spans)
				tr.SpanHop("net", 0, 0, rtt-runtime.Time(remote))
				for _, sp := range resp.Spans {
					if name := sp.Stage.Name(); name != "" {
						tr.SpanHop(name, int(sp.Hop),
							runtime.Time(sp.QueueNS), runtime.Time(sp.ServiceNS))
					}
				}
			}
			return resp, nil
		case rpcproto.StatusNack:
			// Stale view (or the target is not yet serving); refresh and
			// retry. A NACKed write never executed.
			lastErr = fmt.Errorf("proc: nacked at epoch %d: %w", resp.Epoch, ErrNoView)
		case rpcproto.StatusOverload:
			lastErr = errors.New("proc: overloaded")
		default:
			if isWrite {
				// StatusErr on a write means some chain prefix may hold it.
				return nil, fmt.Errorf("%w: status %v", errAmbiguous, resp.Status)
			}
			lastErr = fmt.Errorf("proc: status %v", resp.Status)
		}
	}
	return nil, lastErr
}

// Get fetches key's value (a copy the caller owns).
func (c *Client) Get(t runtime.Task, key []byte) ([]byte, error) {
	resp, err := c.do(t, rpcproto.OpGet, key, nil)
	if err != nil {
		return nil, err
	}
	if resp.Status == rpcproto.StatusNotFound {
		return nil, core.ErrNotFound
	}
	return resp.Value, nil
}

// Put stores key=val through the partition's chain.
func (c *Client) Put(t runtime.Task, key, val []byte) error {
	_, err := c.do(t, rpcproto.OpPut, key, val)
	return err
}

// Del removes key.
func (c *Client) Del(t runtime.Task, key []byte) error {
	resp, err := c.do(t, rpcproto.OpDel, key, nil)
	if err != nil {
		return err
	}
	if resp.Status == rpcproto.StatusNotFound {
		return core.ErrNotFound
	}
	return nil
}
