package proc

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	"leed/internal/cluster"
	"leed/internal/core"
	"leed/internal/rpcproto"
	"leed/internal/runtime"
	"leed/internal/runtime/wallclock"
	"leed/internal/sim"
)

// The integration battery runs the real thing: it re-execs this test binary
// as `manager` and `node` processes (the env-var dispatch below), assembles
// a cluster on loopback, and drives it through the same client the paper's
// workloads use. Nothing is mocked — every heartbeat, view push, and chain
// forward crosses a process boundary on a real socket.

// TestMain doubles as the process entry point for spawned children: when
// LEED_PROC_ROLE is set the binary is not a test run but a cluster process,
// and control goes straight to the subcommand dispatcher.
func TestMain(m *testing.M) {
	if os.Getenv("LEED_PROC_ROLE") != "" {
		os.Exit(Main(strings.Fields(os.Getenv("LEED_PROC_ARGS"))))
	}
	os.Exit(m.Run())
}

// procChild is one spawned cluster process plus its captured output.
type procChild struct {
	name string
	cmd  *exec.Cmd
	out  *bytes.Buffer
}

// spawnProc re-execs the test binary as a cluster process with the given
// subcommand arguments.
func spawnProc(t *testing.T, name string, args []string) *procChild {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("os.Executable: %v", err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(),
		"LEED_PROC_ROLE=1",
		"LEED_PROC_ARGS="+strings.Join(args, " "))
	out := &bytes.Buffer{}
	cmd.Stdout = out
	cmd.Stderr = out
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", name, err)
	}
	c := &procChild{name: name, cmd: cmd, out: out}
	t.Cleanup(func() {
		if c.cmd.ProcessState == nil {
			syscall.Kill(c.cmd.Process.Pid, syscall.SIGKILL)
			c.cmd.Wait()
		}
	})
	return c
}

// drain SIGTERMs the child and asserts the graceful-shutdown contract: exit
// code 0 and the "drained" line in its output.
func (c *procChild) drain(t *testing.T) {
	t.Helper()
	c.cmd.Process.Signal(syscall.SIGTERM)
	waited := make(chan error, 1)
	go func() { waited <- c.cmd.Wait() }()
	select {
	case err := <-waited:
		if err != nil {
			t.Errorf("%s exited dirty on SIGTERM: %v\noutput:\n%s", c.name, err, c.out.String())
		}
	case <-time.After(15 * time.Second):
		t.Errorf("%s did not exit within 15s of SIGTERM", c.name)
		syscall.Kill(c.cmd.Process.Pid, syscall.SIGKILL)
		<-waited
		return
	}
	if !bytes.Contains(c.out.Bytes(), []byte("drained")) {
		t.Errorf("%s never printed \"drained\"; output:\n%s", c.name, c.out.String())
	}
}

func freeTestAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("reserve addr: %v", err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func awaitTCP(t *testing.T, addr string, budget time.Duration) {
	t.Helper()
	deadline := time.Now().Add(budget)
	for time.Now().Before(deadline) {
		c, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			c.Close()
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("no listener on %s within %v", addr, budget)
}

// startProcCluster spawns a manager and n nodes and returns the manager's
// heartbeat address plus the children (manager first).
func startProcCluster(t *testing.T, n int) (string, []*procChild) {
	t.Helper()
	mgrAddr := freeTestAddr(t)
	children := []*procChild{spawnProc(t, "manager",
		[]string{"manager", "-listen", mgrAddr, "-hb-timeout", "600ms"})}
	awaitTCP(t, mgrAddr, 15*time.Second)
	for i := 1; i <= n; i++ {
		children = append(children, spawnProc(t, fmt.Sprintf("node %d", i),
			[]string{"node",
				"-id", fmt.Sprint(i),
				"-listen", freeTestAddr(t),
				"-manager", mgrAddr,
				"-hb-interval", "25ms"}))
	}
	return mgrAddr, children
}

// awaitRunningView refreshes until the view shows n RUNNING members.
func awaitRunningView(p runtime.Task, cl *Client, n int, budget time.Duration) bool {
	deadline := time.Now().Add(budget)
	for time.Now().Before(deadline) {
		if err := cl.Refresh(p); err == nil {
			v := cl.View()
			if v != nil && len(v.States) == n {
				running := true
				for _, st := range v.States {
					running = running && st == cluster.StateRunning
				}
				if running {
					return true
				}
			}
		}
		p.Sleep(25 * runtime.Millisecond)
	}
	return false
}

// TestMultiProcessClusterIntegration is the battery's tentpole: manager + 3
// node processes, a YCSB-B-shaped workload through the cluster client, a
// full read-back against the driver's model, then SIGTERM-drain assertions
// on every process.
func TestMultiProcessClusterIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process cluster integration skipped in -short mode")
	}
	mgrAddr, children := startProcCluster(t, 3)

	const nKeys = 64
	const nOps = 400
	model := make(map[string]string)
	env := wallclock.New()
	client := NewClient(ClientConfig{Env: env, Manager: mgrAddr})
	var taskErrs []string
	done := make(chan struct{})
	env.Spawn("integration-driver", func(p runtime.Task) {
		defer close(done)
		if !awaitRunningView(p, client, 3, 30*time.Second) {
			taskErrs = append(taskErrs, "cluster never reached 3 RUNNING members")
			return
		}
		rng := rand.New(rand.NewSource(11))
		key := func(i int) []byte { return []byte(fmt.Sprintf("it-%04d", i)) }
		// Preload every key, then run the 95/5 YCSB-B mix.
		for i := 0; i < nKeys; i++ {
			val := fmt.Sprintf("v1-of-%04d", i)
			if err := client.Put(p, key(i), []byte(val)); err != nil {
				taskErrs = append(taskErrs, fmt.Sprintf("preload put %d: %v", i, err))
				return
			}
			model[string(key(i))] = val
		}
		ver := make([]int, nKeys)
		for op := 0; op < nOps; op++ {
			i := rng.Intn(nKeys)
			if rng.Intn(100) < 95 {
				got, err := client.Get(p, key(i))
				if err != nil {
					taskErrs = append(taskErrs, fmt.Sprintf("op %d get %d: %v", op, i, err))
					continue
				}
				if want := model[string(key(i))]; string(got) != want {
					taskErrs = append(taskErrs, fmt.Sprintf("op %d get %d: got %q want %q", op, i, got, want))
				}
			} else {
				ver[i]++
				val := fmt.Sprintf("v%d-of-%04d", ver[i]+1, i)
				if err := client.Put(p, key(i), []byte(val)); err != nil {
					taskErrs = append(taskErrs, fmt.Sprintf("op %d put %d: %v", op, i, err))
					continue
				}
				model[string(key(i))] = val
			}
		}
		// Full read-back against the model.
		for i := 0; i < nKeys; i++ {
			got, err := client.Get(p, key(i))
			if err != nil {
				taskErrs = append(taskErrs, fmt.Sprintf("readback %d: %v", i, err))
				continue
			}
			if want := model[string(key(i))]; string(got) != want {
				taskErrs = append(taskErrs, fmt.Sprintf("readback %d: got %q want %q", i, got, want))
			}
		}
	})
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("integration driver did not finish")
	}
	client.Close()
	for _, e := range taskErrs {
		t.Error(e)
	}

	// Graceful shutdown: nodes first, then the manager; every process must
	// drain and exit 0.
	for i := len(children) - 1; i >= 0; i-- {
		children[i].drain(t)
	}
}

// eqProcOp is one scripted operation for the equivalence transcript.
type eqProcOp struct {
	put      bool
	key, val string
}

// eqProcOps derives a deterministic put/get script from seed. Values fit
// both geometries (in-process ValLen 64, proc default 256).
func eqProcOps(seed int64, n, keys int) []eqProcOp {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]eqProcOp, 0, n)
	ver := make([]int, keys)
	for i := 0; i < n; i++ {
		k := rng.Intn(keys)
		if rng.Intn(10) < 4 { // 40% writes, so most keys get several versions
			ver[k]++
			ops = append(ops, eqProcOp{put: true,
				key: fmt.Sprintf("eq-%04d", k),
				val: fmt.Sprintf("v%d-of-%04d", ver[k], k)})
		} else {
			ops = append(ops, eqProcOp{key: fmt.Sprintf("eq-%04d", k)})
		}
	}
	return ops
}

// runEqInProcess executes the script on the in-process simulated cluster
// (DES kernel) and returns the final client-visible KV contents.
func runEqInProcess(t *testing.T, ops []eqProcOp) map[string]string {
	t.Helper()
	k := sim.New()
	defer k.Close()
	c := cluster.New(cluster.Config{
		Env:           k,
		NumJBOFs:      3,
		SSDsPerJBOF:   2,
		SSDCapacity:   32 << 20,
		NumPartitions: 8,
		R:             3,
		KeyLen:        16,
		ValLen:        64,
		NumClients:    1,
		CRRS:          true,
		FlowControl:   true,
		Swap:          true,
	})
	c.Start()
	k.Run(k.Now() + 5*runtime.Millisecond)
	kv := make(map[string]string)
	done := false
	k.Spawn("eq-sim-driver", func(p runtime.Task) {
		cl := c.Clients[0]
		for i, op := range ops {
			if op.put {
				if _, err := cl.Put(p, []byte(op.key), []byte(op.val)); err != nil {
					t.Errorf("sim op %d put %s: %v", i, op.key, err)
				}
			} else if _, _, err := cl.Get(p, []byte(op.key)); err != nil && err != core.ErrNotFound {
				t.Errorf("sim op %d get %s: %v", i, op.key, err)
			}
		}
		p.Sleep(20 * runtime.Millisecond)
		seen := map[string]bool{}
		for _, op := range ops {
			if !op.put || seen[op.key] {
				continue
			}
			seen[op.key] = true
			v, _, err := cl.Get(p, []byte(op.key))
			if err != nil {
				t.Errorf("sim final get %s: %v", op.key, err)
				continue
			}
			kv[op.key] = string(v)
		}
		done = true
	})
	deadline := k.Now() + 120*runtime.Second
	for !done && k.Now() < deadline {
		k.Run(k.Now() + 10*runtime.Millisecond)
	}
	if !done {
		t.Fatal("sim equivalence driver did not finish")
	}
	return kv
}

// runEqMultiProcess executes the same script against a real multi-process
// cluster and returns the final client-visible KV contents.
func runEqMultiProcess(t *testing.T, ops []eqProcOp) map[string]string {
	t.Helper()
	mgrAddr, children := startProcCluster(t, 3)
	env := wallclock.New()
	cl := NewClient(ClientConfig{Env: env, Manager: mgrAddr})
	kv := make(map[string]string)
	done := make(chan struct{})
	env.Spawn("eq-proc-driver", func(p runtime.Task) {
		defer close(done)
		if !awaitRunningView(p, cl, 3, 30*time.Second) {
			t.Error("proc cluster never reached 3 RUNNING members")
			return
		}
		for i, op := range ops {
			if op.put {
				if err := cl.Put(p, []byte(op.key), []byte(op.val)); err != nil {
					t.Errorf("proc op %d put %s: %v", i, op.key, err)
				}
			} else if _, err := cl.Get(p, []byte(op.key)); err != nil && !errors.Is(err, core.ErrNotFound) {
				t.Errorf("proc op %d get %s: %v", i, op.key, err)
			}
		}
		seen := map[string]bool{}
		for _, op := range ops {
			if !op.put || seen[op.key] {
				continue
			}
			seen[op.key] = true
			v, err := cl.Get(p, []byte(op.key))
			if err != nil {
				t.Errorf("proc final get %s: %v", op.key, err)
				continue
			}
			kv[op.key] = string(v)
		}
	})
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("proc equivalence driver did not finish")
	}
	cl.Close()
	for i := len(children) - 1; i >= 0; i-- {
		children[i].drain(t)
	}
	return kv
}

// TestInProcessMultiProcessEquivalence pushes one seeded script through the
// in-process simulated cluster and through a real multi-process cluster and
// demands identical final KV contents: the process split must not change
// what the store remembers, only where it runs. Both sides route with
// PartitionOf(HashKey(key), NumPart), so the transcript also pins that the
// two bindings shard identically.
func TestInProcessMultiProcessEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process equivalence skipped in -short mode")
	}
	ops := eqProcOps(42, 200, 24)
	simKV := runEqInProcess(t, ops)
	procKV := runEqMultiProcess(t, ops)
	if len(simKV) == 0 {
		t.Fatal("in-process cluster committed nothing")
	}
	if len(simKV) != len(procKV) {
		t.Errorf("final KV sizes differ: in-process=%d multi-process=%d", len(simKV), len(procKV))
	}
	for k, v := range simKV {
		if pv, ok := procKV[k]; !ok {
			t.Errorf("key %s present in-process, missing multi-process", k)
		} else if pv != v {
			t.Errorf("key %s: in-process=%q multi-process=%q", k, v, pv)
		}
	}
}

// getAllocBudget mirrors bench.GetAllocBudget (not imported: bench imports
// this package for the cluster loadgen, and an internal test may not close
// that cycle). If the pinned budget ever moves, move this with it.
const getAllocBudget = 2

// TestHandleGetAllocs pins the node's GET handler — the hot serve path every
// read replica runs — to the same allocs/op budget the single-server path is
// gated on (bench.GetAllocBudget). White-box: the handler is driven directly
// with a synthetic single-node view, no sockets.
func TestHandleGetAllocs(t *testing.T) {
	env := wallclock.New()
	n := newNode(NodeConfig{Env: env, ID: 1, NumPart: 4, SSDs: 1, SSDCapacity: 8 << 20})
	n.eng.Start()
	key := []byte("alloc-key-0001")
	val := bytes.Repeat([]byte("x"), 64)
	part := cluster.PartitionOf(core.HashKey(key), 4)

	var allocs float64
	var setupErr error
	done := make(chan struct{})
	env.Spawn("alloc-driver", func(p runtime.Task) {
		defer close(done)
		// A one-node view: node 1 is every chain and every read replica.
		v := cluster.NewView(1,
			map[cluster.NodeID]cluster.NodeState{1: cluster.StateRunning}, 1, 4, nil)
		n.applyView(v)
		if _, _, err := n.eng.Execute(p, int(part), rpcproto.OpPut, key, val); err != nil {
			setupErr = err
			return
		}
		req := &rpcproto.Request{ID: 7, Op: rpcproto.OpGet, Partition: part, Epoch: 1, Key: key}
		scratch := make([]byte, 0, 4096)
		// Warm the path once (lazy engine buffers), then measure.
		resp := rpcproto.Response{ID: req.ID, Epoch: req.Epoch}
		scratch = n.Handle(p, false, req, &resp, scratch, nil)
		if resp.Status != rpcproto.StatusOK || !bytes.Equal(resp.Value, val) {
			setupErr = fmt.Errorf("warmup GET: status %v", resp.Status)
			return
		}
		allocs = testing.AllocsPerRun(200, func() {
			r := rpcproto.Response{ID: req.ID, Epoch: req.Epoch}
			scratch = n.Handle(p, false, req, &r, scratch, nil)
			if r.Status != rpcproto.StatusOK {
				setupErr = fmt.Errorf("measured GET: status %v", r.Status)
			}
		})
	})
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("alloc driver did not finish")
	}
	if setupErr != nil {
		t.Fatal(setupErr)
	}
	if allocs > float64(getAllocBudget) {
		t.Errorf("GET handler allocates %.1f/op, budget is %d", allocs, getAllocBudget)
	}
	env.After(0, func() { n.eng.Stop() })
	drained := make(chan struct{})
	go func() { env.Wait(); close(drained) }()
	select {
	case <-drained:
	case <-time.After(10 * time.Second):
	}
}

// TestHandleRejectsSpoofedHop pins the anti-spoof rule over the handler
// seam: a client-framed write with a nonzero Hop must NACK, never execute —
// otherwise a hostile client could have a mid-chain node ack a write the
// upstream replicas don't hold.
func TestHandleRejectsSpoofedHop(t *testing.T) {
	env := wallclock.New()
	n := newNode(NodeConfig{Env: env, ID: 1, NumPart: 4, SSDs: 1, SSDCapacity: 8 << 20})
	n.eng.Start()
	done := make(chan struct{})
	var failures []string
	env.Spawn("spoof-driver", func(p runtime.Task) {
		defer close(done)
		v := cluster.NewView(1,
			map[cluster.NodeID]cluster.NodeState{1: cluster.StateRunning}, 1, 4, nil)
		n.applyView(v)
		key := []byte("spoof-key")
		part := cluster.PartitionOf(core.HashKey(key), 4)
		req := &rpcproto.Request{ID: 1, Op: rpcproto.OpPut, Partition: part, Epoch: 1, Hop: 1, Key: key, Value: []byte("evil")}
		resp := rpcproto.Response{ID: req.ID, Epoch: req.Epoch}
		n.Handle(p, false, req, &resp, nil, nil)
		if resp.Status != rpcproto.StatusNack {
			failures = append(failures, fmt.Sprintf("spoofed-hop client write: status %v, want NACK", resp.Status))
		}
		// A client-framed COPY is hostile too: peer-only traffic.
		creq := &rpcproto.Request{ID: 2, Op: rpcproto.OpCopy, Partition: part, Epoch: 1, Key: key, Value: []byte("evil")}
		cresp := rpcproto.Response{ID: creq.ID, Epoch: creq.Epoch}
		n.Handle(p, false, creq, &cresp, nil, nil)
		if cresp.Status != rpcproto.StatusErr {
			failures = append(failures, fmt.Sprintf("client-framed COPY: status %v, want Err", cresp.Status))
		}
		// Neither may have written anything.
		if _, _, err := n.eng.Execute(p, int(part), rpcproto.OpGet, key, nil); err != core.ErrNotFound {
			failures = append(failures, fmt.Sprintf("spoofed write landed: GET err=%v, want NotFound", err))
		}
	})
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("spoof driver did not finish")
	}
	for _, f := range failures {
		t.Error(f)
	}
	env.After(0, func() { n.eng.Stop() })
	drained := make(chan struct{})
	go func() { env.Wait(); close(drained) }()
	select {
	case <-drained:
	case <-time.After(10 * time.Second):
	}
}
