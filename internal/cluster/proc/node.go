package proc

import (
	"errors"
	"fmt"
	"time"

	"leed/internal/cluster"
	"leed/internal/core"
	"leed/internal/engine"
	"leed/internal/flashsim"
	"leed/internal/obs"
	"leed/internal/rpcproto"
	"leed/internal/runtime"
	"leed/internal/runtime/wallclock"
	"leed/internal/server"
	"leed/internal/transport"
)

// NodeConfig wires one JBOF process.
type NodeConfig struct {
	Env *wallclock.Env
	ID  cluster.NodeID // nonzero (0 is the observer convention)

	Listen    string // RPC listen address for clients and peers (:0 ok)
	Advertise string // address peers dial; defaults to the bound Listen addr
	Manager   string // the control plane's heartbeat address

	// MetricsAddr is the node's metrics endpoint as scraped from outside
	// (host:port serving /metrics.raw.json). Carried in every heartbeat so
	// the manager's fleet aggregator discovers members without separate
	// configuration. Empty = the node is not scrapeable.
	MetricsAddr string

	// NumPart is the global partition count; must match the manager's.
	// Default 8. Engine partition ids equal global partition numbers, so
	// every node can host every partition (the slot budget a JBOF-scale
	// deployment would tune is not the point of the process split).
	NumPart int

	SSDs        int   // simulated drives backing the engine. Default 2.
	SSDCapacity int64 // per-drive capacity. Default 64 MiB.

	// KeyLen/ValLen shape the store geometry. Defaults 16/256.
	KeyLen, ValLen int

	// HBInterval is the heartbeat (and therefore view-pull) cadence.
	// Default 50ms — comfortably inside the manager's 750ms timeout.
	HBInterval runtime.Time

	// Obs and Tracer are optional.
	Obs    *obs.Registry
	Tracer *obs.Tracer
}

// NodeStats are cumulative counters.
type NodeStats struct {
	Gets, Puts, Dels int64
	Forwards         int64 // writes relayed to the next chain member
	Nacks            int64
	CopiesSent       int64
	CopiesReceived   int64
	ShieldedCopies   int64 // COPY items dropped: a newer chain write was present
}

// Node is one multi-process LEED storage server: an engine behind a
// handler-mode rpcproto server, a heartbeat loop pulling views from the
// manager, and per-peer reliable clients carrying chain forwards. All state
// is mutated only in task context on one wallclock env — the execution
// contract is the lock, exactly as in the goroutine cluster.
type Node struct {
	cfg NodeConfig
	env *wallclock.Env
	eng *engine.Engine
	srv *server.Server
	ln  *transport.TCPListener

	view  *cluster.View
	addrs map[cluster.NodeID]string
	// Per-partition routing state rebuilt on every view install, so the
	// hot handler path is array lookups, not map traffic.
	chains  [][]cluster.NodeID
	myPos   []int            // chain position of this node, -1 when not a member
	readRep []cluster.NodeID // read-serving replica, 0 when chain empty
	member  []bool

	// peers are the ChainFwd reliable clients, keyed by dial address so a
	// node that comes back on a new port gets a fresh connection.
	peers map[string]*server.ReliableClient

	// fresh is the copy shield (see the in-process cluster.Node): keys a
	// still-unsynced replica absorbed from live chain writes while a COPY
	// into it was in flight. COPY items for such keys carry the older
	// migration snapshot and must be acked without writing.
	fresh map[uint32]map[string]bool

	// copies tracks COPY commands this node sources, by lifecycle:
	// copyRunning while the transfer task streams, copyDone until a view
	// push stops redelivering the command (the manager saw our Done).
	copies map[copyKey]uint8

	hbConn  transport.Conn
	stopped bool
	stats   NodeStats
	o       *nodeObs
}

// Copy lifecycle states (Node.copies values).
const (
	copyRunning uint8 = 1
	copyDone    uint8 = 2
)

// nodeObs is the node's registry binding; always constructed (a nil
// registry hands back working unregistered counters).
type nodeObs struct {
	gets, puts, dels *obs.Counter
	forwards         *obs.Counter
	nacks            *obs.Counter
	copiesSent       *obs.Counter
	copiesReceived   *obs.Counter
	shieldedCopies   *obs.Counter
	epochG           *obs.Gauge
}

func newNodeObs(reg *obs.Registry, id cluster.NodeID) *nodeObs {
	node := fmt.Sprintf("n%d", id)
	c := func(name string) *obs.Counter { return reg.Counter(name, "node", node) }
	return &nodeObs{
		gets:           c("leed_node_gets_total"),
		puts:           c("leed_node_puts_total"),
		dels:           c("leed_node_dels_total"),
		forwards:       c("leed_node_forwards_total"),
		nacks:          c("leed_node_nacks_total"),
		copiesSent:     c("leed_node_copies_sent_total"),
		copiesReceived: c("leed_node_copies_received_total"),
		shieldedCopies: c("leed_node_shielded_copies_total"),
		epochG:         reg.Gauge("leed_cluster_view_epoch"),
	}
}

// newNode builds the node's engine and state without any I/O; tests use it
// to drive the handler directly.
func newNode(cfg NodeConfig) *Node {
	if cfg.NumPart == 0 {
		cfg.NumPart = 8
	}
	if cfg.SSDs == 0 {
		cfg.SSDs = 2
	}
	if cfg.SSDCapacity == 0 {
		cfg.SSDCapacity = 64 << 20
	}
	if cfg.KeyLen == 0 {
		cfg.KeyLen = 16
	}
	if cfg.ValLen == 0 {
		cfg.ValLen = 256
	}
	if cfg.HBInterval == 0 {
		cfg.HBInterval = 50 * runtime.Millisecond
	}
	partsPerSSD := (cfg.NumPart + cfg.SSDs - 1) / cfg.SSDs
	partBytes := cfg.SSDCapacity / int64(partsPerSSD)
	devs := make([]flashsim.Device, cfg.SSDs)
	for i := range devs {
		d := flashsim.NewMemDevice(cfg.Env, cfg.SSDCapacity)
		d.SetSyncReads(true)
		devs[i] = d
	}
	n := &Node{
		cfg: cfg,
		env: cfg.Env,
		eng: engine.New(engine.Config{
			Env:              cfg.Env,
			Devices:          devs,
			PartitionsPerSSD: partsPerSSD,
			Geometry:         core.PlanPartition(partBytes, cfg.KeyLen, cfg.ValLen, core.PlanOpts{}),
			PartitionBytes:   partBytes,
			Obs:              cfg.Obs,
			Tracer:           cfg.Tracer,
			ObsNode:          fmt.Sprintf("n%d", cfg.ID),
		}),
		addrs:   make(map[cluster.NodeID]string),
		chains:  make([][]cluster.NodeID, cfg.NumPart),
		myPos:   make([]int, cfg.NumPart),
		readRep: make([]cluster.NodeID, cfg.NumPart),
		member:  make([]bool, cfg.NumPart),
		peers:   make(map[string]*server.ReliableClient),
		fresh:   make(map[uint32]map[string]bool),
		copies:  make(map[copyKey]uint8),
		o:       newNodeObs(cfg.Obs, cfg.ID),
	}
	for i := range n.myPos {
		n.myPos[i] = -1
	}
	return n
}

// StartNode builds the engine, mounts the handler-mode server on Listen,
// and launches the heartbeat loop toward the manager. Returns once the
// listener is bound; the node joins the cluster (and starts serving
// non-NACK responses) when its first view push lands.
func StartNode(cfg NodeConfig) (*Node, error) {
	if cfg.ID == 0 {
		return nil, errors.New("proc: node ID must be nonzero")
	}
	if cfg.Manager == "" {
		return nil, errors.New("proc: node needs a manager address")
	}
	n := newNode(cfg)
	ln, err := transport.ListenTCPOpts(n.env, n.cfg.Listen, transport.TCPOptions{
		ReadIdleTimeout: 30 * time.Second,
		WriteTimeout:    5 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	n.ln = ln
	if n.cfg.Advertise == "" {
		n.cfg.Advertise = ln.Addr()
	}
	n.eng.Start()
	n.srv = server.New(server.Config{
		Env:     n.env,
		Engine:  n.eng,
		Handler: n,
		Obs:     n.cfg.Obs,
		Tracer:  n.cfg.Tracer,
	})
	n.srv.Serve(ln)
	n.env.Spawn(fmt.Sprintf("node%d-hb", n.cfg.ID), n.heartbeatLoop)
	return n, nil
}

// Addr returns the bound RPC address.
func (n *Node) Addr() string { return n.ln.Addr() }

// Stats returns cumulative counters.
func (n *Node) Stats() NodeStats { return n.stats }

// Epoch returns the node's current view epoch (0 before the first push).
func (n *Node) Epoch() uint64 {
	if n.view == nil {
		return 0
	}
	return n.view.Epoch
}

// Close drains the server, stops the engine and loops, and drops every
// connection. Safe from any goroutine; returns once the drain is ordered.
func (n *Node) Close() error {
	n.srv.Close()
	n.env.After(0, func() {
		n.stopped = true
		n.eng.Stop()
		if n.hbConn != nil {
			n.hbConn.Close()
		}
		for _, p := range n.peers {
			p.Close()
		}
	})
	return nil
}

// peer returns (creating on first use) the ChainFwd reliable client for a
// peer address. Task context.
func (n *Node) peer(addr string) *server.ReliableClient {
	if rc, ok := n.peers[addr]; ok {
		return rc
	}
	rc := server.NewReliableClient(server.ReliableConfig{
		Env: n.env,
		Dial: func(t runtime.Task) (transport.Conn, error) {
			return transport.DialTCPOpts(n.env, addr, transport.TCPOptions{
				ReadIdleTimeout: 30 * time.Second,
				WriteTimeout:    5 * time.Second,
			})
		},
		Depth:       32,
		Deadline:    500 * runtime.Millisecond,
		MaxAttempts: 2,
		BackoffBase: 5 * runtime.Millisecond,
		Seed:        int64(n.cfg.ID),
		ChainFwd:    true,
		Obs:         n.cfg.Obs,
	})
	n.peers[addr] = rc
	return rc
}

// applyPush installs a view push: the rehydrated view, the address book it
// carried, and the COPY commands addressed to this node. Task context.
func (n *Node) applyPush(t runtime.Task, vp *rpcproto.ViewPush) {
	v, addrs := viewFromPush(vp)
	for id, a := range addrs {
		n.addrs[id] = a
	}
	if n.view == nil || v.Epoch > n.view.Epoch {
		n.applyView(v)
	}
	// COPY mailbox reconciliation: commands in the push and unknown here
	// start a transfer; commands we finished stay `copyDone` (re-reported in
	// every heartbeat) until a push omits them — that is the manager
	// acknowledging our Done.
	seen := make(map[copyKey]bool, len(vp.Copies))
	for _, cp := range vp.Copies {
		key := copyKey{part: cp.Partition, dest: cluster.NodeID(cp.Dest)}
		seen[key] = true
		if n.copies[key] == 0 {
			n.copies[key] = copyRunning
			cmd := key
			n.env.Spawn(fmt.Sprintf("node%d-copy", n.cfg.ID), func(ct runtime.Task) { n.runCopy(ct, cmd) })
		}
	}
	for key, st := range n.copies {
		if st == copyDone && !seen[key] {
			delete(n.copies, key)
		}
	}
}

// applyView recomputes the per-partition routing arrays and the membership
// transitions. A partition this node newly replicates while unsynced is
// reset first — it is about to be rebuilt by COPY plus live chain writes,
// and must not leak objects from an earlier membership.
func (n *Node) applyView(v *cluster.View) {
	n.view = v
	n.o.epochG.Set(int64(v.Epoch))
	for part := 0; part < n.cfg.NumPart; part++ {
		p32 := uint32(part)
		chain := v.Chain(p32)
		n.chains[part] = chain
		pos := -1
		for i, id := range chain {
			if id == n.cfg.ID {
				pos = i
			}
		}
		n.myPos[part] = pos
		if rep, ok := ReadReplica(v, p32); ok {
			n.readRep[part] = rep
		} else {
			n.readRep[part] = 0
		}
		isMember := pos >= 0
		if isMember && !n.member[part] && !v.Synced(p32, n.cfg.ID) {
			n.eng.ResetPartition(part)
			n.fresh[p32] = make(map[string]bool)
		}
		if v.Synced(p32, n.cfg.ID) {
			// Synced means the migration COPY has fully landed; the shield
			// has nothing left to protect.
			delete(n.fresh, p32)
		}
		n.member[part] = isMember
	}
}

// heartbeatLoop beats the manager every HBInterval on one long-lived
// connection, redialing with backoff when it dies, and applies each view
// push reply.
func (n *Node) heartbeatLoop(t runtime.Task) {
	for !n.stopped {
		if n.hbConn == nil {
			c, err := transport.DialTCPOpts(n.env, n.cfg.Manager, transport.TCPOptions{
				// The conn idles a full HBInterval between beats; the idle
				// reaper exists only for a manager that died without a FIN.
				ReadIdleTimeout: 30 * time.Second,
				WriteTimeout:    5 * time.Second,
			})
			if err != nil {
				t.Sleep(n.cfg.HBInterval)
				continue
			}
			n.hbConn = c
		}
		hb := &rpcproto.Heartbeat{
			Node:        uint64(n.cfg.ID),
			Epoch:       n.Epoch(),
			Addr:        n.cfg.Advertise,
			MetricsAddr: n.cfg.MetricsAddr,
		}
		for key, st := range n.copies {
			if st == copyDone {
				hb.Done = append(hb.Done, rpcproto.CopyRef{Partition: key.part, Dest: uint64(key.dest)})
			}
		}
		vp, err := hbExchange(t, n.hbConn, hb)
		if err != nil {
			n.hbConn.Close()
			n.hbConn = nil
			t.Sleep(n.cfg.HBInterval)
			continue
		}
		if n.stopped {
			return
		}
		n.applyPush(t, vp)
		t.Sleep(n.cfg.HBInterval)
	}
}

// copyRetryRounds bounds COPY item resends; the command is reported Done
// even if items remain unacked (e.g. the destination died), so the control
// plane is never stuck waiting on a migration that cannot finish.
const copyRetryRounds = 5

// runCopy streams one partition's objects to dest as OpCopy peer requests
// and records the command done. Items that fail are retried in bounded
// rounds — a silently dropped item would leave a permanent hole in the
// repaired replica.
func (n *Node) runCopy(t runtime.Task, cmd copyKey) {
	defer func() { n.copies[cmd] = copyDone }()
	pid := int(cmd.part)
	if pid >= n.eng.NumPartitions() {
		return
	}
	type copyItem struct{ key, val []byte }
	var items []copyItem
	n.eng.Partition(pid).Store.Range(t, func(key, val []byte) bool {
		if n.stopped {
			return false
		}
		items = append(items, copyItem{
			key: append([]byte(nil), key...),
			val: append([]byte(nil), val...),
		})
		return true
	})
	for round := 0; round < copyRetryRounds && len(items) > 0; round++ {
		if n.stopped {
			return
		}
		addr := n.addrs[cmd.dest]
		if addr == "" {
			// The destination's address rides the next view push.
			t.Sleep(n.cfg.HBInterval)
			continue
		}
		rc := n.peer(addr)
		left := items[:0]
		for _, it := range items {
			if n.stopped {
				return
			}
			n.stats.CopiesSent++
			n.o.copiesSent.Inc()
			req := &rpcproto.Request{
				ID: uint64(n.stats.CopiesSent), Op: rpcproto.OpCopy,
				Partition: cmd.part, Epoch: n.Epoch(),
				Key: it.key, Value: it.val,
			}
			resp, err := rc.DoView(t, req)
			if err != nil || resp.Status != rpcproto.StatusOK {
				left = append(left, it)
			}
		}
		items = left
	}
}

// nack fills a NACK response carrying this node's epoch so the sender can
// tell whether refreshing its view will help.
func (n *Node) nack(resp *rpcproto.Response) {
	n.stats.Nacks++
	n.o.nacks.Inc()
	resp.Status = rpcproto.StatusNack
	resp.Epoch = n.Epoch()
}

// Handle implements server.Handler: validation, engine execution, and chain
// forwarding for one admitted request. Task context; a chain forward's
// round trip blocks one pipeline slot, which is the backpressure that keeps
// an overloaded downstream from being buried. tr is the request's trace
// (nil untraced): engine execution and the forward's wire time are
// attributed to it, and a sampled request's downstream piggyback spans are
// merged into resp.Spans for the server to relay upstream.
func (n *Node) Handle(t runtime.Task, fwd bool, req *rpcproto.Request, resp *rpcproto.Response, scratch []byte, tr *obs.Trace) []byte {
	v := n.view
	if v == nil || int64(req.Partition) >= int64(n.cfg.NumPart) {
		n.nack(resp)
		return scratch
	}
	switch req.Op {
	case rpcproto.OpCopy:
		if !fwd {
			// COPY is peer-only traffic; a client-framed COPY is hostile.
			resp.Status = rpcproto.StatusErr
			return scratch
		}
		return n.handleCopy(t, req, resp, scratch)
	case rpcproto.OpGet:
		return n.handleGet(t, req, resp, scratch, tr)
	case rpcproto.OpPut, rpcproto.OpDel:
		if !fwd && req.Hop != 0 {
			// Client traffic enters chains only at the head: a hop-spoofed
			// client write would be acked without the upstream replicas.
			n.nack(resp)
			return scratch
		}
		return n.handleWrite(t, req, resp, scratch, tr)
	default:
		resp.Status = rpcproto.StatusErr
		return scratch
	}
}

func (n *Node) handleCopy(t runtime.Task, req *rpcproto.Request, resp *rpcproto.Response, scratch []byte) []byte {
	part := req.Partition
	if n.fresh[part][string(req.Key)] {
		// The chain already wrote a newer version of this key directly into
		// this (joining) replica; the COPY carries the older migration
		// snapshot. Ack without writing — repair must not travel back in
		// time.
		n.stats.ShieldedCopies++
		n.o.shieldedCopies.Inc()
		resp.Status = rpcproto.StatusOK
		return scratch
	}
	n.stats.CopiesReceived++
	n.o.copiesReceived.Inc()
	_, _, err := n.eng.Execute(t, int(part), rpcproto.OpPut, req.Key, req.Value)
	if err != nil {
		resp.Status = rpcproto.StatusErr
		return scratch
	}
	resp.Status = rpcproto.StatusOK
	return scratch
}

func (n *Node) handleGet(t runtime.Task, req *rpcproto.Request, resp *rpcproto.Response, scratch []byte, tr *obs.Trace) []byte {
	v := n.view
	if req.Epoch != v.Epoch {
		n.nack(resp)
		return scratch
	}
	part := int(req.Partition)
	if n.myPos[part] < 0 || n.readRep[part] != n.cfg.ID {
		// Reads are served only at the partition's read replica (the most
		// downstream synced chain member): with synchronous chain acks a
		// value visible there is on every upstream replica, so reads are
		// committed reads.
		n.nack(resp)
		return scratch
	}
	n.stats.Gets++
	n.o.gets.Inc()
	val, _, err := n.eng.ExecuteTracedInto(t, part, rpcproto.OpGet, req.Key, nil, scratch[:0], tr)
	switch {
	case err == core.ErrNotFound:
		resp.Status = rpcproto.StatusNotFound
	case err != nil:
		resp.Status = rpcproto.StatusErr
	default:
		resp.Status = rpcproto.StatusOK
		resp.Value = val
		if cap(val) > cap(scratch) {
			scratch = val[:0]
		}
	}
	return scratch
}

func (n *Node) handleWrite(t runtime.Task, req *rpcproto.Request, resp *rpcproto.Response, scratch []byte, tr *obs.Trace) []byte {
	v := n.view
	if req.Epoch != v.Epoch {
		n.nack(resp)
		return scratch
	}
	part := int(req.Partition)
	pos := n.myPos[part]
	chain := n.chains[part]
	if pos < 0 || pos != int(req.Hop) {
		n.nack(resp)
		return scratch
	}
	p32 := req.Partition
	if !v.Synced(p32, n.cfg.ID) {
		// Raise the copy shield: this direct chain write is newer than any
		// in-flight COPY item for the same key.
		fm := n.fresh[p32]
		if fm == nil {
			fm = make(map[string]bool)
			n.fresh[p32] = fm
		}
		fm[string(req.Key)] = true
	}
	if req.Op == rpcproto.OpPut {
		n.stats.Puts++
		n.o.puts.Inc()
	} else {
		n.stats.Dels++
		n.o.dels.Inc()
	}
	_, _, err := n.eng.ExecuteTraced(t, part, req.Op, req.Key, req.Value, tr)
	if err != nil && err != core.ErrNotFound {
		resp.Status = rpcproto.StatusErr
		return scratch
	}
	status := rpcproto.StatusOK
	if err == core.ErrNotFound {
		status = rpcproto.StatusNotFound
	}
	if pos == len(chain)-1 {
		// Tail: the commitment point. With the synchronous acks below, an
		// OK reaching the client means every chain replica holds the write.
		resp.Status = status
		return scratch
	}
	// Forward downstream and ack upstream only after the rest of the chain
	// absorbed the write. A failed forward is ambiguous — the downstream
	// state is unknown — and surfaces as StatusErr, which the reliable
	// client will NOT retry for writes.
	n.stats.Forwards++
	n.o.forwards.Inc()
	next := chain[pos+1]
	addr := n.addrs[next]
	if addr == "" {
		resp.Status = rpcproto.StatusErr
		return scratch
	}
	// The struct copy carries the trace context (TraceID/TraceFlags) along
	// with the payload, so the whole chain executes under one trace.
	fwdReq := *req
	fwdReq.Hop++
	fstart := t.Now()
	dresp, derr := n.peer(addr).DoView(t, &fwdReq)
	if derr != nil {
		resp.Status = rpcproto.StatusErr
		return scratch
	}
	// Attribute the forward: the downstream response's spans already account
	// for the time the remote side spent, so the fwd span is the round trip
	// minus that — the node-to-node wire and scheduling cost. The remote
	// spans themselves ride resp.Spans upstream, which is how the issuing
	// client sees the whole chain in one trace.
	rtt := t.Now() - fstart
	tr.Span("fwd", 0, rtt-runtime.Time(rpcproto.DisjointTotalNS(dresp.Spans)))
	resp.Spans = append(resp.Spans, dresp.Spans...)
	// The most-downstream outcome is authoritative (the tail decides
	// NotFound for a DEL of a missing key, exactly as in-process).
	resp.Status = dresp.Status
	if dresp.Status == rpcproto.StatusNack {
		resp.Epoch = dresp.Epoch
	}
	return scratch
}
