package proc

import (
	"fmt"
	"sync"
	"time"

	"leed/internal/cluster"
	"leed/internal/obs"
	"leed/internal/rpcproto"
	"leed/internal/runtime"
	"leed/internal/runtime/wallclock"
	"leed/internal/transport"
)

// ManagerConfig describes the control-plane process.
type ManagerConfig struct {
	Env    *wallclock.Env
	Listen string // TCP address for heartbeat traffic (host:port, :0 ok)

	R       int // replication factor (default 3)
	NumPart int // global partitions (default 8)

	// HeartbeatTimeout is how long a silent node lives before the failure
	// detector removes it. Wallclock default 750ms — real scheduler jitter
	// makes the simulator's 20ms default evict healthy nodes.
	HeartbeatTimeout runtime.Time
	// CheckEvery is the failure-detector period. Default HeartbeatTimeout/4.
	CheckEvery runtime.Time

	// Obs receives the control plane's series (leed_mgr_* plus
	// leed_cluster_view_epoch). May be nil.
	Obs *obs.Registry

	// Fleet, when set, turns the manager into the cluster's metrics
	// aggregator: every member that advertises a metrics address in its
	// heartbeats is scraped on a poll loop and folded into the fleet's
	// merged registry (counters sum, histograms merge, gauges re-keyed per
	// instance). Nil disables aggregation.
	Fleet *obs.Fleet
	// MetricsPoll is the member-scrape cadence. Default 250ms.
	MetricsPoll time.Duration
}

// copyKey names one outstanding (partition, dest) migration in a mailbox.
type copyKey struct {
	part uint32
	dest cluster.NodeID
}

// Manager is the multi-process control plane: a cluster.Manager fed over
// TCP. All state below is mutated only in task or scheduler context — the
// wallclock Env's execution contract is the lock, exactly as in-process.
type Manager struct {
	cfg ManagerConfig
	env *wallclock.Env
	mgr *cluster.Manager
	ln  *transport.TCPListener

	// addrs is the address book: each member's advertised RPC address,
	// learned (and kept current) from its heartbeats.
	addrs map[cluster.NodeID]string
	// mailbox holds COPY commands per source node, redelivered in every
	// view push to that node until its heartbeat reports them Done.
	mailbox map[cluster.NodeID]map[copyKey]bool

	// metricsAddrs maps fleet instance names ("n3") to the metrics endpoint
	// each member advertised in its heartbeats. Written in task context,
	// read by the raw-goroutine scrape loop — hence the plain mutex rather
	// than the execution contract (the loop does blocking HTTP I/O and must
	// not occupy a task).
	metricsMu    sync.Mutex
	metricsAddrs map[string]string

	scrapeDone chan struct{}
	scrapeStop sync.Once
	scrapeWG   sync.WaitGroup

	epochG *obs.Gauge
	closed bool
}

// mailboxPeer is the manager's Peer binding for one node: views are pulled
// per heartbeat (SendView is a no-op), COPY commands land in the node's
// mailbox for redelivery.
type mailboxPeer struct {
	m  *Manager
	id cluster.NodeID
}

func (p mailboxPeer) SendView(*cluster.View) {}

func (p mailboxPeer) SendCopyCmd(part uint32, dest cluster.NodeID) {
	box := p.m.mailbox[p.id]
	if box == nil {
		box = make(map[copyKey]bool)
		p.m.mailbox[p.id] = box
	}
	box[copyKey{part: part, dest: dest}] = true
}

// StartManager binds the listener and launches the control plane: the
// membership state machine starts with no members (nodes auto-Join on their
// first heartbeat), the failure detector runs at wallclock cadence, and
// every accepted connection is served until it closes. Returns once the
// listener is bound; Addr() then reports the bound address.
func StartManager(cfg ManagerConfig) (*Manager, error) {
	if cfg.R == 0 {
		cfg.R = 3
	}
	if cfg.NumPart == 0 {
		cfg.NumPart = 8
	}
	if cfg.HeartbeatTimeout == 0 {
		cfg.HeartbeatTimeout = 750 * runtime.Millisecond
	}
	if cfg.CheckEvery == 0 {
		cfg.CheckEvery = cfg.HeartbeatTimeout / 4
	}
	// Heartbeat connections idle a full beat interval between frames, so the
	// read-idle reaper must be far above any sane cadence; it exists only to
	// collect conns whose peer died without a FIN.
	ln, err := transport.ListenTCPOpts(cfg.Env, cfg.Listen, transport.TCPOptions{
		ReadIdleTimeout: 30 * time.Second,
		WriteTimeout:    5 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	if cfg.MetricsPoll == 0 {
		cfg.MetricsPoll = 250 * time.Millisecond
	}
	m := &Manager{
		cfg:          cfg,
		env:          cfg.Env,
		ln:           ln,
		addrs:        make(map[cluster.NodeID]string),
		mailbox:      make(map[cluster.NodeID]map[copyKey]bool),
		metricsAddrs: make(map[string]string),
		scrapeDone:   make(chan struct{}),
		epochG:       cfg.Obs.Gauge("leed_cluster_view_epoch"),
	}
	m.mgr = cluster.NewManager(cluster.ManagerConfig{
		Env:              cfg.Env,
		R:                cfg.R,
		NumPart:          cfg.NumPart,
		HeartbeatTimeout: cfg.HeartbeatTimeout,
		CheckEvery:       cfg.CheckEvery,
		Obs:              cfg.Obs,
	}, nil)
	m.env.After(0, func() {
		m.mgr.Start()
		m.epochG.Set(int64(m.mgr.Epoch()))
	})
	m.env.Spawn("mgr-accept", func(t runtime.Task) {
		for {
			c, err := ln.Accept(t)
			if err != nil {
				return
			}
			if m.closed {
				c.Close()
				continue
			}
			m.env.Spawn("mgr-conn", func(t runtime.Task) { m.serveConn(t, c) })
		}
	})
	if cfg.Fleet != nil {
		m.scrapeWG.Add(1)
		go m.scrapeLoop()
	}
	return m, nil
}

// scrapeLoop polls every advertised member metrics endpoint and feeds the
// snapshots into the fleet. Runs on a raw goroutine (not the Env): each
// scrape is blocking HTTP I/O against another process, which must not
// occupy a task slot or wedge the heartbeat path.
func (m *Manager) scrapeLoop() {
	defer m.scrapeWG.Done()
	tick := time.NewTicker(m.cfg.MetricsPoll)
	defer tick.Stop()
	for {
		select {
		case <-m.scrapeDone:
			return
		case <-tick.C:
		}
		m.metricsMu.Lock()
		targets := make(map[string]string, len(m.metricsAddrs))
		for inst, addr := range m.metricsAddrs {
			targets[inst] = addr
		}
		m.metricsMu.Unlock()
		for inst, addr := range targets {
			snap, err := obs.FetchRaw("http://" + addr + "/metrics.raw.json")
			if err != nil {
				// Keep the target (it may be restarting) but drop its stale
				// snapshot: a dead member's last counters must not linger in
				// the merged view forever.
				m.cfg.Fleet.ScrapeError()
				m.cfg.Fleet.Remove(inst)
				continue
			}
			m.cfg.Fleet.Update(inst, snap)
		}
	}
}

// Addr returns the bound heartbeat address.
func (m *Manager) Addr() string { return m.ln.Addr() }

// Epoch returns the current view epoch. Task or scheduler context.
func (m *Manager) Epoch() uint64 { return m.mgr.Epoch() }

// Stats returns the control plane's cumulative counters. Task or scheduler
// context.
func (m *Manager) Stats() cluster.ManagerStats { return m.mgr.Stats() }

// Close stops accepting, halts the failure detector and the metrics scrape
// loop, and drops the state machine. Safe from any goroutine.
func (m *Manager) Close() error {
	m.scrapeStop.Do(func() { close(m.scrapeDone) })
	m.scrapeWG.Wait()
	m.ln.Close()
	m.env.After(0, func() {
		m.closed = true
		m.mgr.Stop()
	})
	return nil
}

// serveConn answers heartbeats on one connection until it dies. Everything
// here runs in task context, serialized with every other manager task by
// the execution contract.
func (m *Manager) serveConn(t runtime.Task, c transport.Conn) {
	defer c.Close()
	for {
		frame, err := c.Recv(t)
		if err != nil {
			return
		}
		kind, payload, _, err := rpcproto.DecodeFrame(frame)
		if err != nil || kind != rpcproto.FrameHeartbeat {
			// Undecodable or off-protocol bytes poison the stream: there is
			// no resync point past a bad frame. Hang up.
			rpcproto.PutBuf(frame)
			return
		}
		hb, _, err := rpcproto.DecodeHeartbeat(payload)
		rpcproto.PutBuf(frame)
		if err != nil {
			return
		}
		if m.closed {
			return
		}
		vp := m.handleHeartbeat(t, hb)
		if err := c.Send(t, rpcproto.AppendViewPushFrame(rpcproto.GetBuf(), vp)); err != nil {
			return
		}
	}
}

// handleHeartbeat feeds one beat through the membership machine and builds
// its view-push reply.
func (m *Manager) handleHeartbeat(t runtime.Task, hb *rpcproto.Heartbeat) *rpcproto.ViewPush {
	node := cluster.NodeID(hb.Node)
	var copies []rpcproto.CopyRef
	if hb.Node != 0 { // 0 = observer (a client fetching views)
		if hb.Addr != "" {
			m.addrs[node] = hb.Addr
		}
		if hb.MetricsAddr != "" {
			m.metricsMu.Lock()
			m.metricsAddrs[fmt.Sprintf("n%d", hb.Node)] = hb.MetricsAddr
			m.metricsMu.Unlock()
		}
		if _, known := m.mgr.State(node); !known {
			// First contact (or first after a failure removal): register the
			// mailbox peer before Join so COPY orders find it.
			m.mgr.SubscribeNode(node, mailboxPeer{m: m, id: node})
			m.mgr.Join(node)
		}
		m.mgr.OnHeartbeat(node, t.Now())
		for _, d := range hb.Done {
			key := copyKey{part: d.Partition, dest: cluster.NodeID(d.Dest)}
			if box := m.mailbox[node]; box[key] {
				delete(box, key)
				m.mgr.OnCopyDone(d.Partition, cluster.NodeID(d.Dest))
			}
		}
		for key := range m.mailbox[node] {
			copies = append(copies, rpcproto.CopyRef{Partition: key.part, Dest: uint64(key.dest)})
		}
	}
	v := m.mgr.View()
	m.epochG.Set(int64(v.Epoch))
	return pushFromView(v, m.addrs, copies)
}

// String summarizes the control plane for logs.
func (m *Manager) String() string {
	return fmt.Sprintf("proc-manager %s: %s", m.Addr(), m.mgr)
}
