// Package proc is the multi-process binding of the LEED cluster: the same
// node and manager logic the in-process goroutine cluster runs over the
// simulated fabric, split across real OS processes talking rpcproto frames
// over TCP.
//
// Topology: `leedctl manager` runs the control plane — the cluster.Manager
// membership state machine behind a TCP listener — and `leedctl node` runs
// one JBOF: engine partitions over in-memory simulated SSDs, a handler-mode
// server for client and peer traffic, and a heartbeat loop to the manager.
//
// Protocol: heartbeats are request-response on one connection. A node (or a
// view observer such as a client, using the Node-0 convention) sends
// FrameHeartbeat{Node, Epoch, Addr, Done}; the manager answers with
// FrameViewPush carrying the membership snapshot plus the COPY commands
// outstanding for that node. Views are therefore *pulled* at heartbeat
// cadence rather than pushed — the manager's Peer seam binds SendView to a
// no-op and SendCopyCmd to a per-node mailbox redelivered every push until
// the node reports it Done. Nodes auto-Join on their first beat, so a
// cluster assembles from nothing but processes pointed at the manager.
//
// Writes travel head→tail as FrameChainFwd peer frames with synchronous
// downstream acks: a node acks its upstream (ultimately the client) only
// after the rest of the chain has durably absorbed the write, so an acked
// write lives on every chain replica and survives any single SIGKILL — the
// invariant the chaos proc drills pin. Reads are served by the partition's
// read replica (the most-downstream synced chain member). Epoch and hop
// validation NACK stale traffic exactly as in the simulated cluster
// (§3.8.1); clients refresh their view on NACK and retry.
package proc

import (
	"errors"
	"sort"

	"leed/internal/cluster"
	"leed/internal/rpcproto"
	"leed/internal/runtime"
	"leed/internal/transport"
)

// hbExchange runs one heartbeat round trip on conn: send the beat, block
// for the manager's view-push reply. Both nodes and view observers
// (clients) use it. Task context.
func hbExchange(t runtime.Task, conn transport.Conn, hb *rpcproto.Heartbeat) (*rpcproto.ViewPush, error) {
	if err := conn.Send(t, rpcproto.AppendHeartbeatFrame(rpcproto.GetBuf(), hb)); err != nil {
		return nil, err
	}
	frame, err := conn.Recv(t)
	if err != nil {
		return nil, err
	}
	defer rpcproto.PutBuf(frame)
	kind, payload, _, err := rpcproto.DecodeFrame(frame)
	if err != nil {
		return nil, err
	}
	if kind != rpcproto.FrameViewPush {
		return nil, errors.New("proc: heartbeat reply is not a view push")
	}
	vp, _, err := rpcproto.DecodeViewPush(payload)
	return vp, err
}

// pushFromView flattens a view into its wire form. addrs supplies each
// member's advertised RPC address (the manager's registry); members with no
// known address yet are carried with an empty string and skipped by peers.
func pushFromView(v *cluster.View, addrs map[cluster.NodeID]string, copies []rpcproto.CopyRef) *rpcproto.ViewPush {
	vp := &rpcproto.ViewPush{
		Epoch:   v.Epoch,
		R:       uint8(v.R),
		NumPart: uint32(v.NumPart),
		Copies:  copies,
	}
	ids := make([]cluster.NodeID, 0, len(v.States))
	for id := range v.States {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		vp.Nodes = append(vp.Nodes, rpcproto.ViewNode{
			ID:    uint64(id),
			State: uint8(v.States[id]),
			Addr:  addrs[id],
		})
	}
	parts := make([]uint32, 0, len(v.Unsynced))
	for part := range v.Unsynced {
		parts = append(parts, part)
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i] < parts[j] })
	for _, part := range parts {
		set := v.Unsynced[part]
		nodes := make([]cluster.NodeID, 0, len(set))
		for id := range set {
			nodes = append(nodes, id)
		}
		sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
		for _, id := range nodes {
			vp.Unsynced = append(vp.Unsynced, rpcproto.UnsyncedRef{Partition: part, Node: uint64(id)})
		}
	}
	return vp
}

// viewFromPush rehydrates a decoded push into a cluster.View plus the
// address book it carried. The view's ring, chains, and read-replica logic
// are then byte-for-byte the same code the in-process cluster runs.
func viewFromPush(vp *rpcproto.ViewPush) (*cluster.View, map[cluster.NodeID]string) {
	states := make(map[cluster.NodeID]cluster.NodeState, len(vp.Nodes))
	addrs := make(map[cluster.NodeID]string, len(vp.Nodes))
	for _, n := range vp.Nodes {
		states[cluster.NodeID(n.ID)] = cluster.NodeState(n.State)
		if n.Addr != "" {
			addrs[cluster.NodeID(n.ID)] = n.Addr
		}
	}
	var unsynced map[uint32]map[cluster.NodeID]bool
	if len(vp.Unsynced) > 0 {
		unsynced = make(map[uint32]map[cluster.NodeID]bool)
		for _, u := range vp.Unsynced {
			set := unsynced[u.Partition]
			if set == nil {
				set = make(map[cluster.NodeID]bool)
				unsynced[u.Partition] = set
			}
			set[cluster.NodeID(u.Node)] = true
		}
	}
	return cluster.NewView(vp.Epoch, states, int(vp.R), int(vp.NumPart), unsynced), addrs
}

// ReadReplica returns the partition's read-serving member: the most
// downstream synced node of its chain (the tail when no migration is in
// flight). Both nodes and clients compute it from the same view, so reads
// land where §3.7's CRRS serves them.
func ReadReplica(v *cluster.View, part uint32) (cluster.NodeID, bool) {
	chain := v.Chain(part)
	for i := len(chain) - 1; i >= 0; i-- {
		if v.Synced(part, chain[i]) {
			return chain[i], true
		}
	}
	return 0, false
}
