package cluster

import (
	"fmt"
	"sort"

	"leed/internal/core"
	"leed/internal/engine"
	"leed/internal/flashsim"
	"leed/internal/netsim"
	"leed/internal/obs"
	"leed/internal/platform"
	"leed/internal/rpcproto"
	"leed/internal/runtime"
)

// Address plan: the control plane lives at addr 1, storage nodes at their
// NodeID (100, 101, ...), clients at 1000+.
const (
	managerAddr   netsim.Addr = 1
	firstNodeID   NodeID      = 100
	firstClientID netsim.Addr = 1000
)

// Config assembles a whole LEED cluster.
type Config struct {
	// Env is the runtime the cluster executes on: the sim kernel for
	// deterministic experiments, a wallclock Env for real goroutines.
	Env runtime.Env

	NumJBOFs    int // initial members
	SpareJBOFs  int // built but not joined (for join experiments)
	SSDsPerJBOF int
	SSDCapacity int64

	NumPartitions int // global partitions
	R             int // replication factor

	KeyLen, ValLen int // object shape, for geometry planning

	NumClients int

	// Feature toggles for the paper's ablations.
	CRRS        bool // §3.7 read shipping (Fig. 7)
	CRAQMode    bool // version queries instead of shipping (§3.7 ablation)
	FlowControl bool // §3.5 client-side load-aware scheduling (Fig. 8)
	Swap        bool // §3.6 intra-JBOF write swapping (Fig. 10)
	// TokensPerPartition sizes server-side admission; when FlowControl is
	// false it is inflated so the intra-JBOF active queue is effectively
	// unbounded (the "w/o LS" configuration of Fig. 8).
	TokensPerPartition int64

	SubCompactions int
	Prefetch       bool

	Platform platform.Spec // default Stingray

	HeartbeatTimeout runtime.Time

	// WrapDevice, when set, interposes on each node's SSDs (e.g. with a
	// flashsim.FaultInjector) — args are node id, drive index, and the raw
	// device; the returned device backs that drive's stores.
	WrapDevice func(NodeID, int, flashsim.Device) flashsim.Device
	// FlushEvery makes engines persist store superblocks periodically so a
	// crashed node has something to recover (0 = only on compaction).
	FlushEvery runtime.Time
	// ClientTimeout / ClientRetries override the clients' per-attempt
	// deadline and attempt budget (0 = client defaults).
	ClientTimeout runtime.Time
	ClientRetries int

	// Obs receives every component's metrics series. When nil, New creates
	// a registry, so an assembled cluster is always observable via Obs().
	Obs *obs.Registry
	// Tracer aggregates per-request stage spans into the registry's
	// leed_stage_* histograms. When nil, New creates one with a 1-in-16
	// whole-trace sampling cadence.
	Tracer *obs.Tracer
}

// Cluster holds every assembled component.
type Cluster struct {
	Env       runtime.Env
	Fabric    *netsim.Fabric
	Manager   *Manager
	Nodes     map[NodeID]*Node
	NodeIDs   []NodeID // initial members then spares, in id order
	Engines   map[NodeID]*engine.Engine
	Platforms map[NodeID]*platform.Node
	Clients   []*Client

	cfg Config
}

// New builds (but does not start) a cluster.
func New(cfg Config) *Cluster {
	if cfg.R == 0 {
		cfg.R = 3
	}
	if cfg.SSDsPerJBOF == 0 {
		cfg.SSDsPerJBOF = 4
	}
	if cfg.NumPartitions == 0 {
		cfg.NumPartitions = cfg.NumJBOFs * 4
	}
	if cfg.Platform.Name == "" {
		cfg.Platform = platform.Stingray()
	}
	if cfg.NumClients == 0 {
		cfg.NumClients = 1
	}
	if cfg.TokensPerPartition == 0 {
		cfg.TokensPerPartition = 48
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.NewRegistry()
	}
	if cfg.Tracer == nil {
		cfg.Tracer = obs.NewTracer(cfg.Obs, 16, 256)
	}
	env := cfg.Env
	c := &Cluster{
		Env:       env,
		Fabric:    netsim.New(env, netsim.Config{}),
		Nodes:     make(map[NodeID]*Node),
		Engines:   make(map[NodeID]*engine.Engine),
		Platforms: make(map[NodeID]*platform.Node),
		cfg:       cfg,
	}
	c.Fabric.Observe(cfg.Obs, cfg.Tracer)

	// Slot budget per node: worst-case replicated partitions with slack
	// for consistent-hashing imbalance and membership churn.
	total := cfg.NumJBOFs + cfg.SpareJBOFs
	avg := float64(cfg.NumPartitions*cfg.R) / float64(cfg.NumJBOFs)
	slots := int(avg*2) + 2
	partsPerSSD := (slots + cfg.SSDsPerJBOF - 1) / cfg.SSDsPerJBOF

	partBytes := cfg.SSDCapacity / int64(partsPerSSD)
	geo := core.PlanPartition(partBytes, cfg.KeyLen, cfg.ValLen, core.PlanOpts{})

	tokens := cfg.TokensPerPartition
	if !cfg.FlowControl {
		tokens = 1 << 30 // unbounded active queue: no admission control
	}

	var initial []NodeID
	for i := 0; i < total; i++ {
		id := firstNodeID + NodeID(i)
		plat := platform.NewNode(env, cfg.Platform, cfg.SSDsPerJBOF, cfg.SSDCapacity, int64(id))
		for si, ssd := range plat.SSDs {
			flashsim.Observe(ssd, cfg.Obs, cfg.Tracer, fmt.Sprintf("n%d.ssd%d", id, si))
		}
		var devs []flashsim.Device
		if cfg.WrapDevice != nil {
			for si, ssd := range plat.SSDs {
				devs = append(devs, cfg.WrapDevice(id, si, ssd))
			}
		}
		eng := engine.New(engine.Config{
			Env:                env,
			Node:               plat,
			Devices:            devs,
			Obs:                cfg.Obs,
			Tracer:             cfg.Tracer,
			ObsNode:            fmt.Sprintf("n%d", id),
			FlushEvery:         cfg.FlushEvery,
			PartitionsPerSSD:   partsPerSSD,
			Geometry:           geo,
			PartitionBytes:     partBytes,
			TokensPerPartition: tokens,
			SwapEnabled:        cfg.Swap,
			SubCompactions:     cfg.SubCompactions,
			Prefetch:           cfg.Prefetch,
		})
		ep := c.Fabric.AddNode(netsim.Addr(id), cfg.Platform.NICBitsPerS)
		node := NewNode(NodeConfig{
			Env: env, ID: id, Engine: eng, Endpoint: ep,
			Platform: plat, ManagerAddr: managerAddr,
			CRRS: cfg.CRRS, CRAQMode: cfg.CRAQMode,
			Obs: cfg.Obs, Tracer: cfg.Tracer,
		})
		c.Nodes[id] = node
		c.Engines[id] = eng
		c.Platforms[id] = plat
		c.NodeIDs = append(c.NodeIDs, id)
		if i < cfg.NumJBOFs {
			initial = append(initial, id)
		}
	}

	mgrEp := c.Fabric.AddNode(managerAddr, 10_000_000_000)
	c.Manager = NewManager(ManagerConfig{
		Env: env, Endpoint: mgrEp, R: cfg.R, NumPart: cfg.NumPartitions,
		HeartbeatTimeout: cfg.HeartbeatTimeout,
		Obs:              cfg.Obs,
	}, initial)
	for _, id := range c.NodeIDs {
		c.Manager.Subscribe(netsim.Addr(id))
	}

	for i := 0; i < cfg.NumClients; i++ {
		addr := firstClientID + netsim.Addr(i)
		ep := c.Fabric.AddNode(addr, 100_000_000_000)
		cl := NewClient(ClientConfig{
			Env: env, Tenant: uint16(i), Endpoint: ep,
			FlowControl: cfg.FlowControl, CRRS: cfg.CRRS,
			InitialTokens: cfg.TokensPerPartition,
			Timeout:       cfg.ClientTimeout,
			Retries:       cfg.ClientRetries,
			Obs:           cfg.Obs,
			Tracer:        cfg.Tracer,
		})
		c.Clients = append(c.Clients, cl)
		c.Manager.Subscribe(addr)
	}
	return c
}

// Start schedules the launch of every component at the current time. The
// launch itself runs in scheduler context (so it is safe to call Start from
// outside the execution contract on either backend); the initial view then
// propagates asynchronously. On the sim backend, run the kernel a few
// virtual milliseconds to settle; on wallclock, a task should AwaitReady
// before issuing operations.
func (c *Cluster) Start() {
	c.Env.After(0, func() {
		for _, id := range c.NodeIDs {
			c.Nodes[id].Start()
			c.Engines[id].Start()
		}
		for _, cl := range c.Clients {
			cl.Start()
		}
		c.Manager.Start()
	})
}

// AwaitReady blocks the task until every client holds a membership view (the
// cluster is usable) or the timeout elapses.
func (c *Cluster) AwaitReady(t runtime.Task, timeout runtime.Time) error {
	deadline := t.Now() + timeout
	for {
		ready := true
		for _, cl := range c.Clients {
			if cl.View() == nil {
				ready = false
				break
			}
		}
		if ready {
			return nil
		}
		if t.Now() >= deadline {
			return fmt.Errorf("cluster: not ready after %v", timeout)
		}
		t.Sleep(200 * runtime.Microsecond)
	}
}

// Shutdown winds the deployment down: the manager, clients, and nodes stop
// issuing work, engines halt their background procs, and a poison pill is
// flooded through the fabric so every parked poller drains. After Shutdown
// (plus in-flight timers expiring) a wallclock Env.Wait returns. Must run
// in task or scheduler context.
func (c *Cluster) Shutdown() {
	c.Manager.Stop()
	for _, cl := range c.Clients {
		cl.Stop()
	}
	for _, id := range c.NodeIDs {
		c.Nodes[id].Stop()
		c.Engines[id].Stop()
	}
	c.Fabric.Flood(stopMsg{})
}

// Join admits spare node id into the cluster (Fig. 9's join phase).
func (c *Cluster) Join(id NodeID) { c.Manager.Join(id) }

// Leave retires node id gracefully (Fig. 9's leave phase).
func (c *Cluster) Leave(id NodeID) { c.Manager.Leave(id) }

// Kill fail-stops a node; the heartbeat detector will notice (§3.8.2).
func (c *Cluster) Kill(id NodeID) { c.Nodes[id].Stop() }

// Crash fail-stops a node AND its engine's background procs, modeling a
// whole-JBOF power loss. DRAM state is gone; flash survives. Bring the node
// back with Restart once the manager has removed it.
func (c *Cluster) Crash(id NodeID) {
	c.Nodes[id].Stop()
	c.Engines[id].Stop()
}

// Restart revives a crashed node: each partition store is rebuilt from
// flash, and once recovery completes the engine's background procs resume
// and the node re-enters the membership via Manager.Join (§3.8.1 — it
// rejoins as a fresh member; COPY re-syncs it from surviving replicas). The
// returned event fires when recovery is done and the Join has been issued.
//
// It is an error to restart a node the manager still considers a member:
// failure detection hasn't fired yet, and chains would trust an amnesiac
// replica. Wait for removal first.
func (c *Cluster) Restart(id NodeID) (runtime.Event, error) {
	if st, still := c.Manager.State(id); still {
		return nil, fmt.Errorf("cluster: node %d still %v at the manager; wait for failure detection", id, st)
	}
	done := c.Nodes[id].Restart()
	done.OnFire(func(any) {
		// The engine restarts only after recovery: its compactors must not
		// flush pre-crash DRAM state over the region being recovered.
		c.Engines[id].Start()
		c.Manager.Join(id)
	})
	return done, nil
}

// ReplicaGet reads key directly out of node id's replica of a partition,
// bypassing the protocol. Drills use it to check replica agreement after
// quiescence; it returns core.ErrNotFound when the node has no such key and
// a false ok when it doesn't replicate the partition at all.
func (c *Cluster) ReplicaGet(p runtime.Task, id NodeID, part uint32, key []byte) ([]byte, bool, error) {
	n := c.Nodes[id]
	pid, ok := n.local[part]
	if !ok {
		return nil, false, nil
	}
	v, _, err := c.Engines[id].Execute(p, pid, rpcproto.OpGet, key, nil)
	return v, true, err
}

// Energy returns the backends' total Joules so far (clients and the
// control plane excluded, as in the paper's power measurements).
func (c *Cluster) Energy() float64 {
	var j float64
	for _, id := range c.NodeIDs {
		j += c.Platforms[id].Meter.Energy()
	}
	return j
}

// BackendTxBytes sums the storage nodes' transmitted bytes: the internal
// plus response traffic the CRAQ ablation compares against CRRS.
func (c *Cluster) BackendTxBytes() int64 {
	var total int64
	for _, id := range c.NodeIDs {
		total += c.Nodes[id].cfg.Endpoint.Stats().TxBytes
	}
	return total
}

// MemberIDs returns the manager's current chain-eligible members.
func (c *Cluster) MemberIDs() []NodeID {
	v := c.Manager.View()
	out := v.Members()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Obs returns the cluster's metrics registry.
func (c *Cluster) Obs() *obs.Registry { return c.cfg.Obs }

// Tracer returns the cluster's request tracer; its Attribution method
// yields the per-stage latency-attribution table.
func (c *Cluster) Tracer() *obs.Tracer { return c.cfg.Tracer }

// String summarizes the assembly.
func (c *Cluster) String() string {
	return fmt.Sprintf("cluster{jbofs=%d parts=%d R=%d clients=%d}",
		len(c.NodeIDs), c.cfg.NumPartitions, c.cfg.R, len(c.Clients))
}
