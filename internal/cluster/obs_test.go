package cluster

import (
	"bytes"
	"fmt"
	"testing"

	"leed/internal/runtime"
	"leed/internal/sim"
)

// runObsWorkload drives one deterministic put/get workload against a fresh
// sim cluster and returns the registry snapshot (JSON bytes), its listing,
// and the attribution table — the three artifacts the observability layer
// promises are byte-deterministic under sim.
func runObsWorkload(t *testing.T) (string, string, string) {
	t.Helper()
	k := sim.New()
	defer k.Close()
	c := newTestCluster(k, 0, nil)
	drive(t, k, 20*runtime.Second, func(p runtime.Task) {
		cl := c.Clients[0]
		for i := 0; i < 150; i++ {
			key := []byte(fmt.Sprintf("obs-%04d", i))
			if _, err := cl.Put(p, key, []byte(fmt.Sprintf("val-%d", i))); err != nil {
				t.Errorf("put %d: %v", i, err)
				return
			}
		}
		for i := 0; i < 150; i++ {
			key := []byte(fmt.Sprintf("obs-%04d", i))
			if _, _, err := cl.Get(p, key); err != nil {
				t.Errorf("get %d: %v", i, err)
				return
			}
		}
	})
	var j bytes.Buffer
	snap := c.Obs().Snapshot()
	if err := snap.WriteJSON(&j); err != nil {
		t.Fatal(err)
	}
	return j.String(), snap.String(), c.Tracer().Attribution().String()
}

// TestObsSnapshotDeterministic is the acceptance gate for the observability
// layer under sim: the same seed must yield a byte-identical metrics
// snapshot and latency-attribution table twice in a row. Any divergence
// means an instrument leaked scheduler interaction (or real time) into the
// simulation.
func TestObsSnapshotDeterministic(t *testing.T) {
	j1, s1, a1 := runObsWorkload(t)
	j2, s2, a2 := runObsWorkload(t)
	if j1 != j2 {
		t.Errorf("snapshot JSON diverged across identical seeded runs:\n--- run1\n%s\n--- run2\n%s", j1, j2)
	}
	if s1 != s2 {
		t.Errorf("snapshot listing diverged:\n--- run1\n%s\n--- run2\n%s", s1, s2)
	}
	if a1 != a2 {
		t.Errorf("attribution table diverged:\n--- run1\n%s\n--- run2\n%s", a1, a2)
	}
	if a1 == "" {
		t.Fatal("attribution table is empty; tracing is not wired through the cluster")
	}
	t.Logf("attribution:\n%s", a1)
}

// TestObsClusterSeriesPresent pins the series names the cluster stack is
// expected to publish, so a refactor that silently drops instrumentation
// fails loudly here (and the wallclock /metrics smoke in CI greps a matching
// list).
func TestObsClusterSeriesPresent(t *testing.T) {
	_, listing, attr := runObsWorkload(t)
	for _, series := range []string{
		"leed_client_ops_total",
		"leed_client_latency_ns",
		"leed_node_gets_total",
		"leed_node_puts_total",
		"leed_net_tx_msgs_total",
		"leed_net_rx_msgs_total",
		"leed_device_reads_total",
		"leed_device_writes_total",
		"leed_stage_queue_ns",
		"leed_stage_service_ns",
	} {
		if !contains(listing, series) {
			t.Errorf("snapshot missing series family %q:\n%s", series, listing)
		}
	}
	for _, stage := range []string{"client", "net", "node", "device"} {
		if !contains(attr, stage) {
			t.Errorf("attribution missing stage %q:\n%s", stage, attr)
		}
	}
}

func contains(s, sub string) bool { return bytes.Contains([]byte(s), []byte(sub)) }
