package cluster

import (
	"encoding/binary"
	"fmt"
	"sort"

	"leed/internal/core"
	"leed/internal/engine"
	"leed/internal/netsim"
	"leed/internal/obs"
	"leed/internal/platform"
	"leed/internal/rpcproto"
	"leed/internal/runtime"
)

// reqEnvelope carries a request through the fabric together with the
// requester's completion slot (the pre-allocated RDMA WRITE target, §3.5)
// and return address. The trace, when non-nil, accumulates per-stage spans
// as the request moves client -> net -> node -> engine -> device.
type reqEnvelope struct {
	req        *rpcproto.Request
	clientAddr netsim.Addr
	complete   runtime.Event
	trace      *obs.Trace
}

// viewMsg distributes a membership view.
type viewMsg struct{ view *View }

// hbMsg is a heartbeat beacon.
type hbMsg struct{ node NodeID }

// copyCmd directs a node to COPY one partition's data to dest.
type copyCmd struct {
	partition uint32
	dest      NodeID
}

// copyDone reports a finished COPY back to the control plane.
type copyDone struct {
	partition uint32
	dest      NodeID
}

// stopMsg is the shutdown poison pill: Cluster.Shutdown floods it through
// the fabric so every parked poller (including ones orphaned on a crashed
// node's abandoned RX queue) wakes up and exits. A receiver that sees it
// puts it back for its sibling pollers before returning.
type stopMsg struct{}

// NodeConfig wires one storage node.
type NodeConfig struct {
	Env         runtime.Env
	ID          NodeID
	Engine      *engine.Engine
	Endpoint    *netsim.Endpoint
	Platform    *platform.Node
	ManagerAddr netsim.Addr

	// CRRS enables chain replication with request shipping; when false,
	// GETs are served only by tails (§3.7 baseline).
	CRRS bool
	// CRAQMode replaces request shipping with CRAQ-style version queries
	// (Terrace & Freedman, ATC'09): a replica holding a dirty key asks the
	// tail for the committed state and then serves the read locally. The
	// paper rejects this design because it generates more internal traffic
	// across JBOFs (§3.7); the ablation bench quantifies that.
	CRAQMode bool

	RxCycles int64 // polling-core cycles to receive one message
	TxCycles int64 // polling-core cycles to send one message

	HeartbeatEvery runtime.Time
	// CopyBatch is the number of outstanding COPY transfers during
	// migration. Default 8.
	CopyBatch int

	// Obs receives the node's counter series (leed_node_*). May be nil;
	// the node then keeps unregistered instruments.
	Obs *obs.Registry
	// Tracer receives "node" stage observations for un-traced requests.
	Tracer *obs.Tracer
}

// NodeStats are cumulative counters.
type NodeStats struct {
	Gets, Puts, Dels  int64
	Shipped           int64 // CRRS GETs forwarded to the tail
	VersionQueries    int64 // CRAQ-mode round trips to the tail
	Nacks             int64
	Forwards          int64
	Acks              int64
	CopiesSent        int64
	CopiesReceived    int64
	DirtyCommitsAsNew int64 // dirty keys committed upon becoming tail
	CopyRetries       int64 // COPY items resent after a lost request/ack
	ShieldedCopies    int64 // COPY items dropped: a newer chain write was present
	Restarts          int64
	RecoveredParts    int64 // partitions rebuilt from flash on restart
	RecoveredSegments int64 // live segments replayed across those partitions
}

// Node is one LEED storage server: an engine plus the chain-replication and
// view logic that runs on the SmartNIC's polling and control cores.
type Node struct {
	cfg  NodeConfig
	env  runtime.Env
	view *View

	local     map[uint32]int // global partition -> engine partition id
	freeSlots []int
	dirty     map[uint32]map[string]int
	wasTail   map[uint32]bool
	// stale marks partitions this node no longer replicates. Their data is
	// kept — the control plane may still pick this node as the COPY source
	// for re-replication (§3.8.1: ranges are freed only after migration) —
	// and reclaimed lazily when the slot is needed or the partition
	// re-enters this node's chains.
	stale map[uint32]bool
	// fresh is the copy shield: keys this (still-unsynced) node absorbed
	// from live chain writes while a COPY into it is in flight. A COPY item
	// for such a key carries the migration snapshot — older than what the
	// chain already delivered — and must not overwrite it.
	fresh map[uint32]map[string]bool

	pollGate *gate
	stopped  bool
	// gen is bumped on Stop so procs from a dead incarnation (pollers,
	// heartbeats, copiers) drain instead of resuming after a Restart.
	gen     int
	numPoll int
	stats   NodeStats
	o       *nodeObs
}

// partTagKey is a reserved per-partition key holding the global partition
// number, written when a slot is allocated. It is what lets a restarted node
// identify which global partition each recovered store belonged to — slot
// assignment lives in DRAM and dies with the crash.
const partTagKey = "\x00leed:partition"

// gate serializes compute onto one core. run returns how long the task
// waited for the core — the "node" stage's queue component.
type gate struct {
	core *platform.Core
	res  runtime.Resource
}

func (g *gate) run(p runtime.Task, cycles int64) runtime.Time {
	t0 := p.Now()
	g.res.Acquire(p, 1)
	wait := p.Now() - t0
	g.core.RunCycles(p, cycles)
	g.res.Release(1)
	return wait
}

// nodeObs is the node's registry binding: one counter per NodeStats field,
// labeled by node, plus the tracer for "node" stage observations. It is
// always constructed (a nil registry hands back working unregistered
// counters), so call sites need no nil checks.
type nodeObs struct {
	tr *obs.Tracer

	gets, puts, dels *obs.Counter
	shipped          *obs.Counter
	versionQueries   *obs.Counter
	nacks            *obs.Counter
	forwards         *obs.Counter
	acks             *obs.Counter
	copiesSent       *obs.Counter
	copiesReceived   *obs.Counter
	dirtyCommits     *obs.Counter
	copyRetries      *obs.Counter
	shieldedCopies   *obs.Counter
	restarts         *obs.Counter
	recoveredParts   *obs.Counter
	recoveredSegs    *obs.Counter
}

func newNodeObs(reg *obs.Registry, tr *obs.Tracer, id NodeID) *nodeObs {
	node := fmt.Sprintf("n%d", id)
	c := func(name string) *obs.Counter { return reg.Counter(name, "node", node) }
	return &nodeObs{
		tr:             tr,
		gets:           c("leed_node_gets_total"),
		puts:           c("leed_node_puts_total"),
		dels:           c("leed_node_dels_total"),
		shipped:        c("leed_node_shipped_total"),
		versionQueries: c("leed_node_version_queries_total"),
		nacks:          c("leed_node_nacks_total"),
		forwards:       c("leed_node_forwards_total"),
		acks:           c("leed_node_acks_total"),
		copiesSent:     c("leed_node_copies_sent_total"),
		copiesReceived: c("leed_node_copies_received_total"),
		dirtyCommits:   c("leed_node_dirty_commits_total"),
		copyRetries:    c("leed_node_copy_retries_total"),
		shieldedCopies: c("leed_node_shielded_copies_total"),
		restarts:       c("leed_node_restarts_total"),
		recoveredParts: c("leed_node_recovered_partitions_total"),
		recoveredSegs:  c("leed_node_recovered_segments_total"),
	}
}

// span attributes one slice of polling-core work to the "node" stage: into
// the request's trace when it carries one, directly into the tracer
// otherwise — never both, so stage histograms count each slice once.
func (o *nodeObs) span(tr *obs.Trace, queue, service runtime.Time) {
	if tr != nil {
		tr.Span("node", queue, service)
		return
	}
	o.tr.Observe("node", queue, service)
}

// NewNode creates a node. Call Start to launch its procs.
func NewNode(cfg NodeConfig) *Node {
	if cfg.RxCycles == 0 {
		cfg.RxCycles = 1500
	}
	if cfg.TxCycles == 0 {
		cfg.TxCycles = 1200
	}
	if cfg.HeartbeatEvery == 0 {
		cfg.HeartbeatEvery = 5 * runtime.Millisecond
	}
	if cfg.CopyBatch == 0 {
		// Aggressive migration: the paper's COPY saturates spare bandwidth,
		// which is what produces Figure 9's visible throughput dips.
		cfg.CopyBatch = 32
	}
	n := &Node{
		cfg:     cfg,
		env:     cfg.Env,
		o:       newNodeObs(cfg.Obs, cfg.Tracer, cfg.ID),
		local:   make(map[uint32]int),
		dirty:   make(map[uint32]map[string]int),
		wasTail: make(map[uint32]bool),
		stale:   make(map[uint32]bool),
		fresh:   make(map[uint32]map[string]bool),
	}
	for pid := cfg.Engine.NumPartitions() - 1; pid >= 0; pid-- {
		n.freeSlots = append(n.freeSlots, pid)
	}
	return n
}

// ID returns the node's identifier.
func (n *Node) ID() NodeID { return n.cfg.ID }

// Stats returns cumulative counters.
func (n *Node) Stats() NodeStats { return n.stats }

// View returns the node's current membership view (may lag the manager's).
func (n *Node) View() *View { return n.view }

// Start launches polling procs on the NIC cores (which draw polling power
// permanently, §4.1) and the heartbeat proc on the control core.
func (n *Node) Start() {
	plat := n.cfg.Platform
	numSSD := len(plat.SSDs)
	first := numSSD
	last := len(plat.Cores) - 1 // control core
	if first >= last {
		first = last - 1
		if first < 0 {
			first = 0
		}
	}
	// One shared gate models the polling cores' aggregate packet budget.
	pollCore := plat.Cores[first]
	n.pollGate = &gate{core: pollCore, res: n.env.MakeResource(1)}
	n.numPoll = 0
	for i := first; i < last; i++ {
		plat.Cores[i].PinPolling()
		n.numPoll++
	}
	n.launch()
}

// launch spawns the polling and heartbeat procs for the current incarnation.
func (n *Node) launch() {
	gen := n.gen
	for i := 0; i < n.numPoll; i++ {
		n.env.Spawn(fmt.Sprintf("node%d-poll", n.cfg.ID), func(p runtime.Task) { n.pollLoop(p, gen) })
	}
	n.env.Spawn(fmt.Sprintf("node%d-hb", n.cfg.ID), func(p runtime.Task) { n.heartbeatLoop(p, gen) })
}

// Stop makes the node fail-stop: its endpoint drops traffic and its loops
// cease issuing work. The node can come back later via Restart.
func (n *Node) Stop() {
	n.stopped = true
	n.gen++
	n.cfg.Endpoint.SetDown(true)
}

// Restart revives a crashed node. DRAM state is gone — the RX queue is
// replaced, and the partition map, dirty bits, and view are rebuilt from
// scratch — while each engine partition replays its persistent log through
// core recovery (§3.8.1). Recovered partitions are identified by their
// on-flash partition tag and re-enter the map as *stale*: a COPY from a
// synced survivor is the sync authority when one exists, and recovery is
// what saves the data when none does. The returned event fires once
// recovery completes and the node's procs are running again; callers then
// re-introduce it to the control plane via Manager.Join.
//
// Restart must not be called before the manager has detected the failure
// and removed the node: a faster-than-detection restart would leave chains
// pointing at an amnesiac replica the view machinery believes is current.
func (n *Node) Restart() runtime.Event {
	if !n.stopped {
		panic(fmt.Sprintf("cluster: Restart of running node %d", n.cfg.ID))
	}
	n.stopped = false
	n.cfg.Endpoint.ResetRX()
	n.cfg.Endpoint.SetDown(false)
	n.view = nil
	n.local = make(map[uint32]int)
	n.dirty = make(map[uint32]map[string]int)
	n.wasTail = make(map[uint32]bool)
	n.stale = make(map[uint32]bool)
	n.fresh = make(map[uint32]map[string]bool)
	n.freeSlots = nil
	n.stats.Restarts++
	n.o.restarts.Inc()
	done := n.env.MakeEvent()
	n.env.Spawn(fmt.Sprintf("node%d-recover", n.cfg.ID), func(p runtime.Task) {
		eng := n.cfg.Engine
		var free []int
		for pid := 0; pid < eng.NumPartitions(); pid++ {
			segs, err := eng.RecoverPartition(p, pid)
			if err != nil || segs == 0 {
				free = append(free, pid)
				continue
			}
			tag, _, gerr := eng.Execute(p, pid, rpcproto.OpGet, []byte(partTagKey), nil)
			if gerr != nil || len(tag) != 4 {
				// Data without a tag (or a duplicate below) is unidentifiable
				// residue — e.g. a slot reset in DRAM whose flash region was
				// never rewritten. Hand the slot back empty.
				eng.ResetPartition(pid)
				free = append(free, pid)
				continue
			}
			part := binary.LittleEndian.Uint32(tag)
			if _, dup := n.local[part]; dup {
				eng.ResetPartition(pid)
				free = append(free, pid)
				continue
			}
			n.local[part] = pid
			n.stale[part] = true
			n.stats.RecoveredParts++
			n.o.recoveredParts.Inc()
			n.stats.RecoveredSegments += int64(segs)
			n.o.recoveredSegs.Add(int64(segs))
		}
		// Descending order so pops allocate the lowest pid first, matching a
		// fresh node's behavior.
		sort.Sort(sort.Reverse(sort.IntSlice(free)))
		n.freeSlots = free
		n.launch()
		done.Fire(nil)
	})
	return done
}

func (n *Node) heartbeatLoop(p runtime.Task, gen int) {
	for !n.stopped && n.gen == gen {
		n.cfg.Endpoint.Send(n.cfg.ManagerAddr, 64, &hbMsg{node: n.cfg.ID})
		p.Sleep(n.cfg.HeartbeatEvery)
	}
}

func (n *Node) pollLoop(p runtime.Task, gen int) {
	rx := n.cfg.Endpoint.RX()
	for {
		m := rx.Get(p).(*netsim.Message)
		// The poison check comes before the liveness check: a crashed node's
		// pollers are parked with stale generations, and each must re-put the
		// pill so its siblings on the same (possibly orphaned) queue wake too.
		if _, stop := m.Payload.(stopMsg); stop {
			rx.Put(m)
			return
		}
		if n.stopped || n.gen != gen {
			return
		}
		rx0 := p.Now()
		wait := n.pollGate.run(p, n.cfg.RxCycles)
		switch pl := m.Payload.(type) {
		case *reqEnvelope:
			env := pl
			n.o.span(env.trace, wait, p.Now()-rx0-wait)
			n.env.Spawn("handler", func(hp runtime.Task) { n.handle(hp, env) })
		case *viewMsg:
			n.applyView(p, pl.view)
		case *copyCmd:
			cmd := pl
			n.env.Spawn("copy", func(cp runtime.Task) { n.runCopy(cp, cmd) })
		}
	}
}

// localPid returns (and allocates, if needed) the engine partition backing
// a global partition this node replicates. When no free slot remains, the
// oldest stale partition is evicted.
func (n *Node) localPid(part uint32) (int, bool) {
	if pid, ok := n.local[part]; ok {
		return pid, true
	}
	if len(n.freeSlots) == 0 {
		evict := uint32(0)
		found := false
		for sp := range n.stale {
			if !found || sp < evict {
				evict, found = sp, true
			}
		}
		if !found {
			return 0, false
		}
		pid := n.local[evict]
		n.cfg.Engine.ResetPartition(pid)
		delete(n.local, evict)
		delete(n.stale, evict)
		delete(n.dirty, evict)
		delete(n.wasTail, evict)
		n.freeSlots = append(n.freeSlots, pid)
	}
	pid := n.freeSlots[len(n.freeSlots)-1]
	n.freeSlots = n.freeSlots[:len(n.freeSlots)-1]
	n.local[part] = pid
	return pid, true
}

// tagPartition persists the global partition number into the store so a
// restarted node can re-map recovered data (see partTagKey).
func (n *Node) tagPartition(p runtime.Task, part uint32, pid int) {
	tag := make([]byte, 4)
	binary.LittleEndian.PutUint32(tag, part)
	n.cfg.Engine.Execute(p, pid, rpcproto.OpPut, []byte(partTagKey), tag)
}

// materializePid is localPid plus the durable partition tag: freshly
// allocated slots are tagged before they absorb any data.
func (n *Node) materializePid(p runtime.Task, part uint32) (int, bool) {
	if pid, ok := n.local[part]; ok {
		return pid, true
	}
	pid, ok := n.localPid(part)
	if !ok {
		return 0, false
	}
	n.tagPartition(p, part, pid)
	return pid, true
}

// ensureFresh resets a stale partition before it absorbs data for a new
// chain membership, so resurrected slots never leak old objects.
func (n *Node) ensureFresh(p runtime.Task, part uint32) {
	if !n.stale[part] {
		return
	}
	if pid, ok := n.local[part]; ok {
		n.cfg.Engine.ResetPartition(pid)
		n.tagPartition(p, part, pid)
	}
	delete(n.stale, part)
	delete(n.dirty, part)
	delete(n.wasTail, part)
	delete(n.fresh, part)
}

// applyView installs a newer view: frees partitions the node no longer
// replicates and commits pending dirty keys on partitions where this node
// just became the tail (§3.8.2: the penultimate node keeps the dirty bit
// until it becomes the tail, which then commits the write).
func (n *Node) applyView(p runtime.Task, v *View) {
	if n.view != nil && v.Epoch <= n.view.Epoch {
		return
	}
	n.view = v
	// Iterate in sorted partition order: the ack sends below must happen in
	// a reproducible order for drills to replay bit-identically.
	parts := make([]uint32, 0, len(n.local))
	for part := range n.local {
		parts = append(parts, part)
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i] < parts[j] })
	for _, part := range parts {
		if v.ChainPos(part, n.cfg.ID) < 0 {
			// Keep the data: the control plane may still source a COPY
			// from it. It is reclaimed lazily (localPid/ensureFresh).
			n.stale[part] = true
		}
	}
	for _, part := range parts {
		if n.stale[part] {
			continue
		}
		if v.Synced(part, n.cfg.ID) {
			// Synced means the migration COPY has fully landed; the copy
			// shield has nothing left to protect.
			delete(n.fresh, part)
		}
		isTail := v.IsTail(part, n.cfg.ID)
		if isTail && !n.wasTail[part] {
			// Commit pending writes: clear dirty bits and propagate acks
			// backward so the rest of the chain unblocks reads.
			if dm := n.dirty[part]; len(dm) > 0 {
				chain := v.Chain(part)
				keys := make([]string, 0, len(dm))
				for key, cnt := range dm {
					if cnt > 0 {
						keys = append(keys, key)
					}
				}
				sort.Strings(keys)
				for _, key := range keys {
					n.stats.DirtyCommitsAsNew++
					n.o.dirtyCommits.Inc()
					if len(chain) > 1 {
						n.sendAck(p, chain[len(chain)-2], part, []byte(key))
					}
				}
				n.dirty[part] = make(map[string]int)
			}
		}
		n.wasTail[part] = isTail
	}
}

func (n *Node) setDirty(part uint32, key []byte) {
	dm := n.dirty[part]
	if dm == nil {
		dm = make(map[string]int)
		n.dirty[part] = dm
	}
	dm[string(key)]++
}

func (n *Node) clearDirty(part uint32, key []byte) {
	if dm := n.dirty[part]; dm != nil {
		if dm[string(key)] > 0 {
			dm[string(key)]--
		}
		if dm[string(key)] == 0 {
			delete(dm, string(key))
		}
	}
}

func (n *Node) isDirty(part uint32, key []byte) bool {
	dm := n.dirty[part]
	return dm != nil && dm[string(key)] > 0
}

// Dirty reports whether the key has an uncommitted write at this replica.
// Chaos drills use it to exclude in-flight keys from replica-agreement
// checks.
func (n *Node) Dirty(part uint32, key []byte) bool { return n.isDirty(part, key) }

// DirtyKeys counts keys currently marked dirty across the replica's
// partitions. After quiescence this is residue — marks whose backward ack
// was lost — which drills report as a metric.
func (n *Node) DirtyKeys() int {
	total := 0
	for _, dm := range n.dirty {
		for _, cnt := range dm {
			if cnt > 0 {
				total++
			}
		}
	}
	return total
}

// reply delivers a response to the client by one-sided WRITE into its
// pre-allocated completion slot, piggybacking available tokens (§3.5).
func (n *Node) reply(p runtime.Task, env *reqEnvelope, resp *rpcproto.Response) {
	if n.stopped {
		return
	}
	if resp.Epoch == 0 && n.view != nil {
		resp.Epoch = n.view.Epoch
	}
	if resp.Tokens == 0 {
		if pid, ok := n.local[env.req.Partition]; ok {
			resp.Tokens = int32(n.cfg.Engine.AvailableTokens(pid))
		}
	}
	tx0 := p.Now()
	wait := n.pollGate.run(p, n.cfg.TxCycles)
	n.o.span(env.trace, wait, p.Now()-tx0-wait)
	n.cfg.Endpoint.WriteTraced(env.clientAddr, resp.WireSize(), resp, env.complete, env.trace)
}

func (n *Node) nack(p runtime.Task, env *reqEnvelope) {
	n.stats.Nacks++
	n.o.nacks.Inc()
	epoch := uint64(0)
	if n.view != nil {
		epoch = n.view.Epoch
	}
	n.reply(p, env, &rpcproto.Response{ID: env.req.ID, Status: rpcproto.StatusNack, Epoch: epoch})
}

func (n *Node) sendAck(p runtime.Task, to NodeID, part uint32, key []byte) {
	if n.stopped {
		return
	}
	n.stats.Acks++
	n.o.acks.Inc()
	req := &rpcproto.Request{Op: rpcproto.OpAck, Partition: part, Key: key, Epoch: n.view.Epoch}
	n.pollGate.run(p, n.cfg.TxCycles)
	n.cfg.Endpoint.Send(netsim.Addr(to), req.WireSize(), &reqEnvelope{req: req})
}

// handle processes one request end to end on a handler proc.
func (n *Node) handle(p runtime.Task, env *reqEnvelope) {
	if n.stopped {
		return
	}
	req := env.req
	v := n.view
	if v == nil {
		n.nack(p, env)
		return
	}
	switch req.Op {
	case rpcproto.OpAck:
		n.handleAck(p, req)
	case rpcproto.OpCopy:
		n.handleCopy(p, env)
	case rpcproto.OpGet:
		n.handleGet(p, env)
	case rpcproto.OpPut, rpcproto.OpDel:
		n.handleWrite(p, env)
	default:
		n.reply(p, env, &rpcproto.Response{ID: req.ID, Status: rpcproto.StatusErr})
	}
}

func (n *Node) handleAck(p runtime.Task, req *rpcproto.Request) {
	n.clearDirty(req.Partition, req.Key)
	v := n.view
	pos := v.ChainPos(req.Partition, n.cfg.ID)
	if pos > 0 {
		n.sendAck(p, v.Chain(req.Partition)[pos-1], req.Partition, req.Key)
	}
}

func (n *Node) handleCopy(p runtime.Task, env *reqEnvelope) {
	req := env.req
	n.ensureFresh(p, req.Partition)
	pid, ok := n.materializePid(p, req.Partition)
	if !ok {
		n.reply(p, env, &rpcproto.Response{ID: req.ID, Status: rpcproto.StatusErr})
		return
	}
	if n.fresh[req.Partition][string(req.Key)] {
		// The chain already wrote a newer version of this key directly into
		// the joining replica; the COPY carries the older migration snapshot.
		// Ack without writing (§3.8.1's repair must not travel back in time).
		n.stats.ShieldedCopies++
		n.o.shieldedCopies.Inc()
		n.reply(p, env, &rpcproto.Response{ID: req.ID, Status: rpcproto.StatusOK})
		return
	}
	n.stats.CopiesReceived++
	n.o.copiesReceived.Inc()
	_, _, err := n.cfg.Engine.ExecuteTraced(p, pid, rpcproto.OpPut, req.Key, req.Value, env.trace)
	status := rpcproto.StatusOK
	if err != nil {
		status = rpcproto.StatusErr
	}
	n.reply(p, env, &rpcproto.Response{ID: req.ID, Status: status})
}

func (n *Node) handleWrite(p runtime.Task, env *reqEnvelope) {
	req := env.req
	v := n.view
	if req.Epoch != v.Epoch {
		n.nack(p, env)
		return
	}
	chain := v.Chain(req.Partition)
	pos := v.ChainPos(req.Partition, n.cfg.ID)
	if pos < 0 || pos != int(req.Hop) {
		n.nack(p, env)
		return
	}
	n.ensureFresh(p, req.Partition)
	pid, ok := n.materializePid(p, req.Partition)
	if !ok {
		n.reply(p, env, &rpcproto.Response{ID: req.ID, Status: rpcproto.StatusErr})
		return
	}
	if !v.Synced(req.Partition, n.cfg.ID) {
		// Raise the copy shield: this direct chain write is newer than any
		// in-flight COPY item for the same key.
		fm := n.fresh[req.Partition]
		if fm == nil {
			fm = make(map[string]bool)
			n.fresh[req.Partition] = fm
		}
		fm[string(req.Key)] = true
	}
	isTail := pos == len(chain)-1
	if !isTail {
		n.setDirty(req.Partition, req.Key)
	}
	if req.Op == rpcproto.OpPut {
		n.stats.Puts++
		n.o.puts.Inc()
	} else {
		n.stats.Dels++
		n.o.dels.Inc()
	}
	_, _, err := n.cfg.Engine.ExecuteTraced(p, pid, req.Op, req.Key, req.Value, env.trace)
	if err != nil && err != core.ErrNotFound {
		if !isTail {
			n.clearDirty(req.Partition, req.Key)
		}
		n.reply(p, env, &rpcproto.Response{ID: req.ID, Status: rpcproto.StatusErr})
		return
	}
	status := rpcproto.StatusOK
	if err == core.ErrNotFound {
		status = rpcproto.StatusNotFound
	}
	if !isTail {
		// Forward along the chain (§3.7).
		n.stats.Forwards++
		n.o.forwards.Inc()
		fwd := *req
		fwd.Hop++
		tx0 := p.Now()
		wait := n.pollGate.run(p, n.cfg.TxCycles)
		n.o.span(env.trace, wait, p.Now()-tx0-wait)
		n.cfg.Endpoint.SendTraced(netsim.Addr(chain[pos+1]), fwd.WireSize(),
			&reqEnvelope{req: &fwd, clientAddr: env.clientAddr, complete: env.complete, trace: env.trace},
			env.trace)
		return
	}
	// Tail: commitment point. Reply to the client and ack backward.
	n.reply(p, env, &rpcproto.Response{ID: req.ID, Status: status})
	if pos > 0 {
		n.sendAck(p, chain[pos-1], req.Partition, req.Key)
	}
}

func (n *Node) handleGet(p runtime.Task, env *reqEnvelope) {
	req := env.req
	v := n.view
	if req.Epoch != v.Epoch {
		n.nack(p, env)
		return
	}
	chain := v.Chain(req.Partition)
	pos := v.ChainPos(req.Partition, n.cfg.ID)
	if pos < 0 || !v.Synced(req.Partition, n.cfg.ID) {
		n.nack(p, env)
		return
	}
	isTail := pos == len(chain)-1
	if !isTail {
		if !n.cfg.CRRS {
			// Classic chain replication: only the tail serves reads.
			n.nack(p, env)
			return
		}
		if n.isDirty(req.Partition, req.Key) {
			if n.cfg.CRAQMode {
				// CRAQ-style: fetch the committed state from the tail,
				// then answer the client from here. One extra cross-JBOF
				// value transfer per dirty read — the traffic the paper's
				// shipping design avoids (§3.7).
				n.stats.VersionQueries++
				n.o.versionQueries.Inc()
				fwd := *req
				fwd.Shipped = true
				done := n.env.MakeEvent()
				n.pollGate.run(p, n.cfg.TxCycles)
				n.cfg.Endpoint.Send(netsim.Addr(chain[len(chain)-1]), fwd.WireSize(),
					&reqEnvelope{req: &fwd, clientAddr: n.cfg.Endpoint.Addr(), complete: done})
				deadline, cancel := runtime.CancelableTimer(n.env, 20*runtime.Millisecond)
				idx := runtime.WaitAny(p, done, deadline)
				cancel()
				if idx != 0 {
					n.reply(p, env, &rpcproto.Response{ID: req.ID, Status: rpcproto.StatusErr})
					return
				}
				resp := done.Value().(*netsim.Message).Payload.(*rpcproto.Response)
				n.reply(p, env, &rpcproto.Response{ID: req.ID, Status: resp.Status, Value: resp.Value})
				return
			}
			// Uncommitted write in flight: ship the read to the tail,
			// which always holds the latest committed value (§3.7).
			n.stats.Shipped++
			n.o.shipped.Inc()
			fwd := *req
			fwd.Shipped = true
			tx0 := p.Now()
			wait := n.pollGate.run(p, n.cfg.TxCycles)
			n.o.span(env.trace, wait, p.Now()-tx0-wait)
			n.cfg.Endpoint.SendTraced(netsim.Addr(chain[len(chain)-1]), fwd.WireSize(),
				&reqEnvelope{req: &fwd, clientAddr: env.clientAddr, complete: env.complete, trace: env.trace},
				env.trace)
			return
		}
	}
	pid, ok := n.materializePid(p, req.Partition)
	if !ok {
		n.reply(p, env, &rpcproto.Response{ID: req.ID, Status: rpcproto.StatusErr})
		return
	}
	n.stats.Gets++
	n.o.gets.Inc()
	val, _, err := n.cfg.Engine.ExecuteTraced(p, pid, rpcproto.OpGet, req.Key, nil, env.trace)
	switch {
	case err == core.ErrNotFound:
		n.reply(p, env, &rpcproto.Response{ID: req.ID, Status: rpcproto.StatusNotFound})
	case err != nil:
		n.reply(p, env, &rpcproto.Response{ID: req.ID, Status: rpcproto.StatusErr})
	default:
		n.reply(p, env, &rpcproto.Response{ID: req.ID, Status: rpcproto.StatusOK, Value: val})
	}
}

// copyAckTimeout bounds how long a COPY sender waits for any one item's
// acknowledgment before retrying or giving up on it for the round.
const copyAckTimeout = 25 * runtime.Millisecond

// copyRounds bounds COPY retry rounds; the final copyDone is sent even if
// items remain unacked (e.g. the destination died), so the control plane is
// never stuck waiting on a migration that cannot finish.
const copyRounds = 5

// runCopy streams one partition's objects to dest via COPY requests with a
// bounded outstanding window, then notifies the control plane (§3.8.1).
// COPY rides the same fabric as everything else, so requests and acks can be
// lost; unacked items are resent in bounded retry rounds — a silently
// dropped item would leave a permanent hole in the repaired replica.
func (n *Node) runCopy(p runtime.Task, cmd *copyCmd) {
	gen := n.gen
	pid, ok := n.local[cmd.partition]
	if !ok {
		n.cfg.Endpoint.Send(n.cfg.ManagerAddr, 64, &copyDone{partition: cmd.partition, dest: cmd.dest})
		return
	}
	store := n.cfg.Engine.Partition(pid).Store
	type copyItem struct{ key, val []byte }
	var items []copyItem
	store.Range(p, func(key, val []byte) bool {
		if n.stopped || n.gen != gen {
			return false
		}
		items = append(items, copyItem{
			key: append([]byte(nil), key...),
			val: append([]byte(nil), val...),
		})
		return true
	})
	for round := 0; round < copyRounds && len(items) > 0; round++ {
		if n.stopped || n.gen != gen {
			return
		}
		if round > 0 {
			n.stats.CopyRetries += int64(len(items))
			n.o.copyRetries.Add(int64(len(items)))
		}
		window := n.env.MakeResource(int64(n.cfg.CopyBatch))
		acked := make([]bool, len(items))
		var pending []runtime.Event
		for i, it := range items {
			if n.stopped || n.gen != gen {
				return
			}
			window.Acquire(p, 1)
			n.stats.CopiesSent++
			n.o.copiesSent.Inc()
			req := &rpcproto.Request{
				ID: uint64(n.stats.CopiesSent), Op: rpcproto.OpCopy,
				Partition: cmd.partition, Key: it.key, Value: it.val,
			}
			done := n.env.MakeEvent()
			i := i
			released := false
			releaseOnce := func() {
				if !released {
					released = true
					window.Release(1)
				}
			}
			// The window slot frees on ack OR timeout — a lost response must
			// not wedge the window and deadlock the whole migration.
			done.OnFire(func(v any) {
				if m, ok := v.(*netsim.Message); ok {
					if r, ok := m.Payload.(*rpcproto.Response); ok && r.Status == rpcproto.StatusOK {
						acked[i] = true
					}
				}
				releaseOnce()
			})
			n.env.After(copyAckTimeout, releaseOnce)
			pending = append(pending, done)
			n.pollGate.run(p, n.cfg.TxCycles)
			n.cfg.Endpoint.Send(netsim.Addr(cmd.dest), req.WireSize(),
				&reqEnvelope{req: req, clientAddr: n.cfg.Endpoint.Addr(), complete: done})
		}
		for _, ev := range pending {
			if !ev.Fired() {
				// Bound the wait: the destination may have failed mid-copy.
				deadline, cancel := runtime.CancelableTimer(n.env, copyAckTimeout)
				runtime.WaitAny(p, ev, deadline)
				cancel()
			}
		}
		left := items[:0]
		for i, it := range items {
			if !acked[i] {
				left = append(left, it)
			}
		}
		items = left
	}
	n.cfg.Endpoint.Send(n.cfg.ManagerAddr, 64, &copyDone{partition: cmd.partition, dest: cmd.dest})
}
