package cluster

import (
	"fmt"
	"sort"

	"leed/internal/core"
	"leed/internal/engine"
	"leed/internal/netsim"
	"leed/internal/platform"
	"leed/internal/rpcproto"
	"leed/internal/sim"
)

// reqEnvelope carries a request through the fabric together with the
// requester's completion slot (the pre-allocated RDMA WRITE target, §3.5)
// and return address.
type reqEnvelope struct {
	req        *rpcproto.Request
	clientAddr netsim.Addr
	complete   *sim.Event
}

// viewMsg distributes a membership view.
type viewMsg struct{ view *View }

// hbMsg is a heartbeat beacon.
type hbMsg struct{ node NodeID }

// copyCmd directs a node to COPY one partition's data to dest.
type copyCmd struct {
	partition uint32
	dest      NodeID
}

// copyDone reports a finished COPY back to the control plane.
type copyDone struct {
	partition uint32
	dest      NodeID
}

// NodeConfig wires one storage node.
type NodeConfig struct {
	Kernel      *sim.Kernel
	ID          NodeID
	Engine      *engine.Engine
	Endpoint    *netsim.Endpoint
	Platform    *platform.Node
	ManagerAddr netsim.Addr

	// CRRS enables chain replication with request shipping; when false,
	// GETs are served only by tails (§3.7 baseline).
	CRRS bool
	// CRAQMode replaces request shipping with CRAQ-style version queries
	// (Terrace & Freedman, ATC'09): a replica holding a dirty key asks the
	// tail for the committed state and then serves the read locally. The
	// paper rejects this design because it generates more internal traffic
	// across JBOFs (§3.7); the ablation bench quantifies that.
	CRAQMode bool

	RxCycles int64 // polling-core cycles to receive one message
	TxCycles int64 // polling-core cycles to send one message

	HeartbeatEvery sim.Time
	// CopyBatch is the number of outstanding COPY transfers during
	// migration. Default 8.
	CopyBatch int
}

// NodeStats are cumulative counters.
type NodeStats struct {
	Gets, Puts, Dels  int64
	Shipped           int64 // CRRS GETs forwarded to the tail
	VersionQueries    int64 // CRAQ-mode round trips to the tail
	Nacks             int64
	Forwards          int64
	Acks              int64
	CopiesSent        int64
	CopiesReceived    int64
	DirtyCommitsAsNew int64 // dirty keys committed upon becoming tail
}

// Node is one LEED storage server: an engine plus the chain-replication and
// view logic that runs on the SmartNIC's polling and control cores.
type Node struct {
	cfg  NodeConfig
	k    *sim.Kernel
	view *View

	local     map[uint32]int // global partition -> engine partition id
	freeSlots []int
	dirty     map[uint32]map[string]int
	wasTail   map[uint32]bool
	// stale marks partitions this node no longer replicates. Their data is
	// kept — the control plane may still pick this node as the COPY source
	// for re-replication (§3.8.1: ranges are freed only after migration) —
	// and reclaimed lazily when the slot is needed or the partition
	// re-enters this node's chains.
	stale map[uint32]bool

	pollGate *gate
	stopped  bool
	stats    NodeStats
}

// gate serializes compute onto one core.
type gate struct {
	core *platform.Core
	res  *sim.Resource
}

func (g *gate) run(p *sim.Proc, cycles int64) {
	g.res.Acquire(p, 1)
	g.core.RunCycles(p, cycles)
	g.res.Release(1)
}

// NewNode creates a node. Call Start to launch its procs.
func NewNode(cfg NodeConfig) *Node {
	if cfg.RxCycles == 0 {
		cfg.RxCycles = 1500
	}
	if cfg.TxCycles == 0 {
		cfg.TxCycles = 1200
	}
	if cfg.HeartbeatEvery == 0 {
		cfg.HeartbeatEvery = 5 * sim.Millisecond
	}
	if cfg.CopyBatch == 0 {
		// Aggressive migration: the paper's COPY saturates spare bandwidth,
		// which is what produces Figure 9's visible throughput dips.
		cfg.CopyBatch = 32
	}
	n := &Node{
		cfg:     cfg,
		k:       cfg.Kernel,
		local:   make(map[uint32]int),
		dirty:   make(map[uint32]map[string]int),
		wasTail: make(map[uint32]bool),
		stale:   make(map[uint32]bool),
	}
	for pid := cfg.Engine.NumPartitions() - 1; pid >= 0; pid-- {
		n.freeSlots = append(n.freeSlots, pid)
	}
	return n
}

// ID returns the node's identifier.
func (n *Node) ID() NodeID { return n.cfg.ID }

// Stats returns cumulative counters.
func (n *Node) Stats() NodeStats { return n.stats }

// View returns the node's current membership view (may lag the manager's).
func (n *Node) View() *View { return n.view }

// Start launches polling procs on the NIC cores (which draw polling power
// permanently, §4.1) and the heartbeat proc on the control core.
func (n *Node) Start() {
	plat := n.cfg.Platform
	numSSD := len(plat.SSDs)
	first := numSSD
	last := len(plat.Cores) - 1 // control core
	if first >= last {
		first = last - 1
		if first < 0 {
			first = 0
		}
	}
	// One shared gate models the polling cores' aggregate packet budget.
	pollCore := plat.Cores[first]
	n.pollGate = &gate{core: pollCore, res: sim.NewResource(n.k, 1)}
	for i := first; i < last; i++ {
		plat.Cores[i].PinPolling()
		n.k.Go(fmt.Sprintf("node%d-poll", n.cfg.ID), n.pollLoop)
	}
	n.k.Go(fmt.Sprintf("node%d-hb", n.cfg.ID), n.heartbeatLoop)
}

// Stop makes the node fail-stop: its endpoint drops traffic and its loops
// cease issuing work.
func (n *Node) Stop() {
	n.stopped = true
	n.cfg.Endpoint.SetDown(true)
}

func (n *Node) heartbeatLoop(p *sim.Proc) {
	for !n.stopped {
		n.cfg.Endpoint.Send(n.cfg.ManagerAddr, 64, &hbMsg{node: n.cfg.ID})
		p.Sleep(n.cfg.HeartbeatEvery)
	}
}

func (n *Node) pollLoop(p *sim.Proc) {
	rx := n.cfg.Endpoint.RX()
	for !n.stopped {
		m := rx.Get(p)
		if n.stopped {
			return
		}
		n.pollGate.run(p, n.cfg.RxCycles)
		switch pl := m.Payload.(type) {
		case *reqEnvelope:
			env := pl
			n.k.Go("handler", func(hp *sim.Proc) { n.handle(hp, env) })
		case *viewMsg:
			n.applyView(p, pl.view)
		case *copyCmd:
			cmd := pl
			n.k.Go("copy", func(cp *sim.Proc) { n.runCopy(cp, cmd) })
		}
	}
}

// localPid returns (and allocates, if needed) the engine partition backing
// a global partition this node replicates. When no free slot remains, the
// oldest stale partition is evicted.
func (n *Node) localPid(part uint32) (int, bool) {
	if pid, ok := n.local[part]; ok {
		return pid, true
	}
	if len(n.freeSlots) == 0 {
		evict := uint32(0)
		found := false
		for sp := range n.stale {
			if !found || sp < evict {
				evict, found = sp, true
			}
		}
		if !found {
			return 0, false
		}
		pid := n.local[evict]
		n.cfg.Engine.ResetPartition(pid)
		delete(n.local, evict)
		delete(n.stale, evict)
		delete(n.dirty, evict)
		delete(n.wasTail, evict)
		n.freeSlots = append(n.freeSlots, pid)
	}
	pid := n.freeSlots[len(n.freeSlots)-1]
	n.freeSlots = n.freeSlots[:len(n.freeSlots)-1]
	n.local[part] = pid
	return pid, true
}

// ensureFresh resets a stale partition before it absorbs data for a new
// chain membership, so resurrected slots never leak old objects.
func (n *Node) ensureFresh(part uint32) {
	if !n.stale[part] {
		return
	}
	if pid, ok := n.local[part]; ok {
		n.cfg.Engine.ResetPartition(pid)
	}
	delete(n.stale, part)
	delete(n.dirty, part)
	delete(n.wasTail, part)
}

// applyView installs a newer view: frees partitions the node no longer
// replicates and commits pending dirty keys on partitions where this node
// just became the tail (§3.8.2: the penultimate node keeps the dirty bit
// until it becomes the tail, which then commits the write).
func (n *Node) applyView(p *sim.Proc, v *View) {
	if n.view != nil && v.Epoch <= n.view.Epoch {
		return
	}
	n.view = v
	for part := range n.local {
		if v.ChainPos(part, n.cfg.ID) < 0 {
			// Keep the data: the control plane may still source a COPY
			// from it. It is reclaimed lazily (localPid/ensureFresh).
			n.stale[part] = true
		}
	}
	for part := range n.local {
		if n.stale[part] {
			continue
		}
		isTail := v.IsTail(part, n.cfg.ID)
		if isTail && !n.wasTail[part] {
			// Commit pending writes: clear dirty bits and propagate acks
			// backward so the rest of the chain unblocks reads.
			if dm := n.dirty[part]; len(dm) > 0 {
				chain := v.Chain(part)
				keys := make([]string, 0, len(dm))
				for key, cnt := range dm {
					if cnt > 0 {
						keys = append(keys, key)
					}
				}
				sort.Strings(keys)
				for _, key := range keys {
					n.stats.DirtyCommitsAsNew++
					if len(chain) > 1 {
						n.sendAck(p, chain[len(chain)-2], part, []byte(key))
					}
				}
				n.dirty[part] = make(map[string]int)
			}
		}
		n.wasTail[part] = isTail
	}
}

func (n *Node) setDirty(part uint32, key []byte) {
	dm := n.dirty[part]
	if dm == nil {
		dm = make(map[string]int)
		n.dirty[part] = dm
	}
	dm[string(key)]++
}

func (n *Node) clearDirty(part uint32, key []byte) {
	if dm := n.dirty[part]; dm != nil {
		if dm[string(key)] > 0 {
			dm[string(key)]--
		}
		if dm[string(key)] == 0 {
			delete(dm, string(key))
		}
	}
}

func (n *Node) isDirty(part uint32, key []byte) bool {
	dm := n.dirty[part]
	return dm != nil && dm[string(key)] > 0
}

// reply delivers a response to the client by one-sided WRITE into its
// pre-allocated completion slot, piggybacking available tokens (§3.5).
func (n *Node) reply(p *sim.Proc, env *reqEnvelope, resp *rpcproto.Response) {
	if resp.Epoch == 0 && n.view != nil {
		resp.Epoch = n.view.Epoch
	}
	if resp.Tokens == 0 {
		if pid, ok := n.local[env.req.Partition]; ok {
			resp.Tokens = int32(n.cfg.Engine.AvailableTokens(pid))
		}
	}
	n.pollGate.run(p, n.cfg.TxCycles)
	n.cfg.Endpoint.Write(env.clientAddr, resp.WireSize(), resp, env.complete)
}

func (n *Node) nack(p *sim.Proc, env *reqEnvelope) {
	n.stats.Nacks++
	epoch := uint64(0)
	if n.view != nil {
		epoch = n.view.Epoch
	}
	n.reply(p, env, &rpcproto.Response{ID: env.req.ID, Status: rpcproto.StatusNack, Epoch: epoch})
}

func (n *Node) sendAck(p *sim.Proc, to NodeID, part uint32, key []byte) {
	n.stats.Acks++
	req := &rpcproto.Request{Op: rpcproto.OpAck, Partition: part, Key: key, Epoch: n.view.Epoch}
	n.pollGate.run(p, n.cfg.TxCycles)
	n.cfg.Endpoint.Send(netsim.Addr(to), req.WireSize(), &reqEnvelope{req: req})
}

// handle processes one request end to end on a handler proc.
func (n *Node) handle(p *sim.Proc, env *reqEnvelope) {
	if n.stopped {
		return
	}
	req := env.req
	v := n.view
	if v == nil {
		n.nack(p, env)
		return
	}
	switch req.Op {
	case rpcproto.OpAck:
		n.handleAck(p, req)
	case rpcproto.OpCopy:
		n.handleCopy(p, env)
	case rpcproto.OpGet:
		n.handleGet(p, env)
	case rpcproto.OpPut, rpcproto.OpDel:
		n.handleWrite(p, env)
	default:
		n.reply(p, env, &rpcproto.Response{ID: req.ID, Status: rpcproto.StatusErr})
	}
}

func (n *Node) handleAck(p *sim.Proc, req *rpcproto.Request) {
	n.clearDirty(req.Partition, req.Key)
	v := n.view
	pos := v.ChainPos(req.Partition, n.cfg.ID)
	if pos > 0 {
		n.sendAck(p, v.Chain(req.Partition)[pos-1], req.Partition, req.Key)
	}
}

func (n *Node) handleCopy(p *sim.Proc, env *reqEnvelope) {
	req := env.req
	n.ensureFresh(req.Partition)
	pid, ok := n.localPid(req.Partition)
	if !ok {
		n.reply(p, env, &rpcproto.Response{ID: req.ID, Status: rpcproto.StatusErr})
		return
	}
	n.stats.CopiesReceived++
	_, _, err := n.cfg.Engine.Execute(p, pid, rpcproto.OpPut, req.Key, req.Value)
	status := rpcproto.StatusOK
	if err != nil {
		status = rpcproto.StatusErr
	}
	n.reply(p, env, &rpcproto.Response{ID: req.ID, Status: status})
}

func (n *Node) handleWrite(p *sim.Proc, env *reqEnvelope) {
	req := env.req
	v := n.view
	if req.Epoch != v.Epoch {
		n.nack(p, env)
		return
	}
	chain := v.Chain(req.Partition)
	pos := v.ChainPos(req.Partition, n.cfg.ID)
	if pos < 0 || pos != int(req.Hop) {
		n.nack(p, env)
		return
	}
	n.ensureFresh(req.Partition)
	pid, ok := n.localPid(req.Partition)
	if !ok {
		n.reply(p, env, &rpcproto.Response{ID: req.ID, Status: rpcproto.StatusErr})
		return
	}
	isTail := pos == len(chain)-1
	if !isTail {
		n.setDirty(req.Partition, req.Key)
	}
	if req.Op == rpcproto.OpPut {
		n.stats.Puts++
	} else {
		n.stats.Dels++
	}
	_, _, err := n.cfg.Engine.Execute(p, pid, req.Op, req.Key, req.Value)
	if err != nil && err != core.ErrNotFound {
		if !isTail {
			n.clearDirty(req.Partition, req.Key)
		}
		n.reply(p, env, &rpcproto.Response{ID: req.ID, Status: rpcproto.StatusErr})
		return
	}
	status := rpcproto.StatusOK
	if err == core.ErrNotFound {
		status = rpcproto.StatusNotFound
	}
	if !isTail {
		// Forward along the chain (§3.7).
		n.stats.Forwards++
		fwd := *req
		fwd.Hop++
		n.pollGate.run(p, n.cfg.TxCycles)
		n.cfg.Endpoint.Send(netsim.Addr(chain[pos+1]), fwd.WireSize(),
			&reqEnvelope{req: &fwd, clientAddr: env.clientAddr, complete: env.complete})
		return
	}
	// Tail: commitment point. Reply to the client and ack backward.
	n.reply(p, env, &rpcproto.Response{ID: req.ID, Status: status})
	if pos > 0 {
		n.sendAck(p, chain[pos-1], req.Partition, req.Key)
	}
}

func (n *Node) handleGet(p *sim.Proc, env *reqEnvelope) {
	req := env.req
	v := n.view
	if req.Epoch != v.Epoch {
		n.nack(p, env)
		return
	}
	chain := v.Chain(req.Partition)
	pos := v.ChainPos(req.Partition, n.cfg.ID)
	if pos < 0 || !v.Synced(req.Partition, n.cfg.ID) {
		n.nack(p, env)
		return
	}
	isTail := pos == len(chain)-1
	if !isTail {
		if !n.cfg.CRRS {
			// Classic chain replication: only the tail serves reads.
			n.nack(p, env)
			return
		}
		if n.isDirty(req.Partition, req.Key) {
			if n.cfg.CRAQMode {
				// CRAQ-style: fetch the committed state from the tail,
				// then answer the client from here. One extra cross-JBOF
				// value transfer per dirty read — the traffic the paper's
				// shipping design avoids (§3.7).
				n.stats.VersionQueries++
				fwd := *req
				fwd.Shipped = true
				done := n.k.NewEvent()
				n.pollGate.run(p, n.cfg.TxCycles)
				n.cfg.Endpoint.Send(netsim.Addr(chain[len(chain)-1]), fwd.WireSize(),
					&reqEnvelope{req: &fwd, clientAddr: n.cfg.Endpoint.Addr(), complete: done})
				idx := p.WaitAny(done, n.k.Timer(20*sim.Millisecond))
				if idx != 0 {
					n.reply(p, env, &rpcproto.Response{ID: req.ID, Status: rpcproto.StatusErr})
					return
				}
				resp := done.Value().(*netsim.Message).Payload.(*rpcproto.Response)
				n.reply(p, env, &rpcproto.Response{ID: req.ID, Status: resp.Status, Value: resp.Value})
				return
			}
			// Uncommitted write in flight: ship the read to the tail,
			// which always holds the latest committed value (§3.7).
			n.stats.Shipped++
			fwd := *req
			fwd.Shipped = true
			n.pollGate.run(p, n.cfg.TxCycles)
			n.cfg.Endpoint.Send(netsim.Addr(chain[len(chain)-1]), fwd.WireSize(),
				&reqEnvelope{req: &fwd, clientAddr: env.clientAddr, complete: env.complete})
			return
		}
	}
	pid, ok := n.localPid(req.Partition)
	if !ok {
		n.reply(p, env, &rpcproto.Response{ID: req.ID, Status: rpcproto.StatusErr})
		return
	}
	n.stats.Gets++
	val, _, err := n.cfg.Engine.Execute(p, pid, rpcproto.OpGet, req.Key, nil)
	switch {
	case err == core.ErrNotFound:
		n.reply(p, env, &rpcproto.Response{ID: req.ID, Status: rpcproto.StatusNotFound})
	case err != nil:
		n.reply(p, env, &rpcproto.Response{ID: req.ID, Status: rpcproto.StatusErr})
	default:
		n.reply(p, env, &rpcproto.Response{ID: req.ID, Status: rpcproto.StatusOK, Value: val})
	}
}

// runCopy streams one partition's objects to dest via COPY requests with a
// bounded outstanding window, then notifies the control plane (§3.8.1).
func (n *Node) runCopy(p *sim.Proc, cmd *copyCmd) {
	pid, ok := n.local[cmd.partition]
	if !ok {
		n.cfg.Endpoint.Send(n.cfg.ManagerAddr, 64, &copyDone{partition: cmd.partition, dest: cmd.dest})
		return
	}
	store := n.cfg.Engine.Partition(pid).Store
	window := sim.NewResource(n.k, int64(n.cfg.CopyBatch))
	var pending []*sim.Event
	store.Range(p, func(key, val []byte) bool {
		if n.stopped {
			return false
		}
		window.Acquire(p, 1)
		n.stats.CopiesSent++
		req := &rpcproto.Request{
			ID: uint64(n.stats.CopiesSent), Op: rpcproto.OpCopy,
			Partition: cmd.partition, Key: key, Value: val,
		}
		done := n.k.NewEvent()
		done.OnFire(func(any) { window.Release(1) })
		pending = append(pending, done)
		n.pollGate.run(p, n.cfg.TxCycles)
		n.cfg.Endpoint.Send(netsim.Addr(cmd.dest), req.WireSize(),
			&reqEnvelope{req: req, clientAddr: n.cfg.Endpoint.Addr(), complete: done})
		return true
	})
	for _, ev := range pending {
		if !ev.Fired() {
			// Bound the wait: the destination may have failed mid-copy.
			p.WaitAny(ev, n.k.Timer(50*sim.Millisecond))
		}
	}
	n.cfg.Endpoint.Send(n.cfg.ManagerAddr, 64, &copyDone{partition: cmd.partition, dest: cmd.dest})
}
