// Package cluster implements LEED's inter-JBOF layer: consistent hashing
// over virtual nodes, chain replication with request shipping (CRRS, §3.7),
// the flow-control-based front-end scheduler (§3.5, Algorithm 1), and the
// control plane handling membership, heartbeats, node join/leave, and
// failures (§3.8).
package cluster

import "sort"

// NodeID identifies one SmartNIC JBOF in the cluster.
type NodeID uint32

// ringPointsPerNode is the number of virtual points each node contributes
// to the consistent-hash ring, smoothing placement.
const ringPointsPerNode = 32

// mix64 is the splitmix64 finalizer: a strong avalanche for the small,
// structured integers (node ids, point indices) the ring hashes. FNV over
// such inputs clusters badly and skews placement.
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

func hash64(parts ...uint64) uint64 {
	h := uint64(0x1EED5EED1EED5EED)
	for _, p := range parts {
		h = mix64(h ^ mix64(p))
	}
	return h
}

// PartitionOf maps a key hash onto one of p global partitions.
func PartitionOf(keyHash uint64, p int) uint32 {
	return uint32(keyHash % uint64(p))
}

// ring is a consistent-hash ring over a member set.
type ring struct {
	points []ringPoint // sorted by pos
}

type ringPoint struct {
	pos  uint64
	node NodeID
}

// buildRing creates the ring for the given members.
func buildRing(members []NodeID) *ring {
	r := &ring{}
	for _, n := range members {
		for v := 0; v < ringPointsPerNode; v++ {
			r.points = append(r.points, ringPoint{pos: hash64(uint64(n)+0x9E3779B9, uint64(v)), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].pos != r.points[j].pos {
			return r.points[i].pos < r.points[j].pos
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

// Ring is the exported consistent-hash ring: the same virtual-node
// placement the simulated cluster uses, reusable outside it. The server
// front-end routes keys over a Ring whose members are its local engine
// partitions, so a single-process server and a multi-JBOF deployment
// place any given key identically — adding real nodes later only changes
// who the members are, never the hash walk.
type Ring struct {
	rg      *ring
	members []NodeID
}

// NewRing builds a ring over the given members.
func NewRing(members []NodeID) *Ring {
	ms := make([]NodeID, len(members))
	copy(ms, members)
	return &Ring{rg: buildRing(ms), members: ms}
}

// Members returns the member set the ring was built over.
func (r *Ring) Members() []NodeID { return r.members }

// OwnerOf returns the member owning the partition: the chain head.
func (r *Ring) OwnerOf(partition uint32) NodeID {
	return r.rg.chainFor(partition, 1)[0]
}

// ChainFor returns the partition's replication chain, head first: the
// first n distinct members clockwise from the partition's ring position.
func (r *Ring) ChainFor(partition uint32, n int) []NodeID {
	return r.rg.chainFor(partition, n)
}

// chainFor walks clockwise from the partition's ring position collecting
// the first r distinct nodes: the replication chain, head first (§3.7).
func (rg *ring) chainFor(partition uint32, r int) []NodeID {
	if len(rg.points) == 0 {
		return nil
	}
	pos := hash64(uint64(partition) + 0x1EED)
	idx := sort.Search(len(rg.points), func(i int) bool { return rg.points[i].pos >= pos })
	var chain []NodeID
	seen := make(map[NodeID]bool)
	for i := 0; i < len(rg.points) && len(chain) < r; i++ {
		pt := rg.points[(idx+i)%len(rg.points)]
		if !seen[pt.node] {
			seen[pt.node] = true
			chain = append(chain, pt.node)
		}
	}
	return chain
}
