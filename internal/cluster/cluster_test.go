package cluster

import (
	"fmt"
	"testing"

	"leed/internal/core"
	"leed/internal/netsim"
	"leed/internal/rpcproto"
	"leed/internal/runtime"
	"leed/internal/sim"
)

// simRunner is what the sim-backed tests need from the kernel: the runtime
// seam plus the ability to push virtual time forward.
type simRunner interface {
	runtime.Env
	Run(until ...runtime.Time) runtime.Time
}

// newTestCluster assembles and starts a small 3-JBOF cluster (plus optional
// spares), then settles the launch so client views are in place.
func newTestCluster(k simRunner, spares int, mutate func(*Config)) *Cluster {
	cfg := Config{
		Env:           k,
		NumJBOFs:      3,
		SpareJBOFs:    spares,
		SSDsPerJBOF:   4,
		SSDCapacity:   48 << 20,
		NumPartitions: 8,
		R:             3,
		KeyLen:        16,
		ValLen:        128,
		NumClients:    2,
		CRRS:          true,
		FlowControl:   true,
		Swap:          true,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	c := New(cfg)
	c.Start()
	k.Run(k.Now() + 5*runtime.Millisecond)
	return c
}

// drive runs fn on a task and pushes the kernel forward until it finishes
// or the budget elapses.
func drive(t *testing.T, k simRunner, budget runtime.Time, fn func(p runtime.Task)) {
	t.Helper()
	done := false
	k.Spawn("driver", func(p runtime.Task) {
		fn(p)
		done = true
	})
	deadline := k.Now() + budget
	for !done && k.Now() < deadline {
		k.Run(k.Now() + 10*runtime.Millisecond)
	}
	if !done {
		t.Fatal("driver did not finish within the simulated budget")
	}
}

func TestClusterPutGetDel(t *testing.T) {
	k := sim.New()
	defer k.Close()
	c := newTestCluster(k, 0, nil)
	drive(t, k, 2*runtime.Second, func(p runtime.Task) {
		cl := c.Clients[0]
		if _, err := cl.Put(p, []byte("alpha"), []byte("one")); err != nil {
			t.Errorf("put: %v", err)
			return
		}
		v, _, err := cl.Get(p, []byte("alpha"))
		if err != nil || string(v) != "one" {
			t.Errorf("get = %q, %v", v, err)
			return
		}
		if _, err := cl.Del(p, []byte("alpha")); err != nil {
			t.Errorf("del: %v", err)
			return
		}
		if _, _, err := cl.Get(p, []byte("alpha")); err != core.ErrNotFound {
			t.Errorf("get after del: %v", err)
		}
	})
}

func TestClusterManyKeysAcrossPartitions(t *testing.T) {
	k := sim.New()
	defer k.Close()
	c := newTestCluster(k, 0, nil)
	drive(t, k, 20*runtime.Second, func(p runtime.Task) {
		cl := c.Clients[0]
		for i := 0; i < 200; i++ {
			key := []byte(fmt.Sprintf("key-%04d", i))
			if _, err := cl.Put(p, key, []byte(fmt.Sprintf("val-%d", i))); err != nil {
				t.Errorf("put %d: %v", i, err)
				return
			}
		}
		for i := 0; i < 200; i++ {
			key := []byte(fmt.Sprintf("key-%04d", i))
			v, _, err := cl.Get(p, key)
			if err != nil || string(v) != fmt.Sprintf("val-%d", i) {
				t.Errorf("get %d = %q, %v", i, v, err)
				return
			}
		}
	})
}

func TestClusterWritesReplicateToAllChainMembers(t *testing.T) {
	k := sim.New()
	defer k.Close()
	c := newTestCluster(k, 0, nil)
	drive(t, k, 5*runtime.Second, func(p runtime.Task) {
		cl := c.Clients[0]
		key := []byte("replicated-key")
		if _, err := cl.Put(p, key, []byte("v")); err != nil {
			t.Errorf("put: %v", err)
			return
		}
		part := PartitionOf(core.HashKey(key), c.Manager.View().NumPart)
		chain := c.Manager.View().Chain(part)
		if len(chain) != 3 {
			t.Errorf("chain = %v", chain)
			return
		}
		// Every replica's local store must hold the key.
		for _, id := range chain {
			n := c.Nodes[id]
			pid, ok := n.local[part]
			if !ok {
				t.Errorf("node %d has no local partition %d", id, part)
				return
			}
			got, _, err := c.Engines[id].Execute(p, pid, rpcproto.OpGet, key, nil)
			if err != nil || string(got) != "v" {
				t.Errorf("replica %d: %q, %v", id, got, err)
				return
			}
		}
	})
}

func TestCRRSReadFromNonTailReplica(t *testing.T) {
	k := sim.New()
	defer k.Close()
	c := newTestCluster(k, 0, nil)
	drive(t, k, 10*runtime.Second, func(p runtime.Task) {
		cl := c.Clients[0]
		key := []byte("crrs-key")
		cl.Put(p, key, []byte("v"))
		// Let the backward acks clear the dirty bits before reading.
		p.Sleep(2 * runtime.Millisecond)
		// Bias the client's token estimates so a non-tail replica wins.
		part := PartitionOf(core.HashKey(key), cl.View().NumPart)
		chain := cl.View().Chain(part)
		head := chain[0]
		tail := chain[len(chain)-1]
		cl.tokens[target{node: head, part: part}] = 1000
		cl.tokens[target{node: tail, part: part}] = 1
		v, _, err := cl.Get(p, key)
		if err != nil || string(v) != "v" {
			t.Errorf("get = %q, %v", v, err)
			return
		}
		if c.Nodes[head].Stats().Gets == 0 {
			t.Error("head served no reads despite having the most tokens")
		}
	})
}

func TestCRRSShipsDirtyReads(t *testing.T) {
	k := sim.New()
	defer k.Close()
	c := newTestCluster(k, 0, nil)
	drive(t, k, 20*runtime.Second, func(p runtime.Task) {
		cl := c.Clients[0]
		key := []byte("hot-key")
		cl.Put(p, key, []byte("v0"))
		part := PartitionOf(core.HashKey(key), cl.View().NumPart)
		chain := cl.View().Chain(part)
		head := chain[0]
		// Force reads toward the head while a stream of writes keeps the
		// key dirty there.
		cl.tokens[target{node: head, part: part}] = 1 << 20
		writer := c.Clients[1]
		stop := false
		wdone := k.MakeEvent()
		k.Spawn("writer", func(wp runtime.Task) {
			i := 0
			for !stop {
				writer.Put(wp, key, []byte(fmt.Sprintf("v%d", i)))
				i++
			}
			wdone.Fire(nil)
		})
		shippedBefore := c.Nodes[head].Stats().Shipped
		for i := 0; i < 50; i++ {
			cl.tokens[target{node: head, part: part}] = 1 << 20
			if _, _, err := cl.Get(p, key); err != nil {
				t.Errorf("get: %v", err)
				break
			}
		}
		stop = true
		p.Wait(wdone)
		if c.Nodes[head].Stats().Shipped == shippedBefore {
			t.Error("no reads were shipped to the tail despite dirty keys")
		}
	})
}

func TestCRRSConsistencyUnderConcurrentWrites(t *testing.T) {
	// Monotonic-read check: a reader that saw version N must never later
	// observe an older committed version.
	k := sim.New()
	defer k.Close()
	c := newTestCluster(k, 0, nil)
	drive(t, k, 30*runtime.Second, func(p runtime.Task) {
		key := []byte("mono-key")
		writer, reader := c.Clients[0], c.Clients[1]
		writer.Put(p, key, []byte("00000"))
		part := PartitionOf(core.HashKey(key), reader.View().NumPart)
		chain := reader.View().Chain(part)
		lastCommitted := 0
		stop := false
		wdone := k.MakeEvent()
		k.Spawn("writer", func(wp runtime.Task) {
			for i := 1; i <= 40 && !stop; i++ {
				if _, err := writer.Put(wp, key, []byte(fmt.Sprintf("%05d", i))); err == nil {
					lastCommitted = i
				}
			}
			wdone.Fire(nil)
		})
		prev := 0
		for i := 0; i < 120 && !wdone.Fired(); i++ {
			// Rotate read preference across replicas to stress CRRS.
			for j, nd := range chain {
				reader.tokens[target{node: nd, part: part}] = int64(1000 * ((i+j)%len(chain) + 1))
			}
			v, _, err := reader.Get(p, key)
			if err != nil {
				t.Errorf("get: %v", err)
				break
			}
			var ver int
			fmt.Sscanf(string(v), "%05d", &ver)
			if ver < prev {
				t.Errorf("read went backward: %d after %d (committed=%d)", ver, prev, lastCommitted)
				break
			}
			prev = ver
		}
		stop = true
		p.Wait(wdone)
	})
}

func TestFlowControlThrottlesUnderOverload(t *testing.T) {
	k := sim.New()
	defer k.Close()
	c := newTestCluster(k, 0, func(cfg *Config) { cfg.TokensPerPartition = 8 })
	drive(t, k, 60*runtime.Second, func(p runtime.Task) {
		cl := c.Clients[0]
		done := make([]runtime.Event, 0, 64)
		for i := 0; i < 64; i++ {
			i := i
			ev := k.MakeEvent()
			done = append(done, ev)
			k.Spawn("burst", func(bp runtime.Task) {
				key := []byte("same-partition-key") // one hot partition
				cl.Do(bp, rpcproto.OpGet, key, nil)
				_ = i
				ev.Fire(nil)
			})
		}
		runtime.WaitAll(p, done...)
	})
	if c.Clients[0].Stats().Throttled == 0 {
		t.Fatal("flow control never throttled under a 64-deep burst at 8 tokens")
	}
}

func TestNoFlowControlNeverThrottles(t *testing.T) {
	k := sim.New()
	defer k.Close()
	c := newTestCluster(k, 0, func(cfg *Config) { cfg.FlowControl = false })
	drive(t, k, 30*runtime.Second, func(p runtime.Task) {
		cl := c.Clients[0]
		for i := 0; i < 50; i++ {
			cl.Put(p, []byte(fmt.Sprintf("k%d", i)), []byte("v"))
		}
	})
	if c.Clients[0].Stats().Throttled != 0 {
		t.Fatal("throttled despite flow control disabled")
	}
}

func TestNodeJoinPreservesData(t *testing.T) {
	k := sim.New()
	defer k.Close()
	c := newTestCluster(k, 1, nil)
	spare := c.NodeIDs[3]
	drive(t, k, 120*runtime.Second, func(p runtime.Task) {
		cl := c.Clients[0]
		for i := 0; i < 120; i++ {
			if _, err := cl.Put(p, []byte(fmt.Sprintf("key-%04d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
				t.Errorf("put: %v", err)
				return
			}
		}
		c.Join(spare)
		// Wait for the join to complete (spare becomes RUNNING).
		for i := 0; i < 2000; i++ {
			if st, ok := c.Manager.State(spare); ok && st == StateRunning {
				break
			}
			p.Sleep(runtime.Millisecond)
		}
		if st, _ := c.Manager.State(spare); st != StateRunning {
			t.Errorf("spare never reached RUNNING: %v", st)
			return
		}
		// All data still readable.
		for i := 0; i < 120; i++ {
			v, _, err := cl.Get(p, []byte(fmt.Sprintf("key-%04d", i)))
			if err != nil || string(v) != fmt.Sprintf("v%d", i) {
				t.Errorf("get %d = %q, %v", i, v, err)
				return
			}
		}
		// The new node must actually replicate partitions.
		if len(c.Nodes[spare].local) == 0 {
			t.Error("joined node replicates nothing")
		}
	})
}

func TestNodeLeavePreservesData(t *testing.T) {
	k := sim.New()
	defer k.Close()
	c := newTestCluster(k, 1, nil)
	spare := c.NodeIDs[3]
	drive(t, k, 240*runtime.Second, func(p runtime.Task) {
		cl := c.Clients[0]
		c.Join(spare)
		for i := 0; i < 2000; i++ {
			if st, ok := c.Manager.State(spare); ok && st == StateRunning {
				break
			}
			p.Sleep(runtime.Millisecond)
		}
		for i := 0; i < 100; i++ {
			if _, err := cl.Put(p, []byte(fmt.Sprintf("key-%04d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
				t.Errorf("put: %v", err)
				return
			}
		}
		c.Leave(spare)
		for i := 0; i < 3000; i++ {
			if _, ok := c.Manager.State(spare); !ok {
				break
			}
			p.Sleep(runtime.Millisecond)
		}
		if _, ok := c.Manager.State(spare); ok {
			t.Error("node never finished leaving")
			return
		}
		for i := 0; i < 100; i++ {
			v, _, err := cl.Get(p, []byte(fmt.Sprintf("key-%04d", i)))
			if err != nil || string(v) != fmt.Sprintf("v%d", i) {
				t.Errorf("get %d = %q, %v", i, v, err)
				return
			}
		}
	})
}

func TestFailureRecoversCommittedData(t *testing.T) {
	// Kill one node (it plays head/mid/tail across partitions); every
	// committed write must survive on the remaining replicas.
	k := sim.New()
	defer k.Close()
	c := newTestCluster(k, 1, nil)
	victim := c.NodeIDs[1]
	drive(t, k, 300*runtime.Second, func(p runtime.Task) {
		cl := c.Clients[0]
		committed := map[string]string{}
		for i := 0; i < 100; i++ {
			key := fmt.Sprintf("key-%04d", i)
			val := fmt.Sprintf("v%d", i)
			if _, err := cl.Put(p, []byte(key), []byte(val)); err == nil {
				committed[key] = val
			}
		}
		c.Kill(victim)
		// Wait for failure detection and re-replication to settle.
		for i := 0; i < 5000; i++ {
			if _, ok := c.Manager.State(victim); !ok {
				break
			}
			p.Sleep(runtime.Millisecond)
		}
		if _, ok := c.Manager.State(victim); ok {
			t.Error("failed node never removed from membership")
			return
		}
		p.Sleep(50 * runtime.Millisecond)
		for key, want := range committed {
			v, _, err := cl.Get(p, []byte(key))
			if err != nil || string(v) != want {
				t.Errorf("lost committed key %q: %q, %v", key, v, err)
				return
			}
		}
	})
}

func TestWritesContinueDuringFailover(t *testing.T) {
	k := sim.New()
	defer k.Close()
	c := newTestCluster(k, 1, nil)
	victim := c.NodeIDs[2]
	drive(t, k, 300*runtime.Second, func(p runtime.Task) {
		cl := c.Clients[0]
		for i := 0; i < 30; i++ {
			cl.Put(p, []byte(fmt.Sprintf("pre-%d", i)), []byte("v"))
		}
		c.Kill(victim)
		// Keep writing through the failure window; retries must absorb it.
		okCount := 0
		for i := 0; i < 60; i++ {
			if _, err := cl.Put(p, []byte(fmt.Sprintf("during-%d", i)), []byte("v")); err == nil {
				okCount++
			}
		}
		if okCount < 50 {
			t.Errorf("only %d/60 writes succeeded during failover", okCount)
		}
	})
}

func TestEpochMismatchNacks(t *testing.T) {
	k := sim.New()
	defer k.Close()
	c := newTestCluster(k, 0, nil)
	drive(t, k, 5*runtime.Second, func(p runtime.Task) {
		cl := c.Clients[0]
		key := []byte("nack-key")
		part := PartitionOf(core.HashKey(key), cl.View().NumPart)
		head := cl.View().Chain(part)[0]
		// Hand-craft a stale-epoch request.
		done := k.MakeEvent()
		req := &rpcproto.Request{ID: 1, Op: rpcproto.OpPut, Partition: part,
			Epoch: cl.View().Epoch + 99, Key: key, Value: []byte("v")}
		env := &reqEnvelope{req: req, clientAddr: cl.cfg.Endpoint.Addr(), complete: done}
		cl.cfg.Endpoint.Send(netsim.Addr(head), req.WireSize(), env)
		m := p.Wait(done)
		resp := m.(*netsim.Message).Payload.(*rpcproto.Response)
		if resp.Status != rpcproto.StatusNack {
			t.Errorf("status = %v, want NACK", resp.Status)
		}
	})
}

func TestWrongHopNacks(t *testing.T) {
	k := sim.New()
	defer k.Close()
	c := newTestCluster(k, 0, nil)
	drive(t, k, 5*runtime.Second, func(p runtime.Task) {
		cl := c.Clients[0]
		key := []byte("hop-key")
		v := cl.View()
		part := PartitionOf(core.HashKey(key), v.NumPart)
		tail := v.Chain(part)[len(v.Chain(part))-1]
		// Send a PUT with Hop=0 to the tail: position mismatch -> NACK.
		done := k.MakeEvent()
		req := &rpcproto.Request{ID: 1, Op: rpcproto.OpPut, Partition: part,
			Epoch: v.Epoch, Hop: 0, Key: key, Value: []byte("v")}
		env := &reqEnvelope{req: req, clientAddr: cl.cfg.Endpoint.Addr(), complete: done}
		cl.cfg.Endpoint.Send(netsim.Addr(tail), req.WireSize(), env)
		m := p.Wait(done)
		resp := m.(*netsim.Message).Payload.(*rpcproto.Response)
		if resp.Status != rpcproto.StatusNack {
			t.Errorf("status = %v, want NACK", resp.Status)
		}
	})
}

func TestClientTimesOutWhenChainDead(t *testing.T) {
	k := sim.New()
	defer k.Close()
	c := newTestCluster(k, 0, func(cfg *Config) { cfg.HeartbeatTimeout = 10 * runtime.Second })
	drive(t, k, 120*runtime.Second, func(p runtime.Task) {
		cl := c.Clients[0]
		cl.Put(p, []byte("k"), []byte("v"))
		// Kill every node; the slow failure detector will not save us, so
		// the client must exhaust retries and return ErrTimeout.
		for _, id := range c.NodeIDs {
			c.Kill(id)
		}
		cl.cfg.Timeout = 5 * runtime.Millisecond
		cl.cfg.Retries = 3
		if _, _, err := cl.Get(p, []byte("k")); err != ErrTimeout {
			t.Errorf("err = %v, want ErrTimeout", err)
		}
	})
	if c.Clients[0].Stats().Timeouts == 0 {
		t.Fatal("no timeouts recorded")
	}
}

func TestClientStatsAccumulate(t *testing.T) {
	k := sim.New()
	defer k.Close()
	c := newTestCluster(k, 0, nil)
	drive(t, k, 20*runtime.Second, func(p runtime.Task) {
		cl := c.Clients[0]
		for i := 0; i < 20; i++ {
			cl.Put(p, []byte(fmt.Sprintf("k%d", i)), []byte("v"))
		}
		if cl.Stats().Ops != 20 {
			t.Errorf("ops = %d", cl.Stats().Ops)
		}
	})
}

func TestManagerStringAndState(t *testing.T) {
	k := sim.New()
	defer k.Close()
	c := newTestCluster(k, 0, nil)
	if c.Manager.String() == "" {
		t.Fatal("empty manager string")
	}
	if st, ok := c.Manager.State(c.NodeIDs[0]); !ok || st != StateRunning {
		t.Fatalf("state = %v, %v", st, ok)
	}
	if _, ok := c.Manager.State(9999); ok {
		t.Fatal("unknown node has state")
	}
	if c.String() == "" {
		t.Fatal("empty cluster string")
	}
}

func TestLocalPidEvictsStaleSlots(t *testing.T) {
	// Exhaust free slots, mark partitions stale, and verify eviction
	// reuses them for new ranges.
	k := sim.New()
	defer k.Close()
	c := newTestCluster(k, 0, nil)
	n := c.Nodes[c.NodeIDs[0]]
	drive(t, k, 10*runtime.Second, func(p runtime.Task) {
		// Allocate every free slot to synthetic partitions.
		base := uint32(1000)
		var got int
		for i := uint32(0); ; i++ {
			if _, ok := n.localPid(base + i); !ok {
				break
			}
			got++
		}
		if got == 0 {
			t.Error("no slots allocated")
			return
		}
		// No slots left and nothing stale: allocation fails.
		if _, ok := n.localPid(base + 9999); ok {
			t.Error("allocation succeeded with no free or stale slots")
			return
		}
		// Mark one synthetic partition stale; allocation must evict it.
		n.stale[base] = true
		pid, ok := n.localPid(base + 9999)
		if !ok {
			t.Error("eviction did not free a slot")
			return
		}
		_ = pid
		if _, still := n.local[base]; still {
			t.Error("evicted partition still mapped")
		}
	})
}

func TestEnsureFreshResetsRejoinedPartition(t *testing.T) {
	k := sim.New()
	defer k.Close()
	c := newTestCluster(k, 0, nil)
	n := c.Nodes[c.NodeIDs[0]]
	drive(t, k, 10*runtime.Second, func(p runtime.Task) {
		cl := c.Clients[0]
		key := []byte("fresh-key")
		cl.Put(p, key, []byte("v"))
		part := PartitionOf(core.HashKey(key), c.Manager.View().NumPart)
		pid, ok := n.local[part]
		if !ok {
			t.Error("node does not replicate the partition")
			return
		}
		before := c.Engines[n.ID()].Partition(pid).Store.Objects()
		if before == 0 {
			t.Error("store empty before reset")
			return
		}
		// Simulate leave-then-rejoin: stale, then fresh data arrives.
		n.stale[part] = true
		n.ensureFresh(p, part)
		// The only survivor is the freshly rewritten partition tag.
		after := c.Engines[n.ID()].Partition(pid).Store.Objects()
		if after != 1 {
			t.Errorf("stale data survived ensureFresh: %d objects", after)
		}
		if _, _, err := c.Engines[n.ID()].Execute(p, pid, rpcproto.OpGet, key, nil); err == nil {
			t.Error("stale key readable after ensureFresh")
		}
		if n.stale[part] {
			t.Error("stale flag not cleared")
		}
	})
}

func TestReplicaConvergenceAfterChurn(t *testing.T) {
	// After a join, a leave, and a failure, every partition's synced
	// replicas must agree with what clients can read.
	k := sim.New()
	defer k.Close()
	c := newTestCluster(k, 2, nil)
	spare1, spare2 := c.NodeIDs[3], c.NodeIDs[4]
	drive(t, k, 600*runtime.Second, func(p runtime.Task) {
		cl := c.Clients[0]
		committed := map[string]string{}
		write := func(tag string, n int) {
			for i := 0; i < n; i++ {
				key := fmt.Sprintf("%s-%03d", tag, i)
				val := fmt.Sprintf("v-%s-%d", tag, i)
				if _, err := cl.Put(p, []byte(key), []byte(val)); err == nil {
					committed[key] = val
				}
			}
		}
		waitState := func(id NodeID, want string) {
			for i := 0; i < 5000; i++ {
				st, ok := c.Manager.State(id)
				if want == "gone" && !ok {
					return
				}
				if ok && st.String() == want {
					return
				}
				p.Sleep(runtime.Millisecond)
			}
			t.Errorf("node %d never reached %s", id, want)
		}
		write("pre", 60)
		c.Join(spare1)
		waitState(spare1, "RUNNING")
		write("mid", 60)
		c.Join(spare2)
		waitState(spare2, "RUNNING")
		c.Leave(spare1)
		waitState(spare1, "gone")
		write("post", 60)
		c.Kill(c.NodeIDs[0])
		waitState(c.NodeIDs[0], "gone")
		p.Sleep(100 * runtime.Millisecond)

		// Client-visible state: every committed write readable.
		for key, want := range committed {
			v, _, err := cl.Get(p, []byte(key))
			if err != nil || string(v) != want {
				t.Errorf("committed %q = %q, %v (want %q)", key, v, err, want)
				return
			}
		}
		// Replica agreement: all synced chain members hold the same value.
		view := c.Manager.View()
		for key, want := range committed {
			part := PartitionOf(core.HashKey([]byte(key)), view.NumPart)
			for _, id := range view.Chain(part) {
				if !view.Synced(part, id) {
					continue
				}
				n := c.Nodes[id]
				pid, ok := n.local[part]
				if !ok {
					continue // not yet materialized; COPY would fill it
				}
				v, _, err := c.Engines[id].Execute(p, pid, rpcproto.OpGet, []byte(key), nil)
				if err != nil || string(v) != want {
					t.Errorf("replica %d diverges on %q: %q, %v (want %q)", id, key, v, err, want)
					return
				}
			}
		}
	})
}

func TestDirtyBitsDrainAfterQuiescence(t *testing.T) {
	// §3.7: acks propagate backward and clear dirty bits; once writes
	// stop, no replica should hold dirty state (leaks would force
	// shipping forever).
	k := sim.New()
	defer k.Close()
	c := newTestCluster(k, 0, nil)
	drive(t, k, 60*runtime.Second, func(p runtime.Task) {
		cl := c.Clients[0]
		for i := 0; i < 150; i++ {
			if _, err := cl.Put(p, []byte(fmt.Sprintf("k%03d", i)), []byte("v")); err != nil {
				t.Errorf("put: %v", err)
				return
			}
		}
		p.Sleep(20 * runtime.Millisecond) // let trailing acks propagate
		for _, id := range c.NodeIDs {
			n := c.Nodes[id]
			for part, dm := range n.dirty {
				for key, cnt := range dm {
					if cnt > 0 {
						t.Errorf("node %d partition %d: dirty leak on %q (%d)", id, part, key, cnt)
						return
					}
				}
			}
		}
	})
}
