package cluster

import (
	"fmt"
	"strings"
	"testing"

	"leed/internal/rpcproto"
	"leed/internal/runtime"
	"leed/internal/sim"
)

// waitFor spins the driver until cond holds or ~budget elapses.
func waitFor(p runtime.Task, budget runtime.Time, cond func() bool) bool {
	deadline := p.Now() + budget
	for p.Now() < deadline {
		if cond() {
			return true
		}
		p.Sleep(runtime.Millisecond)
	}
	return cond()
}

func TestCrashRestartRejoinsAndKeepsAckedWrites(t *testing.T) {
	k := sim.New()
	defer k.Close()
	c := newTestCluster(k, 0, func(cfg *Config) {
		cfg.FlushEvery = 2 * runtime.Millisecond
	})
	victim := c.NodeIDs[0]
	drive(t, k, 120*runtime.Second, func(p runtime.Task) {
		cl := c.Clients[0]
		acked := map[string]string{}
		for i := 0; i < 40; i++ {
			key := fmt.Sprintf("crash-%03d", i)
			val := fmt.Sprintf("v%d", i)
			if _, err := cl.Put(p, []byte(key), []byte(val)); err == nil {
				acked[key] = val
			}
		}
		if len(acked) == 0 {
			t.Error("no writes acknowledged before the crash")
			return
		}
		// Let periodic flushes persist superblocks so the crashed node has
		// something to replay.
		p.Sleep(10 * runtime.Millisecond)

		c.Crash(victim)
		if _, err := c.Restart(victim); err == nil {
			t.Error("Restart before failure detection should be refused")
			return
		}
		if !waitFor(p, 2*runtime.Second, func() bool {
			_, still := c.Manager.State(victim)
			return !still
		}) {
			t.Error("manager never removed the crashed node")
			return
		}
		done, err := c.Restart(victim)
		if err != nil {
			t.Errorf("Restart: %v", err)
			return
		}
		if !done.Fired() {
			p.Wait(done)
		}
		st := c.Nodes[victim].Stats()
		if st.Restarts != 1 {
			t.Errorf("Restarts = %d, want 1", st.Restarts)
		}
		if st.RecoveredParts == 0 {
			t.Error("restart recovered no partitions despite periodic flushes")
		}
		// The node rejoins via Manager.Join; wait until it is RUNNING and
		// all re-sync copies have drained.
		if !waitFor(p, 10*runtime.Second, func() bool {
			s, ok := c.Manager.State(victim)
			return ok && s == StateRunning && c.Manager.PendingCopies() == 0
		}) {
			t.Errorf("rejoined node never converged: %s", c.Manager)
			return
		}
		// No acknowledged write was lost across the crash-restart cycle
		// (only one failure overlapped: well within R-1 = 2).
		for key, want := range acked {
			got, _, err := cl.Get(p, []byte(key))
			if err != nil {
				t.Errorf("Get(%s) after restart: %v", key, err)
				return
			}
			if string(got) != want {
				t.Errorf("Get(%s) = %q, want %q", key, got, want)
			}
		}
		// And the revived cluster still accepts writes.
		if _, err := cl.Put(p, []byte("post-restart"), []byte("ok")); err != nil {
			t.Errorf("write after restart: %v", err)
		}
		if lost := c.Manager.Stats().PartitionsLost; lost != 0 {
			t.Errorf("PartitionsLost = %d on a single-failure drill", lost)
		}
	})
}

func TestPartitionsLostWhenNoSyncedSurvivor(t *testing.T) {
	// Kill every original replica, then join spares whose re-sync copies
	// can never complete (their sources are dead): when the originals are
	// removed, some chain has no synced member left to source a repair.
	k := sim.New()
	defer k.Close()
	c := newTestCluster(k, 3, nil)
	drive(t, k, 30*runtime.Second, func(p runtime.Task) {
		for _, id := range c.NodeIDs[:3] {
			c.Kill(id)
		}
		for _, id := range c.NodeIDs[3:] {
			c.Manager.Join(id)
		}
		waitFor(p, 5*runtime.Second, func() bool {
			return c.Manager.Stats().PartitionsLost > 0
		})
		if got := c.Manager.Stats().PartitionsLost; got == 0 {
			t.Errorf("PartitionsLost = 0 after losing all synced replicas: %s", c.Manager)
		}
		if !strings.Contains(c.Manager.String(), "partitionsLost=") {
			t.Errorf("Manager.String() missing partitionsLost: %s", c.Manager)
		}
	})
}

func TestClientBackoffIsSeededAndCounted(t *testing.T) {
	// Same seed, same jitter sequence; the delay stays within [base/2, max].
	mk := func(seed int64) *Client {
		return NewClient(ClientConfig{
			Env: simEnvForBackoff, Tenant: 9, BackoffSeed: seed,
		})
	}
	a, b := mk(42), mk(42)
	for attempt := 0; attempt < 12; attempt++ {
		da, db := a.backoffDur(attempt), b.backoffDur(attempt)
		if da != db {
			t.Fatalf("attempt %d: same seed diverged (%v vs %v)", attempt, da, db)
		}
		if da < a.cfg.BackoffBase/2 || da > a.cfg.BackoffMax {
			t.Fatalf("attempt %d: delay %v outside [base/2, max]", attempt, da)
		}
	}
	if c := mk(43); c.backoffDur(3) == a.backoffDur(3) && c.backoffDur(4) == a.backoffDur(4) {
		t.Error("different seeds produced an identical jitter prefix")
	}

	// Driving requests at a half-dead cluster must count backoff waits.
	k := sim.New()
	defer k.Close()
	cl := newTestCluster(k, 0, nil)
	drive(t, k, 60*runtime.Second, func(p runtime.Task) {
		client := cl.Clients[0]
		cl.Kill(cl.NodeIDs[0])
		for i := 0; i < 30; i++ {
			key := fmt.Sprintf("backoff-%02d", i)
			client.Do(p, rpcproto.OpPut, []byte(key), []byte("v"))
		}
		if client.Stats().Backoffs == 0 {
			t.Errorf("no backoffs counted despite a dead chain head: %+v", client.Stats())
		}
	})
}

// simEnvForBackoff exists only so NewClient's config validates; the
// jitter unit test never runs the kernel.
var simEnvForBackoff runtime.Env = sim.New()
