package bench

import (
	"testing"

	"leed/internal/sim"
	"leed/internal/ycsb"
)

func TestRunClosedLoopLEED(t *testing.T) {
	k := sim.New()
	defer k.Close()
	sys := NewLEEDCluster(k, DefaultLEED(256))
	Preload(k, sys.Do, 500, 256, 16)
	res := Run(k, sys.Do, ycsb.WorkloadB, 500, 256, sys.Meters, RunConfig{
		Clients: 16, Ops: 800, WarmupOps: 100, Seed: 1,
	})
	if res.Ops != 800 {
		t.Fatalf("measured %d ops: %v", res.Ops, res)
	}
	if res.Errs > 8 {
		t.Fatalf("too many errors: %v", res)
	}
	if res.Thr <= 0 || res.Joules <= 0 || res.QPerJ <= 0 {
		t.Fatalf("bad metrics: %v", res)
	}
	if res.Lat.Mean() < 50*sim.Microsecond || res.Lat.Mean() > 10*sim.Millisecond {
		t.Fatalf("implausible mean latency: %v", res.Lat)
	}
}

func TestRunClosedLoopBaselines(t *testing.T) {
	for _, build := range []struct {
		name string
		mk   func(k sim.Runner) *System
	}{
		{"kvell-server", func(k sim.Runner) *System { return NewKVellCluster(k, 3, 256, 400) }},
		{"fawn-pi", func(k sim.Runner) *System { return NewFAWNCluster(k, 4, 256) }},
	} {
		t.Run(build.name, func(t *testing.T) {
			k := sim.New()
			defer k.Close()
			sys := build.mk(k)
			Preload(k, sys.Do, 400, 256, 8)
			res := Run(k, sys.Do, ycsb.WorkloadB, 400, 256, sys.Meters, RunConfig{
				Clients: 8, Ops: 400, WarmupOps: 50, Seed: 2,
			})
			if res.Ops != 400 || res.Errs > 4 {
				t.Fatalf("%s: %v", build.name, res)
			}
		})
	}
}

func TestRunOpenLoop(t *testing.T) {
	k := sim.New()
	defer k.Close()
	sys := NewLEEDCluster(k, DefaultLEED(256))
	Preload(k, sys.Do, 300, 256, 16)
	res := Run(k, sys.Do, ycsb.WorkloadC, 300, 256, sys.Meters, RunConfig{
		Rate: 50_000, Duration: 40 * sim.Millisecond, Seed: 3,
	})
	if res.Ops == 0 {
		t.Fatalf("no ops measured: %v", res)
	}
	// Throughput should be near the offered rate (well under saturation).
	if res.Thr < 30_000 || res.Thr > 70_000 {
		t.Fatalf("open-loop throughput %v at offered 50K", res.Thr)
	}
}

func TestSingleNodeSystems(t *testing.T) {
	for _, build := range []struct {
		name string
		mk   func(k sim.Runner) *System
	}{
		{"leed-node", func(k sim.Runner) *System { return NewLEEDNode(k, 256) }},
		{"fawn-jbof", func(k sim.Runner) *System { return NewFAWNJBOF(k, 256) }},
		{"kvell-jbof", func(k sim.Runner) *System { return NewKVellJBOF(k, 256) }},
	} {
		t.Run(build.name, func(t *testing.T) {
			k := sim.New()
			defer k.Close()
			sys := build.mk(k)
			Preload(k, sys.Do, 400, 256, 16)
			res := Run(k, sys.Do, ycsb.WorkloadA, 400, 256, sys.Meters, RunConfig{
				Clients: 16, Ops: 600, WarmupOps: 50, Seed: 4,
			})
			if res.Ops != 600 || res.Errs > 6 {
				t.Fatalf("%s: %v", build.name, res)
			}
		})
	}
}

func TestRunDeterministic(t *testing.T) {
	run := func() RunResult {
		k := sim.New()
		defer k.Close()
		sys := NewLEEDCluster(k, DefaultLEED(256))
		Preload(k, sys.Do, 400, 256, 16)
		return Run(k, sys.Do, ycsb.WorkloadA, 400, 256, sys.Meters, RunConfig{
			Clients: 24, Ops: 600, WarmupOps: 60, Seed: 9,
		})
	}
	a, b := run(), run()
	if a.Ops != b.Ops || a.Elapsed != b.Elapsed || a.Thr != b.Thr ||
		a.Lat.Mean() != b.Lat.Mean() || a.Lat.P999() != b.Lat.P999() ||
		a.Joules != b.Joules {
		t.Fatalf("nondeterministic runs:\n%v\n%v", a, b)
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{Title: "x", Columns: []string{"a", "b"}}
	tab.Add("1", "has,comma")
	tab.Add("2", `has"quote`)
	got := tab.CSV()
	want := "a,b\n1,\"has,comma\"\n2,\"has\"\"quote\"\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}
