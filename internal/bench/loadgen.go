// Loadgen: a wall-clock workload driver for a *remote* server. Where
// RunWallclock measures an engine embedded in this process, RunLoadgen
// dials a leed server over TCP and measures it from the outside — the
// client's view of the paper's testbed methodology (§4): N connections,
// a pipeline window per connection, a YCSB mix, a warmup, and a measured
// window. Run it from a separate process than the server so the numbers
// include real sockets, real syscalls, and real scheduling interference.
package bench

import (
	"encoding/json"
	"fmt"

	"leed/internal/core"
	"leed/internal/obs"
	"leed/internal/rpcproto"
	"leed/internal/runtime"
	"leed/internal/runtime/wallclock"
	"leed/internal/server"
	"leed/internal/sim"
	"leed/internal/transport"
	"leed/internal/ycsb"
)

// LoadgenConfig describes one loadgen run against a serving address.
type LoadgenConfig struct {
	// Addr is the server's TCP address (host:port).
	Addr string

	// Connections is how many TCP connections to open. Default 4.
	Connections int
	// Pipeline is each connection's outstanding-request window; the run
	// drives Pipeline synchronous issuer tasks per connection, so the
	// window stays full whenever the server is the bottleneck. Default 16.
	Pipeline int64

	Workload ycsb.Workload
	Records  int64
	ValLen   int
	Seed     int64

	// Batch, when > 1, issues operations as MultiGet/MultiPut frames of
	// this many sub-ops instead of single-op RPCs: each issuer collects a
	// window of generated ops, sends the reads as one MultiGet and the
	// writes as one MultiPut, and counts every sub-op as one completed op.
	// Latency is recorded once per batch (the client-observed time to
	// finish the whole window). 0 or 1 means single-op RPCs.
	Batch int

	// Preload inserts the Records keys before the measured run (through the
	// same connections), so a read-heavy mix doesn't miss.
	Preload bool

	// Warmup precedes the measured window; completions inside it are
	// discarded. Default Duration/4.
	Warmup runtime.Time
	// Duration is the measured window. Default 5s.
	Duration runtime.Time

	// Tracer, when set, collects client-side stage attribution (pipeline
	// slot wait as "client", wire round-trip as "net") and stamps the
	// run's attribution table into the result.
	Tracer *obs.Tracer
}

// RunLoadgen dials cfg.Addr, optionally preloads the keyspace, then drives
// the mix closed-loop for Warmup+Duration and reports the measured window.
// Call it from the goroutine that owns env: it spawns tasks and blocks in
// env.Wait until every connection has wound down.
func RunLoadgen(env *wallclock.Env, cfg LoadgenConfig) (RunResult, error) {
	if cfg.Connections <= 0 {
		cfg.Connections = 4
	}
	if cfg.Pipeline <= 0 {
		cfg.Pipeline = 16
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 5 * runtime.Second
	}
	if cfg.Warmup <= 0 {
		cfg.Warmup = cfg.Duration / 4
	}

	clients := make([]*server.Client, cfg.Connections)
	for i := range clients {
		conn, err := transport.DialTCP(env, cfg.Addr)
		if err != nil {
			for _, cl := range clients[:i] {
				cl.Close()
			}
			env.Wait() // drain the receiver tasks of the closed clients
			return RunResult{}, fmt.Errorf("loadgen: dial %s: %w", cfg.Addr, err)
		}
		clients[i] = server.NewClientTraced(env, conn, cfg.Pipeline, cfg.Tracer)
	}

	res := RunResult{Lat: sim.NewHistogram()}

	// One op against the server. A read finding nothing is not a failure:
	// with Preload off (or an insert-bearing mix) misses are part of the
	// workload, not of the system under test.
	oneOp := func(q runtime.Task, cl *server.Client, op ycsb.Op) error {
		switch op.Type {
		case ycsb.OpRead:
			_, err := cl.Get(q, op.Key)
			if err == core.ErrNotFound {
				err = nil
			}
			return err
		default:
			return cl.Put(q, op.Key, op.Value)
		}
	}

	var runErr error
	env.Spawn("loadgen", func(p runtime.Task) {
		// Close from in here so env.Wait below has a reason to return: each
		// client's receiver task exits only when its connection closes.
		defer func() {
			for _, cl := range clients {
				cl.Close()
			}
		}()
		if cfg.Preload && cfg.Records > 0 {
			if err := preloadClients(env, p, clients, cfg); err != nil {
				runErr = err
				return
			}
		}

		start := p.Now()
		measureAt := start + cfg.Warmup
		stopAt := measureAt + cfg.Duration

		evs := make([]runtime.Event, 0, cfg.Connections*int(cfg.Pipeline))
		for ci, cl := range clients {
			for w := int64(0); w < cfg.Pipeline; w++ {
				cl := cl
				idx := int64(ci)*cfg.Pipeline + w
				ev := env.MakeEvent()
				evs = append(evs, ev)
				env.Spawn("issuer", func(q runtime.Task) {
					defer ev.Fire(nil)
					gen := ycsb.NewGenerator(cfg.Workload, cfg.Records, cfg.ValLen, cfg.Seed+idx+1)
					if cfg.Batch > 1 {
						runBatchIssuer(q, cl, gen, cfg.Batch, measureAt, stopAt, &res)
						return
					}
					for q.Now() < stopAt {
						op := gen.Next()
						op.Key = append([]byte(nil), op.Key...)
						op.Value = append([]byte(nil), op.Value...)
						t0 := q.Now()
						err := oneOp(q, cl, op)
						t1 := q.Now()
						// Count completions that land inside the window; the
						// sticky-error check keeps a dead connection from
						// spinning through a million instant failures.
						if t1 >= measureAt && t1 <= stopAt {
							res.Ops++
							res.Lat.Record(t1 - t0)
							if err != nil {
								res.Errs++
							}
						}
						if err == transport.ErrClosed {
							return
						}
					}
				})
			}
		}
		runtime.WaitAll(p, evs...)
	})
	env.Wait()

	if runErr != nil {
		return RunResult{}, runErr
	}
	res.Elapsed = cfg.Duration
	if res.Elapsed > 0 {
		res.Thr = float64(res.Ops) / res.Elapsed.Seconds()
	}
	if cfg.Tracer != nil {
		a := cfg.Tracer.Attribution()
		res.Attr = &a
	}
	return res, nil
}

// runBatchIssuer is one issuer task's loop in batched mode: collect a
// window of Batch generated ops, ship the reads as one MultiGet and the
// writes as one MultiPut, and account the window as Batch completed ops
// with one recorded (whole-batch) latency sample.
func runBatchIssuer(q runtime.Task, cl *server.Client, gen *ycsb.Generator,
	batch int, measureAt, stopAt runtime.Time, res *RunResult) {
	getKeys := make([][]byte, 0, batch)
	putKeys := make([][]byte, 0, batch)
	putVals := make([][]byte, 0, batch)
	var out []rpcproto.BatchRespItem
	for q.Now() < stopAt {
		getKeys, putKeys, putVals = getKeys[:0], putKeys[:0], putVals[:0]
		for i := 0; i < batch; i++ {
			op := gen.Next()
			if op.Type == ycsb.OpRead {
				getKeys = append(getKeys, append([]byte(nil), op.Key...))
			} else {
				putKeys = append(putKeys, append([]byte(nil), op.Key...))
				putVals = append(putVals, append([]byte(nil), op.Value...))
			}
		}
		t0 := q.Now()
		var err error
		if len(getKeys) > 0 {
			out, err = cl.MultiGet(q, getKeys, out[:0])
		}
		if err == nil && len(putKeys) > 0 {
			out, err = cl.MultiPut(q, putKeys, putVals, out[:0])
		}
		t1 := q.Now()
		if t1 >= measureAt && t1 <= stopAt {
			res.Ops += int64(len(getKeys) + len(putKeys))
			res.Lat.Record(t1 - t0)
			if err != nil {
				res.Errs++
			}
		}
		if err == transport.ErrClosed {
			return
		}
	}
}

// preloadClients inserts the Records keys through the run's connections,
// one issuer task per pipeline slot, from inside the root task.
func preloadClients(env *wallclock.Env, p runtime.Task, clients []*server.Client, cfg LoadgenConfig) error {
	val := make([]byte, cfg.ValLen)
	for i := range val {
		val[i] = byte(i * 7)
	}
	var next int64
	var firstErr error
	evs := make([]runtime.Event, 0, len(clients)*int(cfg.Pipeline))
	for _, cl := range clients {
		for w := int64(0); w < cfg.Pipeline; w++ {
			cl := cl
			ev := env.MakeEvent()
			evs = append(evs, ev)
			env.Spawn("preload", func(q runtime.Task) {
				defer ev.Fire(nil)
				for next < cfg.Records && firstErr == nil {
					i := next
					next++
					if err := cl.Put(q, ycsb.KeyAt(i), val); err != nil {
						firstErr = err
					}
				}
			})
		}
	}
	runtime.WaitAll(p, evs...)
	if firstErr != nil {
		return fmt.Errorf("loadgen: preload: %w", firstErr)
	}
	return nil
}

// ServerDoc is the recorded output of a loadgen run (leedctl loadgen
// -benchout): the client-observed measurement of a served leed instance,
// written as BENCH_server.json by the CI smoke job.
type ServerDoc struct {
	Addr        string `json:"addr"`
	Workload    string `json:"workload"`
	Connections int    `json:"connections"`
	Pipeline    int64  `json:"pipeline"`
	Records     int64  `json:"records"`
	ValLen      int    `json:"val_len"`
	Batch       int    `json:"batch,omitempty"`
	WarmupNS    int64  `json:"warmup_ns"`
	DurationNS  int64  `json:"duration_ns"`

	Res WallclockRes `json:"result"`

	// Attribution is the client-side per-stage latency breakdown ("client"
	// = pipeline slot wait, "net" = wire round-trip including all server
	// time), when the run was traced.
	Attribution *obs.Attribution `json:"attribution,omitempty"`
}

// NewServerDoc flattens a loadgen run for the JSON doc.
func NewServerDoc(cfg LoadgenConfig, r RunResult) *ServerDoc {
	return &ServerDoc{
		Addr:        cfg.Addr,
		Workload:    cfg.Workload.Name,
		Connections: cfg.Connections,
		Pipeline:    cfg.Pipeline,
		Records:     cfg.Records,
		ValLen:      cfg.ValLen,
		Batch:       cfg.Batch,
		WarmupNS:    int64(cfg.Warmup),
		DurationNS:  int64(cfg.Duration),
		Res:         NewWallclockRes("tcp", r),
		Attribution: r.Attr,
	}
}

// JSON renders the doc, indented, with a trailing newline.
func (d *ServerDoc) JSON() string {
	b, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		panic(err) // plain struct of scalars always marshals
	}
	return string(b) + "\n"
}

// String renders the measurement as a one-row table plus the attribution.
func (d *ServerDoc) String() string {
	t := &Table{
		Title: fmt.Sprintf("loadgen %s @ %s: %d conns × pipeline %d",
			d.Workload, d.Addr, d.Connections, d.Pipeline),
		Columns: []string{"transport", "kqps", "p50us", "p99us", "ops", "errs"},
	}
	r := d.Res
	t.Add(r.Device, kqps(r.Thr), fmt.Sprintf("%.1f", r.P50US), fmt.Sprintf("%.1f", r.P99US),
		fmt.Sprintf("%d", r.Ops), fmt.Sprintf("%d", r.Errs))
	out := t.String()
	if d.Attribution != nil {
		out += d.Attribution.String()
	}
	return out
}
