package bench

import (
	"fmt"

	"leed/internal/baselines/bcommon"
	"leed/internal/baselines/fawn"
	"leed/internal/baselines/kvell"
	"leed/internal/core"
	"leed/internal/obs"
	"leed/internal/platform"
	"leed/internal/rpcproto"
	"leed/internal/sim"
	"leed/internal/ycsb"
)

// Tab3Row is one system's single-node measurement at one object size.
type Tab3Row struct {
	System      string
	ValLen      int
	MaxCapacity float64 // fraction of raw flash usable
	RdLatUs     float64 // QD1 random-read latency
	WrLatUs     float64
	RdKQPS      float64 // saturated random-read throughput
	WrKQPS      float64
}

// Tab3 regenerates Table 3: FAWN-JBOF, KVell-JBOF, and LEED on one Stingray
// under uniform ("RND") access.
func Tab3(sc Scale) ([]Tab3Row, *Table) {
	flash := int64(4) * 960 << 30
	dram := int64(8) << 30
	var rows []Tab3Row
	var attr *obs.Attribution
	for _, valLen := range []int{1024, 256} {
		systems := []struct {
			name string
			mk   func(k sim.Runner) *System
			cap_ float64
		}{
			{"FAWN-JBOF", func(k sim.Runner) *System { return NewFAWNJBOF(k, valLen) },
				fawn.MaxCapacityFraction(flash, dram, KeyLen, valLen)},
			{"KVell-JBOF", func(k sim.Runner) *System { return NewKVellJBOF(k, valLen) },
				kvell.MaxCapacityFraction(flash, dram, KeyLen, valLen)},
			{"LEED", func(k sim.Runner) *System { return NewLEEDNode(k, valLen) },
				core.MaxCapacityFraction(960<<30, KeyLen, valLen)},
		}
		for _, s := range systems {
			k := sim.New()
			sys := s.mk(k)
			Preload(k, sys.Do, sc.Records, valLen, 32)
			rd := ycsb.WorkloadC.WithSkew(0)  // RND read
			wr := ycsb.WorkloadWR.WithSkew(0) // RND write
			qd1r := Run(k, sys.Do, rd, sc.Records, valLen, sys.Meters,
				RunConfig{Clients: 1, Ops: sc.Ops / 10, WarmupOps: 20, Seed: 1})
			qd1w := Run(k, sys.Do, wr, sc.Records, valLen, sys.Meters,
				RunConfig{Clients: 1, Ops: sc.Ops / 10, WarmupOps: 20, Seed: 2})
			satr := Run(k, sys.Do, rd, sc.Records, valLen, sys.Meters,
				RunConfig{Clients: sc.Clients * 6, Ops: sc.Ops, WarmupOps: sc.Ops / 8, Seed: 3})
			satw := Run(k, sys.Do, wr, sc.Records, valLen, sys.Meters,
				RunConfig{Clients: sc.Clients * 6, Ops: sc.Ops, WarmupOps: sc.Ops / 8, Seed: 4, Tracer: sys.Tracer})
			if satw.Attr != nil {
				attr = satw.Attr // LEED's breakdown, cumulative over all four runs
			}
			rows = append(rows, Tab3Row{
				System: s.name, ValLen: valLen, MaxCapacity: s.cap_,
				RdLatUs: float64(qd1r.Lat.Mean()) / 1000,
				WrLatUs: float64(qd1w.Lat.Mean()) / 1000,
				RdKQPS:  satr.Thr / 1000,
				WrKQPS:  satw.Thr / 1000,
			})
			k.Close()
		}
	}
	t := &Table{
		Title:       "Table 3: single-node comparison on the Stingray",
		Columns:     []string{"system", "objsize", "max-capacity", "rd-lat(us)", "wr-lat(us)", "rd-thr(KQPS)", "wr-thr(KQPS)"},
		Attribution: attr,
	}
	for _, r := range rows {
		t.Add(r.System, fmt.Sprintf("%dB", r.ValLen), pct(r.MaxCapacity),
			f2(r.RdLatUs), f2(r.WrLatUs), f2(r.RdKQPS), f2(r.WrKQPS))
	}
	return rows, t
}

// Fig11Row is one command's latency breakdown.
type Fig11Row struct {
	Op     string
	ValLen int
	SSDUs  float64
	CPUUs  float64
}

// Fig11 regenerates the appendix latency-breakdown figure: SSD time vs
// CPU+MEM time for GET/PUT/DEL at both object sizes, measured at QD1
// directly on the engine so the per-command OpStats are visible.
func Fig11(sc Scale) ([]Fig11Row, *Table) {
	var rows []Fig11Row
	for _, valLen := range []int{1024, 256} {
		k := sim.New()
		sys := NewLEEDNode(k, valLen)
		eng := sys.Engine
		nparts := uint64(eng.NumPartitions())
		Preload(k, sys.Do, sc.Records/2, valLen, 32)
		measure := func(op rpcproto.Op, name string) {
			var ssd, cpu sim.Time
			n := int(sc.Ops / 20)
			if n < 50 {
				n = 50
			}
			cnt := 0
			k.Go("m", func(p *sim.Proc) {
				val := make([]byte, valLen)
				for i := 0; i < n; i++ {
					key := ycsb.KeyAt(int64(i) % (sc.Records / 2))
					pid := int(core.HashKey(key) % nparts)
					sendVal := val
					if op != rpcproto.OpPut {
						sendVal = nil
					}
					_, st, err := eng.Execute(p, pid, op, key, sendVal)
					if err == nil || err == core.ErrNotFound {
						ssd += st.SSD
						cpu += st.CPU
						cnt++
					}
				}
			})
			k.Run(k.Now() + 120*sim.Second)
			if cnt > 0 {
				rows = append(rows, Fig11Row{
					Op: name, ValLen: valLen,
					SSDUs: float64(ssd) / float64(cnt) / 1000,
					CPUUs: float64(cpu) / float64(cnt) / 1000,
				})
			}
		}
		measure(rpcproto.OpGet, "GET")
		measure(rpcproto.OpPut, "PUT")
		measure(rpcproto.OpDel, "DEL")
		k.Close()
	}
	t := &Table{
		Title:   "Figure 11: GET/PUT/DEL latency breakdown",
		Columns: []string{"op", "objsize", "SSD(us)", "CPU+MEM(us)", "SSD-share"},
	}
	for _, r := range rows {
		t.Add(r.Op, fmt.Sprintf("%dB", r.ValLen), f2(r.SSDUs), f2(r.CPUUs),
			pct(r.SSDUs/(r.SSDUs+r.CPUUs)))
	}
	return rows, t
}

// Fig12Point is throughput at one PUT percentage.
type Fig12Point struct {
	System string
	ValLen int
	PutPct int
	KQPS   float64
}

// Fig12 regenerates the appendix throughput-vs-PUT-fraction figure:
// FAWN-DS on a Raspberry Pi against LEED on a Stingray.
func Fig12(sc Scale) ([]Fig12Point, *Table) {
	putFracs := []int{0, 10, 50, 90, 100}
	var pts []Fig12Point
	for _, valLen := range []int{1024, 256} {
		for _, system := range []string{"FAWNDS", "LEED"} {
			for _, pf := range putFracs {
				k := sim.New()
				var sys *System
				if system == "LEED" {
					sys = NewLEEDNode(k, valLen)
				} else {
					sys = newFAWNPiNode(k)
				}
				records := sc.Records / 4
				Preload(k, sys.Do, records, valLen, 16)
				w := ycsb.Workload{
					Name:       fmt.Sprintf("mix-%d", pf),
					ReadProp:   1 - float64(pf)/100,
					UpdateProp: float64(pf) / 100,
					Dist:       ycsb.Uniform,
				}
				ops := sc.Ops / 4
				clients := sc.Clients * 2
				if system == "FAWNDS" {
					ops /= 8 // the Pi is orders of magnitude slower
					clients = 8
				}
				res := Run(k, sys.Do, w, records, valLen, sys.Meters,
					RunConfig{Clients: clients, Ops: ops, WarmupOps: ops / 8, Seed: int64(pf)})
				pts = append(pts, Fig12Point{System: system, ValLen: valLen, PutPct: pf, KQPS: res.Thr / 1000})
				k.Close()
			}
		}
	}
	t := &Table{
		Title:   "Figure 12: throughput vs PUT fraction",
		Columns: []string{"system", "objsize", "put%", "KQPS"},
	}
	for _, p := range pts {
		t.Add(p.System, fmt.Sprintf("%dB", p.ValLen), fmt.Sprintf("%d", p.PutPct), f2(p.KQPS))
	}
	return pts, t
}

// newFAWNPiNode builds a single FAWN-DS node on a Raspberry Pi.
func newFAWNPiNode(k sim.Runner) *System {
	node := platform.NewNode(k, platform.RaspberryPi(), 1, 128<<20, 9)
	var stores []*fawn.DS
	for w := 0; w < 2; w++ {
		gate := bcommon.NewGate(k, node.Cores[w])
		stores = append(stores, fawn.New(fawn.Config{
			Kernel: k, Device: node.SSDs[0], Exec: gate,
			RegionOff: int64(w) * (64 << 20), LogBytes: 48 << 20,
		}))
	}
	pick := func(key []byte) *fawn.DS { return stores[core.HashKey(key)%2] }
	get := func(p *sim.Proc, key []byte) (sim.Time, error) {
		t0 := p.Now()
		_, err := pick(key).Get(p, key)
		return p.Now() - t0, err
	}
	put := func(p *sim.Proc, key, val []byte) (sim.Time, error) {
		t0 := p.Now()
		err := pick(key).Put(p, key, val)
		return p.Now() - t0, err
	}
	return &System{K: k, Do: rmw(get, put), Node: node}
}

// Fig13aPoint is sustained throughput at one sub-compaction width.
type Fig13aPoint struct {
	Workload string
	Subs     int
	KQPS     float64
}

// Fig13a regenerates the intra-compaction-parallelism figure: sustained
// store throughput under compaction pressure as S (parallel
// sub-compactions) grows.
func Fig13a(sc Scale) ([]Fig13aPoint, *Table) {
	workloads := []struct {
		name string
		w    ycsb.Workload
	}{
		{"WR-ONLY", ycsb.WorkloadWR.WithSkew(0)},
		{"MIX-50", ycsb.WorkloadA.WithSkew(0)},
		{"MIX-50-Zip", ycsb.WorkloadA.WithSkew(0.99)},
	}
	subs := []int{1, 2, 4, 8, 16, 32}
	var pts []Fig13aPoint
	for _, wl := range workloads {
		for _, s := range subs {
			k := sim.New()
			res := runCompactionStore(k, sc, wl.w, s, 1)
			pts = append(pts, Fig13aPoint{Workload: wl.name, Subs: s, KQPS: res.Thr / 1000})
			k.Close()
		}
	}
	t := &Table{
		Title:   "Figure 13a: compaction intra-parallelism",
		Columns: []string{"workload", "subcompactions", "KQPS"},
	}
	for _, p := range pts {
		t.Add(p.Workload, fmt.Sprintf("%d", p.Subs), f2(p.KQPS))
	}
	return pts, t
}

// Fig13b regenerates the inter-parallelism figure: co-scheduling K
// compactions across a JBOF's stores concurrently.
func Fig13b(sc Scale) ([]Fig13aPoint, *Table) {
	workloads := []struct {
		name string
		w    ycsb.Workload
	}{
		{"WR-ONLY", ycsb.WorkloadWR.WithSkew(0)},
		{"MIX-50", ycsb.WorkloadA.WithSkew(0)},
		{"MIX-50-Zip", ycsb.WorkloadA.WithSkew(0.99)},
	}
	var pts []Fig13aPoint
	for _, wl := range workloads {
		for _, cc := range []int{1, 2, 3, 4} {
			k := sim.New()
			res := runCompactionStore(k, sc, wl.w, 8, cc)
			pts = append(pts, Fig13aPoint{Workload: wl.name, Subs: cc, KQPS: res.Thr / 1000})
			k.Close()
		}
	}
	t := &Table{
		Title:   "Figure 13b: compaction inter-parallelism (co-scheduled compactions)",
		Columns: []string{"workload", "concurrent-compactions", "KQPS"},
	}
	for _, p := range pts {
		t.Add(p.Workload, fmt.Sprintf("%d", p.Subs), f2(p.KQPS))
	}
	return pts, t
}

// SegDensityRow is one segment-table-density sample (§4.8's proposed
// optimization: grow segments to shrink DRAM metadata, paying lookup
// cycles and larger key-log transfers).
type SegDensityRow struct {
	ItemsPerSeg   int
	DRAMPerObject float64
	GetLatUs      float64
	KQPS          float64
}

// AblationSegDensity sweeps the segment density of a single store: the
// DRAM-per-object vs GET-latency trade-off the paper suggests exploring
// with leftover CPU cycles.
func AblationSegDensity(sc Scale) ([]SegDensityRow, *Table) {
	const valLen = 256
	records := sc.Records
	var rows []SegDensityRow
	for _, itemsPerSeg := range []int{15, 30, 60, 120} {
		k := sim.New()
		node := platform.NewNode(k, platform.Stingray(), 1, 256<<20, 17)
		gate := bcommon.NewGate(k, node.Cores[0])
		numSegs := int(records)/itemsPerSeg + 1
		maxChain := itemsPerSeg/14 + 2 // ~14 items fit per 512B bucket
		s := core.NewStore(core.Config{
			Env: k, Device: node.SSDs[0], Exec: gate,
			NumSegments: numSegs, MaxChain: maxChain,
			KeyLogBytes: 24 << 20, ValLogBytes: 24 << 20,
		})
		do := rmw(
			func(p *sim.Proc, key []byte) (sim.Time, error) {
				t0 := p.Now()
				_, _, err := s.Get(p, key)
				return p.Now() - t0, err
			},
			func(p *sim.Proc, key, val []byte) (sim.Time, error) {
				t0 := p.Now()
				_, err := s.Put(p, key, val)
				return p.Now() - t0, err
			})
		Preload(k, do, records, valLen, 8)
		qd1 := Run(k, do, ycsb.WorkloadC.WithSkew(0), records, valLen, nil,
			RunConfig{Clients: 1, Ops: sc.Ops / 10, WarmupOps: 20, Seed: 1})
		sat := Run(k, do, ycsb.WorkloadC.WithSkew(0), records, valLen, nil,
			RunConfig{Clients: sc.Clients * 2, Ops: sc.Ops / 2, WarmupOps: sc.Ops / 16, Seed: 2})
		rows = append(rows, SegDensityRow{
			ItemsPerSeg:   itemsPerSeg,
			DRAMPerObject: float64(s.DRAMBytes()) / float64(records),
			GetLatUs:      float64(qd1.Lat.Mean()) / 1000,
			KQPS:          sat.Thr / 1000,
		})
		k.Close()
	}
	t := &Table{
		Title:   "Ablation: segment density (DRAM/object vs GET cost, cf. §4.8)",
		Columns: []string{"items/segment", "DRAM-bytes/obj", "qd1-GET(us)", "sat-KQPS"},
	}
	for _, r := range rows {
		t.Add(fmt.Sprintf("%d", r.ItemsPerSeg), f2(r.DRAMPerObject), f2(r.GetLatUs), f2(r.KQPS))
	}
	return rows, t
}

// runCompactionStore drives numStores=4 tight-logged stores on one Stingray
// with inline compaction: subs sub-compactions per round, at most cc
// compaction rounds running concurrently across the JBOF.
func runCompactionStore(k sim.Runner, sc Scale, w ycsb.Workload, subs, cc int) RunResult {
	node := platform.NewNode(k, platform.Stingray(), 4, 256<<20, 13)
	gateFor := make([]*bcommon.Gate, 4)
	for i := range gateFor {
		gateFor[i] = bcommon.NewGate(k, node.Cores[i])
	}
	const valLen = 256
	records := sc.Records / 2
	var stores []*core.Store
	for i := 0; i < 4; i++ {
		stores = append(stores, core.NewStore(core.Config{
			Env: k, Device: node.SSDs[i], DevID: uint8(i), Exec: gateFor[i],
			NumSegments: int(records/20) + 8,
			KeyLogBytes: 3 << 20, ValLogBytes: 4 << 20,
			SubCompactions: subs, Prefetch: true, CompactChunk: 256 << 10,
		}))
	}
	compactGate := k.MakeResource(int64(cc))
	pick := func(key []byte) *core.Store { return stores[core.HashKey(key)%4] }
	maybeCompact := func(p *sim.Proc, s *core.Store) error {
		for s.ValLog().Free() < 64<<10 || s.NeedsValueCompaction() {
			compactGate.Acquire(p, 1)
			_, err := s.CompactValueLog(p)
			compactGate.Release(1)
			if err != nil {
				return err
			}
			if s.NeedsKeyCompaction() || s.KeyLog().Free() < 64<<10 {
				compactGate.Acquire(p, 1)
				_, err = s.CompactKeyLog(p)
				compactGate.Release(1)
				if err != nil {
					return err
				}
			}
			if !s.NeedsValueCompaction() && s.ValLog().Free() >= 64<<10 {
				break
			}
		}
		return nil
	}
	get := func(p *sim.Proc, key []byte) (sim.Time, error) {
		t0 := p.Now()
		_, _, err := pick(key).Get(p, key)
		return p.Now() - t0, err
	}
	put := func(p *sim.Proc, key, val []byte) (sim.Time, error) {
		t0 := p.Now()
		s := pick(key)
		if err := maybeCompact(p, s); err != nil {
			return p.Now() - t0, err
		}
		_, err := s.Put(p, key, val)
		return p.Now() - t0, err
	}
	do := rmw(get, put)
	Preload(k, do, records, valLen, 16)
	return Run(k, do, w, records, valLen, nil, RunConfig{
		Clients: sc.Clients, Ops: sc.Ops, WarmupOps: sc.Ops / 8, Seed: int64(subs*10 + cc),
	})
}
