// Package bench regenerates every table and figure from the paper's
// evaluation (§4 and Appendix A): it assembles the three systems
// (SmartNIC-LEED, Server-KVell, Embedded-FAWN), drives YCSB workloads in
// closed- or open-loop, and reports throughput, latency distributions, and
// requests per Joule. One exported function per experiment id; see
// DESIGN.md's per-experiment index.
package bench

import (
	"encoding/json"
	"fmt"
	"strings"

	"leed/internal/obs"
	"leed/internal/power"
	"leed/internal/sim"
	"leed/internal/ycsb"
)

// Scale bounds an experiment's size so the same drivers serve both smoke
// tests and full reproduction runs.
type Scale struct {
	Records  int64    // preloaded objects
	Ops      int64    // measured closed-loop operations
	Clients  int      // concurrent closed-loop clients
	Duration sim.Time // measured open-loop window
	Points   int      // sweep points (rates, skews) per curve
}

// Quick is sized for unit tests and -quick CLI runs.
var Quick = Scale{Records: 1500, Ops: 3000, Clients: 32, Duration: 80 * sim.Millisecond, Points: 3}

// Full is sized for the recorded EXPERIMENTS.md runs.
var Full = Scale{Records: 8000, Ops: 20000, Clients: 64, Duration: 250 * sim.Millisecond, Points: 5}

// Table is a printable result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string

	// Attribution is the per-stage latency breakdown of the experiment's
	// instrumented system (LEED), when it collected one. Included in the
	// JSON rendering, omitted from the text table.
	Attribution *obs.Attribution
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	for i, c := range t.Columns {
		fmt.Fprintf(&b, "%-*s  ", widths[i], c)
	}
	b.WriteByte('\n')
	for i := range t.Columns {
		b.WriteString(strings.Repeat("-", widths[i]) + "  ")
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		for i, c := range r {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			fmt.Fprintf(&b, "%-*s  ", w, c)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// DoOp executes one YCSB operation against a system and returns the
// client-observed latency.
type DoOp func(p *sim.Proc, op ycsb.Op) (sim.Time, error)

// RunConfig parameterizes one measurement run.
type RunConfig struct {
	Clients int
	Ops     int64 // closed-loop measured ops (Rate == 0)

	Rate     float64  // open-loop arrivals/sec; 0 selects closed loop
	Duration sim.Time // open-loop measured window

	WarmupOps int64
	Seed      int64
	// MaxSimTime aborts runaway runs. Default 600s of virtual time.
	MaxSimTime sim.Time
	// MaxOutstanding caps open-loop in-flight ops (past saturation the
	// queue would otherwise grow without bound). Default 4096.
	MaxOutstanding int

	// Tracer, when set, stamps the run's per-stage latency attribution into
	// RunResult.Attr (cumulative over the tracer's lifetime).
	Tracer *obs.Tracer
}

// RunResult is one measurement.
type RunResult struct {
	Ops     int64
	Errs    int64
	Dropped int64 // open-loop arrivals shed at the outstanding cap
	Elapsed sim.Time
	Thr     float64 // ops/sec
	Lat     *sim.Histogram
	Joules  float64
	QPerJ   float64 // ops per Joule (the paper's energy-efficiency metric)

	// Attr is the per-stage latency attribution (set when RunConfig.Tracer
	// was provided).
	Attr *obs.Attribution
}

func (r RunResult) String() string {
	return fmt.Sprintf("thr=%.0f op/s lat{%v} J=%.2f q/J=%.0f errs=%d",
		r.Thr, r.Lat, r.Joules, r.QPerJ, r.Errs)
}

// Run drives a workload against a system and measures it. Preload the
// keyspace first (Preload); Run issues the op mix only.
func Run(k sim.Runner, do DoOp, w ycsb.Workload, records int64, valLen int, meters []*power.Meter, rc RunConfig) RunResult {
	if rc.MaxSimTime == 0 {
		rc.MaxSimTime = 600 * sim.Second
	}
	if rc.MaxOutstanding == 0 {
		rc.MaxOutstanding = 4096
	}
	if rc.Clients == 0 {
		rc.Clients = 32
	}
	gen := ycsb.NewGenerator(w, records, valLen, rc.Seed+1)
	res := RunResult{Lat: sim.NewHistogram()}

	var (
		issued    int64
		completed int64
		measuring bool
		startT    sim.Time
		snaps     []power.Snapshot
		finished  bool
		endT      sim.Time
	)
	maybeStartMeasuring := func() {
		if !measuring && completed >= rc.WarmupOps {
			measuring = true
			startT = k.Now()
			snaps = snaps[:0]
			for _, m := range meters {
				snaps = append(snaps, m.Snap())
			}
		}
	}
	finish := func() {
		if finished {
			return
		}
		if !measuring {
			measuring = true
			startT = k.Now()
			for _, m := range meters {
				snaps = append(snaps, m.Snap())
			}
		}
		finished = true
		endT = k.Now()
		for i, m := range meters {
			j, _ := m.Since(snaps[i])
			res.Joules += j
		}
	}

	oneOp := func(p *sim.Proc, op ycsb.Op) {
		t0 := k.Now()
		_, err := do(p, op)
		lat := k.Now() - t0
		completed++
		if measuring && !finished {
			res.Ops++
			res.Lat.Record(lat)
			if err != nil {
				res.Errs++
			}
		}
		maybeStartMeasuring()
	}

	if rc.Rate == 0 {
		// Closed loop: Clients procs share the generator. The run finishes
		// the instant the last measured op completes, so elapsed time and
		// the energy window are exact.
		total := rc.Ops + rc.WarmupOps
		for c := 0; c < rc.Clients; c++ {
			k.Go("load", func(p *sim.Proc) {
				for issued < total {
					issued++
					op := gen.Next()
					op.Value = append([]byte(nil), op.Value...)
					oneOp(p, op)
					if completed >= total {
						finish()
					}
				}
			})
		}
		deadline := k.Now() + rc.MaxSimTime
		for completed < total && k.Now() < deadline && !k.Idle() {
			k.Run(k.Now() + 20*sim.Millisecond)
		}
		maybeStartMeasuring()
		finish()
	} else {
		// Open loop: deterministic arrivals at the target rate.
		interval := sim.Time(float64(sim.Second) / rc.Rate)
		if interval < 1 {
			interval = 1
		}
		warmup := rc.Duration / 4
		stopAt := k.Now() + warmup + rc.Duration
		outstanding := 0
		var arrivals func()
		arrivals = func() {
			if k.Now() >= stopAt {
				return
			}
			if outstanding >= rc.MaxOutstanding {
				res.Dropped++
			} else {
				op := gen.Next()
				op.Value = append([]byte(nil), op.Value...)
				outstanding++
				k.Go("op", func(p *sim.Proc) {
					oneOp(p, op)
					outstanding--
				})
			}
			k.After(interval, arrivals)
		}
		// Warmup switches to measuring by time, not op count.
		rc.WarmupOps = 0
		measuring = false
		k.After(warmup, func() {
			measuring = true
			startT = k.Now()
			for _, m := range meters {
				snaps = append(snaps, m.Snap())
			}
		})
		k.At(stopAt, finish)
		k.After(0, arrivals)
		drainUntil := stopAt + 200*sim.Millisecond
		for k.Now() < stopAt || (outstanding > 0 && k.Now() < drainUntil) {
			k.Run(k.Now() + 20*sim.Millisecond)
		}
		finish()
	}

	res.Elapsed = endT - startT
	if res.Elapsed > 0 {
		res.Thr = float64(res.Ops) / res.Elapsed.Seconds()
	}
	if res.Joules > 0 {
		res.QPerJ = float64(res.Ops) / res.Joules
	}
	if rc.Tracer != nil {
		a := rc.Tracer.Attribution()
		res.Attr = &a
	}
	return res
}

// Preload inserts records objects through the system with bounded
// parallelism, then lets background activity settle.
func Preload(k sim.Runner, do DoOp, records int64, valLen int, parallel int) {
	if parallel <= 0 {
		parallel = 16
	}
	var next int64
	done := 0
	val := make([]byte, valLen)
	for i := range val {
		val[i] = byte(i * 7)
	}
	for c := 0; c < parallel; c++ {
		k.Go("preload", func(p *sim.Proc) {
			for next < records {
				i := next
				next++
				op := ycsb.Op{Type: ycsb.OpInsert, Key: ycsb.KeyAt(i), Value: val}
				do(p, op)
				done++
			}
		})
	}
	deadline := k.Now() + 600*sim.Second
	for int64(done) < records && k.Now() < deadline && !k.Idle() {
		k.Run(k.Now() + 20*sim.Millisecond)
	}
}

func kqps(thr float64) string { return fmt.Sprintf("%.1f", thr/1000) }
func us(t sim.Time) string    { return fmt.Sprintf("%.1f", float64(t)/float64(sim.Microsecond)) }
func f2(v float64) string     { return fmt.Sprintf("%.2f", v) }
func pct(v float64) string    { return fmt.Sprintf("%.1f%%", 100*v) }

// JSON renders the table as one JSON object per experiment — title, column
// names, and the same cells as the text rendering (throughput, p50/p99
// latency, requests per Joule — whatever the experiment reports) — for
// machine consumption.
func (t *Table) JSON() string {
	type doc struct {
		Title       string           `json:"title"`
		Columns     []string         `json:"columns"`
		Rows        [][]string       `json:"rows"`
		Attribution *obs.Attribution `json:"attribution,omitempty"`
	}
	rows := t.Rows
	if rows == nil {
		rows = [][]string{}
	}
	b, err := json.MarshalIndent(doc{t.Title, t.Columns, rows, t.Attribution}, "", "  ")
	if err != nil {
		panic(err) // tables of strings always marshal
	}
	return string(b) + "\n"
}

// CSV renders the table as comma-separated values (header row first) for
// external plotting.
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return "\"" + strings.ReplaceAll(s, "\"", "\"\"") + "\""
		}
		return s
	}
	for i, c := range t.Columns {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(esc(c))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		for i, c := range r {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
