package bench

import (
	"strings"
	"testing"

	"leed/internal/core"
	"leed/internal/engine"
	"leed/internal/flashsim"
	"leed/internal/obs"
	"leed/internal/runtime"
	"leed/internal/runtime/wallclock"
	"leed/internal/server"
	"leed/internal/transport"
	"leed/internal/ycsb"
)

// TestRunLoadgen drives a real served instance end to end: the server runs
// on its own wallclock env behind a TCP listener, the loadgen dials it from
// a second env — the in-process twin of the two-process deployment.
func TestRunLoadgen(t *testing.T) {
	srvEnv := wallclock.New()
	eng := engine.New(engine.Config{
		Env: srvEnv,
		Devices: []flashsim.Device{
			flashsim.NewMemDevice(srvEnv, 8<<20),
			flashsim.NewMemDevice(srvEnv, 8<<20),
		},
		PartitionsPerSSD: 2,
		Geometry:         core.PlanPartition(2<<20, 16, 256, core.PlanOpts{}),
		PartitionBytes:   2 << 20,
	})
	srv := server.New(server.Config{Env: srvEnv, Engine: eng})
	l, err := transport.ListenTCP(srvEnv, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv.Serve(l)

	cliEnv := wallclock.New()
	tr := obs.NewTracer(obs.NewRegistry(), 1, 64)
	cfg := LoadgenConfig{
		Addr:        l.Addr(),
		Connections: 2,
		Pipeline:    4,
		Workload:    ycsb.WorkloadB,
		Records:     200,
		ValLen:      64,
		Preload:     true,
		Warmup:      20 * runtime.Millisecond,
		Duration:    100 * runtime.Millisecond,
		Tracer:      tr,
	}
	res, err := RunLoadgen(cliEnv, cfg)
	if err != nil {
		t.Fatalf("loadgen: %v", err)
	}
	if res.Ops == 0 {
		t.Error("measured window recorded no operations")
	}
	if res.Errs != 0 {
		t.Errorf("loadgen saw %d errors", res.Errs)
	}
	if res.Thr <= 0 {
		t.Errorf("throughput not computed: %v", res.Thr)
	}
	if res.Attr == nil {
		t.Fatal("traced run has no attribution")
	}

	doc := NewServerDoc(cfg, res)
	if !strings.Contains(doc.JSON(), "\"result\"") {
		t.Error("doc JSON missing result")
	}
	if !strings.Contains(doc.String(), "tcp") {
		t.Error("doc table missing transport row")
	}

	srv.Close()
	srvEnv.Wait()

	// With the server gone, a fresh run must fail to dial, not hang.
	if _, err := RunLoadgen(wallclock.New(), LoadgenConfig{
		Addr: l.Addr(), Connections: 1, Pipeline: 1,
		Workload: ycsb.WorkloadB, Records: 10, ValLen: 16,
		Duration: 10 * runtime.Millisecond,
	}); err == nil {
		t.Error("loadgen against a closed server: want dial error")
	}
}
