package bench

import (
	"fmt"

	"leed/internal/obs"
	"leed/internal/sim"
	"leed/internal/ycsb"
)

// Fig5Row is one (workload, system, size) energy-efficiency sample.
type Fig5Row struct {
	Workload string
	System   string
	ValLen   int
	KQPerJ   float64 // thousand queries per Joule
	KQPS     float64
	AvgWatts float64
}

// fig5Systems builds the three platforms the paper compares.
func fig5Systems(valLen int, records int64) []struct {
	name string
	mk   func(k sim.Runner) *System
} {
	return []struct {
		name string
		mk   func(k sim.Runner) *System
	}{
		{"Embedded-FAWN", func(k sim.Runner) *System { return NewFAWNCluster(k, 10, valLen) }},
		{"Server-KVell", func(k sim.Runner) *System { return NewKVellCluster(k, 3, valLen, records) }},
		{"SmartNIC-LEED", func(k sim.Runner) *System { return NewLEEDCluster(k, DefaultLEED(valLen)) }},
	}
}

// Fig5 regenerates Figure 5: queries per Joule for the YCSB workloads on
// the three platforms at both object sizes, measured at saturation.
func Fig5(sc Scale, workloads []ycsb.Workload, sizes []int) ([]Fig5Row, *Table) {
	if len(workloads) == 0 {
		workloads = ycsb.Workloads
	}
	if len(sizes) == 0 {
		sizes = []int{256, 1024}
	}
	var rows []Fig5Row
	var attr *obs.Attribution
	for _, valLen := range sizes {
		for _, sysb := range fig5Systems(valLen, sc.Records) {
			k := sim.New()
			sys := sysb.mk(k)
			Preload(k, sys.Do, sc.Records, valLen, 32)
			for wi, w := range workloads {
				ops := sc.Ops
				clients := sc.Clients * 4
				if sysb.name == "Embedded-FAWN" {
					ops = sc.Ops / 8 // the Pi cluster is far slower; keep runs bounded
					clients = sc.Clients
				}
				res := Run(k, sys.Do, w, sc.Records, valLen, sys.Meters, RunConfig{
					Clients: clients, Ops: ops, WarmupOps: ops / 8, Seed: int64(100 + wi),
					Tracer: sys.Tracer,
				})
				if res.Attr != nil {
					attr = res.Attr // LEED's breakdown, cumulative per cluster
				}
				watts := 0.0
				if res.Elapsed > 0 {
					watts = res.Joules / res.Elapsed.Seconds()
				}
				rows = append(rows, Fig5Row{
					Workload: w.Name, System: sysb.name, ValLen: valLen,
					KQPerJ: res.QPerJ / 1000, KQPS: res.Thr / 1000, AvgWatts: watts,
				})
			}
			k.Close()
		}
	}
	t := &Table{
		Title:       "Figure 5: energy efficiency (KQueries/Joule)",
		Columns:     []string{"workload", "system", "objsize", "KQ/J", "KQPS", "watts"},
		Attribution: attr,
	}
	for _, r := range rows {
		t.Add(r.Workload, r.System, fmt.Sprintf("%dB", r.ValLen), f2(r.KQPerJ), f2(r.KQPS), f2(r.AvgWatts))
	}
	return rows, t
}

// Fig6Point is one latency-vs-throughput sample.
type Fig6Point struct {
	Workload string
	System   string
	KQPS     float64
	AvgLatMs float64
}

// Fig6 regenerates Figure 6 (1KB) / Figure 14 (256B): average latency vs
// offered throughput for the three platforms plus the synthetic FAWN(100)
// (the paper's ideal 10x linear scaling of FAWN(10)).
func Fig6(sc Scale, valLen int, workloads []ycsb.Workload) ([]Fig6Point, *Table) {
	if len(workloads) == 0 {
		workloads = ycsb.Workloads
	}
	var pts []Fig6Point
	for _, sysb := range fig5Systems(valLen, sc.Records) {
		for wi, w := range workloads {
			k := sim.New()
			sys := sysb.mk(k)
			Preload(k, sys.Do, sc.Records, valLen, 32)
			// Find the saturation point closed-loop, then sweep open-loop.
			satOps := sc.Ops
			satClients := sc.Clients * 4
			if sysb.name == "Embedded-FAWN" {
				satOps = sc.Ops / 8
				satClients = sc.Clients
			}
			sat := Run(k, sys.Do, w, sc.Records, valLen, sys.Meters, RunConfig{
				Clients: satClients, Ops: satOps, WarmupOps: satOps / 8, Seed: int64(wi),
			})
			fracs := []float64{0.6}
			if sc.Points > 1 {
				fracs = fracs[:0]
				for i := 1; i <= sc.Points; i++ {
					fracs = append(fracs, 0.25+0.7*float64(i-1)/float64(sc.Points-1))
				}
			}
			for _, f := range fracs {
				rate := sat.Thr * f
				res := Run(k, sys.Do, w, sc.Records, valLen, sys.Meters, RunConfig{
					Rate: rate, Duration: sc.Duration, Seed: int64(1000 + wi),
				})
				pt := Fig6Point{
					Workload: w.Name, System: sysb.name,
					KQPS: res.Thr / 1000, AvgLatMs: float64(res.Lat.Mean()) / 1e6,
				}
				pts = append(pts, pt)
				if sysb.name == "Embedded-FAWN" {
					// FAWN(100): assumed ideal linear scaling (§4.4).
					pts = append(pts, Fig6Point{
						Workload: w.Name, System: "Embedded-FAWN(100)",
						KQPS: pt.KQPS * 10, AvgLatMs: pt.AvgLatMs,
					})
				}
			}
			k.Close()
		}
	}
	t := &Table{
		Title:   fmt.Sprintf("Figure %s: latency vs throughput (%dB)", map[int]string{1024: "6", 256: "14"}[valLen], valLen),
		Columns: []string{"workload", "system", "KQPS", "avg-lat(ms)"},
	}
	for _, p := range pts {
		t.Add(p.Workload, p.System, f2(p.KQPS), f2(p.AvgLatMs))
	}
	return pts, t
}

// AblationPoint is one (workload, skew, enabled) measurement used by the
// CRRS (Fig. 7), load-aware-scheduling (Fig. 8), and swap (Fig. 10)
// experiments.
type AblationPoint struct {
	Workload string
	Skew     float64
	Enabled  bool
	KQPS     float64
	AvgLatMs float64
	P999Ms   float64
}

func ablationTable(title string, pts []AblationPoint) *Table {
	t := &Table{
		Title:   title,
		Columns: []string{"workload", "skew", "enabled", "KQPS", "avg-lat(ms)", "p99.9(ms)"},
	}
	for _, p := range pts {
		t.Add(p.Workload, fmt.Sprintf("%.2f", p.Skew), fmt.Sprintf("%v", p.Enabled),
			f2(p.KQPS), f2(p.AvgLatMs), f2(p.P999Ms))
	}
	return t
}

// runLEEDAblation sweeps skewness for a LEED cluster built by mk, measuring
// saturated throughput and latency.
func runLEEDAblation(sc Scale, workloads []ycsb.Workload, skews []float64,
	variants []bool, mk func(valLen int, enabled bool) LEEDOptions, valLen int) []AblationPoint {
	var pts []AblationPoint
	for _, w := range workloads {
		for _, skew := range skews {
			for _, enabled := range variants {
				k := sim.New()
				sys := NewLEEDCluster(k, mk(valLen, enabled))
				Preload(k, sys.Do, sc.Records, valLen, 32)
				res := Run(k, sys.Do, w.WithSkew(skew), sc.Records, valLen, sys.Meters, RunConfig{
					Clients: sc.Clients * 4, Ops: sc.Ops, WarmupOps: sc.Ops / 8,
					Seed: int64(skew * 1000),
				})
				pts = append(pts, AblationPoint{
					Workload: w.Name, Skew: skew, Enabled: enabled,
					KQPS:     res.Thr / 1000,
					AvgLatMs: float64(res.Lat.Mean()) / 1e6,
					P999Ms:   float64(res.Lat.P999()) / 1e6,
				})
				k.Close()
			}
		}
	}
	return pts
}

func defaultSkews(points int) []float64 {
	all := []float64{0.1, 0.5, 0.9, 0.95, 0.99}
	if points >= len(all) || points <= 0 {
		return all
	}
	return []float64{0.1, 0.9, 0.99}[:min(3, points)]
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Fig7 regenerates the CRRS ablation: read imbalance handling via request
// shipping, on YCSB-B and YCSB-C across Zipf skews.
func Fig7(sc Scale) ([]AblationPoint, *Table) {
	pts := runLEEDAblation(sc,
		[]ycsb.Workload{ycsb.WorkloadB, ycsb.WorkloadC},
		defaultSkews(sc.Points), []bool{true, false},
		func(valLen int, enabled bool) LEEDOptions {
			o := DefaultLEED(valLen)
			o.CRRS = enabled
			return o
		}, 1024)
	return pts, ablationTable("Figure 7: CRRS read-imbalance handling", pts)
}

// Fig8 regenerates the load-aware-scheduling ablation: token-based
// admission plus client flow control, on and off.
func Fig8(sc Scale) ([]AblationPoint, *Table) {
	pts := runLEEDAblation(sc,
		[]ycsb.Workload{ycsb.WorkloadB, ycsb.WorkloadC},
		defaultSkews(sc.Points), []bool{true, false},
		func(valLen int, enabled bool) LEEDOptions {
			o := DefaultLEED(valLen)
			o.FlowControl = enabled
			return o
		}, 1024)
	return pts, ablationTable("Figure 8: load-aware scheduling", pts)
}

// Fig10 regenerates the data-swapping ablation: write-only Zipf workloads
// with intra-JBOF swapping on and off, at both object sizes.
func Fig10(sc Scale, sizes []int) ([]AblationPoint, *Table) {
	if len(sizes) == 0 {
		sizes = []int{256, 1024}
	}
	var pts []AblationPoint
	for _, valLen := range sizes {
		pts = append(pts, runLEEDAblation(sc,
			[]ycsb.Workload{ycsb.WorkloadWR},
			defaultSkews(sc.Points), []bool{true, false},
			func(vl int, enabled bool) LEEDOptions {
				o := DefaultLEED(vl)
				o.Swap = enabled
				return o
			}, valLen)...)
	}
	return pts, ablationTable("Figure 10: intra-JBOF data swapping (write-only)", pts)
}

// Fig9Point is one throughput sample in the join/leave timeline.
type Fig9Point struct {
	Workload string
	AtMs     float64
	KQPS     float64
	Phase    string // steady | joining | joined | leaving | left
}

// Fig9 regenerates the join/leave timeline: cluster throughput sampled in
// buckets while a fourth JBOF joins and later leaves, under YCSB-A and
// YCSB-B at 1KB.
func Fig9(sc Scale) ([]Fig9Point, *Table) {
	const valLen = 1024
	var pts []Fig9Point
	// Migration volume must be material for the dips to show: use a larger
	// keyspace than the other experiments.
	records := sc.Records * 4
	for _, w := range []ycsb.Workload{ycsb.WorkloadA, ycsb.WorkloadB} {
		k := sim.New()
		o := DefaultLEED(valLen)
		o.Spares = 1
		sys := NewLEEDCluster(k, o)
		c := sys.LEED
		Preload(k, sys.Do, records, valLen, 32)

		// Measure the steady-state rate, then offer 85% of it open-loop
		// while membership changes underneath.
		sat := Run(k, sys.Do, w, records, valLen, sys.Meters, RunConfig{
			Clients: sc.Clients * 2, Ops: sc.Ops / 2, WarmupOps: sc.Ops / 16, Seed: 5,
		})
		rate := sat.Thr * 0.85
		interval := sim.Time(float64(sim.Second) / rate)
		bucket := sc.Duration / 2
		gen := ycsb.NewGenerator(w, records, valLen, 77)

		var completions []sim.Time
		stop := false
		outstanding := 0
		var arrivals func()
		arrivals = func() {
			if stop {
				return
			}
			if outstanding < 4096 {
				op := gen.Next()
				op.Value = append([]byte(nil), op.Value...)
				outstanding++
				k.Go("op", func(p *sim.Proc) {
					if _, err := sys.Do(p, op); err == nil {
						completions = append(completions, p.Now())
					}
					outstanding--
				})
			}
			k.After(interval, arrivals)
		}
		start := k.Now()
		k.After(0, arrivals)

		spare := c.NodeIDs[len(c.NodeIDs)-1]
		phases := []struct {
			at    sim.Time
			name  string
			apply func()
		}{
			{2 * bucket, "join-start", func() { c.Join(spare) }},
			{6 * bucket, "leave-start", func() { c.Leave(spare) }},
		}
		for _, ph := range phases {
			ph := ph
			k.At(start+ph.at, ph.apply)
		}
		end := start + 10*bucket
		for k.Now() < end {
			k.Run(k.Now() + 10*sim.Millisecond)
		}
		stop = true
		k.Run(k.Now() + 50*sim.Millisecond)

		// Bucketize completions.
		nb := 10
		counts := make([]int, nb)
		for _, ct := range completions {
			b := int((ct - start) / bucket)
			if b >= 0 && b < nb {
				counts[b]++
			}
		}
		for b := 0; b < nb; b++ {
			phase := "steady"
			switch {
			case b >= 2 && b < 4:
				phase = "joining"
			case b >= 4 && b < 6:
				phase = "joined"
			case b >= 6 && b < 8:
				phase = "leaving"
			case b >= 8:
				phase = "left"
			}
			pts = append(pts, Fig9Point{
				Workload: w.Name,
				AtMs:     float64(sim.Time(b)*bucket) / 1e6,
				KQPS:     float64(counts[b]) / bucket.Seconds() / 1000,
				Phase:    phase,
			})
		}
		k.Close()
	}
	t := &Table{
		Title:   "Figure 9: throughput during node join/leave (1KB)",
		Columns: []string{"workload", "t(ms)", "KQPS", "phase"},
	}
	for _, p := range pts {
		t.Add(p.Workload, f2(p.AtMs), f2(p.KQPS), p.Phase)
	}
	return pts, t
}

// CRAQRow is one row of the shipping-vs-version-query ablation.
type CRAQRow struct {
	Mode      string
	KQPS      float64
	AvgLatMs  float64
	TxBytesOp float64 // backend bytes transmitted per completed op
}

// AblationCRAQ compares CRRS request shipping against CRAQ-style version
// queries (the alternative §3.7 rejects) under a write-contended skewed
// read-mostly workload, reporting the internal-traffic difference.
func AblationCRAQ(sc Scale) ([]CRAQRow, *Table) {
	var rows []CRAQRow
	for _, craq := range []bool{false, true} {
		k := sim.New()
		o := DefaultLEED(1024)
		o.CRAQ = craq
		sys := NewLEEDCluster(k, o)
		Preload(k, sys.Do, sc.Records, 1024, 32)
		tx0 := sys.LEED.BackendTxBytes()
		res := Run(k, sys.Do, ycsb.WorkloadA.WithSkew(0.99), sc.Records, 1024, sys.Meters, RunConfig{
			Clients: sc.Clients * 4, Ops: sc.Ops, WarmupOps: sc.Ops / 8, Seed: 21,
		})
		txPerOp := float64(sys.LEED.BackendTxBytes()-tx0) / float64(res.Ops+sc.Ops/8)
		mode := "CRRS-shipping"
		if craq {
			mode = "CRAQ-version-query"
		}
		rows = append(rows, CRAQRow{
			Mode: mode, KQPS: res.Thr / 1000,
			AvgLatMs: float64(res.Lat.Mean()) / 1e6, TxBytesOp: txPerOp,
		})
		k.Close()
	}
	t := &Table{
		Title:   "Ablation: CRRS shipping vs CRAQ version queries (YCSB-A, skew 0.99)",
		Columns: []string{"mode", "KQPS", "avg-lat(ms)", "backend-tx-bytes/op"},
	}
	for _, r := range rows {
		t.Add(r.Mode, f2(r.KQPS), f2(r.AvgLatMs), f2(r.TxBytesOp))
	}
	return rows, t
}

// Fig14 is Figure 6's 256B variant.
func Fig14(sc Scale, workloads []ycsb.Workload) ([]Fig6Point, *Table) {
	return Fig6(sc, 256, workloads)
}
