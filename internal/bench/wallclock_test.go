package bench

import (
	"testing"

	"leed/internal/core"
	"leed/internal/flashsim"
	"leed/internal/runtime"
	"leed/internal/runtime/wallclock"
	"leed/internal/ycsb"
)

// wcStore assembles a store over the given device factory on a fresh
// wallclock env and returns the env plus the bench op closure.
func wcStore(t *testing.T, mkdev func(env runtime.Env) flashsim.Device) (*wallclock.Env, DoOpT) {
	t.Helper()
	env := wallclock.New()
	s := core.NewStore(core.Config{
		Env:         env,
		Device:      mkdev(env),
		NumSegments: 64,
		KeyLogBytes: 4 << 20,
		ValLogBytes: 8 << 20,
	})
	do := func(p runtime.Task, op ycsb.Op) error {
		switch op.Type {
		case ycsb.OpRead:
			_, _, err := s.Get(p, op.Key)
			if err == core.ErrNotFound {
				return nil
			}
			return err
		default:
			_, err := s.Put(p, op.Key, op.Value)
			return err
		}
	}
	return env, do
}

func TestRunWallclockClosedLoop(t *testing.T) {
	env, do := wcStore(t, func(env runtime.Env) flashsim.Device {
		return flashsim.NewMemDevice(env, 16<<20)
	})
	PreloadWallclock(env, do, 300, 64, 8)
	res := RunWallclock(env, do, ycsb.WorkloadA, 300, 64, RunConfig{
		Clients: 8, Ops: 1000, WarmupOps: 100, Seed: 4,
	})
	if res.Ops != 1000 {
		t.Fatalf("measured %d ops, want 1000", res.Ops)
	}
	if res.Errs != 0 {
		t.Fatalf("%d errors", res.Errs)
	}
	if res.Thr <= 0 || res.Elapsed <= 0 {
		t.Fatalf("no throughput measured: %+v", res)
	}
	if res.Lat.Count() != res.Ops {
		t.Fatalf("latency samples %d != ops %d", res.Lat.Count(), res.Ops)
	}
}

func TestRunWallclockOpenLoop(t *testing.T) {
	img := t.TempDir() + "/bench.img"
	env, do := wcStore(t, func(env runtime.Env) flashsim.Device {
		d, err := flashsim.OpenAsyncFileDevice(env, img, 16<<20, flashsim.AsyncOptions{})
		if err != nil {
			t.Fatalf("open async device: %v", err)
		}
		return d
	})
	PreloadWallclock(env, do, 300, 64, 8)
	res := RunWallclock(env, do, ycsb.WorkloadA, 300, 64, RunConfig{
		Rate: 20000, Duration: 100 * runtime.Millisecond, Seed: 4,
	})
	if res.Ops == 0 {
		t.Fatal("open loop measured no ops")
	}
	if res.Errs != 0 {
		t.Fatalf("%d errors", res.Errs)
	}
	// 100ms at 20k/s is ~2000 arrivals; allow wide slop for machine load,
	// but the measured window must be near the configured duration.
	if res.Elapsed < 80*runtime.Millisecond || res.Elapsed > 200*runtime.Millisecond {
		t.Fatalf("measured window %v, want ~100ms", res.Elapsed)
	}
}
