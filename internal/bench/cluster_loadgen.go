// Cluster loadgen: the multi-process complement of RunLoadgen. Where
// RunLoadgen dials one served instance, RunClusterLoadgen pulls a view from
// a cluster manager and drives the whole CRRS fabric through the
// view-routing client — writes to chain heads, reads to read replicas,
// NACK-refresh-retry across reconfigurations. Beyond throughput it keeps a
// loss ledger: every key it preloaded (and therefore had acked) must still
// be readable at the end, whatever the cluster went through in between —
// that LostWrites field is what the CI smoke job gates on after SIGKILLing
// a node mid-run.
package bench

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"time"

	"leed/internal/cluster"
	"leed/internal/cluster/proc"
	"leed/internal/core"
	"leed/internal/obs"
	"leed/internal/runtime"
	"leed/internal/runtime/wallclock"
	"leed/internal/sim"
	"leed/internal/ycsb"
)

// ClusterLoadgenConfig describes one run against a cluster manager.
type ClusterLoadgenConfig struct {
	// Manager is the control plane's heartbeat address.
	Manager string

	// Clients is how many concurrent driver tasks run. Default 4.
	Clients int

	Workload ycsb.Workload
	Records  int64
	ValLen   int
	Seed     int64

	// Warmup precedes the measured window; completions inside it are
	// discarded. Default Duration/4.
	Warmup runtime.Time
	// Duration is the measured window. Default 5s.
	Duration runtime.Time

	// Tracer, when set, traces every operation end to end through the
	// view-routing client (cross-process span reassembly); the doc then
	// carries the attribution table, its cover ratio, and a handful of
	// sampled whole traces.
	Tracer *obs.Tracer

	// ManagerMetrics, when set, is the manager's aggregated metrics address
	// (host:port). The run scrapes its raw snapshot at the measured window's
	// edges and turns the cluster-wide energy delta into requests-per-Joule.
	ManagerMetrics string
}

// ClusterDoc is the recorded output of a cluster loadgen run (leedctl
// loadgen -manager), written as BENCH_cluster.json by the CI smoke job.
type ClusterDoc struct {
	Manager    string `json:"manager"`
	Workload   string `json:"workload"`
	Clients    int    `json:"clients"`
	Records    int64  `json:"records"`
	ValLen     int    `json:"val_len"`
	WarmupNS   int64  `json:"warmup_ns"`
	DurationNS int64  `json:"duration_ns"`

	// EpochStart/EpochEnd bracket the run; a kill mid-run shows up as
	// EpochEnd > EpochStart.
	EpochStart uint64 `json:"epoch_start"`
	EpochEnd   uint64 `json:"epoch_end"`

	Res WallclockRes `json:"result"`

	WritesAcked  int64 `json:"writes_acked"`
	WritesFailed int64 `json:"writes_failed"`

	// Verified is how many preloaded keys the final sweep read back;
	// LostWrites is how many of them came back NotFound or unreadable. The
	// durability gate: acked implies readable, so this must be zero.
	Verified   int64 `json:"verified"`
	LostWrites int64 `json:"lost_writes"`

	// Energy accounting (requires ManagerMetrics): Joules is the
	// cluster-wide energy the measured window consumed (every process's
	// leed_power_millijoules_total, summed by the manager's fleet merge),
	// and RequestsPerJoule the paper's headline efficiency metric.
	Joules           float64 `json:"joules,omitempty"`
	RequestsPerJoule float64 `json:"requests_per_joule,omitempty"`

	// Attribution is the end-to-end latency decomposition reassembled from
	// cross-process trace propagation: client and net stages measured here,
	// node/engine/cpu/ssd/fwd piggybacked back from every process the
	// requests crossed. AttributionCover is the mean disjoint span sum over
	// the mean measured latency — ~1.0 when the decomposition accounts for
	// the whole request path.
	Attribution      obs.Attribution `json:"attribution,omitempty"`
	AttributionCover float64         `json:"attribution_cover,omitempty"`

	// Traces is a handful of sampled reassembled traces (multi-hop ones
	// preferred), embedded so harnesses can assert cross-process reassembly
	// without racing a /traces scrape.
	Traces []obs.Trace `json:"traces,omitempty"`
}

// JSON renders the doc, indented, with a trailing newline.
func (d *ClusterDoc) JSON() string {
	b, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		panic(err) // plain struct of scalars always marshals
	}
	return string(b) + "\n"
}

// String renders the measurement as a one-row table plus the loss ledger.
func (d *ClusterDoc) String() string {
	t := &Table{
		Title: fmt.Sprintf("cluster loadgen %s via manager %s: %d clients, epoch %d→%d",
			d.Workload, d.Manager, d.Clients, d.EpochStart, d.EpochEnd),
		Columns: []string{"transport", "kqps", "p50us", "p99us", "ops", "errs"},
	}
	r := d.Res
	t.Add(r.Device, kqps(r.Thr), fmt.Sprintf("%.1f", r.P50US), fmt.Sprintf("%.1f", r.P99US),
		fmt.Sprintf("%d", r.Ops), fmt.Sprintf("%d", r.Errs))
	s := t.String() + fmt.Sprintf("writes acked=%d failed=%d; read-back verified=%d lost=%d\n",
		d.WritesAcked, d.WritesFailed, d.Verified, d.LostWrites)
	if d.Joules > 0 {
		s += fmt.Sprintf("energy: %.2f J over the measured window, %.0f requests/Joule\n",
			d.Joules, d.RequestsPerJoule)
	}
	if len(d.Attribution.Stages) > 0 {
		s += fmt.Sprintf("latency attribution (cover %.2f):\n%s",
			d.AttributionCover, d.Attribution.String())
	}
	return s
}

// RunClusterLoadgen refreshes a view from cfg.Manager, preloads the
// keyspace, drives the mix closed-loop for Warmup+Duration, and read-backs
// every preloaded key. Call it from the goroutine that owns env: it spawns
// tasks and blocks in env.Wait until the run winds down.
func RunClusterLoadgen(env *wallclock.Env, cfg ClusterLoadgenConfig) (*ClusterDoc, error) {
	if cfg.Clients <= 0 {
		cfg.Clients = 4
	}
	if cfg.Records <= 0 {
		cfg.Records = 2000
	}
	if cfg.ValLen <= 0 {
		cfg.ValLen = 100
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 5 * runtime.Second
	}
	if cfg.Warmup <= 0 {
		cfg.Warmup = cfg.Duration / 4
	}
	doc := &ClusterDoc{
		Manager:    cfg.Manager,
		Workload:   cfg.Workload.Name,
		Clients:    cfg.Clients,
		Records:    cfg.Records,
		ValLen:     cfg.ValLen,
		WarmupNS:   int64(cfg.Warmup),
		DurationNS: int64(cfg.Duration),
	}
	cl := proc.NewClient(proc.ClientConfig{
		Env:     env,
		Manager: cfg.Manager,
		// Enough retries for one op to ride out a failure-detection window.
		Retries: 60,
		Tracer:  cfg.Tracer,
	})

	// Energy bracket: a raw goroutine scrapes the manager's fleet-merged raw
	// snapshot at the measured window's edges (FetchRaw blocks on HTTP, so it
	// must not run in task context); the window-marker task below fires the
	// edges on the run's virtual timeline.
	var (
		joules    float64
		powerErr  error
		powerWG   sync.WaitGroup
		markStart = make(chan struct{})
		markStop  = make(chan struct{})
	)
	if cfg.ManagerMetrics != "" {
		url := "http://" + cfg.ManagerMetrics + "/metrics.raw.json"
		powerWG.Add(1)
		go func() {
			defer powerWG.Done()
			<-markStart
			before, err := obs.FetchRaw(url)
			if err != nil {
				powerErr = fmt.Errorf("cluster loadgen: energy scrape: %w", err)
				<-markStop
				return
			}
			<-markStop
			after, err := obs.FetchRaw(url)
			if err != nil {
				powerErr = fmt.Errorf("cluster loadgen: energy scrape: %w", err)
				return
			}
			dmj := rawCounterSum(after, "leed_power_millijoules_total") -
				rawCounterSum(before, "leed_power_millijoules_total")
			joules = float64(dmj) / 1e3
		}()
	}

	res := RunResult{Lat: sim.NewHistogram()}
	// okOps/okNS measure every successful op's wall time (preload, mix, and
	// read-back alike) — the same population the tracer sees, which is what
	// makes AttributionCover an honest check rather than a tautology.
	var okOps, okNS int64
	var runErr error
	env.Spawn("cluster-loadgen", func(p runtime.Task) {
		defer cl.Close()
		defer func() {
			// Unblock the energy goroutine on every exit path.
			select {
			case <-markStart:
			default:
				close(markStart)
			}
			select {
			case <-markStop:
			default:
				close(markStop)
			}
		}()
		// A usable view: every partition routes both a write (chain head)
		// and a read (synced replica).
		if !awaitRoutableView(p, cl, 30*time.Second) {
			runErr = fmt.Errorf("cluster loadgen: no routable view from %s", cfg.Manager)
			return
		}
		doc.EpochStart = cl.View().Epoch

		// Preload through the same client so every record is acked before
		// the measured window — the loss ledger's baseline.
		val := make([]byte, cfg.ValLen)
		for i := range val {
			val[i] = byte(i * 7)
		}
		for i := int64(0); i < cfg.Records; i++ {
			t0 := p.Now()
			if err := cl.Put(p, ycsb.KeyAt(i), val); err != nil {
				runErr = fmt.Errorf("cluster loadgen: preload key %d: %w", i, err)
				return
			}
			okOps++
			okNS += int64(p.Now() - t0)
		}
		doc.WritesAcked += cfg.Records

		start := p.Now()
		measureAt := start + cfg.Warmup
		stopAt := measureAt + cfg.Duration
		if cfg.ManagerMetrics != "" {
			env.Spawn("cluster-power-mark", func(q runtime.Task) {
				q.Sleep(cfg.Warmup)
				close(markStart)
				q.Sleep(cfg.Duration)
				close(markStop)
			})
		}
		evs := make([]runtime.Event, 0, cfg.Clients)
		for c := 0; c < cfg.Clients; c++ {
			idx := int64(c)
			ev := env.MakeEvent()
			evs = append(evs, ev)
			env.Spawn("cluster-issuer", func(q runtime.Task) {
				defer ev.Fire(nil)
				gen := ycsb.NewGenerator(cfg.Workload, cfg.Records, cfg.ValLen, cfg.Seed+idx+1)
				for q.Now() < stopAt {
					op := gen.Next()
					key := append([]byte(nil), op.Key...)
					t0 := q.Now()
					var err error
					if op.Type == ycsb.OpRead {
						_, err = cl.Get(q, key)
						if err == core.ErrNotFound {
							err = nil
						}
					} else {
						err = cl.Put(q, key, append([]byte(nil), op.Value...))
						if err == nil {
							doc.WritesAcked++
						} else {
							doc.WritesFailed++
						}
					}
					t1 := q.Now()
					if err == nil {
						okOps++
						okNS += int64(t1 - t0)
					}
					if t1 >= measureAt && t1 <= stopAt {
						res.Ops++
						res.Lat.Record(t1 - t0)
						if err != nil {
							res.Errs++
						}
					}
				}
			})
		}
		runtime.WaitAll(p, evs...)

		// Grab trace samples now: the read-back sweep below is a GET flood
		// that would rotate the multi-hop PUT traces out of the sample ring.
		if cfg.Tracer != nil {
			doc.Traces = pickTraces(cfg.Tracer.Samples(), 8)
		}

		// The loss ledger: every preloaded (acked) key must still read back.
		for i := int64(0); i < cfg.Records; i++ {
			doc.Verified++
			t0 := p.Now()
			if _, err := cl.Get(p, ycsb.KeyAt(i)); err != nil {
				doc.LostWrites++
			} else {
				okOps++
				okNS += int64(p.Now() - t0)
			}
		}
		if v := cl.View(); v != nil {
			doc.EpochEnd = v.Epoch
		}
	})
	env.Wait()
	powerWG.Wait()
	if runErr != nil {
		return nil, runErr
	}
	if powerErr != nil {
		return nil, powerErr
	}
	res.Elapsed = cfg.Duration
	if res.Elapsed > 0 {
		res.Thr = float64(res.Ops) / res.Elapsed.Seconds()
	}
	doc.Res = NewWallclockRes("cluster", res)
	doc.Joules = joules
	if joules > 0 {
		doc.RequestsPerJoule = float64(res.Ops) / joules
	}
	if cfg.Tracer != nil && okOps > 0 {
		a := cfg.Tracer.Attribution()
		doc.Attribution = a
		// Cover ratio: mean disjoint span sum per trace over mean measured
		// latency. Nested stages (cpu/ssd/device live inside engine) are
		// skipped; every successful op records exactly one net span, so the
		// net row's count is the traced-op count.
		var disjoint float64
		var traced int64
		for _, s := range a.Stages {
			switch s.Stage {
			case "cpu", "ssd", "device":
				continue
			}
			disjoint += float64(s.QueueMean+s.SvcMean) * float64(s.Count)
			if s.Stage == "net" {
				traced = s.Count
			}
		}
		if traced > 0 {
			doc.AttributionCover = (disjoint / float64(traced)) /
				(float64(okNS) / float64(okOps))
		}
	}
	return doc, nil
}

// pickTraces selects up to max sampled traces for embedding in the doc,
// preferring ones that crossed at least two server processes (some span at
// hop ≥ 2: client is hop 0, the first server hop 1, chain forwards beyond).
func pickTraces(all []obs.Trace, max int) []obs.Trace {
	var multi, rest []obs.Trace
	for _, tr := range all {
		deep := false
		for _, sp := range tr.Spans {
			if sp.Hop >= 2 {
				deep = true
				break
			}
		}
		if deep {
			multi = append(multi, tr)
		} else {
			rest = append(rest, tr)
		}
	}
	out := multi
	if len(out) > max {
		out = out[len(out)-max:] // newest multi-hop traces win
	}
	for _, tr := range rest {
		if len(out) >= max {
			break
		}
		out = append(out, tr)
	}
	return out
}

// rawCounterSum totals a counter family in a raw snapshot: the bare name
// plus every labeled `name{...}` variant (the fleet merge has already summed
// each key across instances).
func rawCounterSum(snap obs.RawSnapshot, name string) int64 {
	var total int64
	for k, v := range snap.Counters {
		if k == name || strings.HasPrefix(k, name+"{") {
			total += v
		}
	}
	return total
}

// awaitRoutableView refreshes until the view can route every partition.
func awaitRoutableView(p runtime.Task, cl *proc.Client, budget time.Duration) bool {
	deadline := time.Now().Add(budget)
	for time.Now().Before(deadline) {
		if err := cl.Refresh(p); err == nil {
			v := cl.View()
			if v != nil && routable(v) {
				return true
			}
		}
		p.Sleep(50 * runtime.Millisecond)
	}
	return false
}

func routable(v *cluster.View) bool {
	for part := uint32(0); part < uint32(v.NumPart); part++ {
		if len(v.Chain(part)) == 0 {
			return false
		}
		if _, ok := proc.ReadReplica(v, part); !ok {
			return false
		}
	}
	return true
}
