package bench

import (
	"fmt"
	"math"

	"leed/internal/flashsim"
	"leed/internal/platform"
	"leed/internal/sim"
)

// Tab1 regenerates Table 1: the architectural comparison of the embedded
// node, server JBOF, and SmartNIC JBOF, computed from the platform profiles
// plus the balls-into-bins maximum-load bound m/n + Θ(sqrt(m·log n / n))
// with a 100-node embedded cluster vs 3-node JBOF clusters.
func Tab1() *Table {
	type row struct {
		spec    platform.Spec
		ssds    int
		nodes   int
		ssdIOPS float64
	}
	rows := []row{
		{platform.RaspberryPi(), 1, 100, satIOPS(platform.RaspberryPi(), 4096)},
		{platform.ServerJBOF(), 8, 3, satIOPS(platform.ServerJBOF(), 4096)},
		{platform.Stingray(), 4, 3, satIOPS(platform.Stingray(), 4096)},
	}
	t := &Table{
		Title:   "Table 1: data store node comparison",
		Columns: []string{"metric", "Embedded", "ServerJBOF", "SmartNIC JBOF"},
	}
	cell := func(f func(r row) string) []string {
		out := make([]string, 0, 3)
		for _, r := range rows {
			out = append(out, f(r))
		}
		return out
	}
	skew := cell(func(r row) string {
		flash := float64(int64(r.ssds) * 960 << 30)
		if r.spec.Name == "RaspberryPi" {
			flash = float64(int64(32) << 30)
		}
		return fmt.Sprintf("%.0f", flash/float64(r.spec.DRAMBytes))
	})
	t.Add(append([]string{"storage hierarchy skew (flash:DRAM)"}, skew...)...)
	net := cell(func(r row) string {
		return fmt.Sprintf("%.2f GbE", float64(r.spec.NICBitsPerS)/1e9/float64(r.spec.NumCores))
	})
	t.Add(append([]string{"computing density (network, per core)"}, net...)...)
	st := cell(func(r row) string {
		return fmt.Sprintf("%.0fK IOPS", r.ssdIOPS*float64(r.ssds)/float64(r.spec.NumCores)/1000)
	})
	t.Add(append([]string{"computing density (storage, per core)"}, st...)...)
	load := cell(func(r row) string {
		n := float64(r.nodes)
		return fmt.Sprintf("%.3fm + O(sqrt(%.3fm))", 1/n, math.Log10(n)/n)
	})
	t.Add(append([]string{"maximum load (m = request rate)"}, load...)...)
	return t
}

// satIOPS measures one drive's saturated IOPS for opSize random reads.
func satIOPS(spec platform.Spec, opSize int) float64 {
	k := sim.New()
	defer k.Close()
	ss := spec.SSDSpec(1 << 30)
	ss.Jitter = 0
	dev := flashsim.NewSSD(k, ss)
	const n = 1500
	done := 0
	for i := 0; i < n; i++ {
		off := int64(i*opSize) % (1 << 29)
		k.Go("io", func(p *sim.Proc) {
			op := &flashsim.Op{Kind: flashsim.OpRead, Offset: off, Data: make([]byte, opSize), Done: k.NewEvent()}
			dev.Submit(op)
			p.Wait(op.Done)
			done++
		})
	}
	end := k.Run()
	return float64(done) / end.Seconds()
}

// satSeqWriteBW measures one drive's sequential-write bandwidth (bytes/s).
func satSeqWriteBW(spec platform.Spec) float64 {
	k := sim.New()
	defer k.Close()
	ss := spec.SSDSpec(1 << 30)
	ss.Jitter = 0
	dev := flashsim.NewSSD(k, ss)
	const n, chunk = 300, 256 << 10
	for i := 0; i < n; i++ {
		off := int64(i * chunk)
		k.Go("io", func(p *sim.Proc) {
			op := &flashsim.Op{Kind: flashsim.OpWrite, Offset: off, Data: make([]byte, chunk), Done: k.NewEvent()}
			dev.Submit(op)
			p.Wait(op.Done)
		})
	}
	end := k.Run()
	return float64(n*chunk) / end.Seconds()
}

// Fig1Point is one (platform, capacity) energy-efficiency sample.
type Fig1Point struct {
	Platform    string
	CapacityGB  int64
	ReadKIOPSJ  float64 // 4KB random read KIOPS per Joule
	WriteKIOPSJ float64 // 4KB sequential write KIOPS per Joule
}

// Fig1 regenerates Figure 1: raw-device energy efficiency vs storage
// capacity for the three platforms. Per-drive rates come from the device
// model; cluster power is nodes x full-load wall power.
func Fig1() ([]Fig1Point, *Table) {
	type plat struct {
		name      string
		spec      platform.Spec
		nodeCapGB int64
		maxSSDs   int
	}
	plats := []plat{
		{"RaspberryPi", platform.RaspberryPi(), 32, 1},
		{"ServerJBOF", platform.ServerJBOF(), 8 * 960, 8},
		{"SmartNIC JBOF", platform.Stingray(), 4 * 960, 4},
	}
	caps := []int64{32, 256, 2048, 16384}
	var pts []Fig1Point
	t := &Table{
		Title:   "Figure 1: raw I/O energy efficiency (KIOPS/J)",
		Columns: []string{"platform", "capacityGB", "4K-rand-read", "4K-seq-write"},
	}
	for _, pl := range plats {
		rdPerSSD := satIOPS(pl.spec, 4096)
		wrPerSSD := satSeqWriteBW(pl.spec) / 4096
		fullW := pl.spec.IdleWatts + float64(pl.spec.NumCores)*pl.spec.CoreWatts +
			float64(pl.maxSSDs)*pl.spec.SSDWatts
		perSSDcapGB := pl.nodeCapGB / int64(pl.maxSSDs)
		for _, c := range caps {
			// Fill drives first, then add nodes (the paper's methodology).
			ssds := (c + perSSDcapGB - 1) / perSSDcapGB
			nodes := (ssds + int64(pl.maxSSDs) - 1) / int64(pl.maxSSDs)
			watts := float64(nodes) * fullW
			pt := Fig1Point{
				Platform:    pl.name,
				CapacityGB:  c,
				ReadKIOPSJ:  float64(ssds) * rdPerSSD / watts / 1000,
				WriteKIOPSJ: float64(ssds) * wrPerSSD / watts / 1000,
			}
			pts = append(pts, pt)
			t.Add(pl.name, fmt.Sprintf("%d", c), f2(pt.ReadKIOPSJ), f2(pt.WriteKIOPSJ))
		}
	}
	return pts, t
}
