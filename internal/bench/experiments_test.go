package bench

import (
	"fmt"
	"strings"
	"testing"

	"leed/internal/ycsb"
)

// The experiment tests run at Quick scale and assert the paper's *shapes*:
// orderings, crossovers, and the direction of every ablation.

func TestTab1Shapes(t *testing.T) {
	tab := Tab1()
	out := tab.String()
	if !strings.Contains(out, "SmartNIC JBOF") || len(tab.Rows) != 4 {
		t.Fatalf("table malformed:\n%s", out)
	}
	// Storage-hierarchy skew must be ordered embedded < server < smartnic.
	skew := tab.Rows[0]
	var e, s, j float64
	fscan(t, skew[1], &e)
	fscan(t, skew[2], &s)
	fscan(t, skew[3], &j)
	if !(e < s && s < j) {
		t.Fatalf("skew ordering wrong: %v", skew)
	}
}

func fscan(t *testing.T, s string, v *float64) {
	t.Helper()
	if _, err := fmt.Sscanf(s, "%f", v); err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
}

func TestFig1SmartNICWinsAtScale(t *testing.T) {
	pts, tab := Fig1()
	if len(pts) == 0 || len(tab.Rows) == 0 {
		t.Fatal("no data")
	}
	best := map[string]Fig1Point{}
	for _, p := range pts {
		if p.CapacityGB == 16384 {
			best[p.Platform] = p
		}
	}
	sn, sv, pi := best["SmartNIC JBOF"], best["ServerJBOF"], best["RaspberryPi"]
	if !(sn.ReadKIOPSJ > sv.ReadKIOPSJ && sv.ReadKIOPSJ > pi.ReadKIOPSJ) {
		t.Fatalf("read EE ordering at 16TB: smartnic=%.2f server=%.2f pi=%.2f",
			sn.ReadKIOPSJ, sv.ReadKIOPSJ, pi.ReadKIOPSJ)
	}
	if sn.ReadKIOPSJ < 2*sv.ReadKIOPSJ {
		t.Fatalf("smartnic read EE advantage too small: %.2f vs %.2f (paper: ~4.8x)",
			sn.ReadKIOPSJ, sv.ReadKIOPSJ)
	}
	if sn.WriteKIOPSJ < 2*sv.WriteKIOPSJ {
		t.Fatalf("smartnic write EE advantage too small: %.2f vs %.2f (paper: ~4.7x)",
			sn.WriteKIOPSJ, sv.WriteKIOPSJ)
	}
}

func TestTab3Shapes(t *testing.T) {
	rows, tab := Tab3(Quick)
	t.Log("\n" + tab.String())
	byKey := map[string]Tab3Row{}
	for _, r := range rows {
		byKey[r.System+sizeTag(r.ValLen)] = r
	}
	for _, size := range []string{"-256", "-1k"} {
		leed, fawnr, kv := byKey["LEED"+size], byKey["FAWN-JBOF"+size], byKey["KVell-JBOF"+size]
		// Capacity: LEED >> FAWN >> KVell (Table 3's headline).
		if !(leed.MaxCapacity > 3*fawnr.MaxCapacity && fawnr.MaxCapacity > 2*kv.MaxCapacity) {
			t.Errorf("%s capacity ordering: leed=%.3f fawn=%.3f kvell=%.3f",
				size, leed.MaxCapacity, fawnr.MaxCapacity, kv.MaxCapacity)
		}
		// Latency: FAWN (1 access) beats LEED (2+ accesses).
		if !(fawnr.RdLatUs < leed.RdLatUs) {
			t.Errorf("%s read latency: fawn=%.1f leed=%.1f", size, fawnr.RdLatUs, leed.RdLatUs)
		}
		// Throughput: LEED wins both directions by a wide margin.
		if !(leed.RdKQPS > 2*kv.RdKQPS && leed.RdKQPS > 4*fawnr.RdKQPS) {
			t.Errorf("%s read thr: leed=%.0f kvell=%.0f fawn=%.0f", size, leed.RdKQPS, kv.RdKQPS, fawnr.RdKQPS)
		}
		if !(leed.WrKQPS > kv.WrKQPS && leed.WrKQPS > fawnr.WrKQPS) {
			t.Errorf("%s write thr: leed=%.0f kvell=%.0f fawn=%.0f", size, leed.WrKQPS, kv.WrKQPS, fawnr.WrKQPS)
		}
	}
}

func sizeTag(valLen int) string {
	if valLen == 1024 {
		return "-1k"
	}
	return "-256"
}

func TestFig5LEEDWinsEnergyEfficiency(t *testing.T) {
	rows, tab := Fig5(Quick, []ycsb.Workload{ycsb.WorkloadB}, []int{256})
	t.Log("\n" + tab.String())
	byName := map[string]Fig5Row{}
	for _, r := range rows {
		byName[r.System] = r
	}
	leed, kv, fw := byName["SmartNIC-LEED"], byName["Server-KVell"], byName["Embedded-FAWN"]
	if !(leed.KQPerJ > kv.KQPerJ) {
		t.Errorf("LEED %.2f KQ/J not above Server-KVell %.2f (paper: ~4x)", leed.KQPerJ, kv.KQPerJ)
	}
	if !(leed.KQPerJ > 4*fw.KQPerJ) {
		t.Errorf("LEED %.2f KQ/J not >>4x Embedded-FAWN %.2f (paper: ~17x)", leed.KQPerJ, fw.KQPerJ)
	}
}

func TestFig6LatencyRisesWithLoad(t *testing.T) {
	sc := Quick
	sc.Points = 3
	pts, _ := Fig6(sc, 1024, []ycsb.Workload{ycsb.WorkloadB})
	var leed []Fig6Point
	for _, p := range pts {
		if p.System == "SmartNIC-LEED" {
			leed = append(leed, p)
		}
	}
	if len(leed) < 2 {
		t.Fatalf("too few LEED points: %d", len(leed))
	}
	first, last := leed[0], leed[len(leed)-1]
	if !(last.KQPS > first.KQPS) {
		t.Errorf("throughput did not rise across the sweep: %.1f -> %.1f", first.KQPS, last.KQPS)
	}
	if last.AvgLatMs < first.AvgLatMs*0.8 {
		t.Errorf("latency fell with load: %.2fms -> %.2fms", first.AvgLatMs, last.AvgLatMs)
	}
	// FAWN(100) synthetic series exists with 10x FAWN(10) throughput.
	var f10, f100 []Fig6Point
	for _, p := range pts {
		switch p.System {
		case "Embedded-FAWN":
			f10 = append(f10, p)
		case "Embedded-FAWN(100)":
			f100 = append(f100, p)
		}
	}
	if len(f100) != len(f10) || len(f10) == 0 {
		t.Fatalf("FAWN(100) series missing: %d vs %d", len(f100), len(f10))
	}
	if f100[0].KQPS < 9.9*f10[0].KQPS {
		t.Errorf("FAWN(100) not 10x FAWN(10): %.2f vs %.2f", f100[0].KQPS, f10[0].KQPS)
	}
}

func TestFig7CRRSHelpsSkewedReads(t *testing.T) {
	sc := Quick
	sc.Points = 2
	pts, tab := Fig7(sc)
	t.Log("\n" + tab.String())
	// At the highest skew on YCSB-C, CRRS must raise throughput.
	var on, off *AblationPoint
	for i := range pts {
		p := &pts[i]
		if p.Workload == "YCSB-C" && p.Skew == 0.9 {
			if p.Enabled {
				on = p
			} else {
				off = p
			}
		}
	}
	if on == nil || off == nil {
		t.Fatal("missing high-skew points")
	}
	if on.KQPS <= off.KQPS {
		t.Errorf("CRRS did not help at skew 0.9: on=%.1f off=%.1f KQPS", on.KQPS, off.KQPS)
	}
}

func TestFig8LoadAwareSchedulingHelpsTail(t *testing.T) {
	sc := Quick
	sc.Points = 2
	pts, tab := Fig8(sc)
	t.Log("\n" + tab.String())
	// The paper's claim (Fig. 8): enabling LS raises YCSB-B throughput
	// (+52.2%) and cuts average latency (-34.4%).
	var on, off *AblationPoint
	for i := range pts {
		p := &pts[i]
		if p.Workload == "YCSB-B" && p.Skew == 0.1 {
			if p.Enabled {
				on = p
			} else {
				off = p
			}
		}
	}
	if on == nil || off == nil {
		t.Fatal("missing points")
	}
	if on.KQPS < off.KQPS*1.2 {
		t.Errorf("LS throughput gain too small: on=%.1f off=%.1f KQPS (paper: +52%%)", on.KQPS, off.KQPS)
	}
	if on.AvgLatMs > off.AvgLatMs {
		t.Errorf("LS did not cut average latency: on=%.2fms off=%.2fms", on.AvgLatMs, off.AvgLatMs)
	}
}

func TestFig9JoinLeaveDipsThroughput(t *testing.T) {
	sc := Quick
	pts, tab := Fig9(sc)
	t.Log("\n" + tab.String())
	avg := func(w, phase string) float64 {
		var sum float64
		var n int
		for _, p := range pts {
			if p.Workload == w && p.Phase == phase {
				sum += p.KQPS
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
	for _, w := range []string{"YCSB-A", "YCSB-B"} {
		steady := avg(w, "steady")
		leaving := avg(w, "leaving")
		if steady == 0 {
			t.Fatalf("%s: no steady throughput", w)
		}
		// The paper observes 15-66% dips; require any visible dip.
		if leaving > steady*0.98 {
			t.Errorf("%s: no dip during leave: steady=%.1f leaving=%.1f", w, steady, leaving)
		}
	}
}

func TestFig10SwappingHelpsSkewedWrites(t *testing.T) {
	sc := Quick
	sc.Points = 2
	pts, tab := Fig10(sc, []int{256})
	t.Log("\n" + tab.String())
	var on, off *AblationPoint
	for i := range pts {
		p := &pts[i]
		if p.Skew == 0.9 {
			if p.Enabled {
				on = p
			} else {
				off = p
			}
		}
	}
	if on == nil || off == nil {
		t.Fatal("missing points")
	}
	if on.KQPS < off.KQPS*0.95 {
		t.Errorf("swapping hurt skewed writes: on=%.1f off=%.1f", on.KQPS, off.KQPS)
	}
}

func TestFig11SSDDominates(t *testing.T) {
	rows, tab := Fig11(Quick)
	t.Log("\n" + tab.String())
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		share := r.SSDUs / (r.SSDUs + r.CPUUs)
		if share < 0.85 {
			t.Errorf("%s/%dB: SSD share only %.2f (paper: ~0.975)", r.Op, r.ValLen, share)
		}
	}
	// PUT adds only a little over GET thanks to the overlapped accesses.
	var get, put Fig11Row
	for _, r := range rows {
		if r.ValLen == 1024 {
			if r.Op == "GET" {
				get = r
			}
			if r.Op == "PUT" {
				put = r
			}
		}
	}
	if put.SSDUs > get.SSDUs*1.4 {
		t.Errorf("PUT SSD time %.1fus not close to GET %.1fus (overlap broken)", put.SSDUs, get.SSDUs)
	}
}

func TestFig12LEEDFarAboveFAWNDS(t *testing.T) {
	sc := Quick
	pts, tab := Fig12(sc)
	t.Log("\n" + tab.String())
	byKey := map[string]float64{}
	for _, p := range pts {
		byKey[p.System+sizeTag(p.ValLen)+string(rune('0'+p.PutPct/10))] = p.KQPS
	}
	if byKey["LEED-2565"] <= 10*byKey["FAWNDS-2565"] {
		t.Errorf("LEED %.1f not >>10x FAWNDS %.1f at 50%% PUT", byKey["LEED-2565"], byKey["FAWNDS-2565"])
	}
	// FAWN's log-structured PUTs outrun its GETs: write-only beats
	// read-only.
	var fWR, fRD float64
	for _, p := range pts {
		if p.System == "FAWNDS" && p.ValLen == 256 {
			if p.PutPct == 100 {
				fWR = p.KQPS
			}
			if p.PutPct == 0 {
				fRD = p.KQPS
			}
		}
	}
	if fWR <= fRD {
		t.Errorf("FAWN-DS write-only (%.2f) not above read-only (%.2f)", fWR, fRD)
	}
}

func TestFig13CompactionParallelismHelps(t *testing.T) {
	sc := Quick
	pts, tab := Fig13a(sc)
	t.Log("\n" + tab.String())
	by := map[string]map[int]float64{}
	for _, p := range pts {
		if by[p.Workload] == nil {
			by[p.Workload] = map[int]float64{}
		}
		by[p.Workload][p.Subs] = p.KQPS
	}
	for wl, m := range by {
		if m[8] < m[1] {
			t.Errorf("%s: S=8 (%.1f) below S=1 (%.1f)", wl, m[8], m[1])
		}
	}
	bpts, btab := Fig13b(sc)
	t.Log("\n" + btab.String())
	bby := map[string]map[int]float64{}
	for _, p := range bpts {
		if bby[p.Workload] == nil {
			bby[p.Workload] = map[int]float64{}
		}
		bby[p.Workload][p.Subs] = p.KQPS
	}
	for wl, m := range bby {
		if m[4] < m[1]*0.9 {
			t.Errorf("%s: 4 concurrent compactions (%.1f) below 1 (%.1f)", wl, m[4], m[1])
		}
	}
}

func TestAblationSegDensityTradeoff(t *testing.T) {
	rows, tab := AblationSegDensity(Quick)
	t.Log("\n" + tab.String())
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// DRAM per object must fall monotonically with density...
	for i := 1; i < len(rows); i++ {
		if rows[i].DRAMPerObject >= rows[i-1].DRAMPerObject {
			t.Errorf("DRAM/obj did not fall: %.3f -> %.3f", rows[i-1].DRAMPerObject, rows[i].DRAMPerObject)
		}
	}
	// ...while GET latency rises (larger segment transfers + probing).
	if rows[len(rows)-1].GetLatUs <= rows[0].GetLatUs {
		t.Errorf("GET latency did not rise with density: %.1f -> %.1f",
			rows[0].GetLatUs, rows[len(rows)-1].GetLatUs)
	}
}

func TestAblationCRAQTraffic(t *testing.T) {
	rows, tab := AblationCRAQ(Quick)
	t.Log("\n" + tab.String())
	if len(rows) != 2 {
		t.Fatal("rows")
	}
	ship, craq := rows[0], rows[1]
	if craq.TxBytesOp <= ship.TxBytesOp {
		t.Errorf("CRAQ backend traffic (%.0f B/op) not above shipping (%.0f B/op)",
			craq.TxBytesOp, ship.TxBytesOp)
	}
}
