// Hotpath: the allocs/op measurement of the single-op serve path, and the
// budget gate CI enforces over it. The harness runs the full stack —
// client, inproc transport, rpcproto, server, engine, store, in-memory
// device with synchronous reads — on the wallclock backend and measures
// end-to-end allocations per operation with the testing package's
// allocation accounting. The same harness backs `go test -bench=Serve`
// (internal/server) and `leedctl hotpath`, which writes BENCH_hotpath.json
// and exits non-zero when GET exceeds its pinned budget (DESIGN.md §13).
package bench

import (
	"encoding/json"
	"fmt"
	"testing"

	"leed/internal/core"
	"leed/internal/engine"
	"leed/internal/flashsim"
	"leed/internal/rpcproto"
	"leed/internal/runtime"
	"leed/internal/runtime/wallclock"
	"leed/internal/server"
	"leed/internal/transport"
)

// GetAllocBudget is the pinned end-to-end allocs/op ceiling for a served
// GET over the inproc transport. CI fails when a run exceeds it; lowering
// it is a ratchet, raising it needs a written justification.
const GetAllocBudget = 2

// BenchServe drives b.N single ops of kind op through a freshly built
// full-stack rig: wallclock env, in-memory devices with synchronous reads
// (so a cached GET never parks in the async completion path), inproc
// transport, no tracer. Setup, preload, and a pool-warming spin happen
// before the timer resets, so the measurement sees only steady state.
func BenchServe(b *testing.B, op rpcproto.Op) {
	env := wallclock.New()
	const devCap = 8 << 20
	mk := func() flashsim.Device {
		d := flashsim.NewMemDevice(env, devCap)
		d.SetSyncReads(true)
		return d
	}
	eng := engine.New(engine.Config{
		Env:              env,
		Devices:          []flashsim.Device{mk(), mk()},
		PartitionsPerSSD: 2,
		Geometry:         core.PlanPartition(2<<20, 16, 256, core.PlanOpts{}),
		PartitionBytes:   2 << 20,
	})
	srv := server.New(server.Config{Env: env, Engine: eng})
	inp := transport.NewInproc(env, transport.InprocOptions{})
	srv.Serve(inp)

	env.Spawn("hotpath-bench", func(t runtime.Task) {
		conn, err := inp.Dial(t)
		if err != nil {
			b.Errorf("dial: %v", err)
			srv.Close()
			return
		}
		cl := server.NewClient(env, conn, 16)
		defer func() {
			cl.Close()
			srv.Close()
		}()

		const nkeys = 64
		keys := make([][]byte, nkeys)
		val := make([]byte, 128)
		for i := range val {
			val[i] = byte(i * 13)
		}
		for i := range keys {
			keys[i] = []byte(fmt.Sprintf("hotpath-key-%04d", i))
			if err := cl.Put(t, keys[i], val); err != nil {
				b.Errorf("preload put %d: %v", i, err)
				return
			}
		}

		oneOp := func(i int, dst []byte) ([]byte, error) {
			if op == rpcproto.OpGet {
				return cl.GetInto(t, keys[i%nkeys], dst[:0])
			}
			return dst, cl.Put(t, keys[i%nkeys], val)
		}

		// Warm every pool and free list — frame buffers, call structs,
		// server work items, store segment buffers, the GET value scratch —
		// to steady-state capacity before anything is counted.
		dst := make([]byte, 0, 256)
		for i := 0; i < 2000; i++ {
			if dst, err = oneOp(i, dst); err != nil {
				b.Errorf("warmup op %d: %v", i, err)
				return
			}
		}

		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if dst, err = oneOp(i, dst); err != nil {
				b.Errorf("op %d: %v", i, err)
				return
			}
		}
		b.StopTimer()
	})
	env.Wait()
}

// HotpathRes is one benchmarked op kind's steady-state cost.
type HotpathRes struct {
	NsOp     float64 `json:"ns_op"`
	AllocsOp int64   `json:"allocs_op"`
	BytesOp  int64   `json:"bytes_op"`
	Ops      int64   `json:"ops"`
}

// HotpathDoc is the recorded output of the hotpath measurement
// (BENCH_hotpath.json): allocs/op and ns/op for a served GET and PUT over
// the inproc transport, plus the enforced GET budget.
type HotpathDoc struct {
	Transport string     `json:"transport"`
	Get       HotpathRes `json:"get"`
	Put       HotpathRes `json:"put"`
	GetBudget int64      `json:"get_allocs_budget"`
}

func hotpathRes(r testing.BenchmarkResult) HotpathRes {
	return HotpathRes{
		NsOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsOp: r.AllocsPerOp(),
		BytesOp:  r.AllocedBytesPerOp(),
		Ops:      int64(r.N),
	}
}

// MeasureHotpath runs the GET and PUT serve benchmarks in-process and
// returns the doc. It does not enforce the budget — see (*HotpathDoc).Gate.
func MeasureHotpath() *HotpathDoc {
	get := testing.Benchmark(func(b *testing.B) { BenchServe(b, rpcproto.OpGet) })
	put := testing.Benchmark(func(b *testing.B) { BenchServe(b, rpcproto.OpPut) })
	return &HotpathDoc{
		Transport: "inproc",
		Get:       hotpathRes(get),
		Put:       hotpathRes(put),
		GetBudget: GetAllocBudget,
	}
}

// Gate returns an error when the measured GET allocs/op exceeds the pinned
// budget.
func (d *HotpathDoc) Gate() error {
	if d.Get.AllocsOp > d.GetBudget {
		return fmt.Errorf("hotpath: GET %d allocs/op exceeds the pinned budget of %d",
			d.Get.AllocsOp, d.GetBudget)
	}
	return nil
}

// JSON renders the doc, indented, with a trailing newline.
func (d *HotpathDoc) JSON() string {
	b, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		panic(err) // plain struct of scalars always marshals
	}
	return string(b) + "\n"
}

// String renders the measurement as a two-row table.
func (d *HotpathDoc) String() string {
	t := &Table{
		Title:   fmt.Sprintf("hotpath serve path over %s (GET budget ≤ %d allocs/op)", d.Transport, d.GetBudget),
		Columns: []string{"op", "ns/op", "allocs/op", "B/op", "ops"},
	}
	t.Add("GET", fmt.Sprintf("%.0f", d.Get.NsOp), fmt.Sprintf("%d", d.Get.AllocsOp),
		fmt.Sprintf("%d", d.Get.BytesOp), fmt.Sprintf("%d", d.Get.Ops))
	t.Add("PUT", fmt.Sprintf("%.0f", d.Put.NsOp), fmt.Sprintf("%d", d.Put.AllocsOp),
		fmt.Sprintf("%d", d.Put.BytesOp), fmt.Sprintf("%d", d.Put.Ops))
	return t.String()
}
