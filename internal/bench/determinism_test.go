package bench

import "testing"

// TestExperimentDeterministicOutput runs one full experiment twice at the
// same scale and requires byte-identical formatted output in every
// rendering. TestRunDeterministic checks the Run level; this is the
// experiment-level regression for the sim backend's determinism guarantee —
// preload, workload generation, scheduling, power metering, and formatting
// must all be free of map-iteration order, timers, and real randomness.
func TestExperimentDeterministicOutput(t *testing.T) {
	render := func() (text, csv, js string) {
		_, tab := Tab3(Quick)
		return tab.String(), tab.CSV(), tab.JSON()
	}
	text1, csv1, js1 := render()
	text2, csv2, js2 := render()
	if text1 != text2 {
		t.Errorf("table text differs between identical runs:\n--- run 1\n%s--- run 2\n%s", text1, text2)
	}
	if csv1 != csv2 {
		t.Errorf("CSV differs between identical runs:\n--- run 1\n%s--- run 2\n%s", csv1, csv2)
	}
	if js1 != js2 {
		t.Errorf("JSON differs between identical runs:\n--- run 1\n%s--- run 2\n%s", js1, js2)
	}
}
