package bench

import (
	"fmt"

	"leed/internal/baselines/bcommon"
	"leed/internal/baselines/fawn"
	"leed/internal/baselines/kvell"
	"leed/internal/cluster"
	"leed/internal/core"
	"leed/internal/engine"
	"leed/internal/flashsim"
	"leed/internal/netsim"
	"leed/internal/obs"
	"leed/internal/platform"
	"leed/internal/power"
	"leed/internal/rpcproto"
	"leed/internal/sim"
	"leed/internal/ycsb"
)

// KeyLen is the YCSB key size ("user" + 12 digits).
const KeyLen = 16

// armIndexPenalty inflates KVell's B-tree cycle cost on the in-order ARM
// A72 relative to the Xeon baseline: deep pointer-chasing walks with a
// 16MB-vs-tens-of-MB cache hierarchy gap (§4.2's "limited by the SmartNIC
// processor"). The value is calibrated so KVell-JBOF lands at Table 3's
// ~250-300 KQPS while Server-KVell reaches Figure 6's multi-MQPS range.
const armIndexPenalty = 10.0

// System is one runnable system under test.
type System struct {
	K      sim.Runner
	Do     DoOp
	Meters []*power.Meter

	// Obs is the system's metrics registry; every system gets one so
	// baseline-vs-LEED tables use identical quantile math. Tracer is set for
	// LEED systems (the instrumented request path) and nil for baselines.
	Obs    *obs.Registry
	Tracer *obs.Tracer

	LEED   *cluster.Cluster // set for LEED cluster systems
	Engine *engine.Engine   // set for single-node LEED
	Node   *platform.Node   // set for single-node systems
}

// rmw composes a read-modify-write from the system's primitives.
func rmw(get func(p *sim.Proc, key []byte) (sim.Time, error),
	put func(p *sim.Proc, key, val []byte) (sim.Time, error)) DoOp {
	return func(p *sim.Proc, op ycsb.Op) (sim.Time, error) {
		switch op.Type {
		case ycsb.OpRead:
			lat, err := get(p, op.Key)
			if err == core.ErrNotFound {
				err = nil // uninserted tail of the keyspace
			}
			return lat, err
		case ycsb.OpReadModifyWrite:
			l1, err := get(p, op.Key)
			if err != nil && err != core.ErrNotFound {
				return l1, err
			}
			l2, err := put(p, op.Key, op.Value)
			return l1 + l2, err
		default: // update / insert
			return put(p, op.Key, op.Value)
		}
	}
}

// LEEDOptions configure a LEED cluster system.
type LEEDOptions struct {
	JBOFs, Spares int
	ValLen        int
	NumPartitions int
	CRRS          bool
	CRAQ          bool
	FlowControl   bool
	Swap          bool
	SubCompact    int
	Prefetch      bool
	SSDCapacity   int64
	Tokens        int64
}

// DefaultLEED returns the paper's full configuration: every technique on.
func DefaultLEED(valLen int) LEEDOptions {
	return LEEDOptions{
		JBOFs: 3, ValLen: valLen, NumPartitions: 12,
		CRRS: true, FlowControl: true, Swap: true,
		SubCompact: 8, Prefetch: true,
		SSDCapacity: 64 << 20,
	}
}

// NewLEEDCluster assembles and starts a LEED cluster system.
func NewLEEDCluster(k sim.Runner, o LEEDOptions) *System {
	c := cluster.New(cluster.Config{
		Env:                k,
		NumJBOFs:           o.JBOFs,
		SpareJBOFs:         o.Spares,
		SSDsPerJBOF:        4,
		SSDCapacity:        o.SSDCapacity,
		NumPartitions:      o.NumPartitions,
		R:                  3,
		KeyLen:             KeyLen,
		ValLen:             o.ValLen,
		NumClients:         4,
		CRRS:               o.CRRS,
		CRAQMode:           o.CRAQ,
		FlowControl:        o.FlowControl,
		Swap:               o.Swap,
		SubCompactions:     o.SubCompact,
		Prefetch:           o.Prefetch,
		TokensPerPartition: o.Tokens,
	})
	c.Start()
	k.Run(k.Now() + 5*sim.Millisecond) // settle: launch, view broadcast, client views
	var rr int
	get := func(p *sim.Proc, key []byte) (sim.Time, error) {
		cl := c.Clients[rr%len(c.Clients)]
		rr++
		_, lat, err := cl.Get(p, key)
		return lat, err
	}
	put := func(p *sim.Proc, key, val []byte) (sim.Time, error) {
		cl := c.Clients[rr%len(c.Clients)]
		rr++
		return cl.Put(p, key, val)
	}
	sys := &System{K: k, Do: rmw(get, put), LEED: c, Obs: c.Obs(), Tracer: c.Tracer()}
	for _, id := range c.NodeIDs[:o.JBOFs] {
		sys.Meters = append(sys.Meters, c.Platforms[id].Meter)
	}
	return sys
}

func slotFor(valLen int) int64 {
	need := int64(8 + KeyLen + valLen)
	return (need + 511) / 512 * 512
}

// NewKVellCluster assembles Server-KVell: KVell on server JBOFs with chain
// replication R=3 and every core pinned polling (SPDK).
func NewKVellCluster(k sim.Runner, nodes, valLen int, records int64) *System {
	reg := obs.NewRegistry()
	fab := netsim.New(k, netsim.Config{})
	fab.Observe(reg, nil)
	spec := platform.ServerJBOF()
	var servers []*bcommon.Server
	var meters []*power.Meter
	const workers = 8
	slot := slotFor(valLen)
	slotsPerWorker := records*3*4/int64(nodes*workers) + 256
	for i := 0; i < nodes; i++ {
		plat := platform.NewNode(k, spec, 4, slot*slotsPerWorker*2+(64<<20), int64(i))
		for _, c := range plat.Cores {
			c.PinPolling()
		}
		var backends []bcommon.Backend
		// Page cache sized at ~10% of each worker's keyspace share: at real
		// scale the hot set fits in DRAM while a uniform scan does not.
		cacheSlots := int(records*3/int64(nodes*workers)/10) + 8
		for w := 0; w < workers; w++ {
			gate := bcommon.NewGate(k, plat.Cores[w%len(plat.Cores)])
			st := kvell.New(kvell.Config{
				Kernel: k, Device: plat.SSDs[w%4], Exec: gate,
				RegionOff: int64(w/4) * slot * slotsPerWorker,
				SlotBytes: slot, NumSlots: slotsPerWorker,
				CacheSlots: cacheSlots,
				Obs:        reg, ObsLabel: fmt.Sprintf("n%d.w%d", i, w),
			})
			backends = append(backends, kvStoreBackend{st})
		}
		for si, ssd := range plat.SSDs {
			flashsim.Observe(ssd, reg, nil, fmt.Sprintf("n%d.ssd%d", i, si))
		}
		ep := fab.AddNode(netsim.Addr(100+i), spec.NICBitsPerS)
		servers = append(servers, bcommon.NewServer(bcommon.ServerConfig{
			Kernel: k, Index: i, Endpoint: ep, Platform: plat,
			Backends: backends, Synchronous: false, Depth: 16,
			Obs: reg,
		}))
		meters = append(meters, plat.Meter)
	}
	bc := bcommon.NewCluster(k, 3, 16, servers)
	for _, s := range servers {
		s.Start()
	}
	cl := bcommon.NewClient(k, fab.AddNode(1000, 100_000_000_000), bc)
	get := func(p *sim.Proc, key []byte) (sim.Time, error) { _, lat, err := cl.Get(p, key); return lat, err }
	put := cl.Put
	return &System{K: k, Do: rmw(get, put), Meters: meters, Obs: reg}
}

// NewFAWNCluster assembles Embedded-FAWN: FAWN-DS on Raspberry Pi nodes
// with chain replication R=3.
func NewFAWNCluster(k sim.Runner, nodes, valLen int) *System {
	reg := obs.NewRegistry()
	fab := netsim.New(k, netsim.Config{})
	fab.Observe(reg, nil)
	spec := platform.RaspberryPi()
	var servers []*bcommon.Server
	var meters []*power.Meter
	const workers = 2
	for i := 0; i < nodes; i++ {
		plat := platform.NewNode(k, spec, 1, 128<<20, int64(i))
		var backends []bcommon.Backend
		for w := 0; w < workers; w++ {
			gate := bcommon.NewGate(k, plat.Cores[w%len(plat.Cores)])
			ds := fawn.New(fawn.Config{
				Kernel: k, Device: plat.SSDs[0], Exec: gate,
				RegionOff: int64(w) * (64 << 20), LogBytes: 48 << 20,
				Obs: reg, ObsLabel: fmt.Sprintf("n%d.w%d", i, w),
			})
			backends = append(backends, fawnDSBackend{ds})
		}
		flashsim.Observe(plat.SSDs[0], reg, nil, fmt.Sprintf("n%d.ssd0", i))
		ep := fab.AddNode(netsim.Addr(100+i), spec.NICBitsPerS)
		servers = append(servers, bcommon.NewServer(bcommon.ServerConfig{
			Kernel: k, Index: i, Endpoint: ep, Platform: plat,
			Backends: backends, Synchronous: true,
			Obs: reg,
		}))
		meters = append(meters, plat.Meter)
	}
	bc := bcommon.NewCluster(k, 3, 32, servers)
	for _, s := range servers {
		s.Start()
	}
	cl := bcommon.NewClient(k, fab.AddNode(1000, 100_000_000_000), bc)
	get := func(p *sim.Proc, key []byte) (sim.Time, error) { _, lat, err := cl.Get(p, key); return lat, err }
	return &System{K: k, Do: rmw(get, cl.Put), Meters: meters, Obs: reg}
}

type fawnDSBackend struct{ ds *fawn.DS }

func (b fawnDSBackend) Get(p *sim.Proc, key []byte) ([]byte, error) { return b.ds.Get(p, key) }
func (b fawnDSBackend) Put(p *sim.Proc, key, val []byte) error      { return b.ds.Put(p, key, val) }
func (b fawnDSBackend) Del(p *sim.Proc, key []byte) error           { return b.ds.Del(p, key) }

type kvStoreBackend struct{ st *kvell.Store }

func (b kvStoreBackend) Get(p *sim.Proc, key []byte) ([]byte, error) { return b.st.Get(p, key) }
func (b kvStoreBackend) Put(p *sim.Proc, key, val []byte) error      { return b.st.Put(p, key, val) }
func (b kvStoreBackend) Del(p *sim.Proc, key []byte) error           { return b.st.Del(p, key) }

// --- Single-node systems on the Stingray (Table 3, Figures 11-13) ---

// NewLEEDNode builds one LEED JBOF accessed locally (no network): the
// configuration Table 3 measures.
func NewLEEDNode(k sim.Runner, valLen int, opts ...func(*engine.Config)) *System {
	reg := obs.NewRegistry()
	tr := obs.NewTracer(reg, 16, 256)
	node := platform.NewNode(k, platform.Stingray(), 4, 256<<20, 1)
	for _, c := range node.Cores {
		c.PinPolling()
	}
	for si, ssd := range node.SSDs {
		flashsim.Observe(ssd, reg, tr, fmt.Sprintf("n1.ssd%d", si))
	}
	partBytes := int64(128 << 20)
	geo := core.PlanPartition(partBytes, KeyLen, valLen, core.PlanOpts{})
	cfg := engine.Config{
		Env:              k,
		Node:             node,
		PartitionsPerSSD: 2,
		Geometry:         geo,
		PartitionBytes:   partBytes,
		SwapEnabled:      true,
		SubCompactions:   8,
		Prefetch:         true,
		Obs:              reg,
		Tracer:           tr,
		ObsNode:          "n1",
	}
	for _, o := range opts {
		o(&cfg)
	}
	eng := engine.New(cfg)
	eng.Start()
	nparts := uint64(eng.NumPartitions())
	get := func(p *sim.Proc, key []byte) (sim.Time, error) {
		t0 := p.Now()
		_, _, err := eng.Execute(p, int(core.HashKey(key)%nparts), rpcproto.OpGet, key, nil)
		return p.Now() - t0, err
	}
	put := func(p *sim.Proc, key, val []byte) (sim.Time, error) {
		t0 := p.Now()
		_, _, err := eng.Execute(p, int(core.HashKey(key)%nparts), rpcproto.OpPut, key, val)
		return p.Now() - t0, err
	}
	return &System{K: k, Do: rmw(get, put), Meters: []*power.Meter{node.Meter},
		Obs: reg, Tracer: tr, Engine: eng, Node: node}
}

// NewFAWNJBOF builds FAWN-DS ported onto the Stingray: 8 single-threaded
// virtual-node stores (2 per SSD), one device access per op.
func NewFAWNJBOF(k sim.Runner, valLen int) *System {
	reg := obs.NewRegistry()
	node := platform.NewNode(k, platform.Stingray(), 4, 256<<20, 2)
	for _, c := range node.Cores {
		c.PinPolling()
	}
	for si, ssd := range node.SSDs {
		flashsim.Observe(ssd, reg, nil, fmt.Sprintf("n2.ssd%d", si))
	}
	var stores []*fawn.DS
	for w := 0; w < 8; w++ {
		gate := bcommon.NewGate(k, node.Cores[w])
		stores = append(stores, fawn.New(fawn.Config{
			Kernel: k, Device: node.SSDs[w/2], Exec: gate,
			RegionOff: int64(w%2) * (128 << 20), LogBytes: 100 << 20,
			Obs: reg, ObsLabel: fmt.Sprintf("w%d", w),
		}))
	}
	pick := func(key []byte) *fawn.DS { return stores[core.HashKey(key)%8] }
	get := func(p *sim.Proc, key []byte) (sim.Time, error) {
		t0 := p.Now()
		_, err := pick(key).Get(p, key)
		return p.Now() - t0, err
	}
	put := func(p *sim.Proc, key, val []byte) (sim.Time, error) {
		t0 := p.Now()
		err := pick(key).Put(p, key, val)
		return p.Now() - t0, err
	}
	return &System{K: k, Do: rmw(get, put), Meters: []*power.Meter{node.Meter}, Obs: reg, Node: node}
}

// NewKVellJBOF builds KVell ported onto the Stingray: shared-nothing
// workers whose B-tree walks pay the ARM penalty.
func NewKVellJBOF(k sim.Runner, valLen int) *System {
	reg := obs.NewRegistry()
	node := platform.NewNode(k, platform.Stingray(), 4, 256<<20, 3)
	for _, c := range node.Cores {
		c.PinPolling()
	}
	for si, ssd := range node.SSDs {
		flashsim.Observe(ssd, reg, nil, fmt.Sprintf("n3.ssd%d", si))
	}
	slot := slotFor(valLen)
	costs := kvell.DefaultCosts()
	costs.IndexCycles = int64(float64(costs.IndexCycles) * armIndexPenalty)
	var stores []*kvell.Store
	for w := 0; w < 8; w++ {
		gate := bcommon.NewGate(k, node.Cores[w])
		stores = append(stores, kvell.New(kvell.Config{
			Kernel: k, Device: node.SSDs[w/2], Exec: gate, Costs: costs,
			RegionOff: int64(w%2) * (128 << 20),
			SlotBytes: slot, NumSlots: (100 << 20) / slot,
			Obs: reg, ObsLabel: fmt.Sprintf("w%d", w),
		}))
	}
	pick := func(key []byte) *kvell.Store { return stores[core.HashKey(key)%8] }
	get := func(p *sim.Proc, key []byte) (sim.Time, error) {
		t0 := p.Now()
		_, err := pick(key).Get(p, key)
		return p.Now() - t0, err
	}
	put := func(p *sim.Proc, key, val []byte) (sim.Time, error) {
		t0 := p.Now()
		err := pick(key).Put(p, key, val)
		return p.Now() - t0, err
	}
	return &System{K: k, Do: rmw(get, put), Meters: []*power.Meter{node.Meter}, Obs: reg, Node: node}
}
