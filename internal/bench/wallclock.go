// Wall-clock benchmarking: the twin of Run for the wallclock backend. The
// sim benchmarks answer "what would the paper's testbed do"; these answer
// "what does this process actually sustain on this machine" — which is the
// measurement that can tell a synchronous device path apart from the async
// submission-queue path, because only real syscall overlap shows up here.
package bench

import (
	"encoding/json"
	"fmt"

	"leed/internal/obs"
	"leed/internal/runtime"
	"leed/internal/runtime/wallclock"
	"leed/internal/sim"
	"leed/internal/ycsb"
)

// DoOpT executes one YCSB operation against a system from a runtime.Task.
// It is DoOp generalized over the runtime seam so the same closure drives
// both backends.
type DoOpT func(p runtime.Task, op ycsb.Op) error

// RunWallclock measures a workload on the wall-clock backend and returns
// the same RunResult shape as Run (Joules stays zero: there are no modeled
// power meters on real hardware). RunConfig means what it does for Run:
// Rate == 0 is a closed loop over Clients tasks issuing Ops operations
// after WarmupOps; Rate > 0 is an open loop of rate-paced arrivals over
// Duration with a warmup of Duration/4, shedding arrivals beyond
// MaxOutstanding. Times in the result are real nanoseconds.
//
// The function spawns tasks and blocks in env.Wait, so call it from the
// goroutine that owns the environment, not from a task.
func RunWallclock(env *wallclock.Env, do DoOpT, w ycsb.Workload, records int64, valLen int, rc RunConfig) RunResult {
	if rc.MaxOutstanding == 0 {
		rc.MaxOutstanding = 4096
	}
	if rc.Clients == 0 {
		rc.Clients = 32
	}
	gen := ycsb.NewGenerator(w, records, valLen, rc.Seed+1)
	res := RunResult{Lat: sim.NewHistogram()}

	// All of this state is mutated only from task context (holding the big
	// runtime lock), except after env.Wait has drained everything.
	var (
		issued       int64
		completed    int64
		measuring    bool
		finished     bool
		startT, endT runtime.Time
	)

	oneOp := func(p runtime.Task, op ycsb.Op) {
		t0 := p.Now()
		err := do(p, op)
		lat := p.Now() - t0
		completed++
		if measuring && !finished {
			res.Ops++
			res.Lat.Record(lat)
			if err != nil {
				res.Errs++
			}
		}
	}

	if rc.Rate == 0 {
		// Closed loop: Clients tasks share the generator; measurement covers
		// the window from the WarmupOps-th completion to the last one.
		total := rc.Ops + rc.WarmupOps
		for c := 0; c < rc.Clients; c++ {
			env.Spawn("load", func(p runtime.Task) {
				for issued < total {
					issued++
					op := gen.Next()
					op.Value = append([]byte(nil), op.Value...)
					oneOp(p, op)
					if !measuring && completed >= rc.WarmupOps {
						measuring = true
						startT = p.Now()
					}
					if completed >= total && !finished {
						finished = true
						endT = p.Now()
					}
				}
			})
		}
		env.Wait()
		if !finished { // total <= WarmupOps corner: measure nothing
			endT = startT
		}
	} else {
		// Open loop: one pacer task schedules arrival k at start+k*interval
		// (catch-up pacing: a late wakeup does not shift later arrivals), and
		// each arrival runs as its own task so service time never gates the
		// arrival process — the open-loop property.
		interval := float64(runtime.Second) / rc.Rate
		warmup := rc.Duration / 4
		outstanding := 0
		env.Spawn("pacer", func(p runtime.Task) {
			start := p.Now()
			measureAt := start + warmup
			stopAt := start + warmup + rc.Duration
			for k := int64(0); ; k++ {
				next := start + runtime.Time(float64(k)*interval)
				if next >= stopAt {
					break
				}
				if d := next - p.Now(); d > 0 {
					p.Sleep(d)
				}
				if !measuring && p.Now() >= measureAt {
					measuring = true
					startT = p.Now()
				}
				if outstanding >= rc.MaxOutstanding {
					res.Dropped++
					continue
				}
				op := gen.Next()
				op.Value = append([]byte(nil), op.Value...)
				outstanding++
				env.Spawn("op", func(q runtime.Task) {
					oneOp(q, op)
					outstanding--
				})
			}
			if d := stopAt - p.Now(); d > 0 {
				p.Sleep(d)
			}
			if !measuring { // degenerate: rate so low nothing arrived in warmup
				measuring = true
				startT = p.Now()
			}
			finished = true
			endT = p.Now()
		})
		env.Wait() // in-flight ops past stopAt drain here, uncounted
	}

	res.Elapsed = endT - startT
	if res.Elapsed > 0 {
		res.Thr = float64(res.Ops) / res.Elapsed.Seconds()
	}
	if rc.Tracer != nil {
		a := rc.Tracer.Attribution()
		res.Attr = &a
	}
	return res
}

// PreloadWallclock inserts records objects with bounded parallelism and
// waits for the environment to drain, mirroring Preload.
func PreloadWallclock(env *wallclock.Env, do DoOpT, records int64, valLen int, parallel int) {
	if parallel <= 0 {
		parallel = 16
	}
	var next int64
	val := make([]byte, valLen)
	for i := range val {
		val[i] = byte(i * 7)
	}
	for c := 0; c < parallel; c++ {
		env.Spawn("preload", func(p runtime.Task) {
			for next < records {
				i := next
				next++
				do(p, ycsb.Op{Type: ycsb.OpInsert, Key: ycsb.KeyAt(i), Value: val})
			}
		})
	}
	env.Wait()
}

// WallclockRes is one device mode's measurement in a WallclockDoc.
type WallclockRes struct {
	Device    string  `json:"device"`
	Ops       int64   `json:"ops"`
	Errs      int64   `json:"errs"`
	Dropped   int64   `json:"dropped"`
	ElapsedNS int64   `json:"elapsed_ns"`
	Thr       float64 `json:"throughput_ops_per_sec"`
	P50US     float64 `json:"p50_us"`
	P99US     float64 `json:"p99_us"`
}

// NewWallclockRes flattens a RunResult for the JSON doc.
func NewWallclockRes(device string, r RunResult) WallclockRes {
	return WallclockRes{
		Device:    device,
		Ops:       r.Ops,
		Errs:      r.Errs,
		Dropped:   r.Dropped,
		ElapsedNS: int64(r.Elapsed),
		Thr:       r.Thr,
		P50US:     float64(r.Lat.P50()) / float64(runtime.Microsecond),
		P99US:     float64(r.Lat.P99()) / float64(runtime.Microsecond),
	}
}

// WallclockDoc is the recorded output of a sync-vs-async wall-clock bench
// run (leedctl bench -wallclock): the same workload against the synchronous
// FileDevice and the AsyncFileDevice, and the throughput ratio.
type WallclockDoc struct {
	Workload string       `json:"workload"`
	Clients  int          `json:"clients"`
	Rate     float64      `json:"rate_ops_per_sec"`
	Records  int64        `json:"records"`
	ValLen   int          `json:"val_len"`
	Sync     WallclockRes `json:"sync"`
	Async    WallclockRes `json:"async"`
	Speedup  float64      `json:"speedup"`

	// Attribution is the async run's per-stage latency breakdown, when the
	// run was traced.
	Attribution *obs.Attribution `json:"attribution,omitempty"`
}

// JSON renders the doc, indented, with a trailing newline.
func (d *WallclockDoc) JSON() string {
	b, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		panic(err) // plain struct of scalars always marshals
	}
	return string(b) + "\n"
}

// String renders a two-row comparison table.
func (d *WallclockDoc) String() string {
	t := &Table{
		Title:   fmt.Sprintf("wallclock %s: sync vs async device", d.Workload),
		Columns: []string{"device", "kqps", "p50us", "p99us", "ops", "errs", "dropped"},
	}
	for _, r := range []WallclockRes{d.Sync, d.Async} {
		t.Add(r.Device, kqps(r.Thr), fmt.Sprintf("%.1f", r.P50US), fmt.Sprintf("%.1f", r.P99US),
			fmt.Sprintf("%d", r.Ops), fmt.Sprintf("%d", r.Errs), fmt.Sprintf("%d", r.Dropped))
	}
	return t.String() + fmt.Sprintf("async/sync speedup: %.2fx\n", d.Speedup)
}
