// Package sim implements a deterministic discrete-event simulation kernel.
//
// The kernel advances a virtual clock by executing scheduled events in
// (time, sequence) order. Simulation actors are written as ordinary blocking
// Go code inside a Proc: a goroutine that the kernel resumes one at a time,
// baton-passing style, so execution is single-threaded and fully
// deterministic even though every actor is its own goroutine.
//
// The package also provides the synchronization primitives the rest of the
// system is built from: one-shot multi-waiter Events, blocking FIFO Queues,
// counting-semaphore Resources, and log-bucketed latency Histograms.
package sim

import (
	"container/heap"
	"sync"

	"leed/internal/runtime"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. It is the shared runtime.Time, aliased so sim-side code keeps
// its historical spelling; arithmetic on Time values is plain integer
// arithmetic.
type Time = runtime.Time

// Convenient duration units of virtual time.
const (
	Nanosecond  = runtime.Nanosecond
	Microsecond = runtime.Microsecond
	Millisecond = runtime.Millisecond
	Second      = runtime.Second
)

// schedEntry is one pending event on the kernel heap.
type schedEntry struct {
	when Time
	seq  uint64 // tie-breaker: FIFO among same-time events
	fn   func()
}

type eventHeap []schedEntry

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)     { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)       { *h = append(*h, x.(schedEntry)) }
func (h *eventHeap) Pop() any         { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() *schedEntry { return &h[0] }

// Kernel is a discrete-event simulation engine. The zero value is not
// usable; construct one with New. A Kernel and everything scheduled on it
// must be used from a single OS-level caller: procs hand execution back and
// forth with the kernel but never run concurrently.
type Kernel struct {
	now   Time
	seq   uint64
	heap  eventHeap
	yield chan struct{} // proc -> kernel baton
	pmu   sync.Mutex    // guards procs and Proc.done during Close teardown
	procs map[*Proc]struct{}
	fault any // captured proc panic, re-raised by Run
	nproc int // name counter
}

// New returns an empty kernel at virtual time zero.
func New() *Kernel {
	return &Kernel{
		yield: make(chan struct{}),
		procs: make(map[*Proc]struct{}),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// At schedules fn to run at absolute virtual time when. Events scheduled in
// the past run at the current time. Events with equal times run in the order
// they were scheduled.
func (k *Kernel) At(when Time, fn func()) {
	if when < k.now {
		when = k.now
	}
	k.seq++
	heap.Push(&k.heap, schedEntry{when: when, seq: k.seq, fn: fn})
}

// After schedules fn to run d after the current virtual time.
func (k *Kernel) After(d Time, fn func()) { k.At(k.now+d, fn) }

// Run executes events until the heap is empty or the optional deadline (the
// first until value, if given) is reached, and returns the final time.
func (k *Kernel) Run(until ...Time) Time {
	deadline := Time(-1)
	if len(until) > 0 {
		deadline = until[0]
	}
	for len(k.heap) > 0 {
		if deadline >= 0 && k.heap.peek().when > deadline {
			k.now = deadline
			return k.now
		}
		e := heap.Pop(&k.heap).(schedEntry)
		k.now = e.when
		e.fn()
		if k.fault != nil {
			panic(k.fault)
		}
	}
	if deadline >= 0 && deadline > k.now {
		k.now = deadline
	}
	return k.now
}

// Idle reports whether no events remain.
func (k *Kernel) Idle() bool { return len(k.heap) == 0 }

// Close releases every parked proc goroutine. Call it once after the last
// Run; the kernel must not be used afterwards. Released procs unwind via
// runtime.Goexit on their own goroutines; pmu keeps their self-removal from
// the proc table ordered against this sweep.
func (k *Kernel) Close() {
	k.pmu.Lock()
	for p := range k.procs {
		if !p.done {
			p.done = true
			close(p.resume)
		}
		delete(k.procs, p)
	}
	k.pmu.Unlock()
}
