package sim

import "leed/internal/runtime"

// Runner is the capability surface that sim-only harnesses (bench, the
// baseline systems, deterministic tests) program against: the portable
// runtime.Env plus the kernel-specific controls — pumping virtual time,
// scheduling bare callbacks, spawning procs, and observing quiescence.
// *Kernel is the implementation; code outside this package depends on the
// interface so the concrete kernel type stays an implementation detail of
// the sim backend.
type Runner interface {
	runtime.Env

	// Run executes events until the heap drains or virtual time reaches
	// until, returning the kernel clock.
	Run(until ...Time) Time
	// At schedules fn at an absolute virtual time.
	At(when Time, fn func())
	// Go spawns a simulated process (the sim-native Spawn).
	Go(name string, fn func(p *Proc)) *Proc
	// Idle reports whether no events remain.
	Idle() bool
	// NewEvent creates a one-shot completion event.
	NewEvent() *Event
	// Timer creates an event that fires after d of virtual time.
	Timer(d Time) *Event
	// Close releases kernel resources; the kernel must not be used after.
	Close()
}
