package sim

import (
	"testing"
)

func TestEventOrdering(t *testing.T) {
	k := New()
	defer k.Close()
	var order []int
	k.At(30, func() { order = append(order, 3) })
	k.At(10, func() { order = append(order, 1) })
	k.At(20, func() { order = append(order, 2) })
	k.At(10, func() { order = append(order, 11) }) // same time: FIFO
	end := k.Run()
	if end != 30 {
		t.Fatalf("end time = %v, want 30", end)
	}
	want := []int{1, 11, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSchedulePastClamps(t *testing.T) {
	k := New()
	defer k.Close()
	var ran Time
	k.At(100, func() {
		k.At(50, func() { ran = k.Now() }) // in the past: runs now
	})
	k.Run()
	if ran != 100 {
		t.Fatalf("past event ran at %v, want 100", ran)
	}
}

func TestRunUntilDeadline(t *testing.T) {
	k := New()
	defer k.Close()
	fired := 0
	k.At(10, func() { fired++ })
	k.At(1000, func() { fired++ })
	end := k.Run(100)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if end != 100 {
		t.Fatalf("end = %v, want 100", end)
	}
	// The remaining event still runs on a later Run.
	k.Run()
	if fired != 2 {
		t.Fatalf("fired = %d after full run, want 2", fired)
	}
}

func TestProcSleep(t *testing.T) {
	k := New()
	defer k.Close()
	var wake []Time
	k.Go("a", func(p *Proc) {
		p.Sleep(5 * Microsecond)
		wake = append(wake, p.Now())
		p.Sleep(10 * Microsecond)
		wake = append(wake, p.Now())
	})
	k.Run()
	if len(wake) != 2 || wake[0] != 5*Microsecond || wake[1] != 15*Microsecond {
		t.Fatalf("wake times = %v", wake)
	}
}

func TestProcInterleaving(t *testing.T) {
	k := New()
	defer k.Close()
	var trace []string
	k.Go("a", func(p *Proc) {
		trace = append(trace, "a0")
		p.Sleep(10)
		trace = append(trace, "a1")
	})
	k.Go("b", func(p *Proc) {
		trace = append(trace, "b0")
		p.Sleep(5)
		trace = append(trace, "b1")
	})
	k.Run()
	want := []string{"a0", "b0", "b1", "a1"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v", trace)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestEventWaitAndFire(t *testing.T) {
	k := New()
	defer k.Close()
	ev := k.NewEvent()
	got := make([]any, 0, 2)
	k.Go("w1", func(p *Proc) { got = append(got, p.Wait(ev)) })
	k.Go("w2", func(p *Proc) { got = append(got, p.Wait(ev)) })
	k.After(100, func() { ev.Fire(42) })
	k.Run()
	if len(got) != 2 || got[0] != 42 || got[1] != 42 {
		t.Fatalf("got = %v", got)
	}
}

func TestEventWaitAfterFire(t *testing.T) {
	k := New()
	defer k.Close()
	ev := k.NewEvent()
	ev.Fire("x")
	var got any
	k.Go("w", func(p *Proc) { got = p.Wait(ev) })
	k.Run()
	if got != "x" {
		t.Fatalf("got = %v", got)
	}
}

func TestEventOnFire(t *testing.T) {
	k := New()
	defer k.Close()
	ev := k.NewEvent()
	var vals []any
	ev.OnFire(func(v any) { vals = append(vals, v) })
	k.After(10, func() { ev.Fire(7) })
	k.Run()
	ev.OnFire(func(v any) { vals = append(vals, v) }) // post-fire registration
	k.Run()
	if len(vals) != 2 || vals[0] != 7 || vals[1] != 7 {
		t.Fatalf("vals = %v", vals)
	}
}

func TestEventDoubleFirePanics(t *testing.T) {
	k := New()
	defer k.Close()
	ev := k.NewEvent()
	ev.Fire(nil)
	defer func() {
		if recover() == nil {
			t.Fatal("double Fire did not panic")
		}
	}()
	ev.Fire(nil)
}

func TestWaitAnyStaleTicketDoesNotCorruptSleep(t *testing.T) {
	// After WaitAny returns because event a fired, a later fire of event b
	// must not cut short the proc's subsequent Sleep.
	k := New()
	defer k.Close()
	a, b := k.NewEvent(), k.NewEvent()
	var slept Time
	k.Go("w", func(p *Proc) {
		idx := p.WaitAny(a, b)
		if idx != 0 {
			t.Errorf("WaitAny = %d, want 0", idx)
		}
		start := p.Now()
		p.Sleep(100 * Microsecond)
		slept = p.Now() - start
	})
	k.After(10, func() { a.Fire(nil) })
	k.After(20, func() { b.Fire(nil) }) // stale wake target
	k.Run()
	if slept != 100*Microsecond {
		t.Fatalf("slept %v, want 100us", slept)
	}
}

func TestWaitAnyAlreadyFired(t *testing.T) {
	k := New()
	defer k.Close()
	a, b := k.NewEvent(), k.NewEvent()
	b.Fire(nil)
	idx := -1
	k.Go("w", func(p *Proc) { idx = p.WaitAny(a, b) })
	k.Run()
	if idx != 1 {
		t.Fatalf("WaitAny = %d, want 1", idx)
	}
}

func TestTimer(t *testing.T) {
	k := New()
	defer k.Close()
	var at Time
	k.Go("w", func(p *Proc) {
		p.Wait(k.Timer(3 * Millisecond))
		at = p.Now()
	})
	k.Run()
	if at != 3*Millisecond {
		t.Fatalf("timer fired at %v", at)
	}
}

func TestQueueFIFO(t *testing.T) {
	k := New()
	defer k.Close()
	q := NewQueue[int](k)
	var got []int
	k.Go("consumer", func(p *Proc) {
		for i := 0; i < 4; i++ {
			got = append(got, q.Get(p))
		}
	})
	k.After(10, func() { q.Put(1); q.Put(2) })
	k.After(20, func() { q.Put(3) })
	k.After(30, func() { q.Put(4) })
	k.Run()
	for i, w := range []int{1, 2, 3, 4} {
		if got[i] != w {
			t.Fatalf("got = %v", got)
		}
	}
}

func TestQueueMultipleGetters(t *testing.T) {
	k := New()
	defer k.Close()
	q := NewQueue[int](k)
	var got []int
	for i := 0; i < 3; i++ {
		k.Go("c", func(p *Proc) { got = append(got, q.Get(p)) })
	}
	k.After(10, func() { q.Put(100); q.Put(200); q.Put(300) })
	k.Run()
	if len(got) != 3 {
		t.Fatalf("got = %v", got)
	}
	sum := got[0] + got[1] + got[2]
	if sum != 600 {
		t.Fatalf("items lost or duplicated: %v", got)
	}
}

func TestQueueTryGetAndLen(t *testing.T) {
	k := New()
	defer k.Close()
	q := NewQueue[string](k)
	if _, ok := q.TryGet(); ok {
		t.Fatal("TryGet on empty queue succeeded")
	}
	q.Put("a")
	q.Put("b")
	if q.Len() != 2 {
		t.Fatalf("Len = %d", q.Len())
	}
	if v, ok := q.Peek(); !ok || v != "a" {
		t.Fatalf("Peek = %q, %v", v, ok)
	}
	v, ok := q.TryGet()
	if !ok || v != "a" {
		t.Fatalf("TryGet = %q, %v", v, ok)
	}
	if q.MaxLen() != 2 {
		t.Fatalf("MaxLen = %d", q.MaxLen())
	}
}

func TestResourceLimitsConcurrency(t *testing.T) {
	k := New()
	defer k.Close()
	r := NewResource(k, 2)
	var maxInUse int64
	work := func(p *Proc) {
		r.Acquire(p, 1)
		if u := r.InUse(); u > maxInUse {
			maxInUse = u
		}
		p.Sleep(10 * Microsecond)
		r.Release(1)
	}
	for i := 0; i < 6; i++ {
		k.Go("w", work)
	}
	end := k.Run()
	if maxInUse != 2 {
		t.Fatalf("max in use = %d, want 2", maxInUse)
	}
	// 6 tasks, 2 at a time, 10us each -> 30us.
	if end != 30*Microsecond {
		t.Fatalf("end = %v, want 30us", end)
	}
}

func TestResourceFIFOFairness(t *testing.T) {
	k := New()
	defer k.Close()
	r := NewResource(k, 1)
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		k.After(Time(i), func() {
			k.Go("w", func(p *Proc) {
				r.Acquire(p, 1)
				order = append(order, i)
				p.Sleep(5)
				r.Release(1)
			})
		})
	}
	k.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestResourceTryAcquire(t *testing.T) {
	k := New()
	defer k.Close()
	r := NewResource(k, 3)
	if !r.TryAcquire(2) {
		t.Fatal("TryAcquire(2) failed with 3 available")
	}
	if r.TryAcquire(2) {
		t.Fatal("TryAcquire(2) succeeded with 1 available")
	}
	r.Release(2)
	if r.Avail() != 3 {
		t.Fatalf("avail = %d", r.Avail())
	}
}

func TestResourceUtilization(t *testing.T) {
	k := New()
	defer k.Close()
	r := NewResource(k, 1)
	k.Go("w", func(p *Proc) {
		r.Acquire(p, 1)
		p.Sleep(50)
		r.Release(1)
		p.Sleep(50)
	})
	k.Run()
	u := r.Utilization()
	if u < 0.49 || u > 0.51 {
		t.Fatalf("utilization = %f, want ~0.5", u)
	}
}

func TestProcPanicPropagates(t *testing.T) {
	k := New()
	defer k.Close()
	k.Go("bad", func(p *Proc) { panic("boom") })
	defer func() {
		if recover() == nil {
			t.Fatal("proc panic did not propagate to Run")
		}
	}()
	k.Run()
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		k := New()
		defer k.Close()
		var trace []Time
		q := NewQueue[int](k)
		r := NewResource(k, 2)
		for i := 0; i < 5; i++ {
			i := i
			k.Go("p", func(p *Proc) {
				p.Sleep(Time(i * 3))
				r.Acquire(p, 1)
				p.Sleep(7)
				q.Put(i)
				r.Release(1)
			})
		}
		k.Go("c", func(p *Proc) {
			for j := 0; j < 5; j++ {
				q.Get(p)
				trace = append(trace, p.Now())
			}
		})
		k.Run()
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) != 5 {
		t.Fatalf("traces differ in length: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic traces: %v vs %v", a, b)
		}
	}
}

func TestTimeString(t *testing.T) {
	cases := map[Time]string{
		500:              "500ns",
		50 * Microsecond: "50.0us",
		5 * Millisecond:  "5.00ms",
		20 * Second:      "20.00s",
	}
	for in, want := range cases {
		if got := in.String(); got != want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(in), got, want)
		}
	}
}
