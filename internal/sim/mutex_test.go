package sim

import "testing"

func TestMutexMutualExclusion(t *testing.T) {
	k := New()
	defer k.Close()
	var mu Mutex
	inside := 0
	maxInside := 0
	for i := 0; i < 5; i++ {
		k.Go("w", func(p *Proc) {
			mu.Lock(p)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			p.Sleep(10)
			inside--
			mu.Unlock()
		})
	}
	end := k.Run()
	if maxInside != 1 {
		t.Fatalf("max inside critical section = %d", maxInside)
	}
	if end != 50 {
		t.Fatalf("5 serialized 10ns sections ended at %v", end)
	}
}

func TestMutexFIFO(t *testing.T) {
	k := New()
	defer k.Close()
	var mu Mutex
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		k.After(Time(i), func() {
			k.Go("w", func(p *Proc) {
				mu.Lock(p)
				order = append(order, i)
				p.Sleep(20)
				mu.Unlock()
			})
		})
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestMutexTryLock(t *testing.T) {
	k := New()
	defer k.Close()
	var mu Mutex
	if !mu.TryLock() {
		t.Fatal("TryLock on free mutex failed")
	}
	if mu.TryLock() {
		t.Fatal("TryLock on held mutex succeeded")
	}
	mu.Unlock()
	if !mu.TryLock() {
		t.Fatal("TryLock after Unlock failed")
	}
}

func TestMutexUnlockPanics(t *testing.T) {
	var mu Mutex
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	mu.Unlock()
}
