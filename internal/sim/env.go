package sim

import "leed/internal/runtime"

// The DES kernel is the deterministic implementation of the runtime seam:
// Kernel is an Env, Proc is a Task, and the sim sync primitives are the
// backend's events, queues, and resources.
var (
	_ runtime.Env      = (*Kernel)(nil)
	_ runtime.Task     = (*Proc)(nil)
	_ runtime.Ticket   = Ticket{}
	_ runtime.Event    = (*Event)(nil)
	_ runtime.Queue    = (*Queue[any])(nil)
	_ runtime.Resource = (*Resource)(nil)
)

// Spawn implements runtime.Env by starting fn as a new proc.
func (k *Kernel) Spawn(name string, fn func(t runtime.Task)) {
	k.Go(name, func(p *Proc) { fn(p) })
}

// Offload implements runtime.Env: fn runs inline in scheduler context at the
// current virtual time, immediately followed by done. The kernel is
// single-threaded, so "outside the execution contract" degenerates to "as a
// zero-delay event" — offloaded work costs no virtual time and stays
// bit-identical across replays.
func (k *Kernel) Offload(fn func() any, done func(v any)) {
	k.After(0, func() { done(fn()) })
}

// MakeEvent implements runtime.Env.
func (k *Kernel) MakeEvent() runtime.Event { return k.NewEvent() }

// MakeQueue implements runtime.Env.
func (k *Kernel) MakeQueue() runtime.Queue { return NewQueue[any](k) }

// MakeResource implements runtime.Env.
func (k *Kernel) MakeResource(capacity int64) runtime.Resource {
	return NewResource(k, capacity)
}

// MakeHistogram implements runtime.Env.
func (k *Kernel) MakeHistogram() *runtime.Histogram { return NewHistogram() }
