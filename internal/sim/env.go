package sim

import "leed/internal/runtime"

// The DES kernel is the deterministic implementation of the runtime seam:
// Kernel is an Env, Proc is a Task, and the sim sync primitives are the
// backend's events, queues, and resources.
var (
	_ runtime.Env      = (*Kernel)(nil)
	_ runtime.Task     = (*Proc)(nil)
	_ runtime.Ticket   = Ticket{}
	_ runtime.Event    = (*Event)(nil)
	_ runtime.Queue    = (*Queue[any])(nil)
	_ runtime.Resource = (*Resource)(nil)
)

// Spawn implements runtime.Env by starting fn as a new proc.
func (k *Kernel) Spawn(name string, fn func(t runtime.Task)) {
	k.Go(name, func(p *Proc) { fn(p) })
}

// MakeEvent implements runtime.Env.
func (k *Kernel) MakeEvent() runtime.Event { return k.NewEvent() }

// MakeQueue implements runtime.Env.
func (k *Kernel) MakeQueue() runtime.Queue { return NewQueue[any](k) }

// MakeResource implements runtime.Env.
func (k *Kernel) MakeResource(capacity int64) runtime.Resource {
	return NewResource(k, capacity)
}

// MakeHistogram implements runtime.Env.
func (k *Kernel) MakeHistogram() *runtime.Histogram { return NewHistogram() }
