package sim

import "leed/internal/runtime"

// Queue is an unbounded FIFO connecting procs: producers Put without
// blocking, consumers Get and block while the queue is empty. It is the
// workhorse behind NIC receive rings, per-core runnable queues, and the
// store's waiting queues.
type Queue[T any] struct {
	k       *Kernel
	items   []T
	head    int
	getters []Ticket
	maxLen  int
}

// NewQueue returns an empty queue on k.
func NewQueue[T any](k *Kernel) *Queue[T] { return &Queue[T]{k: k} }

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) - q.head }

// MaxLen returns the high-water mark of the queue length.
func (q *Queue[T]) MaxLen() int { return q.maxLen }

// Put appends v and wakes one blocked getter, if any.
func (q *Queue[T]) Put(v T) {
	q.items = append(q.items, v)
	if n := q.Len(); n > q.maxLen {
		q.maxLen = n
	}
	if len(q.getters) > 0 {
		t := q.getters[0]
		q.getters = q.getters[1:]
		t.Wake()
	}
}

// TryGet pops the head item without blocking. ok is false when empty.
func (q *Queue[T]) TryGet() (v T, ok bool) {
	if q.Len() == 0 {
		return v, false
	}
	v = q.items[q.head]
	var zero T
	q.items[q.head] = zero
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return v, true
}

// Get pops the head item, blocking the task while the queue is empty.
// Getters are served in FIFO order. t must be a Proc on the same kernel; the
// runtime.Task parameter type lets backend-neutral code call it.
func (q *Queue[T]) Get(t runtime.Task) T {
	p := t.(*Proc)
	for {
		if v, ok := q.TryGet(); ok {
			return v
		}
		tk := p.prepare()
		q.getters = append(q.getters, tk)
		p.park()
	}
}

// Peek returns the head item without removing it.
func (q *Queue[T]) Peek() (v T, ok bool) {
	if q.Len() == 0 {
		return v, false
	}
	return q.items[q.head], true
}

// Mutex is a FIFO-fair mutual-exclusion lock for procs.
type Mutex struct {
	locked  bool
	waiters []Ticket
}

// Lock blocks the proc until the mutex is acquired.
func (m *Mutex) Lock(p *Proc) {
	for m.locked {
		t := p.prepare()
		m.waiters = append(m.waiters, t)
		p.Park()
	}
	m.locked = true
}

// TryLock acquires the mutex if free.
func (m *Mutex) TryLock() bool {
	if m.locked {
		return false
	}
	m.locked = true
	return true
}

// Unlock releases the mutex and wakes the first waiter.
func (m *Mutex) Unlock() {
	if !m.locked {
		panic("sim: Unlock of unlocked Mutex")
	}
	m.locked = false
	if len(m.waiters) > 0 {
		t := m.waiters[0]
		m.waiters = m.waiters[1:]
		t.Wake()
	}
}

// resWaiter is one proc waiting for n units of a Resource.
type resWaiter struct {
	t       Ticket
	n       int64
	granted *bool
}

// Resource is a counting semaphore over virtual time: the standard model for
// anything with bounded concurrency (SSD service units, PCIe lanes, DMA
// engines). Waiters are granted strictly in FIFO order, so a large request
// at the head blocks smaller ones behind it — matching hardware queues.
type Resource struct {
	k        *Kernel
	capacity int64
	avail    int64
	waiters  []resWaiter
	// busy-time accounting for utilization reports
	busySince   Time
	busyIntegal Time // integral of (capacity-avail) dt, in unit*ns
}

// NewResource returns a resource with the given capacity, fully available.
func NewResource(k *Kernel, capacity int64) *Resource {
	return &Resource{k: k, capacity: capacity, avail: capacity, busySince: k.now}
}

// Capacity returns the configured capacity.
func (r *Resource) Capacity() int64 { return r.capacity }

// Avail returns the currently available units.
func (r *Resource) Avail() int64 { return r.avail }

// InUse returns capacity minus available units.
func (r *Resource) InUse() int64 { return r.capacity - r.avail }

func (r *Resource) account() {
	now := r.k.now
	r.busyIntegal += Time(r.InUse()) * (now - r.busySince)
	r.busySince = now
}

// Utilization returns the time-averaged fraction of capacity in use since
// the resource was created.
func (r *Resource) Utilization() float64 {
	r.account()
	elapsed := r.k.now
	if elapsed == 0 || r.capacity == 0 {
		return 0
	}
	return float64(r.busyIntegal) / (float64(elapsed) * float64(r.capacity))
}

// Waiting returns the number of queued acquirers — the waiting-queue
// occupancy schedulers use to detect over-subscription.
func (r *Resource) Waiting() int { return len(r.waiters) }

// TryAcquire takes n units if immediately available and nobody is queued
// ahead. It reports whether the units were taken.
func (r *Resource) TryAcquire(n int64) bool {
	if len(r.waiters) > 0 || r.avail < n {
		return false
	}
	r.account()
	r.avail -= n
	return true
}

// Acquire blocks the task until n units are available and all earlier
// waiters have been served. t must be a Proc on the same kernel.
func (r *Resource) Acquire(t runtime.Task, n int64) {
	p := t.(*Proc)
	if n > r.capacity {
		panic("sim: Resource.Acquire exceeds capacity")
	}
	if r.TryAcquire(n) {
		return
	}
	granted := false
	r.waiters = append(r.waiters, resWaiter{t: p.prepare(), n: n, granted: &granted})
	for !granted {
		p.park()
		if !granted {
			// Spurious wake (e.g. from a stale ticket); re-park with a
			// fresh ticket wired to the same waiter entry.
			for i := range r.waiters {
				if r.waiters[i].granted == &granted {
					r.waiters[i].t = p.prepare()
				}
			}
		}
	}
}

// Release returns n units and grants as many queued waiters as now fit, in
// FIFO order.
func (r *Resource) Release(n int64) {
	r.account()
	r.avail += n
	if r.avail > r.capacity {
		panic("sim: Resource.Release over capacity")
	}
	for len(r.waiters) > 0 && r.waiters[0].n <= r.avail {
		w := r.waiters[0]
		r.waiters = r.waiters[1:]
		r.avail -= w.n
		*w.granted = true
		w.t.Wake()
	}
}
