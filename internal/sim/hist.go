package sim

import "leed/internal/runtime"

// Histogram is the log-linear latency histogram shared by both runtime
// backends; it lives in internal/runtime and is aliased here so sim-side
// code keeps its historical spelling.
type Histogram = runtime.Histogram

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return runtime.NewHistogram() }
