package sim

// Event is a one-shot completion signal with an optional payload. Any number
// of procs may Wait on it and any number of callbacks may be attached; all
// are released when Fire is called. Firing twice panics: completions in this
// system are single-owner.
type Event struct {
	k       *Kernel
	fired   bool
	val     any
	waiters []Ticket
	cbs     []func(val any)
}

// NewEvent returns an unfired event.
func (k *Kernel) NewEvent() *Event { return &Event{k: k} }

// Fired reports whether the event has fired.
func (e *Event) Fired() bool { return e.fired }

// Value returns the payload passed to Fire, or nil if not yet fired.
func (e *Event) Value() any { return e.val }

// Fire marks the event complete, wakes all waiters, and schedules all
// callbacks at the current virtual time.
func (e *Event) Fire(val any) {
	if e.fired {
		panic("sim: Event fired twice")
	}
	e.fired = true
	e.val = val
	for _, t := range e.waiters {
		t.Wake()
	}
	e.waiters = nil
	for _, cb := range e.cbs {
		cb := cb
		e.k.At(e.k.now, func() { cb(val) })
	}
	e.cbs = nil
}

// OnFire registers fn to run (as a scheduled kernel event) when the event
// fires. If the event already fired, fn is scheduled immediately.
func (e *Event) OnFire(fn func(val any)) {
	if e.fired {
		v := e.val
		e.k.At(e.k.now, func() { fn(v) })
		return
	}
	e.cbs = append(e.cbs, fn)
}

// Timer returns an event that fires (with a nil payload) after d.
func (k *Kernel) Timer(d Time) *Event {
	ev := k.NewEvent()
	k.After(d, func() { ev.Fire(nil) })
	return ev
}
