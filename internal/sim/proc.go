package sim

import (
	"fmt"
	stdruntime "runtime"

	"leed/internal/runtime"
)

// Proc is a simulated process: a goroutine whose execution is interleaved
// deterministically by the kernel. At most one proc runs at any instant; a
// proc runs from the moment it is resumed until it blocks in one of the
// waiting primitives (Sleep, Wait, Queue.Get, Resource.Acquire, ...).
type Proc struct {
	k       *Kernel
	name    string
	resume  chan bool
	done    bool
	parked  bool
	parkSeq uint64
}

// Go starts fn as a new proc. The proc begins running at the current virtual
// time, after already-scheduled same-time events. name is used in panics and
// debugging output.
func (k *Kernel) Go(name string, fn func(p *Proc)) *Proc {
	k.nproc++
	p := &Proc{k: k, name: fmt.Sprintf("%s#%d", name, k.nproc), resume: make(chan bool)}
	k.procs[p] = struct{}{}
	go func() {
		if ok := <-p.resume; !ok {
			return
		}
		defer func() {
			if r := recover(); r != nil {
				buf := make([]byte, 16<<10)
				n := stdruntime.Stack(buf, false)
				p.k.fault = fmt.Errorf("sim: proc %s panicked: %v\n%s", p.name, r, buf[:n])
			}
			// Normally this runs while the kernel is blocked in kick, but a
			// proc released by Close unwinds concurrently with Close's sweep
			// of the proc table — hence pmu.
			p.k.pmu.Lock()
			p.done = true
			delete(p.k.procs, p)
			p.k.pmu.Unlock()
			p.k.yield <- struct{}{}
		}()
		fn(p)
	}()
	k.At(k.now, func() { k.kick(p) })
	return p
}

// Name returns the proc's debug name.
func (p *Proc) Name() string { return p.name }

// Kernel returns the kernel this proc runs on.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// kick resumes a parked proc and blocks until it yields again. Must only be
// called from kernel event context.
func (k *Kernel) kick(p *Proc) {
	if p.done {
		return
	}
	p.resume <- true
	<-k.yield
}

// Ticket is a one-shot wakeup permit for a proc about to park. Primitives
// obtain a ticket with prepare(), register it wherever the wakeup will come
// from, then park. A ticket whose proc has moved on (woken by something
// else, or exited) is silently ignored, so stale wakeups are harmless.
type Ticket struct {
	p   *Proc
	seq uint64
}

// prepare issues the ticket for the proc's next park.
func (p *Proc) prepare() Ticket {
	p.parkSeq++
	return Ticket{p: p, seq: p.parkSeq}
}

// Wake schedules the ticket's proc to resume at the current virtual time.
// Safe to call multiple times and from any kernel context.
func (t Ticket) Wake() {
	k := t.p.k
	k.At(k.now, func() {
		if t.p.done || !t.p.parked || t.p.parkSeq != t.seq {
			return
		}
		k.kick(t.p)
	})
}

// WakeAfter schedules the wakeup d into the future.
func (t Ticket) WakeAfter(d Time) {
	k := t.p.k
	k.After(d, func() {
		if t.p.done || !t.p.parked || t.p.parkSeq != t.seq {
			return
		}
		k.kick(t.p)
	})
}

// Prepare issues a wakeup ticket for the proc's next Park. Custom blocking
// primitives outside this package use Prepare/Park the same way Queue and
// Resource do: issue a ticket, register it with whoever will wake you, then
// Park. The ticket is returned as a runtime.Ticket so such primitives work
// on any runtime backend.
func (p *Proc) Prepare() runtime.Ticket { return p.prepare() }

// Park blocks the proc until a ticket from the most recent Prepare is
// woken. Callers must loop on their condition: wakeups may be spurious.
func (p *Proc) Park() { p.park() }

// park blocks the proc until its current ticket is woken.
func (p *Proc) park() {
	p.parked = true
	p.k.yield <- struct{}{}
	if ok := <-p.resume; !ok {
		stdruntime.Goexit()
	}
	p.parked = false
}

// Sleep blocks the proc for d of virtual time.
func (p *Proc) Sleep(d Time) {
	if d <= 0 {
		// Yield anyway so same-time events get a chance to run in order.
		d = 0
	}
	t := p.prepare()
	t.WakeAfter(d)
	p.park()
}

// Wait blocks until ev fires and returns its payload. If ev has already
// fired it returns immediately without yielding. ev must be a sim Event
// created on the same kernel; the runtime.Event parameter type lets code
// written against runtime.Task run unchanged here.
func (p *Proc) Wait(ev runtime.Event) any {
	e := ev.(*Event)
	if e.fired {
		return e.val
	}
	t := p.prepare()
	e.waiters = append(e.waiters, t)
	p.park()
	return e.val
}

// WaitAll blocks until every event has fired.
func (p *Proc) WaitAll(evs ...*Event) {
	for _, ev := range evs {
		p.Wait(ev)
	}
}

// WaitAny blocks until at least one event has fired and returns the index of
// the first fired event (lowest index among those already fired on wakeup).
func (p *Proc) WaitAny(evs ...*Event) int {
	for {
		for i, ev := range evs {
			if ev.fired {
				return i
			}
		}
		t := p.prepare()
		for _, ev := range evs {
			ev.waiters = append(ev.waiters, t)
		}
		p.park()
	}
}
