// Package platform assembles the simulated hardware a storage node runs on:
// CPU cores, DRAM budget, NVMe drives, NIC bandwidth, and a power meter. The
// three profiles mirror the paper's testbed (§4.1): the Broadcom Stingray
// PS1100R SmartNIC JBOF, a dual-Xeon server JBOF, and a Raspberry Pi 3B+
// embedded node.
package platform

import (
	"leed/internal/flashsim"
	"leed/internal/power"
	"leed/internal/runtime"
)

// Core is one CPU core. Compute phases consume virtual time proportional to
// their cycle cost at the core's frequency, and draw the core's dynamic
// power while running. A core is owned by at most one executor proc at a
// time; exclusivity is the caller's business (the engine pins one event loop
// per core, as LEED does).
type Core struct {
	ID     int
	FreqHz int64
	busy   *power.Component
}

// CycleTime converts a cycle count to virtual time on this core.
func (c *Core) CycleTime(cycles int64) runtime.Time {
	return runtime.Time(cycles * int64(runtime.Second) / c.FreqHz)
}

// Run blocks the proc for d of compute, drawing dynamic power.
func (c *Core) Run(p runtime.Task, d runtime.Time) {
	if d <= 0 {
		return
	}
	c.busy.Begin()
	p.Sleep(d)
	c.busy.End()
}

// RunCycles blocks the proc for the given cycle count of compute.
func (c *Core) RunCycles(p runtime.Task, cycles int64) { c.Run(p, c.CycleTime(cycles)) }

// PinPolling marks the core as a busy-polling core: it draws its dynamic
// power permanently, whether or not useful work runs (§4.1: polling eight
// cores costs 7.5W over idle on the Stingray).
func (c *Core) PinPolling() { c.busy.PinActive() }

// BusySeconds reports the accumulated active compute time.
func (c *Core) BusySeconds() float64 { return c.busy.BusySeconds() }

// Spec describes a platform profile.
type Spec struct {
	Name        string
	NumCores    int
	CoreFreqHz  int64
	DRAMBytes   int64
	NICBitsPerS int64 // network bandwidth
	// Power model: idle platform draw plus per-core dynamic draw.
	IdleWatts    float64
	CoreWatts    float64
	SSDWatts     float64 // per-SSD active (busy) draw
	MemBWBytesPS int64   // onboard memory bandwidth (bounds concurrent ops, §4.8)
	SSDSpec      func(capacity int64) flashsim.Spec
}

// Stingray is the Broadcom Stingray PS1100R profile: 8x3.0GHz ARM A72, 8GB
// DRAM, 100GbE, 45W idle / 52.5W fully active, DCT983 NVMe drives,
// 4390 MB/s onboard memory bandwidth.
func Stingray() Spec {
	return Spec{
		Name:         "Stingray",
		NumCores:     8,
		CoreFreqHz:   3_000_000_000,
		DRAMBytes:    8 << 30,
		NICBitsPerS:  100_000_000_000,
		IdleWatts:    45.0,
		CoreWatts:    7.5 / 8,
		SSDWatts:     0, // folded into the measured 52.5W envelope
		MemBWBytesPS: 4390 << 20,
		SSDSpec:      flashsim.SamsungDCT983,
	}
}

// ServerJBOF is the dual Intel Xeon Gold 5218 storage server profile: 32
// cores at 2.3GHz, 96GB DRAM, 100GbE, ~252W under load.
func ServerJBOF() Spec {
	return Spec{
		Name:         "ServerJBOF",
		NumCores:     32,
		CoreFreqHz:   2_300_000_000,
		DRAMBytes:    96 << 30,
		NICBitsPerS:  100_000_000_000,
		IdleWatts:    168.0,
		CoreWatts:    2.4, // 168 + 32*2.4 + 4*1.2 = 249.6W fully busy
		SSDWatts:     1.2,
		MemBWBytesPS: 40 << 30,
		SSDSpec:      flashsim.SamsungDCT983,
	}
}

// RaspberryPi is the Raspberry Pi 3 Model B+ profile: 4x1.4GHz Cortex-A53,
// 1GB DRAM, 1GbE (over USB2: ~300Mb effective), 3.6W idle / ~4.2W active,
// one SanDisk SD card.
func RaspberryPi() Spec {
	return Spec{
		Name:         "RaspberryPi",
		NumCores:     4,
		CoreFreqHz:   1_400_000_000,
		DRAMBytes:    1 << 30,
		NICBitsPerS:  1_000_000_000,
		IdleWatts:    3.6,
		CoreWatts:    0.15,
		SSDWatts:     0,
		MemBWBytesPS: 2 << 30,
		SSDSpec:      flashsim.SanDiskSD,
	}
}

// Node is one instantiated platform: cores, drives, and a meter on a kernel.
type Node struct {
	Spec  Spec
	Env   runtime.Env
	Cores []*Core
	SSDs  []*flashsim.SSD
	Meter *power.Meter

	ssdBusy []*power.Component
}

// NewNode instantiates a platform with numSSDs drives of ssdCapacity bytes
// each. seed perturbs device jitter streams so distinct nodes decorrelate.
func NewNode(env runtime.Env, spec Spec, numSSDs int, ssdCapacity int64, seed int64) *Node {
	n := &Node{Spec: spec, Env: env, Meter: power.NewMeter(env, spec.IdleWatts)}
	for i := 0; i < spec.NumCores; i++ {
		n.Cores = append(n.Cores, &Core{
			ID:     i,
			FreqHz: spec.CoreFreqHz,
			busy:   n.Meter.NewComponent("core", spec.CoreWatts),
		})
	}
	for i := 0; i < numSSDs; i++ {
		ss := spec.SSDSpec(ssdCapacity)
		ss.Seed = seed*1000 + int64(i)
		ssd := flashsim.NewSSD(env, ss)
		n.SSDs = append(n.SSDs, ssd)
		n.ssdBusy = append(n.ssdBusy, n.Meter.NewComponent("ssd", spec.SSDWatts))
	}
	return n
}

// TotalFlash returns the node's aggregate flash capacity in bytes.
func (n *Node) TotalFlash() int64 {
	var t int64
	for _, d := range n.SSDs {
		t += d.Capacity()
	}
	return t
}

// MarkSSDActive begins drawing the per-SSD active power for drive i.
// Engines call it once a drive enters service.
func (n *Node) MarkSSDActive(i int) { n.ssdBusy[i].PinActive() }
