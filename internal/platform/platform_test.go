package platform

import (
	"testing"

	"leed/internal/sim"
)

func TestCoreCycleTime(t *testing.T) {
	k := sim.New()
	defer k.Close()
	n := NewNode(k, Stingray(), 1, 1<<20, 0)
	c := n.Cores[0]
	// 3000 cycles at 3GHz = 1us.
	if d := c.CycleTime(3000); d != sim.Microsecond {
		t.Fatalf("CycleTime = %v", d)
	}
}

func TestCoreRunConsumesTimeAndPower(t *testing.T) {
	k := sim.New()
	defer k.Close()
	n := NewNode(k, Stingray(), 1, 1<<20, 0)
	c := n.Cores[0]
	k.Go("w", func(p *sim.Proc) {
		c.RunCycles(p, 3_000_000_000) // 1 second of compute
	})
	end := k.Run()
	if end != sim.Second {
		t.Fatalf("end = %v", end)
	}
	if b := c.BusySeconds(); b < 0.999 || b > 1.001 {
		t.Fatalf("busy = %v s", b)
	}
	// 45W idle + ~0.94W one busy core.
	w := n.Meter.AvgWatts()
	if w < 45.5 || w > 46.5 {
		t.Fatalf("avg watts = %v", w)
	}
}

func TestStingrayFullPollPower(t *testing.T) {
	k := sim.New()
	defer k.Close()
	n := NewNode(k, Stingray(), 4, 1<<20, 0)
	for _, c := range n.Cores {
		c.PinPolling()
	}
	k.At(sim.Second, func() {})
	k.Run()
	w := n.Meter.AvgWatts()
	if w < 52.4 || w > 52.6 {
		t.Fatalf("fully-polled Stingray draws %v W, want 52.5", w)
	}
}

func TestProfileShapes(t *testing.T) {
	st, sv, pi := Stingray(), ServerJBOF(), RaspberryPi()
	if st.NumCores != 8 || sv.NumCores != 32 || pi.NumCores != 4 {
		t.Fatal("core counts wrong")
	}
	if !(pi.IdleWatts < st.IdleWatts && st.IdleWatts < sv.IdleWatts) {
		t.Fatal("idle power ordering wrong")
	}
	if !(pi.NICBitsPerS < st.NICBitsPerS && st.NICBitsPerS == sv.NICBitsPerS) {
		t.Fatal("NIC bandwidth ordering wrong")
	}
	// Table 1 storage-hierarchy skew: flash:DRAM ratio must be ~1024 for
	// SmartNIC JBOF with 4x960GB per 8GB DRAM scaled, ~16 for embedded.
	stRatio := float64(4*960<<30) / float64(st.DRAMBytes)
	if stRatio < 400 || stRatio > 1100 {
		t.Fatalf("stingray flash:DRAM ratio = %.0f", stRatio)
	}
}

func TestNodeAssembly(t *testing.T) {
	k := sim.New()
	defer k.Close()
	n := NewNode(k, ServerJBOF(), 8, 4<<20, 7)
	if len(n.SSDs) != 8 || len(n.Cores) != 32 {
		t.Fatalf("node = %d ssds, %d cores", len(n.SSDs), len(n.Cores))
	}
	if n.TotalFlash() != 8*4<<20 {
		t.Fatalf("total flash = %d", n.TotalFlash())
	}
}
