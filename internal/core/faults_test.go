package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"leed/internal/flashsim"
	"leed/internal/sim"
)

// Failure-injection tests: the store must surface device errors cleanly and
// keep previously written data intact and readable once faults clear.

func newFaultyStore(k sim.Runner) (*Store, *flashsim.FaultInjector) {
	inner := flashsim.NewMemDevice(k, 8<<20)
	fi := flashsim.NewFaultInjector(k, inner, 1)
	s := NewStore(Config{
		Env: k, Device: fi, NumSegments: 64,
		KeyLogBytes: 2 << 20, ValLogBytes: 4 << 20,
	})
	return s, fi
}

func TestStoreSurfacesWriteFaults(t *testing.T) {
	k := sim.New()
	defer k.Close()
	s, fi := newFaultyStore(k)
	runStore(k, func(p *sim.Proc) {
		s.Put(p, []byte("pre"), []byte("v"))
		fi.ErrorRate = 1.0
		fi.FailWritesOnly = true
		if _, err := s.Put(p, []byte("k"), []byte("v")); !errors.Is(err, flashsim.ErrInjected) {
			t.Errorf("put during faults: %v", err)
		}
		fi.ErrorRate = 0
		// Reads of pre-fault data still work; the store stays usable.
		if v, _, err := s.Get(p, []byte("pre")); err != nil || string(v) != "v" {
			t.Errorf("pre-fault data: %q, %v", v, err)
		}
		if _, err := s.Put(p, []byte("k"), []byte("v2")); err != nil {
			t.Errorf("put after faults clear: %v", err)
		}
		if v, _, err := s.Get(p, []byte("k")); err != nil || string(v) != "v2" {
			t.Errorf("get after recovery: %q, %v", v, err)
		}
	})
	if fi.Injected() == 0 {
		t.Fatal("no faults injected")
	}
}

func TestStoreSurfacesReadFaults(t *testing.T) {
	k := sim.New()
	defer k.Close()
	s, fi := newFaultyStore(k)
	runStore(k, func(p *sim.Proc) {
		s.Put(p, []byte("k"), []byte("v"))
		fi.ErrorRate = 1.0
		fi.FailReadsOnly = true
		if _, _, err := s.Get(p, []byte("k")); !errors.Is(err, flashsim.ErrInjected) {
			t.Errorf("get during faults: %v", err)
		}
		fi.ErrorRate = 0
		if v, _, err := s.Get(p, []byte("k")); err != nil || string(v) != "v" {
			t.Errorf("get after faults clear: %q, %v", v, err)
		}
	})
}

func TestStoreSurvivesIntermittentFaultStorm(t *testing.T) {
	// Property-style: 10% of device ops fail at random; every op that the
	// store REPORTS as successful must remain durable and readable once
	// faults stop.
	k := sim.New()
	defer k.Close()
	s, fi := newFaultyStore(k)
	fi.ErrorRate = 0.10
	model := map[string]string{}
	runStore(k, func(p *sim.Proc) {
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 800; i++ {
			key := fmt.Sprintf("k%03d", rng.Intn(150))
			val := fmt.Sprintf("v%d", i)
			if _, err := s.Put(p, []byte(key), []byte(val)); err == nil {
				model[key] = val
			}
		}
		fi.ErrorRate = 0
		for key, want := range model {
			v, _, err := s.Get(p, []byte(key))
			if err != nil || string(v) != want {
				t.Errorf("acknowledged write lost: %q = %q, %v (want %q)", key, v, err, want)
				return
			}
		}
	})
	if fi.Injected() == 0 {
		t.Fatal("storm injected nothing")
	}
}

func TestCompactionToleratesFaults(t *testing.T) {
	k := sim.New()
	defer k.Close()
	s, fi := newFaultyStore(k)
	runStore(k, func(p *sim.Proc) {
		for r := 0; r < 3; r++ {
			for i := 0; i < 100; i++ {
				s.Put(p, []byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%d-%d", r, i)))
			}
		}
		fi.ErrorRate = 0.3
		// Compaction under faults may reclaim little, but must not corrupt.
		for i := 0; i < 5; i++ {
			s.CompactValueLog(p)
			s.CompactKeyLog(p)
		}
		fi.ErrorRate = 0
		for i := 0; i < 5; i++ {
			s.CompactValueLog(p)
			s.CompactKeyLog(p)
		}
		for i := 0; i < 100; i++ {
			key := fmt.Sprintf("k%03d", i)
			v, _, err := s.Get(p, []byte(key))
			if err != nil || string(v) != fmt.Sprintf("v2-%d", i) {
				t.Errorf("post-fault compaction lost %q: %q, %v", key, v, err)
				return
			}
		}
	})
}

func TestFaultInjectorFailAfter(t *testing.T) {
	k := sim.New()
	defer k.Close()
	inner := flashsim.NewMemDevice(k, 1<<20)
	fi := flashsim.NewFaultInjector(k, inner, 2)
	fi.FailAfter = 3
	var errs int
	k.Go("io", func(p *sim.Proc) {
		for i := 0; i < 6; i++ {
			op := &flashsim.Op{Kind: flashsim.OpWrite, Offset: int64(i * 100), Data: []byte("x"), Done: k.NewEvent()}
			fi.Submit(op)
			if v := p.Wait(op.Done); v != nil {
				errs++
			}
		}
	})
	k.Run()
	if errs != 3 {
		t.Fatalf("errors = %d, want 3 (ops 4-6 fail)", errs)
	}
}
