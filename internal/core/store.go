package core

import (
	"fmt"

	"leed/internal/flashsim"
	"leed/internal/runtime"
)

// Config describes one store's geometry and wiring. A store owns one
// partition (virtual node) of one SSD, laid out as:
//
//	[superblock | key log | value log | swap log]
//
// The swap log is the region *other* co-located stores may borrow to absorb
// overloaded writes (§3.6).
type Config struct {
	Env    runtime.Env
	Device flashsim.Device
	DevID  uint8 // identifier of this store's SSD within the JBOF
	Exec   Exec
	Costs  CostModel

	BlockSize   int // bucket block size; default 512
	NumSegments int
	MaxChain    int // M: max chained buckets per segment; default 4

	RegionOff    int64
	KeyLogBytes  int64
	ValLogBytes  int64
	SwapLogBytes int64

	SubCompactions int     // S: parallel sub-compactions; default 4
	Prefetch       bool    // prefetch the next compaction's input (§3.3.1)
	CompactChunk   int64   // bytes compacted per round; default 256KiB
	CompactAt      float64 // used/size ratio that triggers compaction; default 0.75

	// MergeOK gates swap merge-back during value-log compaction: §3.6
	// merges swapped data back "when the home SSD has available
	// bandwidth", so the engine wires this to an idleness check. Nil
	// means always merge (single-store usage).
	MergeOK func() bool
}

func (c *Config) setDefaults() {
	if c.BlockSize == 0 {
		c.BlockSize = 512
	}
	if c.MaxChain == 0 {
		c.MaxChain = 4
	}
	if c.SubCompactions == 0 {
		c.SubCompactions = 4
	}
	if c.CompactChunk == 0 {
		c.CompactChunk = 256 << 10
	}
	if c.CompactAt == 0 {
		c.CompactAt = 0.75
	}
	if c.Exec == nil {
		c.Exec = NopExec{}
	}
	if c.Costs == (CostModel{}) {
		c.Costs = DefaultCosts()
	}
}

// Stats are cumulative store counters.
type Stats struct {
	Gets, Puts, Dels int64
	NotFounds        int64
	Objects          int64 // live, non-tombstone objects
	LiveValBytes     int64
	KeyCompactions   int64
	ValCompactions   int64
	RelocatedItems   int64
	ReclaimedBytes   int64
	SwappedPuts      int64
	MergedSwaps      int64
	PrefetchHits     int64
	SegmentFull      int64
}

// Store is one LEED data store (§3.2): circular key and value logs on an
// SSD partition plus the in-DRAM segment table.
type Store struct {
	cfg     Config
	env     runtime.Env
	keyLog  *CircLog
	valLog  *CircLog
	swapLog *CircLog
	segs    *SegTbl
	seq     uint64

	peers map[uint8]*Store // co-located stores by DevID, for swap reads

	valGarbage int64 // dead bytes in the value log
	keyGarbage int64 // dead bytes in the key log

	pendingSwaps map[uint32]struct{} // segments holding swapped-out values
	swapMeta     map[int64]int64     // swap-log entry offset -> size (as helper)
	swapMerged   map[int64]bool      // swap-log entries merged back by homes

	kpf prefetchBuf // key-log compaction prefetch
	vpf prefetchBuf // value-log compaction prefetch

	compacting bool // guards against overlapping whole-log compactions

	// bufFree recycles GetInto's segment and value-entry buffers. It is
	// task-context state: the execution contract serializes every store
	// caller, and a buffer is popped before use, so a task parking mid-GET
	// simply holds its buffers outside the list until putBuf returns them.
	bufFree [][]byte

	stats Stats
}

type prefetchBuf struct {
	valid bool
	off   int64
	buf   []byte
	ev    runtime.Event
}

// NewStore creates a store over its device region. The region is assumed
// pristine; use Recover to rebuild state from flash instead.
func NewStore(cfg Config) *Store {
	cfg.setDefaults()
	if cfg.NumSegments <= 0 {
		panic("core: Config.NumSegments must be positive")
	}
	bs := int64(cfg.BlockSize)
	off := cfg.RegionOff + bs // block 0 is the superblock
	s := &Store{
		cfg:          cfg,
		env:          cfg.Env,
		segs:         NewSegTbl(cfg.NumSegments),
		peers:        make(map[uint8]*Store),
		pendingSwaps: make(map[uint32]struct{}),
		swapMeta:     make(map[int64]int64),
		swapMerged:   make(map[int64]bool),
	}
	s.keyLog = NewCircLog(cfg.Env, cfg.Device, off, cfg.KeyLogBytes)
	off += cfg.KeyLogBytes
	s.valLog = NewCircLog(cfg.Env, cfg.Device, off, cfg.ValLogBytes)
	off += cfg.ValLogBytes
	if cfg.SwapLogBytes > 0 {
		s.swapLog = NewCircLog(cfg.Env, cfg.Device, off, cfg.SwapLogBytes)
	}
	s.peers[cfg.DevID] = s
	return s
}

// Config returns the store's configuration.
func (s *Store) Config() Config { return s.cfg }

// Stats returns cumulative counters.
func (s *Store) Stats() Stats { return s.stats }

// DRAMBytes returns the modeled DRAM footprint of the store's index.
func (s *Store) DRAMBytes() int64 { return s.segs.DRAMBytes() }

// Objects returns the live object count.
func (s *Store) Objects() int64 { return s.stats.Objects }

// KeyLog and ValLog expose the logs for inspection and tests.
func (s *Store) KeyLog() *CircLog { return s.keyLog }

// ValLog returns the value log.
func (s *Store) ValLog() *CircLog { return s.valLog }

// SwapLog returns the swap region, or nil if not configured.
func (s *Store) SwapLog() *CircLog { return s.swapLog }

// AddPeer registers a co-located store so swapped values can be read and
// merged back. Both directions must be registered by the engine.
func (s *Store) AddPeer(p *Store) { s.peers[p.cfg.DevID] = p }

// cpu charges cycles to the executor and attributes elapsed time to st.CPU.
func (s *Store) cpu(p runtime.Task, st *OpStats, cycles int64) {
	t0 := p.Now()
	s.cfg.Exec.Compute(p, cycles)
	st.CPU += p.Now() - t0
}

// ssdWait waits for device events and attributes elapsed time to st.SSD.
func (s *Store) ssdWait(p runtime.Task, st *OpStats, evs ...runtime.Event) error {
	t0 := p.Now()
	var err error
	for _, ev := range evs {
		if v := p.Wait(ev); v != nil && err == nil {
			err = v.(error)
		}
	}
	st.SSD += p.Now() - t0
	return err
}

// segBytes returns the byte size of a chainLen-bucket segment array.
func (s *Store) segBytes(chainLen int) int64 {
	return int64(chainLen) * int64(s.cfg.BlockSize)
}

// readSegment reads and parses the segment array from the home key log.
// Caller holds the lock.
func (s *Store) readSegment(p runtime.Task, st *OpStats, off int64, chainLen int) ([]*Bucket, error) {
	buf := make([]byte, s.segBytes(chainLen))
	ev, err := s.keyLog.ReadAsync(off, buf)
	if err != nil {
		return nil, err
	}
	st.Reads++
	if err := s.ssdWait(p, st, ev); err != nil {
		return nil, err
	}
	return s.parseSegment(buf, chainLen)
}

// segmentReadEv issues the read for a segment's array from wherever it
// lives — the home key log or a peer's swap region (§3.6) — returning the
// completion event and destination buffer.
func (s *Store) segmentReadEv(seg uint32, off int64, chainLen int) (runtime.Event, []byte, error) {
	buf := make([]byte, s.segBytes(chainLen))
	devID, remote := s.segs.Location(seg)
	if !remote {
		ev, err := s.keyLog.ReadAsync(off, buf)
		return ev, buf, err
	}
	peer, found := s.peers[devID]
	if !found || peer.swapLog == nil {
		return nil, nil, fmt.Errorf("%w: swapped segment on unknown peer %d", ErrCorrupt, devID)
	}
	ev, err := peer.swapLog.ReadAsync(off, buf)
	return ev, buf, err
}

// loadSegment looks up and reads a segment's current array. found is false
// when the segment is empty. Caller holds the lock.
func (s *Store) loadSegment(p runtime.Task, st *OpStats, seg uint32) (buckets []*Bucket, found bool, err error) {
	off, chainLen, ok := s.segs.Lookup(seg)
	if !ok {
		return nil, false, nil
	}
	ev, buf, err := s.segmentReadEv(seg, off, chainLen)
	if err != nil {
		return nil, true, err
	}
	st.Reads++
	if err := s.ssdWait(p, st, ev); err != nil {
		return nil, true, err
	}
	b, err := s.parseSegment(buf, chainLen)
	return b, true, err
}

func (s *Store) parseSegment(buf []byte, chainLen int) ([]*Bucket, error) {
	bs := s.cfg.BlockSize
	buckets := make([]*Bucket, 0, chainLen)
	for i := 0; i < chainLen; i++ {
		b, err := UnmarshalBucket(buf[i*bs : (i+1)*bs])
		if err != nil {
			return nil, err
		}
		buckets = append(buckets, b)
	}
	return buckets, nil
}

// marshalSegment serializes buckets into a contiguous array, refreshing
// chain metadata and recovery hints.
func (s *Store) marshalSegment(segID uint32, buckets []*Bucket) ([]byte, error) {
	bs := s.cfg.BlockSize
	s.seq++
	out := make([]byte, len(buckets)*bs)
	for i, b := range buckets {
		b.SegID = segID
		b.ChainLen = uint8(len(buckets))
		b.ChainPos = uint8(i)
		b.ValHeadHint = s.valLog.Head()
		b.ValTailHint = s.valLog.Tail()
		b.Seq = s.seq
		if err := b.Marshal(out[i*bs : (i+1)*bs]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// findItem locates key in the segment's buckets, charging scan cycles.
func (s *Store) findItem(p runtime.Task, st *OpStats, buckets []*Bucket, key []byte) (bi, ii int) {
	scanned := int64(0)
	for i, b := range buckets {
		for j := range b.Items {
			scanned++
			if string(b.Items[j].Key) == string(key) {
				s.cpu(p, st, scanned*s.cfg.Costs.ItemScan)
				return i, j
			}
		}
	}
	s.cpu(p, st, scanned*s.cfg.Costs.ItemScan)
	return -1, -1
}

// Get looks up key and returns a copy of its value (§3.3: SegTbl in DRAM,
// one key-log access, one value-log access).
func (s *Store) Get(p runtime.Task, key []byte) ([]byte, OpStats, error) {
	var st OpStats
	s.stats.Gets++
	h := HashKey(key)
	seg := SegmentOf(h, s.cfg.NumSegments)
	s.cpu(p, &st, s.cfg.Costs.HashLookup)
	s.segs.RLock(p, seg)
	defer s.segs.RUnlock(seg)

	buckets, found, err := s.loadSegment(p, &st, seg)
	if err != nil {
		return nil, st, err
	}
	if !found {
		s.stats.NotFounds++
		return nil, st, ErrNotFound
	}
	bi, ii := s.findItem(p, &st, buckets, key)
	if bi < 0 || buckets[bi].Items[ii].Deleted() {
		s.stats.NotFounds++
		return nil, st, ErrNotFound
	}
	it := &buckets[bi].Items[ii]
	entry := make([]byte, ValueEntrySize(len(key), int(it.ValLen)))
	var ev runtime.Event
	if it.SSDID == s.cfg.DevID {
		ev, err = s.valLog.ReadAsync(it.ValOff, entry)
	} else {
		peer, found := s.peers[it.SSDID]
		if !found {
			return nil, st, fmt.Errorf("%w: unknown swap peer %d", ErrCorrupt, it.SSDID)
		}
		ev, err = peer.swapLog.ReadAsync(it.ValOff, entry)
	}
	if err != nil {
		return nil, st, err
	}
	st.Reads++
	if err := s.ssdWait(p, &st, ev); err != nil {
		return nil, st, err
	}
	s.cpu(p, &st, s.cfg.Costs.ValueParse)
	ekey, eval, _, err := ParseValueEntry(entry)
	if err != nil {
		return nil, st, err
	}
	if string(ekey) != string(key) {
		return nil, st, fmt.Errorf("%w: value entry key mismatch", ErrCorrupt)
	}
	return append([]byte(nil), eval...), st, nil
}

// getBuf rents an n-byte buffer from the store's free list (single-owner:
// the returned buffer is out of the list until putBuf).
func (s *Store) getBuf(n int) []byte {
	for i := len(s.bufFree) - 1; i >= 0; i-- {
		if cap(s.bufFree[i]) >= n {
			b := s.bufFree[i]
			last := len(s.bufFree) - 1
			s.bufFree[i] = s.bufFree[last]
			s.bufFree[last] = nil
			s.bufFree = s.bufFree[:last]
			return b[:n]
		}
	}
	return make([]byte, n)
}

// putBuf returns a rented buffer. Oversized buffers and overflow beyond a
// small list are dropped to the GC — the list only needs to cover the
// handful of buffers live at the hot path's steady-state concurrency.
func (s *Store) putBuf(b []byte) {
	if cap(b) == 0 || cap(b) > 64<<10 || len(s.bufFree) >= 16 {
		return
	}
	s.bufFree = append(s.bufFree, b[:0])
}

// readSegmentInto reads a segment's array into buf from wherever it lives
// (home key log or a peer's swap region), preferring the device's
// synchronous read path and falling back to the event-based one.
func (s *Store) readSegmentInto(p runtime.Task, st *OpStats, seg uint32, off int64, buf []byte) error {
	log := s.keyLog
	if devID, remote := s.segs.Location(seg); remote {
		peer, found := s.peers[devID]
		if !found || peer.swapLog == nil {
			return fmt.Errorf("%w: swapped segment on unknown peer %d", ErrCorrupt, devID)
		}
		log = peer.swapLog
	}
	if done, err := log.ReadNow(off, buf); done {
		st.Reads++
		return err
	}
	ev, err := log.ReadAsync(off, buf)
	if err != nil {
		return err
	}
	st.Reads++
	return s.ssdWait(p, st, ev)
}

// readValueInto reads the value entry for it into entry, from the home
// value log or the owning peer's swap region.
func (s *Store) readValueInto(p runtime.Task, st *OpStats, it *RawItem, entry []byte) error {
	log := s.valLog
	if it.SSDID != s.cfg.DevID {
		peer, found := s.peers[it.SSDID]
		if !found {
			return fmt.Errorf("%w: unknown swap peer %d", ErrCorrupt, it.SSDID)
		}
		log = peer.swapLog
	}
	if done, err := log.ReadNow(it.ValOff, entry); done {
		st.Reads++
		return err
	}
	ev, err := log.ReadAsync(it.ValOff, entry)
	if err != nil {
		return err
	}
	st.Reads++
	return s.ssdWait(p, st, ev)
}

// GetInto is the allocation-free Get: it looks up key and appends the value
// to dst, returning the extended slice. Where Get materializes every bucket
// (UnmarshalBucket copies each key and the CRC check copies each block),
// GetInto scans the serialized segment array in place from a recycled
// buffer, verifying block CRCs without a copy, and reads the value entry
// into a second recycled buffer. Costs are charged identically to Get —
// same hash/scan/parse cycles, same device reads in the same order — so the
// two paths are interchangeable to the simulator's accounting; the only
// behavioral difference is that blocks past the matching one are not
// CRC-verified. The returned slice never aliases store-owned memory.
func (s *Store) GetInto(p runtime.Task, key, dst []byte) ([]byte, OpStats, error) {
	var st OpStats
	s.stats.Gets++
	h := HashKey(key)
	seg := SegmentOf(h, s.cfg.NumSegments)
	s.cpu(p, &st, s.cfg.Costs.HashLookup)
	s.segs.RLock(p, seg)
	defer s.segs.RUnlock(seg)

	off, chainLen, ok := s.segs.Lookup(seg)
	if !ok {
		s.stats.NotFounds++
		return dst, st, ErrNotFound
	}
	segBuf := s.getBuf(int(s.segBytes(chainLen)))
	defer s.putBuf(segBuf)
	if err := s.readSegmentInto(p, &st, seg, off, segBuf); err != nil {
		return dst, st, err
	}

	bs := s.cfg.BlockSize
	var (
		it      RawItem
		scanned int64
		found   bool
	)
	for i := 0; i < chainLen && !found; i++ {
		blk := segBuf[i*bs : (i+1)*bs]
		if err := VerifyBucketBlock(blk); err != nil {
			return dst, st, err
		}
		var n int
		var err error
		it, n, found, err = ScanBucketBlock(blk, key)
		scanned += int64(n)
		if err != nil {
			return dst, st, err
		}
	}
	s.cpu(p, &st, scanned*s.cfg.Costs.ItemScan)
	if !found || it.Deleted() {
		s.stats.NotFounds++
		return dst, st, ErrNotFound
	}

	entry := s.getBuf(ValueEntrySize(len(key), int(it.ValLen)))
	defer s.putBuf(entry)
	if err := s.readValueInto(p, &st, &it, entry); err != nil {
		return dst, st, err
	}
	s.cpu(p, &st, s.cfg.Costs.ValueParse)
	ekey, eval, _, err := ParseValueEntry(entry)
	if err != nil {
		return dst, st, err
	}
	if string(ekey) != string(key) {
		return dst, st, fmt.Errorf("%w: value entry key mismatch", ErrCorrupt)
	}
	return append(dst, eval...), st, nil
}

// Put inserts or overwrites key with val (§3.3: segment read overlapped
// with value append, then bucket update and segment append — 3 NVMe
// accesses with the first two in parallel).
func (s *Store) Put(p runtime.Task, key, val []byte) (OpStats, error) {
	return s.put(p, key, val, nil)
}

// PutSwapped performs a Put whose value lands in helper's swap region
// instead of the home value log (§3.6 data swapping). helper must be a
// registered peer on the same JBOF.
func (s *Store) PutSwapped(p runtime.Task, key, val []byte, helper *Store) (OpStats, error) {
	return s.put(p, key, val, helper)
}

func (s *Store) put(p runtime.Task, key, val []byte, helper *Store) (OpStats, error) {
	var st OpStats
	if len(key) > MaxKeyLen {
		return st, ErrKeyTooLarge
	}
	if len(val) == 0 {
		return st, fmt.Errorf("%w: empty values are not supported (zero marks deletion)", ErrValueTooLarge)
	}
	s.stats.Puts++
	for attempt := 0; ; attempt++ {
		err := s.tryPut(p, &st, key, val, helper)
		if err != ErrLogFull && err != nil || err == nil {
			return st, err
		}
		if attempt >= 2 {
			return st, ErrLogFull
		}
		// Reclaim space synchronously, then retry the command.
		if _, cerr := s.CompactValueLog(p); cerr != nil && cerr != ErrLogFull {
			return st, cerr
		}
		if _, cerr := s.CompactKeyLog(p); cerr != nil && cerr != ErrLogFull {
			return st, cerr
		}
	}
}

func (s *Store) tryPut(p runtime.Task, st *OpStats, key, val []byte, helper *Store) error {
	h := HashKey(key)
	seg := SegmentOf(h, s.cfg.NumSegments)
	s.cpu(p, st, s.cfg.Costs.HashLookup)
	s.segs.Lock(p, seg)
	defer s.segs.Unlock(seg)

	// Value append, issued first so it overlaps the segment read.
	entry := make([]byte, ValueEntrySize(len(key), len(val)))
	if err := MarshalValueEntry(entry, key, val); err != nil {
		return err
	}
	s.cpu(p, st, s.cfg.Costs.AppendBook)
	var (
		valOff int64
		valEv  runtime.Event
		err    error
		ssdID  = s.cfg.DevID
	)
	if helper != nil && helper != s {
		valOff, valEv, err = helper.AppendSwap(entry)
		ssdID = helper.cfg.DevID
	} else {
		valOff, valEv, err = s.valLog.Append(entry)
	}
	if err != nil {
		return err
	}
	st.Writes++

	// Segment read in parallel with the value write, from wherever the
	// array currently lives.
	off, chainLen, ok := s.segs.Lookup(seg)
	var buckets []*Bucket
	if ok {
		readEv, buf, rerr := s.segmentReadEv(seg, off, chainLen)
		if rerr != nil {
			return rerr
		}
		st.Reads++
		if err := s.ssdWait(p, st, readEv, valEv); err != nil {
			return err
		}
		if buckets, err = s.parseSegment(buf, chainLen); err != nil {
			return err
		}
	} else {
		if err := s.ssdWait(p, st, valEv); err != nil {
			return err
		}
		buckets = []*Bucket{{}}
	}

	// Update or insert the item.
	newItem := Item{Key: key, ValLen: uint32(len(val)), ValOff: valOff, SSDID: ssdID}
	bi, ii := s.findItem(p, st, buckets, key)
	s.cpu(p, st, s.cfg.Costs.BucketEdit)
	switch {
	case bi >= 0:
		old := &buckets[bi].Items[ii]
		if old.Deleted() {
			s.stats.Objects++
		} else {
			s.accountDeadValue(old, len(key))
		}
		s.stats.LiveValBytes += int64(len(val))
		newItem.Key = old.Key // reuse; identical bytes
		buckets[bi].Items[ii] = newItem
	default:
		placed := false
		for _, b := range buckets {
			if b.SpaceLeft(s.cfg.BlockSize) >= newItem.Size() {
				b.Items = append(b.Items, newItem)
				placed = true
				break
			}
		}
		if !placed {
			if len(buckets) >= s.cfg.MaxChain {
				s.stats.SegmentFull++
				s.accountDeadValueBytes(int64(len(entry))) // orphaned value append
				return ErrSegmentFull
			}
			buckets = append(buckets, &Bucket{Items: []Item{newItem}})
		}
		s.stats.Objects++
		s.stats.LiveValBytes += int64(len(val))
	}
	if ssdID != s.cfg.DevID {
		s.pendingSwaps[seg] = struct{}{}
		s.stats.SwappedPuts++
	}
	return s.writeSegment(p, st, seg, buckets, ok, helper)
}

// releaseOldSegment accounts the previous array as dead: key-log garbage
// when it lived at home, a reclaimable swap entry when it lived on a peer.
func (s *Store) releaseOldSegment(seg uint32, hadOld bool) {
	if !hadOld {
		return
	}
	off, oldChain, ok := s.segs.Lookup(seg)
	if !ok {
		return
	}
	if devID, remote := s.segs.Location(seg); remote {
		s.releaseSwapRef(devID, off)
	} else {
		s.keyGarbage += s.segBytes(oldChain)
	}
}

// writeSegment appends the segment array and updates the SegTbl. hadOld
// reports that a previous array exists; it becomes garbage wherever it
// lived. A non-nil helper redirects the array into the helper's swap
// region instead of the home key log (§3.6's full write swapping).
func (s *Store) writeSegment(p runtime.Task, st *OpStats, seg uint32, buckets []*Bucket, hadOld bool, helper *Store) error {
	img, err := s.marshalSegment(seg, buckets)
	if err != nil {
		return err
	}
	s.cpu(p, st, s.cfg.Costs.AppendBook)
	if helper != nil && helper != s {
		newOff, ev, aerr := helper.AppendSwap(img)
		if aerr != nil {
			return aerr
		}
		st.Writes++
		if err := s.ssdWait(p, st, ev); err != nil {
			return err
		}
		s.releaseOldSegment(seg, hadOld)
		s.segs.SetRemote(seg, newOff, len(buckets), helper.cfg.DevID)
		s.pendingSwaps[seg] = struct{}{}
		return nil
	}
	newOff, ev, err := s.keyLog.Append(img)
	if err != nil {
		return err
	}
	st.Writes++
	if err := s.ssdWait(p, st, ev); err != nil {
		// The blocks at newOff are torn. Reclaim the reservation so the next
		// append reuses the offset; if another append already raced past, the
		// hole stays in the log — recovery skips it and compaction reclaims it.
		if !s.keyLog.Unappend(newOff, int64(len(img))) {
			s.keyGarbage += int64(len(img))
		}
		return err
	}
	s.releaseOldSegment(seg, hadOld)
	s.segs.Set(seg, newOff, len(buckets))
	return nil
}

func (s *Store) accountDeadValue(old *Item, keyLen int) {
	s.stats.LiveValBytes -= int64(old.ValLen)
	if old.SSDID == s.cfg.DevID {
		s.accountDeadValueBytes(int64(ValueEntrySize(keyLen, int(old.ValLen))))
	} else {
		// The dead copy lives in a peer's swap region; let the peer
		// reclaim it.
		s.releaseSwapRef(old.SSDID, old.ValOff)
	}
}

func (s *Store) accountDeadValueBytes(n int64) { s.valGarbage += n }

// Del marks key deleted (§3.3: only the key log is touched; the value
// length field becomes zero as the deletion marker).
func (s *Store) Del(p runtime.Task, key []byte) (OpStats, error) {
	var st OpStats
	s.stats.Dels++
	h := HashKey(key)
	seg := SegmentOf(h, s.cfg.NumSegments)
	s.cpu(p, &st, s.cfg.Costs.HashLookup)
	s.segs.Lock(p, seg)
	defer s.segs.Unlock(seg)

	buckets, found, err := s.loadSegment(p, &st, seg)
	if err != nil {
		return st, err
	}
	if !found {
		s.stats.NotFounds++
		return st, ErrNotFound
	}
	bi, ii := s.findItem(p, &st, buckets, key)
	if bi < 0 || buckets[bi].Items[ii].Deleted() {
		s.stats.NotFounds++
		return st, ErrNotFound
	}
	it := &buckets[bi].Items[ii]
	s.accountDeadValue(it, len(key))
	it.ValLen = 0
	it.ValOff = 0
	it.SSDID = s.cfg.DevID
	s.stats.Objects--
	s.cpu(p, &st, s.cfg.Costs.BucketEdit)
	if err := s.writeSegment(p, &st, seg, buckets, true, nil); err != nil {
		return st, err
	}
	return st, nil
}

// Range iterates every live object in the store, calling fn with copies of
// each key and value. Iteration stops early if fn returns false. Each
// segment is locked while its objects are read, but fn runs unlocked, so it
// may issue store operations. Range is the substrate for the COPY primitive
// used by node join/leave (§3.8.1).
func (s *Store) Range(p runtime.Task, fn func(key, val []byte) bool) error {
	var st OpStats
	for seg := uint32(0); int(seg) < s.cfg.NumSegments; seg++ {
		s.segs.Lock(p, seg)
		buckets, found, err := s.loadSegment(p, &st, seg)
		if err != nil {
			s.segs.Unlock(seg)
			return err
		}
		if !found {
			s.segs.Unlock(seg)
			continue
		}
		type kv struct{ key, val []byte }
		var pairs []kv
		for _, b := range buckets {
			for i := range b.Items {
				it := &b.Items[i]
				if it.Deleted() {
					continue
				}
				entry := make([]byte, ValueEntrySize(len(it.Key), int(it.ValLen)))
				var ev runtime.Event
				var rerr error
				if it.SSDID == s.cfg.DevID {
					ev, rerr = s.valLog.ReadAsync(it.ValOff, entry)
				} else if peer, found := s.peers[it.SSDID]; found {
					ev, rerr = peer.swapLog.ReadAsync(it.ValOff, entry)
				} else {
					rerr = fmt.Errorf("%w: unknown swap peer %d", ErrCorrupt, it.SSDID)
				}
				if rerr != nil {
					s.segs.Unlock(seg)
					return rerr
				}
				if err := s.ssdWait(p, &st, ev); err != nil {
					s.segs.Unlock(seg)
					return err
				}
				ekey, eval, _, perr := ParseValueEntry(entry)
				if perr != nil {
					s.segs.Unlock(seg)
					return perr
				}
				pairs = append(pairs, kv{
					key: append([]byte(nil), ekey...),
					val: append([]byte(nil), eval...),
				})
			}
		}
		s.segs.Unlock(seg)
		for _, pr := range pairs {
			if !fn(pr.key, pr.val) {
				return nil
			}
		}
	}
	return nil
}

// NeedsValueCompaction reports whether the value log crossed the trigger.
func (s *Store) NeedsValueCompaction() bool {
	return float64(s.valLog.Used()) >= s.cfg.CompactAt*float64(s.valLog.Size()) && s.valGarbage > 0
}

// NeedsKeyCompaction reports whether the key log crossed the trigger.
func (s *Store) NeedsKeyCompaction() bool {
	return float64(s.keyLog.Used()) >= s.cfg.CompactAt*float64(s.keyLog.Size()) && s.keyGarbage > 0
}

// ValGarbage returns the tracked dead bytes in the value log.
func (s *Store) ValGarbage() int64 { return s.valGarbage }

// KeyGarbage returns the tracked dead bytes in the key log.
func (s *Store) KeyGarbage() int64 { return s.keyGarbage }
