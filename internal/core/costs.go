package core

import "leed/internal/runtime"

// Exec charges compute phases to a CPU core. The engine wires each store's
// Exec to the core statically mapped to its SSD (§3.4); unit tests use
// NopExec. Compute blocks the proc for cycles/frequency of virtual time and
// contends with every other command running on the same core — this is how
// challenge C2 (tiny per-IO compute headroom) enters the simulation.
type Exec interface {
	Compute(p runtime.Task, cycles int64)
}

// NopExec charges nothing; for functional tests.
type NopExec struct{}

// Compute implements Exec by doing nothing.
func (NopExec) Compute(runtime.Task, int64) {}

// CostModel gives the cycle cost of each compute phase in the command path.
// The defaults are sized so a GET spends a few microseconds of CPU on a
// 3GHz ARM core — matching the paper's Figure 11 breakdown where SSD time
// is ~97.5% of command latency.
type CostModel struct {
	HashLookup  int64 // key hash + SegTbl probe
	ItemScan    int64 // per item examined while searching buckets
	BucketEdit  int64 // mutate a bucket image in memory
	AppendBook  int64 // per log-append bookkeeping
	ValueParse  int64 // validate + copy out a value entry
	CompactItem int64 // per item examined during compaction
}

// DefaultCosts returns the calibrated cost model.
func DefaultCosts() CostModel {
	return CostModel{
		HashLookup:  900,
		ItemScan:    60,
		BucketEdit:  700,
		AppendBook:  500,
		ValueParse:  800,
		CompactItem: 150,
	}
}

// OpStats is the per-command latency breakdown (Figure 11): virtual time
// spent waiting on the SSD vs. spent in compute/memory phases, plus device
// access counts (the paper's 2/3/2 NVMe accesses for GET/PUT/DEL).
type OpStats struct {
	SSD    runtime.Time
	CPU    runtime.Time
	Reads  int
	Writes int
}

// Total returns SSD + CPU time.
func (o OpStats) Total() runtime.Time { return o.SSD + o.CPU }

// Add accumulates another breakdown into o (used when composing
// multi-command operations like read-modify-write).
func (o *OpStats) Add(b OpStats) {
	o.SSD += b.SSD
	o.CPU += b.CPU
	o.Reads += b.Reads
	o.Writes += b.Writes
}
